package pghive

// groupcommit.go batches concurrent durable writes into shared fsyncs.
// With DurableOptions.GroupCommit enabled, Ingest/Retract callers do
// not take the write lock themselves: they enqueue a commit request
// and block until a dedicated committer goroutine answers. The
// committer drains whatever has queued (bounded by
// GroupCommitMaxBatch), takes the channel-based write lock once, and
// commits the group: per-request admission checks (context expiry,
// idempotency replay, read-only fail-fast), one wal.AppendBatch — N
// frames, ONE fsync — then applies and publishes each batch in log
// order before acknowledging anyone.
//
// The acked-prefix durability contract is unchanged: no caller is
// acknowledged before the fsync covering its record returns, and a
// failed group fsync rolls every frame of the group back together
// (wal.AppendBatch), so the group fails atomically and each caller may
// retry — idempotency keys make that safe even when the failure was a
// lying fsync. What group commit changes is only the fsync count:
// under concurrency, up to GroupCommitMaxBatch acknowledgments share
// one disk flush. A single uncontended writer degenerates to a group
// of one, byte-identical in behavior (and on disk) to the ungrouped
// path.

import (
	"context"

	"github.com/pghive/pghive/internal/wal"
)

// commitReq is one queued durable write awaiting the committer.
type commitReq struct {
	ctx     context.Context
	key     string
	g       *Graph
	retract bool
	// res receives exactly one response; buffered so the committer
	// never blocks on a caller.
	res chan commitRes
}

// commitRes is the committer's answer to one request.
type commitRes struct {
	bt       BatchTiming
	replayed bool
	err      error
}

// submitCommit enqueues one durable write with the committer and
// blocks for its outcome. Enqueueing respects ctx (the admission
// bound, mirroring LockContext); once enqueued the caller waits
// unconditionally — the committer checks ctx again before logging,
// and after that point the write is happening regardless.
func (d *DurableService) submitCommit(ctx context.Context, key string, g *Graph, retract bool) (BatchTiming, bool, error) {
	req := &commitReq{ctx: ctx, key: key, g: g, retract: retract, res: make(chan commitRes, 1)}
	select {
	case d.commitCh <- req:
	case <-ctx.Done():
		return BatchTiming{}, false, ctx.Err()
	case <-d.stop:
		return BatchTiming{}, false, &DurabilityError{Err: wal.ErrClosed}
	}
	// The enqueue select can win the buffered commitCh send even after
	// d.stop closed (select picks among ready cases arbitrarily); if the
	// committer's shutdown drain already ran, this request will never be
	// answered. Waiting on commitDone as well converts that into a clean
	// refusal — and since the committer answers every request it dequeues
	// before exiting, a final non-blocking read distinguishes "answered
	// during drain" from "stranded in the queue".
	select {
	case res := <-req.res:
		return res.bt, res.replayed, res.err
	case <-d.commitDone:
		select {
		case res := <-req.res:
			return res.bt, res.replayed, res.err
		default:
			return BatchTiming{}, false, &DurabilityError{Err: wal.ErrClosed}
		}
	}
}

// commitLoop is the committer goroutine: drain a group, commit it,
// repeat. On shutdown every queued request is refused, never dropped.
func (d *DurableService) commitLoop() {
	defer close(d.commitDone)
	for {
		select {
		case <-d.stop:
			for {
				select {
				case req := <-d.commitCh:
					req.res <- commitRes{err: &DurabilityError{Err: wal.ErrClosed}}
				default:
					return
				}
			}
		case req := <-d.commitCh:
			group := []*commitReq{req}
			for len(group) < d.dopts.GroupCommitMaxBatch {
				select {
				case r := <-d.commitCh:
					group = append(group, r)
				default:
					goto drained
				}
			}
		drained:
			d.commitGroup(group)
		}
	}
}

// commitGroup commits one group under the write lock: filter, encode,
// one AppendBatch, apply in log order, acknowledge.
func (d *DurableService) commitGroup(group []*commitReq) {
	d.mu.Lock()
	defer d.mu.Unlock()

	// Admission per request. A key already in d.keys is durably applied
	// from an earlier group — safe to ack replayed immediately. groupKeys
	// catches two requests carrying the same idempotency key inside one
	// group: the first proceeds; the second is a replay of a write that
	// is not durable yet, so its ack is deferred until the group's fsync
	// succeeds (and it fails with the group on append error) — never an
	// ack without durability.
	var pend, dups []*commitReq
	var recs []wal.BatchRecord
	groupKeys := make(map[string]bool)
	for _, req := range group {
		if err := req.ctx.Err(); err != nil {
			req.res <- commitRes{err: err}
			continue
		}
		if req.key != "" {
			if _, seen := d.keys.seen(req.key); seen {
				req.res <- commitRes{replayed: true}
				continue
			}
			if groupKeys[req.key] {
				dups = append(dups, req)
				continue
			}
		}
		if err := d.failFastLocked(); err != nil {
			req.res <- commitRes{err: err}
			continue
		}
		t := walRecTypeFor(req.key, req.retract)
		payload, err := encodeWALRecordPayload(t, req.key, req.g)
		if err != nil {
			req.res <- commitRes{err: err}
			continue
		}
		if req.key != "" {
			groupKeys[req.key] = true
		}
		pend = append(pend, req)
		recs = append(recs, wal.BatchRecord{Type: t, Payload: payload})
	}
	if len(pend) == 0 {
		return
	}

	// One durability point for the whole group. Failure is group-wide
	// (AppendBatch rolled every frame back): each caller gets the
	// error and may retry individually — including the in-group
	// duplicates, whose originals are not durable either.
	first, err := d.wal().AppendBatch(recs)
	if err != nil {
		d.maybeDegradeLocked(err)
		for _, p := range pend {
			p.res <- commitRes{err: &DurabilityError{Err: err}}
		}
		for _, p := range dups {
			p.res <- commitRes{err: &DurabilityError{Err: err}}
		}
		return
	}

	// Apply in log order, publishing per batch — concurrent readers
	// see the same snapshot-per-batch sequence as without grouping.
	for i, p := range pend {
		d.noteAppliedLocked(p.key, first+uint64(i))
		var bt BatchTiming
		if p.retract {
			bt = d.retractLocked(p.g)
		} else {
			bt = d.ingestLocked(p.g)
		}
		p.res <- commitRes{bt: bt}
	}
	// In-group duplicates ack only now: their originals are durable
	// (the group fsync returned) and applied.
	for _, p := range dups {
		p.res <- commitRes{replayed: true}
	}
}
