package pghive_test

// Follower (read replica) correctness. The replication contract: a
// follower bootstrapped from the shipped checkpoints and tailed over
// the shipped WAL serves a state BIT-IDENTICAL (checkpoint-image
// bytes) to the leader at the same LSN; fetch faults — unreachable
// backend, truncated segment bytes, reclaimed segments — may stall it
// (loudly, counted in Lag), but can never make it apply records out
// of order or serve a diverged snapshot.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	pghive "github.com/pghive/pghive"
	"github.com/pghive/pghive/internal/store"
	"github.com/pghive/pghive/internal/vfs"
)

// replicaWorld is one leader + backend pair on in-memory filesystems.
type replicaWorld struct {
	t       *testing.T
	leader  *pghive.DurableService
	backend store.Backend
	opts    pghive.Options
}

func newReplicaWorld(t *testing.T, backend store.Backend) *replicaWorld {
	t.Helper()
	if backend == nil {
		backend = store.NewDir(vfs.NewMemFS(), "/backend")
	}
	opts := pghive.Options{Seed: 3, Parallelism: 1}
	d, err := pghive.OpenDurable("data", opts, pghive.DurableOptions{
		FS: vfs.NewMemFS(), DisableAutoCompact: true, SegmentBytes: 2048, ShipTo: backend,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return &replicaWorld{t: t, leader: d, backend: backend, opts: opts}
}

// writeRound ingests n batches and compacts, which seals and ships
// everything written so far.
func (w *replicaWorld) writeRound(round, n int) {
	w.t.Helper()
	for i := 0; i < n; i++ {
		if _, err := w.leader.Ingest(stressGraph(w.t, pghive.ID(100000*(round+1)+1000*(i+1)), 30)); err != nil {
			w.t.Fatal(err)
		}
	}
	if err := w.leader.Compact(); err != nil {
		w.t.Fatal(err)
	}
}

func (w *replicaWorld) follower() *pghive.Follower {
	w.t.Helper()
	f := pghive.NewFollower(w.opts, w.backend, pghive.FollowerOptions{})
	w.t.Cleanup(func() { f.Close() })
	return f
}

func TestFollowerBitIdenticalToLeader(t *testing.T) {
	w := newReplicaWorld(t, nil)
	w.writeRound(0, 5)
	if _, err := w.leader.Retract(stressGraph(t, 100000+1000*2, 30)); err != nil {
		t.Fatal(err)
	}
	w.writeRound(1, 3)

	f := w.follower()
	if f.Ready() {
		t.Fatal("follower ready before bootstrap")
	}
	ctx := context.Background()
	if err := f.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	if !f.Ready() {
		t.Fatal("follower not ready after bootstrap")
	}
	if err := f.TailOnce(ctx); err != nil {
		t.Fatal(err)
	}

	leaderLSN := w.leader.DurableStats().WALNextLSN - 1
	if got := f.AppliedLSN(); got != leaderLSN {
		t.Fatalf("follower applied LSN %d, leader at %d", got, leaderLSN)
	}
	if !bytes.Equal(serviceImage(t, w.leader), serviceImage(t, f)) {
		t.Fatal("follower image differs from leader at the same LSN")
	}

	// The read-only contract: machine-readable refusal, reason
	// "follower".
	var ro *pghive.ReadOnlyError
	if _, err := f.Ingest(stressGraph(t, 999000, 3)); !errors.As(err, &ro) || ro.Reason != pghive.ReadOnlyFollower {
		t.Fatalf("follower Ingest returned %v, want ReadOnlyError(%q)", err, pghive.ReadOnlyFollower)
	}
	if _, err := f.Retract(stressGraph(t, 999000, 3)); !errors.As(err, &ro) {
		t.Fatalf("follower Retract returned %v, want ReadOnlyError", err)
	}
	if err := f.DrainStream(nil, nil); !errors.As(err, &ro) {
		t.Fatalf("follower DrainStream returned %v, want ReadOnlyError", err)
	}
	// The *Context write variants must be shadowed too — an unshadowed
	// promotion of the embedded Service's method would mutate the
	// replica and silently diverge it from the leader.
	if _, err := f.IngestContext(ctx, stressGraph(t, 999000, 3)); !errors.As(err, &ro) || ro.Reason != pghive.ReadOnlyFollower {
		t.Fatalf("follower IngestContext returned %v, want ReadOnlyError(%q)", err, pghive.ReadOnlyFollower)
	}
	if _, err := f.RetractContext(ctx, stressGraph(t, 999000, 3)); !errors.As(err, &ro) {
		t.Fatalf("follower RetractContext returned %v, want ReadOnlyError", err)
	}
	if err := f.DrainStreamContext(ctx, nil, nil); !errors.As(err, &ro) {
		t.Fatalf("follower DrainStreamContext returned %v, want ReadOnlyError", err)
	}
	if !bytes.Equal(serviceImage(t, w.leader), serviceImage(t, f)) {
		t.Fatal("write refusals mutated the follower")
	}

	lag := f.Lag(ctx)
	if !lag.Ready || lag.AppliedLSN != leaderLSN || lag.FetchFaults != 0 {
		t.Fatalf("lag = %+v, want ready at LSN %d with no faults", lag, leaderLSN)
	}
}

func TestFollowerTailsAcrossLeaderProgress(t *testing.T) {
	w := newReplicaWorld(t, nil)
	w.writeRound(0, 4)
	f := w.follower()
	ctx := context.Background()
	if err := f.TailOnce(ctx); err != nil { // bootstraps implicitly
		t.Fatal(err)
	}
	prev := f.AppliedLSN()
	for round := 1; round <= 3; round++ {
		w.writeRound(round, 3)
		if err := f.TailOnce(ctx); err != nil {
			t.Fatal(err)
		}
		if got := f.AppliedLSN(); got <= prev {
			t.Fatalf("round %d: applied LSN %d did not advance past %d", round, got, prev)
		}
		prev = f.AppliedLSN()
		if !bytes.Equal(serviceImage(t, w.leader), serviceImage(t, f)) {
			t.Fatalf("round %d: follower image diverged", round)
		}
	}
}

// faultyGets wraps a backend so reads of matching objects fail or
// truncate according to a schedule; writes pass through untouched.
type faultyGets struct {
	store.Backend
	mu sync.Mutex
	// failNext errors the next n Gets; truncNext returns half the
	// bytes of the next m Gets (a torn fetch).
	failNext  int
	truncNext int
}

func (b *faultyGets) Get(ctx context.Context, name string) ([]byte, error) {
	b.mu.Lock()
	fail, trunc := false, false
	if b.failNext > 0 {
		b.failNext--
		fail = true
	} else if b.truncNext > 0 {
		b.truncNext--
		trunc = true
	}
	b.mu.Unlock()
	if fail {
		return nil, errors.New("injected fetch failure")
	}
	data, err := b.Backend.Get(ctx, name)
	if err != nil {
		return nil, err
	}
	if trunc {
		return data[:len(data)/2], nil
	}
	return data, nil
}

// TestFollowerFetchFaultsNeverDiverge drives a follower through
// failing and truncated segment fetches: every faulted round must
// leave the replica at a consistent prefix (reported loudly), and once
// the faults clear it must converge to the leader's exact image.
func TestFollowerFetchFaultsNeverDiverge(t *testing.T) {
	inner := store.NewDir(vfs.NewMemFS(), "/backend")
	faulty := &faultyGets{Backend: inner}
	w := newReplicaWorld(t, faulty)
	w.writeRound(0, 5)

	f := w.follower()
	ctx := context.Background()
	if err := f.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	bootstrapped := f.AppliedLSN()

	// Phase 1: every segment fetch fails outright.
	faulty.mu.Lock()
	faulty.failNext = 3
	faulty.mu.Unlock()
	if err := f.TailOnce(ctx); err == nil {
		t.Fatal("TailOnce succeeded through a failing backend")
	}
	if got := f.AppliedLSN(); got != bootstrapped {
		t.Fatalf("failed fetches moved the applied LSN %d -> %d", bootstrapped, got)
	}

	// Phase 2: fetches return torn (half-length) segment bytes. The
	// scanner stops at the torn point; the replica applies only the
	// contiguous prefix and keeps the rest for a healthy retry.
	faulty.mu.Lock()
	faulty.failNext, faulty.truncNext = 0, 2
	faulty.mu.Unlock()
	_ = f.TailOnce(ctx) // may or may not error; must not diverge
	midway := f.AppliedLSN()
	if midway < bootstrapped {
		t.Fatalf("torn fetches moved the applied LSN backwards: %d -> %d", bootstrapped, midway)
	}

	// Phase 3: faults clear; the replica converges exactly.
	if err := f.TailOnce(ctx); err != nil {
		t.Fatal(err)
	}
	leaderLSN := w.leader.DurableStats().WALNextLSN - 1
	if got := f.AppliedLSN(); got != leaderLSN {
		t.Fatalf("healed follower at LSN %d, leader at %d", got, leaderLSN)
	}
	if !bytes.Equal(serviceImage(t, w.leader), serviceImage(t, f)) {
		t.Fatal("healed follower image differs from leader")
	}
	lag := f.Lag(ctx)
	if lag.FetchFaults == 0 {
		t.Fatal("injected fetch faults were not reported")
	}
}

// TestFollowerRebootstrapsPastReclaimedSegments parks a follower,
// advances the leader far enough that the backend GC reclaims the
// segments the follower would need next, and verifies the follower
// detects the gap, re-bootstraps from a newer shipped generation, and
// converges instead of serving a hole.
func TestFollowerRebootstrapsPastReclaimedSegments(t *testing.T) {
	w := newReplicaWorld(t, nil)
	w.writeRound(0, 4)

	f := w.follower()
	ctx := context.Background()
	if err := f.TailOnce(ctx); err != nil {
		t.Fatal(err)
	}
	gen1 := f.Lag(ctx).BootstrapGeneration
	parked := f.AppliedLSN()

	// Several more generations: the backend GC deletes segments below
	// the shipped WAL floor, which passes the parked follower's
	// position.
	for round := 1; round <= 4; round++ {
		w.writeRound(round, 4)
	}
	oldest, ok := oldestShippedSegmentLSN(t, w.backend)
	if !ok || oldest <= parked+1 {
		t.Fatalf("backend GC kept segments down to LSN %d; test needs the follower's next record (%d) reclaimed", oldest, parked+1)
	}

	if err := f.TailOnce(ctx); err != nil {
		t.Fatal(err)
	}
	lag := f.Lag(ctx)
	if lag.FetchFaults == 0 {
		t.Fatal("gap below the oldest retained segment was not reported")
	}
	if lag.BootstrapGeneration <= gen1 {
		t.Fatalf("follower did not re-bootstrap: generation still %d", lag.BootstrapGeneration)
	}
	if err := f.TailOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serviceImage(t, w.leader), serviceImage(t, f)) {
		t.Fatal("re-bootstrapped follower image differs from leader")
	}
}

func oldestShippedSegmentLSN(t *testing.T, b store.Backend) (uint64, bool) {
	t.Helper()
	names, err := b.List(context.Background(), "wal/")
	if err != nil {
		t.Fatal(err)
	}
	var oldest uint64
	var ok bool
	for _, n := range names {
		var lsn uint64
		if _, err := fmt.Sscanf(n, "wal/%d.wal", &lsn); err != nil {
			continue
		}
		if !ok || lsn < oldest {
			oldest, ok = lsn, true
		}
	}
	return oldest, ok
}
