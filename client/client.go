// Package client is the supported way to talk to a pghive serve
// instance over HTTP. It owns the retry discipline a robust caller
// needs and the server cooperates with:
//
//   - Per-attempt timeouts, so one stalled connection never wedges the
//     caller.
//   - Jittered exponential backoff on 429/503 (the server's declared
//     backpressure signals) and on connection errors, honoring the
//     server's Retry-After hint as the floor.
//   - Idempotency keys on writes: every /ingest and /retract carries a
//     generated Idempotency-Key header, and the server write-ahead
//     logs applied keys — so retrying a write whose first attempt
//     timed out, hit a 5xx, or raced a server crash applies the batch
//     exactly once. Keyed writes (and GETs) are therefore also safe to
//     retry on 5xx and mid-request connection failures, which unkeyed
//     writes are not.
//
// A write refused with 409 read-only (the server's declared degraded
// mode) is surfaced as *StatusError immediately: backoff cannot fix a
// full disk or a broken WAL, an operator re-arm does.
package client

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	mathrand "math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	pghive "github.com/pghive/pghive"
)

// Options tunes a Client. Zero values select the documented defaults.
type Options struct {
	// HTTPClient is the transport (default http.DefaultClient).
	HTTPClient *http.Client
	// RequestTimeout bounds each attempt (default 30s; <0 disables).
	RequestTimeout time.Duration
	// MaxAttempts caps tries per call, first attempt included
	// (default 5).
	MaxAttempts int
	// BaseBackoff seeds the exponential backoff schedule (default
	// 100ms); MaxBackoff caps it (default 5s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Rand supplies backoff jitter in [0,1). Default math/rand.
	Rand func() float64
	// NewIdempotencyKey mints the key attached to each write (default
	// 16 random bytes, hex). Distinct calls MUST get distinct keys.
	NewIdempotencyKey func() string
	// DisableIdempotencyKeys sends writes bare. Retries of unkeyed
	// writes are then only attempted on 429/503 — the statuses that
	// guarantee the server did no work.
	DisableIdempotencyKeys bool
}

// Defaults applied by New when the corresponding Options field is
// zero: the per-call deadline, the attempt budget one logical call
// may spend, and the exponential-backoff bounds between attempts.
const (
	DefaultRequestTimeout = 30 * time.Second
	DefaultMaxAttempts    = 5
	DefaultBaseBackoff    = 100 * time.Millisecond
	DefaultMaxBackoff     = 5 * time.Second
)

func (o Options) withDefaults() Options {
	if o.HTTPClient == nil {
		o.HTTPClient = http.DefaultClient
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = DefaultRequestTimeout
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = DefaultMaxAttempts
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = DefaultBaseBackoff
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = DefaultMaxBackoff
	}
	if o.Rand == nil {
		o.Rand = mathrand.Float64
	}
	if o.NewIdempotencyKey == nil {
		o.NewIdempotencyKey = func() string {
			var b [16]byte
			if _, err := rand.Read(b[:]); err != nil {
				panic(fmt.Sprintf("pghive/client: idempotency key entropy: %v", err))
			}
			return hex.EncodeToString(b[:])
		}
	}
	return o
}

// StatusError is a non-2xx response that survived the retry policy —
// either not retryable, or retryable and still failing after
// MaxAttempts.
type StatusError struct {
	Code int
	Body string
	// RetryAfter is the server's backoff hint (zero when none was
	// sent).
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("pghive/client: server returned %d: %s", e.Code, strings.TrimSpace(e.Body))
}

// IsReadOnly reports whether err is the server's declared read-only
// rejection — retrying is pointless until the server is re-armed.
func IsReadOnly(err error) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == http.StatusConflict
}

// Client talks to one pghive serve base URL. Safe for concurrent use.
type Client struct {
	base    string
	opts    Options
	retries atomic.Uint64
}

// New builds a client for baseURL (e.g. "http://localhost:8080").
func New(baseURL string, opts Options) *Client {
	return &Client{base: strings.TrimRight(baseURL, "/"), opts: opts.withDefaults()}
}

// Retries reports the total retry attempts (not first attempts) the
// client has made — the observable cost of an unreliable server.
func (c *Client) Retries() uint64 { return c.retries.Load() }

// WriteResult is the server's acknowledgment of a write.
type WriteResult struct {
	// Replayed reports the write was a duplicate of an already-applied
	// idempotency key: the batch was NOT applied again.
	Replayed bool `json:"replayed"`
	// Stats is the server's post-write stats object, verbatim.
	Stats json.RawMessage `json:"stats"`
	// Attempts is how many HTTP attempts this call used.
	Attempts int `json:"-"`
}

// Ingest serializes g as JSONL and ingests it as one atomic batch.
func (c *Client) Ingest(ctx context.Context, g *pghive.Graph) (*WriteResult, error) {
	var buf bytes.Buffer
	if err := pghive.WriteJSONL(&buf, g); err != nil {
		return nil, err
	}
	return c.IngestJSONL(ctx, buf.Bytes())
}

// IngestJSONL ingests a pre-serialized JSONL body as one atomic batch.
func (c *Client) IngestJSONL(ctx context.Context, body []byte) (*WriteResult, error) {
	return c.write(ctx, "/ingest", body)
}

// Retract serializes g as JSONL and retracts it as one atomic batch.
func (c *Client) Retract(ctx context.Context, g *pghive.Graph) (*WriteResult, error) {
	var buf bytes.Buffer
	if err := pghive.WriteJSONL(&buf, g); err != nil {
		return nil, err
	}
	return c.RetractJSONL(ctx, buf.Bytes())
}

// RetractJSONL retracts a pre-serialized JSONL body as one atomic
// batch.
func (c *Client) RetractJSONL(ctx context.Context, body []byte) (*WriteResult, error) {
	return c.write(ctx, "/retract", body)
}

func (c *Client) write(ctx context.Context, path string, body []byte) (*WriteResult, error) {
	var key string
	if !c.opts.DisableIdempotencyKeys {
		key = c.opts.NewIdempotencyKey()
	}
	data, attempts, err := c.do(ctx, http.MethodPost, path, body, key)
	if err != nil {
		return nil, err
	}
	res := &WriteResult{Attempts: attempts}
	if jsonErr := json.Unmarshal(data, res); jsonErr != nil {
		return nil, fmt.Errorf("pghive/client: decode %s response: %w", path, jsonErr)
	}
	res.Attempts = attempts
	return res, nil
}

// Stats fetches the server's stats document verbatim.
func (c *Client) Stats(ctx context.Context) (json.RawMessage, error) {
	data, _, err := c.do(ctx, http.MethodGet, "/stats", nil, "")
	return data, err
}

// Schema fetches the discovered schema in the given format (json,
// pgschema, xsd, or dot; "" lets the server default).
func (c *Client) Schema(ctx context.Context, format string) ([]byte, error) {
	path := "/schema"
	if format != "" {
		path += "?format=" + format
	}
	data, _, err := c.do(ctx, http.MethodGet, path, nil, "")
	return data, err
}

// Lag fetches a follower's replication position from GET /lag. Only
// read-only replicas (pghive serve -follow) expose the endpoint; a
// leader answers 404, surfaced as a *StatusError.
func (c *Client) Lag(ctx context.Context) (*pghive.FollowerLag, error) {
	data, _, err := c.do(ctx, http.MethodGet, "/lag", nil, "")
	if err != nil {
		return nil, err
	}
	var lag pghive.FollowerLag
	if err := json.Unmarshal(data, &lag); err != nil {
		return nil, fmt.Errorf("pghive/client: decode /lag response: %w", err)
	}
	return &lag, nil
}

// Healthy reports the server's /healthz verdict; a degraded-but-
// serving instance is healthy. Any reachable server answers.
func (c *Client) Healthy(ctx context.Context) error {
	_, _, err := c.do(ctx, http.MethodGet, "/healthz", nil, "")
	return err
}

// do runs one logical call under the retry policy and returns the
// response body and the number of attempts used. key, when non-empty,
// is sent as the Idempotency-Key header and marks the call safe to
// retry past ambiguous failures.
func (c *Client) do(ctx context.Context, method, path string, body []byte, key string) ([]byte, int, error) {
	idempotent := method == http.MethodGet || key != ""
	for attempt := 1; ; attempt++ {
		if attempt > 1 {
			c.retries.Add(1)
		}
		data, retryable, err := c.attempt(ctx, method, path, body, key)
		if err == nil {
			return data, attempt, nil
		}
		// An ambiguous failure — the server may have done the work —
		// is only safe to retry when the call is idempotent.
		if retryable == retryAmbiguous && !idempotent {
			return nil, attempt, err
		}
		if retryable == retryNever || attempt >= c.opts.MaxAttempts {
			return nil, attempt, err
		}
		if err := c.sleep(ctx, c.backoff(attempt, err)); err != nil {
			return nil, attempt, err
		}
	}
}

type retryClass int

const (
	retryNever     retryClass = iota // permanent: 4xx contract errors
	retrySafe                        // server provably did no work: 429/503
	retryAmbiguous                   // request may have been applied: conn errors, 5xx
)

// attempt performs one HTTP round trip.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, key string) ([]byte, retryClass, error) {
	actx := ctx
	if c.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.opts.RequestTimeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.base+path, rd)
	if err != nil {
		return nil, retryNever, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/x-ndjson")
	}
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, retryNever, ctx.Err() // the caller's deadline, not the attempt's
		}
		return nil, retryAmbiguous, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, retryAmbiguous, err
	}
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		return data, retryNever, nil
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		se := &StatusError{Code: resp.StatusCode, Body: string(data)}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			se.RetryAfter = time.Duration(secs) * time.Second
		}
		return nil, retrySafe, se
	case resp.StatusCode >= 500:
		return nil, retryAmbiguous, &StatusError{Code: resp.StatusCode, Body: string(data)}
	default:
		// 4xx: the request itself is wrong (or refused by contract,
		// like 409 read-only); a retry would repeat the refusal.
		return nil, retryNever, &StatusError{Code: resp.StatusCode, Body: string(data)}
	}
}

// backoff computes the pre-retry sleep: jittered exponential, floored
// by the server's Retry-After hint when one was sent.
func (c *Client) backoff(attempt int, err error) time.Duration {
	d := c.opts.BaseBackoff << (attempt - 1)
	if d > c.opts.MaxBackoff || d <= 0 {
		d = c.opts.MaxBackoff
	}
	// Jitter into [d/2, d): desynchronizes a thundering herd while
	// keeping the expected wait close to the schedule.
	d = d/2 + time.Duration(c.opts.Rand()*float64(d/2))
	// Honor the server's hint as a floor, but never past MaxBackoff —
	// the caller's patience bound outranks the server's suggestion.
	var se *StatusError
	if errors.As(err, &se) && se.RetryAfter > d {
		d = se.RetryAfter
		if d > c.opts.MaxBackoff {
			d = c.opts.MaxBackoff
		}
	}
	return d
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
