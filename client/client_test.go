package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fastOpts keeps test retries in the millisecond range.
func fastOpts() Options {
	return Options{
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		MaxAttempts: 5,
	}
}

func TestRetriesBackpressureThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		fmt.Fprint(w, `{"stats":{"nodes":5}}`)
	}))
	defer srv.Close()

	c := New(srv.URL, fastOpts())
	res, err := c.IngestJSONL(context.Background(), []byte(`{"id":1,"labels":["A"]}`))
	if err != nil {
		t.Fatalf("IngestJSONL: %v", err)
	}
	if res.Attempts != 3 {
		t.Fatalf("Attempts = %d, want 3", res.Attempts)
	}
	if c.Retries() != 2 {
		t.Fatalf("Retries = %d, want 2", c.Retries())
	}
}

func TestSameIdempotencyKeyAcrossRetries(t *testing.T) {
	var mu sync.Mutex
	var keys []string
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		keys = append(keys, r.Header.Get("Idempotency-Key"))
		calls++
		n := calls
		mu.Unlock()
		if n == 1 {
			w.WriteHeader(http.StatusInternalServerError) // ambiguous: work may have happened
			return
		}
		fmt.Fprint(w, `{"replayed":true,"stats":{}}`)
	}))
	defer srv.Close()

	c := New(srv.URL, fastOpts())
	res, err := c.IngestJSONL(context.Background(), []byte(`{"id":1,"labels":["A"]}`))
	if err != nil {
		t.Fatalf("IngestJSONL: %v", err)
	}
	if !res.Replayed {
		t.Fatal("server's replayed=true was not decoded")
	}
	if len(keys) != 2 || keys[0] == "" || keys[0] != keys[1] {
		t.Fatalf("retry must reuse the same non-empty key, got %q", keys)
	}
}

func TestUnkeyedWriteNotRetriedOnAmbiguousFailure(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()

	opts := fastOpts()
	opts.DisableIdempotencyKeys = true
	c := New(srv.URL, opts)
	_, err := c.IngestJSONL(context.Background(), []byte(`{"id":1,"labels":["A"]}`))
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusInternalServerError {
		t.Fatalf("got %v, want StatusError 500", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("unkeyed write retried an ambiguous 500: %d calls", calls.Load())
	}
}

func TestUnkeyedWriteStillRetriedOnSafeBackpressure(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusServiceUnavailable) // server did no work
			return
		}
		fmt.Fprint(w, `{"stats":{}}`)
	}))
	defer srv.Close()

	opts := fastOpts()
	opts.DisableIdempotencyKeys = true
	c := New(srv.URL, opts)
	if _, err := c.IngestJSONL(context.Background(), []byte(`{"id":1,"labels":["A"]}`)); err != nil {
		t.Fatalf("IngestJSONL: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("503 on unkeyed write should retry: %d calls", calls.Load())
	}
}

func TestReadOnlyRejectionIsNotRetried(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"service is read-only (wal-broken)"}`, http.StatusConflict)
	}))
	defer srv.Close()

	c := New(srv.URL, fastOpts())
	_, err := c.IngestJSONL(context.Background(), []byte(`{"id":1,"labels":["A"]}`))
	if !IsReadOnly(err) {
		t.Fatalf("got %v, want read-only StatusError", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("read-only rejection was retried: %d calls", calls.Load())
	}
}

func TestGivesUpAfterMaxAttempts(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	opts := fastOpts()
	opts.MaxAttempts = 3
	c := New(srv.URL, opts)
	_, err := c.Stats(context.Background())
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("got %v, want StatusError 503", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("made %d attempts, want 3", calls.Load())
	}
}

func TestRetriesConnectionErrors(t *testing.T) {
	// A server that dies after its first accept: the in-flight call
	// fails at the transport layer, and the retry lands on a revived
	// listener (new server on the same address is too racy; instead
	// point at a closed port first via a custom RoundTripper).
	var flaky atomic.Bool
	inner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"nodes":0}`)
	}))
	defer inner.Close()

	rt := roundTripFunc(func(r *http.Request) (*http.Response, error) {
		if flaky.CompareAndSwap(false, true) {
			return nil, errors.New("connection refused")
		}
		return http.DefaultTransport.RoundTrip(r)
	})
	opts := fastOpts()
	opts.HTTPClient = &http.Client{Transport: rt}
	c := New(inner.URL, opts)
	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatalf("Stats after transient connection error: %v", err)
	}
	if c.Retries() != 1 {
		t.Fatalf("Retries = %d, want 1", c.Retries())
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

func TestCallerContextCancellationWinsOverRetry(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	opts := fastOpts()
	opts.BaseBackoff = time.Hour // the sleep must be interruptible
	opts.MaxBackoff = time.Hour
	c := New(srv.URL, opts)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Stats(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not interrupt the backoff sleep")
	}
}
