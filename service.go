package pghive

// service.go turns the single-caller incremental pipeline into a
// long-running, concurrently queryable schema service. Writes
// (Ingest, Retract, DrainStream, checkpointing) are serialized by a
// mutex; reads are lock-free against an immutable published snapshot
// (copy-on-publish): after every write batch the service deep-copies
// the evolving schema, finalizes constraints on the copy, and swaps
// it in atomically, so a reader never observes a half-merged schema,
// a type with zero instances, or constraints that lag the statistics.

import (
	"context"
	"io"
	"sync/atomic"

	"github.com/pghive/pghive/internal/core"
	"github.com/pghive/pghive/internal/infer"
	"github.com/pghive/pghive/internal/pg"
	"github.com/pghive/pghive/internal/schema"
	"github.com/pghive/pghive/internal/serialize"
	"github.com/pghive/pghive/internal/validate"
)

// ServiceStats summarizes a published snapshot.
type ServiceStats struct {
	core.IncrementalStats
	// NodeTypes / EdgeTypes count the snapshot's schema types.
	NodeTypes int `json:"nodeTypes"`
	EdgeTypes int `json:"edgeTypes"`
	// Snapshot is the publication sequence number: 0 for the initial
	// empty snapshot, incremented on every publish.
	Snapshot uint64 `json:"snapshot"`
}

// ServiceSnapshot is one immutable published state: a private deep
// copy of the schema with §4.4 constraints finalized, plus the stats
// taken at the same instant. Readers sharing a snapshot must treat
// the schema as read-only; the service never mutates it again.
type ServiceSnapshot struct {
	Schema *Schema
	Stats  ServiceStats
}

// Service is a thread-safe serving wrapper around the §4.6
// incremental pipeline. Any number of goroutines may call the read
// side (Snapshot, Schema, Stats, Validate, PGSchema, XSD, DOT)
// concurrently with each other and with writers; the write side
// (Ingest, Retract, DrainStream, WriteCheckpoint) is serialized
// internally.
//
// The service keeps its own label-only endpoint bookkeeping across
// Ingest calls (the serving analogue of a stream reader's resolver),
// so an edge ingested in a later request still resolves endpoint
// labels for nodes ingested earlier. Element IDs must be unique
// across the service's lifetime — re-ingesting an ID double-counts
// its statistics, exactly as re-feeding it to Incremental would.
type Service struct {
	mu       writeLock
	inc      *Incremental
	resolver *Graph // label-only, cross-ingest endpoint bookkeeping
	// nextEdgeID carries the sequential edge-ID counter across CSV
	// streams (and their checkpoints); CSV rows have no explicit edge
	// IDs, so a later stream must continue numbering where the
	// previous one stopped.
	nextEdgeID pg.ID
	snap       atomic.Pointer[ServiceSnapshot]
	seq        uint64
	opts       Options
}

// NewService returns a serving pipeline with an empty schema. The
// initial published snapshot is empty but valid, so readers never
// observe a nil schema.
func NewService(opts Options) *Service {
	return newService(opts, NewIncremental(opts), nil)
}

// RestoreService resumes a service from a checkpoint written by
// Service.WriteCheckpoint (or Incremental.WriteCheckpoint): schema,
// per-element assignments, shape caches, and the cross-ingest
// endpoint bookkeeping all carry over, and the first published
// snapshot already reflects the checkpointed state. opts must match
// the checkpointed run's (see ResumeFromCheckpoint).
func RestoreService(opts Options, r io.Reader) (*Service, error) {
	inc, extras, err := core.ResumeFromCheckpoint(opts, r)
	if err != nil {
		return nil, err
	}
	s := newService(opts, inc, extras.Resolver)
	s.nextEdgeID = extras.NextEdgeID
	return s, nil
}

func newService(opts Options, inc *Incremental, resolver *Graph) *Service {
	if resolver == nil {
		resolver = pg.NewGraph()
		resolver.AllowDanglingEdges(true)
	}
	s := &Service{mu: newWriteLock(), inc: inc, resolver: resolver, opts: opts}
	s.publish()
	return s
}

// writeLock is the service's write mutex, built on a one-slot channel
// so a caller can bound how long it is willing to queue: an HTTP
// request whose deadline expires while a long stream drain holds the
// lock abandons the wait instead of parking a goroutine forever.
// Lock/Unlock mirror sync.Mutex for the paths that cannot time out.
type writeLock chan struct{}

func newWriteLock() writeLock { return make(writeLock, 1) }

func (l writeLock) Lock()   { l <- struct{}{} }
func (l writeLock) Unlock() { <-l }

// LockContext acquires the lock unless ctx ends first, in which case
// the lock is NOT held and ctx.Err() is returned.
func (l writeLock) LockContext(ctx context.Context) error {
	select {
	case l <- struct{}{}:
		return nil
	default:
	}
	select {
	case l <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// publish clones the live schema, finalizes constraints on the clone,
// and swaps it in. Callers must hold mu.
func (s *Service) publish() {
	sch := s.inc.Schema().Clone()
	infer.Finalize(sch, s.opts.Infer)
	st := ServiceStats{IncrementalStats: s.inc.Stats(), Snapshot: s.seq,
		NodeTypes: len(sch.NodeTypes), EdgeTypes: len(sch.EdgeTypes)}
	s.seq++
	s.snap.Store(&ServiceSnapshot{Schema: sch, Stats: st})
}

// trackGraph registers g's nodes in the cross-ingest endpoint
// bookkeeping, skipping IDs already tracked (their first labels win,
// matching how a stream resolver behaves), and advances the
// sequential edge-ID watermark past g's edges so a later CSV stream —
// which assigns IDs itself — can never collide with IDs already seen.
// It is the single tracking rule shared by live serving and WAL
// replay, which is what makes recovery bit-identical to the run that
// logged the records.
func trackGraph(resolver *Graph, g *Graph, nextEdgeID *ID) {
	nodes := g.Nodes()
	for i := range nodes {
		if resolver.Node(nodes[i].ID) == nil {
			// Error impossible: absence was just checked and callers
			// serialize writes.
			_ = resolver.PutNode(nodes[i].ID, nodes[i].Labels, nil)
		}
	}
	edges := g.Edges()
	for i := range edges {
		if id := edges[i].ID + 1; id > *nextEdgeID {
			*nextEdgeID = id
		}
	}
}

// track applies trackGraph to the service's own state. Callers must
// hold mu.
func (s *Service) track(g *Graph) { trackGraph(s.resolver, g, &s.nextEdgeID) }

// Ingest runs one batch through the pipeline and publishes a fresh
// snapshot. The graph is read during the call and not retained.
func (s *Service) Ingest(g *Graph) BatchTiming {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ingestLocked(g)
}

// IngestContext is Ingest with a deadline on write admission: if ctx
// ends while the call is still queued behind other writers, nothing
// is applied and ctx's error is returned. Once the batch starts
// processing it runs to completion — a published snapshot is never
// half a batch.
func (s *Service) IngestContext(ctx context.Context, g *Graph) (BatchTiming, error) {
	if err := s.mu.LockContext(ctx); err != nil {
		return BatchTiming{}, err
	}
	defer s.mu.Unlock()
	return s.ingestLocked(g), nil
}

// ingestLocked is the write path shared by Ingest, DrainStream, and
// the durable layer (which appends to its WAL first). Callers must
// hold mu.
func (s *Service) ingestLocked(g *Graph) BatchTiming {
	s.track(g)
	bt := s.inc.ProcessBatch(&Batch{Graph: g, Resolver: s.resolver, Index: s.inc.Batches() + 1})
	s.publish()
	return bt
}

// Retract removes a batch of previously ingested elements (every
// element must have been ingested earlier; see
// Incremental.RetractBatch) and publishes a fresh snapshot. Types
// whose last instance disappears are gone from the new snapshot. The
// batch's nodes also leave the endpoint bookkeeping, so churn does
// not grow the resolver (or checkpoints) without bound, and a later
// edge naming a retracted endpoint no longer resolves its stale
// labels.
func (s *Service) Retract(g *Graph) BatchTiming {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retractLocked(g)
}

// RetractContext is Retract with a deadline on write admission (see
// IngestContext for the contract).
func (s *Service) RetractContext(ctx context.Context, g *Graph) (BatchTiming, error) {
	if err := s.mu.LockContext(ctx); err != nil {
		return BatchTiming{}, err
	}
	defer s.mu.Unlock()
	return s.retractLocked(g), nil
}

// retractLocked is the retraction path shared by Retract and the
// durable layer. Callers must hold mu.
func (s *Service) retractLocked(g *Graph) BatchTiming {
	bt := s.inc.RetractBatch(&Batch{Graph: g, Resolver: s.resolver})
	nodes := g.Nodes()
	for i := range nodes {
		s.resolver.RemoveNode(nodes[i].ID)
	}
	s.publish()
	return bt
}

// csvLikeStream is the extra surface of readers that assign
// sequential edge IDs and validate endpoints against their own
// resolver (pg.CSVStream). The service seeds both from its own state
// so a stream started after earlier ingests — or after a checkpoint
// restore — continues numbering and resolving where the service
// stands.
type csvLikeStream interface {
	NextEdgeID() ID
	SetNextEdgeID(ID)
	SeedResolver(ID, []string) error
}

// DrainStream feeds every batch of the stream through the pipeline,
// publishing a fresh snapshot after each batch, so concurrent readers
// watch the schema evolve while the stream loads. Like
// Incremental.DrainStream it fills the per-batch memory counters and
// returns on io.EOF (nil) or the first reader error; the write lock
// is held for the whole drain, serializing it with other writers.
//
// CSV streams are adopted into the service's state: a fresh reader is
// seeded with the service's endpoint bookkeeping and its sequential
// edge-ID counter continues from the previous stream's, so relation
// files ingested across restarts keep globally unique edge IDs. For
// the duration of a drain the reader's own label-only bookkeeping
// duplicates the service's (both index the streamed nodes); the
// overhead is bounded by the ID+labels index, never properties.
func (s *Service) DrainStream(r StreamReader, onBatch func(BatchTiming)) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drainLocked(r, onBatch, nil)
}

// DrainStreamContext is DrainStream with a deadline: the ctx bounds
// both write admission and the drain itself, checked before each
// batch. Like every drain error, expiry mid-stream is not a rollback
// — batches already processed stay published; the caller sees ctx's
// error and can read Stats to learn how far the stream got.
func (s *Service) DrainStreamContext(ctx context.Context, r StreamReader, onBatch func(BatchTiming)) error {
	if err := s.mu.LockContext(ctx); err != nil {
		return err
	}
	defer s.mu.Unlock()
	return s.drainLocked(r, onBatch, func(*Graph) error { return ctx.Err() })
}

// drainLocked is the drain protocol shared by Service.DrainStream and
// the durable layer: CSV-stream adoption, memory-counter observation,
// and per-batch processing, with an optional perBatch hook running
// before each batch is applied (the durable layer's WAL append).
// Callers must hold mu.
func (s *Service) drainLocked(r StreamReader, onBatch func(BatchTiming), perBatch func(*Graph) error) error {
	defer s.seedStreamLocked(r)()
	onBatch = core.MemObservedOnBatch(onBatch)
	for {
		b, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if perBatch != nil {
			if err := perBatch(b.Graph); err != nil {
				return err
			}
		}
		// The service resolver absorbs the stream's bookkeeping so
		// later Ingest calls still resolve endpoints of streamed nodes
		// (ingestLocked tracks the batch before processing it).
		bt := s.ingestLocked(b.Graph)
		if onBatch != nil {
			onBatch(bt)
		}
	}
}

// seedStreamLocked adopts a CSV-like stream into the service's state
// (edge-ID continuation, resolver seeding) and returns the function
// that harvests the stream's final edge-ID watermark — callers defer
// it around their drain loop. For other readers both halves are
// no-ops. Callers must hold mu.
func (s *Service) seedStreamLocked(r StreamReader) (finish func()) {
	c, ok := r.(csvLikeStream)
	if !ok {
		return func() {}
	}
	if c.NextEdgeID() == 0 && s.nextEdgeID > 0 {
		c.SetNextEdgeID(s.nextEdgeID)
	}
	nodes := s.resolver.Nodes()
	for i := range nodes {
		// Error means the reader tracked the ID already; its labels
		// win, matching Ingest's first-labels-win rule.
		_ = c.SeedResolver(nodes[i].ID, nodes[i].Labels)
	}
	return func() {
		if id := c.NextEdgeID(); id > s.nextEdgeID {
			s.nextEdgeID = id
		}
	}
}

// Snapshot returns the current published state. The returned snapshot
// is immutable and remains valid (and consistent) forever; hold it
// for as long as a stable view is needed.
func (s *Service) Snapshot() *ServiceSnapshot { return s.snap.Load() }

// Schema returns the current published schema — an immutable deep
// copy with constraints finalized. Callers must not mutate it.
func (s *Service) Schema() *Schema { return s.Snapshot().Schema }

// Stats returns the current published statistics.
func (s *Service) Stats() ServiceStats { return s.Snapshot().Stats }

// Validate checks a graph against the current published schema.
func (s *Service) Validate(g *Graph, mode ValidationMode) *ValidationReport {
	return validate.Graph(g, s.Snapshot().Schema, mode)
}

// PGSchema renders the published schema as PG-Schema (§4.5).
func (s *Service) PGSchema(mode SerializationMode, graphName string) string {
	return serialize.PGSchema(s.Snapshot().Schema, mode, graphName)
}

// XSD renders the published schema as an XML Schema document.
func (s *Service) XSD() string { return serialize.XSD(s.Snapshot().Schema) }

// DOT renders the published schema as Graphviz DOT.
func (s *Service) DOT(graphName string) string {
	return serialize.DOT(s.Snapshot().Schema, graphName)
}

// WriteSchemaJSON writes the published schema in the persisted schema
// format (statistics included, service state excluded — use
// WriteCheckpoint for a restorable image).
func (s *Service) WriteSchemaJSON(w io.Writer) error {
	return schema.WriteJSON(w, s.Snapshot().Schema)
}

// WriteCheckpoint serializes the service's full state — schema,
// assignments, shape caches, endpoint bookkeeping — so RestoreService
// can resume it bit-identically. The write lock is held for the
// duration, so the image is consistent with exactly the batches whose
// snapshots were published before the call returned.
func (s *Service) WriteCheckpoint(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inc.WriteCheckpoint(w, &core.CheckpointExtras{
		Resolver:   s.resolver,
		NextEdgeID: s.nextEdgeID,
	})
}
