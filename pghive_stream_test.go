package pghive_test

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"

	pghive "github.com/pghive/pghive"
	"github.com/pghive/pghive/internal/datagen"
)

// schemaFingerprint renders every serialization of a schema; two
// schemas with equal fingerprints are bit-identical for every
// consumer of the public API.
func schemaFingerprint(s *pghive.Schema) string {
	return pghive.PGSchema(s, pghive.Strict, "G") +
		pghive.PGSchema(s, pghive.Loose, "G") +
		pghive.XSD(s) +
		pghive.DOT(s, "G")
}

// TestDiscoverStreamMatchesOneShot is the streamed-ingestion
// determinism contract: discovery over a JSONL stream much larger
// than one batch yields a bit-identical schema — and identical
// per-element type assignments — to one-shot Discover over the
// materialized graph, for every batch size, Parallelism value, and
// interning mode.
func TestDiscoverStreamMatchesOneShot(t *testing.T) {
	d := datagen.Generate(datagen.LDBC(), 0.25, 42)
	g := d.Graph
	var buf bytes.Buffer
	if err := pghive.WriteJSONL(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	total := g.NumNodes() + g.NumEdges()
	if total <= 1000 {
		t.Fatalf("fixture too small (%d elements) to exceed the largest batch size", total)
	}

	for _, intern := range []bool{false, true} {
		for _, par := range []int{1, 4} {
			opts := pghive.Options{Seed: 7, Parallelism: par, DisableShapeInterning: !intern}
			one := pghive.Discover(g, opts)
			oneFP := schemaFingerprint(one.Schema)
			for _, bs := range []int{1, 7, 1000} {
				name := fmt.Sprintf("intern=%v/par=%d/bs=%d", intern, par, bs)
				res, err := pghive.DiscoverStream(pghive.NewJSONLStream(bytes.NewReader(data), bs), opts, nil)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if fp := schemaFingerprint(res.Schema); fp != oneFP {
					t.Errorf("%s: streamed schema is not bit-identical to one-shot", name)
					continue
				}
				// Element-level agreement, not just schema-level.
				if len(res.NodeAssign) != len(one.NodeAssign) || len(res.EdgeAssign) != len(one.EdgeAssign) {
					t.Fatalf("%s: assignment counts differ", name)
				}
				for id, ty := range one.NodeAssign {
					if got := res.NodeAssign[id]; got == nil || got.Name() != ty.Name() {
						t.Fatalf("%s: node %d assigned %v, want %s", name, id, got, ty.Name())
					}
				}
				for id, ty := range one.EdgeAssign {
					if got := res.EdgeAssign[id]; got == nil || got.Name() != ty.Name() {
						t.Fatalf("%s: edge %d assigned %v, want %s", name, id, got, ty.Name())
					}
				}
			}
		}
	}
}

// The MinHash pipeline streams identically too.
func TestDiscoverStreamMatchesOneShotMinHash(t *testing.T) {
	d := datagen.Generate(datagen.POLE(), 1, 42)
	g := d.Graph
	var buf bytes.Buffer
	if err := pghive.WriteJSONL(&buf, g); err != nil {
		t.Fatal(err)
	}
	opts := pghive.Options{Seed: 7, Method: pghive.MinHash}
	oneFP := schemaFingerprint(pghive.Discover(g, opts).Schema)
	for _, bs := range []int{1, 7, 1000} {
		res, err := pghive.DiscoverStream(pghive.NewJSONLStream(bytes.NewReader(buf.Bytes()), bs), opts, nil)
		if err != nil {
			t.Fatal(err)
		}
		if schemaFingerprint(res.Schema) != oneFP {
			t.Errorf("bs=%d: MinHash streamed schema differs from one-shot", bs)
		}
	}
}

// Streaming neo4j-bulk CSV sources matches discovering the one-shot
// CSV load of the same files.
func TestDiscoverStreamCSVMatchesOneShot(t *testing.T) {
	var people, posts, knows, likes strings.Builder
	people.WriteString("id:ID,:LABEL,name,age:int\n")
	posts.WriteString("id:ID,:LABEL,content,score:float\n")
	knows.WriteString(":START_ID,:END_ID,:TYPE,since:int\n")
	likes.WriteString(":START_ID,:END_ID,:TYPE\n")
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&people, "%d,Person,p%d,%d\n", i, i, 20+i)
		fmt.Fprintf(&posts, "%d,Post,c%d,%d.5\n", 100+i, i, i)
		fmt.Fprintf(&knows, "%d,%d,KNOWS,%d\n", i, (i+1)%40, 2000+i)
		fmt.Fprintf(&likes, "%d,%d,LIKES\n", i, 100+(i+3)%40)
	}

	want := pghive.NewGraph()
	for _, nodes := range []string{people.String(), posts.String()} {
		if _, err := pghive.ReadNodesCSV(strings.NewReader(nodes), want); err != nil {
			t.Fatal(err)
		}
	}
	for _, edges := range []string{knows.String(), likes.String()} {
		if _, err := pghive.ReadEdgesCSV(strings.NewReader(edges), want); err != nil {
			t.Fatal(err)
		}
	}
	opts := pghive.Options{Seed: 3}
	oneFP := schemaFingerprint(pghive.Discover(want, opts).Schema)

	for _, bs := range []int{1, 7, 1000} {
		s := pghive.NewCSVStream(
			[]io.Reader{strings.NewReader(people.String()), strings.NewReader(posts.String())},
			[]io.Reader{strings.NewReader(knows.String()), strings.NewReader(likes.String())}, bs)
		res, err := pghive.DiscoverStream(s, opts, nil)
		if err != nil {
			t.Fatal(err)
		}
		if schemaFingerprint(res.Schema) != oneFP {
			t.Errorf("bs=%d: CSV streamed schema differs from one-shot", bs)
		}
	}
}

// DiscoverStream fills the per-batch memory counters and reports
// batch indices in order; the live heap is the bounded-memory
// evidence surfaced to the CLI's -stream -stats path.
func TestDiscoverStreamBatchCounters(t *testing.T) {
	d := datagen.Generate(datagen.POLE(), 0.5, 42)
	var buf bytes.Buffer
	if err := pghive.WriteJSONL(&buf, d.Graph); err != nil {
		t.Fatal(err)
	}
	var seen []pghive.BatchTiming
	_, err := pghive.DiscoverStream(pghive.NewJSONLStream(&buf, 50), pghive.Options{Seed: 1},
		func(bt pghive.BatchTiming) { seen = append(seen, bt) })
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) < 2 {
		t.Fatalf("want multiple batches, got %d", len(seen))
	}
	for i, bt := range seen {
		if bt.Index != i+1 {
			t.Errorf("batch %d has index %d", i, bt.Index)
		}
		if bt.Nodes+bt.Edges == 0 || bt.Nodes+bt.Edges > 50 {
			t.Errorf("batch %d: %d elements, want 1..50", bt.Index, bt.Nodes+bt.Edges)
		}
		if bt.HeapLiveBytes == 0 {
			t.Errorf("batch %d: HeapLiveBytes not filled", bt.Index)
		}
	}
}

// A broken stream surfaces its error from DiscoverStream.
func TestDiscoverStreamError(t *testing.T) {
	in := `{"kind":"node","id":1}` + "\n" + `{"kind":"widget","id":2}` + "\n"
	_, err := pghive.DiscoverStream(pghive.NewJSONLStream(strings.NewReader(in), 10), pghive.Options{Seed: 1}, nil)
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-2 error, got %v", err)
	}
}
