module github.com/pghive/pghive

go 1.23
