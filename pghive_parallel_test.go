// pghive_parallel_test.go proves the Parallelism contract: for a
// fixed seed, the discovered schema is byte-identical no matter how
// many workers the pipeline uses, in both static and incremental
// mode, for both clustering methods. Run with -race to also verify
// the sharding is free of data races.
package pghive_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	pghive "github.com/pghive/pghive"
	"github.com/pghive/pghive/internal/datagen"
)

// parallelisms returns the worker counts the equivalence tests
// compare against the sequential baseline: 2 and 4 exercise real
// sharding even on one core, NumCPU is the default production value.
func parallelisms() []int {
	ps := []int{2, 4}
	if n := runtime.NumCPU(); n > 4 {
		ps = append(ps, n)
	}
	return ps
}

// snapshot renders everything schema-shaped a run produces, so a
// comparison catches divergence in types, constraints, data types,
// cardinalities, and cluster counts alike.
func snapshot(res *pghive.Result) string {
	return fmt.Sprintf("%s\n%s\nclusters=%d/%d types=%d/%d assigned=%d/%d",
		pghive.PGSchema(res.Schema, pghive.Strict, "G"),
		pghive.XSD(res.Schema),
		res.NodeClusters, res.EdgeClusters,
		len(res.Schema.NodeTypes), len(res.Schema.EdgeTypes),
		len(res.NodeAssign), len(res.EdgeAssign))
}

// TestDiscoverParallelDeterminism: fixed-seed Discover with
// Parallelism 1 and Parallelism N produces byte-identical schemas on
// noisy workloads, for both ELSH and MinHash.
func TestDiscoverParallelDeterminism(t *testing.T) {
	for _, ds := range []string{"POLE", "LDBC", "ICIJ"} {
		base := datagen.Generate(datagen.ByName(ds), 0.25, 1)
		noisy := datagen.InjectNoise(base, 0.2, 0.7, 7)
		for _, method := range []pghive.Method{pghive.ELSH, pghive.MinHash} {
			opts := pghive.Options{Seed: 1, Method: method, Parallelism: 1}
			want := snapshot(pghive.Discover(noisy.Graph, opts))
			for _, p := range parallelisms() {
				opts.Parallelism = p
				got := snapshot(pghive.Discover(noisy.Graph, opts))
				if got != want {
					t.Errorf("%s/%v: parallelism %d diverged from sequential run", ds, method, p)
				}
			}
		}
	}
}

// TestIncrementalParallelDeterminism repeats the equivalence check
// for the streaming pipeline: the same 6-batch split processed with
// different worker counts must evolve the exact same schema.
func TestIncrementalParallelDeterminism(t *testing.T) {
	base := datagen.Generate(datagen.ByName("LDBC"), 0.25, 1)
	noisy := datagen.InjectNoise(base, 0.2, 0.7, 7)
	run := func(p int) string {
		inc := pghive.NewIncremental(pghive.Options{Seed: 1, Parallelism: p})
		for _, batch := range pghive.SplitBatches(noisy.Graph, 6, rand.New(rand.NewSource(21))) {
			inc.ProcessBatch(batch)
		}
		return snapshot(inc.Finalize())
	}
	want := run(1)
	for _, p := range parallelisms() {
		if got := run(p); got != want {
			t.Errorf("incremental: parallelism %d diverged from sequential run", p)
		}
	}
}

// TestDefaultParallelismMatchesSequential pins the Options zero value
// (Parallelism 0 → NumCPU) to the sequential result: users who never
// touch the knob get parallel execution with sequential semantics.
func TestDefaultParallelismMatchesSequential(t *testing.T) {
	d := datagen.Generate(datagen.ByName("POLE"), 0.5, 1)
	want := snapshot(pghive.Discover(d.Graph, pghive.Options{Seed: 1, Parallelism: 1}))
	got := snapshot(pghive.Discover(d.Graph, pghive.Options{Seed: 1}))
	if got != want {
		t.Fatal("default parallelism diverged from sequential run")
	}
}
