package pghive_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	pghive "github.com/pghive/pghive"
)

// buildFigure1 constructs the paper's running example (Fig. 1) through
// the public API.
func buildFigure1(t *testing.T) *pghive.Graph {
	t.Helper()
	g := pghive.NewGraph()
	bob := g.AddNode([]string{"Person"}, map[string]pghive.Value{
		"name": pghive.Str("Bob"), "gender": pghive.Str("male"),
		"bday": pghive.ParseLexical("1980-05-02")})
	alice := g.AddNode(nil, map[string]pghive.Value{
		"name": pghive.Str("Alice"), "gender": pghive.Str("female"),
		"bday": pghive.ParseLexical("1999-12-19")})
	john := g.AddNode([]string{"Person"}, map[string]pghive.Value{
		"name": pghive.Str("John"), "gender": pghive.Str("male"),
		"bday": pghive.ParseLexical("2005-09-24")})
	post1 := g.AddNode([]string{"Post"}, map[string]pghive.Value{"imgFile": pghive.Str("screenshot.png")})
	post2 := g.AddNode([]string{"Post"}, map[string]pghive.Value{"content": pghive.Str("bazinga!")})
	org := g.AddNode([]string{"Org"}, map[string]pghive.Value{
		"url": pghive.Str("example.com"), "name": pghive.Str("Example")})
	place := g.AddNode([]string{"Place"}, map[string]pghive.Value{"name": pghive.Str("Greece")})
	mustEdge := func(labels []string, s, d pghive.ID, props map[string]pghive.Value) {
		if _, err := g.AddEdge(labels, s, d, props); err != nil {
			t.Fatal(err)
		}
	}
	mustEdge([]string{"KNOWS"}, alice, john, map[string]pghive.Value{"since": pghive.Int(2025)})
	mustEdge([]string{"KNOWS"}, bob, alice, nil)
	mustEdge([]string{"LIKES"}, john, post2, nil)
	mustEdge([]string{"LIKES"}, alice, post1, nil)
	mustEdge([]string{"WORKS_AT"}, bob, org, map[string]pghive.Value{"from": pghive.Int(2000)})
	mustEdge([]string{"LOCATED_IN"}, org, place, nil)
	return g
}

func TestPublicAPIFigure1(t *testing.T) {
	g := buildFigure1(t)
	res := pghive.Discover(g, pghive.Options{Seed: 1})
	s := res.Schema
	person := s.NodeTypeByToken("Person")
	if person == nil {
		t.Fatal("Person type missing")
	}
	// Alice (unlabeled, same structure) must merge into Person
	// (Example 5): 3 instances.
	if person.Instances != 3 {
		t.Errorf("Person.Instances = %d, want 3 (Alice merged)", person.Instances)
	}
	// Post has two patterns, one type (Example 5).
	post := s.NodeTypeByToken("Post")
	if post == nil || post.Instances != 2 {
		t.Fatalf("Post type wrong: %+v", post)
	}
	// Constraints per Example 6: name/gender/bday mandatory for
	// Person; imgFile optional for Post.
	for _, k := range []string{"name", "gender", "bday"} {
		if !person.Props[k].Mandatory {
			t.Errorf("Person.%s should be mandatory", k)
		}
	}
	if post.Props["imgFile"].Mandatory || post.Props["content"].Mandatory {
		t.Error("Post properties must be optional (Example 6)")
	}
	// Data types per Example 7.
	if person.Props["bday"].DataType != pghive.KindDate {
		t.Errorf("bday = %v, want DATE", person.Props["bday"].DataType)
	}
	if person.Props["name"].DataType != pghive.KindString {
		t.Errorf("name = %v, want STRING", person.Props["name"].DataType)
	}
}

func TestPublicAPISerialization(t *testing.T) {
	g := buildFigure1(t)
	res := pghive.Discover(g, pghive.Options{Seed: 1})
	strict := pghive.PGSchema(res.Schema, pghive.Strict, "Fig1")
	if !strings.Contains(strict, "STRICT") || !strings.Contains(strict, "personType") {
		t.Errorf("strict output:\n%s", strict)
	}
	loose := pghive.PGSchema(res.Schema, pghive.Loose, "Fig1")
	if !strings.Contains(loose, "LOOSE") {
		t.Errorf("loose output:\n%s", loose)
	}
	xsd := pghive.XSD(res.Schema)
	if !strings.Contains(xsd, "<xs:schema") {
		t.Errorf("xsd output:\n%s", xsd)
	}
}

func TestPublicAPIJSONLRoundTrip(t *testing.T) {
	g := buildFigure1(t)
	var buf bytes.Buffer
	if err := pghive.WriteJSONL(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := pghive.ReadJSONL(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if pghive.ComputeStats(got) != pghive.ComputeStats(g) {
		t.Error("stats differ after JSONL round-trip")
	}
}

func TestPublicAPIIncremental(t *testing.T) {
	g := buildFigure1(t)
	inc := pghive.NewIncremental(pghive.Options{Seed: 2})
	for _, b := range pghive.SplitBatches(g, 3, rand.New(rand.NewSource(4))) {
		inc.ProcessBatch(b)
	}
	res := inc.Finalize()
	if res.Schema.NodeTypeByToken("Person") == nil {
		t.Error("incremental run lost the Person type")
	}
	if len(res.NodeAssign) != g.NumNodes() {
		t.Errorf("assignments = %d, want %d", len(res.NodeAssign), g.NumNodes())
	}
}

func TestPublicAPIMinHash(t *testing.T) {
	g := buildFigure1(t)
	res := pghive.Discover(g, pghive.Options{Method: pghive.MinHash, Seed: 3})
	if res.Schema.NodeTypeByToken("Person") == nil {
		t.Error("MinHash variant lost the Person type")
	}
}

func TestPublicAPIPinnedParams(t *testing.T) {
	g := buildFigure1(t)
	p := &pghive.LSHParams{Tables: 8, BucketLength: 2}
	res := pghive.Discover(g, pghive.Options{Seed: 4, NodeParams: p, EdgeParams: p})
	if len(res.Schema.NodeTypes) == 0 {
		t.Error("pinned-parameter discovery produced nothing")
	}
}
