package pghive_test

// pghive_formats_test.go sweeps every built-in dataset through every
// export format and the persistence round-trip, asserting mutual
// consistency — the cross-cutting integration test of the public
// surface.

import (
	"bytes"
	"encoding/xml"
	"io"
	"strings"
	"testing"

	pghive "github.com/pghive/pghive"
	"github.com/pghive/pghive/internal/datagen"
	"github.com/pghive/pghive/internal/serialize"
)

func TestAllFormatsOnAllDatasets(t *testing.T) {
	for _, spec := range datagen.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			d := datagen.Generate(spec, 0.25, 5)
			res := pghive.Discover(d.Graph, pghive.Options{Seed: 5})
			s := res.Schema

			strict := pghive.PGSchema(s, pghive.Strict, "X")
			loose := pghive.PGSchema(s, pghive.Loose, "X")
			xsd := pghive.XSD(s)
			dot := pghive.DOT(s, "X")

			// Every declared type name appears in the PG-Schema and
			// XSD outputs.
			for _, name := range serialize.SortedTypeNames(s) {
				for fmtName, out := range map[string]string{
					"strict": strict, "loose": loose, "xsd": xsd,
				} {
					if !strings.Contains(out, name) {
						t.Errorf("%s output missing type %q", fmtName, name)
					}
				}
			}
			// DOT names node types by identifier and edge types by
			// their display name on the arrows.
			for _, nt := range s.NodeTypes {
				if !strings.Contains(dot, nt.Name()) && nt.Token != "" {
					t.Errorf("dot output missing node type %q", nt.Name())
				}
			}
			for _, et := range s.EdgeTypes {
				if et.Token != "" && !strings.Contains(dot, et.Token) {
					t.Errorf("dot output missing edge label %q", et.Token)
				}
			}
			// XSD must be well-formed.
			dec := xml.NewDecoder(strings.NewReader(xsd))
			for {
				if _, err := dec.Token(); err != nil {
					if err == io.EOF {
						break
					}
					t.Fatalf("XSD not well-formed: %v", err)
				}
			}
			// Persistence round-trip preserves the STRICT rendering
			// exactly (all constraint fields survive).
			var buf bytes.Buffer
			if err := pghive.WriteSchemaJSON(&buf, s); err != nil {
				t.Fatal(err)
			}
			restored, err := pghive.ReadSchemaJSON(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if got := pghive.PGSchema(restored, pghive.Strict, "X"); got != strict {
				t.Error("STRICT rendering differs after persistence round-trip")
			}
			// The source graph validates against its own schema.
			if r := pghive.Validate(d.Graph, s, pghive.ValidateStrict); !r.Valid() {
				t.Errorf("self-validation failed with %d violations; first: %v",
					len(r.Violations), r.Violations[0])
			}
		})
	}
}
