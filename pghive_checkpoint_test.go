package pghive_test

// Checkpoint round-trip property tests: a streamed discovery that is
// repeatedly killed — checkpointed after every k-th batch, thrown
// away, and restored into a fresh Incremental over only the remaining
// input — must end with a schema and per-element assignments
// bit-identical to an uninterrupted run. The crash simulation is
// total: the Incremental, the stream reader, and its resolver
// bookkeeping are all discarded; only the checkpoint bytes survive.

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"

	pghive "github.com/pghive/pghive"
	"github.com/pghive/pghive/internal/datagen"
)

// skipLines returns data with the first n newline-terminated lines
// removed — the "remaining input" after a crash that had consumed n
// JSONL elements (WriteJSONL emits exactly one element per line).
func skipLines(data []byte, n int) []byte {
	off := 0
	for i := 0; i < n; i++ {
		j := bytes.IndexByte(data[off:], '\n')
		if j < 0 {
			return nil
		}
		off += j + 1
	}
	return data[off:]
}

// checkpointedStreamRun discovers the JSONL data in batches of bs
// elements, simulating a crash + restore after every k-th batch.
func checkpointedStreamRun(t *testing.T, data []byte, opts pghive.Options, bs, k int) *pghive.Result {
	t.Helper()
	inc := pghive.NewIncremental(opts)
	stream := pghive.NewJSONLStream(bytes.NewReader(data), bs)
	consumed, batchNo := 0, 0
	for {
		b, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		consumed += b.Graph.NumNodes() + b.Graph.NumEdges()
		inc.ProcessBatch(b)
		batchNo++
		if batchNo%k != 0 {
			continue
		}

		// Crash: only these bytes survive.
		var ckpt bytes.Buffer
		if err := inc.WriteCheckpoint(&ckpt, &pghive.CheckpointExtras{Resolver: stream.Resolver()}); err != nil {
			t.Fatal(err)
		}
		img := ckpt.Bytes()

		// A checkpoint written immediately after restoring must be
		// byte-identical — the state image is closed under the round
		// trip (nothing silently dropped or reordered).
		inc2, extras, err := pghive.ResumeFromCheckpoint(opts, bytes.NewReader(img))
		if err != nil {
			t.Fatal(err)
		}
		var again bytes.Buffer
		resolver := (*pghive.Graph)(nil)
		if extras != nil {
			resolver = extras.Resolver
		}
		if err := inc2.WriteCheckpoint(&again, &pghive.CheckpointExtras{Resolver: resolver}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(img, again.Bytes()) {
			t.Fatalf("bs=%d k=%d batch %d: checkpoint not closed under restore+rewrite", bs, k, batchNo)
		}

		// Restore: fresh pipeline, fresh stream over the remaining
		// lines, resolver bookkeeping re-seeded from the checkpoint.
		inc = inc2
		stream = pghive.NewJSONLStream(bytes.NewReader(skipLines(data, consumed)), bs)
		if resolver != nil {
			nodes := resolver.Nodes()
			for i := range nodes {
				if err := stream.SeedResolver(nodes[i].ID, nodes[i].Labels); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return inc.Finalize()
}

// assertResultsIdentical compares two discovery results at every
// public granularity: serialized schema bytes, all four rendered
// formats, and per-element assignments.
func assertResultsIdentical(t *testing.T, name string, want, got *pghive.Result) {
	t.Helper()
	var wantJSON, gotJSON bytes.Buffer
	if err := pghive.WriteSchemaJSON(&wantJSON, want.Schema); err != nil {
		t.Fatal(err)
	}
	if err := pghive.WriteSchemaJSON(&gotJSON, got.Schema); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON.Bytes(), gotJSON.Bytes()) {
		t.Errorf("%s: serialized schema differs from uninterrupted run", name)
		return
	}
	if schemaFingerprint(want.Schema) != schemaFingerprint(got.Schema) {
		t.Errorf("%s: rendered schema differs from uninterrupted run", name)
		return
	}
	if len(got.NodeAssign) != len(want.NodeAssign) || len(got.EdgeAssign) != len(want.EdgeAssign) {
		t.Errorf("%s: assignment counts differ: %d/%d vs %d/%d", name,
			len(got.NodeAssign), len(got.EdgeAssign), len(want.NodeAssign), len(want.EdgeAssign))
		return
	}
	for id, ty := range want.NodeAssign {
		if g := got.NodeAssign[id]; g == nil || g.Name() != ty.Name() || g.ID != ty.ID {
			t.Fatalf("%s: node %d assigned %v, want %s", name, id, g, ty.Name())
		}
	}
	for id, ty := range want.EdgeAssign {
		if g := got.EdgeAssign[id]; g == nil || g.Name() != ty.Name() || g.ID != ty.ID {
			t.Fatalf("%s: edge %d assigned %v, want %s", name, id, g, ty.Name())
		}
	}
	if got.NodeClusters != want.NodeClusters || got.EdgeClusters != want.EdgeClusters ||
		got.NodeShapes != want.NodeShapes || got.EdgeShapes != want.EdgeShapes {
		t.Errorf("%s: accumulated counters differ", name)
	}
}

// TestCheckpointRoundTripProperty is the §4.6 crash-recovery
// contract over the full configuration matrix: batch sizes {1, 7,
// 1000} × interning on/off × ELSH/MinHash, with a checkpoint-restore
// cycle after every k-th batch (k scaled so each run restores several
// times).
func TestCheckpointRoundTripProperty(t *testing.T) {
	d := datagen.Generate(datagen.LDBC(), 0.25, 42)
	var buf bytes.Buffer
	if err := pghive.WriteJSONL(&buf, d.Graph); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// k per batch size: small batches checkpoint every ~100 batches,
	// large ones after every batch, so every configuration restores
	// at least twice mid-stream.
	ks := map[int]int{1: 97, 7: 13, 1000: 1}

	for _, method := range []pghive.Method{pghive.ELSH, pghive.MinHash} {
		for _, intern := range []bool{true, false} {
			opts := pghive.Options{Seed: 7, Method: method, DisableShapeInterning: !intern}
			for _, bs := range []int{1, 7, 1000} {
				name := fmt.Sprintf("%v/intern=%v/bs=%d", method, intern, bs)
				t.Run(name, func(t *testing.T) {
					// The uninterrupted baseline uses the same batch
					// size: the schema is batch-size-invariant, but the
					// accumulated per-batch counters are not.
					want, err := pghive.DiscoverStream(pghive.NewJSONLStream(bytes.NewReader(data), bs), opts, nil)
					if err != nil {
						t.Fatal(err)
					}
					got := checkpointedStreamRun(t, data, opts, bs, ks[bs])
					assertResultsIdentical(t, name, want, got)
				})
			}
		}
	}
}

// TestCheckpointResumeCSVStream covers the CSV resume path: the
// sequential edge-ID counter and the resolver bookkeeping both carry
// through a checkpoint taken between two relationship files, so the
// resumed run numbers — and types — the remaining edges identically.
func TestCheckpointResumeCSVStream(t *testing.T) {
	var people, knows1, knows2 strings.Builder
	people.WriteString("id:ID,:LABEL,name,age:int\n")
	knows1.WriteString(":START_ID,:END_ID,:TYPE,since:int\n")
	knows2.WriteString(":START_ID,:END_ID,:TYPE,weight:float\n")
	for i := 0; i < 60; i++ {
		fmt.Fprintf(&people, "%d,Person,p%d,%d\n", i, i, 20+i)
		fmt.Fprintf(&knows1, "%d,%d,KNOWS,%d\n", i, (i+1)%60, 2000+i)
		fmt.Fprintf(&knows2, "%d,%d,FOLLOWS,%d.5\n", i, (i+7)%60, i)
	}
	opts := pghive.Options{Seed: 3}

	// Uninterrupted run over all three sources.
	full := pghive.NewCSVStream(
		[]io.Reader{strings.NewReader(people.String())},
		[]io.Reader{strings.NewReader(knows1.String()), strings.NewReader(knows2.String())}, 30)
	want, err := pghive.DiscoverStream(full, opts, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: nodes + first relationship file, then a crash.
	inc := pghive.NewIncremental(opts)
	phase1 := pghive.NewCSVStream(
		[]io.Reader{strings.NewReader(people.String())},
		[]io.Reader{strings.NewReader(knows1.String())}, 30)
	if err := inc.DrainStream(phase1, nil); err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	err = inc.WriteCheckpoint(&ckpt, &pghive.CheckpointExtras{
		Resolver:   phase1.Resolver(),
		NextEdgeID: phase1.NextEdgeID(),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Restore and stream only the remaining relationship file.
	inc2, extras, err := pghive.ResumeFromCheckpoint(opts, &ckpt)
	if err != nil {
		t.Fatal(err)
	}
	phase2 := pghive.NewCSVStream(nil, []io.Reader{strings.NewReader(knows2.String())}, 30)
	phase2.SetNextEdgeID(extras.NextEdgeID)
	nodes := extras.Resolver.Nodes()
	for i := range nodes {
		if err := phase2.SeedResolver(nodes[i].ID, nodes[i].Labels); err != nil {
			t.Fatal(err)
		}
	}
	if err := inc2.DrainStream(phase2, nil); err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, "csv-resume", want, inc2.Finalize())
}

// TestCheckpointPreservesTypeIDCounterAfterRetract pins the type-ID
// gap left by retraction: after a type is retracted and compacted
// away, the live schema's ID counter sits past the hole, and a
// checkpoint restore must not close it — the next extracted type
// would otherwise reuse the compacted ID, and every later
// ABSTRACT_<id> name (and assignment map) would diverge from the
// uninterrupted run.
func TestCheckpointPreservesTypeIDCounterAfterRetract(t *testing.T) {
	mkGraph := func(label string, base pghive.ID) *pghive.Graph {
		g := pghive.NewGraph()
		for j := pghive.ID(0); j < 5; j++ {
			_ = g.PutNode(base+j, []string{label}, map[string]pghive.Value{"k": pghive.Int(int64(j))})
		}
		return g
	}
	run := func(restart bool) *pghive.Service {
		svc := pghive.NewService(pghive.Options{Seed: 1})
		svc.Ingest(mkGraph("A", 0))
		b := mkGraph("B", 100)
		svc.Ingest(b)
		svc.Retract(b) // type B compacted away; its ID stays burned
		if restart {
			var ckpt bytes.Buffer
			if err := svc.WriteCheckpoint(&ckpt); err != nil {
				t.Fatal(err)
			}
			var err error
			if svc, err = pghive.RestoreService(pghive.Options{Seed: 1}, &ckpt); err != nil {
				t.Fatal(err)
			}
		}
		svc.Ingest(mkGraph("C", 200))
		return svc
	}
	stayUp, restarted := run(false), run(true)
	var wantIDs, gotIDs []int
	for _, nt := range stayUp.Schema().NodeTypes {
		wantIDs = append(wantIDs, nt.ID)
	}
	for _, nt := range restarted.Schema().NodeTypes {
		gotIDs = append(gotIDs, nt.ID)
	}
	if fmt.Sprint(wantIDs) != fmt.Sprint(gotIDs) {
		t.Errorf("type IDs after restart %v, want %v — the restore reused a retracted type's ID", gotIDs, wantIDs)
	}
}

// TestServiceCheckpointCarriesCSVState covers the serving analogue:
// Service.WriteCheckpoint persists the sequential edge-ID counter and
// the endpoint bookkeeping, and Service.DrainStream seeds a fresh CSV
// reader from both — so CSV relationship files ingested across a
// restart end identical to an uninterrupted service.
func TestServiceCheckpointCarriesCSVState(t *testing.T) {
	var people, knows1, knows2 strings.Builder
	people.WriteString("id:ID,:LABEL,name\n")
	knows1.WriteString(":START_ID,:END_ID,:TYPE,since:int\n")
	knows2.WriteString(":START_ID,:END_ID,:TYPE,weight:float\n")
	for i := 0; i < 30; i++ {
		fmt.Fprintf(&people, "%d,Person,p%d\n", i, i)
		fmt.Fprintf(&knows1, "%d,%d,KNOWS,%d\n", i, (i+1)%30, 2000+i)
		fmt.Fprintf(&knows2, "%d,%d,FOLLOWS,%d.5\n", i, (i+7)%30, i)
	}
	opts := pghive.Options{Seed: 3}
	phase1 := func() pghive.StreamReader {
		return pghive.NewCSVStream(
			[]io.Reader{strings.NewReader(people.String())},
			[]io.Reader{strings.NewReader(knows1.String())}, 30)
	}
	phase2 := func() pghive.StreamReader {
		return pghive.NewCSVStream(nil, []io.Reader{strings.NewReader(knows2.String())}, 30)
	}

	// Uninterrupted service: both phases into one instance.
	stayUp := pghive.NewService(opts)
	if err := stayUp.DrainStream(phase1(), nil); err != nil {
		t.Fatal(err)
	}
	if err := stayUp.DrainStream(phase2(), nil); err != nil {
		t.Fatal(err)
	}

	// Restarted service: checkpoint between the phases.
	first := pghive.NewService(opts)
	if err := first.DrainStream(phase1(), nil); err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := first.WriteCheckpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	restored, err := pghive.RestoreService(opts, &ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.DrainStream(phase2(), nil); err != nil {
		t.Fatal(err)
	}

	a := stayUp.PGSchema(pghive.Strict, "G") + stayUp.XSD() + stayUp.DOT("G")
	b := restored.PGSchema(pghive.Strict, "G") + restored.XSD() + restored.DOT("G")
	if a != b {
		t.Error("restarted service schema differs from uninterrupted service")
	}
	sa, sb := stayUp.Stats(), restored.Stats()
	if sa.Nodes != sb.Nodes || sa.Edges != sb.Edges || sa.Batches != sb.Batches {
		t.Errorf("restarted service stats %d/%d/%d differ from uninterrupted %d/%d/%d",
			sb.Nodes, sb.Edges, sb.Batches, sa.Nodes, sa.Edges, sa.Batches)
	}
	// Both services checkpoint to identical bytes — edge-ID counter
	// and resolver content included.
	var ca, cb bytes.Buffer
	if err := stayUp.WriteCheckpoint(&ca); err != nil {
		t.Fatal(err)
	}
	if err := restored.WriteCheckpoint(&cb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca.Bytes(), cb.Bytes()) {
		t.Error("final checkpoints of uninterrupted and restarted service differ")
	}
}
