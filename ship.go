package pghive

// ship.go uploads the durable layer's artifacts to a storage backend
// (internal/store) so read-only followers can bootstrap and tail the
// leader without sharing its filesystem. A shipping round runs under
// compactMu — at OpenDurable and inside every Compact — and uploads,
// in this order: sealed WAL segments (under "wal/"), then the current
// checkpoint generation's data files (base image, delta runs), then
// its manifest LAST, so a follower that can fetch a manifest can
// always fetch every file it references; a torn round leaves at worst
// an unreferenced data object, never a dangling manifest.
//
// The ship watermark is the highest LSN L such that every record up
// to L is durable in the backend — the shipped generation's coverage
// extended by the contiguous uploaded sealed segments above it. While
// shipping is enabled, nothing below min(WAL floor, watermark) may be
// pruned locally (and the GC sweep keeps the shipped generations'
// files): a backend outage must stall reclamation loudly, never
// create records followers can no longer fetch. The watermark is
// persisted in each new manifest (Manifest.ShippedLSN) so a restart
// keeps honoring it before the first round completes.
//
// Shipping failures never fail a compaction and never degrade the
// write path — they are counted in DurableStats (ShipFailures /
// LastShipError) and retried next round, while the retained WAL keeps
// the backend recoverable.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/pghive/pghive/internal/runfile"
	"github.com/pghive/pghive/internal/store"
	"github.com/pghive/pghive/internal/vfs"
	"github.com/pghive/pghive/internal/wal"
)

// shipObjectPrefix is the backend namespace for WAL segment objects.
const shipObjectPrefix = walSubdir + "/"

// shipper tracks what the backend durably holds. All fields are
// guarded by DurableService.compactMu (shipping rounds and compaction
// serialize on it).
type shipper struct {
	backend store.Backend
	// uploaded is the set of object names present in the backend,
	// seeded from a List on the first round, maintained by every Put
	// and Delete after that.
	uploaded map[string]bool
	// watermark is the highest LSN proven durable in the backend (see
	// the file comment); it only advances.
	watermark uint64
	// man / prevMan are the newest and previous fully-uploaded
	// generations — the sweep and the backend GC keep both, mirroring
	// the local two-generation fallback rule.
	man     *runfile.Manifest
	prevMan *runfile.Manifest

	failures int64
	lastErr  string
}

// note records a shipping failure and returns it.
func (s *shipper) note(err error) error {
	s.failures++
	s.lastErr = err.Error()
	return err
}

// shipWatermarkLocked returns the upload watermark, or ^0 when
// shipping is disabled (no gate). Callers must hold compactMu.
func (d *DurableService) shipWatermarkLocked() uint64 {
	if d.ship == nil {
		return ^uint64(0)
	}
	return d.ship.watermark
}

// pruneFloorLocked gates a proposed WAL prune floor by the ship
// watermark: while shipping is enabled, segments the backend does not
// yet hold are retained no matter what the manifest's floor permits.
// Callers must hold compactMu.
func (d *DurableService) pruneFloorLocked(floor uint64) uint64 {
	return min(floor, d.shipWatermarkLocked())
}

// shipRoundLocked uploads everything the backend is missing and advances
// the watermark. The first error stops the current step (later rounds
// retry) but the watermark still advances over what did upload.
// Callers must hold compactMu.
func (d *DurableService) shipRoundLocked(ctx context.Context) error {
	s := d.ship
	if s == nil {
		return nil
	}
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
		s.note(err)
	}

	// Seed the uploaded set from the backend once per process: objects
	// a previous incarnation shipped need not ship again.
	if s.uploaded == nil {
		names, err := s.backend.List(ctx, "")
		if err != nil {
			return s.note(fmt.Errorf("pghive: ship: list backend: %w", err))
		}
		s.uploaded = make(map[string]bool, len(names))
		for _, n := range names {
			s.uploaded[n] = true
		}
	}

	// Sealed segments, in LSN order (sealed files are immutable, so an
	// object present in the backend is complete and final).
	sealed := d.wal().Sealed()
	for _, seg := range sealed {
		obj := shipObjectPrefix + filepath.Base(seg.Path)
		if s.uploaded[obj] {
			continue
		}
		data, err := readFileAll(d.fs, seg.Path)
		if err == nil {
			err = s.backend.Put(ctx, obj, data)
		}
		if err != nil {
			fail(fmt.Errorf("pghive: ship: segment %s: %w", obj, err))
			break
		}
		s.uploaded[obj] = true
	}

	// The current generation: data files first, manifest last.
	if cur := d.man; cur.Seq > 0 && (s.man == nil || s.man.Seq < cur.Seq) {
		shipped := true
		for f := range cur.Files() {
			if s.uploaded[f] {
				continue
			}
			data, err := readFileAll(d.fs, filepath.Join(d.dir, f))
			if err == nil {
				err = s.backend.Put(ctx, f, data)
			}
			if err != nil {
				fail(fmt.Errorf("pghive: ship: %s: %w", f, err))
				shipped = false
				break
			}
			s.uploaded[f] = true
		}
		if shipped {
			mf := runfile.ManifestName(cur.Seq)
			data, err := readFileAll(d.fs, filepath.Join(d.dir, mf))
			if err == nil {
				err = s.backend.Put(ctx, mf, data)
			}
			if err != nil {
				fail(fmt.Errorf("pghive: ship: %s: %w", mf, err))
				shipped = false
			} else {
				s.uploaded[mf] = true
			}
		}
		if shipped {
			s.prevMan, s.man = s.man, cur
		}
	}

	// Advance the watermark over what is now proven durable: the
	// shipped generation's coverage plus the contiguous uploaded
	// segments above it.
	if s.man != nil && s.man.Covered() > s.watermark {
		s.watermark = s.man.Covered()
	}
	for _, seg := range sealed {
		if !s.uploaded[shipObjectPrefix+filepath.Base(seg.Path)] {
			break
		}
		if seg.First <= s.watermark+1 && seg.Last > s.watermark {
			s.watermark = seg.Last
		}
	}

	d.shipGCLocked(ctx)
	return firstErr
}

// shipGCLocked deletes backend objects no follower can need anymore:
// checkpoint-layout objects outside the two newest shipped
// generations, and segment objects wholly below the shipped
// generation's WAL floor (the floor a follower falling back one
// generation still replays from). Best effort — failures are counted
// and the objects retried next round. Callers must hold compactMu.
func (d *DurableService) shipGCLocked(ctx context.Context) {
	s := d.ship
	if s == nil || s.man == nil {
		return
	}
	keep := s.man.Files()
	keep[runfile.ManifestName(s.man.Seq)] = true
	if s.prevMan != nil && s.prevMan.Seq > 0 {
		for f := range s.prevMan.Files() {
			keep[f] = true
		}
		keep[runfile.ManifestName(s.prevMan.Seq)] = true
	}
	var segObjs []string
	for obj := range s.uploaded {
		if strings.HasPrefix(obj, shipObjectPrefix) {
			segObjs = append(segObjs, obj)
			continue
		}
		if keep[obj] || !isShippedArtifact(obj) {
			continue
		}
		if err := s.backend.Delete(ctx, obj); err != nil && !errors.Is(err, store.ErrNotFound) {
			s.note(fmt.Errorf("pghive: ship: gc %s: %w", obj, err))
			continue
		}
		delete(s.uploaded, obj)
	}
	// A segment object is deletable when its successor starts at or
	// below floor+1 — everything it holds is then below the floor. The
	// floor is the newest generation's WAL floor gated by the retained
	// fallback generation's coverage: when a shipping round skipped a
	// generation, prevMan can be older than what WALFloor protects, and
	// a follower falling back to it must still be able to tail from
	// prevMan.Covered()+1.
	sort.Strings(segObjs)
	floor := s.man.WALFloor
	if s.prevMan != nil && s.prevMan.Covered() < floor {
		floor = s.prevMan.Covered()
	}
	for i := 0; i+1 < len(segObjs); i++ {
		next, ok := segObjectFirstLSN(segObjs[i+1])
		if !ok || next > floor+1 {
			break
		}
		if err := s.backend.Delete(ctx, segObjs[i]); err != nil && !errors.Is(err, store.ErrNotFound) {
			s.note(fmt.Errorf("pghive: ship: gc %s: %w", segObjs[i], err))
			break
		}
		delete(s.uploaded, segObjs[i])
	}
}

// isShippedArtifact reports whether a backend object name is one of
// the checkpoint-layout kinds the shipper manages (and may therefore
// garbage-collect). Foreign objects in a shared bucket are never
// touched.
func isShippedArtifact(obj string) bool {
	if _, ok := runfile.ParseManifestSeq(obj); ok {
		return true
	}
	if runfile.IsRun(obj) {
		return true
	}
	return strings.HasPrefix(obj, ckptPrefix) && strings.HasSuffix(obj, ckptSuffix)
}

// segObjectFirstLSN parses the first LSN out of a segment object name
// ("wal/<%020d>.wal").
func segObjectFirstLSN(obj string) (uint64, bool) {
	base := strings.TrimPrefix(obj, shipObjectPrefix)
	if !wal.IsSegment(base) {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(base, ".wal"), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// readFileAll reads one file through the service's vfs.
func readFileAll(fsys vfs.FS, path string) ([]byte, error) {
	f, err := vfs.Open(fsys, path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}
