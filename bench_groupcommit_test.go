// bench_groupcommit_test.go measures what group commit buys: acked
// durable writes per second as ingester concurrency grows, with the
// fsync count per acked write reported alongside.
//
// The filesystem underneath is MemFS with a fixed latency added to
// every file Sync, modeling a disk whose fsync costs ~1ms (commodity
// SSD territory). Measuring against the container's real disk is not
// reproducible: when a warm fsync returns in microseconds, producers
// never pile up behind the committer (on a single-core box they
// serialize entirely) and the coalescing ratio swings run to run.
// With the latency pinned, the benchmark isolates the algorithm: the
// committer parks in Sync, concurrent ingesters queue behind it, and
// the group size — fsyncs/op — is a stable property of the design.
package pghive_test

import (
	"fmt"
	"io/fs"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	pghive "github.com/pghive/pghive"
	"github.com/pghive/pghive/internal/vfs"
)

// syncCost is the modeled fsync latency.
const syncCost = time.Millisecond

// slowSyncFS delegates to an inner vfs.FS but adds syncCost to every
// File.Sync, modeling stable-storage flush latency.
type slowSyncFS struct {
	vfs.FS
}

func (s *slowSyncFS) OpenFile(name string, flag int, perm fs.FileMode) (vfs.File, error) {
	f, err := s.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &slowSyncFile{File: f}, nil
}

func (s *slowSyncFS) CreateTemp(dir, pattern string) (vfs.File, error) {
	f, err := s.FS.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &slowSyncFile{File: f}, nil
}

type slowSyncFile struct {
	vfs.File
}

func (f *slowSyncFile) Sync() error {
	time.Sleep(syncCost)
	return f.File.Sync()
}

// BenchmarkGroupCommitThroughput distributes b.N acked Ingest calls
// over C concurrent ingesters against a group-commit leader whose
// fsync costs syncCost. Reported: ns per acked write (writes/s =
// 1e9/ns_per_op) and fsyncs/op — the coalescing ratio; 1.0 means no
// sharing, and it falls toward 1/C as ingesters stack up behind the
// committer's flush.
func BenchmarkGroupCommitThroughput(b *testing.B) {
	const deltaN = 10 // elements per write: 10 nodes + 10 ring edges

	for _, conc := range []int{1, 8, 64} {
		// No "-N" suffix in the name: benchgate strips a trailing
		// -digits as the GOMAXPROCS suffix.
		b.Run(fmt.Sprintf("conc%d", conc), func(b *testing.B) {
			d, err := pghive.OpenDurable("data", pghive.Options{Parallelism: 1}, pghive.DurableOptions{
				FS:                 &slowSyncFS{FS: vfs.NewMemFS()},
				DisableAutoCompact: true,
				GroupCommit:        true,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()

			// Warm the pipeline so setup cost stays out of the window.
			if _, err := d.Ingest(stressGraph(b, 1, deltaN)); err != nil {
				b.Fatal(err)
			}
			startSyncs := d.DurableStats().WALSyncs

			var next atomic.Int64
			var wg sync.WaitGroup
			var failed atomic.Bool
			b.ResetTimer()
			for w := 0; w < conc; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := next.Add(1)
						if i > int64(b.N) || failed.Load() {
							return
						}
						// Disjoint ID ranges per write keep the
						// applied graphs independent.
						base := pghive.ID(1_000_000 + i*1_000)
						if _, err := d.Ingest(stressGraph(b, base, deltaN)); err != nil {
							failed.Store(true)
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			syncs := d.DurableStats().WALSyncs - startSyncs
			b.ReportMetric(float64(syncs)/float64(b.N), "fsyncs/op")
		})
	}
}
