package pghive_test

// Concurrency stress test for the serving layer: N writer goroutines
// ingest and retract batches while M readers hammer the published
// snapshot (Schema / Validate / PGSchema / Stats). Run under -race in
// the CI test job, it is the black-box check of the service's two
// observable guarantees: reads are consistent snapshots (never a
// half-merged schema), and retraction returns the service to the
// prior state.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	pghive "github.com/pghive/pghive"
	"github.com/pghive/pghive/internal/datagen"
)

// writerGraph builds writer w's iteration-i batch: nodes, edges, and
// properties in a namespace disjoint from every other writer and from
// the base dataset, so concurrent type extraction never entangles
// writers and retraction provably returns to the base schema.
func writerGraph(w, i int) *pghive.Graph {
	g := pghive.NewGraph()
	base := pghive.ID(1_000_000 * (w + 1))
	label := fmt.Sprintf("Stress%d", w)
	const n = 20
	for j := 0; j < n; j++ {
		id := base + pghive.ID(i*n+j)
		_ = g.PutNode(id, []string{label}, map[string]pghive.Value{
			fmt.Sprintf("w%d_key", w): pghive.Int(int64(j)),
			fmt.Sprintf("w%d_tag", w): pghive.Str(fmt.Sprintf("v%d", j%3)),
		})
	}
	for j := 0; j < n; j++ {
		src := base + pghive.ID(i*n+j)
		dst := base + pghive.ID(i*n+(j+1)%n)
		_ = g.PutEdge(pghive.ID(base)+pghive.ID(i*n+j), []string{label + "_REL"}, src, dst, nil)
	}
	return g
}

// checkSnapshot asserts one published snapshot is internally
// consistent. It returns the snapshot sequence number so readers can
// assert publication order is monotone.
func checkSnapshot(t *testing.T, snap *pghive.ServiceSnapshot) uint64 {
	t.Helper()
	s, st := snap.Schema, snap.Stats
	if st.NodeTypes != len(s.NodeTypes) || st.EdgeTypes != len(s.EdgeTypes) {
		t.Errorf("snapshot %d: stats report %d/%d types, schema has %d/%d",
			st.Snapshot, st.NodeTypes, st.EdgeTypes, len(s.NodeTypes), len(s.EdgeTypes))
	}
	// Assignments must match the published schema: the per-type
	// instance tallies of the snapshot sum exactly to the number of
	// assigned elements reported by the same snapshot. A schema
	// published mid-merge, or stats taken out of sync with the schema
	// copy, breaks this equality.
	nodeSum, edgeSum := 0, 0
	for _, nt := range s.NodeTypes {
		if nt.Instances <= 0 {
			t.Errorf("snapshot %d: node type %s exposed with %d instances",
				st.Snapshot, nt.Name(), nt.Instances)
		}
		nodeSum += nt.Instances
		for l, c := range nt.Labels {
			if c < 0 || c > nt.Instances {
				t.Errorf("snapshot %d: type %s label %q count %d outside [0, %d]",
					st.Snapshot, nt.Name(), l, c, nt.Instances)
			}
		}
		for k, ps := range nt.Props {
			if ps.Count <= 0 || ps.Count > nt.Instances {
				t.Errorf("snapshot %d: type %s property %q count %d outside (0, %d]",
					st.Snapshot, nt.Name(), k, ps.Count, nt.Instances)
			}
		}
	}
	for _, et := range s.EdgeTypes {
		if et.Instances <= 0 {
			t.Errorf("snapshot %d: edge type %s exposed with %d instances",
				st.Snapshot, et.Name(), et.Instances)
		}
		edgeSum += et.Instances
	}
	if nodeSum != st.Nodes || edgeSum != st.Edges {
		t.Errorf("snapshot %d: schema instances sum to %d nodes / %d edges, stats report %d / %d",
			st.Snapshot, nodeSum, edgeSum, st.Nodes, st.Edges)
	}
	return st.Snapshot
}

func TestServiceConcurrentStress(t *testing.T) {
	const (
		writers    = 4
		readers    = 4
		iterations = 12
	)
	d := datagen.Generate(datagen.POLE(), 0.5, 1)
	base := d.Graph

	svc := pghive.NewService(pghive.Options{Seed: 1})
	svc.Ingest(base)
	baseFP := svc.PGSchema(pghive.Strict, "G") + svc.XSD() + svc.DOT("G")
	if rep := svc.Validate(base, pghive.ValidateLoose); !rep.Valid() {
		t.Fatalf("base graph invalid against its own schema: %v", rep.Violations[0])
	}

	var writerWG, readerWG sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < iterations; i++ {
				g := writerGraph(w, i)
				svc.Ingest(g)
				svc.Retract(g)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			var lastSeq uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := svc.Snapshot()
				seq := checkSnapshot(t, snap)
				if seq < lastSeq {
					t.Errorf("snapshot sequence went backwards: %d after %d", seq, lastSeq)
				}
				lastSeq = seq
				// The base dataset is never retracted, so every
				// snapshot — whatever the writers are doing — must
				// still type all of its elements.
				if rep := svc.Validate(base, pghive.ValidateLoose); !rep.Valid() {
					t.Errorf("snapshot %d: base graph no longer loose-valid: %v",
						seq, rep.Violations[0])
					return
				}
				if svc.PGSchema(pghive.Strict, "G") == "" || svc.XSD() == "" || svc.DOT("G") == "" {
					t.Error("serialization of a snapshot came back empty")
					return
				}
			}
		}()
	}
	writerWG.Wait()
	close(done)
	readerWG.Wait()

	// Every writer retracted everything it ingested, so the final
	// published schema is the base-only schema again, bit-identically.
	if got := svc.PGSchema(pghive.Strict, "G") + svc.XSD() + svc.DOT("G"); got != baseFP {
		t.Error("final schema after ingest/retract churn differs from the base schema")
	}
}

// TestServiceCSVEdgeIDsSkipIngestedIDs pins that a CSV stream drained
// after explicit-ID ingestion starts numbering above every edge ID
// the service has seen — CSV rows carry no IDs, and reusing an
// ingested ID would silently overwrite its assignment and corrupt
// retraction.
func TestServiceCSVEdgeIDsSkipIngestedIDs(t *testing.T) {
	svc := pghive.NewService(pghive.Options{Seed: 1})
	g := pghive.NewGraph()
	_ = g.PutNode(1, []string{"Person"}, nil)
	_ = g.PutNode(2, []string{"Person"}, nil)
	_ = g.PutEdge(5, []string{"KNOWS"}, 1, 2, nil) // explicit edge ID 5
	svc.Ingest(g)

	csv := pghive.NewCSVStream(nil,
		[]io.Reader{strings.NewReader(":START_ID,:END_ID,:TYPE\n1,2,LIKES\n2,1,LIKES\n")}, 10)
	if err := svc.DrainStream(csv, nil); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.Edges != 3 {
		t.Fatalf("service has %d edges, want 3 — a CSV edge ID collided with an ingested one", st.Edges)
	}
}

// TestServiceRetractDropsResolverEntries pins that retraction removes
// the batch's endpoint bookkeeping: without it a churn workload grows
// the resolver (and every checkpoint) without bound, and later edges
// resolve retracted nodes' stale labels. (The accumulated counters
// and shape caches legitimately keep history across churn; only the
// resolver must shrink back.)
func TestServiceRetractDropsResolverEntries(t *testing.T) {
	resolverOf := func(svc *pghive.Service) []struct {
		ID     pghive.ID `json:"id"`
		Labels []string  `json:"labels"`
	} {
		var buf bytes.Buffer
		if err := svc.WriteCheckpoint(&buf); err != nil {
			t.Fatal(err)
		}
		var ck struct {
			Resolver []struct {
				ID     pghive.ID `json:"id"`
				Labels []string  `json:"labels"`
			} `json:"resolver"`
		}
		if err := json.Unmarshal(buf.Bytes(), &ck); err != nil {
			t.Fatal(err)
		}
		return ck.Resolver
	}

	svc := pghive.NewService(pghive.Options{Seed: 1})
	base := writerGraph(0, 0)
	svc.Ingest(base)
	before := resolverOf(svc)
	if len(before) != base.NumNodes() {
		t.Fatalf("base resolver has %d entries, want %d", len(before), base.NumNodes())
	}
	for i := 1; i < 10; i++ {
		g := writerGraph(1, i)
		svc.Ingest(g)
		svc.Retract(g)
	}
	after := resolverOf(svc)
	if len(after) != len(before) {
		t.Fatalf("resolver grew from %d to %d entries under ingest/retract churn", len(before), len(after))
	}
	for _, rn := range after {
		for _, l := range rn.Labels {
			if l == "Stress1" {
				t.Fatalf("retracted node %d still tracked in the resolver", rn.ID)
			}
		}
	}
}

// TestServiceRetractRestoresBaseline pins the end state of the stress
// pattern deterministically: ingesting and then retracting the same
// batches leaves the published schema bit-identical to the base-only
// state, and the final checkpoint's assignments agree with the final
// schema type by type.
func TestServiceRetractRestoresBaseline(t *testing.T) {
	d := datagen.Generate(datagen.POLE(), 0.5, 1)
	svc := pghive.NewService(pghive.Options{Seed: 1})
	svc.Ingest(d.Graph)
	baseFP := svc.PGSchema(pghive.Strict, "G") + svc.PGSchema(pghive.Loose, "G") + svc.XSD() + svc.DOT("G")
	baseStats := svc.Stats()

	for w := 0; w < 3; w++ {
		for i := 0; i < 4; i++ {
			g := writerGraph(w, i)
			svc.Ingest(g)
			svc.Retract(g)
		}
	}

	gotFP := svc.PGSchema(pghive.Strict, "G") + svc.PGSchema(pghive.Loose, "G") + svc.XSD() + svc.DOT("G")
	if gotFP != baseFP {
		t.Error("ingest+retract cycles changed the published schema")
	}
	st := svc.Stats()
	if st.Nodes != baseStats.Nodes || st.Edges != baseStats.Edges {
		t.Errorf("element counts after retraction: %d/%d, want %d/%d",
			st.Nodes, st.Edges, baseStats.Nodes, baseStats.Edges)
	}

	// Checkpoint ↔ schema agreement: restoring the final state and
	// re-publishing must reproduce the same schema.
	var buf bytes.Buffer
	if err := svc.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := pghive.RestoreService(pghive.Options{Seed: 1}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	restoredFP := restored.PGSchema(pghive.Strict, "G") + restored.PGSchema(pghive.Loose, "G") + restored.XSD() + restored.DOT("G")
	if restoredFP != baseFP {
		t.Error("checkpoint round trip changed the published schema")
	}
}
