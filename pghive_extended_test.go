package pghive_test

import (
	"bytes"
	"testing"

	pghive "github.com/pghive/pghive"
)

func TestPublicAPIValidation(t *testing.T) {
	g := buildFigure1(t)
	res := pghive.Discover(g, pghive.Options{Seed: 1})
	r := pghive.Validate(g, res.Schema, pghive.ValidateStrict)
	if !r.Valid() {
		t.Fatalf("own data must validate: %v", r.Violations)
	}
	// A foreign node breaks conformance.
	g.AddNode([]string{"Dragon"}, map[string]pghive.Value{"fire": pghive.Bool(true)})
	r = pghive.Validate(g, res.Schema, pghive.ValidateLoose)
	if r.Valid() {
		t.Fatal("foreign node must violate")
	}
}

func TestPublicAPISchemaPersistence(t *testing.T) {
	g := buildFigure1(t)
	res := pghive.Discover(g, pghive.Options{Seed: 1})
	var buf bytes.Buffer
	if err := pghive.WriteSchemaJSON(&buf, res.Schema); err != nil {
		t.Fatal(err)
	}
	restored, err := pghive.ReadSchemaJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.NodeTypeByToken("Person") == nil {
		t.Fatal("Person lost through persistence")
	}
	// Resume incremental discovery from the restored schema: new data
	// merges into existing types.
	inc := pghive.ResumeIncremental(pghive.Options{Seed: 2}, restored)
	g2 := pghive.NewGraph()
	g2.AddNode([]string{"Person"}, map[string]pghive.Value{
		"name": pghive.Str("Zoe"), "gender": pghive.Str("f"),
		"bday": pghive.ParseLexical("2001-07-07")})
	inc.ProcessBatch(&pghive.Batch{Graph: g2, Resolver: g2, Index: 1})
	res2 := inc.Finalize()
	person := res2.Schema.NodeTypeByToken("Person")
	if person.Instances != 4 {
		t.Errorf("resumed Person instances = %d, want 4 (3 persisted + 1 new)", person.Instances)
	}
}

func TestPublicAPIAlignment(t *testing.T) {
	g := pghive.NewGraph()
	var employers []pghive.ID
	for i := 0; i < 40; i++ {
		label := "Organisation"
		if i%2 == 0 {
			label = "Firm"
		}
		employers = append(employers, g.AddNode([]string{label}, map[string]pghive.Value{
			"name": pghive.Str("e"), "url": pghive.Str("u")}))
	}
	var people []pghive.ID
	for i := 0; i < 60; i++ {
		people = append(people, g.AddNode([]string{"Person"}, map[string]pghive.Value{"name": pghive.Str("p")}))
	}
	for i, p := range people {
		if _, err := g.AddEdge([]string{"WORKS_AT"}, p, employers[i%len(employers)], nil); err != nil {
			t.Fatal(err)
		}
	}
	res := pghive.Discover(g, pghive.Options{Seed: 3})
	before := len(res.Schema.NodeTypes)
	merges := pghive.AlignNodeTypes(res.Schema, g, pghive.AlignOptions{})
	if len(merges) == 0 {
		t.Fatal("synonym employers must align")
	}
	if len(res.Schema.NodeTypes) != before-len(merges) {
		t.Errorf("type count %d after %d merges from %d", len(res.Schema.NodeTypes), len(merges), before)
	}
}

func TestPublicAPIStatsAndBatches(t *testing.T) {
	g := buildFigure1(t)
	st := pghive.ComputeStats(g)
	if st.Nodes != 7 || st.Edges != 6 {
		t.Errorf("stats = %+v", st)
	}
}
