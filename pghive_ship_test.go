package pghive_test

// Group commit and WAL shipping. Group commit's contract: identical
// semantics to the ungrouped write path — same bytes on disk for
// sequential writes, same idempotency and read-only behavior — with
// strictly fewer fsyncs under concurrency. Shipping's contract: after
// a compaction round, the backend holds everything a follower needs
// (manifest last, so a fetchable manifest implies fetchable files),
// and NOTHING local is pruned or swept past what the backend durably
// holds — a dead backend stalls reclamation loudly, it never creates
// records a follower can no longer fetch.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	pghive "github.com/pghive/pghive"
	"github.com/pghive/pghive/internal/runfile"
	"github.com/pghive/pghive/internal/store"
	"github.com/pghive/pghive/internal/vfs"
)

// flakyBackend wraps a store.Backend with a Put budget: after `allow`
// successful Puts (negative = unlimited), every Put fails. Get/List
// and Delete pass through so shipping state stays observable.
type flakyBackend struct {
	inner store.Backend

	mu    sync.Mutex
	allow int
	puts  int
}

var errBackendDown = errors.New("backend down")

func (b *flakyBackend) Put(ctx context.Context, name string, data []byte) error {
	b.mu.Lock()
	if b.allow >= 0 && b.puts >= b.allow {
		b.mu.Unlock()
		return errBackendDown
	}
	b.puts++
	b.mu.Unlock()
	return b.inner.Put(ctx, name, data)
}

func (b *flakyBackend) setAllow(n int) {
	b.mu.Lock()
	b.allow = n
	b.mu.Unlock()
}

func (b *flakyBackend) Get(ctx context.Context, name string) ([]byte, error) {
	return b.inner.Get(ctx, name)
}
func (b *flakyBackend) List(ctx context.Context, prefix string) ([]string, error) {
	return b.inner.List(ctx, prefix)
}
func (b *flakyBackend) Delete(ctx context.Context, name string) error {
	return b.inner.Delete(ctx, name)
}

func backendObjects(t *testing.T, b store.Backend) map[string]bool {
	t.Helper()
	names, err := b.List(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	return set
}

// backendManifest fetches and decodes one shipped manifest through the
// same checksummed reader recovery uses.
func backendManifest(t *testing.T, b store.Backend, obj string) *runfile.Manifest {
	t.Helper()
	data, err := b.Get(context.Background(), obj)
	if err != nil {
		t.Fatal(err)
	}
	mem := vfs.NewMemFS()
	if err := mem.MkdirAll("/x", 0o755); err != nil {
		t.Fatal(err)
	}
	writeMemFile(t, mem, "/x/"+obj, data)
	m, err := runfile.ReadManifest(mem, "/x/"+obj)
	if err != nil {
		t.Fatalf("shipped manifest %s does not decode: %v", obj, err)
	}
	return m
}

// gateReader is a StreamReader whose first Next signals entry and then
// blocks until released, ending the (empty) stream. Draining it holds
// the service write lock for exactly the gated window — the test's
// deterministic way to pile a burst of writers onto the committer's
// queue regardless of scheduler or core count.
type gateReader struct {
	entered chan struct{}
	release chan struct{}
}

func (r *gateReader) Next() (*pghive.Batch, error) {
	close(r.entered)
	<-r.release
	return nil, io.EOF
}

func TestGroupCommitCoalescesFsyncs(t *testing.T) {
	mem := vfs.NewMemFS()
	d, err := pghive.OpenDurable("data", pghive.Options{Seed: 3, Parallelism: 1}, pghive.DurableOptions{
		FS: mem, DisableAutoCompact: true, GroupCommit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := d.DurableStats().WALSyncs

	// Hold the write lock via a gated stream drain while a burst of
	// writers enqueues: the committer cannot start a group until the
	// gate opens, so the whole burst must commit in at most two groups
	// (the request the committer already picked, then the drained
	// rest) — a handful of fsyncs for 64 acknowledged writes.
	gate := &gateReader{entered: make(chan struct{}), release: make(chan struct{})}
	drainDone := make(chan error, 1)
	go func() { drainDone <- d.DrainStream(gate, nil) }()
	<-gate.entered

	const writers = 64
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = d.Ingest(stressGraph(t, pghive.ID(1000*(i+1)), 50))
		}(i)
	}
	time.Sleep(100 * time.Millisecond) // let every writer reach the queue
	close(gate.release)
	if err := <-drainDone; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	st := d.DurableStats()
	if got := st.WALNextLSN - 1; got != writers {
		t.Fatalf("logged %d records, want %d", got, writers)
	}
	syncs := st.WALSyncs - base
	if syncs > 4 {
		t.Fatalf("%d gated concurrent writes issued %d fsyncs, want at most 4", writers, syncs)
	}
	t.Logf("group commit: %d acked writes over %d fsyncs", writers, syncs)
	live := serviceImage(t, d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// The grouped log recovers on a plain (ungrouped) service to the
	// byte-identical state: grouping changed fsync scheduling, not the
	// log's contents.
	d2, err := pghive.OpenDurable("data", pghive.Options{Seed: 3, Parallelism: 1}, pghive.DurableOptions{
		FS: mem, DisableAutoCompact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if !bytes.Equal(live, serviceImage(t, d2)) {
		t.Fatal("recovered image differs from the live grouped service")
	}
}

func TestGroupCommitSemanticsMatchUngrouped(t *testing.T) {
	run := func(group bool) ([]byte, []bool) {
		mem := vfs.NewMemFS()
		d, err := pghive.OpenDurable("data", pghive.Options{Seed: 3, Parallelism: 1}, pghive.DurableOptions{
			FS: mem, DisableAutoCompact: true, GroupCommit: group,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		ctx := context.Background()
		var replays []bool
		for i := 0; i < 4; i++ {
			key := fmt.Sprintf("write-%d", i%3) // keys 0..2; i=3 replays key 0
			_, replayed, err := d.IngestIdempotent(ctx, key, stressGraph(t, pghive.ID(1000*(i%3+1)), 10))
			if err != nil {
				t.Fatal(err)
			}
			replays = append(replays, replayed)
		}
		if _, err := d.Retract(stressGraph(t, 2000, 10)); err != nil {
			t.Fatal(err)
		}
		return serviceImage(t, d), replays
	}
	plainImg, plainReplays := run(false)
	groupImg, groupReplays := run(true)
	if !bytes.Equal(plainImg, groupImg) {
		t.Fatal("grouped and ungrouped write paths produced different states")
	}
	for i := range plainReplays {
		if plainReplays[i] != groupReplays[i] {
			t.Fatalf("replay flags diverge at write %d: plain=%v group=%v", i, plainReplays[i], groupReplays[i])
		}
	}
	if !groupReplays[3] {
		t.Fatal("replayed key not detected under group commit")
	}
}

func TestGroupCommitDegradesAndFailsFast(t *testing.T) {
	// The second write's WAL fsync reports a full disk; the committer
	// must degrade the service exactly like the ungrouped path.
	plan := vfs.NewPlan(vfs.Fault{Op: vfs.OpSync, N: syncsThroughFirstIngest(t) + 1, Mode: vfs.FailEarly, Err: syscall.ENOSPC})
	d, err := pghive.OpenDurable("data", pghive.Options{Seed: 3, Parallelism: 1}, pghive.DurableOptions{
		FS: vfs.NewInjectFS(vfs.NewMemFS(), plan), DisableAutoCompact: true, GroupCommit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Ingest(stressGraph(t, 0, 5)); err != nil {
		t.Fatal(err)
	}
	_, err = d.Ingest(stressGraph(t, 1000, 5))
	var de *pghive.DurabilityError
	if !errors.As(err, &de) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("ENOSPC append returned %v, want DurabilityError wrapping ENOSPC", err)
	}
	if reason, degraded := d.Degraded(); !degraded || reason != pghive.DegradeDiskFull {
		t.Fatalf("Degraded() = %q, %v; want %q, true", reason, degraded, pghive.DegradeDiskFull)
	}
	_, err = d.Ingest(stressGraph(t, 2000, 5))
	var ro *pghive.ReadOnlyError
	if !errors.As(err, &ro) || ro.Reason != pghive.DegradeDiskFull {
		t.Fatalf("degraded write returned %v, want ReadOnlyError(disk-full)", err)
	}
}

// TestGroupCommitInGroupDuplicateFailsWithGroup is the regression test
// for acking an in-group idempotency duplicate before the group's
// fsync: when two requests carrying the same key land in one group and
// the group's AppendBatch fails, BOTH must get the error — a
// replayed:true ack for the duplicate would be an acknowledgment with
// nothing durable behind it.
func TestGroupCommitInGroupDuplicateFailsWithGroup(t *testing.T) {
	plan := vfs.NewPlan(vfs.Fault{Op: vfs.OpSync, N: syncsThroughFirstIngest(t) + 1, Mode: vfs.FailEarly, Err: syscall.ENOSPC})
	d, err := pghive.OpenDurable("data", pghive.Options{Seed: 3, Parallelism: 1}, pghive.DurableOptions{
		FS: vfs.NewInjectFS(vfs.NewMemFS(), plan), DisableAutoCompact: true, GroupCommit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Hold the write lock via a gated drain; a dummy write occupies the
	// committer (blocked on the lock), so the two keyed writes queue up
	// and drain into one group when the gate opens.
	gate := &gateReader{entered: make(chan struct{}), release: make(chan struct{})}
	drainDone := make(chan error, 1)
	go func() { drainDone <- d.DrainStream(gate, nil) }()
	<-gate.entered
	dummyDone := make(chan error, 1)
	go func() {
		_, err := d.Ingest(stressGraph(t, 0, 5))
		dummyDone <- err
	}()
	time.Sleep(50 * time.Millisecond)

	type keyedRes struct {
		replayed bool
		err      error
	}
	results := make(chan keyedRes, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, replayed, err := d.IngestIdempotent(context.Background(), "same-key", stressGraph(t, 1000, 5))
			results <- keyedRes{replayed, err}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(gate.release)
	if err := <-drainDone; err != nil {
		t.Fatal(err)
	}
	if err := <-dummyDone; err != nil {
		t.Fatal(err)
	}
	// The keyed group's fsync failed: no ack of any kind may have gone
	// out — not a success, and above all not a replayed:true.
	for i := 0; i < 2; i++ {
		r := <-results
		if r.replayed {
			t.Fatal("in-group duplicate acked replayed:true though the group fsync failed — ack without durability")
		}
		if r.err == nil {
			t.Fatal("keyed write acked success though the group fsync failed")
		}
	}
	if got := d.DurableStats().WALNextLSN - 1; got != 1 {
		t.Fatalf("%d records durable, want only the pre-fault dummy", got)
	}
}

// TestGroupCommitInGroupDuplicateReplaysOnce: the success side of the
// same scenario — two concurrent writes with one key yield exactly one
// applied record and exactly one replayed:true, whether they shared a
// group or not.
func TestGroupCommitInGroupDuplicateReplaysOnce(t *testing.T) {
	d, err := pghive.OpenDurable("data", pghive.Options{Seed: 3, Parallelism: 1}, pghive.DurableOptions{
		FS: vfs.NewMemFS(), DisableAutoCompact: true, GroupCommit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	gate := &gateReader{entered: make(chan struct{}), release: make(chan struct{})}
	drainDone := make(chan error, 1)
	go func() { drainDone <- d.DrainStream(gate, nil) }()
	<-gate.entered
	dummyDone := make(chan error, 1)
	go func() {
		_, err := d.Ingest(stressGraph(t, 0, 5))
		dummyDone <- err
	}()
	time.Sleep(50 * time.Millisecond)
	results := make(chan bool, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, replayed, err := d.IngestIdempotent(context.Background(), "same-key", stressGraph(t, 1000, 5))
			if err != nil {
				t.Error(err)
			}
			results <- replayed
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(gate.release)
	if err := <-drainDone; err != nil {
		t.Fatal(err)
	}
	if err := <-dummyDone; err != nil {
		t.Fatal(err)
	}
	replays := 0
	for i := 0; i < 2; i++ {
		if <-results {
			replays++
		}
	}
	if replays != 1 {
		t.Fatalf("%d of 2 same-key writes replayed, want exactly 1", replays)
	}
	if got := d.DurableStats().WALNextLSN - 1; got != 2 {
		t.Fatalf("%d records logged, want 2 (dummy + one keyed)", got)
	}
}

// TestGroupCommitCloseNeverStrandsWriters is the regression test for
// the submitCommit/Close race: a request whose enqueue select won the
// buffered commitCh send after d.stop closed could be left forever
// unanswered once the committer's shutdown drain had already run.
// Every writer racing Close must return — with success or ErrClosed,
// never a hang.
func TestGroupCommitCloseNeverStrandsWriters(t *testing.T) {
	for iter := 0; iter < 30; iter++ {
		d, err := pghive.OpenDurable("data", pghive.Options{Seed: 3, Parallelism: 1}, pghive.DurableOptions{
			FS: vfs.NewMemFS(), DisableAutoCompact: true, GroupCommit: true, GroupCommitMaxBatch: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		const writers = 8
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < writers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-start
				// Success and refusal are both fine; returning is the
				// assertion.
				_, _ = d.Ingest(stressGraph(t, pghive.ID(1000*(i+1)), 3))
			}(i)
		}
		close(start)
		go d.Close()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("iter %d: writer stranded after Close — submitCommit never answered", iter)
		}
		d.Close()
	}
}

func TestShipRoundUploadsGenerationManifestLast(t *testing.T) {
	mem := vfs.NewMemFS()
	backend := store.NewDir(vfs.NewMemFS(), "/backend")
	d, err := pghive.OpenDurable("data", pghive.Options{Seed: 3, Parallelism: 1}, pghive.DurableOptions{
		FS: mem, DisableAutoCompact: true, SegmentBytes: 4096, ShipTo: backend,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 6; i++ {
		if _, err := d.Ingest(stressGraph(t, pghive.ID(1000*(i+1)), 40)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	st := d.DurableStats()
	if st.ShipFailures != 0 {
		t.Fatalf("healthy backend saw %d ship failures (%s)", st.ShipFailures, st.LastShipError)
	}
	if st.ShippedLSN != st.CheckpointLSN {
		t.Fatalf("ShippedLSN = %d, want the compacted coverage %d", st.ShippedLSN, st.CheckpointLSN)
	}

	objs := backendObjects(t, backend)
	mf := runfile.ManifestName(st.ManifestSeq)
	if !objs[mf] {
		t.Fatalf("backend is missing the current manifest %s; has %v", mf, objs)
	}
	man := backendManifest(t, backend, mf)
	for f := range man.Files() {
		if !objs[f] {
			t.Fatalf("shipped manifest %s references %s, absent from the backend", mf, f)
		}
	}
	var segs int
	for o := range objs {
		if strings.HasPrefix(o, "wal/") {
			segs++
		}
	}
	if segs == 0 {
		t.Fatal("no sealed WAL segments shipped")
	}
}

// TestShipManifestNeverDanglesOnPartialFailure cuts the backend off
// after every possible number of successful uploads and verifies the
// manifest-last invariant each time: any manifest the backend holds
// references only objects the backend also holds.
func TestShipManifestNeverDanglesOnPartialFailure(t *testing.T) {
	// Count the uploads of a fully successful round first.
	probe := &flakyBackend{inner: store.NewDir(vfs.NewMemFS(), "/b"), allow: -1}
	mem := vfs.NewMemFS()
	d, err := pghive.OpenDurable("data", pghive.Options{Seed: 3, Parallelism: 1}, pghive.DurableOptions{
		FS: mem, DisableAutoCompact: true, SegmentBytes: 4096, ShipTo: probe,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := d.Ingest(stressGraph(t, pghive.ID(1000*(i+1)), 40)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	total := probe.puts
	d.Close()
	if total < 2 {
		t.Fatalf("probe round uploaded %d objects, need at least a file and a manifest", total)
	}

	for allow := 0; allow < total; allow++ {
		backend := &flakyBackend{inner: store.NewDir(vfs.NewMemFS(), "/b"), allow: allow}
		mem := vfs.NewMemFS()
		d, err := pghive.OpenDurable("data", pghive.Options{Seed: 3, Parallelism: 1}, pghive.DurableOptions{
			FS: mem, DisableAutoCompact: true, SegmentBytes: 4096, ShipTo: backend,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			if _, err := d.Ingest(stressGraph(t, pghive.ID(1000*(i+1)), 40)); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Compact(); err != nil {
			t.Fatalf("allow=%d: compaction must not fail on a ship failure: %v", allow, err)
		}
		if st := d.DurableStats(); st.ShipFailures == 0 {
			t.Fatalf("allow=%d: cut-off backend reported no ship failures", allow)
		}
		objs := backendObjects(t, backend)
		for o := range objs {
			if _, ok := runfile.ParseManifestSeq(o); !ok {
				continue
			}
			man := backendManifest(t, backend, o)
			for f := range man.Files() {
				if !objs[f] {
					t.Fatalf("allow=%d: backend manifest %s dangles: %s missing", allow, o, f)
				}
			}
		}
		d.Close()
	}
}

// TestPruneRetainsUnshippedSegments is the regression test for the
// upload-watermark gate: with shipping enabled and the backend down,
// compaction must NOT prune WAL segments (or let a restart prune them)
// past what the backend holds, no matter how far the manifest's WAL
// floor advances. Without the gate this test fails at the first-
// segment check: two compaction rounds push the floor past segment 1
// and the ungated prune deletes it.
func TestPruneRetainsUnshippedSegments(t *testing.T) {
	mem := vfs.NewMemFS()
	backend := &flakyBackend{inner: store.NewDir(vfs.NewMemFS(), "/b"), allow: 0} // down from the start
	d, err := pghive.OpenDurable("data", pghive.Options{Seed: 3, Parallelism: 1}, pghive.DurableOptions{
		FS: mem, DisableAutoCompact: true, SegmentBytes: 2048, ShipTo: backend,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two write+compact rounds: the second manifest's WAL floor is the
	// first round's coverage, so an ungated prune would reclaim every
	// first-round segment.
	for round := 0; round < 2; round++ {
		for i := 0; i < 4; i++ {
			if _, err := d.Ingest(stressGraph(t, pghive.ID(10000*round+1000*(i+1)), 40)); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Compact(); err != nil {
			t.Fatal(err)
		}
	}
	st := d.DurableStats()
	if st.ShipFailures == 0 {
		t.Fatal("dead backend reported no ship failures")
	}
	if st.ShippedLSN != 0 {
		t.Fatalf("ShippedLSN = %d with a backend that never stored anything", st.ShippedLSN)
	}
	firstSeg := filepath.Join("data", "wal", fmt.Sprintf("%020d.wal", 1))
	if !memExists(t, mem, firstSeg) {
		t.Fatalf("segment %s pruned while the backend holds nothing — shipped-watermark gate broken", firstSeg)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// A restart with the backend still down must keep honoring the
	// persisted watermark through its startup prune.
	d, err = pghive.OpenDurable("data", pghive.Options{Seed: 3, Parallelism: 1}, pghive.DurableOptions{
		FS: mem, DisableAutoCompact: true, SegmentBytes: 2048, ShipTo: backend,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !memExists(t, mem, firstSeg) {
		t.Fatalf("restart pruned %s despite the persisted ship watermark", firstSeg)
	}

	// Backend recovers: the next round ships everything and only then
	// reclaims the backlog.
	backend.setAllow(-1)
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	st = d.DurableStats()
	if st.ShippedLSN < st.CheckpointLSN {
		t.Fatalf("after recovery ShippedLSN = %d, want at least %d", st.ShippedLSN, st.CheckpointLSN)
	}
	if memExists(t, mem, firstSeg) {
		t.Fatalf("segment %s still retained after the backend caught up", firstSeg)
	}
	objs := backendObjects(t, backend)
	mf := runfile.ManifestName(st.ManifestSeq)
	if !objs[mf] {
		t.Fatalf("recovered backend is missing manifest %s; has %v", mf, objs)
	}
	d.Close()
}

// TestShipGCRetainsFallbackGenerationTail is the regression test for
// the backend segment-GC floor: when a shipping round fails and a
// checkpoint generation is skipped, the retained fallback generation
// (prevMan) is OLDER than the one the newest manifest's WALFloor
// protects. Segment GC must then keep the WAL tail above the
// fallback's coverage — a follower whose fetch of the newest shipped
// generation fails has to bootstrap from the fallback and tail from
// its covered LSN, not loop re-bootstrapping.
func TestShipGCRetainsFallbackGenerationTail(t *testing.T) {
	backend := &flakyBackend{inner: store.NewDir(vfs.NewMemFS(), "/b"), allow: -1}
	opts := pghive.Options{Seed: 3, Parallelism: 1}
	d, err := pghive.OpenDurable("data", opts, pghive.DurableOptions{
		FS: vfs.NewMemFS(), DisableAutoCompact: true, SegmentBytes: 2048, ShipTo: backend,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx := context.Background()
	round := func(r int) {
		t.Helper()
		for i := 0; i < 4; i++ {
			if _, err := d.Ingest(stressGraph(t, pghive.ID(100000*(r+1)+1000*(i+1)), 30)); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Compact(); err != nil {
			t.Fatal(err)
		}
	}

	// Round 1 ships generation A; round 2's shipping fails (generation
	// skipped); round 3 ships the current generation, whose WALFloor is
	// round 2's coverage — above what the retained fallback A covers.
	round(0)
	genA := d.DurableStats().ManifestSeq
	coveredA := d.DurableStats().CheckpointLSN
	backend.setAllow(0)
	round(1)
	backend.setAllow(-1)
	round(2)
	leaderLSN := d.DurableStats().WALNextLSN - 1

	objs := backendObjects(t, backend)
	if !objs[runfile.ManifestName(genA)] {
		t.Fatalf("fallback generation %d's manifest GC'd from the backend", genA)
	}

	// Simulate the newest shipped generation being unfetchable (the
	// exact case the fallback exists for) and replicate: the follower
	// must bootstrap from generation A and tail all the way to the
	// leader — which requires every segment above coveredA to still be
	// in the backend.
	cur := runfile.ManifestName(d.DurableStats().ManifestSeq)
	if cur == runfile.ManifestName(genA) {
		t.Fatal("test setup: current generation did not advance past the fallback")
	}
	if err := backend.Delete(ctx, cur); err != nil {
		t.Fatal(err)
	}
	f := pghive.NewFollower(opts, backend, pghive.FollowerOptions{})
	defer f.Close()
	if err := f.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	if got := f.Lag(ctx).BootstrapGeneration; got != genA {
		t.Fatalf("follower bootstrapped generation %d, want fallback %d", got, genA)
	}
	if f.AppliedLSN() != coveredA {
		t.Fatalf("fallback bootstrap positioned at LSN %d, want %d", f.AppliedLSN(), coveredA)
	}
	if err := f.TailOnce(ctx); err != nil {
		t.Fatalf("tail from the fallback generation: %v (segments above LSN %d GC'd?)", err, coveredA)
	}
	if got := f.AppliedLSN(); got != leaderLSN {
		t.Fatalf("follower caught up to LSN %d, want leader's %d — fallback tail GC'd from the backend", got, leaderLSN)
	}
	if !bytes.Equal(serviceImage(t, d), serviceImage(t, f)) {
		t.Fatal("follower image differs from leader after fallback bootstrap + tail")
	}
}
