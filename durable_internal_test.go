package pghive

// White-box proof that compaction cannot stall the write path: the
// compactor is parked indefinitely inside its fold (via the test
// hook, which runs while compactMu is held and the fold target is
// chosen) and writers must still complete ingests, retractions, and
// reads. This is deterministic — no timing heuristics anywhere: the
// writes run inline, so if the compactor held any lock they need the
// test deadlocks on the spot (and the go test timeout dumps every
// goroutine), and the park itself is verified by a non-blocking read
// of the compactor's completion channel, not by sleeping. CI load
// can slow this test down but can never flip its verdict.

import (
	"bytes"
	"testing"
)

func internalStressGraph(t *testing.T, base ID, n int) *Graph {
	t.Helper()
	g := NewGraph()
	for i := 0; i < n; i++ {
		if err := g.PutNode(base+ID(i), []string{"Blocked"}, map[string]Value{"k": Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n-1; i++ {
		if err := g.PutEdge(base+ID(i), []string{"NEXT"}, base+ID(i), base+ID(i+1), nil); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestCompactorNeverBlocksWriters(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, Options{Seed: 1, Parallelism: 1}, DurableOptions{
		NoSync:             true,
		DisableAutoCompact: true,
		SegmentBytes:       1, // every record seals its own segment
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 3; i++ {
		if _, err := d.Ingest(internalStressGraph(t, ID(100*i), 8)); err != nil {
			t.Fatal(err)
		}
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	d.compactTestHook = func() {
		close(entered)
		<-release
	}
	compactDone := make(chan error, 1)
	go func() { compactDone <- d.Compact() }()
	<-entered

	// The compactor is frozen mid-fold. Every service operation runs
	// inline on this goroutine: if the fold held any lock the write
	// or read path needs, the next call would block here forever and
	// the test binary's own timeout would fail the run with full
	// stack traces — no watchdog to misfire under CI load.
	for i := 3; i < 8; i++ {
		g := internalStressGraph(t, ID(100*i), 8)
		if _, err := d.Ingest(g); err != nil {
			t.Fatalf("ingest during compaction: %v", err)
		}
		if i == 5 {
			if _, err := d.Retract(g); err != nil {
				t.Fatalf("retract during compaction: %v", err)
			}
		}
		_ = d.Stats()
		_ = d.Schema()
	}

	// Every operation completed while the compactor was provably
	// still parked: the hook cannot return before release is closed,
	// so a finished Compact here would mean the sync point is broken.
	select {
	case err := <-compactDone:
		t.Fatalf("compactor finished while parked (err=%v) — sync point broken", err)
	default:
	}

	close(release)
	if err := <-compactDone; err != nil {
		t.Fatalf("compaction: %v", err)
	}
	if got := d.CheckpointLSN(); got == 0 {
		t.Fatal("compaction produced no checkpoint")
	}

	// The writes that landed while the compactor was parked are
	// durable: close and recover, states identical.
	var live bytes.Buffer
	if err := d.WriteCheckpoint(&live); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := OpenDurable(dir, Options{Seed: 1, Parallelism: 1}, DurableOptions{NoSync: true, DisableAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	var recovered bytes.Buffer
	if err := rec.WriteCheckpoint(&recovered); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live.Bytes(), recovered.Bytes()) {
		t.Fatal("state written during compaction did not survive recovery")
	}
}
