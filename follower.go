package pghive

// follower.go is the read-replica side of WAL shipping: a Follower
// bootstraps from the newest consistent checkpoint generation a
// storage backend holds (same fallback walk as local recovery) and
// then tails the shipped WAL segments, applying records through
// exactly the code path the leader's recovery uses and publishing each
// batch with the same atomic-pointer snapshot swap. Reads on a
// follower are therefore indistinguishable from reads on the leader at
// the same LSN — WriteCheckpoint produces bit-identical images — they
// just lag by the shipping horizon (the leader uploads sealed segments
// at each compaction round, never the active one).
//
// Divergence is structurally impossible: a record is applied only when
// its LSN is exactly appliedLSN+1. A torn or missing segment therefore
// stops the tail — counted in FollowerLag.FetchFaults, retried next
// poll — and when the gap can no longer be filled from segments (the
// backend GC already reclaimed them) the follower re-bootstraps from a
// newer shipped generation. The one thing a follower never does is
// skip a record and keep serving.
//
// Followers refuse writes with the same machine-readable ReadOnlyError
// contract declared read-only degradation uses, under the dedicated
// ReadOnlyFollower reason.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pghive/pghive/internal/core"
	"github.com/pghive/pghive/internal/pg"
	"github.com/pghive/pghive/internal/runfile"
	"github.com/pghive/pghive/internal/store"
	"github.com/pghive/pghive/internal/vfs"
	"github.com/pghive/pghive/internal/wal"
)

// ReadOnlyFollower is the ReadOnlyError reason every follower write
// rejection carries: the service is a read replica, not a degraded
// leader — writes belong on the leader.
const ReadOnlyFollower = "follower"

// FollowerOptions tunes a read replica.
type FollowerOptions struct {
	// PollInterval is the tail cadence of Start's background loop
	// (default 500ms).
	PollInterval time.Duration
	// LeaderLSN, when set, lets Lag report how far behind the leader
	// the replica is (typically a closure fetching the leader's
	// DurableStats.WALNextLSN). Optional; without it Lag reports only
	// the applied LSN.
	LeaderLSN func(context.Context) (uint64, error)
}

// Follower is a read-only replica of a leader that ships its WAL and
// checkpoints to a storage backend. The embedded Service's read side —
// Snapshot, Schema, Stats, Validate, renders — serves lock-free
// exactly as on the leader; the write methods are shadowed to fail
// fast with ReadOnlyError(ReadOnlyFollower). Construct with
// NewFollower, then either call Start for the managed
// bootstrap-and-tail loop or drive Bootstrap/TailOnce directly.
type Follower struct {
	*Service
	backend store.Backend
	opts    Options
	fopts   FollowerOptions

	// ready flips true once a bootstrap completes; until then the
	// replica serves the empty snapshot and /readyz-style probes
	// should report not-ready.
	ready atomic.Bool
	// applied is the LSN of the last WAL record absorbed into the
	// published state — atomic so Lag never takes the write lock.
	applied atomic.Uint64

	// bootGen / bootFallbacks describe the last bootstrap: the
	// manifest generation restored and how many newer-but-broken
	// generations were skipped to find it.
	bootGen       atomic.Uint64
	bootFallbacks atomic.Int64

	// fetchFaults counts tail rounds stopped by a fetch failure, a
	// torn segment, or an LSN discontinuity; lastFault is the most
	// recent. Every fault is retried on the next round.
	fetchFaults atomic.Int64
	lastFault   atomic.Pointer[string]

	stop      chan struct{}
	done      chan struct{}
	startOnce sync.Once
	closeOnce sync.Once
}

func (o FollowerOptions) withDefaults() FollowerOptions {
	if o.PollInterval <= 0 {
		o.PollInterval = 500 * time.Millisecond
	}
	return o
}

// NewFollower returns a follower serving the empty snapshot; no
// backend IO happens until Bootstrap or Start.
func NewFollower(opts Options, backend store.Backend, fopts FollowerOptions) *Follower {
	return &Follower{
		Service: newService(opts, NewIncremental(opts), nil),
		backend: backend,
		opts:    opts,
		fopts:   fopts.withDefaults(),
		stop:    make(chan struct{}),
	}
}

// Ready reports whether a bootstrap has completed — before that the
// replica serves the empty snapshot and should answer readiness probes
// negatively.
func (f *Follower) Ready() bool { return f.ready.Load() }

// AppliedLSN returns the LSN of the last WAL record the published
// state has absorbed.
func (f *Follower) AppliedLSN() uint64 { return f.applied.Load() }

// FollowerLag describes how far a replica trails its leader.
type FollowerLag struct {
	// Ready mirrors Follower.Ready.
	Ready bool `json:"ready"`
	// AppliedLSN is the replica's replication position.
	AppliedLSN uint64 `json:"appliedLSN"`
	// LeaderLSN is the last WAL LSN the leader has acknowledged, and
	// Lag the record count between them — both zero when no LeaderLSN
	// source is configured or the leader is unreachable.
	LeaderLSN uint64 `json:"leaderLSN,omitempty"`
	Lag       uint64 `json:"lag,omitempty"`
	// BootstrapGeneration is the shipped manifest generation the
	// replica restored; BootstrapFallbacks counts the newer
	// generations it had to skip (torn or incompletely shipped).
	BootstrapGeneration uint64 `json:"bootstrapGeneration"`
	BootstrapFallbacks  int64  `json:"bootstrapFallbacks,omitempty"`
	// FetchFaults counts tail rounds stopped by a fetch failure, torn
	// segment, or LSN gap (each retried); LastFault is the most
	// recent.
	FetchFaults int64  `json:"fetchFaults,omitempty"`
	LastFault   string `json:"lastFault,omitempty"`
}

// Lag snapshots the replica's replication position. When a LeaderLSN
// source is configured its failure is not an error — the position is
// still reported, with LeaderLSN zero.
func (f *Follower) Lag(ctx context.Context) FollowerLag {
	lag := FollowerLag{
		Ready:               f.ready.Load(),
		AppliedLSN:          f.applied.Load(),
		BootstrapGeneration: f.bootGen.Load(),
		BootstrapFallbacks:  f.bootFallbacks.Load(),
		FetchFaults:         f.fetchFaults.Load(),
	}
	if msg := f.lastFault.Load(); msg != nil {
		lag.LastFault = *msg
	}
	if f.fopts.LeaderLSN != nil {
		if lsn, err := f.fopts.LeaderLSN(ctx); err == nil {
			lag.LeaderLSN = lsn
			if lsn > lag.AppliedLSN {
				lag.Lag = lsn - lag.AppliedLSN
			}
		}
	}
	return lag
}

// Ingest fails fast: followers are read-only replicas.
func (f *Follower) Ingest(*Graph) (BatchTiming, error) {
	return BatchTiming{}, &ReadOnlyError{Reason: ReadOnlyFollower}
}

// Retract fails fast: followers are read-only replicas.
func (f *Follower) Retract(*Graph) (BatchTiming, error) {
	return BatchTiming{}, &ReadOnlyError{Reason: ReadOnlyFollower}
}

// DrainStream fails fast: followers are read-only replicas.
func (f *Follower) DrainStream(StreamReader, func(BatchTiming)) error {
	return &ReadOnlyError{Reason: ReadOnlyFollower}
}

// IngestContext fails fast: followers are read-only replicas. Shadowed
// alongside Ingest so no write variant of the embedded Service can
// mutate the replica and diverge it from the leader.
func (f *Follower) IngestContext(context.Context, *Graph) (BatchTiming, error) {
	return BatchTiming{}, &ReadOnlyError{Reason: ReadOnlyFollower}
}

// RetractContext fails fast: followers are read-only replicas.
func (f *Follower) RetractContext(context.Context, *Graph) (BatchTiming, error) {
	return BatchTiming{}, &ReadOnlyError{Reason: ReadOnlyFollower}
}

// DrainStreamContext fails fast: followers are read-only replicas.
func (f *Follower) DrainStreamContext(context.Context, StreamReader, func(BatchTiming)) error {
	return &ReadOnlyError{Reason: ReadOnlyFollower}
}

// noteFault records one tail/bootstrap fault and returns err.
func (f *Follower) noteFault(err error) error {
	f.fetchFaults.Add(1)
	msg := err.Error()
	f.lastFault.Store(&msg)
	return err
}

// fetchGeneration materializes one shipped generation into a scratch
// filesystem and merges it through the same reader recovery uses, so
// every integrity check — manifest checksums, base/run CRCs, chain
// contiguity, LSN cross-checks — applies to fetched bytes too.
func (f *Follower) fetchGeneration(ctx context.Context, seq uint64) (*core.Image, *runfile.Manifest, error) {
	scratch := vfs.NewMemFS()
	const dir = "/replica"
	if err := scratch.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	fetch := func(obj string) error {
		data, err := f.backend.Get(ctx, obj)
		if err != nil {
			return fmt.Errorf("pghive: follower: fetch %s: %w", obj, err)
		}
		return vfs.WriteFileAtomic(scratch, dir+"/"+obj, func(w io.Writer) error {
			_, werr := w.Write(data)
			return werr
		})
	}
	mf := runfile.ManifestName(seq)
	if err := fetch(mf); err != nil {
		return nil, nil, err
	}
	man, err := runfile.ReadManifest(scratch, dir+"/"+mf)
	if err != nil {
		return nil, nil, err
	}
	for obj := range man.Files() {
		if err := fetch(obj); err != nil {
			return nil, nil, err
		}
	}
	img, err := mergedImage(scratch, dir, f.opts, man)
	if err != nil {
		return nil, nil, err
	}
	return img, man, nil
}

// Bootstrap restores the replica from the newest shipped generation
// that fully validates, walking older generations on failure exactly
// like local recovery (the backend keeps the previous generation for
// this). A backend with no manifest yet bootstraps the empty state and
// tails from LSN 1. On success the replica is Ready and positioned at
// the generation's covered LSN; TailOnce picks up from there.
func (f *Follower) Bootstrap(ctx context.Context) error {
	names, err := f.backend.List(ctx, "")
	if err != nil {
		return f.noteFault(fmt.Errorf("pghive: follower: list backend: %w", err))
	}
	var seqs []uint64
	for _, n := range names {
		if seq, ok := runfile.ParseManifestSeq(n); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })

	var img *core.Image
	var man *runfile.Manifest
	var notes []string
	for _, seq := range seqs {
		var gerr error
		img, man, gerr = f.fetchGeneration(ctx, seq)
		if gerr == nil {
			break
		}
		notes = append(notes, gerr.Error())
		img, man = nil, nil
	}
	if man == nil && len(notes) > 0 {
		return f.noteFault(fmt.Errorf("pghive: follower: no shipped generation recovers: %s", strings.Join(notes, "; ")))
	}
	f.bootFallbacks.Store(int64(len(notes)))

	var inc *Incremental
	var resolver *Graph
	var nextEdgeID ID
	var covered, gen uint64
	if man == nil {
		inc = NewIncremental(f.opts)
	} else {
		restored, extras, rerr := core.RestoreImage(f.opts, img)
		if rerr != nil {
			return f.noteFault(fmt.Errorf("pghive: follower: restore image: %w", rerr))
		}
		inc, resolver, nextEdgeID = restored, extras.Resolver, extras.NextEdgeID
		covered, gen = man.Covered(), man.Seq
	}

	f.mu.Lock()
	f.inc = inc
	if resolver != nil {
		f.resolver = resolver
	} else {
		f.resolver = pg.NewGraph()
		f.resolver.AllowDanglingEdges(true)
	}
	f.nextEdgeID = nextEdgeID
	f.publish()
	f.applied.Store(covered)
	f.mu.Unlock()
	f.bootGen.Store(gen)
	f.ready.Store(true)
	return nil
}

// applyShippedRecord folds one tailed WAL record into the live state
// and publishes, under the write lock — the same per-batch snapshot
// cadence the leader has.
func (f *Follower) applyShippedRecord(rec wal.Record) error {
	g, _, retract, err := decodeWALRecord(rec)
	if err != nil {
		return err
	}
	f.mu.Lock()
	if retract {
		f.retractLocked(g)
	} else {
		f.ingestLocked(g)
	}
	f.applied.Store(rec.LSN)
	f.mu.Unlock()
	return nil
}

// TailOnce fetches and applies every shipped WAL record above the
// replica's position, in strict LSN order. Three outcomes per round:
// fully caught up with the shipped horizon (nil); a fetch fault or LSN
// discontinuity, counted and left for the next round to retry (error);
// or a gap below the oldest retained segment — the backend GC has
// reclaimed records the replica never saw — which triggers a
// re-bootstrap from a newer shipped generation. Records are applied
// one at a time, each checked to be exactly the successor of the
// last; a record that is not simply ends the round. The replica can
// lag; it cannot diverge.
func (f *Follower) TailOnce(ctx context.Context) error {
	if !f.ready.Load() {
		if err := f.Bootstrap(ctx); err != nil {
			return err
		}
	}
	names, err := f.backend.List(ctx, shipObjectPrefix)
	if err != nil {
		return f.noteFault(fmt.Errorf("pghive: follower: list segments: %w", err))
	}
	type seg struct {
		obj   string
		first uint64
	}
	var segs []seg
	for _, n := range names {
		if first, ok := segObjectFirstLSN(n); ok {
			segs = append(segs, seg{obj: n, first: first})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })

	// Start at the newest segment that can contain applied+1: segment
	// names carry only their first LSN, so the containing segment is
	// the last one starting at or below the target.
	want := f.applied.Load() + 1
	start := -1
	for i, s := range segs {
		if s.first <= want {
			start = i
		}
	}
	if start == -1 {
		if len(segs) == 0 {
			return nil // nothing shipped yet
		}
		// Every retained segment starts above the record the replica
		// needs: the backend GC reclaimed the gap. A newer shipped
		// generation must cover it — re-bootstrap from there.
		f.noteFault(fmt.Errorf("pghive: follower: need LSN %d, oldest shipped segment starts at %d", want, segs[0].first))
		f.ready.Store(false)
		return f.Bootstrap(ctx)
	}

	for _, s := range segs[start:] {
		data, err := f.backend.Get(ctx, s.obj)
		if err != nil {
			return f.noteFault(fmt.Errorf("pghive: follower: fetch %s: %w", s.obj, err))
		}
		applied := f.applied.Load()
		var gap error
		if _, err := wal.ScanSegment(bytes.NewReader(data), func(rec wal.Record) error {
			if rec.LSN <= applied {
				return nil
			}
			if rec.LSN != applied+1 {
				gap = fmt.Errorf("pghive: follower: %s jumps LSN %d -> %d", s.obj, applied, rec.LSN)
				return wal.ErrStopReplay
			}
			if err := f.applyShippedRecord(rec); err != nil {
				return err
			}
			applied = rec.LSN
			return nil
		}); err != nil && err != wal.ErrStopReplay {
			return f.noteFault(err)
		}
		if gap != nil {
			return f.noteFault(gap)
		}
	}
	return nil
}

// Start launches the managed replication loop: bootstrap (retried on
// the poll cadence until the backend yields a consistent generation),
// then TailOnce every PollInterval until Close. Faults never stop the
// loop — they are counted in Lag and retried.
func (f *Follower) Start() {
	f.startOnce.Do(func() {
		f.done = make(chan struct{})
		go func() {
			defer close(f.done)
			t := time.NewTicker(f.fopts.PollInterval)
			defer t.Stop()
			ctx := context.Background()
			_ = f.TailOnce(ctx)
			for {
				select {
				case <-f.stop:
					return
				case <-t.C:
					_ = f.TailOnce(ctx)
				}
			}
		}()
	})
}

// Close stops the replication loop. The follower keeps serving its
// last published snapshot.
func (f *Follower) Close() error {
	f.closeOnce.Do(func() {
		close(f.stop)
		if f.done != nil {
			<-f.done
		}
	})
	return nil
}
