// Command pghive-lint runs the project's invariant analyzers
// (internal/analysis/...) over a set of Go packages and prints one
// line per finding:
//
//	file:line:col: message [analyzer]
//
// Exit status: 0 when the tree is clean, 1 when any analyzer reported
// a diagnostic, 2 when the packages could not be loaded or analyzed.
//
// Usage:
//
//	pghive-lint [-dir path] [packages]
//
// Packages default to ./... and are resolved by `go list` relative to
// -dir (default the current directory), so the usual CI invocation is
// simply `go run ./cmd/pghive-lint ./...` at the module root.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/pghive/pghive/internal/analysis"
	"github.com/pghive/pghive/internal/analysis/ctxwrite"
	"github.com/pghive/pghive/internal/analysis/detord"
	"github.com/pghive/pghive/internal/analysis/exportdoc"
	"github.com/pghive/pghive/internal/analysis/lockdisc"
	"github.com/pghive/pghive/internal/analysis/vfsio"
	"github.com/pghive/pghive/internal/analysis/walerr"
)

// analyzers is the full pghive invariant suite, in the order the
// README's verification matrix documents them.
var analyzers = []*analysis.Analyzer{
	vfsio.Analyzer,
	lockdisc.Analyzer,
	detord.Analyzer,
	ctxwrite.Analyzer,
	walerr.Analyzer,
	exportdoc.Analyzer,
}

func main() {
	os.Exit(run())
}

func run() int {
	dir := flag.String("dir", ".", "directory to resolve package patterns from (a module root)")
	list := flag.Bool("list", false, "print the analyzer names and docs, then exit")
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pghive-lint: %v\n", err)
		return 2
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pghive-lint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		pos := d.Pkg.Fset.Position(d.Diagnostic.Pos)
		fmt.Printf("%s:%d:%d: %s [%s]\n", pos.Filename, pos.Line, pos.Column, d.Diagnostic.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "pghive-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
