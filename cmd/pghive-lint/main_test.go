package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLint compiles the pghive-lint binary once into a temp dir.
func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "pghive-lint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// writeModule materializes a module from path->source in a temp dir.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runLint(t *testing.T, bin, dir string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, "-dir", dir, "./...")
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("run pghive-lint: %v\n%s", err, out)
	}
	return string(out), ee.ExitCode()
}

// TestSmokeViolations seeds one violation per analyzer in a synthetic
// module and asserts the driver exits 1 with each analyzer's
// diagnostic attributed in the output.
func TestSmokeViolations(t *testing.T) {
	bin := buildLint(t)
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/smoke\n\ngo 1.23\n",
		// vfsio: direct os.Open inside internal/wal.
		"internal/wal/wal.go": `package wal

import "os"

type handle struct{}

func (handle) Close() error { return nil }

func Read(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	return f.Close()
}

// walerr: statement-discarded Close on a durable path.
func Drop(h handle) {
	h.Close()
}
`,
		// detord: map range appending with no sort.
		"internal/serialize/serialize.go": `package serialize

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`,
		// lockdisc + ctxwrite: a Locked helper called without the lock,
		// and a context discarded for a fresh Background.
		"pghive/service.go": `package pghive

import "context"

type Service struct{}

func (s *Service) applyLocked() {}

func (s *Service) Ingest(ctx context.Context) error {
	s.applyLocked()
	return work(context.Background())
}

func work(ctx context.Context) error { return ctx.Err() }
`,
	})

	out, code := runLint(t, bin, dir)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, out)
	}
	for _, want := range []string{
		"[vfsio]", "direct os.Open on a durable path",
		"[walerr]", "discarded error from Close",
		"[detord]", "range over map reaches append",
		"[lockdisc]", "use of applyLocked in Ingest",
		"[ctxwrite]", "context.Background in Ingest",
		"[exportdoc]", "exported type Service has no doc comment",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}

// TestSmokeClean asserts a module using only blessed idioms exits 0
// with no output.
func TestSmokeClean(t *testing.T) {
	bin := buildLint(t)
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/clean\n\ngo 1.23\n",
		"pghive/service.go": `// Package pghive is the smoke fixture of blessed idioms.
package pghive

import "context"

// Service is a documented export.
type Service struct{}

// IngestContext ingests under the caller's context.
func (s *Service) IngestContext(ctx context.Context) error { return ctx.Err() }

// Ingest is the context-free convenience wrapper.
func (s *Service) Ingest() error {
	return s.IngestContext(context.Background())
}
`,
	})

	out, code := runLint(t, bin, dir)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out)
	}
	if strings.TrimSpace(out) != "" {
		t.Fatalf("unexpected output on clean module:\n%s", out)
	}
}

// TestSmokeLoadError asserts a broken module yields exit 2, the
// distinct "could not analyze" status CI must not confuse with
// findings.
func TestSmokeLoadError(t *testing.T) {
	bin := buildLint(t)
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/broken\n\ngo 1.23\n",
		"p/p.go": "package p\n\nfunc Broken() { return undefinedIdent }\n",
	})

	out, code := runLint(t, bin, dir)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\n%s", code, out)
	}
	if !strings.Contains(out, "pghive-lint:") {
		t.Fatalf("missing error banner:\n%s", out)
	}
}
