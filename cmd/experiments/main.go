// Command experiments regenerates every table and figure of the
// paper's evaluation (§5) as text tables.
//
// Usage:
//
//	experiments table1|table2|fig3|fig4|fig5|fig6|fig7|fig8|summary|all
//	    [-scale 1.0] [-seed 1] [-datasets POLE,MB6,...]
//
// Absolute times depend on the machine and the synthetic-dataset
// scale; the experiment *shapes* (method ordering, degradation under
// noise, incremental flatness) are what reproduce the paper. See
// EXPERIMENTS.md for the paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/pghive/pghive/internal/experiments"
)

func main() {
	var (
		scale    = flag.Float64("scale", 1, "dataset scale factor (1 = defaults ≈ Table 2 ÷ 200)")
		seed     = flag.Int64("seed", 1, "random seed")
		datasets = flag.String("datasets", "", "comma-separated dataset subset (default: all eight)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: experiments [flags] table1|table2|fig3|fig4|fig5|fig6|fig7|fig8|summary|all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	cfg := experiments.Config{Scale: *scale, Seed: *seed}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}

	what := strings.ToLower(flag.Arg(0))
	out := os.Stdout

	needGrid := map[string]bool{"fig3": true, "fig4": true, "fig5": true, "summary": true, "all": true}
	var cells []experiments.Cell
	if needGrid[what] {
		fmt.Fprintln(os.Stderr, "running the full method x dataset x noise x availability grid ...")
		cells = experiments.Grid(cfg)
	}

	run := func(name string) {
		switch name {
		case "table1":
			experiments.PrintTable1(out, experiments.Table1(cfg))
		case "table2":
			experiments.PrintTable2(out, experiments.Table2(cfg))
		case "fig3":
			experiments.PrintFig3(out, experiments.Fig3(cells))
		case "fig4":
			experiments.PrintFig4(out, cells)
		case "fig5":
			experiments.PrintFig5(out, cells)
		case "fig6":
			experiments.PrintFig6(out, experiments.Fig6(cfg))
		case "fig7":
			experiments.PrintFig7(out, experiments.Fig7(cfg))
		case "fig8":
			experiments.PrintFig8(out, experiments.Fig8(cfg))
		case "summary":
			experiments.PrintSummary(out, experiments.Summarize(cells))
		default:
			fmt.Fprintf(os.Stderr, "experiments: unknown target %q\n", name)
			os.Exit(2)
		}
		fmt.Fprintln(out)
	}
	if what == "all" {
		for _, name := range []string{"table1", "table2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "summary"} {
			run(name)
		}
		return
	}
	run(what)
}
