package main

// chaos_test.go: the end-to-end robustness soak. A retrying client
// (package client) drives the history-checked workload against the
// real serve mux over a fault-injecting filesystem, with the write
// queue squeezed to force 429 backpressure. Transient WAL faults make
// individual /ingest attempts fail with 500; the client's idempotency
// keys make the retries safe; and the recorded history plus the final
// stats prove every scripted batch landed exactly once anyway. This is
// the composition test for the whole PR: admission gate, degradation
// machinery (which must NOT trigger on transient faults), retry
// discipline, and exactly-once keys, all at once under -race.
//
// The CI chaos-smoke job runs exactly this test; CHAOS_SOAK=30s (any
// duration) extends the soak locally.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	pghive "github.com/pghive/pghive"
	"github.com/pghive/pghive/client"
	"github.com/pghive/pghive/internal/admission"
	"github.com/pghive/pghive/internal/histcheck"
	"github.com/pghive/pghive/internal/vfs"
)

// chaosClient adapts one retrying client.Client session to
// histcheck.Client. Stats decodes the durable-mode /stats shape (the
// service stats nest under "stats"). Snapshot reports ok=false: over
// HTTP there is no atomic stats+schema read.
type chaosClient struct {
	cl  *client.Client
	ctx context.Context
}

func (h *chaosClient) Ingest(g *pghive.Graph) error {
	_, err := h.cl.Ingest(h.ctx, g)
	return err
}

func (h *chaosClient) Stats() (histcheck.Observation, error) {
	raw, err := h.cl.Stats(h.ctx)
	if err != nil {
		return histcheck.Observation{}, err
	}
	var doc struct {
		Stats struct {
			Batches  int    `json:"batches"`
			Nodes    int    `json:"nodes"`
			Edges    int    `json:"edges"`
			Snapshot uint64 `json:"snapshot"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return histcheck.Observation{}, fmt.Errorf("stats: %w", err)
	}
	return histcheck.Observation{
		HasSnapshot: true, Snapshot: doc.Stats.Snapshot,
		HasStats: true, Batches: doc.Stats.Batches, Nodes: doc.Stats.Nodes, Edges: doc.Stats.Edges,
	}, nil
}

func (h *chaosClient) Schema() (histcheck.Observation, error) {
	data, err := h.cl.Schema(h.ctx, "json")
	if err != nil {
		return histcheck.Observation{}, err
	}
	var doc struct {
		NodeTypes []struct {
			Abstract  bool `json:"abstract"`
			Instances int  `json:"instances"`
		} `json:"nodeTypes"`
		EdgeTypes []struct {
			Abstract  bool `json:"abstract"`
			Instances int  `json:"instances"`
		} `json:"edgeTypes"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return histcheck.Observation{}, fmt.Errorf("schema: %w", err)
	}
	obs := histcheck.Observation{HasInstances: true}
	for _, ty := range doc.NodeTypes {
		if !ty.Abstract {
			obs.NodeInstances += ty.Instances
		}
	}
	for _, ty := range doc.EdgeTypes {
		if !ty.Abstract {
			obs.EdgeInstances += ty.Instances
		}
	}
	return obs, nil
}

func (h *chaosClient) Snapshot() (histcheck.Observation, bool, error) {
	return histcheck.Observation{}, false, nil
}

func TestChaosSmoke(t *testing.T) {
	cfg := histcheck.Config{Writers: 2, BatchesPerWriter: 3, Readers: 1, ReadsPerReader: 6}

	// Probe a fault-free iteration for its sync envelope, so every
	// faulted iteration can aim transient faults at positions that are
	// guaranteed to be exercised: after open (a fault during open would
	// fail recovery, which is PR 6's territory) and before close.
	probe := vfs.NewPlan()
	openSyncs, totalSyncs := func() (int, int) {
		fsys := vfs.NewInjectFS(vfs.NewMemFS(), probe)
		dur, err := pghive.OpenDurable("data", pghive.Options{Seed: 1, Parallelism: 2},
			pghive.DurableOptions{FS: fsys, DisableAutoCompact: true})
		if err != nil {
			t.Fatal(err)
		}
		defer dur.Close()
		after := probe.Ops()[vfs.OpSync]
		srv := httptest.NewServer(newServeMux(dur.Service, dur, 0, nil))
		defer srv.Close()
		h, err := histcheck.Run(func(string) histcheck.Client {
			return &chaosClient{ctx: context.Background(), cl: client.New(srv.URL, client.Options{HTTPClient: srv.Client()})}
		}, cfg)
		if err != nil {
			t.Fatalf("fault-free probe run: %v", err)
		}
		if err := histcheck.Check(h); err != nil {
			t.Fatalf("fault-free probe history rejected: %v", err)
		}
		return after, probe.Ops()[vfs.OpSync]
	}()
	if totalSyncs <= openSyncs {
		t.Fatalf("probe: workload performed no syncs (open %d, total %d)", openSyncs, totalSyncs)
	}

	// Soak budget: a handful of iterations by default, or as long as
	// CHAOS_SOAK says.
	budget := 3 * time.Second
	iterations := 6
	if testing.Short() {
		iterations = 2
	}
	if s := os.Getenv("CHAOS_SOAK"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			t.Fatalf("CHAOS_SOAK: %v", err)
		}
		budget, iterations = d, 1<<30
	}

	wantBatches, wantNodes := 0, 0
	for _, specs := range cfg.Script() {
		wantBatches += len(specs)
		for _, b := range specs {
			wantNodes += b.Nodes
		}
	}

	var faultsFired, retries uint64
	start := time.Now()
	for it := 0; it < iterations && (it == 0 || time.Since(start) < budget); it++ {
		rng := rand.New(rand.NewSource(int64(7919 + it)))

		// Transient sync faults, spaced ≥3 apart so a failed append's
		// rollback sync never faults too (adjacent sync faults are the
		// broken-WAL recipe — that declared-degradation path has its own
		// tests; the soak's contract is that TRANSIENT faults cost
		// retries, never writes).
		var faults []vfs.Fault
		for n := openSyncs + 1 + rng.Intn(3); n <= totalSyncs; n += 3 + rng.Intn(4) {
			mode := vfs.FailEarly
			if rng.Intn(2) == 0 {
				mode = vfs.FailLate
			}
			faults = append(faults, vfs.Fault{Op: vfs.OpSync, N: n, Mode: mode})
		}
		plan := vfs.NewPlan(faults...)
		dur, err := pghive.OpenDurable("data", pghive.Options{Seed: 1, Parallelism: 2},
			pghive.DurableOptions{FS: vfs.NewInjectFS(vfs.NewMemFS(), plan), DisableAutoCompact: true})
		if err != nil {
			t.Fatal(err)
		}
		// Write queue of 1 with two concurrent writers: backpressure
		// 429s are part of every iteration's diet, not a corner case.
		gate := admission.New(admission.Config{MaxWriteQueue: 1, MaxConcurrent: 32, RequestTimeout: 30 * time.Second})
		srv := httptest.NewServer(newServeMux(dur.Service, dur, 0, gate))

		ctx := context.Background()
		var clients []*client.Client
		h, err := histcheck.Run(func(string) histcheck.Client {
			cl := client.New(srv.URL, client.Options{
				HTTPClient:  srv.Client(),
				MaxAttempts: 10,
				BaseBackoff: 2 * time.Millisecond,
				MaxBackoff:  25 * time.Millisecond,
			})
			clients = append(clients, cl)
			return &chaosClient{ctx: ctx, cl: cl}
		}, cfg)
		if err != nil {
			t.Fatalf("iteration %d (faults %v): %v", it, faults, err)
		}
		if err := histcheck.Check(h); err != nil {
			t.Fatalf("iteration %d (faults %v): history rejected: %v", it, faults, err)
		}

		// Exactly-once under retries: the final state accounts for the
		// script precisely — no retried batch applied twice, none lost.
		st := dur.Stats()
		if st.Batches != wantBatches || st.Nodes != wantNodes {
			t.Fatalf("iteration %d (faults %v): final stats batches=%d nodes=%d, want %d/%d",
				it, faults, st.Batches, st.Nodes, wantBatches, wantNodes)
		}
		// Transient faults must not have degraded the service.
		if reason, degraded := dur.Degraded(); degraded {
			t.Fatalf("iteration %d: transient faults degraded the service (%s)", it, reason)
		}
		faultsFired += uint64(len(plan.Fired()))
		for _, cl := range clients {
			retries += cl.Retries()
		}
		srv.Close()
		dur.Close()
	}

	// The soak must have actually hurt: faults fired, and the client
	// earned its keep. (Fault positions are probed to land inside the
	// workload's sync envelope, so zero firings means the injector came
	// unwired.)
	if faultsFired == 0 {
		t.Fatal("no injected fault ever fired — the soak exercised nothing")
	}
	t.Logf("chaos smoke: %d faults fired, %d client retries over %s", faultsFired, retries, time.Since(start).Round(time.Millisecond))
}
