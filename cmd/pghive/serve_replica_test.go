package main

// serve_replica_test.go: the replication topology over the real HTTP
// surface. A durable group-commit leader ships into an object store
// served from its own mux at /v1/objects; followers bootstrap and
// tail that store through the same store.HTTP client a production
// -follow deployment uses. The tests pin the operator-visible
// contract: readiness flips only after bootstrap, GET /lag reports
// the position, every write route answers the machine-readable 409
// follower refusal, the object routes enforce their bearer token, a
// follower's checkpoint image is bit-identical to the leader's at the
// same LSN — and a history-checked concurrent workload across leader
// and followers satisfies the replicated consistency contract.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	pghive "github.com/pghive/pghive"
	"github.com/pghive/pghive/client"
	"github.com/pghive/pghive/internal/histcheck"
	"github.com/pghive/pghive/internal/store"
	"github.com/pghive/pghive/internal/vfs"
)

const testObjectToken = "replication-smoke-token"

// startShippingLeader serves a durable group-commit leader whose mux
// also exposes the object store it ships into, token-guarded like a
// real -ship-dir deployment.
func startShippingLeader(t *testing.T) (*pghive.DurableService, *httptest.Server) {
	t.Helper()
	backend := store.NewDir(vfs.NewMemFS(), "/objects")
	dur, err := pghive.OpenDurable("data", pghive.Options{Seed: 1, Parallelism: 2}, pghive.DurableOptions{
		FS:                 vfs.NewMemFS(),
		DisableAutoCompact: true,
		SegmentBytes:       4096,
		GroupCommit:        true,
		ShipTo:             backend,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dur.Close() })
	mux := newServeMux(dur.Service, dur, 0, nil)
	oh := store.Handler(backend, testObjectToken)
	mux.Handle(store.ObjectsRoute, oh)
	mux.Handle(store.ObjectsRoute+"/", oh)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return dur, srv
}

// startFollower points a follower at the leader's object routes over
// real HTTP and serves it through newFollowerMux, as -follow does.
// The tail loop is NOT started — callers call Start themselves, so a
// test that wants a deterministic bootstrap generation can hold the
// follower back until the leader has shipped one.
func startFollower(t *testing.T, leader *httptest.Server) (*pghive.Follower, *httptest.Server) {
	t.Helper()
	backend, err := store.NewHTTP(leader.URL, "", leader.Client())
	if err != nil {
		t.Fatal(err)
	}
	fol := pghive.NewFollower(pghive.Options{Seed: 1, Parallelism: 2}, backend, pghive.FollowerOptions{
		PollInterval: time.Millisecond,
		LeaderLSN:    leaderLSNProbe(leader.URL),
	})
	t.Cleanup(func() { fol.Close() })
	srv := httptest.NewServer(newFollowerMux(fol, nil))
	t.Cleanup(srv.Close)
	return fol, srv
}

func ingestHTTP(t *testing.T, base string, g *pghive.Graph) {
	t.Helper()
	var body bytes.Buffer
	if err := pghive.WriteJSONL(&body, g); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/ingest", "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("ingest: status %d: %s", resp.StatusCode, b)
	}
	io.Copy(io.Discard, resp.Body)
}

func replicaGraph(t *testing.T, base pghive.ID, n int) *pghive.Graph {
	t.Helper()
	g := pghive.NewGraph()
	for i := 0; i < n; i++ {
		if err := g.PutNode(base+pghive.ID(i), []string{"Repl"}, map[string]pghive.Value{
			"k": pghive.Int(int64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServeReplicaEndToEnd is the serve-level replication smoke test
// (the CI replication-smoke job runs it under -race): readiness,
// lag reporting, the read-only write contract, and leader/follower
// bit-identity, all over real HTTP.
func TestServeReplicaEndToEnd(t *testing.T) {
	dur, leaderSrv := startShippingLeader(t)
	fol, folSrv := startFollower(t, leaderSrv)

	// Before anything is shipped the replica must refuse readiness —
	// routing reads to it would serve the empty snapshot as truth.
	resp, err := http.Get(folSrv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready struct {
		Ready  bool   `json:"ready"`
		Reason string `json:"reason"`
		Role   string `json:"role"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || ready.Ready || ready.Reason != "bootstrapping" {
		t.Fatalf("pre-bootstrap readyz: status %d body %+v, want 503 bootstrapping", resp.StatusCode, ready)
	}

	// Load the leader over HTTP, then checkpoint: durable-mode
	// POST /checkpoint compacts, and compaction ships.
	for i := 0; i < 3; i++ {
		ingestHTTP(t, leaderSrv.URL, replicaGraph(t, pghive.ID(1+i*1000), 20))
	}
	resp, err = http.Post(leaderSrv.URL+"/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("leader checkpoint: status %d", resp.StatusCode)
	}

	// Only now start tailing: a shipped generation exists, so the
	// bootstrap deterministically restores from it rather than racing
	// the first ship and starting empty at generation zero.
	fol.Start()

	// A few more batches after the checkpoint land in segments the
	// shipper seals later, exercising the tail path too.
	for i := 0; i < 2; i++ {
		ingestHTTP(t, leaderSrv.URL, replicaGraph(t, pghive.ID(10_001+i*1000), 20))
	}
	if err := dur.Compact(); err != nil {
		t.Fatal(err)
	}

	leaderLSN := dur.DurableStats().WALNextLSN - 1
	waitFor(t, "follower to catch up", func() bool {
		return fol.Ready() && fol.AppliedLSN() == leaderLSN
	})

	resp, err = http.Get(folSrv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&ready)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !ready.Ready || ready.Role != "follower" {
		t.Fatalf("post-bootstrap readyz: status %d body %+v", resp.StatusCode, ready)
	}

	// GET /lag through the supported client; the leader position comes
	// from leaderLSNProbe reading the leader's own /stats.
	cl := client.New(folSrv.URL, client.Options{HTTPClient: folSrv.Client()})
	lag, err := cl.Lag(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !lag.Ready || lag.AppliedLSN != leaderLSN || lag.LeaderLSN != leaderLSN || lag.Lag != 0 {
		t.Fatalf("lag = %+v, want ready at applied=leader=%d", lag, leaderLSN)
	}
	if lag.BootstrapGeneration == 0 {
		t.Fatalf("lag reports no bootstrap generation: %+v", lag)
	}

	// The leader does not serve /lag: it is a replica-only endpoint.
	resp, err = http.Get(leaderSrv.URL + "/lag")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("leader /lag: status %d, want 404", resp.StatusCode)
	}

	// Bit-identity at the same LSN: the follower's streamed checkpoint
	// image equals the leader's, byte for byte.
	var want bytes.Buffer
	if err := dur.Service.WriteCheckpoint(&want); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(folSrv.URL+"/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("follower checkpoint: status %d err %v", resp.StatusCode, err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("follower checkpoint image differs from leader at LSN %d (%d vs %d bytes)",
			leaderLSN, len(got), want.Len())
	}

	// Every write route answers the declared read-only contract.
	for _, route := range []string{"/ingest", "/retract", "/rearm"} {
		resp, err := http.Post(folSrv.URL+route, "application/x-ndjson", strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		var refusal struct {
			ReadOnly bool   `json:"readOnly"`
			Reason   string `json:"reason"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&refusal); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict || !refusal.ReadOnly || refusal.Reason != string(pghive.ReadOnlyFollower) {
			t.Fatalf("POST %s on follower: status %d body %+v, want 409 readOnly reason %q",
				route, resp.StatusCode, refusal, pghive.ReadOnlyFollower)
		}
	}

	// The follower serves the leader's schema: instance counts match.
	resp, err = http.Get(folSrv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Stats pghive.ServiceStats `json:"stats"`
		Lag   *pghive.FollowerLag `json:"lag"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if lst := dur.Service.Stats(); stats.Stats.Nodes != lst.Nodes || stats.Stats.Batches != lst.Batches {
		t.Fatalf("follower stats %+v != leader %+v", stats.Stats, lst)
	}
	if stats.Lag == nil || !stats.Lag.Ready {
		t.Fatalf("follower /stats lag block missing or not ready: %+v", stats.Lag)
	}
}

// TestObjectRouteAuth pins the wire contract of the leader-served
// object store: reads are open (followers need no credentials), every
// mutating verb requires the bearer token, and an empty configured
// token authorizes nothing rather than everything.
func TestObjectRouteAuth(t *testing.T) {
	_, leaderSrv := startShippingLeader(t)

	put := func(url, token string) int {
		req, err := http.NewRequest(http.MethodPut, url, strings.NewReader("x"))
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	obj := leaderSrv.URL + store.ObjectsRoute + "/probe/auth-test"
	if code := put(obj, ""); code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated PUT: status %d, want 401", code)
	}
	if code := put(obj, "wrong-token"); code != http.StatusUnauthorized {
		t.Fatalf("wrong-token PUT: status %d, want 401", code)
	}
	if code := put(obj, testObjectToken); code != http.StatusNoContent {
		t.Fatalf("authorized PUT: status %d, want 204", code)
	}

	// Reads need no credentials — that is what lets a follower run
	// without the shipping token.
	resp, err := http.Get(obj)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "x" {
		t.Fatalf("unauthenticated GET: status %d body %q", resp.StatusCode, body)
	}

	// An empty token is a closed valve, not an open one.
	closed := httptest.NewServer(store.Handler(store.NewDir(vfs.NewMemFS(), "/o"), ""))
	defer closed.Close()
	if code := put(closed.URL+store.ObjectPath("probe"), testObjectToken); code != http.StatusUnauthorized {
		t.Fatalf("PUT with empty configured token: status %d, want 401", code)
	}
}

// TestServeReplicatedHistoryChecked runs the concurrent scripted
// workload across the leader and two HTTP followers and requires the
// recorded history to satisfy the replicated consistency contract:
// replicas may lag but never tear a batch, never run backwards, and
// never acknowledge a write.
func TestServeReplicatedHistoryChecked(t *testing.T) {
	dur, leaderSrv := startShippingLeader(t)

	// Shipping happens at compaction; keep the backend moving while
	// the scripted writers run.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
				if err := dur.Compact(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	t.Cleanup(func() { close(stop); <-done })

	cfg := histcheck.Config{
		Writers: 2, BatchesPerWriter: 4, Readers: 1, ReadsPerReader: 12,
		Replicas: []string{"replica-a", "replica-b"}, ReplicaReaders: 1,
	}
	if testing.Short() {
		cfg.BatchesPerWriter, cfg.ReadsPerReader = 3, 6
	}

	followers := make(map[string]*httptest.Server, len(cfg.Replicas))
	for _, name := range cfg.Replicas {
		fol, srv := startFollower(t, leaderSrv)
		fol.Start()
		followers[name] = srv
	}

	h, err := histcheck.RunReplicated(func(session, server string) histcheck.Client {
		base := leaderSrv
		if server != "" {
			base = followers[server]
		}
		return &chaosClient{ctx: context.Background(), cl: client.New(base.URL, client.Options{HTTPClient: base.Client()})}
	}, cfg)
	if err != nil {
		t.Fatalf("RunReplicated: %v", err)
	}
	if err := histcheck.Check(h); err != nil {
		t.Fatalf("replicated HTTP history rejected: %v", err)
	}

	replicaObs := 0
	for _, e := range h.Events {
		if e.Server != "" && e.Obs != nil {
			replicaObs++
		}
	}
	if want := len(cfg.Replicas) * cfg.ReplicaReaders * cfg.ReadsPerReader; replicaObs != want {
		t.Fatalf("recorded %d replica observations, want %d", replicaObs, want)
	}
}
