package main

// serve_hist_test.go: history-checked black-box test of the serve
// mux. Concurrent writer and reader sessions drive the real HTTP
// surface (POST /ingest, GET /stats, GET /schema) through
// internal/histcheck's recording driver; the recorded history is then
// checked offline for snapshot monotonicity, atomic batch visibility,
// and stats determinism. A final tamper probe corrupts one recorded
// observation to prove the checker would have caught a server that
// tore a batch.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	pghive "github.com/pghive/pghive"
	"github.com/pghive/pghive/internal/histcheck"
)

// httpClient adapts one HTTP session to histcheck.Client. Stats and
// schema are separate requests, so Snapshot reports ok=false: over
// this transport there is no atomic stats+schema read, and the
// checker accordingly never applies the conservation check to it.
type httpClient struct {
	base string
	c    *http.Client
}

func (h *httpClient) Ingest(g *pghive.Graph) error {
	var body bytes.Buffer
	if err := pghive.WriteJSONL(&body, g); err != nil {
		return err
	}
	resp, err := h.c.Post(h.base+"/ingest", "application/x-ndjson", &body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("ingest: status %d: %s", resp.StatusCode, b)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

func (h *httpClient) Stats() (histcheck.Observation, error) {
	resp, err := h.c.Get(h.base + "/stats")
	if err != nil {
		return histcheck.Observation{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return histcheck.Observation{}, fmt.Errorf("stats: status %d", resp.StatusCode)
	}
	var st struct {
		Batches  int    `json:"batches"`
		Nodes    int    `json:"nodes"`
		Edges    int    `json:"edges"`
		Snapshot uint64 `json:"snapshot"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return histcheck.Observation{}, fmt.Errorf("stats: %w", err)
	}
	return histcheck.Observation{
		HasSnapshot: true, Snapshot: st.Snapshot,
		HasStats: true, Batches: st.Batches, Nodes: st.Nodes, Edges: st.Edges,
	}, nil
}

func (h *httpClient) Schema() (histcheck.Observation, error) {
	resp, err := h.c.Get(h.base + "/schema?format=json")
	if err != nil {
		return histcheck.Observation{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return histcheck.Observation{}, fmt.Errorf("schema: status %d", resp.StatusCode)
	}
	var doc struct {
		NodeTypes []struct {
			Abstract  bool `json:"abstract"`
			Instances int  `json:"instances"`
		} `json:"nodeTypes"`
		EdgeTypes []struct {
			Abstract  bool `json:"abstract"`
			Instances int  `json:"instances"`
		} `json:"edgeTypes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return histcheck.Observation{}, fmt.Errorf("schema: %w", err)
	}
	obs := histcheck.Observation{HasInstances: true}
	for _, ty := range doc.NodeTypes {
		if !ty.Abstract {
			obs.NodeInstances += ty.Instances
		}
	}
	for _, ty := range doc.EdgeTypes {
		if !ty.Abstract {
			obs.EdgeInstances += ty.Instances
		}
	}
	return obs, nil
}

func (h *httpClient) Snapshot() (histcheck.Observation, bool, error) {
	return histcheck.Observation{}, false, nil
}

// TestServeHistoryChecked runs the concurrent scripted workload over
// the real mux and requires the recorded history to satisfy the
// serving contract end to end — then proves the oracle is live by
// corrupting one observation and watching the same checker reject it.
func TestServeHistoryChecked(t *testing.T) {
	svc := pghive.NewService(pghive.Options{Seed: 1, Parallelism: 2})
	srv := httptest.NewServer(newServeMux(svc, nil, 0, nil))
	defer srv.Close()

	cfg := histcheck.Config{Writers: 3, BatchesPerWriter: 5, Readers: 3, ReadsPerReader: 24}
	if testing.Short() {
		cfg = histcheck.Config{Writers: 2, BatchesPerWriter: 3, Readers: 2, ReadsPerReader: 9}
	}
	h, err := histcheck.Run(func(string) histcheck.Client {
		return &httpClient{base: srv.URL, c: srv.Client()}
	}, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := histcheck.Check(h); err != nil {
		t.Fatalf("HTTP history rejected: %v", err)
	}

	// The final stats must account for the whole script.
	wantNodes, wantBatches := 0, 0
	for _, spec := range h.Writers {
		wantBatches += len(spec)
		for _, b := range spec {
			wantNodes += b.Nodes
		}
	}
	st := svc.Stats()
	if st.Nodes != wantNodes || st.Batches != wantBatches {
		t.Fatalf("final stats nodes=%d batches=%d, want nodes=%d batches=%d",
			st.Nodes, st.Batches, wantNodes, wantBatches)
	}

	// Tamper probe: one stray node in a recorded observation must be
	// flagged — otherwise the pass above proved nothing.
	seen := map[uint64]int{}
	for _, e := range h.Events {
		if e.Obs != nil && e.Obs.HasSnapshot {
			seen[e.Obs.Snapshot]++
		}
	}
	tampered := false
	for _, e := range h.Events {
		if o := e.Obs; o != nil && o.HasStats && seen[o.Snapshot] == 1 {
			o.Nodes++
			tampered = true
			break
		}
	}
	if !tampered {
		t.Fatal("no uniquely observed snapshot to tamper")
	}
	if err := histcheck.Check(h); err == nil {
		t.Fatal("checker accepted the tampered HTTP history")
	}
}
