package main

// HTTP-level robustness contract of the serve mux: the admission
// gate's status codes (413/429/503 + Retry-After), the health/ready
// probes, declared read-only degradation with 409 and operator
// re-arm, and idempotency keys over the wire.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	pghive "github.com/pghive/pghive"
	"github.com/pghive/pghive/internal/admission"
	"github.com/pghive/pghive/internal/vfs"
)

func postKeyed(t *testing.T, srv *httptest.Server, path, key, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, srv.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func TestServeBodyCap413(t *testing.T) {
	svc := pghive.NewService(pghive.Options{Seed: 1})
	gate := admission.New(admission.Config{MaxBodyBytes: 64, MaxConcurrent: -1, MaxWriteQueue: -1, RequestTimeout: -1})
	srv := httptest.NewServer(newServeMux(svc, nil, 0, gate))
	defer srv.Close()

	code, body := post(t, srv, "/ingest", jsonlBatch(0)) // well over 64 bytes
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d %s, want 413", code, body)
	}
	if svc.Stats().Batches != 0 {
		t.Fatal("capped body still ingested")
	}
	// A body under the cap sails through.
	small := `{"kind":"node","id":1,"labels":["A"]}` + "\n"
	if code, body := post(t, srv, "/ingest", small); code != http.StatusOK {
		t.Fatalf("small body: %d %s", code, body)
	}
}

func TestServeWriteBackpressure429(t *testing.T) {
	svc := pghive.NewService(pghive.Options{Seed: 1})
	gate := admission.New(admission.Config{MaxWriteQueue: 1, MaxConcurrent: -1, RequestTimeout: -1})
	mux := newServeMux(svc, nil, 0, gate)

	// Park one write inside the gate by holding the service write
	// lock via a slow streamed request… simpler: drive the gate
	// directly with a stalled handler is admission's own test; here we
	// prove the mux wires writes through WrapWrite by saturating with
	// a concurrent slow body.
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/ingest", &slowBody{started: started, release: release})
		mux.ServeHTTP(rec, req)
	}()
	<-started

	rec := httptest.NewRecorder()
	rec2 := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/ingest", strings.NewReader(jsonlBatch(0))))
	mux.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/stats", nil))
	close(release)
	wg.Wait()

	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second concurrent write: %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if rec2.Code != http.StatusOK {
		t.Fatalf("read during write backpressure: %d, want 200 (reads have their own budget)", rec2.Code)
	}
}

// slowBody blocks the handler's body read until released, keeping the
// request inside the write gate.
type slowBody struct {
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func (s *slowBody) Read(p []byte) (int, error) {
	s.once.Do(func() { close(s.started) })
	<-s.release
	return 0, fmt.Errorf("request aborted") // unblock the handler with an error
}

func TestServeHealthProbesAndDrain(t *testing.T) {
	svc := pghive.NewService(pghive.Options{Seed: 1})
	gate := admission.New(admission.Config{})
	srv := httptest.NewServer(newServeMux(svc, nil, 0, gate))
	defer srv.Close()

	code, _, body := get(t, srv, "/healthz", "")
	if code != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz: %d %s", code, body)
	}
	code, _, body = get(t, srv, "/readyz", "")
	if code != http.StatusOK || !strings.Contains(string(body), "true") {
		t.Fatalf("readyz: %d %s", code, body)
	}

	gate.Drain()
	// Draining: readyz flips to 503 so the balancer routes away, the
	// gated API refuses new work, but healthz still answers 200.
	if code, _, body = get(t, srv, "/readyz", ""); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d %s, want 503", code, body)
	}
	if code, body := post(t, srv, "/ingest", jsonlBatch(0)); code != http.StatusServiceUnavailable {
		t.Fatalf("ingest while draining: %d %s, want 503", code, body)
	}
	if code, _, _ = get(t, srv, "/healthz", ""); code != http.StatusOK {
		t.Fatalf("healthz while draining: %d, want 200", code)
	}
}

func TestServeDegradedReadOnly409AndRearm(t *testing.T) {
	mem := vfs.NewMemFS()
	// Probe the sync count of open + one batch ingest (captured BEFORE
	// Close, which syncs too), then aim an ENOSPC at the second write's
	// append.
	var syncs int
	{
		probe := vfs.NewPlan()
		d, err := pghive.OpenDurable("data", pghive.Options{Seed: 1},
			pghive.DurableOptions{FS: vfs.NewInjectFS(vfs.NewMemFS(), probe), DisableAutoCompact: true})
		if err != nil {
			t.Fatal(err)
		}
		g, err := pghive.ReadJSONL(strings.NewReader(jsonlBatch(0)), false)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Ingest(g); err != nil {
			t.Fatal(err)
		}
		syncs = probe.Ops()[vfs.OpSync]
		d.Close()
	}
	if syncs == 0 {
		t.Fatal("probe saw no sync operations")
	}
	plan := vfs.NewPlan(vfs.Fault{Op: vfs.OpSync, N: syncs + 1, Mode: vfs.FailEarly, Err: syscall.ENOSPC})
	dur, err := pghive.OpenDurable("data", pghive.Options{Seed: 1},
		pghive.DurableOptions{FS: vfs.NewInjectFS(mem, plan), DisableAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	defer dur.Close()
	srv := httptest.NewServer(newServeMux(dur.Service, dur, 0, nil))
	defer srv.Close()

	if code, body := post(t, srv, "/ingest", jsonlBatch(0)); code != http.StatusOK {
		t.Fatalf("pre-fault ingest: %d %s", code, body)
	}
	// The second write trips the injected full disk → 500 (durability).
	if code, body := post(t, srv, "/ingest", jsonlBatch(50)); code != http.StatusInternalServerError {
		t.Fatalf("faulted ingest: %d %s, want 500", code, body)
	}
	// The service is now declared read-only: writes answer 409 with
	// the machine-readable reason, probes expose it.
	code, body := post(t, srv, "/ingest", jsonlBatch(100))
	if code != http.StatusConflict {
		t.Fatalf("degraded ingest: %d %s, want 409", code, body)
	}
	var rej struct {
		ReadOnly bool   `json:"readOnly"`
		Reason   string `json:"reason"`
	}
	if err := json.Unmarshal(body, &rej); err != nil {
		t.Fatal(err)
	}
	if !rej.ReadOnly || rej.Reason != pghive.DegradeDiskFull {
		t.Fatalf("409 body %s, want readOnly disk-full", body)
	}
	code, _, body = get(t, srv, "/healthz", "")
	if code != http.StatusOK || !strings.Contains(string(body), "degraded") {
		t.Fatalf("healthz while degraded: %d %s, want 200 + degraded", code, body)
	}
	// Reads still serve.
	if code, _, _ := get(t, srv, "/schema", ""); code != http.StatusOK {
		t.Fatalf("schema while degraded: %d", code)
	}

	// Operator re-arm over HTTP restores writes.
	if code, body := post(t, srv, "/rearm", ""); code != http.StatusOK {
		t.Fatalf("rearm: %d %s", code, body)
	}
	if code, body := post(t, srv, "/ingest", jsonlBatch(100)); code != http.StatusOK {
		t.Fatalf("post-rearm ingest: %d %s", code, body)
	}
}

func TestServeIdempotencyKeyOverHTTP(t *testing.T) {
	dir := t.TempDir()
	dur, err := pghive.OpenDurable(dir, pghive.Options{Seed: 1},
		pghive.DurableOptions{NoSync: true, DisableAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	defer dur.Close()
	srv := httptest.NewServer(newServeMux(dur.Service, dur, 0, nil))
	defer srv.Close()

	decode := func(body []byte) (replayed bool, batches int) {
		var resp struct {
			Replayed bool `json:"replayed"`
			Stats    struct {
				Batches int `json:"batches"`
			} `json:"stats"`
		}
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatalf("decode %s: %v", body, err)
		}
		return resp.Replayed, resp.Stats.Batches
	}

	code, body := postKeyed(t, srv, "/ingest", "key-1", jsonlBatch(0))
	if code != http.StatusOK {
		t.Fatalf("keyed ingest: %d %s", code, body)
	}
	if replayed, batches := decode(body); replayed || batches != 1 {
		t.Fatalf("first keyed ingest: replayed=%v batches=%d", replayed, batches)
	}
	// The retry: same key, same body — applied exactly once.
	code, body = postKeyed(t, srv, "/ingest", "key-1", jsonlBatch(0))
	if code != http.StatusOK {
		t.Fatalf("retried keyed ingest: %d %s", code, body)
	}
	if replayed, batches := decode(body); !replayed || batches != 1 {
		t.Fatalf("retried keyed ingest: replayed=%v batches=%d, want true/1", replayed, batches)
	}

	// Contract violations are 400s: keys without durable mode, and
	// oversized keys.
	plainSrv := httptest.NewServer(newServeMux(pghive.NewService(pghive.Options{Seed: 1}), nil, 0, nil))
	defer plainSrv.Close()
	if code, body := postKeyed(t, plainSrv, "/ingest", "key-1", jsonlBatch(0)); code != http.StatusBadRequest {
		t.Fatalf("keyed ingest without durable mode: %d %s, want 400", code, body)
	}
	if code, body := postKeyed(t, srv, "/ingest", strings.Repeat("k", 300), jsonlBatch(0)); code != http.StatusBadRequest {
		t.Fatalf("oversized key: %d %s, want 400", code, body)
	}
}

func TestServeRequestDeadlineAnswers503(t *testing.T) {
	dir := t.TempDir()
	dur, err := pghive.OpenDurable(dir, pghive.Options{Seed: 1},
		pghive.DurableOptions{NoSync: true, DisableAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	defer dur.Close()
	gate := admission.New(admission.Config{RequestTimeout: 50 * time.Millisecond, MaxConcurrent: -1, MaxWriteQueue: -1})
	mux := newServeMux(dur.Service, dur, 0, gate)

	// Hold the write lock so the HTTP write must queue past its
	// deadline.
	release := make(chan struct{})
	held := make(chan struct{})
	go func() {
		dur.DrainStream(&holdStream{held: held, release: release}, nil)
	}()
	<-held
	defer close(release)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/ingest", strings.NewReader(jsonlBatch(0))))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("deadline-expired write: %d %s, want 503", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

type holdStream struct {
	held    chan struct{}
	release chan struct{}
	once    sync.Once
}

func (h *holdStream) Next() (*pghive.Batch, error) {
	h.once.Do(func() { close(h.held) })
	<-h.release
	return nil, fmt.Errorf("released")
}
