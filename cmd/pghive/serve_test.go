package main

// End-to-end test of the serve-mode HTTP surface: ingest JSONL
// batches, read the schema in every format, validate, checkpoint, and
// restore a second service from the checkpoint — all through the
// same mux the real server mounts.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	pghive "github.com/pghive/pghive"
)

func post(t *testing.T, srv *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func get(t *testing.T, srv *httptest.Server, path, accept string) (int, string, []byte) {
	t.Helper()
	req, err := http.NewRequest("GET", srv.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), b
}

func jsonlBatch(firstID int) string {
	var b strings.Builder
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&b, `{"kind":"node","id":%d,"labels":["Person"],"props":{"name":{"t":"string","v":"p%d"},"age":{"t":"int","v":"%d"}}}`+"\n",
			firstID+i, i, 20+i)
	}
	for i := 0; i < 9; i++ {
		fmt.Fprintf(&b, `{"kind":"edge","id":%d,"labels":["KNOWS"],"src":%d,"dst":%d}`+"\n",
			firstID+i, firstID+i, firstID+i+1)
	}
	return b.String()
}

func TestServeHTTPEndpoints(t *testing.T) {
	svc := pghive.NewService(pghive.Options{Seed: 1})
	srv := httptest.NewServer(newServeMux(svc, nil, 0, nil))
	defer srv.Close()

	// Two ingest batches; the second one's edge endpoints partially
	// refer to the first batch's nodes, exercising the cross-request
	// resolver bookkeeping.
	if code, body := post(t, srv, "/ingest", jsonlBatch(0)); code != http.StatusOK {
		t.Fatalf("ingest 1: %d %s", code, body)
	}
	second := jsonlBatch(100) +
		`{"kind":"edge","id":500,"labels":["KNOWS"],"src":100,"dst":3}` + "\n"
	if code, body := post(t, srv, "/ingest", second); code != http.StatusOK {
		t.Fatalf("ingest 2: %d %s", code, body)
	}
	if code, body := post(t, srv, "/ingest", "not json\n"); code != http.StatusBadRequest {
		t.Fatalf("malformed ingest: %d %s", code, body)
	}

	// Stats agree with what went in.
	var stats pghive.ServiceStats
	code, _, body := get(t, srv, "/stats", "")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Nodes != 20 || stats.Edges != 19 || stats.Batches != 2 {
		t.Fatalf("stats report %d nodes / %d edges / %d batches, want 20/19/2",
			stats.Nodes, stats.Edges, stats.Batches)
	}

	// Every schema format, via ?format= and via Accept.
	for _, c := range []struct {
		path, accept, wantCT, wantSub string
	}{
		{"/schema?format=pgschema&mode=strict&name=G", "", "text/plain", "CREATE GRAPH TYPE G STRICT"},
		{"/schema?format=pgschema&mode=loose", "", "text/plain", "LOOSE"},
		{"/schema?format=xsd", "", "application/xml", "<xs:schema"},
		{"/schema?format=dot&name=G", "", "text/vnd.graphviz", "digraph G"},
		{"/schema?format=json", "", "application/json", `"nodeTypes"`},
		{"/schema", "application/json", "application/json", `"nodeTypes"`},
		{"/schema", "application/xml", "application/xml", "<xs:schema"},
		{"/schema", "text/vnd.graphviz", "text/vnd.graphviz", "digraph"},
		{"/schema", "", "text/plain", "CREATE GRAPH TYPE"},
	} {
		code, ct, body := get(t, srv, c.path, c.accept)
		if code != http.StatusOK {
			t.Fatalf("%s: %d %s", c.path, code, body)
		}
		if !strings.HasPrefix(ct, c.wantCT) {
			t.Errorf("%s (accept %q): content type %q, want %q", c.path, c.accept, ct, c.wantCT)
		}
		if !strings.Contains(string(body), c.wantSub) {
			t.Errorf("%s: body missing %q", c.path, c.wantSub)
		}
	}
	if code, _, _ := get(t, srv, "/schema?format=nope", ""); code != http.StatusBadRequest {
		t.Errorf("unknown format: got %d, want 400", code)
	}
	if code, _, _ := get(t, srv, "/schema?mode=strct", ""); code != http.StatusBadRequest {
		t.Errorf("typo'd schema mode: got %d, want 400", code)
	}
	if code, _ := post(t, srv, "/validate?mode=strct", jsonlBatch(0)); code != http.StatusBadRequest {
		t.Errorf("typo'd validate mode must not silently run loose: got %d, want 400", code)
	}

	// Validation: the ingested data conforms; an alien element does not.
	code, body = post(t, srv, "/validate?mode=strict", jsonlBatch(0))
	if code != http.StatusOK {
		t.Fatalf("validate: %d %s", code, body)
	}
	var rep struct {
		Checked int  `json:"checked"`
		Valid   bool `json:"valid"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Valid || rep.Checked != 19 {
		t.Fatalf("validate: %s", body)
	}
	code, body = post(t, srv, "/validate",
		`{"kind":"node","id":0,"labels":["Alien"],"props":{}}`+"\n")
	if code != http.StatusOK {
		t.Fatalf("validate alien: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Valid {
		t.Fatal("alien element reported valid")
	}

	// Checkpoint → restore: a second service resumed from the HTTP
	// checkpoint serves the identical schema.
	code, ckpt := post(t, srv, "/checkpoint", "")
	if code != http.StatusOK {
		t.Fatalf("checkpoint: %d", code)
	}
	restored, err := pghive.RestoreService(pghive.Options{Seed: 1}, bytes.NewReader(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	if restored.PGSchema(pghive.Strict, "G") != svc.PGSchema(pghive.Strict, "G") {
		t.Fatal("restored service serves a different schema")
	}

	// Retract the second batch (plus its extra edge): stats return to
	// the first batch's.
	if code, body := post(t, srv, "/retract", second); code != http.StatusOK {
		t.Fatalf("retract: %d %s", code, body)
	}
	code, _, body = get(t, srv, "/stats", "")
	if code != http.StatusOK {
		t.Fatal("stats after retract")
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Nodes != 10 || stats.Edges != 9 {
		t.Fatalf("stats after retract: %d nodes / %d edges, want 10/9", stats.Nodes, stats.Edges)
	}
}

// TestServeHTTPStreamedIngest covers the batch-size-bounded ingest
// path (one request body split into multiple pipeline batches).
func TestServeHTTPStreamedIngest(t *testing.T) {
	svc := pghive.NewService(pghive.Options{Seed: 1})
	srv := httptest.NewServer(newServeMux(svc, nil, 5, nil))
	defer srv.Close()
	if code, body := post(t, srv, "/ingest", jsonlBatch(0)); code != http.StatusOK {
		t.Fatalf("ingest: %d %s", code, body)
	}
	st := svc.Stats()
	if st.Nodes != 10 || st.Edges != 9 {
		t.Fatalf("streamed ingest stats: %d/%d", st.Nodes, st.Edges)
	}
	if st.Batches != 4 {
		t.Fatalf("19 elements at batch size 5 should make 4 batches, got %d", st.Batches)
	}
}

// TestServeHTTPDurable drives the durable serving mode end to end
// through the mux: ingest over HTTP, force a compaction via
// POST /checkpoint, "crash" (abandon the service without fanfare),
// and reopen the data directory into a second server whose state
// matches the first bit for bit.
func TestServeHTTPDurable(t *testing.T) {
	dir := t.TempDir()
	opts := pghive.Options{Seed: 1}
	dopts := pghive.DurableOptions{NoSync: true, DisableAutoCompact: true, SegmentBytes: 4 << 10}
	dur, err := pghive.OpenDurable(dir, opts, dopts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newServeMux(dur.Service, dur, 0, nil))

	if code, body := post(t, srv, "/ingest", jsonlBatch(0)); code != http.StatusOK {
		t.Fatalf("ingest 1: %d %s", code, body)
	}
	if code, body := post(t, srv, "/ingest", jsonlBatch(100)); code != http.StatusOK {
		t.Fatalf("ingest 2: %d %s", code, body)
	}

	// POST /checkpoint in durable mode compacts instead of streaming
	// an image: the response reports the durability state.
	code, body := post(t, srv, "/checkpoint", "")
	if code != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", code, body)
	}
	var ck struct {
		Compacted bool                `json:"compacted"`
		Durable   pghive.DurableStats `json:"durable"`
	}
	if err := json.Unmarshal(body, &ck); err != nil {
		t.Fatal(err)
	}
	if !ck.Compacted || ck.Durable.CheckpointLSN != 2 {
		t.Fatalf("checkpoint response %+v, want compacted at LSN 2", ck)
	}

	// One more write after the fold, so recovery exercises checkpoint
	// + tail replay.
	if code, body := post(t, srv, "/retract", jsonlBatch(100)); code != http.StatusOK {
		t.Fatalf("retract: %d %s", code, body)
	}

	// GET /stats carries the durable section.
	code, _, body = get(t, srv, "/stats", "")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, body)
	}
	var st struct {
		Stats   pghive.ServiceStats `json:"stats"`
		Durable pghive.DurableStats `json:"durable"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Stats.Nodes != 10 || st.Durable.WALNextLSN != 4 {
		t.Fatalf("durable stats %+v / %+v, want 10 nodes and next LSN 4", st.Stats, st.Durable)
	}

	var live bytes.Buffer
	if err := dur.WriteCheckpoint(&live); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if err := dur.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen the directory into a fresh server: the state recovered
	// from checkpoint + WAL tail matches the live state bit for bit.
	dur2, err := pghive.OpenDurable(dir, opts, dopts)
	if err != nil {
		t.Fatal(err)
	}
	defer dur2.Close()
	var recovered bytes.Buffer
	if err := dur2.WriteCheckpoint(&recovered); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live.Bytes(), recovered.Bytes()) {
		t.Fatal("recovered serve state diverges from pre-crash state")
	}
	srv2 := httptest.NewServer(newServeMux(dur2.Service, dur2, 0, nil))
	defer srv2.Close()
	code, _, body = get(t, srv2, "/schema?format=pgschema&mode=strict&name=G", "")
	if code != http.StatusOK || !strings.Contains(string(body), "CREATE GRAPH TYPE G STRICT") {
		t.Fatalf("schema after recovery: %d %s", code, body)
	}
}
