// Command pghive discovers the schema of a property graph and prints
// it as PG-Schema (LOOSE or STRICT) or XSD.
//
// The input is a JSONL graph file (one {"kind":"node"|"edge", ...}
// object per line — see pghive.WriteJSONL), a pair of neo4j-admin
// style CSV files, or one of the built-in synthetic evaluation
// datasets.
//
// Usage:
//
//	pghive -input graph.jsonl -format pgschema -mode strict
//	pghive -dataset LDBC -scale 0.5 -method minhash -format xsd
//	pghive -dataset LDBC -parallelism 8        # 8 workers per phase
//	pghive -dataset POLE -noise 0.2 -labels 0.5 -stats
//	pghive -dataset POLE -batches 5            # incremental run
//	pghive -nodes-csv n.csv -edges-csv e.csv -format dot
//	pghive -dataset MB6 -export mb6.jsonl      # dump a dataset
//	pghive -dataset LDBC -schema-out s.json    # persist the schema
//	pghive -dataset LDBC -schema-in s.json -validate strict
//	pghive -input huge.jsonl -stream -batch-size 10000   # bounded memory
//	pghive -input delta.jsonl -stream -schema-in s.json  # incremental maintenance
//	pghive serve -listen :8080                 # long-running HTTP service
//	pghive serve -restore state.ckpt           # resume from a checkpoint
//	pghive serve -data-dir /var/lib/pghive     # durable: WAL + compaction
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"time"

	pghive "github.com/pghive/pghive"
	"github.com/pghive/pghive/internal/datagen"
	"github.com/pghive/pghive/internal/lsh"
	"github.com/pghive/pghive/internal/wal"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		runServe(os.Args[2:])
		return
	}
	var (
		input     = flag.String("input", "", "JSONL graph file to discover (mutually exclusive with -dataset)")
		nodesCSV  = flag.String("nodes-csv", "", "neo4j-style node CSV file (repeatable via comma separation)")
		edgesCSV  = flag.String("edges-csv", "", "neo4j-style relationship CSV file (comma separated)")
		dataset   = flag.String("dataset", "", "built-in dataset: POLE, MB6, HET.IO, FIB25, ICIJ, CORD19, LDBC, IYP")
		scale     = flag.Float64("scale", 1, "dataset scale factor")
		noise     = flag.Float64("noise", 0, "property-removal probability (0-1)")
		labels    = flag.Float64("labels", 1, "label availability (0-1)")
		method    = flag.String("method", "elsh", "clustering method: elsh or minhash")
		format    = flag.String("format", "pgschema", "output: pgschema, xsd, dot, or none")
		mode      = flag.String("mode", "strict", "PG-Schema mode: strict or loose")
		name      = flag.String("name", "DiscoveredGraphType", "graph type name in PG-Schema output")
		seed      = flag.Int64("seed", 1, "random seed")
		parallel  = flag.Int("parallelism", 0, "worker goroutines per pipeline phase (0 = all CPU cores, 1 = sequential); the schema is identical for every value")
		noIntern  = flag.Bool("no-intern", false, "disable shape interning (A/B measurement; the schema is identical either way)")
		theta     = flag.Float64("theta", 0, "Jaccard merge threshold (0 = paper default 0.9)")
		tables    = flag.Int("tables", 0, "pin LSH table count T (0 = adaptive)")
		bucket    = flag.Float64("bucket", 0, "pin ELSH bucket length b (0 = adaptive)")
		batches   = flag.Int("batches", 1, "process the graph incrementally in N random batches")
		stream    = flag.Bool("stream", false, "stream -input / -nodes-csv in bounded batches instead of materializing the graph (see -batch-size)")
		batchSize = flag.Int("batch-size", 0, "elements per streamed batch (0 = default 8192); only with -stream")
		stats     = flag.Bool("stats", true, "print run statistics to stderr")
		export    = flag.String("export", "", "write the (noisy) input graph as JSONL to this file and exit")
		alignFlag = flag.Bool("align", false, "semantically align synonym labels after discovery")
		validateF = flag.String("validate", "", "validate the graph against the discovered schema: loose or strict")
		schemaOut = flag.String("schema-out", "", "persist the discovered schema (with statistics) as JSON")
		schemaIn  = flag.String("schema-in", "", "resume from a persisted schema before processing")
	)
	flag.Parse()

	opts := pghive.Options{Seed: *seed, Theta: *theta, Parallelism: *parallel, DisableShapeInterning: *noIntern}
	switch strings.ToLower(*method) {
	case "elsh":
	case "minhash":
		opts.Method = pghive.MinHash
	default:
		fmt.Fprintf(os.Stderr, "pghive: unknown method %q\n", *method)
		os.Exit(2)
	}
	if *tables > 0 {
		p := &lsh.Params{Tables: *tables, BucketLength: *bucket}
		opts.NodeParams, opts.EdgeParams = p, p
	}

	var resume *pghive.Schema
	if *schemaIn != "" {
		f, err := os.Open(*schemaIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pghive:", err)
			os.Exit(1)
		}
		resume, err = pghive.ReadSchemaJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "pghive:", err)
			os.Exit(1)
		}
	}

	if *batchSize != 0 && !*stream {
		fmt.Fprintln(os.Stderr, "pghive: -batch-size only applies to -stream runs")
		os.Exit(2)
	}
	if *stream {
		for _, c := range []struct {
			flag string
			set  bool
		}{
			{"-dataset", *dataset != ""},
			{"-export", *export != ""},
			{"-align", *alignFlag},
			{"-validate", *validateF != ""},
			{"-batches", *batches > 1},
		} {
			if c.set {
				fmt.Fprintf(os.Stderr, "pghive: %s needs the whole graph in memory and cannot be combined with -stream\n", c.flag)
				os.Exit(2)
			}
		}
		res, elapsed, err := discoverStream(*input, *nodesCSV, *edgesCSV, *batchSize, opts, resume, *stats)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pghive:", err)
			os.Exit(1)
		}
		if *schemaOut != "" {
			persistSchema(*schemaOut, res.Schema)
		}
		if *stats {
			fmt.Fprintf(os.Stderr, "schema: %d node types, %d edge types (raw clusters: %d nodes, %d edges)\n",
				len(res.Schema.NodeTypes), len(res.Schema.EdgeTypes), res.NodeClusters, res.EdgeClusters)
			fmt.Fprintf(os.Stderr, "time: %v total (preprocess %v, cluster %v, extract %v, post %v)\n",
				elapsed.Round(time.Millisecond),
				res.Timing.Preprocess.Round(time.Millisecond),
				res.Timing.Cluster.Round(time.Millisecond),
				res.Timing.Extract.Round(time.Millisecond),
				res.Timing.PostProcess.Round(time.Millisecond))
		}
		printSchema(*format, *mode, *name, res.Schema)
		return
	}

	g, err := loadGraph(*input, *nodesCSV, *edgesCSV, *dataset, *scale, *noise, *labels, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pghive:", err)
		os.Exit(1)
	}

	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pghive:", err)
			os.Exit(1)
		}
		if err := pghive.WriteJSONL(f, g); err != nil {
			fmt.Fprintln(os.Stderr, "pghive:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "pghive:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d nodes, %d edges to %s\n", g.NumNodes(), g.NumEdges(), *export)
		return
	}

	start := time.Now()
	res := discover(g, opts, *batches, *seed, resume)
	elapsed := time.Since(start)

	if *alignFlag {
		for _, m := range pghive.AlignNodeTypes(res.Schema, g, pghive.AlignOptions{}) {
			fmt.Fprintf(os.Stderr, "align: %s\n", m)
		}
	}

	if *validateF != "" {
		mode := pghive.ValidateLoose
		if strings.ToLower(*validateF) == "strict" {
			mode = pghive.ValidateStrict
		}
		report := pghive.Validate(g, res.Schema, mode)
		fmt.Fprintf(os.Stderr, "validation: %d checked, %d violations\n",
			report.Checked, len(report.Violations))
		for i, v := range report.Violations {
			if i >= 20 {
				fmt.Fprintf(os.Stderr, "  ... %d more\n", len(report.Violations)-20)
				break
			}
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
	}

	if *schemaOut != "" {
		persistSchema(*schemaOut, res.Schema)
	}

	if *stats {
		st := pghive.ComputeStats(g)
		fmt.Fprintf(os.Stderr, "graph: %d nodes, %d edges, %d node patterns, %d edge patterns\n",
			st.Nodes, st.Edges, st.NodePatterns, st.EdgePatterns)
		if res.NodeShapes > 0 || res.EdgeShapes > 0 {
			// Distinct-shape totals accumulate per batch; the ratios are
			// the dedup factors interning exploits (elements hashed once
			// per shape instead of once per element).
			fmt.Fprintf(os.Stderr, "shapes: %d distinct node shapes (dedup %.1fx), %d distinct edge shapes (dedup %.1fx)\n",
				res.NodeShapes, dedup(st.Nodes, res.NodeShapes),
				res.EdgeShapes, dedup(st.Edges, res.EdgeShapes))
		}
		fmt.Fprintf(os.Stderr, "schema: %d node types, %d edge types (raw clusters: %d nodes, %d edges)\n",
			len(res.Schema.NodeTypes), len(res.Schema.EdgeTypes), res.NodeClusters, res.EdgeClusters)
		fmt.Fprintf(os.Stderr, "time: %v total (preprocess %v, cluster %v, extract %v, post %v)\n",
			elapsed.Round(time.Millisecond),
			res.Timing.Preprocess.Round(time.Millisecond),
			res.Timing.Cluster.Round(time.Millisecond),
			res.Timing.Extract.Round(time.Millisecond),
			res.Timing.PostProcess.Round(time.Millisecond))
	}

	printSchema(*format, *mode, *name, res.Schema)
}

// printSchema emits the discovered schema on stdout in the selected
// serialization format.
func printSchema(format, mode, name string, s *pghive.Schema) {
	switch strings.ToLower(format) {
	case "pgschema":
		m := pghive.Strict
		if strings.ToLower(mode) == "loose" {
			m = pghive.Loose
		}
		fmt.Print(pghive.PGSchema(s, m, name))
	case "xsd":
		fmt.Print(pghive.XSD(s))
	case "dot":
		fmt.Print(pghive.DOT(s, name))
	case "none":
	default:
		fmt.Fprintf(os.Stderr, "pghive: unknown format %q\n", format)
		os.Exit(2)
	}
}

// persistSchema writes the schema (with statistics) as JSON. The
// write is atomic (temp file + rename): a crash mid-write must not
// leave a truncated, unrestorable image at the target path.
func persistSchema(path string, s *pghive.Schema) {
	err := wal.WriteFileAtomic(path, func(w io.Writer) error {
		return pghive.WriteSchemaJSON(w, s)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pghive:", err)
		os.Exit(1)
	}
}

// discoverStream builds a StreamReader over the input files and
// drives incremental discovery through it in bounded batches,
// printing a per-batch cost line when stats is set. resume, when
// non-nil, continues from a persisted schema (incremental
// maintenance: only the delta streams through the pipeline).
func discoverStream(input, nodesCSV, edgesCSV string, batchSize int, opts pghive.Options, resume *pghive.Schema, stats bool) (*pghive.Result, time.Duration, error) {
	var files []*os.File
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	open := func(paths string) ([]io.Reader, error) {
		var rs []io.Reader
		for _, p := range strings.Split(paths, ",") {
			f, err := os.Open(p)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
			rs = append(rs, f)
		}
		return rs, nil
	}

	var r pghive.StreamReader
	switch {
	case input != "" && nodesCSV != "":
		return nil, 0, fmt.Errorf("-input and -nodes-csv are mutually exclusive")
	case input != "":
		// -input is a single path (no comma splitting), exactly like
		// the one-shot path treats it.
		f, err := os.Open(input)
		if err != nil {
			return nil, 0, err
		}
		files = append(files, f)
		r = pghive.NewJSONLStream(f, batchSize)
	case nodesCSV != "":
		nodes, err := open(nodesCSV)
		if err != nil {
			return nil, 0, err
		}
		var edges []io.Reader
		if edgesCSV != "" {
			if edges, err = open(edgesCSV); err != nil {
				return nil, 0, err
			}
		}
		r = pghive.NewCSVStream(nodes, edges, batchSize)
	default:
		return nil, 0, fmt.Errorf("-stream needs -input FILE or -nodes-csv FILES")
	}

	// A nil onBatch also spares DrainStream its per-batch MemStats
	// reads when nobody prints them.
	var onBatch func(bt pghive.BatchTiming)
	if stats {
		onBatch = func(bt pghive.BatchTiming) {
			fmt.Fprintf(os.Stderr, "batch %d: %v, %d nodes + %d edges, alloc %s, live heap %s\n",
				bt.Index, bt.Timing.Discovery().Round(time.Millisecond),
				bt.Nodes, bt.Edges, fmtBytes(bt.AllocBytes), fmtBytes(bt.HeapLiveBytes))
		}
	}

	start := time.Now()
	inc := pghive.ResumeIncremental(opts, resume)
	if err := inc.DrainStream(r, onBatch); err != nil {
		return nil, 0, err
	}
	res := inc.Finalize()
	return res, time.Since(start), nil
}

// fmtBytes renders a byte count with a binary unit.
func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func loadGraph(input, nodesCSV, edgesCSV, dataset string, scale, noise, labels float64, seed int64) (*pghive.Graph, error) {
	sources := 0
	for _, s := range []string{input, nodesCSV, dataset} {
		if s != "" {
			sources++
		}
	}
	if sources > 1 {
		return nil, fmt.Errorf("-input, -nodes-csv and -dataset are mutually exclusive")
	}
	switch {
	case nodesCSV != "":
		g := pghive.NewGraph()
		for _, path := range strings.Split(nodesCSV, ",") {
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			_, err = pghive.ReadNodesCSV(f, g)
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
		}
		if edgesCSV != "" {
			for _, path := range strings.Split(edgesCSV, ",") {
				f, err := os.Open(path)
				if err != nil {
					return nil, err
				}
				_, err = pghive.ReadEdgesCSV(f, g)
				f.Close()
				if err != nil {
					return nil, fmt.Errorf("%s: %w", path, err)
				}
			}
		}
		return g, nil
	case input != "":
		f, err := os.Open(input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return pghive.ReadJSONL(f, false)
	case dataset != "":
		spec := datagen.ByName(dataset)
		if spec == nil {
			return nil, fmt.Errorf("unknown dataset %q", dataset)
		}
		d := datagen.Generate(spec, scale, seed)
		if noise > 0 || labels < 1 {
			d = datagen.InjectNoise(d, noise, labels, seed+7)
		}
		return d.Graph, nil
	default:
		return nil, fmt.Errorf("provide -input FILE or -dataset NAME (see -h)")
	}
}

func discover(g *pghive.Graph, opts pghive.Options, batches int, seed int64, resume *pghive.Schema) *pghive.Result {
	if batches <= 1 && resume == nil {
		return pghive.Discover(g, opts)
	}
	inc := pghive.ResumeIncremental(opts, resume)
	if batches <= 1 {
		inc.ProcessBatch(&pghive.Batch{Graph: g, Resolver: g, Index: 1})
		return inc.Finalize()
	}
	rng := newRand(seed + 21)
	for _, b := range pghive.SplitBatches(g, batches, rng) {
		bt := inc.ProcessBatch(b)
		if bt.NodeShapes > 0 || bt.EdgeShapes > 0 {
			fmt.Fprintf(os.Stderr, "batch %d: %v (%d/%d distinct node shapes, %d/%d distinct edge shapes)\n",
				bt.Index, bt.Timing.Discovery().Round(time.Millisecond),
				bt.NodeShapes, bt.Nodes, bt.EdgeShapes, bt.Edges)
		} else {
			fmt.Fprintf(os.Stderr, "batch %d: %v\n", bt.Index, bt.Timing.Discovery().Round(time.Millisecond))
		}
	}
	return inc.Finalize()
}

// dedup returns elements per distinct shape.
func dedup(elements, shapes int) float64 {
	if shapes == 0 {
		return 1
	}
	return float64(elements) / float64(shapes)
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
