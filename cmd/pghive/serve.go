package main

// serve.go is the long-running HTTP mode: a pghive.Service fronted by
// a small JSON/line-protocol API. Writes (POST /ingest, /retract) are
// serialized by the service; reads (GET /schema, /stats,
// POST /validate) are lock-free against the latest published
// snapshot, so schema queries stay fast while batches load.
//
//	pghive serve -listen :8080
//	curl -X POST --data-binary @batch.jsonl localhost:8080/ingest
//	curl 'localhost:8080/schema?format=pgschema&mode=strict'
//	curl -X POST localhost:8080/checkpoint > state.ckpt
//	pghive serve -restore state.ckpt     # resumes bit-identically

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	pghive "github.com/pghive/pghive"
	"github.com/pghive/pghive/internal/lsh"
)

// runServe parses the serve-mode flags and blocks serving HTTP.
func runServe(args []string) {
	fs := flag.NewFlagSet("pghive serve", flag.ExitOnError)
	var (
		listen    = fs.String("listen", ":8080", "address to serve HTTP on")
		restore   = fs.String("restore", "", "checkpoint file to resume from (see POST /checkpoint)")
		method    = fs.String("method", "elsh", "clustering method: elsh or minhash")
		seed      = fs.Int64("seed", 1, "random seed")
		parallel  = fs.Int("parallelism", 0, "worker goroutines per pipeline phase (0 = all CPU cores)")
		noIntern  = fs.Bool("no-intern", false, "disable shape interning")
		theta     = fs.Float64("theta", 0, "Jaccard merge threshold (0 = paper default 0.9)")
		tables    = fs.Int("tables", 0, "pin LSH table count T (0 = adaptive)")
		bucket    = fs.Float64("bucket", 0, "pin ELSH bucket length b (0 = adaptive)")
		batchSize = fs.Int("batch-size", 0, "elements per ingest batch when splitting large bodies (0 = one batch per request)")
	)
	fs.Parse(args)

	opts := pghive.Options{Seed: *seed, Theta: *theta, Parallelism: *parallel, DisableShapeInterning: *noIntern}
	switch strings.ToLower(*method) {
	case "elsh":
	case "minhash":
		opts.Method = pghive.MinHash
	default:
		fmt.Fprintf(os.Stderr, "pghive serve: unknown method %q\n", *method)
		os.Exit(2)
	}
	if *tables > 0 {
		p := &lsh.Params{Tables: *tables, BucketLength: *bucket}
		opts.NodeParams, opts.EdgeParams = p, p
	}

	var svc *pghive.Service
	if *restore != "" {
		f, err := os.Open(*restore)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pghive serve:", err)
			os.Exit(1)
		}
		svc, err = pghive.RestoreService(opts, f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "pghive serve:", err)
			os.Exit(1)
		}
		st := svc.Stats()
		fmt.Fprintf(os.Stderr, "pghive serve: restored %d batches, %d nodes, %d edges\n",
			st.Batches, st.Nodes, st.Edges)
	} else {
		svc = pghive.NewService(opts)
	}

	fmt.Fprintf(os.Stderr, "pghive serve: listening on %s\n", *listen)
	server := &http.Server{
		Addr:    *listen,
		Handler: newServeMux(svc, *batchSize),
		// A stalled client must not be able to park a connection
		// forever; ingest bodies are spooled before the service write
		// lock is taken, so these bounds never race a healthy upload.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	if err := server.ListenAndServe(); err != nil {
		fmt.Fprintln(os.Stderr, "pghive serve:", err)
		os.Exit(1)
	}
}

// newServeMux wires the service endpoints. Factored out of runServe so
// tests can drive the full HTTP surface via httptest.
func newServeMux(svc *pghive.Service, batchSize int) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if batchSize > 0 {
			// Spool the body before touching the service: DrainStream
			// holds the write lock, and reading a slow client's upload
			// under it would let one stalled connection block every
			// writer.
			body, err := io.ReadAll(r.Body)
			if err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
			// The spooled body streams through in bounded pipeline
			// batches. Streamed ingestion is NOT atomic: batches that
			// preceded a malformed line are already published when the
			// error returns, so the error response carries the stats
			// the client needs to see how far the body got — blindly
			// re-sending the same body would double-ingest the prefix.
			if err := svc.DrainStream(pghive.NewJSONLStream(bytes.NewReader(body), batchSize), nil); err != nil {
				writeJSONStatus(w, http.StatusBadRequest, map[string]any{
					"error": err.Error(),
					"note":  "streamed ingest is not atomic: batches before the error were already ingested and published",
					"stats": svc.Stats(),
				})
				return
			}
		} else {
			g, err := pghive.ReadJSONL(r.Body, true)
			if err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
			svc.Ingest(g)
		}
		writeJSON(w, map[string]any{"elapsedMs": time.Since(start).Milliseconds(), "stats": svc.Stats()})
	})
	mux.HandleFunc("POST /retract", func(w http.ResponseWriter, r *http.Request) {
		g, err := pghive.ReadJSONL(r.Body, true)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		svc.Retract(g)
		writeJSON(w, map[string]any{"stats": svc.Stats()})
	})
	mux.HandleFunc("GET /schema", func(w http.ResponseWriter, r *http.Request) {
		mode := pghive.Strict
		switch strings.ToLower(r.URL.Query().Get("mode")) {
		case "", "strict":
		case "loose":
			mode = pghive.Loose
		default:
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("unknown mode %q (want strict or loose)", r.URL.Query().Get("mode")))
			return
		}
		name := r.URL.Query().Get("name")
		if name == "" {
			name = "DiscoveredGraphType"
		}
		switch schemaFormat(r) {
		case "json":
			w.Header().Set("Content-Type", "application/json")
			svc.WriteSchemaJSON(w)
		case "pgschema":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, svc.PGSchema(mode, name))
		case "xsd":
			w.Header().Set("Content-Type", "application/xml")
			fmt.Fprint(w, svc.XSD())
		case "dot":
			w.Header().Set("Content-Type", "text/vnd.graphviz")
			fmt.Fprint(w, svc.DOT(name))
		default:
			// Only an explicit ?format= can land here (Accept
			// negotiation always falls back to pgschema), and a bad
			// query parameter is the client's request error, not failed
			// content negotiation.
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("unknown schema format (want json, pgschema, xsd, or dot)"))
		}
	})
	mux.HandleFunc("POST /validate", func(w http.ResponseWriter, r *http.Request) {
		g, err := pghive.ReadJSONL(r.Body, true)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		mode := pghive.ValidateLoose
		switch strings.ToLower(r.URL.Query().Get("mode")) {
		case "", "loose":
		case "strict":
			mode = pghive.ValidateStrict
		default:
			// A typo'd mode must not silently validate loosely — the
			// client would read valid=true as a strict pass.
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("unknown mode %q (want loose or strict)", r.URL.Query().Get("mode")))
			return
		}
		rep := svc.Validate(g, mode)
		violations := make([]string, len(rep.Violations))
		for i, v := range rep.Violations {
			violations[i] = v.String()
		}
		writeJSON(w, map[string]any{
			"checked": rep.Checked, "valid": rep.Valid(),
			"violations": violations, "truncated": rep.Truncated,
		})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, svc.Stats())
	})
	mux.HandleFunc("POST /checkpoint", func(w http.ResponseWriter, r *http.Request) {
		// Serialize into memory first: WriteCheckpoint holds the
		// service write lock, so streaming it straight to a slow (or
		// stalled) client would block every ingest for as long as the
		// client cares to read — and a mid-write network error would
		// deliver a truncated image under a 200 status.
		var buf bytes.Buffer
		if err := svc.WriteCheckpoint(&buf); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(buf.Bytes())
	})
	return mux
}

// schemaFormat resolves ?format= (authoritative) or the Accept header
// to one of json, pgschema, xsd, dot.
func schemaFormat(r *http.Request) string {
	if f := strings.ToLower(r.URL.Query().Get("format")); f != "" {
		return f
	}
	accept := r.Header.Get("Accept")
	switch {
	case strings.Contains(accept, "application/json"):
		return "json"
	case strings.Contains(accept, "application/xml"), strings.Contains(accept, "text/xml"):
		return "xsd"
	case strings.Contains(accept, "text/vnd.graphviz"):
		return "dot"
	default:
		return "pgschema"
	}
}

// writeJSONStatus is the single JSON response path: every handler
// body and error goes through it, so Content-Type and encoder
// settings stay consistent across the API.
func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeJSON(w http.ResponseWriter, v any) { writeJSONStatus(w, http.StatusOK, v) }

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSONStatus(w, code, map[string]string{"error": err.Error()})
}
