package main

// serve.go is the long-running HTTP mode: a pghive.Service fronted by
// a small JSON/line-protocol API. Writes (POST /ingest, /retract) are
// serialized by the service; reads (GET /schema, /stats,
// POST /validate) are lock-free against the latest published
// snapshot, so schema queries stay fast while batches load.
//
//	pghive serve -listen :8080
//	curl -X POST --data-binary @batch.jsonl localhost:8080/ingest
//	curl 'localhost:8080/schema?format=pgschema&mode=strict'
//	curl -X POST localhost:8080/checkpoint > state.ckpt
//	pghive serve -restore state.ckpt     # resumes bit-identically
//
// With -data-dir the service is durable: every mutation is
// write-ahead logged before it is applied, a background compactor
// folds the log into checkpoint images, and a restart (kill -9
// included) recovers bit-identically from the directory alone:
//
//	pghive serve -data-dir /var/lib/pghive
//	curl -X POST localhost:8080/checkpoint   # force a compaction

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	pghive "github.com/pghive/pghive"
	"github.com/pghive/pghive/internal/lsh"
)

// runServe parses the serve-mode flags and blocks serving HTTP.
func runServe(args []string) {
	fs := flag.NewFlagSet("pghive serve", flag.ExitOnError)
	var (
		listen    = fs.String("listen", ":8080", "address to serve HTTP on")
		restore   = fs.String("restore", "", "checkpoint file to resume from (see POST /checkpoint)")
		method    = fs.String("method", "elsh", "clustering method: elsh or minhash")
		seed      = fs.Int64("seed", 1, "random seed")
		parallel  = fs.Int("parallelism", 0, "worker goroutines per pipeline phase (0 = all CPU cores)")
		noIntern  = fs.Bool("no-intern", false, "disable shape interning")
		theta     = fs.Float64("theta", 0, "Jaccard merge threshold (0 = paper default 0.9)")
		tables    = fs.Int("tables", 0, "pin LSH table count T (0 = adaptive)")
		bucket    = fs.Float64("bucket", 0, "pin ELSH bucket length b (0 = adaptive)")
		batchSize = fs.Int("batch-size", 0, "elements per ingest batch when splitting large bodies (0 = one batch per request)")
		dataDir   = fs.String("data-dir", "", "durable mode: write-ahead log every mutation under this directory and recover from it on start")
		segBytes  = fs.Int64("wal-segment-bytes", 0, "WAL segment rotation threshold in bytes (0 = default 8 MiB; durable mode only)")
		compact   = fs.Duration("compact-interval", 0, "background WAL compaction cadence (0 = default 1m; durable mode only)")
		noSync    = fs.Bool("no-sync", false, "skip the per-append WAL fsync: survives kill -9 but not power loss (durable mode only)")
	)
	fs.Parse(args)

	opts := pghive.Options{Seed: *seed, Theta: *theta, Parallelism: *parallel, DisableShapeInterning: *noIntern}
	switch strings.ToLower(*method) {
	case "elsh":
	case "minhash":
		opts.Method = pghive.MinHash
	default:
		fmt.Fprintf(os.Stderr, "pghive serve: unknown method %q\n", *method)
		os.Exit(2)
	}
	if *tables > 0 {
		p := &lsh.Params{Tables: *tables, BucketLength: *bucket}
		opts.NodeParams, opts.EdgeParams = p, p
	}

	var svc *pghive.Service
	var dur *pghive.DurableService
	switch {
	case *dataDir != "" && *restore != "":
		fmt.Fprintln(os.Stderr, "pghive serve: -data-dir and -restore are mutually exclusive (a data directory recovers itself)")
		os.Exit(2)
	case *dataDir != "":
		var err error
		dur, err = pghive.OpenDurable(*dataDir, opts, pghive.DurableOptions{
			SegmentBytes:    *segBytes,
			CompactInterval: *compact,
			NoSync:          *noSync,
			OnCompactError: func(err error) {
				fmt.Fprintln(os.Stderr, "pghive serve: compaction:", err)
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pghive serve:", err)
			os.Exit(1)
		}
		svc = dur.Service
		st := svc.Stats()
		ds := dur.DurableStats()
		fmt.Fprintf(os.Stderr, "pghive serve: recovered %d batches, %d nodes, %d edges from %s (checkpoint LSN %d, next WAL LSN %d)\n",
			st.Batches, st.Nodes, st.Edges, *dataDir, ds.CheckpointLSN, ds.WALNextLSN)
		// A clean shutdown closes the WAL; a kill -9 is recovered on
		// the next start either way.
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			fmt.Fprintln(os.Stderr, "pghive serve: shutting down")
			dur.Close()
			os.Exit(0)
		}()
	case *restore != "":
		f, err := os.Open(*restore)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pghive serve:", err)
			os.Exit(1)
		}
		svc, err = pghive.RestoreService(opts, f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "pghive serve:", err)
			os.Exit(1)
		}
		st := svc.Stats()
		fmt.Fprintf(os.Stderr, "pghive serve: restored %d batches, %d nodes, %d edges\n",
			st.Batches, st.Nodes, st.Edges)
	default:
		svc = pghive.NewService(opts)
	}

	fmt.Fprintf(os.Stderr, "pghive serve: listening on %s\n", *listen)
	server := &http.Server{
		Addr:    *listen,
		Handler: newServeMux(svc, dur, *batchSize),
		// A stalled client must not be able to park a connection
		// forever; ingest bodies are spooled before the service write
		// lock is taken, so these bounds never race a healthy upload.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	if err := server.ListenAndServe(); err != nil {
		fmt.Fprintln(os.Stderr, "pghive serve:", err)
		os.Exit(1)
	}
}

// newServeMux wires the service endpoints. Factored out of runServe so
// tests can drive the full HTTP surface via httptest. dur, when
// non-nil, is the durable wrapper around svc: writes go through its
// write-ahead log (and can therefore fail with 500 when the log
// cannot be made durable), and POST /checkpoint folds the log into an
// on-disk image instead of streaming one back.
func newServeMux(svc *pghive.Service, dur *pghive.DurableService, batchSize int) *http.ServeMux {
	ingest := func(g *pghive.Graph) error {
		if dur != nil {
			_, err := dur.Ingest(g)
			return err
		}
		svc.Ingest(g)
		return nil
	}
	retract := func(g *pghive.Graph) error {
		if dur != nil {
			_, err := dur.Retract(g)
			return err
		}
		svc.Retract(g)
		return nil
	}
	drain := func(r pghive.StreamReader) error {
		if dur != nil {
			return dur.DrainStream(r, nil)
		}
		return svc.DrainStream(r, nil)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if batchSize > 0 {
			// Spool the body before touching the service: DrainStream
			// holds the write lock, and reading a slow client's upload
			// under it would let one stalled connection block every
			// writer.
			body, err := io.ReadAll(r.Body)
			if err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
			// The spooled body streams through in bounded pipeline
			// batches. Streamed ingestion is NOT atomic: batches that
			// preceded a malformed line are already published when the
			// error returns, so the error response carries the stats
			// the client needs to see how far the body got — blindly
			// re-sending the same body would double-ingest the prefix.
			if err := drain(pghive.NewJSONLStream(bytes.NewReader(body), batchSize)); err != nil {
				// A durability failure (WAL append) is the server's
				// fault and retryable — it must not masquerade as a
				// malformed-body 400, which clients treat as permanent.
				code := http.StatusBadRequest
				var de *pghive.DurabilityError
				if errors.As(err, &de) {
					code = http.StatusInternalServerError
				}
				writeJSONStatus(w, code, map[string]any{
					"error": err.Error(),
					"note":  "streamed ingest is not atomic: batches before the error were already ingested and published",
					"stats": svc.Stats(),
				})
				return
			}
		} else {
			g, err := pghive.ReadJSONL(r.Body, true)
			if err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
			if err := ingest(g); err != nil {
				httpError(w, http.StatusInternalServerError, err)
				return
			}
		}
		writeJSON(w, map[string]any{"elapsedMs": time.Since(start).Milliseconds(), "stats": svc.Stats()})
	})
	mux.HandleFunc("POST /retract", func(w http.ResponseWriter, r *http.Request) {
		g, err := pghive.ReadJSONL(r.Body, true)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if err := retract(g); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, map[string]any{"stats": svc.Stats()})
	})
	mux.HandleFunc("GET /schema", func(w http.ResponseWriter, r *http.Request) {
		mode := pghive.Strict
		switch strings.ToLower(r.URL.Query().Get("mode")) {
		case "", "strict":
		case "loose":
			mode = pghive.Loose
		default:
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("unknown mode %q (want strict or loose)", r.URL.Query().Get("mode")))
			return
		}
		name := r.URL.Query().Get("name")
		if name == "" {
			name = "DiscoveredGraphType"
		}
		switch schemaFormat(r) {
		case "json":
			w.Header().Set("Content-Type", "application/json")
			svc.WriteSchemaJSON(w)
		case "pgschema":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, svc.PGSchema(mode, name))
		case "xsd":
			w.Header().Set("Content-Type", "application/xml")
			fmt.Fprint(w, svc.XSD())
		case "dot":
			w.Header().Set("Content-Type", "text/vnd.graphviz")
			fmt.Fprint(w, svc.DOT(name))
		default:
			// Only an explicit ?format= can land here (Accept
			// negotiation always falls back to pgschema), and a bad
			// query parameter is the client's request error, not failed
			// content negotiation.
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("unknown schema format (want json, pgschema, xsd, or dot)"))
		}
	})
	mux.HandleFunc("POST /validate", func(w http.ResponseWriter, r *http.Request) {
		g, err := pghive.ReadJSONL(r.Body, true)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		mode := pghive.ValidateLoose
		switch strings.ToLower(r.URL.Query().Get("mode")) {
		case "", "loose":
		case "strict":
			mode = pghive.ValidateStrict
		default:
			// A typo'd mode must not silently validate loosely — the
			// client would read valid=true as a strict pass.
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("unknown mode %q (want loose or strict)", r.URL.Query().Get("mode")))
			return
		}
		rep := svc.Validate(g, mode)
		violations := make([]string, len(rep.Violations))
		for i, v := range rep.Violations {
			violations[i] = v.String()
		}
		writeJSON(w, map[string]any{
			"checked": rep.Checked, "valid": rep.Valid(),
			"violations": violations, "truncated": rep.Truncated,
		})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		if dur != nil {
			writeJSON(w, map[string]any{"stats": svc.Stats(), "durable": dur.DurableStats()})
			return
		}
		writeJSON(w, svc.Stats())
	})
	mux.HandleFunc("POST /checkpoint", func(w http.ResponseWriter, r *http.Request) {
		if dur != nil {
			// Durable mode: fold the WAL into an on-disk image. The
			// image lands in the data directory via temp file + rename
			// (never a truncated file at the target path), superseded
			// segments are pruned, and the response reports the new
			// durability state instead of streaming the image.
			if err := dur.Compact(); err != nil {
				httpError(w, http.StatusInternalServerError, err)
				return
			}
			writeJSON(w, map[string]any{"compacted": true, "durable": dur.DurableStats()})
			return
		}
		// Serialize into memory first: WriteCheckpoint holds the
		// service write lock, so streaming it straight to a slow (or
		// stalled) client would block every ingest for as long as the
		// client cares to read — and a mid-write network error would
		// deliver a truncated image under a 200 status.
		var buf bytes.Buffer
		if err := svc.WriteCheckpoint(&buf); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(buf.Bytes())
	})
	return mux
}

// schemaFormat resolves ?format= (authoritative) or the Accept header
// to one of json, pgschema, xsd, dot.
func schemaFormat(r *http.Request) string {
	if f := strings.ToLower(r.URL.Query().Get("format")); f != "" {
		return f
	}
	accept := r.Header.Get("Accept")
	switch {
	case strings.Contains(accept, "application/json"):
		return "json"
	case strings.Contains(accept, "application/xml"), strings.Contains(accept, "text/xml"):
		return "xsd"
	case strings.Contains(accept, "text/vnd.graphviz"):
		return "dot"
	default:
		return "pgschema"
	}
}

// writeJSONStatus is the single JSON response path: every handler
// body and error goes through it, so Content-Type and encoder
// settings stay consistent across the API.
func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeJSON(w http.ResponseWriter, v any) { writeJSONStatus(w, http.StatusOK, v) }

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSONStatus(w, code, map[string]string{"error": err.Error()})
}
