package main

// serve.go is the long-running HTTP mode: a pghive.Service fronted by
// a small JSON/line-protocol API. Writes (POST /ingest, /retract) are
// serialized by the service; reads (GET /schema, /stats,
// POST /validate) are lock-free against the latest published
// snapshot, so schema queries stay fast while batches load.
//
// Every endpoint (except the /healthz and /readyz probes) sits behind
// an internal/admission gate: bounded concurrency (503 + Retry-After
// past capacity), a bounded write queue (429 + Retry-After), a
// per-request deadline propagated via context into the service write
// path, a request-body cap (413), and panic recovery. Writes accept
// an Idempotency-Key header in durable mode — a retried write whose
// first attempt was applied answers "replayed" instead of applying
// twice, even across a crash. A durable service that degrades to
// read-only (broken WAL, full disk) answers writes with 409 and a
// machine-readable reason until re-armed via POST /rearm or a
// space-freeing compaction. SIGTERM drains: stop admitting, finish
// in-flight requests within -drain-timeout, final checkpoint, exit.
//
//	pghive serve -listen :8080
//	curl -X POST --data-binary @batch.jsonl localhost:8080/ingest
//	curl 'localhost:8080/schema?format=pgschema&mode=strict'
//	curl -X POST localhost:8080/checkpoint > state.ckpt
//	pghive serve -restore state.ckpt     # resumes bit-identically
//
// With -data-dir the service is durable: every mutation is
// write-ahead logged before it is applied, a background compactor
// folds the log into checkpoint images, and a restart (kill -9
// included) recovers bit-identically from the directory alone:
//
//	pghive serve -data-dir /var/lib/pghive
//	curl -X POST localhost:8080/checkpoint   # force a compaction
//
// A durable leader can additionally ship its artifacts — sealed WAL
// segments and checkpoint generations — into an object store, either
// a local directory it then serves at /v1/objects (-ship-dir, with
// -object-token guarding the mutating verbs) or a remote object
// endpoint (-ship-to). A second process started with -follow tails
// that store as a read-only replica: it bootstraps from the newest
// shipped checkpoint generation, applies shipped WAL segments in
// order, serves the same read endpoints plus GET /lag, and answers
// writes with the machine-readable read-only contract (409, reason
// "follower"):
//
//	pghive serve -data-dir /var/lib/pghive -ship-dir /var/lib/pghive-objects -object-token s3cret
//	pghive serve -listen :8081 -follow http://leader:8080
//	curl localhost:8081/lag

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	pghive "github.com/pghive/pghive"
	"github.com/pghive/pghive/internal/admission"
	"github.com/pghive/pghive/internal/lsh"
	"github.com/pghive/pghive/internal/store"
)

// runServe parses the serve-mode flags and blocks serving HTTP.
func runServe(args []string) {
	fs := flag.NewFlagSet("pghive serve", flag.ExitOnError)
	var (
		listen    = fs.String("listen", ":8080", "address to serve HTTP on")
		restore   = fs.String("restore", "", "checkpoint file to resume from (see POST /checkpoint)")
		method    = fs.String("method", "elsh", "clustering method: elsh or minhash")
		seed      = fs.Int64("seed", 1, "random seed")
		parallel  = fs.Int("parallelism", 0, "worker goroutines per pipeline phase (0 = all CPU cores)")
		noIntern  = fs.Bool("no-intern", false, "disable shape interning")
		theta     = fs.Float64("theta", 0, "Jaccard merge threshold (0 = paper default 0.9)")
		tables    = fs.Int("tables", 0, "pin LSH table count T (0 = adaptive)")
		bucket    = fs.Float64("bucket", 0, "pin ELSH bucket length b (0 = adaptive)")
		batchSize = fs.Int("batch-size", 0, "elements per ingest batch when splitting large bodies (0 = one batch per request)")
		dataDir   = fs.String("data-dir", "", "durable mode: write-ahead log every mutation under this directory and recover from it on start")
		segBytes  = fs.Int64("wal-segment-bytes", 0, "WAL segment rotation threshold in bytes (0 = default 8 MiB; durable mode only)")
		compact   = fs.Duration("compact-interval", 0, "background WAL compaction cadence (0 = default 1m; durable mode only)")
		maxRuns   = fs.Int("max-runs", 0, "delta runs kept on top of the base image before compaction folds a fresh base (0 = default 6; durable mode only)")
		noSync    = fs.Bool("no-sync", false, "skip the per-append WAL fsync: survives kill -9 but not power loss (durable mode only)")

		groupCommit = fs.Bool("group-commit", false, "batch concurrent writes into shared WAL fsyncs; same acked-prefix durability, fewer flushes (durable mode only)")
		shipDir     = fs.String("ship-dir", "", "ship sealed WAL segments and checkpoint generations into this local directory and serve them at /v1/objects (durable mode only)")
		shipTo      = fs.String("ship-to", "", "ship artifacts to the object endpoints under this base URL instead of a local directory (durable mode only)")
		objectToken = fs.String("object-token", "", "bearer token guarding mutating /v1/objects verbs (with -ship-dir), and sent when shipping to -ship-to")
		follow      = fs.String("follow", "", "follower mode: serve a read-only replica tailing the object store under this base URL (e.g. the leader's address)")
		followPoll  = fs.Duration("follow-poll", 0, "cadence of the follower's segment poll (0 = default 500ms; follower mode only)")

		maxBody    = fs.Int64("max-body-bytes", admission.DefaultMaxBodyBytes, "request-body cap in bytes, answered with 413 past it (-1 disables)")
		reqTimeout = fs.Duration("request-timeout", admission.DefaultRequestTimeout, "per-request deadline propagated into the service (-1s disables)")
		maxConc    = fs.Int("max-concurrent", admission.DefaultMaxConcurrent, "concurrent requests admitted before 503 + Retry-After (-1 disables)")
		maxWrites  = fs.Int("max-write-queue", admission.DefaultMaxWriteQueue, "mutating requests admitted at once before 429 + Retry-After (-1 disables)")
		drainWait  = fs.Duration("drain-timeout", 20*time.Second, "graceful-shutdown budget for in-flight requests on SIGTERM")
	)
	fs.Parse(args)

	opts := pghive.Options{Seed: *seed, Theta: *theta, Parallelism: *parallel, DisableShapeInterning: *noIntern}
	switch strings.ToLower(*method) {
	case "elsh":
	case "minhash":
		opts.Method = pghive.MinHash
	default:
		fmt.Fprintf(os.Stderr, "pghive serve: unknown method %q\n", *method)
		os.Exit(2)
	}
	if *tables > 0 {
		p := &lsh.Params{Tables: *tables, BucketLength: *bucket}
		opts.NodeParams, opts.EdgeParams = p, p
	}

	// Replication flag surface: a follower owns no log and ships
	// nothing; shipping needs a log and exactly one destination.
	if *follow != "" && (*dataDir != "" || *restore != "" || *shipDir != "" || *shipTo != "") {
		fmt.Fprintln(os.Stderr, "pghive serve: -follow is exclusive with -data-dir, -restore, -ship-dir, and -ship-to (a follower replicates a leader's log; it does not own one)")
		os.Exit(2)
	}
	if *shipDir != "" && *shipTo != "" {
		fmt.Fprintln(os.Stderr, "pghive serve: -ship-dir and -ship-to are mutually exclusive")
		os.Exit(2)
	}
	if (*shipDir != "" || *shipTo != "" || *groupCommit) && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "pghive serve: -group-commit, -ship-dir, and -ship-to require durable mode (serve with -data-dir)")
		os.Exit(2)
	}
	var shipBackend store.Backend
	switch {
	case *shipDir != "":
		shipBackend = store.NewDir(nil, *shipDir)
	case *shipTo != "":
		var err error
		shipBackend, err = store.NewHTTP(*shipTo, *objectToken, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pghive serve:", err)
			os.Exit(2)
		}
	}

	var svc *pghive.Service
	var dur *pghive.DurableService
	var fol *pghive.Follower
	switch {
	case *dataDir != "" && *restore != "":
		fmt.Fprintln(os.Stderr, "pghive serve: -data-dir and -restore are mutually exclusive (a data directory recovers itself)")
		os.Exit(2)
	case *follow != "":
		backend, err := store.NewHTTP(*follow, "", nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pghive serve:", err)
			os.Exit(2)
		}
		fol = pghive.NewFollower(opts, backend, pghive.FollowerOptions{
			PollInterval: *followPoll,
			LeaderLSN:    leaderLSNProbe(*follow),
		})
		fol.Start()
		svc = fol.Service
		fmt.Fprintf(os.Stderr, "pghive serve: following %s (read-only replica)\n", *follow)
	case *dataDir != "":
		var err error
		dur, err = pghive.OpenDurable(*dataDir, opts, pghive.DurableOptions{
			SegmentBytes:    *segBytes,
			CompactInterval: *compact,
			MaxRuns:         *maxRuns,
			NoSync:          *noSync,
			GroupCommit:     *groupCommit,
			ShipTo:          shipBackend,
			OnCompactError: func(err error) {
				fmt.Fprintln(os.Stderr, "pghive serve: compaction:", err)
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pghive serve:", err)
			os.Exit(1)
		}
		svc = dur.Service
		st := svc.Stats()
		ds := dur.DurableStats()
		fmt.Fprintf(os.Stderr, "pghive serve: recovered %d batches, %d nodes, %d edges from %s (checkpoint LSN %d, next WAL LSN %d)\n",
			st.Batches, st.Nodes, st.Edges, *dataDir, ds.CheckpointLSN, ds.WALNextLSN)
	case *restore != "":
		f, err := os.Open(*restore)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pghive serve:", err)
			os.Exit(1)
		}
		svc, err = pghive.RestoreService(opts, f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "pghive serve:", err)
			os.Exit(1)
		}
		st := svc.Stats()
		fmt.Fprintf(os.Stderr, "pghive serve: restored %d batches, %d nodes, %d edges\n",
			st.Batches, st.Nodes, st.Edges)
	default:
		svc = pghive.NewService(opts)
	}

	gate := admission.New(admission.Config{
		MaxConcurrent:  *maxConc,
		MaxWriteQueue:  *maxWrites,
		RequestTimeout: *reqTimeout,
		MaxBodyBytes:   *maxBody,
		OnPanic: func(v any) {
			fmt.Fprintln(os.Stderr, "pghive serve: recovered handler panic:", v)
		},
	})

	fmt.Fprintf(os.Stderr, "pghive serve: listening on %s\n", *listen)
	// A stalled client must not be able to park a connection forever:
	// header/idle bounds plus full read/write timeouts sized past the
	// per-request deadline, so the admission deadline (not the socket
	// teardown) is what a slow handler hits first.
	rwTimeout := time.Minute
	if *reqTimeout > 0 {
		rwTimeout = *reqTimeout + 10*time.Second
	}
	var handler http.Handler
	if fol != nil {
		handler = newFollowerMux(fol, gate)
	} else {
		mux := newServeMux(svc, dur, *batchSize, gate)
		if *shipDir != "" {
			// The replication plane: followers (and backups) fetch the
			// shipped artifacts from here. Reads are open; the mutating
			// verbs the leader itself uses to ship require -object-token.
			// Ungated on purpose — replication must keep flowing even
			// when client traffic has the admission gate at capacity.
			oh := store.Handler(shipBackend, *objectToken)
			mux.Handle(store.ObjectsRoute, oh)
			mux.Handle(store.ObjectsRoute+"/", oh)
		}
		handler = mux
	}
	server := &http.Server{
		Addr:              *listen,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       rwTimeout,
		WriteTimeout:      rwTimeout,
		IdleTimeout:       2 * time.Minute,
	}

	// SIGTERM/SIGINT is a real drain, not an abort: refuse new work
	// (readiness flips, the load balancer routes away), let in-flight
	// requests finish within the budget, then stop the listener and —
	// in durable mode — fold the WAL into a final checkpoint so the
	// next start recovers instantly.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "pghive serve: draining")
		select {
		case <-gate.Drain():
		case <-time.After(*drainWait):
			fmt.Fprintln(os.Stderr, "pghive serve: drain timeout; aborting in-flight requests")
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		server.Shutdown(ctx)
		if fol != nil {
			fol.Close()
		}
		if dur != nil {
			if err := dur.Compact(); err != nil {
				fmt.Fprintln(os.Stderr, "pghive serve: final checkpoint:", err)
			}
			if err := dur.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "pghive serve: close:", err)
			}
		}
		os.Exit(0)
	}()

	if err := server.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "pghive serve:", err)
		os.Exit(1)
	}
	select {} // Shutdown in flight; the drain goroutine exits the process
}

// newServeMux wires the service endpoints. Factored out of runServe so
// tests can drive the full HTTP surface via httptest. dur, when
// non-nil, is the durable wrapper around svc: writes go through its
// write-ahead log (and can therefore fail with 500 when the log
// cannot be made durable, or 409 when the service has degraded to
// declared read-only mode), idempotency keys are honored, and
// POST /checkpoint folds the log into an on-disk image instead of
// streaming one back. gate, when nil, gets the default admission
// limits; the /healthz and /readyz probes bypass it so orchestrators
// can always see the truth, even at capacity or while draining.
func newServeMux(svc *pghive.Service, dur *pghive.DurableService, batchSize int, gate *admission.Gate) *http.ServeMux {
	if gate == nil {
		gate = admission.New(admission.Config{})
	}
	ingest := func(ctx context.Context, key string, g *pghive.Graph) (replayed bool, err error) {
		if dur != nil {
			_, replayed, err = dur.IngestIdempotent(ctx, key, g)
			return replayed, err
		}
		_, err = svc.IngestContext(ctx, g)
		return false, err
	}
	retract := func(ctx context.Context, key string, g *pghive.Graph) (replayed bool, err error) {
		if dur != nil {
			_, replayed, err = dur.RetractIdempotent(ctx, key, g)
			return replayed, err
		}
		_, err = svc.RetractContext(ctx, g)
		return false, err
	}
	drain := func(ctx context.Context, r pghive.StreamReader) error {
		if dur != nil {
			return dur.DrainStreamContext(ctx, r, nil)
		}
		return svc.DrainStreamContext(ctx, r, nil)
	}
	// idempotencyKey validates the Idempotency-Key header; on a
	// contract violation it writes the 400 and reports ok=false.
	idempotencyKey := func(w http.ResponseWriter, r *http.Request) (string, bool) {
		key := r.Header.Get("Idempotency-Key")
		if key == "" {
			return "", true
		}
		if dur == nil {
			httpError(w, http.StatusBadRequest,
				errors.New("Idempotency-Key requires durable mode (serve with -data-dir)"))
			return "", false
		}
		if len(key) > pghive.MaxIdempotencyKeyLen {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("Idempotency-Key longer than %d bytes", pghive.MaxIdempotencyKeyLen))
			return "", false
		}
		return key, true
	}

	mux := http.NewServeMux()
	handleWrite := func(pattern string, h http.HandlerFunc) { mux.Handle(pattern, gate.WrapWrite(h)) }
	handleRead := func(pattern string, h http.HandlerFunc) { mux.Handle(pattern, gate.Wrap(h)) }

	handleWrite("POST /ingest", func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		key, ok := idempotencyKey(w, r)
		if !ok {
			return
		}
		replayed := false
		if batchSize > 0 && key == "" {
			// Spool the body before touching the service: DrainStream
			// holds the write lock, and reading a slow client's upload
			// under it would let one stalled connection block every
			// writer.
			body, err := io.ReadAll(r.Body)
			if err != nil {
				requestError(w, r, err)
				return
			}
			// The spooled body streams through in bounded pipeline
			// batches. Streamed ingestion is NOT atomic: batches that
			// preceded a malformed line are already published when the
			// error returns, so the error response carries the stats
			// the client needs to see how far the body got — blindly
			// re-sending the same body would double-ingest the prefix.
			if err := drain(r.Context(), pghive.NewJSONLStream(bytes.NewReader(body), batchSize)); err != nil {
				var roe *pghive.ReadOnlyError
				if errors.As(err, &roe) {
					// Fail-fast: refused before any batch was applied.
					serviceError(w, err)
					return
				}
				// A durability failure (WAL append) is the server's
				// fault and retryable — it must not masquerade as a
				// malformed-body 400, which clients treat as permanent.
				// A deadline expiry mid-stream is likewise the 503 kind.
				code := http.StatusBadRequest
				var de *pghive.DurabilityError
				switch {
				case errors.As(err, &de):
					code = http.StatusInternalServerError
				case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
					code = http.StatusServiceUnavailable
				}
				writeJSONStatus(w, code, map[string]any{
					"error": err.Error(),
					"note":  "streamed ingest is not atomic: batches before the error were already ingested and published",
					"stats": svc.Stats(),
				})
				return
			}
		} else {
			// Keyed requests always land as one atomic batch, whatever
			// -batch-size says: a key promises all-or-nothing, and a
			// split stream could replay half on retry.
			g, err := pghive.ReadJSONL(r.Body, true)
			if err != nil {
				requestError(w, r, err)
				return
			}
			if replayed, err = ingest(r.Context(), key, g); err != nil {
				serviceError(w, err)
				return
			}
		}
		writeJSON(w, map[string]any{
			"elapsedMs": time.Since(start).Milliseconds(),
			"replayed":  replayed,
			"stats":     svc.Stats(),
		})
	})
	handleWrite("POST /retract", func(w http.ResponseWriter, r *http.Request) {
		key, ok := idempotencyKey(w, r)
		if !ok {
			return
		}
		g, err := pghive.ReadJSONL(r.Body, true)
		if err != nil {
			requestError(w, r, err)
			return
		}
		replayed, err := retract(r.Context(), key, g)
		if err != nil {
			serviceError(w, err)
			return
		}
		writeJSON(w, map[string]any{"replayed": replayed, "stats": svc.Stats()})
	})
	handleRead("GET /schema", schemaHandler(svc))
	handleRead("POST /validate", validateHandler(svc))
	handleRead("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		if dur != nil {
			writeJSON(w, map[string]any{
				"stats":     svc.Stats(),
				"durable":   dur.DurableStats(),
				"admission": gate.Stats(),
			})
			return
		}
		writeJSON(w, svc.Stats())
	})
	// Probes bypass the gate: an orchestrator must see the truth even
	// when the server is at capacity or draining.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness: the process is up and serving reads — true even in
		// degraded read-only mode, which is declared, not fatal.
		resp := map[string]any{"status": "ok"}
		if dur != nil {
			if reason, degraded := dur.Degraded(); degraded {
				resp["status"] = "degraded"
				resp["readOnly"] = true
				resp["reason"] = reason
			}
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		// Readiness: should the load balancer route here? No while
		// draining. Degraded read-only still serves reads, so it stays
		// ready — but declares itself so operators can alert.
		if gate.Draining() {
			w.Header().Set("Retry-After", "1")
			writeJSONStatus(w, http.StatusServiceUnavailable,
				map[string]any{"ready": false, "reason": "draining"})
			return
		}
		resp := map[string]any{"ready": true}
		if dur != nil {
			if reason, degraded := dur.Degraded(); degraded {
				resp["readOnly"] = true
				resp["reason"] = reason
			}
		}
		writeJSON(w, resp)
	})
	handleRead("POST /rearm", func(w http.ResponseWriter, r *http.Request) {
		// Operator re-arm: re-open the WAL from disk and restore write
		// service after read-only degradation. No-op when healthy.
		if dur == nil {
			httpError(w, http.StatusBadRequest,
				errors.New("rearm requires durable mode (serve with -data-dir)"))
			return
		}
		if err := dur.Rearm(); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, map[string]any{"rearmed": true, "durable": dur.DurableStats()})
	})
	handleRead("POST /checkpoint", func(w http.ResponseWriter, r *http.Request) {
		if dur != nil {
			// Durable mode: fold the WAL into an on-disk image. The
			// image lands in the data directory via temp file + rename
			// (never a truncated file at the target path), superseded
			// segments are pruned, and the response reports the new
			// durability state instead of streaming the image.
			if err := dur.Compact(); err != nil {
				httpError(w, http.StatusInternalServerError, err)
				return
			}
			writeJSON(w, map[string]any{"compacted": true, "durable": dur.DurableStats()})
			return
		}
		// Serialize into memory first: WriteCheckpoint holds the
		// service write lock, so streaming it straight to a slow (or
		// stalled) client would block every ingest for as long as the
		// client cares to read — and a mid-write network error would
		// deliver a truncated image under a 200 status.
		var buf bytes.Buffer
		if err := svc.WriteCheckpoint(&buf); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(buf.Bytes())
	})
	return mux
}

// schemaHandler serves the published schema document in the format
// the request negotiates. Shared between the leader and follower
// muxes: a replica answers schema reads from its own snapshot exactly
// like a leader would.
func schemaHandler(svc *pghive.Service) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		mode := pghive.Strict
		switch strings.ToLower(r.URL.Query().Get("mode")) {
		case "", "strict":
		case "loose":
			mode = pghive.Loose
		default:
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("unknown mode %q (want strict or loose)", r.URL.Query().Get("mode")))
			return
		}
		name := r.URL.Query().Get("name")
		if name == "" {
			name = "DiscoveredGraphType"
		}
		switch schemaFormat(r) {
		case "json":
			w.Header().Set("Content-Type", "application/json")
			svc.WriteSchemaJSON(w)
		case "pgschema":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, svc.PGSchema(mode, name))
		case "xsd":
			w.Header().Set("Content-Type", "application/xml")
			fmt.Fprint(w, svc.XSD())
		case "dot":
			w.Header().Set("Content-Type", "text/vnd.graphviz")
			fmt.Fprint(w, svc.DOT(name))
		default:
			// Only an explicit ?format= can land here (Accept
			// negotiation always falls back to pgschema), and a bad
			// query parameter is the client's request error, not failed
			// content negotiation.
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("unknown schema format (want json, pgschema, xsd, or dot)"))
		}
	}
}

// validateHandler checks a posted batch against the published schema
// without ingesting it. Validation never mutates, so a follower
// serves it too — against its replicated schema.
func validateHandler(svc *pghive.Service) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		g, err := pghive.ReadJSONL(r.Body, true)
		if err != nil {
			requestError(w, r, err)
			return
		}
		mode := pghive.ValidateLoose
		switch strings.ToLower(r.URL.Query().Get("mode")) {
		case "", "loose":
		case "strict":
			mode = pghive.ValidateStrict
		default:
			// A typo'd mode must not silently validate loosely — the
			// client would read valid=true as a strict pass.
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("unknown mode %q (want loose or strict)", r.URL.Query().Get("mode")))
			return
		}
		rep := svc.Validate(g, mode)
		violations := make([]string, len(rep.Violations))
		for i, v := range rep.Violations {
			violations[i] = v.String()
		}
		writeJSON(w, map[string]any{
			"checked": rep.Checked, "valid": rep.Valid(),
			"violations": violations, "truncated": rep.Truncated,
		})
	}
}

// newFollowerMux wires the read-only replica surface: the same read
// endpoints a leader serves (answered from the follower's replicated
// snapshot), GET /lag for replication health, and — on every write
// route — the machine-readable read-only refusal, so a client that
// was misdirected at a replica gets PR 7's 409 contract rather than
// a 404 it might mistake for a missing feature. Factored out of
// runServe so tests can drive a replica end to end via httptest.
func newFollowerMux(fol *pghive.Follower, gate *admission.Gate) *http.ServeMux {
	if gate == nil {
		gate = admission.New(admission.Config{})
	}
	svc := fol.Service
	refuse := func(w http.ResponseWriter, r *http.Request) {
		serviceError(w, &pghive.ReadOnlyError{Reason: pghive.ReadOnlyFollower})
	}

	mux := http.NewServeMux()
	// Writes keep their leader routes but are refused up front —
	// before reading the body, which may be large and is doomed.
	mux.Handle("POST /ingest", gate.WrapWrite(http.HandlerFunc(refuse)))
	mux.Handle("POST /retract", gate.WrapWrite(http.HandlerFunc(refuse)))
	mux.Handle("POST /rearm", gate.Wrap(http.HandlerFunc(refuse)))

	mux.Handle("GET /schema", gate.Wrap(schemaHandler(svc)))
	mux.Handle("POST /validate", gate.Wrap(validateHandler(svc)))
	mux.Handle("GET /stats", gate.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{
			"stats":     svc.Stats(),
			"lag":       fol.Lag(r.Context()),
			"admission": gate.Stats(),
		})
	})))
	// POST /checkpoint streams the replica's state image, exactly like
	// a non-durable leader: the follower owns no WAL to fold, and the
	// streamed image is how operators (and CI) verify bit-identity
	// with the leader at the same LSN.
	mux.Handle("POST /checkpoint", gate.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		if err := svc.WriteCheckpoint(&buf); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(buf.Bytes())
	})))

	// Probes and the lag endpoint bypass the gate: an orchestrator
	// must see the truth even at capacity or while draining.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"status": "ok", "role": "follower"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if gate.Draining() {
			w.Header().Set("Retry-After", "1")
			writeJSONStatus(w, http.StatusServiceUnavailable,
				map[string]any{"ready": false, "reason": "draining"})
			return
		}
		// Not ready until the bootstrap image is applied: routing reads
		// to an empty replica would serve the initial snapshot as truth.
		if !fol.Ready() {
			w.Header().Set("Retry-After", "1")
			writeJSONStatus(w, http.StatusServiceUnavailable,
				map[string]any{"ready": false, "reason": "bootstrapping", "role": "follower"})
			return
		}
		writeJSON(w, map[string]any{"ready": true, "role": "follower"})
	})
	mux.HandleFunc("GET /lag", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, fol.Lag(r.Context()))
	})
	return mux
}

// leaderLSNProbe builds the follower's leader-position callback: read
// the leader's /stats and report its last acknowledged WAL LSN, which
// GET /lag subtracts from the replica's applied LSN. Best effort —
// when -follow points at a bare object store with no /stats endpoint,
// /lag simply omits the leader position.
func leaderLSNProbe(base string) func(context.Context) (uint64, error) {
	base = strings.TrimRight(base, "/")
	return func(ctx context.Context) (uint64, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/stats", nil)
		if err != nil {
			return 0, err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("leader /stats: %s", resp.Status)
		}
		var doc struct {
			Durable struct {
				WALNextLSN uint64 `json:"walNextLSN"`
			} `json:"durable"`
		}
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&doc); err != nil {
			return 0, err
		}
		if doc.Durable.WALNextLSN == 0 {
			return 0, errors.New("leader /stats reports no WAL position")
		}
		return doc.Durable.WALNextLSN - 1, nil
	}
}

// schemaFormat resolves ?format= (authoritative) or the Accept header
// to one of json, pgschema, xsd, dot.
func schemaFormat(r *http.Request) string {
	if f := strings.ToLower(r.URL.Query().Get("format")); f != "" {
		return f
	}
	accept := r.Header.Get("Accept")
	switch {
	case strings.Contains(accept, "application/json"):
		return "json"
	case strings.Contains(accept, "application/xml"), strings.Contains(accept, "text/xml"):
		return "xsd"
	case strings.Contains(accept, "text/vnd.graphviz"):
		return "dot"
	default:
		return "pgschema"
	}
}

// writeJSONStatus is the single JSON response path: every handler
// body and error goes through it, so Content-Type and encoder
// settings stay consistent across the API.
func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeJSON(w http.ResponseWriter, v any) { writeJSONStatus(w, http.StatusOK, v) }

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSONStatus(w, code, map[string]string{"error": err.Error()})
}

// requestError maps a body-read failure to its status: the admission
// body cap answers 413 (http.MaxBytesReader already hung up the
// connection), everything else is the client's malformed input. The
// cap is detected through the gate, not just the error chain, because
// the JSONL parser reports the truncated tail as a syntax error.
func requestError(w http.ResponseWriter, r *http.Request, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) || admission.BodyLimitExceeded(r) {
		httpError(w, http.StatusRequestEntityTooLarge, err)
		return
	}
	httpError(w, http.StatusBadRequest, err)
}

// serviceError maps a failed (non-streamed) service write to the
// declared status contract:
//
//	409 read-only degraded — retrying is pointless until re-arm
//	503 deadline/cancel    — the request never entered the WAL; back
//	                         off and retry
//	500 durability failure — the WAL rejected the append; retryable
//	                         (idempotency keys make the retry safe)
func serviceError(w http.ResponseWriter, err error) {
	var roe *pghive.ReadOnlyError
	switch {
	case errors.As(err, &roe):
		writeJSONStatus(w, http.StatusConflict, map[string]any{
			"error": err.Error(), "readOnly": true, "reason": roe.Reason,
		})
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, err)
	default:
		httpError(w, http.StatusInternalServerError, err)
	}
}
