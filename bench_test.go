// bench_test.go contains one benchmark per table and figure of the
// paper's evaluation (§5), plus ablation benches for the design
// choices DESIGN.md calls out. Benchmarks run the same harness as
// cmd/experiments at a reduced scale so `go test -bench=. -benchmem`
// finishes on a laptop; raise benchScale for full-size runs.
//
// Quality metrics (F1*) are attached to the benchmark output via
// b.ReportMetric, so a single run documents both cost and accuracy.
package pghive_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	pghive "github.com/pghive/pghive"
	"github.com/pghive/pghive/internal/baselines/gmm"
	"github.com/pghive/pghive/internal/baselines/schemi"
	"github.com/pghive/pghive/internal/core"
	"github.com/pghive/pghive/internal/datagen"
	"github.com/pghive/pghive/internal/eval"
	"github.com/pghive/pghive/internal/experiments"
)

// benchScale shrinks the synthetic datasets for benchmarking (1.0 =
// the Table 2 ÷ 200 defaults).
const benchScale = 0.25

func benchCfg(datasets ...string) experiments.Config {
	return experiments.Config{Scale: benchScale, Seed: 1, Datasets: datasets}
}

// BenchmarkTable2DatasetGeneration regenerates all eight datasets —
// Table 2's content — per iteration.
func BenchmarkTable2DatasetGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2(benchCfg())
		if len(rows) != 8 {
			b.Fatal("expected 8 dataset rows")
		}
	}
}

// BenchmarkFig3Significance runs the 100%-label method comparison and
// the Nemenyi rank analysis (Fig. 3) on two contrasting datasets.
func BenchmarkFig3Significance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells := experiments.Grid(benchCfg("POLE", "MB6"))
		r := experiments.Fig3(cells)
		b.ReportMetric(r.NodeRanks[experiments.MElsh], "elsh-node-rank")
		b.ReportMetric(r.NodeRanks[experiments.MGMM], "gmm-node-rank")
	}
}

// BenchmarkFig4Accuracy runs the accuracy grid (F1* across noise and
// label availability, Fig. 4) for one dataset per iteration.
func BenchmarkFig4Accuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells := experiments.Grid(benchCfg("LDBC"))
		s := experiments.Summarize(cells)
		b.ReportMetric(s.MaxNodeGain, "max-node-gain")
	}
}

// BenchmarkFig5Efficiency measures time-until-type-discovery (Fig. 5)
// per dataset and method; the benchmark time itself is the figure's
// metric.
func BenchmarkFig5Efficiency(b *testing.B) {
	for _, name := range []string{"POLE", "MB6", "HET.IO", "FIB25", "ICIJ", "CORD19", "LDBC", "IYP"} {
		d := datagen.Generate(datagen.ByName(name), benchScale, 1)
		b.Run(name+"/PG-HIVE-ELSH", func(b *testing.B) {
			f1 := 0.0
			for i := 0; i < b.N; i++ {
				res := pghive.Discover(d.Graph, pghive.Options{Seed: 1})
				f1 = eval.MajorityF1(eval.NodeAssignments(res.NodeAssign), d.NodeTruth)
			}
			b.ReportMetric(f1, "nodeF1")
		})
		b.Run(name+"/PG-HIVE-MinHash", func(b *testing.B) {
			f1 := 0.0
			for i := 0; i < b.N; i++ {
				res := pghive.Discover(d.Graph, pghive.Options{Method: pghive.MinHash, Seed: 1})
				f1 = eval.MajorityF1(eval.NodeAssignments(res.NodeAssign), d.NodeTruth)
			}
			b.ReportMetric(f1, "nodeF1")
		})
		b.Run(name+"/GMM", func(b *testing.B) {
			f1 := 0.0
			for i := 0; i < b.N; i++ {
				res, err := gmm.Discover(d.Graph, gmm.Options{Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				f1 = eval.MajorityF1(eval.NodeAssignments(res.NodeAssign), d.NodeTruth)
			}
			b.ReportMetric(f1, "nodeF1")
		})
		b.Run(name+"/SchemI", func(b *testing.B) {
			f1 := 0.0
			for i := 0; i < b.N; i++ {
				res, err := schemi.Discover(d.Graph)
				if err != nil {
					b.Fatal(err)
				}
				f1 = eval.MajorityF1(eval.NodeAssignments(res.NodeAssign), d.NodeTruth)
			}
			b.ReportMetric(f1, "nodeF1")
		})
	}
}

// BenchmarkFig6AdaptiveParams sweeps the (T, b) grid around the
// adaptive choice (Fig. 6).
func BenchmarkFig6AdaptiveParams(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := experiments.Fig6(benchCfg("POLE"))
		b.ReportMetric(results[0].AdaptiveNodeF1, "adaptive-nodeF1")
	}
}

// BenchmarkFig7Incremental processes a dataset in 10 random batches
// (Fig. 7).
func BenchmarkFig7Incremental(b *testing.B) {
	for _, name := range []string{"POLE", "LDBC"} {
		d := datagen.Generate(datagen.ByName(name), benchScale, 1)
		b.Run(name, func(b *testing.B) {
			f1 := 0.0
			for i := 0; i < b.N; i++ {
				inc := pghive.NewIncremental(pghive.Options{Seed: 1})
				for _, batch := range pghive.SplitBatches(d.Graph, experiments.Fig7Batches, rand.New(rand.NewSource(21))) {
					inc.ProcessBatch(batch)
				}
				res := inc.Finalize()
				f1 = eval.MajorityF1(eval.NodeAssignments(res.NodeAssign), d.NodeTruth)
			}
			b.ReportMetric(f1, "nodeF1")
		})
	}
}

// BenchmarkFig8SamplingError measures the datatype sampling-error
// distribution (Fig. 8).
func BenchmarkFig8SamplingError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig8(benchCfg("ICIJ"))
		b.ReportMetric(rows[0].Bins[0], "lowest-bin-share")
	}
}

// BenchmarkAblationHybridVectors contrasts the hybrid representation
// (label embedding ⊕ property bits, §4.1) against property-bits-only
// vectors (LabelWeight → 0) under heavy noise. The paper's argument:
// without the label block, semantically different but structurally
// similar types merge.
func BenchmarkAblationHybridVectors(b *testing.B) {
	base := datagen.Generate(datagen.HETIO(), benchScale*2, 1)
	d := datagen.InjectNoise(base, 0.4, 1, 7)
	for _, cfg := range []struct {
		name   string
		weight float64
	}{
		{"hybrid", 3},
		{"props-only", 0.001},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			f1 := 0.0
			for i := 0; i < b.N; i++ {
				res := pghive.Discover(d.Graph, pghive.Options{Seed: 1, LabelWeight: cfg.weight})
				f1 = eval.MajorityF1(eval.NodeAssignments(res.NodeAssign), d.NodeTruth)
			}
			b.ReportMetric(f1, "nodeF1")
		})
	}
}

// BenchmarkAblationMergeStep contrasts full Algorithm 2 merging with
// raw LSH clusters (§4.3 credits the refinement to the merge step).
func BenchmarkAblationMergeStep(b *testing.B) {
	base := datagen.Generate(datagen.ICIJ(), benchScale*2, 1)
	d := datagen.InjectNoise(base, 0.3, 1, 7)
	for _, cfg := range []struct {
		name    string
		disable bool
	}{
		{"with-merge", false},
		{"no-merge", true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			types := 0.0
			for i := 0; i < b.N; i++ {
				res := pghive.Discover(d.Graph, core.Options{Seed: 1, DisableMerging: cfg.disable})
				types = float64(len(res.Schema.NodeTypes))
			}
			b.ReportMetric(types, "node-types")
		})
	}
}

// BenchmarkAblationTheta sweeps the Jaccard merge threshold θ (§4.3:
// lowering θ increases recall but mixes types).
func BenchmarkAblationTheta(b *testing.B) {
	base := datagen.Generate(datagen.CORD19(), benchScale*2, 1)
	d := datagen.InjectNoise(base, 0.3, 0.5, 7)
	for _, theta := range []float64{0.5, 0.7, 0.9, 1.0} {
		theta := theta
		b.Run(formatTheta(theta), func(b *testing.B) {
			f1 := 0.0
			for i := 0; i < b.N; i++ {
				res := pghive.Discover(d.Graph, pghive.Options{Seed: 1, Theta: theta})
				f1 = eval.MajorityF1(eval.NodeAssignments(res.NodeAssign), d.NodeTruth)
			}
			b.ReportMetric(f1, "nodeF1")
		})
	}
}

// BenchmarkAblationSampledDataTypes contrasts full-scan and sampled
// datatype inference cost (§4.4's performance flag; Fig. 8 covers its
// accuracy).
func BenchmarkAblationSampledDataTypes(b *testing.B) {
	d := datagen.Generate(datagen.IYP(), benchScale*2, 1)
	for _, cfg := range []struct {
		name   string
		sample bool
	}{
		{"full-scan", false},
		{"sampled", true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := pghive.Options{Seed: 1}
				opts.Infer.SampleDataTypes = cfg.sample
				pghive.Discover(d.Graph, opts)
			}
		})
	}
}

// mixedWorkload generates the mixed datagen workload the parallelism
// benchmarks run over: three structurally different datasets (social
// LDBC, financial ICIJ, biomedical HET.IO) with property noise and
// partial labels, so every pipeline stage — embedding, vectorization,
// hashing, banding, merging — does real work.
func mixedWorkload(scale float64) []*pghive.Graph {
	var graphs []*pghive.Graph
	for _, name := range []string{"LDBC", "ICIJ", "HET.IO"} {
		d := datagen.Generate(datagen.ByName(name), scale, 1)
		d = datagen.InjectNoise(d, 0.2, 0.7, 7)
		graphs = append(graphs, d.Graph)
	}
	return graphs
}

// BenchmarkParallelDiscover contrasts fully sequential discovery
// (Parallelism 1) with all-core discovery (Parallelism NumCPU) on the
// mixed datagen workload, for both clustering methods. Compare the
// two ns/op figures to read the wall-clock speedup.
func BenchmarkParallelDiscover(b *testing.B) {
	graphs := mixedWorkload(benchScale * 2)
	for _, method := range []pghive.Method{pghive.ELSH, pghive.MinHash} {
		for _, par := range []int{1, runtime.NumCPU()} {
			b.Run(fmt.Sprintf("%v/parallelism=%d", method, par), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for _, g := range graphs {
						pghive.Discover(g, pghive.Options{Seed: 1, Method: method, Parallelism: par})
					}
				}
			})
		}
	}
}

// BenchmarkParallelSpeedup runs the sequential and all-core pipelines
// back to back on the mixed workload and reports their wall-clock
// ratio as the "speedup" metric (values above 1 mean the parallel
// run was faster; expect >1.5 on 4+ cores, ~1.0 on a single core).
func BenchmarkParallelSpeedup(b *testing.B) {
	graphs := mixedWorkload(benchScale * 2)
	var seq, par time.Duration
	for i := 0; i < b.N; i++ {
		start := time.Now()
		for _, g := range graphs {
			pghive.Discover(g, pghive.Options{Seed: 1, Parallelism: 1})
		}
		seq += time.Since(start)
		start = time.Now()
		for _, g := range graphs {
			pghive.Discover(g, pghive.Options{Seed: 1, Parallelism: runtime.NumCPU()})
		}
		par += time.Since(start)
	}
	if par > 0 {
		b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup")
	}
}

// dupHeavySpec declares a duplicate-heavy synthetic dataset: a
// handful of types whose properties are mostly mandatory, so the
// graph has millions of possible elements but only a few dozen
// distinct shapes — the regime real production graphs live in and the
// one shape interning targets. elements is the total node + edge
// count at scale 1.
func dupHeavySpec(elements int) *datagen.Spec {
	p := func(key string, gen datagen.Gen) datagen.Prop {
		return datagen.Prop{Key: key, Gen: gen, Prob: 1}
	}
	return &datagen.Spec{
		Name: "DUPHEAVY",
		Nodes: []datagen.NodeSpec{
			{Name: "User", Labels: []string{"User"}, Weight: 4, Props: []datagen.Prop{
				p("id", datagen.GInt), p("name", datagen.GString),
				p("created", datagen.GDateTime), p("karma", datagen.GInt),
				p("verified", datagen.GBool), p("bio", datagen.GString),
				{Key: "email", Gen: datagen.GString, Prob: 0.5},
			}},
			{Name: "Post", Labels: []string{"Post"}, Weight: 4, Props: []datagen.Prop{
				p("content", datagen.GString), p("created", datagen.GDateTime),
				p("score", datagen.GInt), p("lang", datagen.GString),
				p("length", datagen.GInt),
			}},
			{Name: "Tag", Labels: []string{"Tag"}, Weight: 1, Props: []datagen.Prop{
				p("label", datagen.GString), p("uses", datagen.GInt),
			}},
			{Name: "Forum", Labels: []string{"Forum"}, Weight: 1, Props: []datagen.Prop{
				p("title", datagen.GString), p("members", datagen.GInt),
				p("created", datagen.GDate), p("moderated", datagen.GBool),
			}},
		},
		Edges: []datagen.EdgeSpec{
			{Name: "LIKES", Labels: []string{"LIKES"}, Src: "User", Dst: "Post", Weight: 4,
				Props: []datagen.Prop{p("at", datagen.GDateTime), p("weight", datagen.GFloat)}},
			{Name: "POSTED", Labels: []string{"POSTED"}, Src: "User", Dst: "Post", Weight: 3,
				Props: []datagen.Prop{p("at", datagen.GDateTime)}},
			{Name: "TAGGED", Labels: []string{"TAGGED"}, Src: "Post", Dst: "Tag", Weight: 2},
			{Name: "MEMBER", Labels: []string{"MEMBER"}, Src: "User", Dst: "Forum", Weight: 1,
				Props: []datagen.Prop{p("role", datagen.GString), {Key: "since", Gen: datagen.GDate, Prob: 0.8}}},
		},
		DefaultNodes: elements / 2,
		DefaultEdges: elements - elements/2,
	}
}

// BenchmarkShapeInterning measures the tentpole optimization:
// discovery on duplicate-heavy graphs with shape interning on vs.
// off, at 10k and 100k elements, for both methods. The interned and
// non-interned runs produce byte-identical schemas (see
// pghive_intern_test.go); compare ns/op for the speedup and expect it
// to grow with graph size, since interned cost scales with distinct
// shapes, not elements. BENCH_2.json records the trajectory.
func BenchmarkShapeInterning(b *testing.B) {
	for _, elements := range []int{10000, 100000} {
		d := datagen.Generate(dupHeavySpec(elements), 1, 1)
		for _, method := range []pghive.Method{pghive.ELSH, pghive.MinHash} {
			for _, disabled := range []bool{false, true} {
				name := fmt.Sprintf("%v/elements=%d/interned=%v", method, elements, !disabled)
				b.Run(name, func(b *testing.B) {
					opts := pghive.Options{Seed: 1, Method: method}
					opts.DisableShapeInterning = disabled
					var res *pghive.Result
					for i := 0; i < b.N; i++ {
						res = pghive.Discover(d.Graph, opts)
					}
					b.ReportMetric(float64(res.NodeShapes+res.EdgeShapes), "shapes")
					b.ReportMetric(float64(len(res.Schema.NodeTypes)), "node-types")
				})
			}
		}
	}
}

// BenchmarkShapeInterningSpeedup runs the interned and non-interned
// pipelines back to back in each iteration and reports their
// wall-clock ratio ("speedup", full run) and the ratio of the Fig. 5
// time-until-type-discovery phases ("discovery-speedup"). Pairing the
// two runs inside one iteration cancels machine noise, so the ratio
// is much more stable than dividing the two ShapeInterning ns/op
// figures.
func BenchmarkShapeInterningSpeedup(b *testing.B) {
	for _, elements := range []int{10000, 100000} {
		d := datagen.Generate(dupHeavySpec(elements), 1, 1)
		for _, method := range []pghive.Method{pghive.ELSH, pghive.MinHash} {
			b.Run(fmt.Sprintf("%v/elements=%d", method, elements), func(b *testing.B) {
				var on, off, onDisc, offDisc time.Duration
				for i := 0; i < b.N; i++ {
					opts := pghive.Options{Seed: 1, Method: method}
					start := time.Now()
					res := pghive.Discover(d.Graph, opts)
					on += time.Since(start)
					onDisc += res.Timing.Discovery()
					opts.DisableShapeInterning = true
					start = time.Now()
					res = pghive.Discover(d.Graph, opts)
					off += time.Since(start)
					offDisc += res.Timing.Discovery()
				}
				if on > 0 {
					b.ReportMetric(off.Seconds()/on.Seconds(), "speedup")
				}
				if onDisc > 0 {
					b.ReportMetric(offDisc.Seconds()/onDisc.Seconds(), "discovery-speedup")
				}
			})
		}
	}
}

func formatTheta(t float64) string {
	switch t {
	case 0.5:
		return "theta-0.5"
	case 0.7:
		return "theta-0.7"
	case 0.9:
		return "theta-0.9"
	default:
		return "theta-1.0"
	}
}
