// bench_durable_test.go measures the headline win of the run-based
// checkpoint layout: compaction IO proportional to what changed, not
// to database size. BenchmarkCompactionDelta compacts 1k-element
// deltas on a 100k-element base and reports the checkpoint bytes each
// design writes per round — the delta-run layout against the previous
// rewrite-the-whole-image design. TestCompactionDeltaIOBound enforces
// the same property at test scale so the ratio is gated on every CI
// run, not just when benchmarks happen to be compared.
package pghive_test

import (
	"fmt"
	"path/filepath"
	"testing"

	pghive "github.com/pghive/pghive"
	"github.com/pghive/pghive/internal/core"
	"github.com/pghive/pghive/internal/vfs"
)

// openFoldedBase builds a durable service on mem whose checkpoint is
// a freshly folded base image of 2*baseN elements (baseN nodes plus
// baseN ring edges) with an empty run chain, then reopens it with a
// run-chain cap high enough that the measured compactions never fold.
func openFoldedBase(tb testing.TB, mem *vfs.MemFS, dir string, baseN int) *pghive.DurableService {
	tb.Helper()
	dopts := pghive.DurableOptions{
		NoSync:             true,
		DisableAutoCompact: true,
		MaxRuns:            1,
		MaxTombstoneRatio:  1e9,
		FS:                 mem,
	}
	d, err := pghive.OpenDurable(dir, pghive.Options{Parallelism: 1}, dopts)
	if err != nil {
		tb.Fatal(err)
	}
	// Ingest the base in chunks, then compact twice: the first
	// compaction writes the whole base as one run, the second trips
	// MaxRuns=1 and folds it into a base image with no runs on top.
	const chunk = 1000
	for off := 0; off < baseN; off += chunk {
		n := min(chunk, baseN-off)
		if _, err := d.Ingest(stressGraph(tb, pghive.ID(off), n)); err != nil {
			tb.Fatal(err)
		}
	}
	if err := d.Compact(); err != nil {
		tb.Fatal(err)
	}
	if _, err := d.Ingest(stressGraph(tb, pghive.ID(baseN), 1)); err != nil {
		tb.Fatal(err)
	}
	if err := d.Compact(); err != nil {
		tb.Fatal(err)
	}
	if st := d.DurableStats(); st.Runs != 0 {
		tb.Fatalf("base not folded: %d runs remain", st.Runs)
	}
	if err := d.Close(); err != nil {
		tb.Fatal(err)
	}
	dopts.MaxRuns = 1 << 30
	d, err = pghive.OpenDurable(dir, pghive.Options{Parallelism: 1}, dopts)
	if err != nil {
		tb.Fatal(err)
	}
	return d
}

// baseImagePath reconstructs the base checkpoint file name from the
// manifest stats (the layout is pinned by the runfile golden tests).
func baseImagePath(dir string, st pghive.DurableStats) string {
	return filepath.Join(dir, fmt.Sprintf("checkpoint-%020d.ckpt", st.BaseLSN))
}

func BenchmarkCompactionDelta(b *testing.B) {
	const baseN, deltaN = 50_000, 500 // elements = 2*N (nodes + edges)

	b.Run("runs", func(b *testing.B) {
		mem := vfs.NewMemFS()
		d := openFoldedBase(b, mem, "data", baseN)
		defer d.Close()
		prev := d.DurableStats().RunBytes
		var total int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			base := pghive.ID(1_000_000 + i*10_000)
			if _, err := d.Ingest(stressGraph(b, base, deltaN)); err != nil {
				b.Fatal(err)
			}
			if err := d.Compact(); err != nil {
				b.Fatal(err)
			}
			cur := d.DurableStats().RunBytes
			total += cur - prev
			prev = cur
		}
		b.ReportMetric(float64(total)/float64(b.N), "ckpt-bytes/op")
	})

	b.Run("monolithic", func(b *testing.B) {
		// The pre-run design wrote the entire image on every
		// compaction; replaying that write (encode to a byte counter)
		// against the same base measures the IO the run layout avoids.
		mem := vfs.NewMemFS()
		d := openFoldedBase(b, mem, "data", baseN)
		defer d.Close()
		img, err := core.LoadImage(mem, baseImagePath("data", d.DurableStats()))
		if err != nil {
			b.Fatal(err)
		}
		var total int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var cw countWriter
			if err := core.EncodeImage(&cw, img); err != nil {
				b.Fatal(err)
			}
			total += cw.n
		}
		b.ReportMetric(float64(total)/float64(b.N), "ckpt-bytes/op")
	})
}

type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// TestCompactionDeltaIOBound pins the ratio the benchmark reports: on
// a 10k-element base, compacting a 100-element delta must write at
// least 10x fewer checkpoint bytes than rewriting the base image.
func TestCompactionDeltaIOBound(t *testing.T) {
	const baseN, deltaN = 5_000, 50
	mem := vfs.NewMemFS()
	d := openFoldedBase(t, mem, "data", baseN)
	defer d.Close()

	st, err := mem.Stat(baseImagePath("data", d.DurableStats()))
	if err != nil {
		t.Fatal(err)
	}
	imageBytes := st.Size()

	if _, err := d.Ingest(stressGraph(t, 1_000_000, deltaN)); err != nil {
		t.Fatal(err)
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	runBytes := d.DurableStats().RunBytes
	if runBytes <= 0 {
		t.Fatal("delta compaction wrote no run")
	}
	if runBytes*10 > imageBytes {
		t.Fatalf("delta run is %d bytes vs %d-byte base image: less than the required 10x saving", runBytes, imageBytes)
	}
}
