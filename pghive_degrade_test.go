package pghive_test

// Read-only degradation and re-arm. The contract under test: an
// unrecoverable append failure (full disk, broken WAL) flips the
// service into DECLARED read-only mode — reads keep serving the last
// published snapshot, writes fail fast with a machine-readable
// ReadOnlyError, and write service comes back through the declared
// paths only: a successful compaction for disk-full, Rearm for
// everything including a broken WAL. Rearm's hard case is the
// resurrected frame: an append whose error could not be rolled back
// may or may not be durable, and re-arming must reconcile the live
// state with whatever the disk actually holds — keeping the
// exactly-once promise for that write's idempotency key.

import (
	"context"
	"errors"
	"io"
	"syscall"
	"testing"
	"time"

	pghive "github.com/pghive/pghive"
	"github.com/pghive/pghive/internal/vfs"
)

func openDegradeService(t *testing.T, fs vfs.FS) *pghive.DurableService {
	t.Helper()
	d, err := pghive.OpenDurable("data", pghive.Options{Seed: 3, Parallelism: 1},
		pghive.DurableOptions{FS: fs, DisableAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// syncsThroughFirstIngest counts fsync operations from open through
// one ingest on a pristine directory, so faults can be aimed at the
// SECOND write's append without hard-coding WAL internals.
func syncsThroughFirstIngest(t *testing.T) int {
	t.Helper()
	plan := vfs.NewPlan()
	d := openDegradeService(t, vfs.NewInjectFS(vfs.NewMemFS(), plan))
	if _, err := d.Ingest(stressGraph(t, 0, 5)); err != nil {
		t.Fatal(err)
	}
	n := plan.Ops()[vfs.OpSync]
	d.Close()
	if n == 0 {
		t.Fatal("probe saw no sync operations — injector not wired through")
	}
	return n
}

func TestENOSPCDegradesToReadOnlyAndCompactionRearms(t *testing.T) {
	mem := vfs.NewMemFS()
	// The second write's WAL append reports a full disk.
	plan := vfs.NewPlan(vfs.Fault{Op: vfs.OpSync, N: syncsThroughFirstIngest(t) + 1, Mode: vfs.FailEarly, Err: syscall.ENOSPC})
	d := openDegradeService(t, vfs.NewInjectFS(mem, plan))
	defer d.Close()

	if _, err := d.Ingest(stressGraph(t, 0, 5)); err != nil {
		t.Fatalf("pre-fault ingest: %v", err)
	}
	snapBefore := d.Stats().Snapshot

	_, err := d.Ingest(stressGraph(t, 1000, 5))
	var de *pghive.DurabilityError
	if !errors.As(err, &de) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("ENOSPC append returned %v, want DurabilityError wrapping ENOSPC", err)
	}
	reason, degraded := d.Degraded()
	if !degraded || reason != pghive.DegradeDiskFull {
		t.Fatalf("Degraded() = %q/%v, want %q/true", reason, degraded, pghive.DegradeDiskFull)
	}
	st := d.DurableStats()
	if !st.ReadOnly || st.ReadOnlyReason != pghive.DegradeDiskFull {
		t.Fatalf("DurableStats does not declare read-only: %+v", st)
	}

	// Writes fail fast with the declared error; reads keep serving the
	// pre-fault snapshot.
	var roe *pghive.ReadOnlyError
	if _, err := d.Ingest(stressGraph(t, 2000, 5)); !errors.As(err, &roe) {
		t.Fatalf("degraded write returned %v, want ReadOnlyError", err)
	}
	if roe.Reason != pghive.DegradeDiskFull {
		t.Fatalf("ReadOnlyError reason %q, want %q", roe.Reason, pghive.DegradeDiskFull)
	}
	if got := d.Stats(); got.Snapshot != snapBefore || got.Nodes != 5 {
		t.Fatalf("degraded reads changed: %+v", got)
	}

	// Compaction frees superseded segments — the very space the write
	// path was starving for — and re-arms automatically.
	if err := d.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if _, degraded := d.Degraded(); degraded {
		t.Fatal("successful compaction did not re-arm a disk-full service")
	}
	if _, err := d.Ingest(stressGraph(t, 3000, 5)); err != nil {
		t.Fatalf("post-rearm ingest: %v", err)
	}
}

func TestBrokenWALDegradesAndRearmRestoresWrites(t *testing.T) {
	mem := vfs.NewMemFS()
	// A FailLate sync persists the frame but reports failure, and the
	// rollback's own sync fails too: the WAL goes sticky-broken with
	// one indeterminate frame on disk.
	n := syncsThroughFirstIngest(t)
	plan := vfs.NewPlan(
		vfs.Fault{Op: vfs.OpSync, N: n + 1, Mode: vfs.FailLate},
		vfs.Fault{Op: vfs.OpSync, N: n + 2, Mode: vfs.FailEarly},
	)
	d := openDegradeService(t, vfs.NewInjectFS(mem, plan))
	defer d.Close()

	if _, err := d.Ingest(stressGraph(t, 0, 5)); err != nil {
		t.Fatalf("pre-fault ingest: %v", err)
	}
	want := countsOf(d.Stats())

	// The indeterminate write carries an idempotency key, so we can
	// prove exactly-once across the re-arm.
	const key = "indeterminate-1"
	if _, _, err := d.IngestIdempotent(context.Background(), key, stressGraph(t, 1000, 5)); err == nil {
		t.Fatal("faulted keyed ingest unexpectedly succeeded")
	}
	if !d.DurableStats().WALBroken {
		t.Fatal("double sync fault did not break the WAL")
	}
	if reason, degraded := d.Degraded(); !degraded || reason != pghive.DegradeWALBroken {
		t.Fatalf("Degraded() = %q/%v, want %q/true", reason, degraded, pghive.DegradeWALBroken)
	}
	var roe *pghive.ReadOnlyError
	if _, err := d.Ingest(stressGraph(t, 2000, 5)); !errors.As(err, &roe) {
		t.Fatalf("broken-WAL write returned %v, want ReadOnlyError", err)
	}

	// Rearm re-opens the log from disk and reconciles: whatever the
	// indeterminate frame's fate, the retried key applies exactly once.
	if err := d.Rearm(); err != nil {
		t.Fatalf("Rearm: %v", err)
	}
	if _, degraded := d.Degraded(); degraded {
		t.Fatal("service still degraded after successful Rearm")
	}
	if d.DurableStats().ReadOnly {
		t.Fatal("DurableStats still read-only after Rearm")
	}
	_, replayed, err := d.IngestIdempotent(context.Background(), key, stressGraph(t, 1000, 5))
	if err != nil {
		t.Fatalf("post-rearm keyed retry: %v", err)
	}
	got := countsOf(d.Stats())
	if replayed {
		// The frame survived the failed rollback; Rearm applied it
		// during catch-up, and the retry was recognized.
		if got.Batches != want.Batches+1 {
			t.Fatalf("replayed retry after resurrected frame: %+v, want %d batches", got, want.Batches+1)
		}
	} else if got.Batches != want.Batches+1 {
		// The frame did not survive; the retry applied it fresh.
		t.Fatalf("fresh retry after rollback: %+v, want %d batches", got, want.Batches+1)
	}

	// Either way the write landed exactly once, and further writes and
	// recovery behave normally.
	if _, err := d.Ingest(stressGraph(t, 3000, 5)); err != nil {
		t.Fatalf("post-rearm ingest: %v", err)
	}
	live := serviceImage(t, d)
	d.Close()
	mem.Crash()
	d2 := openDegradeService(t, mem)
	defer d2.Close()
	if recovered := serviceImage(t, d2); string(recovered) != string(live) {
		t.Fatal("recovery after rearm diverges from the live state")
	}
}

func TestRearmOnHealthyServiceIsNoOp(t *testing.T) {
	mem := vfs.NewMemFS()
	d := openDegradeService(t, mem)
	defer d.Close()
	if _, err := d.Ingest(stressGraph(t, 0, 5)); err != nil {
		t.Fatal(err)
	}
	want := countsOf(d.Stats())
	if err := d.Rearm(); err != nil {
		t.Fatalf("Rearm on healthy service: %v", err)
	}
	if got := countsOf(d.Stats()); got != want {
		t.Fatalf("no-op Rearm changed state: %+v, want %+v", got, want)
	}
}

// blockingStream parks DrainStream on its first Next until released —
// a stand-in for a slow upload holding the write lock.
type blockingStream struct {
	started chan struct{}
	release chan struct{}
}

func (b *blockingStream) Next() (*pghive.Batch, error) {
	close(b.started)
	<-b.release
	return nil, io.EOF
}

func TestWriteDeadlineFailsFastWhenLockIsHeld(t *testing.T) {
	mem := vfs.NewMemFS()
	d := openDegradeService(t, mem)
	defer d.Close()

	bs := &blockingStream{started: make(chan struct{}), release: make(chan struct{})}
	drainDone := make(chan error, 1)
	go func() { drainDone <- d.DrainStream(bs, nil) }()
	<-bs.started

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := d.IngestContext(ctx, stressGraph(t, 0, 5))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued write under a held lock returned %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline did not interrupt the lock wait")
	}

	close(bs.release)
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The lock is free again; the same write now succeeds.
	if _, err := d.Ingest(stressGraph(t, 0, 5)); err != nil {
		t.Fatalf("post-release ingest: %v", err)
	}
}
