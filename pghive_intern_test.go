// pghive_intern_test.go proves the shape-interning contract: for a
// fixed seed, discovery with interning on (the default) is
// byte-identical to discovery with Options.DisableShapeInterning —
// the same schema, the same per-element type assignments, the same
// cluster counts — for both clustering methods, every Parallelism
// value, and in incremental mode. Run with -race to also verify the
// interned sharding.
package pghive_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	pghive "github.com/pghive/pghive"
	"github.com/pghive/pghive/internal/datagen"
)

// assignSnapshot renders every per-element assignment (node and edge
// ID → assigned type), so comparisons catch even a single element
// moving between types of the same name.
func assignSnapshot(res *pghive.Result) string {
	var sb strings.Builder
	lines := make([]string, 0, len(res.NodeAssign)+len(res.EdgeAssign))
	for id, ty := range res.NodeAssign {
		lines = append(lines, fmt.Sprintf("n%d=%d/%s", id, ty.ID, ty.Name()))
	}
	for id, ty := range res.EdgeAssign {
		lines = append(lines, fmt.Sprintf("e%d=%d/%s", id, ty.ID, ty.Name()))
	}
	sort.Strings(lines)
	for _, l := range lines {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// fullSnapshot is the schema snapshot plus all per-element
// assignments.
func fullSnapshot(res *pghive.Result) string {
	return snapshot(res) + "\n" + assignSnapshot(res)
}

// TestInterningEquivalence: interned and non-interned discovery are
// byte-identical across datasets, methods, and worker counts.
func TestInterningEquivalence(t *testing.T) {
	for _, ds := range []string{"POLE", "LDBC", "ICIJ"} {
		base := datagen.Generate(datagen.ByName(ds), 0.25, 1)
		noisy := datagen.InjectNoise(base, 0.2, 0.7, 7)
		for _, method := range []pghive.Method{pghive.ELSH, pghive.MinHash} {
			for _, p := range append([]int{1}, parallelisms()...) {
				opts := pghive.Options{Seed: 1, Method: method, Parallelism: p}
				opts.DisableShapeInterning = true
				want := fullSnapshot(pghive.Discover(noisy.Graph, opts))
				opts.DisableShapeInterning = false
				res := pghive.Discover(noisy.Graph, opts)
				if got := fullSnapshot(res); got != want {
					t.Errorf("%s/%v/parallelism=%d: interned discovery diverged from non-interned", ds, method, p)
				}
				if res.NodeShapes == 0 || res.NodeShapes > noisy.Graph.NumNodes() {
					t.Errorf("%s/%v: implausible distinct node shape count %d", ds, method, res.NodeShapes)
				}
			}
		}
	}
}

// TestInterningEquivalencePinnedParams repeats the check with pinned
// LSH parameters (the adaptive estimation bypassed), covering the
// other parameterization path.
func TestInterningEquivalencePinnedParams(t *testing.T) {
	base := datagen.Generate(datagen.ByName("POLE"), 0.25, 1)
	noisy := datagen.InjectNoise(base, 0.2, 0.7, 7)
	params := &pghive.LSHParams{Tables: 12, BucketLength: 4}
	for _, method := range []pghive.Method{pghive.ELSH, pghive.MinHash} {
		opts := pghive.Options{Seed: 1, Method: method, Parallelism: 1}
		opts.NodeParams, opts.EdgeParams = params, params
		opts.DisableShapeInterning = true
		want := fullSnapshot(pghive.Discover(noisy.Graph, opts))
		opts.DisableShapeInterning = false
		if got := fullSnapshot(pghive.Discover(noisy.Graph, opts)); got != want {
			t.Errorf("%v: interned discovery diverged under pinned params", method)
		}
	}
}

// TestInterningEquivalenceIncremental: the same 6-batch stream evolves
// the exact same schema with interning on and off — including the
// cross-batch shape cache path where batch n reuses shapes first seen
// in earlier batches.
func TestInterningEquivalenceIncremental(t *testing.T) {
	base := datagen.Generate(datagen.ByName("LDBC"), 0.25, 1)
	noisy := datagen.InjectNoise(base, 0.2, 0.7, 7)
	for _, method := range []pghive.Method{pghive.ELSH, pghive.MinHash} {
		run := func(disable bool, p int) string {
			opts := pghive.Options{Seed: 1, Method: method, Parallelism: p}
			opts.DisableShapeInterning = disable
			inc := pghive.NewIncremental(opts)
			for _, batch := range pghive.SplitBatches(noisy.Graph, 6, rand.New(rand.NewSource(21))) {
				inc.ProcessBatch(batch)
			}
			return fullSnapshot(inc.Finalize())
		}
		want := run(true, 1)
		for _, p := range append([]int{1}, parallelisms()...) {
			if got := run(false, p); got != want {
				t.Errorf("%v: incremental interned run (parallelism %d) diverged", method, p)
			}
		}
	}
}

// TestInterningEquivalenceHashedEmbedding covers the EmbedHashed
// embedding mode on heavily label-dropped data, where many elements
// share the unlabeled shapes.
func TestInterningEquivalenceHashedEmbedding(t *testing.T) {
	base := datagen.Generate(datagen.ByName("MB6"), 0.25, 1)
	noisy := datagen.InjectNoise(base, 0.3, 0.5, 7)
	opts := pghive.Options{Seed: 1, Embedding: pghive.EmbedHashed}
	opts.DisableShapeInterning = true
	want := fullSnapshot(pghive.Discover(noisy.Graph, opts))
	opts.DisableShapeInterning = false
	if got := fullSnapshot(pghive.Discover(noisy.Graph, opts)); got != want {
		t.Error("hashed-embedding interned discovery diverged")
	}
}
