package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersNormalizes(t *testing.T) {
	if got := Workers(0); got != runtime.NumCPU() {
		t.Fatalf("Workers(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(-3); got != runtime.NumCPU() {
		t.Fatalf("Workers(-3) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d, want 5", got)
	}
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			hits := make([]int32, n)
			For(n, workers, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForSequentialWhenOneWorker(t *testing.T) {
	// With workers=1 the callback must run inline: a single chunk in
	// order, observable as strictly increasing lo values on one
	// goroutine without synchronization.
	var calls int
	For(10, 1, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("expected one full chunk, got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("expected 1 inline call, got %d", calls)
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	fn := func(i int) int { return i*i + 7 }
	want := Map(513, 1, fn)
	for _, workers := range []int{2, 4, 16} {
		got := Map(513, workers, fn)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: index %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}
