// Package parallel provides the deterministic worker-pool primitives
// the discovery pipeline parallelizes with. Work is always split into
// contiguous index ranges with disjoint writes, so a run with N
// workers produces bit-identical results to a sequential run — the
// property the pipeline's Parallelism knob promises.
package parallel

import (
	"runtime"
	"sync"
)

// Workers normalizes a parallelism knob: values <= 0 select
// runtime.NumCPU(), everything else passes through.
func Workers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// For splits the index range [0, n) into at most `workers` contiguous
// chunks and invokes fn(lo, hi) for each chunk, concurrently when
// workers > 1. fn must only write state derived from its own index
// range; under that contract the result is independent of scheduling.
// With workers <= 1 (or n small) fn runs inline on the caller's
// goroutine, making the sequential path allocation- and
// goroutine-free.
func For(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Map runs fn(i) for every i in [0, n) across `workers` goroutines and
// collects the results in index order. Like For, the output is
// deterministic because each index writes only its own slot.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	For(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = fn(i)
		}
	})
	return out
}
