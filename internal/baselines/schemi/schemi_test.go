package schemi

import (
	"testing"

	"github.com/pghive/pghive/internal/pg"
)

func buildGraph(t *testing.T) *pg.Graph {
	t.Helper()
	g := pg.NewGraph()
	// Plain Person nodes and multi-label Person&Student nodes.
	var people []pg.ID
	for i := 0; i < 10; i++ {
		people = append(people, g.AddNode([]string{"Person"},
			map[string]pg.Value{"name": pg.Str("x")}))
	}
	for i := 0; i < 4; i++ {
		people = append(people, g.AddNode([]string{"Person", "Student"},
			map[string]pg.Value{"name": pg.Str("y"), "school": pg.Str("z")}))
	}
	org := g.AddNode([]string{"Org"}, map[string]pg.Value{"url": pg.Str("u")})
	for _, p := range people {
		if _, err := g.AddEdge([]string{"WORKS_AT"}, p, org, nil); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestDiscoverCollapsesMultiLabelOntoFirstLabel(t *testing.T) {
	g := buildGraph(t)
	res, err := Discover(g)
	if err != nil {
		t.Fatal(err)
	}
	// SchemI types by single (first) label: {Person} and
	// {Person, Student} nodes collapse into one Person group — the
	// mixing of label-set types the paper penalizes. Org is separate.
	if got := len(res.Schema.NodeTypes); got != 2 {
		t.Fatalf("node types = %d, want 2 (Person+Student collapsed, Org)", got)
	}
	// The collapsed group's label union carries both labels.
	if res.Schema.NodeTypeByToken("Person&Student") == nil {
		t.Error("collapsed Person group (union token Person&Student) missing")
	}
	// All 14 people share one type assignment.
	seen := map[int]bool{}
	for id, ty := range res.NodeAssign {
		if g.Node(id).Labels[0] == "Person" {
			seen[ty.ID] = true
		}
	}
	if len(seen) != 1 {
		t.Errorf("Person nodes split across %d types, want 1", len(seen))
	}
}

func TestDiscoverRejectsUnlabeledNode(t *testing.T) {
	g := buildGraph(t)
	g.AddNode(nil, map[string]pg.Value{"q": pg.Int(1)})
	if _, err := Discover(g); err != ErrUnlabeled {
		t.Fatalf("err = %v, want ErrUnlabeled", err)
	}
}

func TestDiscoverRejectsUnlabeledEdge(t *testing.T) {
	g := pg.NewGraph()
	a := g.AddNode([]string{"A"}, nil)
	b := g.AddNode([]string{"B"}, nil)
	if _, err := g.AddEdge(nil, a, b, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := Discover(g); err != ErrUnlabeled {
		t.Fatalf("err = %v, want ErrUnlabeled", err)
	}
}

func TestDiscoverEdgesIgnoreEndpoints(t *testing.T) {
	// Same edge label between disjoint endpoint pairs: SchemI mixes
	// them into one type (it types edges by label alone), unlike
	// PG-HIVE.
	g := pg.NewGraph()
	a := g.AddNode([]string{"A"}, nil)
	b := g.AddNode([]string{"B"}, nil)
	c := g.AddNode([]string{"C"}, nil)
	d := g.AddNode([]string{"D"}, nil)
	mustEdge := func(src, dst pg.ID) {
		if _, err := g.AddEdge([]string{"REL"}, src, dst, nil); err != nil {
			t.Fatal(err)
		}
	}
	mustEdge(a, b)
	mustEdge(c, d)
	res, err := Discover(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Schema.EdgeTypes); got != 1 {
		t.Fatalf("edge types = %d, want 1 (label-only typing)", got)
	}
	if res.EdgeAssign[0] != res.EdgeAssign[1] {
		t.Error("both REL edges must map to the same SchemI type")
	}
}

func TestDiscoverAssignsEveryElement(t *testing.T) {
	g := buildGraph(t)
	res, err := Discover(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NodeAssign) != g.NumNodes() {
		t.Errorf("node assignments = %d, want %d", len(res.NodeAssign), g.NumNodes())
	}
	if len(res.EdgeAssign) != g.NumEdges() {
		t.Errorf("edge assignments = %d, want %d", len(res.EdgeAssign), g.NumEdges())
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed time must be recorded")
	}
}

func TestDiscoverEmptyGraph(t *testing.T) {
	res, err := Discover(pg.NewGraph())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schema.NodeTypes) != 0 || len(res.Schema.EdgeTypes) != 0 {
		t.Error("empty graph must yield empty schema")
	}
}

func TestSharedLabelCollapse(t *testing.T) {
	// HET.IO-style: every node carries a shared integration label plus
	// a specific one. SchemI must group by the specific (rarer) label,
	// not collapse everything onto the shared one.
	g := pg.NewGraph()
	for i := 0; i < 5; i++ {
		g.AddNode([]string{"HetionetNode", "Gene"}, map[string]pg.Value{"sym": pg.Str("s")})
	}
	for i := 0; i < 5; i++ {
		g.AddNode([]string{"HetionetNode", "Disease"}, map[string]pg.Value{"icd": pg.Str("d")})
	}
	res, err := Discover(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Schema.NodeTypes); got != 2 {
		t.Fatalf("node types = %d, want 2 (Gene and Disease)", got)
	}
}
