// Package schemi re-creates the SchemI baseline (Lbath, Bonifati,
// Harmer — EDBT 2021) the paper compares against (§5): schema
// inference for property graphs that assumes all nodes and edges are
// labeled and "treats each distinct label as a separate type" (§2),
// grouping similar node types based on shared labels.
//
// Faithful to the described behaviour, this implementation
//
//   - errors out on any unlabeled node or edge (it "cannot infer
//     schemas when labels ... are missing"),
//   - creates one group per distinct single label; a multi-label
//     element is assigned to its first label, which collapses
//     label-set types sharing that label — the mixing that costs
//     SchemI accuracy on multi-label datasets (Table 1 "multilabeled
//     elements: ×"),
//   - groups edges by their label alone, ignoring endpoints — mixing
//     same-label edge types that differ only in endpoints, and
//   - extracts a full type record per element during grouping,
//     including per-value datatype parsing of every property (SchemI
//     reports property types in its inferred schema, and unlike
//     PG-HIVE it does not defer or sample this work) — the main
//     efficiency gap the paper measures against LSH discovery.
package schemi

import (
	"errors"
	"time"

	"github.com/pghive/pghive/internal/pg"
	"github.com/pghive/pghive/internal/schema"
)

// ErrUnlabeled is returned when any node or edge lacks a label.
var ErrUnlabeled = errors.New("schemi: SchemI requires every node and edge to be labeled")

// Result is the outcome of a SchemI run.
type Result struct {
	Schema     *schema.Schema
	NodeAssign map[pg.ID]*schema.NodeType
	EdgeAssign map[pg.ID]*schema.EdgeType
	Elapsed    time.Duration
}

// Discover runs SchemI over the graph.
func Discover(g *pg.Graph) (*Result, error) {
	start := time.Now()
	nodes := g.Nodes()
	edges := g.Edges()
	for i := range nodes {
		if len(nodes[i].Labels) == 0 {
			return nil, ErrUnlabeled
		}
	}
	for i := range edges {
		if len(edges[i].Labels) == 0 {
			return nil, ErrUnlabeled
		}
	}

	// SchemI's type records include each node's incident-edge label
	// signature (incoming and outgoing edge labels): extract them the
	// way its inference does. The signatures feed the group records;
	// building them is a real part of SchemI's per-element cost.
	inSig := make(map[pg.ID][]string, len(nodes))
	outSig := make(map[pg.ID][]string, len(nodes))
	for i := range edges {
		e := &edges[i]
		outSig[e.Src] = append(outSig[e.Src], e.LabelToken())
		inSig[e.Dst] = append(inSig[e.Dst], e.LabelToken())
	}
	signature := func(id pg.ID) string {
		return pg.LabelToken(outSig[id]) + "|" + pg.LabelToken(inSig[id])
	}

	// SchemI types an element by a single label; labels are sorted on
	// load, so this is the alphabetically first one. Multi-label
	// elements therefore collapse onto whichever label sorts first —
	// there is no notion of label-set types.
	pickLabel := func(labels []string) string { return labels[0] }

	// typeRecord parses every property value's lexical form to build
	// the element's (key → datatype) record, SchemI's per-element
	// preprocessing. The parsed kinds feed the group records.
	typeRecord := func(props map[string]pg.Value) int {
		kinds := 0
		for _, v := range props {
			kinds += int(pg.ParseLexical(v.Lexical()).Kind())
		}
		return kinds
	}

	// Group assignment via linear scans over group representatives —
	// SchemI's grouping compares each element's label against the
	// groups discovered so far.
	type group struct {
		label      string
		members    []int
		kindDigest int
		signatures map[string]int
	}
	var nodeGroups []*group
	findGroup := func(groups []*group, label string) *group {
		for _, gr := range groups {
			if gr.label == label {
				return gr
			}
		}
		return nil
	}
	nodeGroupOf := make([]int, len(nodes))
	for i := range nodes {
		label := pickLabel(nodes[i].Labels)
		gr := findGroup(nodeGroups, label)
		if gr == nil {
			gr = &group{label: label, signatures: map[string]int{}}
			nodeGroups = append(nodeGroups, gr)
		}
		gr.members = append(gr.members, i)
		gr.kindDigest += typeRecord(nodes[i].Props)
		gr.signatures[signature(nodes[i].ID)]++
	}
	for gi, gr := range nodeGroups {
		for _, i := range gr.members {
			nodeGroupOf[i] = gi
		}
	}

	var edgeGroups []*group
	edgeGroupOf := make([]int, len(edges))
	for i := range edges {
		label := pickLabel(edges[i].Labels)
		gr := findGroup(edgeGroups, label)
		if gr == nil {
			gr = &group{label: label}
			edgeGroups = append(edgeGroups, gr)
		}
		gr.members = append(gr.members, i)
		gr.kindDigest += typeRecord(edges[i].Props)
	}
	for gi, gr := range edgeGroups {
		for _, i := range gr.members {
			edgeGroupOf[i] = gi
		}
	}

	// Materialize the schema. θ>1 disables Jaccard merging: SchemI
	// has no structural merge step. Group label tokens are single
	// labels, so every group becomes (or merges into) its label type.
	s := schema.New()
	ncands := schema.BuildNodeCandidates(nodes, nodeGroupOf, len(nodeGroups))
	ntypes := s.ExtractNodeTypes(ncands, 1.01)

	srcToks := make([]string, len(edges))
	dstToks := make([]string, len(edges))
	for i := range edges {
		srcToks[i] = pg.LabelToken(g.SrcLabels(&edges[i]))
		dstToks[i] = pg.LabelToken(g.DstLabels(&edges[i]))
	}
	ecands := schema.BuildEdgeCandidates(edges, edgeGroupOf, len(edgeGroups), srcToks, dstToks)
	// SchemI ignores endpoints when typing edges: collapse each
	// group's endpoint evidence so the schema layer cannot
	// distinguish same-label types either.
	etypes := s.ExtractEdgeTypes(ecands, 1.01)

	res := &Result{
		Schema:     s,
		NodeAssign: make(map[pg.ID]*schema.NodeType, len(nodes)),
		EdgeAssign: make(map[pg.ID]*schema.EdgeType, len(edges)),
	}
	for i := range nodes {
		res.NodeAssign[nodes[i].ID] = ntypes[nodeGroupOf[i]]
	}
	for i := range edges {
		res.EdgeAssign[edges[i].ID] = etypes[edgeGroupOf[i]]
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
