// Package gmm re-creates the GMMSchema baseline (Bonifati, Dumbrava,
// Mir — EDBT 2022) the paper compares against (§5): hierarchical
// clustering of nodes with Gaussian Mixture Models over label and
// property information.
//
// Faithful to the described behaviour, this implementation
//
//   - discovers node types only (no edge types),
//   - requires a fully labeled dataset and errors out otherwise,
//   - fits diagonal-covariance Gaussian mixtures with EM, growing the
//     model by bisecting splits accepted while BIC improves, and
//   - optionally fits on a sample of the data, assigning the rest to
//     the nearest component (the sampling the paper notes "impacts the
//     completeness or precision of the inferred schema").
//
// Under property noise the per-type vector distributions widen and
// overlap, so components start absorbing instances of neighbouring
// types — the degradation the paper reports beyond 20% noise.
package gmm

import (
	"errors"
	"math"
	"math/rand"
	"time"

	"github.com/pghive/pghive/internal/pg"
	"github.com/pghive/pghive/internal/schema"
	"github.com/pghive/pghive/internal/vectorize"
)

// zeroEmbedder supplies an empty label block: GMMSchema clusters on
// property structure alone.
type zeroEmbedder struct{}

func (zeroEmbedder) Dim() int                { return 0 }
func (zeroEmbedder) Vector(string) []float64 { return nil }

// ErrUnlabeled is returned when the dataset is not fully labeled;
// GMMSchema assumes complete label information (§2).
var ErrUnlabeled = errors.New("gmm: GMMSchema requires a fully labeled dataset")

// Options configures a GMMSchema run.
type Options struct {
	// MaxComponents caps the mixture size (default 64).
	MaxComponents int
	// MaxIter caps EM iterations per split fit (default 25).
	MaxIter int
	// SampleLimit fits the mixture on at most this many nodes,
	// assigning the remainder afterwards (default 4000; 0 disables
	// sampling).
	SampleLimit int
	// EmbedDim is the label-embedding width (default 8).
	EmbedDim int
	// Seed drives initialization and sampling.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.MaxComponents <= 0 {
		o.MaxComponents = 64
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 25
	}
	if o.SampleLimit == 0 {
		o.SampleLimit = 4000
	}
	if o.EmbedDim <= 0 {
		o.EmbedDim = 8
	}
	return o
}

// Result is the outcome of a GMMSchema run: node types only.
type Result struct {
	Schema     *schema.Schema
	NodeAssign map[pg.ID]*schema.NodeType
	Components int
	Elapsed    time.Duration
}

// Discover runs GMMSchema over the graph's nodes.
func Discover(g *pg.Graph, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	start := time.Now()

	nodes := g.Nodes()
	for i := range nodes {
		if len(nodes[i].Labels) == 0 {
			return nil, ErrUnlabeled
		}
	}

	// Vectorize on property-presence distributions: GMMSchema's
	// Gaussian mixtures operate on the nodes' property structure (the
	// labels gate admission — fully labeled data only — and name the
	// discovered clusters). This is exactly why it degrades under
	// property noise (§5): widened per-type distributions overlap and
	// components absorb neighbouring types.
	mat := vectorize.Nodes(nodes, g.DistinctNodePropertyKeys(), zeroEmbedder{})

	rng := rand.New(rand.NewSource(opts.Seed))
	fitIdx := make([]int, len(nodes))
	for i := range fitIdx {
		fitIdx[i] = i
	}
	if opts.SampleLimit > 0 && len(fitIdx) > opts.SampleLimit {
		rng.Shuffle(len(fitIdx), func(i, j int) { fitIdx[i], fitIdx[j] = fitIdx[j], fitIdx[i] })
		fitIdx = fitIdx[:opts.SampleLimit]
	}

	model := fitBisecting(mat.Vecs, fitIdx, opts, rng)

	// Assign every node (not just the fitted sample) to its most
	// likely component.
	assign := make([]int, len(nodes))
	for i := range nodes {
		assign[i] = model.classify(mat.Vecs[i])
	}

	// One node type per component.
	s := schema.New()
	cands := schema.BuildNodeCandidates(nodes, assign, len(model.comps))
	types := s.ExtractNodeTypes(cands, 1.01) // θ>1: no Jaccard merging — GMMSchema has no such step
	nodeAssign := make(map[pg.ID]*schema.NodeType, len(nodes))
	for i := range nodes {
		nodeAssign[nodes[i].ID] = types[assign[i]]
	}
	return &Result{
		Schema:     s,
		NodeAssign: nodeAssign,
		Components: len(model.comps),
		Elapsed:    time.Since(start),
	}, nil
}

// component is one diagonal Gaussian with a mixing weight.
type component struct {
	weight float64
	mean   []float64
	vari   []float64
}

type mixture struct {
	comps []component
	dim   int
}

const varFloor = 1e-4

// logDensity returns log(weight · N(x | mean, diag(var))).
func (m *mixture) logDensity(c *component, x []float64) float64 {
	ll := math.Log(c.weight + 1e-300)
	for d := 0; d < m.dim; d++ {
		v := c.vari[d]
		diff := x[d] - c.mean[d]
		ll += -0.5 * (math.Log(2*math.Pi*v) + diff*diff/v)
	}
	return ll
}

func (m *mixture) classify(x []float64) int {
	best, bestLL := 0, math.Inf(-1)
	for i := range m.comps {
		if ll := m.logDensity(&m.comps[i], x); ll > bestLL {
			best, bestLL = i, ll
		}
	}
	return best
}

// fitBisecting grows a mixture by repeatedly splitting the component
// whose split most improves BIC, until no split helps or the cap is
// reached.
func fitBisecting(vecs [][]float64, idx []int, opts Options, rng *rand.Rand) *mixture {
	dim := 0
	if len(vecs) > 0 {
		dim = len(vecs[0])
	}
	m := &mixture{dim: dim}
	if len(idx) == 0 {
		return m
	}
	m.comps = []component{estimateComponent(vecs, idx, dim, 1.0)}
	members := [][]int{idx}
	// frozen marks components whose bisection was tried and rejected
	// by BIC; they are final leaves of the hierarchy.
	frozen := []bool{false}

	for len(m.comps) < opts.MaxComponents {
		// Pick the unfrozen component with the largest variance mass
		// (bisecting k-means style); if its split is rejected, freeze
		// it and move on to the next candidate.
		cand := -1
		var worst float64
		for i, mem := range members {
			if frozen[i] || len(mem) < 4 {
				continue
			}
			var vsum float64
			for _, v := range m.comps[i].vari {
				vsum += v
			}
			score := vsum * float64(len(mem))
			if cand == -1 || score > worst {
				cand, worst = i, score
			}
		}
		if cand == -1 {
			break // every component is a final leaf
		}
		mem := members[cand]
		before := bicForSubset(vecs, mem, []component{m.comps[cand]}, dim)
		two := emFit(vecs, mem, 2, opts.MaxIter, dim, rng)
		after := bicForSubset(vecs, mem, two.comps, dim)
		if after >= before || len(two.comps) < 2 {
			frozen[cand] = true
			continue
		}
		// Partition the members across the two children.
		var left, right []int
		for _, i := range mem {
			if two.classify(vecs[i]) == 0 {
				left = append(left, i)
			} else {
				right = append(right, i)
			}
		}
		if len(left) == 0 || len(right) == 0 {
			frozen[cand] = true
			continue
		}
		frac := m.comps[cand].weight
		lw := frac * float64(len(left)) / float64(len(mem))
		rw := frac - lw
		m.comps[cand] = estimateComponent(vecs, left, dim, lw)
		m.comps = append(m.comps, estimateComponent(vecs, right, dim, rw))
		members[cand] = left
		members = append(members, right)
		frozen = append(frozen, false)
	}
	return m
}

// estimateComponent computes mean/variance of a member set.
func estimateComponent(vecs [][]float64, idx []int, dim int, weight float64) component {
	c := component{weight: weight, mean: make([]float64, dim), vari: make([]float64, dim)}
	n := float64(len(idx))
	if n == 0 {
		for d := range c.vari {
			c.vari[d] = 1
		}
		return c
	}
	for _, i := range idx {
		for d, x := range vecs[i] {
			c.mean[d] += x
		}
	}
	for d := range c.mean {
		c.mean[d] /= n
	}
	for _, i := range idx {
		for d, x := range vecs[i] {
			diff := x - c.mean[d]
			c.vari[d] += diff * diff
		}
	}
	for d := range c.vari {
		c.vari[d] = c.vari[d]/n + varFloor
	}
	return c
}

// emFit runs EM for a k-component diagonal GMM over the subset.
func emFit(vecs [][]float64, idx []int, k, maxIter, dim int, rng *rand.Rand) *mixture {
	m := &mixture{dim: dim}
	if len(idx) < k {
		m.comps = []component{estimateComponent(vecs, idx, dim, 1)}
		return m
	}
	// Farthest-point initialization (k-means++ flavoured): the first
	// mean is a random member, each further mean the member farthest
	// from the chosen ones. Far better than random pairs at finding
	// genuine sub-populations, which keeps BIC splits honest.
	base := estimateComponent(vecs, idx, dim, 1)
	seeds := []int{idx[rng.Intn(len(idx))]}
	for len(seeds) < k {
		far, farD := seeds[0], -1.0
		for _, i := range idx {
			minD := math.Inf(1)
			for _, s := range seeds {
				if d := sqDist(vecs[i], vecs[s]); d < minD {
					minD = d
				}
			}
			if minD > farD {
				far, farD = i, minD
			}
		}
		seeds = append(seeds, far)
	}
	m.comps = make([]component, k)
	for c := 0; c < k; c++ {
		mean := make([]float64, dim)
		copy(mean, vecs[seeds[c]])
		vari := make([]float64, dim)
		copy(vari, base.vari)
		m.comps[c] = component{weight: 1 / float64(k), mean: mean, vari: vari}
	}

	resp := make([][]float64, len(idx))
	for i := range resp {
		resp[i] = make([]float64, k)
	}
	for iter := 0; iter < maxIter; iter++ {
		// E step.
		for ii, i := range idx {
			maxLL := math.Inf(-1)
			for c := 0; c < k; c++ {
				resp[ii][c] = m.logDensity(&m.comps[c], vecs[i])
				if resp[ii][c] > maxLL {
					maxLL = resp[ii][c]
				}
			}
			var sum float64
			for c := 0; c < k; c++ {
				resp[ii][c] = math.Exp(resp[ii][c] - maxLL)
				sum += resp[ii][c]
			}
			for c := 0; c < k; c++ {
				resp[ii][c] /= sum
			}
		}
		// M step.
		for c := 0; c < k; c++ {
			var nk float64
			mean := make([]float64, dim)
			for ii, i := range idx {
				r := resp[ii][c]
				nk += r
				for d, x := range vecs[i] {
					mean[d] += r * x
				}
			}
			if nk < 1e-9 {
				continue
			}
			for d := range mean {
				mean[d] /= nk
			}
			vari := make([]float64, dim)
			for ii, i := range idx {
				r := resp[ii][c]
				for d, x := range vecs[i] {
					diff := x - mean[d]
					vari[d] += r * diff * diff
				}
			}
			for d := range vari {
				vari[d] = vari[d]/nk + varFloor
			}
			m.comps[c] = component{weight: nk / float64(len(idx)), mean: mean, vari: vari}
		}
	}
	return m
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// bicForSubset computes the Bayesian Information Criterion of a
// mixture restricted to a member subset (lower is better).
func bicForSubset(vecs [][]float64, idx []int, comps []component, dim int) float64 {
	m := &mixture{comps: comps, dim: dim}
	var ll float64
	for _, i := range idx {
		// log-sum-exp over components.
		maxLL := math.Inf(-1)
		lls := make([]float64, len(comps))
		for c := range comps {
			lls[c] = m.logDensity(&comps[c], vecs[i])
			if lls[c] > maxLL {
				maxLL = lls[c]
			}
		}
		var sum float64
		for _, l := range lls {
			sum += math.Exp(l - maxLL)
		}
		ll += maxLL + math.Log(sum)
	}
	params := float64(len(comps)) * float64(2*dim+1)
	return params*math.Log(float64(len(idx))) - 2*ll
}
