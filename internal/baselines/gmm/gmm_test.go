package gmm

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/pghive/pghive/internal/pg"
)

// labeledGraph builds a fully labeled graph with nTypes clearly
// separated node types.
func labeledGraph(n, nTypes int, noise float64, seed int64) *pg.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := pg.NewGraph()
	for i := 0; i < n; i++ {
		ty := i % nTypes
		props := map[string]pg.Value{}
		for p := 0; p < 3; p++ {
			if rng.Float64() >= noise {
				props[fmt.Sprintf("t%d_p%d", ty, p)] = pg.Int(int64(p))
			}
		}
		g.AddNode([]string{fmt.Sprintf("Type%d", ty)}, props)
	}
	return g
}

func TestDiscoverCleanData(t *testing.T) {
	g := labeledGraph(400, 4, 0, 1)
	res, err := Discover(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Components < 4 {
		t.Errorf("components = %d, want >= 4 (one per separated type)", res.Components)
	}
	// On clean data every type label must appear as its own type.
	for ty := 0; ty < 4; ty++ {
		if res.Schema.NodeTypeByToken(fmt.Sprintf("Type%d", ty)) == nil {
			t.Errorf("Type%d missing from GMM schema", ty)
		}
	}
	if len(res.NodeAssign) != g.NumNodes() {
		t.Errorf("assignments = %d, want %d", len(res.NodeAssign), g.NumNodes())
	}
}

func TestDiscoverRejectsUnlabeled(t *testing.T) {
	g := labeledGraph(50, 2, 0, 2)
	g.AddNode(nil, map[string]pg.Value{"x": pg.Int(1)})
	if _, err := Discover(g, Options{Seed: 2}); err != ErrUnlabeled {
		t.Fatalf("err = %v, want ErrUnlabeled (GMMSchema assumes fully labeled data)", err)
	}
}

func TestDiscoverNoEdgeTypes(t *testing.T) {
	g := labeledGraph(100, 2, 0, 3)
	n0 := g.Nodes()[0].ID
	n1 := g.Nodes()[1].ID
	if _, err := g.AddEdge([]string{"REL"}, n0, n1, nil); err != nil {
		t.Fatal(err)
	}
	res, err := Discover(g, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schema.EdgeTypes) != 0 {
		t.Error("GMMSchema discovers node types only (Table 1)")
	}
}

func TestDiscoverNoiseGrowsComponents(t *testing.T) {
	clean, err := Discover(labeledGraph(600, 4, 0, 4), Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := Discover(labeledGraph(600, 4, 0.4, 4), Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Noise inflates per-type variance, which drives further BIC
	// splits — the cost growth the paper observes (Fig. 5).
	if noisy.Components < clean.Components {
		t.Errorf("noise should not reduce components: clean=%d noisy=%d",
			clean.Components, noisy.Components)
	}
}

func TestDiscoverSamplingPath(t *testing.T) {
	g := labeledGraph(300, 3, 0.1, 5)
	res, err := Discover(g, Options{Seed: 5, SampleLimit: 50})
	if err != nil {
		t.Fatal(err)
	}
	// All 300 nodes must still be assigned despite fitting on 50.
	if len(res.NodeAssign) != 300 {
		t.Errorf("assignments = %d, want 300", len(res.NodeAssign))
	}
}

func TestDiscoverDeterministic(t *testing.T) {
	g := labeledGraph(200, 3, 0.2, 6)
	a, err := Discover(g, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Discover(g, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a.Components != b.Components {
		t.Fatalf("non-deterministic: %d vs %d components", a.Components, b.Components)
	}
}

func TestEmptyGraph(t *testing.T) {
	res, err := Discover(pg.NewGraph(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schema.NodeTypes) != 0 {
		t.Error("empty graph must yield empty schema")
	}
}
