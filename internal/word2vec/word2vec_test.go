package word2vec

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

// labelCorpus mimics what the pipeline feeds the model: one sentence
// per edge, [sourceLabel, edgeLabel, targetLabel].
func labelCorpus() [][]string {
	var s [][]string
	for i := 0; i < 30; i++ {
		s = append(s,
			[]string{"Person", "KNOWS", "Person"},
			[]string{"Person", "LIKES", "Post"},
			[]string{"Person", "WORKS_AT", "Org"},
			[]string{"Org", "LOCATED_IN", "Place"},
			[]string{"Person", "LOCATED_IN", "Place"},
			[]string{"Student&Person", "KNOWS", "Person"},
			[]string{"Student&Person", "LIKES", "Post"},
		)
	}
	return s
}

func TestTrainBasics(t *testing.T) {
	m := Train(labelCorpus(), Config{Dim: 8, Seed: 42})
	if m.Dim() != 8 {
		t.Fatalf("Dim = %d, want 8", m.Dim())
	}
	// Person, Student&Person, Org, Post, Place, KNOWS, LIKES,
	// WORKS_AT, LOCATED_IN = 9 distinct tokens.
	if m.VocabSize() != 9 {
		t.Fatalf("VocabSize = %d, want 9 distinct tokens", m.VocabSize())
	}
	v := m.Vector("Person")
	if len(v) != 8 {
		t.Fatalf("vector length %d, want 8", len(v))
	}
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Errorf("trained vectors must be unit-norm, got %v", norm)
	}
}

func TestUnknownAndEmptyTokensAreZero(t *testing.T) {
	m := Train(labelCorpus(), Config{Dim: 6, Seed: 1})
	for _, tok := range []string{"", "NeverSeen"} {
		v := m.Vector(tok)
		if len(v) != 6 {
			t.Fatalf("vector length %d, want 6", len(v))
		}
		for i, x := range v {
			if x != 0 {
				t.Fatalf("Vector(%q)[%d] = %v, want 0 (absent label rule)", tok, i, x)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Dim: 12, Seed: 99}
	m1 := Train(labelCorpus(), cfg)
	m2 := Train(labelCorpus(), cfg)
	for _, tok := range []string{"Person", "Org", "KNOWS"} {
		if !reflect.DeepEqual(m1.Vector(tok), m2.Vector(tok)) {
			t.Fatalf("training is not deterministic for token %q", tok)
		}
	}
}

// TestSentenceOrderInvariantVocab: shuffling sentence order must not
// change vocabulary indices (they are canonicalized by sorting), so
// the random init per token is stable.
func TestSentenceOrderInvariantVocab(t *testing.T) {
	c := labelCorpus()
	rev := make([][]string, len(c))
	for i := range c {
		rev[len(c)-1-i] = c[i]
	}
	m1 := Train(c, Config{Dim: 8, Seed: 5, Epochs: 1})
	m2 := Train(rev, Config{Dim: 8, Seed: 5, Epochs: 1})
	if m1.VocabSize() != m2.VocabSize() {
		t.Fatalf("vocab sizes differ: %d vs %d", m1.VocabSize(), m2.VocabSize())
	}
}

// TestSemanticStructure: tokens sharing contexts must be closer than
// tokens that never co-occur. Person and Student&Person appear in
// identical contexts; Person and LOCATED_IN do not share a
// distributional role.
func TestSemanticStructure(t *testing.T) {
	m := Train(labelCorpus(), Config{Dim: 16, Seed: 7, Epochs: 30})
	same := m.Similarity("Person", "Student&Person")
	diff := m.Similarity("Post", "Place")
	if same <= diff {
		t.Errorf("contextually identical tokens should be more similar: sim(Person,Student&Person)=%v <= sim(Post,Place)=%v", same, diff)
	}
}

func TestEmptyCorpus(t *testing.T) {
	m := Train(nil, Config{Dim: 4})
	if m.VocabSize() != 0 {
		t.Fatalf("empty corpus vocab = %d, want 0", m.VocabSize())
	}
	v := m.Vector("anything")
	if len(v) != 4 {
		t.Fatalf("vector length %d, want 4", len(v))
	}
}

func TestConfigDefaults(t *testing.T) {
	// A zero config must not panic or divide by zero.
	m := Train([][]string{{"A", "B"}}, Config{})
	if m.Dim() != DefaultConfig().Dim {
		t.Fatalf("zero config dim = %d, want default %d", m.Dim(), DefaultConfig().Dim)
	}
}

func TestSimilarityBounds(t *testing.T) {
	m := Train(labelCorpus(), Config{Dim: 8, Seed: 3})
	toks := []string{"Person", "Org", "Post", "Place", "KNOWS"}
	for _, a := range toks {
		for _, b := range toks {
			s := m.Similarity(a, b)
			if s < -1.0001 || s > 1.0001 {
				t.Fatalf("similarity(%q,%q) = %v out of [-1,1]", a, b, s)
			}
		}
	}
	if s := m.Similarity("Person", "Person"); math.Abs(s-1) > 1e-9 {
		t.Errorf("self-similarity = %v, want 1", s)
	}
	if s := m.Similarity("Person", "unknown-token"); s != 0 {
		t.Errorf("similarity with unknown token = %v, want 0", s)
	}
}

func TestHashedEmbedderDeterministicUnit(t *testing.T) {
	h := NewHashedEmbedder(10)
	if h.Dim() != 10 {
		t.Fatalf("Dim = %d, want 10", h.Dim())
	}
	a := h.Vector("Person")
	b := h.Vector("Person")
	if !reflect.DeepEqual(a, b) {
		t.Fatal("hashed embedder must be deterministic")
	}
	var norm float64
	for _, x := range a {
		norm += x * x
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Errorf("hashed vectors must be unit-norm, got %v", norm)
	}
	if z := h.Vector(""); !reflect.DeepEqual(z, make([]float64, 10)) {
		t.Error("empty token must map to the zero vector")
	}
}

// Property: distinct tokens get distinct hashed vectors (no trivial
// collisions on realistic label strings), and every vector is unit or
// zero norm.
func TestHashedEmbedderProperty(t *testing.T) {
	h := NewHashedEmbedder(12)
	f := func(a, b string) bool {
		va, vb := h.Vector(a), h.Vector(b)
		if a == b {
			return reflect.DeepEqual(va, vb)
		}
		if a == "" || b == "" {
			return true
		}
		return !reflect.DeepEqual(va, vb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewHashedEmbedderDefaultDim(t *testing.T) {
	h := NewHashedEmbedder(0)
	if h.Dim() != DefaultConfig().Dim {
		t.Fatalf("default dim = %d, want %d", h.Dim(), DefaultConfig().Dim)
	}
}
