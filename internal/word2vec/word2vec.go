// Package word2vec implements the skip-gram-with-negative-sampling
// word embedding model of Mikolov et al. that PG-HIVE trains on the
// label corpus of a property graph (§4.1).
//
// The paper's contract is narrow: identical label sets must embed
// identically, and labels that co-occur in similar contexts should
// land nearby, so that the label half of a representation vector
// separates semantically different types even when their property
// structure coincides. This package provides exactly that, with fully
// deterministic training given a seed.
package word2vec

import (
	"math"
	"math/rand"
	"sort"

	"github.com/pghive/pghive/internal/parallel"
)

// Config holds the training hyperparameters.
type Config struct {
	// Dim is the embedding dimensionality d (paper Example 3 uses 5;
	// the pipeline default is 16).
	Dim int
	// Window is the skip-gram context radius.
	Window int
	// Epochs is the number of passes over the corpus.
	Epochs int
	// Negative is the number of negative samples per positive pair.
	Negative int
	// LearningRate is the initial SGD step size, decayed linearly.
	LearningRate float64
	// Seed makes training deterministic.
	Seed int64
}

// DefaultConfig returns the hyperparameters used by the PG-HIVE
// pipeline. The corpus (distinct label tokens) is tiny compared to
// natural language, so a small dimension and few epochs suffice.
func DefaultConfig() Config {
	return Config{Dim: 16, Window: 2, Epochs: 8, Negative: 5, LearningRate: 0.05, Seed: 1}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Dim <= 0 {
		c.Dim = d.Dim
	}
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.Epochs <= 0 {
		c.Epochs = d.Epochs
	}
	if c.Negative <= 0 {
		c.Negative = d.Negative
	}
	if c.LearningRate <= 0 {
		c.LearningRate = d.LearningRate
	}
	return c
}

// Model is a trained embedding table. The zero value is unusable; use
// Train. A trained Model is immutable: Vector and Similarity only
// read it, so concurrent lookups are safe.
type Model struct {
	dim   int
	vocab map[string]int
	vecs  []float64 // len(vocab) * dim, input vectors, L2-normalized
}

// Train fits a skip-gram model with negative sampling on the given
// sentences. Sentences are slices of tokens; empty tokens are skipped
// (an absent label embeds as the zero vector at lookup time, per
// §4.1, so it never enters the vocabulary). Training is deterministic
// for a fixed Config.
func Train(sentences [][]string, cfg Config) *Model {
	cfg = cfg.withDefaults()
	m := &Model{dim: cfg.Dim, vocab: map[string]int{}}

	// Build vocabulary and unigram counts in first-seen order, then
	// canonicalize by sorting tokens so vocabulary indices (and hence
	// the random init) do not depend on sentence order.
	counts := map[string]int{}
	for _, s := range sentences {
		for _, tok := range s {
			if tok == "" {
				continue
			}
			counts[tok]++
		}
	}
	tokens := make([]string, 0, len(counts))
	for tok := range counts {
		tokens = append(tokens, tok)
	}
	sort.Strings(tokens)
	for i, tok := range tokens {
		m.vocab[tok] = i
	}
	v := len(tokens)
	if v == 0 {
		return m
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	in := make([]float64, v*cfg.Dim)  // input (center) vectors
	out := make([]float64, v*cfg.Dim) // output (context) vectors
	for i := range in {
		in[i] = (rng.Float64() - 0.5) / float64(cfg.Dim)
	}

	// Negative-sampling table with the standard unigram^0.75
	// distribution.
	table := buildSamplingTable(tokens, counts, rng)

	// Pre-encode sentences as index slices, dropping empty tokens.
	enc := make([][]int, 0, len(sentences))
	for _, s := range sentences {
		es := make([]int, 0, len(s))
		for _, tok := range s {
			if tok == "" {
				continue
			}
			es = append(es, m.vocab[tok])
		}
		if len(es) >= 2 {
			enc = append(enc, es)
		}
	}

	totalSteps := cfg.Epochs * len(enc)
	step := 0
	grad := make([]float64, cfg.Dim)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, s := range enc {
			lr := cfg.LearningRate * (1 - float64(step)/float64(totalSteps+1))
			if lr < cfg.LearningRate*0.01 {
				lr = cfg.LearningRate * 0.01
			}
			step++
			for ci, center := range s {
				lo := ci - cfg.Window
				if lo < 0 {
					lo = 0
				}
				hi := ci + cfg.Window
				if hi >= len(s) {
					hi = len(s) - 1
				}
				for pos := lo; pos <= hi; pos++ {
					if pos == ci {
						continue
					}
					ctx := s[pos]
					trainPair(in, out, center, ctx, 1, lr, cfg.Dim, grad)
					for n := 0; n < cfg.Negative; n++ {
						neg := table[rng.Intn(len(table))]
						if neg == ctx {
							continue
						}
						trainPair(in, out, center, neg, 0, lr, cfg.Dim, grad)
					}
					for d := 0; d < cfg.Dim; d++ {
						in[center*cfg.Dim+d] += grad[d]
						grad[d] = 0
					}
				}
			}
		}
	}

	// L2-normalize so embeddings are scale-comparable with the binary
	// property block of the representation vectors.
	for i := 0; i < v; i++ {
		normalize(in[i*cfg.Dim : (i+1)*cfg.Dim])
	}
	m.vecs = in
	return m
}

// trainPair performs one SGD update for a (center, context) pair with
// the given binary target, accumulating the center gradient in grad
// and applying the context gradient immediately (the standard
// word2vec update order).
func trainPair(in, out []float64, center, ctx, target int, lr float64, dim int, grad []float64) {
	var dot float64
	cb, ob := center*dim, ctx*dim
	for d := 0; d < dim; d++ {
		dot += in[cb+d] * out[ob+d]
	}
	g := (float64(target) - sigmoid(dot)) * lr
	for d := 0; d < dim; d++ {
		grad[d] += g * out[ob+d]
		out[ob+d] += g * in[cb+d]
	}
}

func sigmoid(x float64) float64 {
	switch {
	case x > 8:
		return 1
	case x < -8:
		return 0
	}
	return 1 / (1 + math.Exp(-x))
}

func buildSamplingTable(tokens []string, counts map[string]int, rng *rand.Rand) []int {
	const tableSize = 1 << 14
	weights := make([]float64, len(tokens))
	var total float64
	for i, tok := range tokens {
		weights[i] = math.Pow(float64(counts[tok]), 0.75)
		total += weights[i]
	}
	table := make([]int, 0, tableSize)
	for i := range tokens {
		n := int(weights[i] / total * tableSize)
		if n < 1 {
			n = 1
		}
		for j := 0; j < n; j++ {
			table = append(table, i)
		}
	}
	rng.Shuffle(len(table), func(i, j int) { table[i], table[j] = table[j], table[i] })
	return table
}

func normalize(v []float64) {
	var n float64
	for _, x := range v {
		n += x * x
	}
	if n == 0 {
		return
	}
	n = math.Sqrt(n)
	for i := range v {
		v[i] /= n
	}
}

// Dim returns the embedding dimensionality.
func (m *Model) Dim() int { return m.dim }

// VocabSize returns the number of distinct tokens seen in training.
func (m *Model) VocabSize() int { return len(m.vocab) }

// Vector returns the embedding of a token. An unknown or empty token
// returns the zero vector of length Dim — the paper's representation
// for absent labels (§4.1, Example 3). The returned slice must not be
// modified.
func (m *Model) Vector(token string) []float64 {
	if token == "" {
		return make([]float64, m.dim)
	}
	i, ok := m.vocab[token]
	if !ok {
		return make([]float64, m.dim)
	}
	return m.vecs[i*m.dim : (i+1)*m.dim]
}

// Similarity returns the cosine similarity between two tokens'
// embeddings, or 0 if either is unknown.
func (m *Model) Similarity(a, b string) float64 {
	va, vb := m.Vector(a), m.Vector(b)
	var dot, na, nb float64
	for i := range va {
		dot += va[i] * vb[i]
		na += va[i] * va[i]
		nb += vb[i] * vb[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// HashedEmbedder produces deterministic pseudo-embeddings from token
// hashes alone, with no training: the same token always maps to the
// same unit vector, across processes and batches. It is the
// embedding provider used when retraining Word2Vec per batch is
// undesirable (the incremental pipeline offers it as an option) and
// in tests that need stable vectors.
type HashedEmbedder struct {
	dim   int
	cache map[string][]float64
}

// NewHashedEmbedder returns a hash-based embedder of the given
// dimension. The embedder memoizes vectors per token (seeding a PRNG
// per lookup is orders of magnitude more expensive than a map hit);
// it is not safe for concurrent use.
func NewHashedEmbedder(dim int) *HashedEmbedder {
	if dim <= 0 {
		dim = DefaultConfig().Dim
	}
	return &HashedEmbedder{dim: dim, cache: map[string][]float64{}}
}

// Dim returns the embedding dimensionality.
func (h *HashedEmbedder) Dim() int { return h.dim }

// Vector returns the deterministic unit vector for the token; the
// empty token returns the zero vector (absent label). The returned
// slice is shared and must not be modified.
func (h *HashedEmbedder) Vector(token string) []float64 {
	if v, ok := h.cache[token]; ok {
		return v
	}
	v := hashedVector(token, h.dim)
	h.cache[token] = v
	return v
}

// Preload computes and caches the vectors of every not-yet-seen token
// using up to `workers` goroutines (workers <= 0 selects
// runtime.NumCPU()). Vector generation is a pure function of the
// token, so the cache contents are identical for every worker count.
// Preload itself must not run concurrently with other methods; after
// it returns, concurrent Vector reads of preloaded tokens are safe
// because they only hit the cache.
func (h *HashedEmbedder) Preload(tokens []string, workers int) {
	missing := make([]string, 0, len(tokens))
	for _, tok := range tokens {
		if _, ok := h.cache[tok]; !ok {
			missing = append(missing, tok)
		}
	}
	vecs := parallel.Map(len(missing), workers, func(i int) []float64 {
		return hashedVector(missing[i], h.dim)
	})
	for i, tok := range missing {
		h.cache[tok] = vecs[i]
	}
}

// hashedVector derives the deterministic unit vector of a token:
// FNV-1a seeds a PRNG that fills the vector. The empty token (absent
// label) yields the zero vector.
func hashedVector(token string, dim int) []float64 {
	v := make([]float64, dim)
	if token != "" {
		var seed uint64 = 14695981039346656037
		for i := 0; i < len(token); i++ {
			seed ^= uint64(token[i])
			seed *= 1099511628211
		}
		rng := rand.New(rand.NewSource(int64(seed)))
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		normalize(v)
	}
	return v
}
