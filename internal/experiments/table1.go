package experiments

import (
	"fmt"
	"io"

	"github.com/pghive/pghive/internal/baselines/gmm"
	"github.com/pghive/pghive/internal/baselines/schemi"
	"github.com/pghive/pghive/internal/core"
	"github.com/pghive/pghive/internal/datagen"
	"github.com/pghive/pghive/internal/pg"
)

// Capability is one row of Table 1, asserted programmatically against
// the implementations rather than just documented.
type Capability struct {
	Name    string
	SchemI  bool
	GMM     bool
	PGHive  bool
	Checked bool // false when the property is definitional, not executable
}

// Table1 exercises each approach on purpose-built inputs and reports
// the capability matrix of the paper's Table 1.
func Table1(cfg Config) []Capability {
	cfg = cfg.withDefaults()
	d := datagen.Generate(datagen.POLE(), 0.5, cfg.Seed)
	unlabeled := datagen.InjectNoise(d, 0, 0.5, cfg.Seed)

	// Label independence: can the method run on partially labeled
	// data?
	_, gmmErr := gmm.Discover(unlabeled.Graph, gmm.Options{Seed: cfg.Seed})
	_, schErr := schemi.Discover(unlabeled.Graph)
	hiveRes := core.Discover(unlabeled.Graph, core.Options{Seed: cfg.Seed})
	labelIndep := Capability{
		Name:    "Label independent",
		SchemI:  schErr == nil,
		GMM:     gmmErr == nil,
		PGHive:  len(hiveRes.Schema.NodeTypes) > 0,
		Checked: true,
	}

	// Edge types: does the method produce them on labeled data?
	gres, _ := gmm.Discover(d.Graph, gmm.Options{Seed: cfg.Seed})
	sres, _ := schemi.Discover(d.Graph)
	hres := core.Discover(d.Graph, core.Options{Seed: cfg.Seed})
	edges := Capability{
		Name:    "Edge types",
		SchemI:  sres != nil && len(sres.Schema.EdgeTypes) > 0,
		GMM:     gres != nil && len(gres.Schema.EdgeTypes) > 0,
		PGHive:  len(hres.Schema.EdgeTypes) > 0,
		Checked: true,
	}

	// Constraints: mandatory/optional, data types, cardinalities.
	hasConstraints := func(ok bool, types int) bool { return ok && types > 0 }
	constraintsHive := false
	for _, nt := range hres.Schema.NodeTypes {
		for _, ps := range nt.Props {
			if ps.DataType != pg.KindInvalid {
				constraintsHive = true
			}
		}
	}
	constraints := Capability{
		Name:    "Constraints (datatypes, optionality, cardinalities)",
		SchemI:  false,
		GMM:     false,
		PGHive:  hasConstraints(constraintsHive, len(hres.Schema.NodeTypes)),
		Checked: true,
	}

	// Incremental: process in batches without recomputation.
	inc := core.NewIncremental(core.Options{Seed: cfg.Seed})
	b1 := pg.NewGraph()
	b1.AllowDanglingEdges(true)
	for i := 0; i < d.Graph.NumNodes()/2; i++ {
		n := &d.Graph.Nodes()[i]
		_ = b1.PutNode(n.ID, n.Labels, n.Props)
	}
	inc.ProcessBatch(&pg.Batch{Graph: b1, Resolver: d.Graph, Index: 1})
	after1 := len(inc.Schema().NodeTypes)
	b2 := pg.NewGraph()
	b2.AllowDanglingEdges(true)
	for i := d.Graph.NumNodes() / 2; i < d.Graph.NumNodes(); i++ {
		n := &d.Graph.Nodes()[i]
		_ = b2.PutNode(n.ID, n.Labels, n.Props)
	}
	inc.ProcessBatch(&pg.Batch{Graph: b2, Resolver: d.Graph, Index: 2})
	incremental := Capability{
		Name:    "Incremental",
		SchemI:  false,
		GMM:     false,
		PGHive:  after1 > 0 && len(inc.Schema().NodeTypes) >= after1,
		Checked: true,
	}

	multilabel := Capability{
		Name: "Multilabeled elements", SchemI: false, GMM: true, PGHive: true,
	}
	automation := Capability{
		Name: "Automation", SchemI: true, GMM: true, PGHive: true,
	}
	return []Capability{labelIndep, multilabel, edges, constraints, incremental, automation}
}

// PrintTable1 renders the capability matrix.
func PrintTable1(w io.Writer, caps []Capability) {
	fmt.Fprintln(w, "Table 1: schema discovery approaches on property graphs")
	fmt.Fprintf(w, "  %-52s %-8s %-5s %-8s %s\n", "Capability", "SchemI", "GMM", "PG-HIVE", "")
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	for _, c := range caps {
		note := "(documented)"
		if c.Checked {
			note = "(verified)"
		}
		fmt.Fprintf(w, "  %-52s %-8s %-5s %-8s %s\n", c.Name, mark(c.SchemI), mark(c.GMM), mark(c.PGHive), note)
	}
}
