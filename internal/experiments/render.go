package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"github.com/pghive/pghive/internal/datagen"
)

// render.go prints each experiment's results as the aligned text
// tables the cmd/experiments tool emits — one renderer per paper
// table/figure.

// PrintTable2 renders the dataset statistics table.
func PrintTable2(w io.Writer, rows []datagen.TableStats) {
	fmt.Fprintln(w, "Table 2: dataset statistics (generated at the configured scale)")
	fmt.Fprintf(w, "%-8s %8s %9s %6s %6s %7s %7s %9s %9s  %s\n",
		"Dataset", "Nodes", "Edges", "NType", "EType", "NLabels", "ELabels", "NPatterns", "EPatterns", "R/S")
	for _, r := range rows {
		fmt.Fprintln(w, r.String())
	}
}

// PrintFig3 renders the Nemenyi rank analysis.
func PrintFig3(w io.Writer, r Fig3Result) {
	fmt.Fprintf(w, "Figure 3: Nemenyi significance analysis over %d cases (datasets x noise levels, 100%% labels)\n", r.Cases)
	fmt.Fprintf(w, "  Nodes (CD=%.3f at alpha=0.05, lower rank = better):\n", r.NodeCD)
	for i, m := range Methods {
		fmt.Fprintf(w, "    %-16s avg rank %.2f\n", m, r.NodeRanks[i])
	}
	fmt.Fprintf(w, "  Edges (CD=%.3f; GMM excluded — no edge types):\n", r.EdgeCD)
	for i, m := range []Method{MElsh, MMinHash, MSchemI} {
		fmt.Fprintf(w, "    %-16s avg rank %.2f\n", m, r.EdgeRanks[i])
	}
}

// PrintFig4 renders the F1*-vs-noise grid per label availability.
func PrintFig4(w io.Writer, cells []Cell) {
	fmt.Fprintln(w, "Figure 4: F1* across noise levels (0-40%) and label availability (100/50/0%)")
	printGrid(w, cells, func(c Cell) (float64, bool) { return c.NodeF1, c.OK }, "nodes")
	printGrid(w, cells, func(c Cell) (float64, bool) {
		if c.Method == MGMM {
			return 0, false // GMM discovers no edge types
		}
		return c.EdgeF1, c.OK
	}, "edges")
}

// PrintFig5 renders the execution-time grid at 100% labels.
func PrintFig5(w io.Writer, cells []Cell) {
	fmt.Fprintln(w, "Figure 5: execution time until type discovery (ms), 100% label availability")
	var filtered []Cell
	for _, c := range cells {
		if c.Avail == 1 {
			filtered = append(filtered, c)
		}
	}
	printGrid(w, filtered, func(c Cell) (float64, bool) {
		return float64(c.Discovery.Microseconds()) / 1000, c.OK
	}, "time-ms")
}

func printGrid(w io.Writer, cells []Cell, value func(Cell) (float64, bool), caption string) {
	type key struct {
		avail   float64
		dataset string
	}
	byKey := map[key]map[float64]map[Method]Cell{}
	for _, c := range cells {
		k := key{c.Avail, c.Dataset}
		if byKey[k] == nil {
			byKey[k] = map[float64]map[Method]Cell{}
		}
		if byKey[k][c.Noise] == nil {
			byKey[k][c.Noise] = map[Method]Cell{}
		}
		byKey[k][c.Noise][c.Method] = c
	}
	keys := make([]key, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].avail != keys[j].avail {
			return keys[i].avail > keys[j].avail
		}
		return keys[i].dataset < keys[j].dataset
	})
	for _, k := range keys {
		fmt.Fprintf(w, "  [%s] %s, %.0f%% labels\n", caption, k.dataset, k.avail*100)
		fmt.Fprintf(w, "    %-7s", "noise")
		for _, m := range Methods {
			fmt.Fprintf(w, " %16s", m)
		}
		fmt.Fprintln(w)
		for _, noise := range Noises {
			fmt.Fprintf(w, "    %-7.0f", noise*100)
			for _, m := range Methods {
				c, ok := byKey[k][noise][m]
				v, valid := 0.0, false
				if ok {
					v, valid = value(c)
				}
				if !valid {
					fmt.Fprintf(w, " %16s", "-")
				} else {
					fmt.Fprintf(w, " %16.3f", v)
				}
			}
			fmt.Fprintln(w)
		}
	}
}

// PrintFig6 renders the parameter-sweep heatmaps.
func PrintFig6(w io.Writer, results []Fig6Result) {
	fmt.Fprintln(w, "Figure 6: F1* heatmaps over (T, b) with the adaptive choice marked x (100% labels, 0% noise)")
	for _, r := range results {
		fmt.Fprintf(w, "  %s — adaptive: nodes (T=%d, b=%.2f) F1=%.3f; edges (T=%d, b=%.2f) F1=%.3f\n",
			r.Dataset,
			r.AdaptiveNode.Params.Tables, r.AdaptiveNode.Params.BucketLength, r.AdaptiveNodeF1,
			r.AdaptiveEdge.Params.Tables, r.AdaptiveEdge.Params.BucketLength, r.AdaptiveEdgeF1)
		fmt.Fprintf(w, "    %-10s", "b-mult\\T")
		for _, t := range Fig6Tables {
			fmt.Fprintf(w, " %11d", t)
		}
		fmt.Fprintln(w)
		for _, mult := range Fig6Mults {
			fmt.Fprintf(w, "    %-10.2f", mult)
			for _, t := range Fig6Tables {
				for _, p := range r.Points {
					if p.Tables == t && p.BucketMult == mult {
						fmt.Fprintf(w, " %5.2f/%5.2f", p.NodeF1, p.EdgeF1)
					}
				}
			}
			fmt.Fprintln(w, "   (node/edge)")
		}
	}
}

// PrintFig7 renders per-batch incremental times.
func PrintFig7(w io.Writer, rows []Fig7Row) {
	fmt.Fprintf(w, "Figure 7: incremental execution time per batch (ms), %d random batches\n", Fig7Batches)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-8s %-16s", r.Dataset, r.Method)
		for _, ms := range r.BatchMillis {
			fmt.Fprintf(w, " %7.1f", ms)
		}
		fmt.Fprintf(w, "   (final node F1*=%.3f)\n", r.NodeF1)
	}
}

// PrintFig8 renders the sampling-error distributions.
func PrintFig8(w io.Writer, rows []Fig8Row) {
	fmt.Fprintln(w, "Figure 8: datatype sampling-error distribution (share of properties per bin)")
	fmt.Fprintf(w, "  %-8s %-16s %6s %8s %10s %10s %8s\n",
		"Dataset", "Method", "#props", "0-0.05", "0.05-0.10", "0.10-0.20", ">=0.20")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-8s %-16s %6d %8.3f %10.3f %10.3f %8.3f\n",
			r.Dataset, r.Method, r.Properties, r.Bins[0], r.Bins[1], r.Bins[2], r.Bins[3])
	}
}

// PrintSummary renders the derived headline claims.
func PrintSummary(w io.Writer, s Summary) {
	fmt.Fprintln(w, "Headline claims derived from the grid:")
	fmt.Fprintf(w, "  max node F1* gain over best baseline: %+.0f%% (%s)\n", s.MaxNodeGain*100, s.MaxNodeGainAt)
	fmt.Fprintf(w, "  max edge F1* gain over SchemI:        %+.0f%% (%s)\n", s.MaxEdgeGain*100, s.MaxEdgeGainAt)
	if !math.IsNaN(s.MeanSpeedupVsSchemI) {
		fmt.Fprintf(w, "  mean speedup vs SchemI (best PG-HIVE variant): %.2fx\n", s.MeanSpeedupVsSchemI)
	}
}
