package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// smallCfg keeps experiment tests fast: two contrasting datasets at a
// reduced scale.
func smallCfg() Config {
	return Config{Scale: 0.3, Seed: 5, Datasets: []string{"POLE", "MB6"}}
}

func TestGridShape(t *testing.T) {
	cells := Grid(smallCfg())
	want := 2 * len(Avails) * len(Noises) * len(Methods)
	if len(cells) != want {
		t.Fatalf("grid cells = %d, want %d", len(cells), want)
	}
	for _, c := range cells {
		if c.Avail < 1 && (c.Method == MGMM || c.Method == MSchemI) {
			if c.OK {
				t.Fatalf("%v must not run below 100%% labels", c.Method)
			}
			continue
		}
		if !c.OK {
			t.Fatalf("%v failed on %s (noise %.0f%%, avail %.0f%%)",
				c.Method, c.Dataset, c.Noise*100, c.Avail*100)
		}
		if c.NodeF1 < 0 || c.NodeF1 > 1 {
			t.Fatalf("NodeF1 out of range: %v", c.NodeF1)
		}
	}
}

func TestGridPaperShapes(t *testing.T) {
	cells := Grid(Config{Scale: 0.5, Seed: 5, Datasets: []string{"POLE", "MB6", "LDBC"}})
	get := func(ds string, noise, avail float64, m Method) Run {
		for _, c := range cells {
			if c.Dataset == ds && c.Noise == noise && c.Avail == avail && c.Method == m {
				return c.Run
			}
		}
		t.Fatalf("cell not found: %s %v %v %v", ds, noise, avail, m)
		return Run{}
	}
	// PG-HIVE stays accurate under heavy noise at full labels.
	for _, ds := range []string{"POLE", "MB6", "LDBC"} {
		if f := get(ds, 0.4, 1, MElsh).NodeF1; f < 0.9 {
			t.Errorf("%s: ELSH node F1 at 40%% noise = %.2f, want >= 0.9", ds, f)
		}
	}
	// SchemI loses on multi-label MB6 edges (label reuse).
	if hive, sch := get("MB6", 0, 1, MElsh).EdgeF1, get("MB6", 0, 1, MSchemI).EdgeF1; hive <= sch {
		t.Errorf("MB6 edges: ELSH (%.2f) should beat SchemI (%.2f)", hive, sch)
	}
	// Only PG-HIVE produces results at 0%% labels.
	if !get("POLE", 0.2, 0, MElsh).OK {
		t.Error("ELSH must run without labels")
	}
	if get("POLE", 0.2, 0, MSchemI).OK {
		t.Error("SchemI must not run without labels")
	}
}

func TestFig3Ranks(t *testing.T) {
	cells := Grid(smallCfg())
	r := Fig3(cells)
	if r.Cases != 2*len(Noises) {
		t.Fatalf("cases = %d, want %d", r.Cases, 2*len(Noises))
	}
	if len(r.NodeRanks) != 4 || len(r.EdgeRanks) != 3 {
		t.Fatalf("rank vector sizes: %d nodes, %d edges", len(r.NodeRanks), len(r.EdgeRanks))
	}
	// PG-HIVE variants must rank at least as well as both baselines
	// on nodes (Fig. 3 top).
	if r.NodeRanks[MElsh] > r.NodeRanks[MGMM] || r.NodeRanks[MElsh] > r.NodeRanks[MSchemI] {
		t.Errorf("ELSH rank %.2f worse than a baseline (GMM %.2f, SchemI %.2f)",
			r.NodeRanks[MElsh], r.NodeRanks[MGMM], r.NodeRanks[MSchemI])
	}
	if math.IsNaN(r.NodeCD) || math.IsNaN(r.EdgeCD) {
		t.Error("critical differences must be defined")
	}
}

func TestFig6AdaptiveNearBest(t *testing.T) {
	results := Fig6(Config{Scale: 0.3, Seed: 5, Datasets: []string{"POLE"}})
	if len(results) != 1 {
		t.Fatalf("results = %d", len(results))
	}
	r := results[0]
	if len(r.Points) != len(Fig6Tables)*len(Fig6Mults) {
		t.Fatalf("points = %d", len(r.Points))
	}
	best := 0.0
	for _, p := range r.Points {
		if p.NodeF1 > best {
			best = p.NodeF1
		}
	}
	// The paper's claim: the adaptive choice is close to the best
	// grid setting.
	if r.AdaptiveNodeF1 < best-0.1 {
		t.Errorf("adaptive node F1 %.3f far below grid best %.3f", r.AdaptiveNodeF1, best)
	}
}

func TestFig7BatchesAndQuality(t *testing.T) {
	rows := Fig7(Config{Scale: 0.4, Seed: 5, Datasets: []string{"POLE", "MB6"}})
	if len(rows) != 4 { // 2 datasets × 2 PG-HIVE variants
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if len(r.BatchMillis) != Fig7Batches {
			t.Fatalf("%s/%v: batches = %d, want %d", r.Dataset, r.Method, len(r.BatchMillis), Fig7Batches)
		}
		if r.NodeF1 < 0.85 {
			t.Errorf("%s/%v: incremental final F1 = %.2f, want >= 0.85", r.Dataset, r.Method, r.NodeF1)
		}
	}
}

func TestFig8MostErrorsSmall(t *testing.T) {
	rows := Fig8(Config{Scale: 1, Seed: 5, Datasets: []string{"POLE", "ICIJ"}})
	for _, r := range rows {
		if r.Properties == 0 {
			t.Fatalf("%s: no properties measured", r.Dataset)
		}
		// The paper: most properties fall into the lowest bin.
		if r.Bins[0] < 0.5 {
			t.Errorf("%s/%v: lowest-error bin share = %.2f, want >= 0.5", r.Dataset, r.Method, r.Bins[0])
		}
	}
}

func TestTable2Rows(t *testing.T) {
	rows := Table2(smallCfg())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Name != "POLE" || rows[1].Name != "MB6" {
		t.Fatalf("row order wrong: %v %v", rows[0].Name, rows[1].Name)
	}
}

func TestTable1Capabilities(t *testing.T) {
	caps := Table1(Config{Seed: 5})
	byName := map[string]Capability{}
	for _, c := range caps {
		byName[c.Name] = c
	}
	li := byName["Label independent"]
	if li.SchemI || li.GMM || !li.PGHive {
		t.Errorf("label independence matrix wrong: %+v", li)
	}
	et := byName["Edge types"]
	if et.GMM || !et.PGHive || !et.SchemI {
		t.Errorf("edge types matrix wrong: %+v", et)
	}
	cs := byName["Constraints (datatypes, optionality, cardinalities)"]
	if !cs.PGHive || cs.GMM || cs.SchemI {
		t.Errorf("constraints matrix wrong: %+v", cs)
	}
}

func TestSummarize(t *testing.T) {
	cells := Grid(Config{Scale: 0.4, Seed: 5, Datasets: []string{"MB6", "HET.IO"}})
	s := Summarize(cells)
	if s.MaxNodeGain < 0 || s.MaxEdgeGain <= 0 {
		t.Errorf("gains: %+v", s)
	}
	if s.MeanSpeedupVsSchemI <= 0 {
		t.Errorf("speedup must be measured: %+v", s)
	}
}

func TestRenderers(t *testing.T) {
	cfg := smallCfg()
	cells := Grid(cfg)
	var buf bytes.Buffer
	PrintTable1(&buf, Table1(cfg))
	PrintTable2(&buf, Table2(cfg))
	PrintFig3(&buf, Fig3(cells))
	PrintFig4(&buf, cells)
	PrintFig5(&buf, cells)
	PrintFig6(&buf, Fig6(Config{Scale: 0.2, Seed: 5, Datasets: []string{"POLE"}}))
	PrintFig7(&buf, Fig7(Config{Scale: 0.2, Seed: 5, Datasets: []string{"POLE"}}))
	PrintFig8(&buf, Fig8(Config{Scale: 0.4, Seed: 5, Datasets: []string{"POLE"}}))
	PrintSummary(&buf, Summarize(cells))
	out := buf.String()
	for _, want := range []string{
		"Table 1", "Table 2", "Figure 3", "Figure 4", "Figure 5",
		"Figure 6", "Figure 7", "Figure 8", "Headline",
		"PG-HIVE-ELSH", "PG-HIVE-MinHash", "GMM", "SchemI",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}
