// Package experiments reproduces every table and figure of the
// paper's evaluation (§5). It is shared by the cmd/experiments tool
// and by the root bench suite: each experiment is a pure function from
// a Config to printable results, deterministic per seed.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/pghive/pghive/internal/baselines/gmm"
	"github.com/pghive/pghive/internal/baselines/schemi"
	"github.com/pghive/pghive/internal/core"
	"github.com/pghive/pghive/internal/datagen"
	"github.com/pghive/pghive/internal/eval"
	"github.com/pghive/pghive/internal/infer"
	"github.com/pghive/pghive/internal/lsh"
	"github.com/pghive/pghive/internal/pg"
	"github.com/pghive/pghive/internal/schema"
)

// Method identifies one evaluated approach.
type Method uint8

const (
	// MElsh is PG-HIVE with Euclidean LSH.
	MElsh Method = iota
	// MMinHash is PG-HIVE with MinHash LSH.
	MMinHash
	// MGMM is the GMMSchema baseline.
	MGMM
	// MSchemI is the SchemI baseline.
	MSchemI
)

// Methods lists all approaches in the paper's order.
var Methods = []Method{MElsh, MMinHash, MGMM, MSchemI}

// String names the method as in the paper's figures.
func (m Method) String() string {
	switch m {
	case MElsh:
		return "PG-HIVE-ELSH"
	case MMinHash:
		return "PG-HIVE-MinHash"
	case MGMM:
		return "GMM"
	default:
		return "SchemI"
	}
}

// Config scopes an experiment run.
type Config struct {
	// Scale multiplies every dataset's default size (default 1).
	Scale float64
	// Seed drives generation, noise and discovery.
	Seed int64
	// Datasets restricts the run (nil = all eight).
	Datasets []string
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func (c Config) specs() []*datagen.Spec {
	if len(c.Datasets) == 0 {
		return datagen.All()
	}
	var out []*datagen.Spec
	for _, n := range c.Datasets {
		if s := datagen.ByName(n); s != nil {
			out = append(out, s)
		}
	}
	return out
}

// Noises are the property-noise levels of §5 (0–40%).
var Noises = []float64{0, 0.1, 0.2, 0.3, 0.4}

// Avails are the label-availability scenarios of §5.
var Avails = []float64{1.0, 0.5, 0.0}

// Run is one method's outcome on one dataset configuration.
type Run struct {
	// NodeF1 and EdgeF1 are majority-based F1* scores; EdgeF1 is NaN
	// for methods that do not discover edge types (GMM).
	NodeF1 float64
	EdgeF1 float64
	// Discovery is the time until type discovery (Fig. 5's metric).
	Discovery time.Duration
	// OK is false when the method cannot run on the configuration
	// (baselines on partially labeled data).
	OK bool
}

// RunOn executes one method over a (possibly noisy) dataset.
func RunOn(d *datagen.Dataset, m Method, seed int64) Run {
	switch m {
	case MElsh, MMinHash:
		opts := core.Options{Seed: seed}
		if m == MMinHash {
			opts.Method = core.MinHash
		}
		res := core.Discover(d.Graph, opts)
		return Run{
			NodeF1:    eval.MajorityF1(eval.NodeAssignments(res.NodeAssign), d.NodeTruth),
			EdgeF1:    eval.MajorityF1(eval.EdgeAssignments(res.EdgeAssign), d.EdgeTruth),
			Discovery: res.Timing.Discovery(),
			OK:        true,
		}
	case MGMM:
		res, err := gmm.Discover(d.Graph, gmm.Options{Seed: seed})
		if err != nil {
			return Run{}
		}
		return Run{
			NodeF1:    eval.MajorityF1(eval.NodeAssignments(res.NodeAssign), d.NodeTruth),
			EdgeF1:    0, // GMM does not produce edge types (Table 1)
			Discovery: res.Elapsed,
			OK:        true,
		}
	default:
		res, err := schemi.Discover(d.Graph)
		if err != nil {
			return Run{}
		}
		return Run{
			NodeF1:    eval.MajorityF1(eval.NodeAssignments(res.NodeAssign), d.NodeTruth),
			EdgeF1:    eval.MajorityF1(eval.EdgeAssignments(res.EdgeAssign), d.EdgeTruth),
			Discovery: res.Elapsed,
			OK:        true,
		}
	}
}

// Cell is one point of the Fig. 4 / Fig. 5 grid.
type Cell struct {
	Dataset string
	Noise   float64
	Avail   float64
	Method  Method
	Run
}

// Grid runs every method over every dataset × noise × availability
// combination (the Fig. 4 and Fig. 5 data). Baselines are attempted
// only at 100% label availability, where they are defined.
func Grid(cfg Config) []Cell {
	cfg = cfg.withDefaults()
	var cells []Cell
	for _, spec := range cfg.specs() {
		base := datagen.Generate(spec, cfg.Scale, cfg.Seed)
		for _, avail := range Avails {
			for _, noise := range Noises {
				d := datagen.InjectNoise(base, noise, avail, cfg.Seed+7)
				for _, m := range Methods {
					if avail < 1 && (m == MGMM || m == MSchemI) {
						cells = append(cells, Cell{Dataset: spec.Name, Noise: noise, Avail: avail, Method: m})
						continue
					}
					run := RunOn(d, m, cfg.Seed+13)
					cells = append(cells, Cell{Dataset: spec.Name, Noise: noise, Avail: avail, Method: m, Run: run})
				}
			}
		}
	}
	return cells
}

// Fig3Result holds the Nemenyi analysis of Fig. 3.
type Fig3Result struct {
	// NodeRanks / EdgeRanks are Friedman average ranks per method
	// (Methods order); NaN marks methods excluded from the comparison
	// (GMM produces no edge types).
	NodeRanks []float64
	EdgeRanks []float64
	// NodeCD / EdgeCD are the Nemenyi critical differences.
	NodeCD float64
	EdgeCD float64
	// Cases is the number of compared test cases (8 datasets × 5
	// noise levels in the paper).
	Cases int
}

// Fig3 runs the statistical-significance analysis over the 100%-label
// grid cells.
func Fig3(cells []Cell) Fig3Result {
	type key struct {
		ds    string
		noise float64
	}
	nodeScores := map[key][]float64{}
	edgeScores := map[key][]float64{}
	for _, c := range cells {
		if c.Avail < 1 {
			continue
		}
		k := key{c.Dataset, c.Noise}
		if nodeScores[k] == nil {
			nodeScores[k] = make([]float64, len(Methods))
			edgeScores[k] = make([]float64, len(Methods))
		}
		nodeScores[k][c.Method] = c.NodeF1
		edgeScores[k][c.Method] = c.EdgeF1
	}
	keys := make([]key, 0, len(nodeScores))
	for k := range nodeScores {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].ds != keys[j].ds {
			return keys[i].ds < keys[j].ds
		}
		return keys[i].noise < keys[j].noise
	})

	var nodeRows, edgeRows [][]float64
	for _, k := range keys {
		nodeRows = append(nodeRows, nodeScores[k])
		// Edge comparison excludes GMM (it discovers no edge types).
		row := []float64{edgeScores[k][MElsh], edgeScores[k][MMinHash], edgeScores[k][MSchemI]}
		edgeRows = append(edgeRows, row)
	}
	nodeRanks := eval.AverageRanks(nodeRows)
	edge3 := eval.AverageRanks(edgeRows)
	return Fig3Result{
		NodeRanks: nodeRanks,
		EdgeRanks: edge3,
		NodeCD:    eval.NemenyiCD(len(Methods), len(nodeRows)),
		EdgeCD:    eval.NemenyiCD(3, len(edgeRows)),
		Cases:     len(nodeRows),
	}
}

// Fig6Point is one heatmap cell of the adaptive-parameter experiment.
type Fig6Point struct {
	Tables     int
	BucketMult float64
	NodeF1     float64
	EdgeF1     float64
}

// Fig6Result is one dataset's heatmap plus the adaptive choice.
type Fig6Result struct {
	Dataset        string
	Points         []Fig6Point
	AdaptiveNode   lsh.AdaptiveChoice
	AdaptiveEdge   lsh.AdaptiveChoice
	AdaptiveNodeF1 float64
	AdaptiveEdgeF1 float64
}

// Fig6Tables and Fig6Mults define the explored (T, b) grid; the
// bucket length is expressed as a multiple of the adaptive b.
var (
	Fig6Tables = []int{5, 10, 20, 30, 40}
	Fig6Mults  = []float64{0.25, 0.5, 1.0, 2.0}
)

// Fig6 sweeps LSH parameters around the adaptive choice at 100% labels
// and 0% noise (the paper's heatmap setting).
func Fig6(cfg Config) []Fig6Result {
	cfg = cfg.withDefaults()
	var out []Fig6Result
	for _, spec := range cfg.specs() {
		d := datagen.Generate(spec, cfg.Scale, cfg.Seed)
		adaptive := core.Discover(d.Graph, core.Options{Seed: cfg.Seed + 13})
		r := Fig6Result{
			Dataset:        spec.Name,
			AdaptiveNode:   adaptive.NodeChoice,
			AdaptiveEdge:   adaptive.EdgeChoice,
			AdaptiveNodeF1: eval.MajorityF1(eval.NodeAssignments(adaptive.NodeAssign), d.NodeTruth),
			AdaptiveEdgeF1: eval.MajorityF1(eval.EdgeAssignments(adaptive.EdgeAssign), d.EdgeTruth),
		}
		for _, tables := range Fig6Tables {
			for _, mult := range Fig6Mults {
				np := lsh.Params{
					Tables:       tables,
					BucketLength: adaptive.NodeChoice.Params.BucketLength * mult,
					Seed:         cfg.Seed + 2,
				}
				ep := lsh.Params{
					Tables:       tables,
					BucketLength: adaptive.EdgeChoice.Params.BucketLength * mult,
					Seed:         cfg.Seed + 3,
				}
				res := core.Discover(d.Graph, core.Options{
					Seed: cfg.Seed + 13, NodeParams: &np, EdgeParams: &ep,
				})
				r.Points = append(r.Points, Fig6Point{
					Tables:     tables,
					BucketMult: mult,
					NodeF1:     eval.MajorityF1(eval.NodeAssignments(res.NodeAssign), d.NodeTruth),
					EdgeF1:     eval.MajorityF1(eval.EdgeAssignments(res.EdgeAssign), d.EdgeTruth),
				})
			}
		}
		out = append(out, r)
	}
	return out
}

// Fig7Row is one dataset's per-batch incremental cost series.
type Fig7Row struct {
	Dataset string
	Method  Method
	// BatchMillis holds the discovery time of each batch in order.
	BatchMillis []float64
	// NodeF1 is the final F1* after all batches, confirming the
	// incremental schema is as good as the static one.
	NodeF1 float64
}

// Fig7Batches is the batch count the paper uses.
const Fig7Batches = 10

// Fig7 splits every dataset into 10 random batches and measures
// per-batch processing time for both PG-HIVE variants.
func Fig7(cfg Config) []Fig7Row {
	cfg = cfg.withDefaults()
	var out []Fig7Row
	for _, spec := range cfg.specs() {
		d := datagen.Generate(spec, cfg.Scale, cfg.Seed)
		for _, m := range []Method{MElsh, MMinHash} {
			opts := core.Options{Seed: cfg.Seed + 13}
			if m == MMinHash {
				opts.Method = core.MinHash
			}
			inc := core.NewIncremental(opts)
			batches := pg.SplitBatches(d.Graph, Fig7Batches, rand.New(rand.NewSource(cfg.Seed+21)))
			row := Fig7Row{Dataset: spec.Name, Method: m}
			for _, b := range batches {
				bt := inc.ProcessBatch(b)
				row.BatchMillis = append(row.BatchMillis, float64(bt.Timing.Discovery().Microseconds())/1000)
			}
			res := inc.Finalize()
			row.NodeF1 = eval.MajorityF1(eval.NodeAssignments(res.NodeAssign), d.NodeTruth)
			out = append(out, row)
		}
	}
	return out
}

// Fig8Row is one dataset's sampling-error distribution.
type Fig8Row struct {
	Dataset    string
	Method     Method
	Properties int
	// Bins holds the normalized share per eval.ErrorBin.
	Bins [4]float64
}

// Fig8 measures, per dataset and PG-HIVE variant, the datatype
// sampling error of every (type, property) pair: the sample-based
// inference against the full-scan tally. The paper samples 10% with a
// floor of 1000 values; the floor is scaled by the same factor as the
// datasets (÷200 at scale 1) so sampling exercises the same relative
// regime.
func Fig8(cfg Config) []Fig8Row {
	cfg = cfg.withDefaults()
	minSample := int(1000.0 / 200.0 * cfg.Scale)
	if minSample < 3 {
		minSample = 3
	}
	var out []Fig8Row
	for _, spec := range cfg.specs() {
		d := datagen.Generate(spec, cfg.Scale, cfg.Seed)
		for _, m := range []Method{MElsh, MMinHash} {
			opts := core.Options{Seed: cfg.Seed + 13}
			if m == MMinHash {
				opts.Method = core.MinHash
			}
			res := core.Discover(d.Graph, opts)
			// Each property is sampled in several independent trials;
			// the distribution aggregates (property, trial) pairs, so a
			// property whose sample misses outliers with probability p
			// contributes p of its mass to the non-zero bins.
			const trials = 5
			var errs []float64
			props := 0
			collect := func(t *schema.Type) {
				for key, ps := range t.Props {
					props++
					for trial := int64(0); trial < trials; trial++ {
						sampled := infer.SampleTally(&ps.Kinds, 0.10, minSample, cfg.Seed+int64(len(key))+trial*101)
						kind := infer.DataTypeFromTally(&sampled)
						errs = append(errs, infer.SamplingError(&ps.Kinds, kind))
					}
				}
			}
			for _, nt := range res.Schema.NodeTypes {
				collect(&nt.Type)
			}
			for _, et := range res.Schema.EdgeTypes {
				collect(&et.Type)
			}
			out = append(out, Fig8Row{
				Dataset:    spec.Name,
				Method:     m,
				Properties: props,
				Bins:       eval.BinDistribution(errs),
			})
		}
	}
	return out
}

// Table2 generates every dataset and returns its statistics rows.
func Table2(cfg Config) []datagen.TableStats {
	cfg = cfg.withDefaults()
	var out []datagen.TableStats
	for _, spec := range cfg.specs() {
		out = append(out, datagen.Generate(spec, cfg.Scale, cfg.Seed).Stats())
	}
	return out
}

// Summary derives the paper's headline claims from a grid: the maximum
// F1* advantage of the best PG-HIVE variant over the best baseline
// (nodes and edges) and the mean speedup over SchemI.
type Summary struct {
	MaxNodeGain   float64
	MaxNodeGainAt string
	MaxEdgeGain   float64
	MaxEdgeGainAt string
	// MeanSpeedupVsSchemI averages, over 100%-label cells, the ratio
	// SchemI time / best PG-HIVE time.
	MeanSpeedupVsSchemI float64
}

// Summarize computes the Summary from grid cells.
func Summarize(cells []Cell) Summary {
	type key struct {
		ds    string
		noise float64
		avail float64
	}
	group := map[key]map[Method]Run{}
	for _, c := range cells {
		k := key{c.Dataset, c.Noise, c.Avail}
		if group[k] == nil {
			group[k] = map[Method]Run{}
		}
		group[k][c.Method] = c.Run
	}
	var s Summary
	var speedups []float64
	for k, runs := range group {
		if k.avail < 1 {
			continue
		}
		bestHiveNode := maxf(runs[MElsh].NodeF1, runs[MMinHash].NodeF1)
		bestHiveEdge := maxf(runs[MElsh].EdgeF1, runs[MMinHash].EdgeF1)
		bestBaseNode := 0.0
		if runs[MGMM].OK {
			bestBaseNode = runs[MGMM].NodeF1
		}
		if runs[MSchemI].OK {
			bestBaseNode = maxf(bestBaseNode, runs[MSchemI].NodeF1)
		}
		if g := bestHiveNode - bestBaseNode; g > s.MaxNodeGain {
			s.MaxNodeGain = g
			s.MaxNodeGainAt = fmt.Sprintf("%s@%.0f%%noise", k.ds, k.noise*100)
		}
		if runs[MSchemI].OK {
			if g := bestHiveEdge - runs[MSchemI].EdgeF1; g > s.MaxEdgeGain {
				s.MaxEdgeGain = g
				s.MaxEdgeGainAt = fmt.Sprintf("%s@%.0f%%noise", k.ds, k.noise*100)
			}
			bestHiveTime := runs[MElsh].Discovery
			if runs[MMinHash].Discovery < bestHiveTime {
				bestHiveTime = runs[MMinHash].Discovery
			}
			if bestHiveTime > 0 {
				speedups = append(speedups, float64(runs[MSchemI].Discovery)/float64(bestHiveTime))
			}
		}
	}
	if len(speedups) > 0 {
		var sum float64
		for _, x := range speedups {
			sum += x
		}
		s.MeanSpeedupVsSchemI = sum / float64(len(speedups))
	}
	return s
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
