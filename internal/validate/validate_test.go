package validate

import (
	"strings"
	"testing"

	"github.com/pghive/pghive/internal/core"
	"github.com/pghive/pghive/internal/datagen"
	"github.com/pghive/pghive/internal/infer"
	"github.com/pghive/pghive/internal/pg"
	"github.com/pghive/pghive/internal/schema"
)

// discoveredSchema builds a schema from a clean POLE dataset.
func discoveredSchema(t *testing.T) (*datagen.Dataset, *schema.Schema) {
	t.Helper()
	d := datagen.Generate(datagen.POLE(), 0.5, 3)
	res := core.Discover(d.Graph, core.Options{Seed: 3})
	infer.Finalize(res.Schema, infer.Options{})
	return d, res.Schema
}

// TestSelfValidation: a graph must conform to the schema discovered
// from it, in both modes — the §4.7 type-completeness guarantee made
// executable.
func TestSelfValidation(t *testing.T) {
	d, s := discoveredSchema(t)
	for _, mode := range []Mode{Loose, Strict} {
		r := Graph(d.Graph, s, mode)
		if !r.Valid() {
			for _, v := range r.Violations[:min(5, len(r.Violations))] {
				t.Log(v)
			}
			t.Fatalf("mode %d: %d violations on the schema's own data", mode, len(r.Violations))
		}
		if r.Checked != d.Graph.NumNodes()+d.Graph.NumEdges() {
			t.Errorf("checked %d elements, want %d", r.Checked, d.Graph.NumNodes()+d.Graph.NumEdges())
		}
	}
}

func TestUnknownLabelViolation(t *testing.T) {
	d, s := discoveredSchema(t)
	g := d.Graph.Clone()
	g.AddNode([]string{"Alien"}, map[string]pg.Value{"tentacles": pg.Int(4)})
	r := Graph(g, s, Loose)
	if r.Valid() {
		t.Fatal("alien node must violate LOOSE typeability")
	}
	if r.Violations[0].Rule != "typeable" {
		t.Errorf("rule = %q, want typeable", r.Violations[0].Rule)
	}
}

func TestLooseToleratesExtraProperties(t *testing.T) {
	d, s := discoveredSchema(t)
	g := d.Graph.Clone()
	// A Person with an undeclared property: LOOSE accepts, STRICT
	// rejects.
	var person *pg.Node
	for i := range g.Nodes() {
		if g.Nodes()[i].LabelToken() == "Person" {
			person = &g.Nodes()[i]
			break
		}
	}
	person.Props["undeclared_hobby"] = pg.Str("chess")
	if r := Graph(g, s, Loose); !r.Valid() {
		t.Fatalf("LOOSE must tolerate extra properties: %v", r.Violations[0])
	}
	r := Graph(g, s, Strict)
	if r.Valid() {
		t.Fatal("STRICT must reject undeclared properties")
	}
	found := false
	for _, v := range r.Violations {
		if v.Rule == "undeclared-property" && strings.Contains(v.Detail, "undeclared_hobby") {
			found = true
		}
	}
	if !found {
		t.Errorf("missing undeclared-property violation: %v", r.Violations)
	}
}

func TestStrictMandatoryViolation(t *testing.T) {
	d, s := discoveredSchema(t)
	g := d.Graph.Clone()
	for i := range g.Nodes() {
		n := &g.Nodes()[i]
		if n.LabelToken() == "Officer" {
			delete(n.Props, "badge_no") // mandatory for Officer
			break
		}
	}
	r := Graph(g, s, Strict)
	found := false
	for _, v := range r.Violations {
		if v.Rule == "mandatory" && strings.Contains(v.Detail, "badge_no") {
			found = true
		}
	}
	if !found {
		t.Errorf("missing mandatory violation: valid=%v violations=%v", r.Valid(), r.Violations)
	}
}

func TestStrictDatatypeViolation(t *testing.T) {
	d, s := discoveredSchema(t)
	g := d.Graph.Clone()
	for i := range g.Nodes() {
		n := &g.Nodes()[i]
		if n.LabelToken() == "Person" {
			n.Props["age"] = pg.Str("forty") // age is INT
			break
		}
	}
	r := Graph(g, s, Strict)
	found := false
	for _, v := range r.Violations {
		if v.Rule == "datatype" && strings.Contains(v.Detail, "age") {
			found = true
		}
	}
	if !found {
		t.Errorf("missing datatype violation: %v", r.Violations)
	}
}

func TestEnumAndRangeViolations(t *testing.T) {
	// Build a schema with an enum and a range by hand via discovery.
	g := pg.NewGraph()
	for i := 0; i < 12; i++ {
		g.AddNode([]string{"Case"}, map[string]pg.Value{
			"status": pg.Str([]string{"open", "closed"}[i%2]),
			"score":  pg.Int(int64(10 + i)),
		})
	}
	res := core.Discover(g, core.Options{Seed: 5})
	infer.Finalize(res.Schema, infer.Options{})

	bad := pg.NewGraph()
	bad.AddNode([]string{"Case"}, map[string]pg.Value{
		"status": pg.Str("exploded"), // outside enum
		"score":  pg.Int(999),        // outside range
	})
	r := Graph(bad, res.Schema, Strict)
	rules := map[string]bool{}
	for _, v := range r.Violations {
		rules[v.Rule] = true
	}
	if !rules["enum"] {
		t.Errorf("missing enum violation: %v", r.Violations)
	}
	if !rules["range"] {
		t.Errorf("missing range violation: %v", r.Violations)
	}
}

func TestEdgeEndpointViolation(t *testing.T) {
	d, s := discoveredSchema(t)
	g := d.Graph.Clone()
	// Wire a WORKS_AT-style violation: OCCURRED_AT from a Person
	// (schema says Crime → Location).
	var person, location pg.ID = -1, -1
	for i := range g.Nodes() {
		switch g.Nodes()[i].LabelToken() {
		case "Person":
			person = g.Nodes()[i].ID
		case "Location":
			location = g.Nodes()[i].ID
		}
	}
	if person < 0 || location < 0 {
		t.Fatal("fixture nodes missing")
	}
	if _, err := g.AddEdge([]string{"OCCURRED_AT"}, person, location, nil); err != nil {
		t.Fatal(err)
	}
	r := Graph(g, s, Strict)
	found := false
	for _, v := range r.Violations {
		if v.Rule == "typeable" && v.IsEdge {
			found = true
		}
	}
	if !found {
		t.Errorf("edge with wrong endpoints must be untypeable: %v", r.Violations)
	}
}

func TestCardinalityViolation(t *testing.T) {
	// Discover a ManyToOne edge type, then violate it.
	g := pg.NewGraph()
	var people, orgs []pg.ID
	for i := 0; i < 30; i++ {
		people = append(people, g.AddNode([]string{"Person"}, map[string]pg.Value{"name": pg.Str("p")}))
	}
	for i := 0; i < 5; i++ {
		orgs = append(orgs, g.AddNode([]string{"Org"}, map[string]pg.Value{"url": pg.Str("u")}))
	}
	for i, p := range people {
		if _, err := g.AddEdge([]string{"WORKS_AT"}, p, orgs[i%len(orgs)], nil); err != nil {
			t.Fatal(err)
		}
	}
	res := core.Discover(g, core.Options{Seed: 6})
	infer.Finalize(res.Schema, infer.Options{})
	wa := res.Schema.EdgeTypeByToken("WORKS_AT")
	if wa.Cardinality != schema.CardManyToOne {
		t.Skipf("fixture produced %v instead of N:1", wa.Cardinality)
	}
	// Second job for person 0: out-degree 2 violates N:1.
	if _, err := g.AddEdge([]string{"WORKS_AT"}, people[0], orgs[1], nil); err != nil {
		t.Fatal(err)
	}
	r := Graph(g, res.Schema, Strict)
	found := false
	for _, v := range r.Violations {
		if v.Rule == "cardinality" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing cardinality violation: %v", r.Violations)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Element: 7, IsEdge: true, Rule: "enum", Detail: "bad"}
	if got := v.String(); got != "edge 7: enum: bad" {
		t.Errorf("String() = %q", got)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
