// Package validate checks a property graph against a discovered
// schema — the validation use case §4.4 motivates ("a precise schema,
// which supports validation processes") — under the two strictness
// regimes of PG-Schema that §3 discusses:
//
//   - LOOSE: every element must be *typeable* (its label set matches a
//     schema type, or an abstract type covers its structure); property
//     content is open.
//   - STRICT: additionally, every property must be declared by the
//     type, mandatory properties must be present, values must conform
//     to the inferred data types (including enums and integer ranges),
//     edge endpoints must match the type's connectivity, and observed
//     degrees must not exceed the declared cardinality class.
package validate

import (
	"fmt"

	"github.com/pghive/pghive/internal/pg"
	"github.com/pghive/pghive/internal/schema"
)

// Mode selects the validation regime.
type Mode uint8

const (
	// Loose checks typeability only.
	Loose Mode = iota
	// Strict checks properties, data types, constraints, endpoints
	// and cardinalities.
	Strict
)

// Violation describes one conformance failure.
type Violation struct {
	// Element identifies the offending node or edge.
	Element pg.ID
	// IsEdge distinguishes the two ID spaces.
	IsEdge bool
	// Rule names the violated rule.
	Rule string
	// Detail is a human-readable explanation.
	Detail string
}

// String renders the violation.
func (v Violation) String() string {
	kind := "node"
	if v.IsEdge {
		kind = "edge"
	}
	return fmt.Sprintf("%s %d: %s: %s", kind, v.Element, v.Rule, v.Detail)
}

// Report is the outcome of a validation run.
type Report struct {
	// Checked counts validated elements.
	Checked int
	// Violations lists every failure, capped at MaxViolations.
	Violations []Violation
	// Truncated is set when the violation cap was hit.
	Truncated bool
}

// Valid reports whether the graph conforms.
func (r *Report) Valid() bool { return len(r.Violations) == 0 }

// MaxViolations caps report size for pathological inputs.
const MaxViolations = 1000

func (r *Report) add(v Violation) bool {
	if len(r.Violations) >= MaxViolations {
		r.Truncated = true
		return false
	}
	r.Violations = append(r.Violations, v)
	return true
}

// Graph validates every node and edge of g against s.
func Graph(g *pg.Graph, s *schema.Schema, mode Mode) *Report {
	r := &Report{}
	nodeTypeOf := map[pg.ID]*schema.NodeType{}
	nodes := g.Nodes()
	for i := range nodes {
		n := &nodes[i]
		r.Checked++
		nt := matchNodeType(s, n)
		if nt == nil {
			if !r.add(Violation{Element: n.ID, Rule: "typeable",
				Detail: fmt.Sprintf("no schema type covers label set %v", n.Labels)}) {
				return r
			}
			continue
		}
		nodeTypeOf[n.ID] = nt
		if mode == Strict {
			validateProps(r, n.ID, false, &nt.Type, n.Props)
		}
	}
	edges := g.Edges()
	degOut := map[*schema.EdgeType]map[pg.ID]int{}
	degIn := map[*schema.EdgeType]map[pg.ID]int{}
	for i := range edges {
		e := &edges[i]
		r.Checked++
		et := matchEdgeType(s, g, e, nodeTypeOf)
		if et == nil {
			if !r.add(Violation{Element: e.ID, IsEdge: true, Rule: "typeable",
				Detail: fmt.Sprintf("no schema type covers edge label set %v with its endpoints", e.Labels)}) {
				return r
			}
			continue
		}
		if mode == Strict {
			validateProps(r, e.ID, true, &et.Type, e.Props)
			if degOut[et] == nil {
				degOut[et] = map[pg.ID]int{}
				degIn[et] = map[pg.ID]int{}
			}
			degOut[et][e.Src]++
			degIn[et][e.Dst]++
		}
	}
	if mode == Strict {
		validateCardinalities(r, degOut, degIn)
	}
	return r
}

// matchNodeType finds the schema type covering a node: by exact label
// token for labeled nodes; for unlabeled nodes, any type whose
// property keys cover the node's.
func matchNodeType(s *schema.Schema, n *pg.Node) *schema.NodeType {
	if tok := n.LabelToken(); tok != "" {
		if nt := s.NodeTypeByToken(tok); nt != nil {
			return nt
		}
		// A type whose label set is a superset also covers it (LOOSE
		// flexibility for partially labeled instances).
		for _, nt := range s.NodeTypes {
			if coversLabels(nt.Labels, n.Labels) {
				return nt
			}
		}
		return nil
	}
	for _, nt := range s.NodeTypes {
		if coversKeys(nt.Props, n.Props) {
			return nt
		}
	}
	return nil
}

func coversLabels(have map[string]int, want []string) bool {
	for _, l := range want {
		if have[l] <= 0 {
			return false
		}
	}
	return true
}

func coversKeys(have map[string]*schema.PropStat, want map[string]pg.Value) bool {
	for k := range want {
		if have[k] == nil {
			return false
		}
	}
	return true
}

// matchEdgeType finds the schema edge type covering an edge: same
// label token and, when endpoint types are resolvable, compatible
// endpoint token sets.
func matchEdgeType(s *schema.Schema, g *pg.Graph, e *pg.Edge, nodeTypeOf map[pg.ID]*schema.NodeType) *schema.EdgeType {
	candidates := s.EdgeTypesByToken(e.LabelToken())
	if e.LabelToken() == "" {
		// Unlabeled edges: any abstract edge type whose property keys
		// cover the edge's.
		for _, et := range s.AbstractEdgeTypes() {
			if coversKeys(et.Props, e.Props) {
				return et
			}
		}
		return nil
	}
	srcTok := endpointToken(g, e.Src, nodeTypeOf)
	dstTok := endpointToken(g, e.Dst, nodeTypeOf)
	for _, et := range candidates {
		if (srcTok == "" || len(et.SrcTokens) == 0 || et.SrcTokens[srcTok]) &&
			(dstTok == "" || len(et.DstTokens) == 0 || et.DstTokens[dstTok]) {
			return et
		}
	}
	return nil
}

func endpointToken(g *pg.Graph, id pg.ID, nodeTypeOf map[pg.ID]*schema.NodeType) string {
	if n := g.Node(id); n != nil && len(n.Labels) > 0 {
		return n.LabelToken()
	}
	if nt := nodeTypeOf[id]; nt != nil {
		return nt.Name()
	}
	return ""
}

// validateProps applies the STRICT property rules of one element
// against its type.
func validateProps(r *Report, id pg.ID, isEdge bool, t *schema.Type, props map[string]pg.Value) {
	// Undeclared properties.
	for k, v := range props {
		ps := t.Props[k]
		if ps == nil {
			r.add(Violation{Element: id, IsEdge: isEdge, Rule: "undeclared-property",
				Detail: fmt.Sprintf("property %q not declared by type %s", k, t.Name())})
			continue
		}
		if !kindConforms(v.Kind(), ps.DataType) {
			r.add(Violation{Element: id, IsEdge: isEdge, Rule: "datatype",
				Detail: fmt.Sprintf("property %q value %q has kind %s, type declares %s",
					k, v.Lexical(), v.Kind(), ps.DataType)})
			continue
		}
		if len(ps.Enum) > 0 && v.Kind() == pg.KindString && !contains(ps.Enum, v.AsString()) {
			r.add(Violation{Element: id, IsEdge: isEdge, Rule: "enum",
				Detail: fmt.Sprintf("property %q value %q outside enum %v", k, v.AsString(), ps.Enum)})
		}
		if ps.HasIntRange && v.Kind() == pg.KindInt {
			if iv := v.AsInt(); iv < ps.MinInt || iv > ps.MaxInt {
				r.add(Violation{Element: id, IsEdge: isEdge, Rule: "range",
					Detail: fmt.Sprintf("property %q value %d outside [%d, %d]", k, iv, ps.MinInt, ps.MaxInt)})
			}
		}
	}
	// Missing mandatory properties.
	for k, ps := range t.Props {
		if ps.Mandatory && !props[k].IsValid() {
			r.add(Violation{Element: id, IsEdge: isEdge, Rule: "mandatory",
				Detail: fmt.Sprintf("mandatory property %q of type %s missing", k, t.Name())})
		}
	}
}

// kindConforms mirrors the compatibility rules of the infer package.
func kindConforms(k, dt pg.Kind) bool {
	switch dt {
	case pg.KindString:
		return true
	case pg.KindInt:
		return k == pg.KindInt
	case pg.KindFloat:
		return k == pg.KindInt || k == pg.KindFloat
	case pg.KindBool:
		return k == pg.KindBool
	case pg.KindDate:
		return k == pg.KindDate
	case pg.KindDateTime:
		return k == pg.KindDate || k == pg.KindDateTime
	default:
		return false
	}
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// validateCardinalities checks observed degrees against each edge
// type's declared cardinality class.
func validateCardinalities(r *Report, degOut, degIn map[*schema.EdgeType]map[pg.ID]int) {
	for et, outs := range degOut {
		maxOut, maxIn := 1, 1
		switch et.Cardinality {
		case schema.CardManyToMany:
			continue // no upper bound on either side
		case schema.CardOneToMany:
			maxOut = -1 // unbounded out-degree
		case schema.CardManyToOne:
			maxIn = -1
		case schema.CardUnknown:
			continue
		}
		if maxOut > 0 {
			for src, d := range outs {
				if d > maxOut {
					r.add(Violation{Element: src, Rule: "cardinality",
						Detail: fmt.Sprintf("node has %d outgoing %s edges, type declares %s",
							d, et.Name(), et.Cardinality)})
				}
			}
		}
		if maxIn > 0 {
			for dst, d := range degIn[et] {
				if d > maxIn {
					r.add(Violation{Element: dst, Rule: "cardinality",
						Detail: fmt.Sprintf("node has %d incoming %s edges, type declares %s",
							d, et.Name(), et.Cardinality)})
				}
			}
		}
	}
}
