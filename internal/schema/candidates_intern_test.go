package schema

import (
	"encoding/json"
	"math/rand"
	"testing"

	"github.com/pghive/pghive/internal/pg"
)

// candidateFingerprint serializes everything a candidate carries so
// the interned and plain builders can be compared byte-for-byte.
func candidateFingerprint(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestBuildNodeCandidatesInternedEquivalence: count-weighted shape
// observation plus per-row value observation reproduces the plain
// per-row builder exactly — instances, label counts, kind tallies,
// int bounds, and distinct-string tracking included.
func TestBuildNodeCandidatesInternedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := pg.NewGraph()
	labels := [][]string{{"A"}, {"A", "B"}, {"C"}, nil}
	for i := 0; i < 300; i++ {
		props := map[string]pg.Value{}
		if i%2 == 0 {
			props["x"] = pg.Int(int64(rng.Intn(50)))
		}
		if i%3 == 0 {
			props["s"] = pg.Str([]string{"a", "b", "c"}[rng.Intn(3)])
		}
		if i%5 == 0 {
			props["free"] = pg.Str(string(rune('a' + rng.Intn(26))))
		}
		g.AddNode(labels[rng.Intn(len(labels))], props)
	}
	nodes := g.Nodes()
	si := pg.NewShapeCache().IndexNodes(nodes)

	// Cluster shapes arbitrarily but deterministically into k groups.
	k := 5
	shapeAssign := make([]int, si.NumShapes())
	for s := range shapeAssign {
		shapeAssign[s] = s % k
	}
	rowAssign := make([]int, len(nodes))
	for i, s := range si.Rows {
		rowAssign[i] = shapeAssign[s]
	}

	plain := BuildNodeCandidates(nodes, rowAssign, k)
	interned := BuildNodeCandidatesInterned(nodes, si, shapeAssign, k)
	for i := range plain {
		a := candidateFingerprint(t, plain[i])
		b := candidateFingerprint(t, interned[i])
		if a != b {
			t.Errorf("candidate %d differs:\nplain    %s\ninterned %s", i, a, b)
		}
	}
}

// TestBuildEdgeCandidatesInternedEquivalence mirrors the node test,
// additionally covering endpoint tokens and per-endpoint degrees.
func TestBuildEdgeCandidatesInternedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := pg.NewGraph()
	var ids []pg.ID
	for i := 0; i < 30; i++ {
		ids = append(ids, g.AddNode([]string{"N"}, nil))
	}
	toks := []string{"N", "M", ""}
	var srcToks, dstToks []string
	for i := 0; i < 400; i++ {
		props := map[string]pg.Value{}
		if i%2 == 0 {
			props["w"] = pg.Float(rng.Float64())
		}
		lab := [][]string{{"R"}, {"S"}, nil}[rng.Intn(3)]
		if _, err := g.AddEdge(lab, ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))], props); err != nil {
			t.Fatal(err)
		}
		srcToks = append(srcToks, toks[rng.Intn(len(toks))])
		dstToks = append(dstToks, toks[rng.Intn(len(toks))])
	}
	edges := g.Edges()
	si := pg.NewShapeCache().IndexEdges(edges, srcToks, dstToks)

	k := 4
	shapeAssign := make([]int, si.NumShapes())
	for s := range shapeAssign {
		shapeAssign[s] = s % k
	}
	rowAssign := make([]int, len(edges))
	for i, s := range si.Rows {
		rowAssign[i] = shapeAssign[s]
	}

	plain := BuildEdgeCandidates(edges, rowAssign, k, srcToks, dstToks)
	interned := BuildEdgeCandidatesInterned(edges, si, shapeAssign, k, srcToks, dstToks, 30)
	for i := range plain {
		a := candidateFingerprint(t, plain[i])
		b := candidateFingerprint(t, interned[i])
		if a != b {
			t.Errorf("candidate %d differs:\nplain    %s\ninterned %s", i, a, b)
		}
	}
}
