package schema

// merge.go implements Algorithm 2 (extracting and merging types) and
// the schema-merge rules of §4.6. Both are monotone: merging only
// unions labels, properties and endpoints (Lemmas 1 and 2), so a
// schema can only generalize as batches arrive (S_i ⊑ S_{i+1}).

// DefaultTheta is the Jaccard similarity threshold θ used by the
// paper for merging unlabeled clusters (§4.3: "we set θ = 0.9"; a
// high threshold avoids over-merging).
const DefaultTheta = 0.9

// Jaccard computes |A∩B| / |A∪B| over string sets. Two empty sets are
// defined as identical (similarity 1): structurally there is nothing
// to distinguish them.
func Jaccard(a, b map[string]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for k := range a {
		if b[k] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// propKeySet extracts the property-key set of a type for Jaccard
// comparison.
func propKeySet(t *Type) map[string]bool {
	s := make(map[string]bool, len(t.Props))
	for k := range t.Props {
		s[k] = true
	}
	return s
}

// edgeSimilaritySet extends an edge type's property keys with its
// endpoint tokens. The paper compares unlabeled clusters by property
// Jaccard; for edges the endpoint labels are part of the pattern
// (Def. 3.6), so including them (namespaced) prevents structurally
// bare edges between different endpoint types from collapsing when
// partial label information is available.
func edgeSimilaritySet(t *EdgeType) map[string]bool {
	s := propKeySet(&t.Type)
	for k := range t.SrcTokens {
		s["\x00src:"+k] = true
	}
	for k := range t.DstTokens {
		s["\x00dst:"+k] = true
	}
	return s
}

// ExtractNodeTypes merges candidate node types into the schema per
// Algorithm 2 and returns, for each candidate (cluster) index, the
// schema type the cluster ended up in. theta ≤ 0 selects
// DefaultTheta.
func (s *Schema) ExtractNodeTypes(cands []*NodeType, theta float64) []*NodeType {
	if theta <= 0 {
		theta = DefaultTheta
	}
	result := make([]*NodeType, len(cands))

	// Pass 1 — labeled clusters: merge into the type with the same
	// label set, or append as a new labeled type (Alg. 2 lines 2–7).
	var unlabeled []int
	for i, c := range cands {
		if c.Instances == 0 {
			continue
		}
		if c.Token == "" {
			unlabeled = append(unlabeled, i)
			continue
		}
		if t := s.byNodeToken[c.Token]; t != nil {
			t.mergeCore(&c.Type)
			result[i] = t
		} else {
			s.addNodeType(c)
			result[i] = c
		}
	}

	// Pass 2 — unlabeled clusters vs labeled types: merge into the
	// best labeled type with property Jaccard ≥ θ (lines 8–11).
	var stillUnlabeled []int
	for _, i := range unlabeled {
		c := cands[i]
		cs := propKeySet(&c.Type)
		var best *NodeType
		bestJ := theta
		for _, t := range s.NodeTypes {
			if t.Abstract {
				continue
			}
			if j := Jaccard(cs, propKeySet(&t.Type)); j >= bestJ {
				// Strictly-greater keeps the first best on ties, so
				// extraction order (cluster ID) is deterministic.
				if best == nil || j > bestJ {
					best, bestJ = t, j
				}
			}
		}
		if best != nil {
			best.mergeCore(&c.Type)
			result[i] = best
		} else {
			stillUnlabeled = append(stillUnlabeled, i)
		}
	}

	// Pass 3 — unlabeled vs unlabeled (lines 12–14): merge with an
	// existing ABSTRACT type (incremental case) or with an earlier
	// still-unlabeled candidate of this batch; what remains becomes a
	// new ABSTRACT type.
	for _, i := range stillUnlabeled {
		c := cands[i]
		cs := propKeySet(&c.Type)
		var best *NodeType
		bestJ := theta
		for _, t := range s.NodeTypes {
			if !t.Abstract {
				continue
			}
			if j := Jaccard(cs, propKeySet(&t.Type)); j >= bestJ {
				if best == nil || j > bestJ {
					best, bestJ = t, j
				}
			}
		}
		if best != nil {
			best.mergeCore(&c.Type)
			result[i] = best
		} else {
			c.Abstract = true
			s.addNodeType(c)
			result[i] = c
		}
	}
	return result
}

// endpointsCompatible reports whether two same-label edge types may be
// one type: on both sides, the endpoint token sets overlap or one of
// them lacks evidence entirely. Requiring both sides keeps label
// reuses with a shared single endpoint (LDBC's HAS_CREATOR from Post
// and from Comment) apart, matching how the evaluated datasets define
// same-label types (Table 2 reports more edge types than labels).
func endpointsCompatible(a, b *EdgeType) bool {
	overlap := func(x, y map[string]bool) bool {
		if len(x) == 0 || len(y) == 0 {
			return true
		}
		for k := range x {
			if y[k] {
				return true
			}
		}
		return false
	}
	return overlap(a.SrcTokens, b.SrcTokens) && overlap(a.DstTokens, b.DstTokens)
}

// ExtractEdgeTypes merges candidate edge types into the schema. Per
// §4.3 ("Edges: we merge edges only by label"), labeled edge clusters
// merge by label-token equality — refined by endpoint compatibility —
// accumulating the endpoint sets that define the connectivity ρ_s;
// unlabeled edge clusters fall back to Jaccard over properties plus
// endpoint tokens.
func (s *Schema) ExtractEdgeTypes(cands []*EdgeType, theta float64) []*EdgeType {
	if theta <= 0 {
		theta = DefaultTheta
	}
	result := make([]*EdgeType, len(cands))

	var unlabeled []int
	for i, c := range cands {
		if c.Instances == 0 {
			continue
		}
		if c.Token == "" {
			unlabeled = append(unlabeled, i)
			continue
		}
		// Same-label clusters merge when their endpoint evidence is
		// compatible: source or target token sets overlap, or one side
		// has no evidence. This unifies same-label patterns with
		// shared endpoints (Fig. 1's LOCATED_IN) while keeping
		// endpoint-disjoint reuses of a label as distinct types
		// (Table 2 datasets with more edge types than edge labels).
		var target *EdgeType
		for _, t := range s.byEdgeToken[c.Token] {
			if endpointsCompatible(c, t) {
				target = t
				break
			}
		}
		if target != nil {
			target.mergeEdge(c)
			result[i] = target
		} else {
			s.addEdgeType(c)
			result[i] = c
		}
	}

	var stillUnlabeled []int
	for _, i := range unlabeled {
		c := cands[i]
		cs := edgeSimilaritySet(c)
		var best *EdgeType
		bestJ := theta
		for _, t := range s.EdgeTypes {
			if t.Abstract {
				continue
			}
			if j := Jaccard(cs, edgeSimilaritySet(t)); j >= bestJ {
				if best == nil || j > bestJ {
					best, bestJ = t, j
				}
			}
		}
		if best != nil {
			best.mergeEdge(c)
			result[i] = best
		} else {
			stillUnlabeled = append(stillUnlabeled, i)
		}
	}

	for _, i := range stillUnlabeled {
		c := cands[i]
		cs := edgeSimilaritySet(c)
		var best *EdgeType
		bestJ := theta
		for _, t := range s.EdgeTypes {
			if !t.Abstract {
				continue
			}
			if j := Jaccard(cs, edgeSimilaritySet(t)); j >= bestJ {
				if best == nil || j > bestJ {
					best, bestJ = t, j
				}
			}
		}
		if best != nil {
			best.mergeEdge(c)
			result[i] = best
		} else {
			c.Abstract = true
			s.addEdgeType(c)
			result[i] = c
		}
	}
	return result
}

// AppendNodeTypes adds every non-empty candidate as its own type with
// no merging at all. It exists for the merge-step ablation (§4.3
// credits cluster refinement to Algorithm 2; this is the "off"
// switch) and returns the per-candidate type mapping like
// ExtractNodeTypes.
func (s *Schema) AppendNodeTypes(cands []*NodeType) []*NodeType {
	result := make([]*NodeType, len(cands))
	for i, c := range cands {
		if c.Instances == 0 {
			continue
		}
		c.Abstract = c.Token == ""
		// Bypass the token index: duplicates are expected here.
		c.ID = s.nextID
		s.nextID++
		s.NodeTypes = append(s.NodeTypes, c)
		result[i] = c
	}
	return result
}

// AppendEdgeTypes is the edge counterpart of AppendNodeTypes.
func (s *Schema) AppendEdgeTypes(cands []*EdgeType) []*EdgeType {
	result := make([]*EdgeType, len(cands))
	for i, c := range cands {
		if c.Instances == 0 {
			continue
		}
		c.Abstract = c.Token == ""
		c.ID = s.nextID
		s.nextID++
		s.EdgeTypes = append(s.EdgeTypes, c)
		result[i] = c
	}
	return result
}

// UnifyNodeTypes merges src into dst (union of labels, properties and
// instance counts per Lemma 1) and removes src from the schema. It is
// the primitive behind label alignment (integration scenarios where
// distinct labels denote one conceptual entity, §6 future work). dst
// keeps its ID and token; src's token is re-indexed to dst so later
// batches carrying src's label set merge into the unified type.
func (s *Schema) UnifyNodeTypes(dst, src *NodeType) {
	if dst == src {
		return
	}
	dst.mergeCore(&src.Type)
	if src.Token != "" && s.byNodeToken[src.Token] == src {
		s.byNodeToken[src.Token] = dst
	}
	for i, nt := range s.NodeTypes {
		if nt == src {
			s.NodeTypes = append(s.NodeTypes[:i], s.NodeTypes[i+1:]...)
			break
		}
	}
}

// UnifyEdgeTypes merges src into dst and removes src, the edge
// counterpart of UnifyNodeTypes.
func (s *Schema) UnifyEdgeTypes(dst, src *EdgeType) {
	if dst == src {
		return
	}
	dst.mergeEdge(src)
	if src.Token != "" {
		list := s.byEdgeToken[src.Token]
		for i, et := range list {
			if et == src {
				list[i] = dst
				break
			}
		}
		s.byEdgeToken[src.Token] = dedupEdgeTypes(list)
	}
	for i, et := range s.EdgeTypes {
		if et == src {
			s.EdgeTypes = append(s.EdgeTypes[:i], s.EdgeTypes[i+1:]...)
			break
		}
	}
}

func dedupEdgeTypes(list []*EdgeType) []*EdgeType {
	seen := map[*EdgeType]bool{}
	out := list[:0]
	for _, et := range list {
		if !seen[et] {
			seen[et] = true
			out = append(out, et)
		}
	}
	return out
}

// Merge folds another schema into s per the §4.6 merge rules: node
// types unify by label set, then unlabeled against labeled, then
// unlabeled against unlabeled; edge types merge by label; properties
// union. The result is the least general schema covering both inputs
// (monotone by Lemmas 1 and 2). It returns a mapping from o's types
// to the types of s they were merged into, so callers holding
// assignments into o can rewrite them.
func (s *Schema) Merge(o *Schema, theta float64) (map[*NodeType]*NodeType, map[*EdgeType]*EdgeType) {
	nodeCands := make([]*NodeType, len(o.NodeTypes))
	copy(nodeCands, o.NodeTypes)
	edgeCands := make([]*EdgeType, len(o.EdgeTypes))
	copy(edgeCands, o.EdgeTypes)

	nres := s.ExtractNodeTypes(nodeCands, theta)
	eres := s.ExtractEdgeTypes(edgeCands, theta)

	nmap := make(map[*NodeType]*NodeType, len(nodeCands))
	for i, c := range nodeCands {
		if nres[i] != nil {
			nmap[c] = nres[i]
		}
	}
	emap := make(map[*EdgeType]*EdgeType, len(edgeCands))
	for i, c := range edgeCands {
		if eres[i] != nil {
			emap[c] = eres[i]
		}
	}
	return nmap, emap
}
