package schema

// patch.go diffs two serialized schemas (WriteJSON output) into a
// structural patch and applies it back. The schema blob is the one
// image scalar that is NOT O(types): each edge type carries per-node
// degree tallies (SrcDeg/DstDeg) powering §4.4 cardinality inference,
// so the blob grows with the database. Carrying it whole in every
// delta run would make compaction IO proportional to database size —
// exactly what the run layout exists to avoid — so the patch diffs
// the degree maps key-wise and re-emits only each type's bounded
// "head" (labels, props, tokens, counters) when it changed.
//
// Exactness contract: ApplyPatchJSON(old, DiffJSON(old, new))
// re-serializes to JSON that is value-identical to new — byte-equal
// once both pass through image serialization, which compacts embedded
// raw messages. DiffJSON verifies that equivalence on every call and
// falls back to carrying the new schema whole (a "replace" patch)
// whenever the inputs resist structural diffing: unknown versions,
// duplicate type IDs, round-trip-lossy bytes. The fallback degrades
// to the old behavior, never to a wrong schema.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"slices"
)

// patchVersion is the schema-patch format version.
const patchVersion = 1

// jsonTypePatch carries one type's change. Head is the full type with
// the degree maps stripped — O(labels + props), re-emitted whole when
// any of it changed or the type is new. The degree maps themselves
// travel as key-wise upserts and deletions.
type jsonTypePatch struct {
	ID        int            `json:"id"`
	Head      *jsonType      `json:"head,omitempty"`
	SrcDegSet map[string]int `json:"srcDegSet,omitempty"`
	SrcDegDel []string       `json:"srcDegDel,omitempty"`
	DstDegSet map[string]int `json:"dstDegSet,omitempty"`
	DstDegDel []string       `json:"dstDegDel,omitempty"`
}

type jsonSchemaPatch struct {
	Version int `json:"version"`
	// Replace, when set, is the whole new schema and the rest of the
	// patch is empty: the structural-diff fallback.
	Replace json.RawMessage `json:"replace,omitempty"`
	// NodeIDs / EdgeIDs are the new schema's complete type-ID lists in
	// order — membership and order are authoritative, so dropped types
	// (merged away) need no tombstone entries.
	NodeIDs   []int           `json:"nodeIDs,omitempty"`
	EdgeIDs   []int           `json:"edgeIDs,omitempty"`
	NodeTypes []jsonTypePatch `json:"nodeTypes,omitempty"`
	EdgeTypes []jsonTypePatch `json:"edgeTypes,omitempty"`
}

// DiffJSON computes a patch transforming the old serialized schema
// into the new one. It never fails on strange input: anything that
// cannot be diffed structurally yields a replace patch carrying new
// verbatim. The returned bytes are a self-contained JSON document for
// a delta-run payload.
func DiffJSON(old, new []byte) ([]byte, error) {
	replace := func() ([]byte, error) {
		return json.Marshal(&jsonSchemaPatch{Version: patchVersion, Replace: append(json.RawMessage(nil), new...)})
	}
	oldJS, ok := decodePatchable(old)
	if !ok {
		return replace()
	}
	newJS, ok := decodePatchable(new)
	if !ok {
		return replace()
	}
	// Reject bytes the jsonSchema round trip would lose (unknown
	// fields from a future writer): the patch applier re-marshals, so
	// it can only promise exactness for bytes it fully models.
	if !compactEqual(new, mustMarshal(newJS)) {
		return replace()
	}

	p := &jsonSchemaPatch{Version: patchVersion}
	p.NodeIDs, p.NodeTypes, ok = diffTypes(oldJS.NodeTypes, newJS.NodeTypes)
	if !ok {
		return replace()
	}
	p.EdgeIDs, p.EdgeTypes, ok = diffTypes(oldJS.EdgeTypes, newJS.EdgeTypes)
	if !ok {
		return replace()
	}

	// Prove the patch reconstructs the new schema before trusting it
	// with recovery: a diff bug must surface here, at compaction time,
	// as a silent fallback to the always-correct replace form.
	applied, err := applyPatchValue(oldJS, p)
	if err != nil || !reflect.DeepEqual(mustMarshal(applied), mustMarshal(newJS)) {
		return replace()
	}
	return json.Marshal(p)
}

// ApplyPatchJSON applies a DiffJSON patch to the old serialized
// schema, returning the new schema in compact form (value-identical
// to the schema the patch was diffed against).
func ApplyPatchJSON(old []byte, patch []byte) ([]byte, error) {
	var p jsonSchemaPatch
	if err := json.Unmarshal(patch, &p); err != nil {
		return nil, fmt.Errorf("schema: patch: %w", err)
	}
	if p.Version != patchVersion {
		return nil, fmt.Errorf("schema: patch: unsupported version %d", p.Version)
	}
	if p.Replace != nil {
		return append([]byte(nil), p.Replace...), nil
	}
	oldJS, ok := decodePatchable(old)
	if !ok {
		return nil, fmt.Errorf("schema: patch: base schema is not patchable")
	}
	applied, err := applyPatchValue(oldJS, &p)
	if err != nil {
		return nil, err
	}
	return json.Marshal(applied)
}

// decodePatchable parses data into the jsonSchema model, reporting
// whether structural patching is safe: known version, unique type IDs.
func decodePatchable(data []byte) (*jsonSchema, bool) {
	var js jsonSchema
	if err := json.Unmarshal(data, &js); err != nil {
		return nil, false
	}
	if js.Version != persistVersion {
		return nil, false
	}
	for _, side := range [][]jsonType{js.NodeTypes, js.EdgeTypes} {
		seen := make(map[int]bool, len(side))
		for _, t := range side {
			if seen[t.ID] {
				return nil, false
			}
			seen[t.ID] = true
		}
	}
	return &js, true
}

// headOf strips the degree maps: the bounded part of a type that is
// compared (and, on change, re-emitted) as a unit.
func headOf(t jsonType) jsonType {
	t.SrcDeg, t.DstDeg = nil, nil
	return t
}

func diffTypes(old, new []jsonType) (ids []int, patches []jsonTypePatch, ok bool) {
	byID := make(map[int]*jsonType, len(old))
	for i := range old {
		byID[old[i].ID] = &old[i]
	}
	for i := range new {
		nt := &new[i]
		ids = append(ids, nt.ID)
		ot := byID[nt.ID]
		if ot == nil {
			head := headOf(*nt)
			patches = append(patches, jsonTypePatch{
				ID:        nt.ID,
				Head:      &head,
				SrcDegSet: nt.SrcDeg,
				DstDegSet: nt.DstDeg,
			})
			continue
		}
		tp := jsonTypePatch{ID: nt.ID}
		changed := false
		if oh, nh := headOf(*ot), headOf(*nt); !reflect.DeepEqual(oh, nh) {
			tp.Head = &nh
			changed = true
		}
		tp.SrcDegSet, tp.SrcDegDel = diffDeg(ot.SrcDeg, nt.SrcDeg)
		tp.DstDegSet, tp.DstDegDel = diffDeg(ot.DstDeg, nt.DstDeg)
		if changed || tp.SrcDegSet != nil || tp.SrcDegDel != nil || tp.DstDegSet != nil || tp.DstDegDel != nil {
			patches = append(patches, tp)
		}
	}
	return ids, patches, true
}

func diffDeg(old, new map[string]int) (set map[string]int, del []string) {
	for k, v := range new {
		if ov, ok := old[k]; !ok || ov != v {
			if set == nil {
				set = map[string]int{}
			}
			set[k] = v
		}
	}
	for k := range old {
		if _, ok := new[k]; !ok {
			del = append(del, k)
		}
	}
	slices.Sort(del)
	return set, del
}

func applyPatchValue(old *jsonSchema, p *jsonSchemaPatch) (*jsonSchema, error) {
	out := &jsonSchema{Version: persistVersion}
	var err error
	if out.NodeTypes, err = applyTypes(old.NodeTypes, p.NodeIDs, p.NodeTypes, "node"); err != nil {
		return nil, err
	}
	if out.EdgeTypes, err = applyTypes(old.EdgeTypes, p.EdgeIDs, p.EdgeTypes, "edge"); err != nil {
		return nil, err
	}
	return out, nil
}

func applyTypes(old []jsonType, ids []int, patches []jsonTypePatch, kind string) ([]jsonType, error) {
	byID := make(map[int]*jsonType, len(old))
	for i := range old {
		byID[old[i].ID] = &old[i]
	}
	patchByID := make(map[int]*jsonTypePatch, len(patches))
	for i := range patches {
		patchByID[patches[i].ID] = &patches[i]
	}
	var out []jsonType
	for _, id := range ids {
		ot, tp := byID[id], patchByID[id]
		var t jsonType
		switch {
		case ot == nil && (tp == nil || tp.Head == nil):
			return nil, fmt.Errorf("schema: patch: new %s type %d has no head", kind, id)
		case ot == nil:
			t = *tp.Head
		case tp == nil:
			t = *ot
		case tp.Head != nil:
			t = *tp.Head
			t.SrcDeg, t.DstDeg = ot.SrcDeg, ot.DstDeg
		default:
			t = *ot
		}
		if tp != nil {
			t.SrcDeg = applyDeg(t.SrcDeg, tp.SrcDegSet, tp.SrcDegDel)
			t.DstDeg = applyDeg(t.DstDeg, tp.DstDegSet, tp.DstDegDel)
		}
		out = append(out, t)
	}
	return out, nil
}

func applyDeg(old, set map[string]int, del []string) map[string]int {
	if set == nil && del == nil {
		return old
	}
	m := make(map[string]int, len(old)+len(set))
	for k, v := range old {
		m[k] = v
	}
	for k, v := range set {
		m[k] = v
	}
	for _, k := range del {
		delete(m, k)
	}
	if len(m) == 0 {
		return nil // canonical: degToJSON emits nil for empty
	}
	return m
}

func mustMarshal(js *jsonSchema) []byte {
	b, err := json.Marshal(js)
	if err != nil {
		// jsonSchema holds only marshalable concrete types.
		panic(fmt.Sprintf("schema: marshal: %v", err))
	}
	return b
}

// compactEqual reports whether a and b are the same JSON document
// modulo whitespace (WriteJSON indents; patches compare compact).
func compactEqual(a, b []byte) bool {
	var ca, cb bytes.Buffer
	if err := json.Compact(&ca, a); err != nil {
		return false
	}
	if err := json.Compact(&cb, b); err != nil {
		return false
	}
	return bytes.Equal(ca.Bytes(), cb.Bytes())
}
