package schema

// FuzzReadSchemaJSON hardens the checkpoint/persistence read path
// against corrupt input: whatever bytes arrive (truncated downloads,
// hand-edited checkpoints, bit rot), ReadJSON must never panic, and
// any input it does accept must reach a write→read→write fixpoint —
// the re-serialized schema reads back and serializes identically, so
// a restored-and-resaved checkpoint never drifts.

import (
	"bytes"
	"testing"

	"github.com/pghive/pghive/internal/pg"
)

// fuzzSeedSchema is a small but feature-complete valid schema image.
func fuzzSeedSchema() []byte {
	s := New()
	nt := NewNodeCandidate()
	nt.Token = "Person"
	nt.Labels["Person"] = 3
	nt.Instances = 3
	nt.Props["name"] = &PropStat{Count: 3, Mandatory: true, DataType: pg.KindString,
		Distinct: map[string]int{"ann": 2, "bob": 1}}
	nt.Props["age"] = &PropStat{Count: 2, MinInt: 1, MaxInt: 9, HasIntRange: true, DataType: pg.KindInt}
	nt.Props["bio"] = &PropStat{Count: 1, DistinctOverflow: true, DataType: pg.KindString}
	ab := NewNodeCandidate()
	ab.Abstract = true
	ab.Instances = 1
	s.AppendNodeTypes([]*NodeType{nt, ab})
	et := NewEdgeCandidate()
	et.Token = "KNOWS"
	et.Labels["KNOWS"] = 2
	et.Instances = 2
	et.SrcTokens["Person"] = true
	et.DstTokens["Person"] = true
	et.SrcDeg[pg.ID(1)] = 2
	et.DstDeg[pg.ID(2)] = 1
	et.Cardinality = CardManyToOne
	s.AppendEdgeTypes([]*EdgeType{et})
	var buf bytes.Buffer
	if err := WriteJSON(&buf, s); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func FuzzReadSchemaJSON(f *testing.F) {
	f.Add(fuzzSeedSchema())
	f.Add([]byte(`{"version":1,"nodeTypes":[],"edgeTypes":[]}`))
	f.Add([]byte(`{"version":1,"nodeTypes":null,"edgeTypes":null}`))
	// Corrupt variants: wrong version, oversized kind tally, malformed
	// degree key, truncation, type garbage.
	f.Add([]byte(`{"version":99}`))
	f.Add([]byte(`{"version":1,"nodeTypes":[{"id":0,"instances":1,"props":{"p":{"count":1,"kinds":[1,2,3,4,5,6,7,8]}}}]}`))
	f.Add([]byte(`{"version":1,"edgeTypes":[{"id":0,"instances":1,"srcDeg":{"not-a-number":3}}]}`))
	f.Add([]byte(`{"version":1,"nodeTypes":[{"id":`))
	f.Add([]byte(`{"version":1,"nodeTypes":[{"id":-5,"token":"T","labels":{"":0},"instances":-1}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return // rejected input: only the no-panic property applies
		}
		var first bytes.Buffer
		if err := WriteJSON(&first, s); err != nil {
			t.Fatalf("accepted schema failed to serialize: %v", err)
		}
		s2, err := ReadJSON(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("own serialization rejected on read-back: %v", err)
		}
		var second bytes.Buffer
		if err := WriteJSON(&second, s2); err != nil {
			t.Fatalf("re-read schema failed to serialize: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("write→read→write not a fixpoint:\nfirst:  %s\nsecond: %s", first.Bytes(), second.Bytes())
		}
	})
}
