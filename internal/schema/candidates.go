package schema

import "github.com/pghive/pghive/internal/pg"

// BuildNodeCandidates turns an LSH clustering of nodes into candidate
// node types: one per cluster, carrying the cluster representative
// (§4.2 "Cluster representative": union of labels and properties over
// the cluster's instances) plus the occurrence statistics the
// post-processing steps need. assign maps node index to cluster ID in
// [0, k).
func BuildNodeCandidates(nodes []pg.Node, assign []int, k int) []*NodeType {
	cands := make([]*NodeType, k)
	for i := range cands {
		cands[i] = NewNodeCandidate()
	}
	for row := range nodes {
		n := &nodes[row]
		cands[assign[row]].observe(n.Labels, n.Props)
	}
	for _, c := range cands {
		c.Token = pg.LabelToken(c.SortedLabels())
		c.Abstract = c.Token == ""
	}
	return cands
}

// BuildEdgeCandidates turns an LSH clustering of edges into candidate
// edge types. srcToks and dstToks carry the resolved endpoint label
// token per edge (aligned with edges); unresolvable endpoints are "".
func BuildEdgeCandidates(edges []pg.Edge, assign []int, k int, srcToks, dstToks []string) []*EdgeType {
	cands := make([]*EdgeType, k)
	for i := range cands {
		cands[i] = NewEdgeCandidate()
	}
	for row := range edges {
		e := &edges[row]
		c := cands[assign[row]]
		c.observe(e.Labels, e.Props)
		if srcToks[row] != "" {
			c.SrcTokens[srcToks[row]] = true
		}
		if dstToks[row] != "" {
			c.DstTokens[dstToks[row]] = true
		}
		c.SrcDeg[e.Src]++
		c.DstDeg[e.Dst]++
	}
	for _, c := range cands {
		c.Token = pg.LabelToken(c.SortedLabels())
		c.Abstract = c.Token == ""
	}
	return cands
}
