package schema

import "github.com/pghive/pghive/internal/pg"

// BuildNodeCandidates turns an LSH clustering of nodes into candidate
// node types: one per cluster, carrying the cluster representative
// (§4.2 "Cluster representative": union of labels and properties over
// the cluster's instances) plus the occurrence statistics the
// post-processing steps need. assign maps node index to cluster ID in
// [0, k).
func BuildNodeCandidates(nodes []pg.Node, assign []int, k int) []*NodeType {
	cands := make([]*NodeType, k)
	for i := range cands {
		cands[i] = NewNodeCandidate()
	}
	for row := range nodes {
		n := &nodes[row]
		cands[assign[row]].observe(n.Labels, n.Props)
	}
	for _, c := range cands {
		c.Token = pg.LabelToken(c.SortedLabels())
		c.Abstract = c.Token == ""
	}
	return cands
}

// BuildNodeCandidatesInterned is BuildNodeCandidates over a
// shape-interned clustering: assign maps shape ordinals (not rows) to
// clusters. Labels and instance tallies — which depend only on the
// shape — are added once per shape, weighted by its occurrence count;
// property values vary within a shape and are still observed per
// node, so every statistic is exactly what the non-interned builder
// produces.
func BuildNodeCandidatesInterned(nodes []pg.Node, si *pg.ShapeIndex, assign []int, k int) []*NodeType {
	cands := make([]*NodeType, k)
	for i := range cands {
		cands[i] = NewNodeCandidate()
	}
	obs := buildShapeObservers(si, func(s int) (*Type, []string) {
		return &cands[assign[s]].Type, nodes[si.Reps[s]].PropertyKeys()
	}, func(s int) []string { return nodes[si.Reps[s]].Labels })
	for row := range nodes {
		obs[si.Rows[row]].observeRow(nodes[row].Props)
	}
	for _, c := range cands {
		c.Token = pg.LabelToken(c.SortedLabels())
		c.Abstract = c.Token == ""
	}
	return cands
}

// shapeObserver pre-resolves, per shape, the candidate's PropStat for
// each of the shape's property keys, so observing a row costs one map
// access per key instead of a map iteration plus a candidate-props
// lookup per key.
type shapeObserver struct {
	keys  []string
	stats []*PropStat
}

// observeRow folds one row's property values into the pre-resolved
// stats. Every key is present: rows of a shape share its exact
// property-key set.
func (o *shapeObserver) observeRow(props map[string]pg.Value) {
	for j, k := range o.keys {
		o.stats[j].observeValue(props[k])
	}
}

// buildShapeObservers runs the shape-level (count-weighted) label
// observation and builds the per-shape property observers.
func buildShapeObservers(si *pg.ShapeIndex, target func(s int) (*Type, []string), labels func(s int) []string) []shapeObserver {
	obs := make([]shapeObserver, si.NumShapes())
	for s := range obs {
		t, keys := target(s)
		t.observeShape(labels(s), int(si.Counts[s]))
		stats := make([]*PropStat, len(keys))
		for j, k := range keys {
			ps := t.Props[k]
			if ps == nil {
				ps = &PropStat{}
				t.Props[k] = ps
			}
			stats[j] = ps
		}
		obs[s] = shapeObserver{keys: keys, stats: stats}
	}
	return obs
}

// BuildEdgeCandidates turns an LSH clustering of edges into candidate
// edge types. srcToks and dstToks carry the resolved endpoint label
// token per edge (aligned with edges); unresolvable endpoints are "".
func BuildEdgeCandidates(edges []pg.Edge, assign []int, k int, srcToks, dstToks []string) []*EdgeType {
	cands := make([]*EdgeType, k)
	for i := range cands {
		cands[i] = NewEdgeCandidate()
	}
	for row := range edges {
		e := &edges[row]
		c := cands[assign[row]]
		c.observe(e.Labels, e.Props)
		if srcToks[row] != "" {
			c.SrcTokens[srcToks[row]] = true
		}
		if dstToks[row] != "" {
			c.DstTokens[dstToks[row]] = true
		}
		c.SrcDeg[e.Src]++
		c.DstDeg[e.Dst]++
	}
	for _, c := range cands {
		c.Token = pg.LabelToken(c.SortedLabels())
		c.Abstract = c.Token == ""
	}
	return cands
}

// BuildEdgeCandidatesInterned is BuildEdgeCandidates over a
// shape-interned clustering: assign maps shape ordinals to clusters.
// Labels, instance counts and endpoint tokens are shape-determined
// and added once per shape (counts weighted); property values and
// per-endpoint degrees vary within a shape and are observed per edge.
// maxEndpoints caps the degree-map presizing at the number of known
// node IDs, so hub-heavy clusters (many edges, few endpoints) do not
// over-allocate.
func BuildEdgeCandidatesInterned(edges []pg.Edge, si *pg.ShapeIndex, assign []int, k int, srcToks, dstToks []string, maxEndpoints int) []*EdgeType {
	cands := make([]*EdgeType, k)
	for i := range cands {
		cands[i] = NewEdgeCandidate()
	}
	// Shape counts bound each candidate's edge total — and distinct
	// endpoints are additionally bounded by maxEndpoints — so the
	// degree maps can be presized once instead of growing through a
	// dozen rehashes while the per-row loop fills them.
	totals := make([]int, k)
	for s := range si.Reps {
		totals[assign[s]] += int(si.Counts[s])
	}
	for i, c := range cands {
		hint := totals[i]
		if maxEndpoints > 0 && hint > maxEndpoints {
			hint = maxEndpoints
		}
		if hint > 0 {
			c.SrcDeg = make(map[pg.ID]int, hint)
			c.DstDeg = make(map[pg.ID]int, hint)
		}
	}
	obs := buildShapeObservers(si, func(s int) (*Type, []string) {
		return &cands[assign[s]].Type, edges[si.Reps[s]].PropertyKeys()
	}, func(s int) []string { return edges[si.Reps[s]].Labels })
	for s, rep := range si.Reps {
		c := cands[assign[s]]
		if srcToks[rep] != "" {
			c.SrcTokens[srcToks[rep]] = true
		}
		if dstToks[rep] != "" {
			c.DstTokens[dstToks[rep]] = true
		}
	}
	// Per-endpoint degrees vary within a shape, so they stay per edge,
	// but the candidate itself resolves through the shape ordinal.
	for row := range edges {
		e := &edges[row]
		obs[si.Rows[row]].observeRow(e.Props)
		c := cands[assign[si.Rows[row]]]
		c.SrcDeg[e.Src]++
		c.DstDeg[e.Dst]++
	}
	for _, c := range cands {
		c.Token = pg.LabelToken(c.SortedLabels())
		c.Abstract = c.Token == ""
	}
	return cands
}
