package schema

// retract.go implements deletion support — the paper's §4.6 leaves
// "handling updates and deletions" as future work, but because every
// type statistic in this implementation is an additive tally
// (instance counts, per-property counts and kind tallies, distinct
// string values, endpoint degrees), retracting an element is exact:
// subtract what observation added. Two approximations remain, both
// sound over-approximations: integer min/max bounds are not tightened
// (they stay valid upper/lower envelopes), and endpoint token sets
// keep tokens whose last witness was deleted.

import "github.com/pghive/pghive/internal/pg"

// retractValue reverses observeValue for one concrete value.
func (s *PropStat) retractValue(v pg.Value) {
	s.Count--
	s.Kinds[v.Kind()]--
	if v.Kind() == pg.KindString && !s.DistinctOverflow && s.Distinct != nil {
		sv := v.AsString()
		if s.Distinct[sv] > 0 {
			s.Distinct[sv]--
			if s.Distinct[sv] == 0 {
				delete(s.Distinct, sv)
			}
		}
		// Release the tracker when its last value goes: persistence
		// canonicalizes an empty tracker to "absent" (omitempty), so
		// keeping an empty map here would make the in-memory state
		// diverge from its own checkpoint round trip.
		if len(s.Distinct) == 0 {
			s.Distinct = nil
		}
	}
}

// Retract reverses one observation of an instance with the given
// labels and properties. The caller must pass the same labels and
// property values the instance carried when it was merged in;
// retracting data that was never observed corrupts the statistics.
func (t *Type) Retract(labels []string, props map[string]pg.Value) {
	t.Instances--
	for _, l := range labels {
		if t.Labels[l] > 0 {
			t.Labels[l]--
			if t.Labels[l] == 0 {
				delete(t.Labels, l)
			}
		}
	}
	for k, v := range props {
		ps := t.Props[k]
		if ps == nil {
			continue
		}
		ps.retractValue(v)
		if ps.Count <= 0 {
			delete(t.Props, k)
		}
	}
}

// RetractEdge reverses one edge observation, including the degree
// evidence of its endpoints.
func (t *EdgeType) RetractEdge(labels []string, props map[string]pg.Value, src, dst pg.ID) {
	t.Retract(labels, props)
	if t.SrcDeg[src] > 0 {
		t.SrcDeg[src]--
		if t.SrcDeg[src] == 0 {
			delete(t.SrcDeg, src)
		}
	}
	if t.DstDeg[dst] > 0 {
		t.DstDeg[dst]--
		if t.DstDeg[dst] == 0 {
			delete(t.DstDeg, dst)
		}
	}
}

// Compact removes node and edge types whose instance count reached
// zero, cleaning the token indexes. It returns the removed types.
func (s *Schema) Compact() (removedNodes []*NodeType, removedEdges []*EdgeType) {
	keptN := s.NodeTypes[:0]
	for _, nt := range s.NodeTypes {
		if nt.Instances > 0 {
			keptN = append(keptN, nt)
			continue
		}
		removedNodes = append(removedNodes, nt)
		if nt.Token != "" && s.byNodeToken[nt.Token] == nt {
			delete(s.byNodeToken, nt.Token)
		}
	}
	s.NodeTypes = keptN

	keptE := s.EdgeTypes[:0]
	for _, et := range s.EdgeTypes {
		if et.Instances > 0 {
			keptE = append(keptE, et)
			continue
		}
		removedEdges = append(removedEdges, et)
		if et.Token != "" {
			list := s.byEdgeToken[et.Token]
			for i, x := range list {
				if x == et {
					list = append(list[:i], list[i+1:]...)
					break
				}
			}
			if len(list) == 0 {
				delete(s.byEdgeToken, et.Token)
			} else {
				s.byEdgeToken[et.Token] = list
			}
		}
	}
	s.EdgeTypes = keptE
	return removedNodes, removedEdges
}
