package schema

// clone.go deep-copies schemas. The serving layer publishes an
// immutable snapshot of the evolving schema after every write batch
// (copy-on-publish), so concurrent readers never observe a
// half-merged schema; that requires a copy that shares no mutable
// state — maps, slices, or type pointers — with the original.

import "github.com/pghive/pghive/internal/pg"

// Clone returns a deep copy of the stat: no maps or slices are shared
// with the receiver.
func (s *PropStat) Clone() *PropStat {
	cp := *s
	if s.Distinct != nil {
		cp.Distinct = make(map[string]int, len(s.Distinct))
		for v, c := range s.Distinct {
			cp.Distinct[v] = c
		}
	}
	if s.Enum != nil {
		cp.Enum = append([]string(nil), s.Enum...)
	}
	return &cp
}

// cloneCore copies the shared Type core into dst.
func (t *Type) cloneCore(dst *Type) {
	*dst = *t
	dst.Labels = make(map[string]int, len(t.Labels))
	for l, c := range t.Labels {
		dst.Labels[l] = c
	}
	dst.Props = make(map[string]*PropStat, len(t.Props))
	for k, ps := range t.Props {
		dst.Props[k] = ps.Clone()
	}
}

// Clone returns a deep copy of the node type.
func (t *NodeType) Clone() *NodeType {
	cp := &NodeType{}
	t.Type.cloneCore(&cp.Type)
	return cp
}

// Clone returns a deep copy of the edge type.
func (t *EdgeType) Clone() *EdgeType {
	cp := &EdgeType{Cardinality: t.Cardinality}
	t.Type.cloneCore(&cp.Type)
	cp.SrcTokens = make(map[string]bool, len(t.SrcTokens))
	for k := range t.SrcTokens {
		cp.SrcTokens[k] = true
	}
	cp.DstTokens = make(map[string]bool, len(t.DstTokens))
	for k := range t.DstTokens {
		cp.DstTokens[k] = true
	}
	cp.SrcDeg = make(map[pg.ID]int, len(t.SrcDeg))
	for id, d := range t.SrcDeg {
		cp.SrcDeg[id] = d
	}
	cp.DstDeg = make(map[pg.ID]int, len(t.DstDeg))
	for id, d := range t.DstDeg {
		cp.DstDeg[id] = d
	}
	return cp
}

// Clone returns a deep copy of the schema: every type, statistic, and
// index is copied, and the ID counter carries over, so the copy can
// evolve (or be served) independently of the original.
func (s *Schema) Clone() *Schema {
	c := New()
	c.nextID = s.nextID
	c.NodeTypes = make([]*NodeType, len(s.NodeTypes))
	for i, nt := range s.NodeTypes {
		cp := nt.Clone()
		c.NodeTypes[i] = cp
		if cp.Token != "" {
			c.byNodeToken[cp.Token] = cp
		}
	}
	c.EdgeTypes = make([]*EdgeType, len(s.EdgeTypes))
	for i, et := range s.EdgeTypes {
		cp := et.Clone()
		c.EdgeTypes[i] = cp
		if cp.Token != "" {
			c.byEdgeToken[cp.Token] = append(c.byEdgeToken[cp.Token], cp)
		}
	}
	return c
}
