// Package schema implements the PG-Schema-style schema model of §3
// (node types, edge types, schema graph) and the type-extraction and
// monotone merging machinery of §4.3 and §4.6 (Algorithm 2).
//
// Types accumulate occurrence statistics (instance counts, per-property
// presence counts and value-kind tallies, endpoint degrees) as clusters
// merge into them, so that the post-processing inferences of §4.4
// (constraints, data types, cardinalities) can run at any point of an
// incremental discovery without revisiting earlier batches.
package schema

import (
	"fmt"
	"sort"

	"github.com/pghive/pghive/internal/pg"
)

// Cardinality classifies an edge type's source→target multiplicity
// (§4.4): the pair (max out-degree, max in-degree) is interpreted as
// 1:1, N:1, 1:N or M:N. Lower bounds are not determined (the paper
// leaves distinguishing 0 from 1 as future work).
type Cardinality uint8

const (
	// CardUnknown means cardinalities have not been computed.
	CardUnknown Cardinality = iota
	// CardOneToOne is (1, 1): each source connects to at most one
	// target and vice versa.
	CardOneToOne
	// CardManyToOne is (>1 in-degree): many sources per target... see
	// String for the paper's notation.
	CardManyToOne
	// CardOneToMany is (>1 out-degree).
	CardOneToMany
	// CardManyToMany is (>1, >1).
	CardManyToMany
)

// String renders the paper's notation.
func (c Cardinality) String() string {
	switch c {
	case CardOneToOne:
		return "1:1"
	case CardManyToOne:
		return "N:1"
	case CardOneToMany:
		return "1:N"
	case CardManyToMany:
		return "M:N"
	default:
		return "?"
	}
}

// EnumTrackLimit caps how many distinct string values a PropStat
// tracks; beyond it, the property is considered free-form and the
// tracker shuts off (DistinctOverflow).
const EnumTrackLimit = 16

// PropStat accumulates the evidence about one property key within one
// type: how many instances carry it, the tally of observed value
// kinds, integer bounds, and (up to a cap) the distinct string values.
// Mandatory, DataType, Enum and IntRange are filled in by the infer
// package.
type PropStat struct {
	// Count is the number of instances of the type that carry the key.
	Count int
	// Kinds tallies the dynamic kind of every observed value,
	// indexed by pg.Kind.
	Kinds [pg.KindString + 1]int
	// MinInt / MaxInt bound the observed integer values (valid when
	// Kinds[KindInt] > 0).
	MinInt, MaxInt int64
	// Distinct tracks distinct string values up to EnumTrackLimit;
	// DistinctOverflow is set once the limit is exceeded and Distinct
	// is released.
	Distinct         map[string]int
	DistinctOverflow bool

	// Mandatory is true when the property appears in every instance
	// (f_T(p) = 1, §4.4). Derived by infer.Finalize.
	Mandatory bool
	// DataType is the inferred property data type. Derived by
	// infer.Finalize.
	DataType pg.Kind
	// Enum holds the closed value set of an enumerated string
	// property (paper §4.4 future work), nil when not enumerated.
	// Derived by infer.Finalize.
	Enum []string
	// HasIntRange marks an integer property whose observed bounds
	// [MinInt, MaxInt] are reported as a range constraint. Derived by
	// infer.Finalize.
	HasIntRange bool
}

// observeValue folds one concrete value into the stat.
func (s *PropStat) observeValue(v pg.Value) {
	s.Count++
	s.Kinds[v.Kind()]++
	switch v.Kind() {
	case pg.KindInt:
		iv := v.AsInt()
		if s.Kinds[pg.KindInt] == 1 {
			s.MinInt, s.MaxInt = iv, iv
		} else {
			if iv < s.MinInt {
				s.MinInt = iv
			}
			if iv > s.MaxInt {
				s.MaxInt = iv
			}
		}
	case pg.KindString:
		if s.DistinctOverflow {
			return
		}
		if s.Distinct == nil {
			s.Distinct = map[string]int{}
		}
		s.Distinct[v.AsString()]++
		if len(s.Distinct) > EnumTrackLimit {
			s.Distinct = nil
			s.DistinctOverflow = true
		}
	}
}

// merge folds o's evidence into s.
func (s *PropStat) merge(o *PropStat) {
	hadInts := s.Kinds[pg.KindInt] > 0
	s.Count += o.Count
	for k := range o.Kinds {
		s.Kinds[k] += o.Kinds[k]
	}
	if o.Kinds[pg.KindInt] > 0 {
		if !hadInts {
			s.MinInt, s.MaxInt = o.MinInt, o.MaxInt
		} else {
			if o.MinInt < s.MinInt {
				s.MinInt = o.MinInt
			}
			if o.MaxInt > s.MaxInt {
				s.MaxInt = o.MaxInt
			}
		}
	}
	if o.DistinctOverflow {
		s.Distinct = nil
		s.DistinctOverflow = true
	} else if !s.DistinctOverflow {
		for v, c := range o.Distinct {
			if s.Distinct == nil {
				s.Distinct = map[string]int{}
			}
			s.Distinct[v] += c
			if len(s.Distinct) > EnumTrackLimit {
				s.Distinct = nil
				s.DistinctOverflow = true
				break
			}
		}
	}
}

// Type is the shared core of node and edge types: a label set, an
// instance tally, and per-property statistics (Defs. 3.2, 3.3).
type Type struct {
	// ID is unique within a Schema and stable across merges: merging
	// a candidate into a type keeps the type's ID.
	ID int
	// Labels counts, per label, how many instances carry it; a label
	// is present when its count is positive. Counting (rather than a
	// set) is what makes retraction (deletion support) exact.
	Labels map[string]int
	// Token is the canonical label token the type is indexed under
	// ("" for ABSTRACT types).
	Token string
	// Abstract marks types created from unlabeled clusters that could
	// not be merged anywhere (§4.3, PG-Schema ABSTRACT).
	Abstract bool
	// Instances counts the data elements assigned to the type.
	Instances int
	// Props maps property key to accumulated statistics.
	Props map[string]*PropStat
}

// Name returns a printable type name: the label token, or ABSTRACT_<id>
// for abstract types.
func (t *Type) Name() string {
	if t.Abstract || t.Token == "" {
		return fmt.Sprintf("ABSTRACT_%d", t.ID)
	}
	return t.Token
}

// PropertyKeys returns the type's property keys in sorted order.
func (t *Type) PropertyKeys() []string {
	ks := make([]string, 0, len(t.Props))
	for k := range t.Props {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// SortedLabels returns the label set in sorted order.
func (t *Type) SortedLabels() []string {
	ls := make([]string, 0, len(t.Labels))
	for l, c := range t.Labels {
		if c > 0 {
			ls = append(ls, l)
		}
	}
	sort.Strings(ls)
	return ls
}

// HasLabel reports whether at least one instance carries the label.
func (t *Type) HasLabel(l string) bool { return t.Labels[l] > 0 }

// observe tallies one instance's labels and properties.
func (t *Type) observe(labels []string, props map[string]pg.Value) {
	t.observeShape(labels, 1)
	t.observeProps(props)
}

// observeShape tallies count instances sharing one label set at once —
// the shape-interned bulk form of the label half of observe. Label and
// instance counts are plain sums, so the weighted form is exactly
// equivalent to count repeated observations.
func (t *Type) observeShape(labels []string, count int) {
	t.Instances += count
	for _, l := range labels {
		t.Labels[l] += count
	}
}

// observeProps tallies one instance's property values. Values vary
// within a shape, so the interned builders still observe them per
// element.
func (t *Type) observeProps(props map[string]pg.Value) {
	for k, v := range props {
		ps := t.Props[k]
		if ps == nil {
			ps = &PropStat{}
			t.Props[k] = ps
		}
		ps.observeValue(v)
	}
}

// mergeCore folds another type's core statistics into t (Lemma 1:
// labels and properties are unioned, so nothing is lost).
func (t *Type) mergeCore(o *Type) {
	t.Instances += o.Instances
	for l, c := range o.Labels {
		t.Labels[l] += c
	}
	for k, ps := range o.Props {
		if mine := t.Props[k]; mine != nil {
			mine.merge(ps)
		} else {
			cp := *ps
			if ps.Distinct != nil {
				cp.Distinct = make(map[string]int, len(ps.Distinct))
				for v, c := range ps.Distinct {
					cp.Distinct[v] = c
				}
			}
			t.Props[k] = &cp
		}
	}
}

// NodeType is a discovered node type (Def. 3.2).
type NodeType struct {
	Type
}

// EdgeType is a discovered edge type (Def. 3.3): the core plus
// endpoint connectivity and degree evidence for cardinalities.
type EdgeType struct {
	Type
	// SrcTokens and DstTokens are the unions of endpoint label tokens
	// observed across merged clusters (ρ_e; the set form accommodates
	// patterns with differing endpoints that merge into one type).
	SrcTokens map[string]bool
	DstTokens map[string]bool
	// SrcDeg and DstDeg accumulate, per concrete endpoint node, how
	// many instances of this edge type attach to it; the maxima drive
	// cardinality inference (§4.4).
	SrcDeg map[pg.ID]int
	DstDeg map[pg.ID]int
	// Cardinality is derived by infer.Finalize.
	Cardinality Cardinality
}

// SortedSrcTokens returns the source endpoint tokens in sorted order.
func (t *EdgeType) SortedSrcTokens() []string { return sortedSet(t.SrcTokens) }

// SortedDstTokens returns the target endpoint tokens in sorted order.
func (t *EdgeType) SortedDstTokens() []string { return sortedSet(t.DstTokens) }

func sortedSet(m map[string]bool) []string {
	s := make([]string, 0, len(m))
	for k := range m {
		s = append(s, k)
	}
	sort.Strings(s)
	return s
}

// MaxOutDegree returns max over sources of the per-source instance
// count (max_out(ρ), §4.4).
func (t *EdgeType) MaxOutDegree() int { return maxDeg(t.SrcDeg) }

// MaxInDegree returns max over targets of the per-target instance
// count (max_in(ρ), §4.4).
func (t *EdgeType) MaxInDegree() int { return maxDeg(t.DstDeg) }

func maxDeg(m map[pg.ID]int) int {
	max := 0
	for _, d := range m {
		if d > max {
			max = d
		}
	}
	return max
}

func (t *EdgeType) mergeEdge(o *EdgeType) {
	t.mergeCore(&o.Type)
	for k := range o.SrcTokens {
		t.SrcTokens[k] = true
	}
	for k := range o.DstTokens {
		t.DstTokens[k] = true
	}
	for id, d := range o.SrcDeg {
		t.SrcDeg[id] += d
	}
	for id, d := range o.DstDeg {
		t.DstDeg[id] += d
	}
}

// Schema is a schema graph (Def. 3.4): node types, edge types, and —
// through each edge type's endpoint token sets — the connectivity
// function ρ_s.
type Schema struct {
	NodeTypes []*NodeType
	EdgeTypes []*EdgeType

	byNodeToken map[string]*NodeType
	// byEdgeToken maps a label token to the edge types carrying it;
	// several types may share a token when their endpoint sets are
	// disjoint (e.g. the connectome datasets, where Table 2 reports
	// more edge types than edge labels).
	byEdgeToken map[string][]*EdgeType
	nextID      int
}

// New returns an empty schema.
func New() *Schema {
	return &Schema{
		byNodeToken: map[string]*NodeType{},
		byEdgeToken: map[string][]*EdgeType{},
	}
}

// NodeTypeByToken returns the labeled node type with the given
// canonical label token, or nil.
func (s *Schema) NodeTypeByToken(tok string) *NodeType {
	if tok == "" {
		return nil
	}
	return s.byNodeToken[tok]
}

// EdgeTypeByToken returns the first labeled edge type with the given
// canonical label token, or nil. Use EdgeTypesByToken when a label is
// shared by several endpoint-distinguished types.
func (s *Schema) EdgeTypeByToken(tok string) *EdgeType {
	ts := s.byEdgeToken[tok]
	if tok == "" || len(ts) == 0 {
		return nil
	}
	return ts[0]
}

// EdgeTypesByToken returns all labeled edge types with the given
// canonical label token.
func (s *Schema) EdgeTypesByToken(tok string) []*EdgeType {
	if tok == "" {
		return nil
	}
	return s.byEdgeToken[tok]
}

// AbstractNodeTypes returns the current abstract node types.
func (s *Schema) AbstractNodeTypes() []*NodeType {
	var out []*NodeType
	for _, t := range s.NodeTypes {
		if t.Abstract {
			out = append(out, t)
		}
	}
	return out
}

// AbstractEdgeTypes returns the current abstract edge types.
func (s *Schema) AbstractEdgeTypes() []*EdgeType {
	var out []*EdgeType
	for _, t := range s.EdgeTypes {
		if t.Abstract {
			out = append(out, t)
		}
	}
	return out
}

// NextTypeID returns the ID the next extracted type will receive.
// IDs are never reused: retraction can Compact a type away without
// lowering the counter, so the gap persists — checkpoints record the
// counter to keep resumed runs bit-identical to uninterrupted ones.
func (s *Schema) NextTypeID() int { return s.nextID }

// SetNextTypeID raises the ID counter to at least id (it never
// lowers it — reusing a live type's ID would corrupt the schema).
// Checkpoint restore calls it because the serialized schema alone
// cannot distinguish "counter is max ID + 1" from "counter moved past
// IDs whose types were since retracted and compacted away".
func (s *Schema) SetNextTypeID(id int) {
	if id > s.nextID {
		s.nextID = id
	}
}

func (s *Schema) addNodeType(t *NodeType) {
	t.ID = s.nextID
	s.nextID++
	s.NodeTypes = append(s.NodeTypes, t)
	if t.Token != "" {
		s.byNodeToken[t.Token] = t
	}
}

func (s *Schema) addEdgeType(t *EdgeType) {
	t.ID = s.nextID
	s.nextID++
	s.EdgeTypes = append(s.EdgeTypes, t)
	if t.Token != "" {
		s.byEdgeToken[t.Token] = append(s.byEdgeToken[t.Token], t)
	}
}

// newType builds an empty core Type.
func newType() Type {
	return Type{Labels: map[string]int{}, Props: map[string]*PropStat{}}
}

// NewNodeCandidate returns an empty node candidate for manual
// construction (tests and loaders; the pipeline uses
// BuildNodeCandidates).
func NewNodeCandidate() *NodeType { return &NodeType{Type: newType()} }

// NewEdgeCandidate returns an empty edge candidate.
func NewEdgeCandidate() *EdgeType {
	return &EdgeType{
		Type:      newType(),
		SrcTokens: map[string]bool{},
		DstTokens: map[string]bool{},
		SrcDeg:    map[pg.ID]int{},
		DstDeg:    map[pg.ID]int{},
	}
}
