package schema

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"github.com/pghive/pghive/internal/pg"
)

func buildPersistFixture() *Schema {
	s := New()
	// A labeled node type with rich property stats.
	nodes := []pg.Node{
		{ID: 0, Labels: []string{"Person"}, Props: map[string]pg.Value{
			"name": pg.Str("a"), "age": pg.Int(30), "status": pg.Str("active")}},
		{ID: 1, Labels: []string{"Person"}, Props: map[string]pg.Value{
			"name": pg.Str("b"), "age": pg.Int(40), "status": pg.Str("idle")}},
	}
	cands := BuildNodeCandidates(nodes, []int{0, 0}, 1)
	s.ExtractNodeTypes(cands, 0.9)
	// An abstract node type.
	u := NewNodeCandidate()
	u.observe(nil, map[string]pg.Value{"x": pg.Float(1.5)})
	u.Token, u.Abstract = "", true
	s.ExtractNodeTypes([]*NodeType{u}, 0.9)
	// An edge type with endpoints and degrees.
	edges := []pg.Edge{
		{ID: 0, Labels: []string{"KNOWS"}, Src: 0, Dst: 1,
			Props: map[string]pg.Value{"since": pg.Int(2020)}},
		{ID: 1, Labels: []string{"KNOWS"}, Src: 0, Dst: 0, Props: nil},
	}
	ecands := BuildEdgeCandidates(edges, []int{0, 0}, 1,
		[]string{"Person", "Person"}, []string{"Person", "Person"})
	s.ExtractEdgeTypes(ecands, 0.9)
	return s
}

func TestPersistRoundTrip(t *testing.T) {
	s := buildPersistFixture()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.NodeTypes) != len(s.NodeTypes) || len(got.EdgeTypes) != len(s.EdgeTypes) {
		t.Fatalf("type counts: %d/%d nodes, %d/%d edges",
			len(got.NodeTypes), len(s.NodeTypes), len(got.EdgeTypes), len(s.EdgeTypes))
	}
	person := got.NodeTypeByToken("Person")
	orig := s.NodeTypeByToken("Person")
	if person == nil {
		t.Fatal("Person lost in round-trip")
	}
	if person.Instances != orig.Instances {
		t.Errorf("instances %d != %d", person.Instances, orig.Instances)
	}
	for k, ops := range orig.Props {
		gps := person.Props[k]
		if gps == nil {
			t.Fatalf("property %q lost", k)
		}
		if gps.Count != ops.Count || gps.Kinds != ops.Kinds {
			t.Errorf("property %q stats differ", k)
		}
		if !reflect.DeepEqual(gps.Distinct, ops.Distinct) {
			t.Errorf("property %q distinct values differ: %v vs %v", k, gps.Distinct, ops.Distinct)
		}
		if gps.MinInt != ops.MinInt || gps.MaxInt != ops.MaxInt {
			t.Errorf("property %q int bounds differ", k)
		}
	}
	knows := got.EdgeTypeByToken("KNOWS")
	if knows == nil {
		t.Fatal("KNOWS lost")
	}
	if !knows.SrcTokens["Person"] || !knows.DstTokens["Person"] {
		t.Error("endpoint tokens lost")
	}
	if knows.MaxOutDegree() != s.EdgeTypeByToken("KNOWS").MaxOutDegree() {
		t.Error("degree evidence lost")
	}
	// Abstract type preserved.
	if len(got.AbstractNodeTypes()) != 1 {
		t.Error("abstract type lost")
	}
}

// TestPersistThenContinueIncremental: the restored schema must accept
// further extraction with correct merging — the cross-session
// incremental use case.
func TestPersistThenContinueIncremental(t *testing.T) {
	s := buildPersistFixture()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	before := restored.NodeTypeByToken("Person").Instances
	more := []pg.Node{{ID: 5, Labels: []string{"Person"}, Props: map[string]pg.Value{
		"name": pg.Str("c"), "email": pg.Str("c@x")}}}
	cands := BuildNodeCandidates(more, []int{0}, 1)
	restored.ExtractNodeTypes(cands, 0.9)
	person := restored.NodeTypeByToken("Person")
	if person.Instances != before+1 {
		t.Errorf("instances = %d, want %d", person.Instances, before+1)
	}
	if person.Props["email"] == nil {
		t.Error("new property not merged after restore")
	}
	// New types must get fresh IDs, not collide with persisted ones.
	u := NewNodeCandidate()
	u.observe([]string{"Fresh"}, nil)
	u.Token = "Fresh"
	restored.ExtractNodeTypes([]*NodeType{u}, 0.9)
	seen := map[int]bool{}
	for _, nt := range restored.NodeTypes {
		if seen[nt.ID] {
			t.Fatalf("duplicate type ID %d after restore", nt.ID)
		}
		seen[nt.ID] = true
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{bad")); err == nil {
		t.Error("malformed JSON must error")
	}
	if _, err := ReadJSON(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("unknown version must error")
	}
	if _, err := ReadJSON(strings.NewReader(`{"version":1,"edgeTypes":[{"id":0,"srcDeg":{"x":1}}]}`)); err == nil {
		t.Error("bad degree key must error")
	}
}
