package schema

// patch_test.go exercises DiffJSON/ApplyPatchJSON on hand-built
// persist-format fixtures: the patch pair operates on WriteJSON
// bytes, so the tests construct jsonSchema values directly and
// serialize them the same way WriteJSON does.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// encodeFixture serializes js the way WriteJSON serializes a Schema
// (indented Encoder output), so fixtures are format-faithful.
func encodeFixture(t *testing.T, js *jsonSchema) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(js); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// fixtureSchema builds a schema with two node types and one edge type
// whose degree maps hold n entries each — the O(elements) state the
// patch must not re-emit.
func fixtureSchema(t *testing.T, n int) []byte {
	t.Helper()
	deg := func(off int) map[string]int {
		m := make(map[string]int, n)
		for i := 0; i < n; i++ {
			m[fmt.Sprint(off+i)] = 1 + i%3
		}
		return m
	}
	return encodeFixture(t, &jsonSchema{
		Version: persistVersion,
		NodeTypes: []jsonType{
			{ID: 0, Labels: map[string]int{"Person": n}, Token: "Person", Instances: n,
				Props: map[string]jsonProp{"age": {Count: n, Kinds: []int{0, n, 0, 0, 0, 0, 0}, MinInt: 20, MaxInt: 69, HasIntRange: true}}},
			{ID: 1, Labels: map[string]int{"City": 1}, Token: "City", Instances: 1},
		},
		EdgeTypes: []jsonType{
			{ID: 2, Labels: map[string]int{"KNOWS": n}, Token: "KNOWS", Instances: n,
				SrcTokens: []string{"Person"}, DstTokens: []string{"Person"},
				SrcDeg: deg(0), DstDeg: deg(1), Cardinality: 1},
		},
	})
}

func compactJSON(t *testing.T, data []byte) string {
	t.Helper()
	var c bytes.Buffer
	if err := json.Compact(&c, data); err != nil {
		t.Fatal(err)
	}
	return c.String()
}

func decodeFixture(t *testing.T, data []byte) *jsonSchema {
	t.Helper()
	js, ok := decodePatchable(data)
	if !ok {
		t.Fatal("fixture is not patchable")
	}
	return js
}

// TestSchemaPatchDegreeOnly: growing the edge type by a handful of
// endpoints yields a patch proportional to the touched nodes, not to
// the degree maps, and applies back exactly.
func TestSchemaPatchDegreeOnly(t *testing.T) {
	const n = 1000
	old := fixtureSchema(t, n)
	js := decodeFixture(t, old)
	et := &js.EdgeTypes[0]
	et.Instances += 5
	et.Labels["KNOWS"] += 5
	for i := 0; i < 5; i++ {
		et.SrcDeg[fmt.Sprint(n+i)] = 1
		et.DstDeg[fmt.Sprint(i)] += 1
	}
	new_ := encodeFixture(t, js)

	patch, err := DiffJSON(old, new_)
	if err != nil {
		t.Fatal(err)
	}
	var p jsonSchemaPatch
	if err := json.Unmarshal(patch, &p); err != nil {
		t.Fatal(err)
	}
	if p.Replace != nil {
		t.Fatal("structural diff fell back to replace")
	}
	got, err := ApplyPatchJSON(old, patch)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != compactJSON(t, new_) {
		t.Fatalf("patched schema differs from target:\n got %s", got)
	}
	if len(patch)*10 > len(new_) {
		t.Fatalf("touching 5 endpoints produced a %d-byte patch for a %d-byte schema", len(patch), len(new_))
	}
	// Whitespace must not matter: the base image may carry the schema
	// in compact (decoded) form.
	got2, err := ApplyPatchJSON([]byte(compactJSON(t, old)), patch)
	if err != nil {
		t.Fatal(err)
	}
	if string(got2) != string(got) {
		t.Fatal("patch result depends on base formatting")
	}
}

// TestSchemaPatchTypeLifecycle: types appear, change head fields, and
// vanish (merges remove types); membership and order come from the
// patch's ID lists.
func TestSchemaPatchTypeLifecycle(t *testing.T) {
	old := fixtureSchema(t, 10)
	js := decodeFixture(t, old)
	js.NodeTypes = []jsonType{
		js.NodeTypes[0], // Person survives
		{ID: 3, Labels: map[string]int{"Country": 2}, Token: "Country", Instances: 2}, // City replaced
	}
	js.NodeTypes[0].Instances = 12 // head change
	js.EdgeTypes = nil             // edge type merged away
	new_ := encodeFixture(t, js)

	patch, err := DiffJSON(old, new_)
	if err != nil {
		t.Fatal(err)
	}
	var p jsonSchemaPatch
	if err := json.Unmarshal(patch, &p); err != nil {
		t.Fatal(err)
	}
	if p.Replace != nil {
		t.Fatal("lifecycle diff fell back to replace")
	}
	got, err := ApplyPatchJSON(old, patch)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != compactJSON(t, new_) {
		t.Fatalf("lifecycle patch:\n got %s\nwant %s", got, compactJSON(t, new_))
	}
}

// TestSchemaPatchFallback: inputs the structural differ cannot model
// degrade to a replace patch that still applies exactly.
func TestSchemaPatchFallback(t *testing.T) {
	good := fixtureSchema(t, 10)
	cases := []struct {
		name string
		old  []byte
	}{
		{"old not json", []byte("not json")},
		{"old empty", nil},
		{"old null", []byte("null")},
		{"old unknown version", []byte(`{"version":99,"nodeTypes":[],"edgeTypes":[]}`)},
		{"old duplicate ids", []byte(`{"version":1,"nodeTypes":[{"id":0,"instances":1},{"id":0,"instances":2}],"edgeTypes":null}`)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			patch, err := DiffJSON(tc.old, good)
			if err != nil {
				t.Fatal(err)
			}
			var p jsonSchemaPatch
			if err := json.Unmarshal(patch, &p); err != nil {
				t.Fatal(err)
			}
			if p.Replace == nil {
				t.Fatal("unpatchable base did not fall back to replace")
			}
			got, err := ApplyPatchJSON(tc.old, patch)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != compactJSON(t, good) {
				t.Fatal("replace patch does not carry the new schema")
			}
		})
	}
	// A future-format NEW schema (unknown fields the round trip would
	// drop) must be carried whole, never rebuilt from the lossy model.
	future := []byte(`{"version":1,"nodeTypes":[],"edgeTypes":[],"futureField":42}`)
	patch, err := DiffJSON(good, future)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ApplyPatchJSON(good, patch)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != compactJSON(t, future) {
		t.Fatalf("future-format schema mangled: %s", got)
	}
}

func TestSchemaPatchApplyRejects(t *testing.T) {
	good := fixtureSchema(t, 5)
	if _, err := ApplyPatchJSON(good, []byte(`{"version":99}`)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("unknown patch version: %v", err)
	}
	if _, err := ApplyPatchJSON(good, []byte(`not json`)); err == nil {
		t.Fatal("garbage patch accepted")
	}
	// A structural patch against a base it does not describe: new
	// type ID with no head to build it from.
	if _, err := ApplyPatchJSON(good, []byte(`{"version":1,"nodeIDs":[42]}`)); err == nil || !strings.Contains(err.Error(), "no head") {
		t.Fatalf("headless new type: %v", err)
	}
	// A patch cannot apply to a base that is itself unpatchable.
	if _, err := ApplyPatchJSON([]byte("junk"), []byte(`{"version":1,"nodeIDs":[0]}`)); err == nil || !strings.Contains(err.Error(), "not patchable") {
		t.Fatalf("junk base: %v", err)
	}
}
