package schema

import (
	"testing"

	"github.com/pghive/pghive/internal/pg"
)

func labeledCand(labels []string, keys ...string) *NodeType {
	c := NewNodeCandidate()
	props := map[string]pg.Value{}
	for _, k := range keys {
		props[k] = pg.Str("x")
	}
	c.observe(labels, props)
	c.Token = pg.LabelToken(c.SortedLabels())
	c.Abstract = c.Token == ""
	return c
}

func edgeCand(labels []string, src, dst string, keys ...string) *EdgeType {
	c := NewEdgeCandidate()
	props := map[string]pg.Value{}
	for _, k := range keys {
		props[k] = pg.Str("x")
	}
	c.observe(labels, props)
	if src != "" {
		c.SrcTokens[src] = true
	}
	if dst != "" {
		c.DstTokens[dst] = true
	}
	c.SrcDeg[1]++
	c.DstDeg[2]++
	c.Token = pg.LabelToken(c.SortedLabels())
	c.Abstract = c.Token == ""
	return c
}

func TestJaccard(t *testing.T) {
	set := func(ks ...string) map[string]bool {
		m := map[string]bool{}
		for _, k := range ks {
			m[k] = true
		}
		return m
	}
	cases := []struct {
		a, b []string
		want float64
	}{
		{[]string{"a", "b"}, []string{"a", "b"}, 1},
		{[]string{"a", "b"}, []string{"b", "c"}, 1.0 / 3},
		{[]string{"a"}, []string{"b"}, 0},
		{nil, nil, 1},
		{[]string{"a"}, nil, 0},
	}
	for _, c := range cases {
		if got := Jaccard(set(c.a...), set(c.b...)); got != c.want {
			t.Errorf("Jaccard(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestExtractMergesSameLabel(t *testing.T) {
	s := New()
	c1 := labeledCand([]string{"Post"}, "imgFile")
	c2 := labeledCand([]string{"Post"}, "content")
	res := s.ExtractNodeTypes([]*NodeType{c1, c2}, 0)
	if len(s.NodeTypes) != 1 {
		t.Fatalf("want 1 merged Post type, got %d", len(s.NodeTypes))
	}
	if res[0] != res[1] {
		t.Fatal("both clusters must map to the same type")
	}
	ty := s.NodeTypes[0]
	if ty.Instances != 2 {
		t.Errorf("Instances = %d, want 2", ty.Instances)
	}
	keys := ty.PropertyKeys()
	if len(keys) != 2 || keys[0] != "content" || keys[1] != "imgFile" {
		t.Errorf("merged keys = %v (Lemma 1: union, nothing lost)", keys)
	}
}

func TestExtractKeepsDistinctLabelSetsSeparate(t *testing.T) {
	s := New()
	c1 := labeledCand([]string{"Person"}, "name")
	c2 := labeledCand([]string{"Person", "Student"}, "name")
	s.ExtractNodeTypes([]*NodeType{c1, c2}, 0)
	if len(s.NodeTypes) != 2 {
		t.Fatalf("distinct label sets are distinct types (Def. 3.2): got %d", len(s.NodeTypes))
	}
	if s.NodeTypeByToken("Person") == nil || s.NodeTypeByToken("Person&Student") == nil {
		t.Fatal("token index incomplete")
	}
}

func TestExtractUnlabeledMergesIntoLabeledByJaccard(t *testing.T) {
	s := New()
	person := labeledCand([]string{"Person"}, "name", "gender", "bday")
	alice := labeledCand(nil, "name", "gender", "bday") // J = 1
	res := s.ExtractNodeTypes([]*NodeType{person, alice}, 0.9)
	if len(s.NodeTypes) != 1 {
		t.Fatalf("want Alice's cluster merged into Person (Example 5), got %d types", len(s.NodeTypes))
	}
	if res[1] != res[0] {
		t.Fatal("unlabeled cluster must map to the Person type")
	}
	if s.NodeTypes[0].Instances != 2 {
		t.Errorf("Instances = %d, want 2", s.NodeTypes[0].Instances)
	}
}

func TestExtractUnlabeledBelowThetaStaysAbstract(t *testing.T) {
	s := New()
	person := labeledCand([]string{"Person"}, "name", "gender", "bday")
	poor := labeledCand(nil, "name") // J = 1/3 < 0.9
	s.ExtractNodeTypes([]*NodeType{person, poor}, 0.9)
	if len(s.NodeTypes) != 2 {
		t.Fatalf("want separate ABSTRACT type, got %d types", len(s.NodeTypes))
	}
	abs := s.AbstractNodeTypes()
	if len(abs) != 1 {
		t.Fatalf("want 1 abstract type, got %d", len(abs))
	}
	if abs[0].Name() != "ABSTRACT_1" {
		t.Errorf("abstract name = %q", abs[0].Name())
	}
}

func TestExtractUnlabeledPairsMerge(t *testing.T) {
	s := New()
	u1 := labeledCand(nil, "x", "y", "z")
	u2 := labeledCand(nil, "x", "y", "z")
	u3 := labeledCand(nil, "q")
	res := s.ExtractNodeTypes([]*NodeType{u1, u2, u3}, 0.9)
	if len(s.NodeTypes) != 2 {
		t.Fatalf("want 2 abstract types (u1+u2 merged, u3 alone), got %d", len(s.NodeTypes))
	}
	if res[0] != res[1] {
		t.Error("identical unlabeled clusters must merge (Alg. 2 lines 12-14)")
	}
	if res[2] == res[0] {
		t.Error("dissimilar unlabeled cluster must stay apart")
	}
}

func TestExtractLowerThetaMergesMore(t *testing.T) {
	strict := New()
	loose := New()
	mk := func() []*NodeType {
		return []*NodeType{
			labeledCand([]string{"Person"}, "name", "gender", "bday"),
			labeledCand(nil, "name", "gender"), // J = 2/3
		}
	}
	strict.ExtractNodeTypes(mk(), 0.9)
	loose.ExtractNodeTypes(mk(), 0.5)
	if len(strict.NodeTypes) != 2 {
		t.Errorf("θ=0.9 should keep clusters apart, got %d types", len(strict.NodeTypes))
	}
	if len(loose.NodeTypes) != 1 {
		t.Errorf("θ=0.5 should merge (paper: lowering θ increases recall), got %d types", len(loose.NodeTypes))
	}
}

func TestExtractEdgeTypesMergeByLabel(t *testing.T) {
	s := New()
	// Same label, same endpoints, different property sets: one type
	// with unioned properties and endpoint sets (Lemma 2).
	e1 := edgeCand([]string{"KNOWS"}, "Person", "Person")
	e2 := edgeCand([]string{"KNOWS"}, "Person", "Person", "since")
	res := s.ExtractEdgeTypes([]*EdgeType{e1, e2}, 0)
	if len(s.EdgeTypes) != 1 {
		t.Fatalf("want 1 KNOWS type, got %d", len(s.EdgeTypes))
	}
	if res[0] != res[1] {
		t.Fatal("same-label edge clusters must merge")
	}
	ty := s.EdgeTypes[0]
	if len(ty.Props) != 1 {
		t.Errorf("merged edge props = %v, want {since}", ty.PropertyKeys())
	}
	if got := ty.SortedSrcTokens(); len(got) != 1 || got[0] != "Person" {
		t.Errorf("source endpoint union = %v", got)
	}
}

func TestExtractEdgeSharedSingleEndpointStaysSeparate(t *testing.T) {
	// LDBC-style reuse: HAS_CREATOR from Post and from Comment share
	// the target (Person) but not the source; they are distinct types.
	s := New()
	e1 := edgeCand([]string{"HAS_CREATOR"}, "Message&Post", "Person")
	e2 := edgeCand([]string{"HAS_CREATOR"}, "Comment&Message", "Person")
	res := s.ExtractEdgeTypes([]*EdgeType{e1, e2}, 0)
	if len(s.EdgeTypes) != 2 {
		t.Fatalf("shared-single-endpoint label reuse must stay separate, got %d types", len(s.EdgeTypes))
	}
	if res[0] == res[1] {
		t.Fatal("clusters mapped to the same type")
	}
}

func TestExtractEdgeUnlabeledUsesEndpoints(t *testing.T) {
	s := New()
	likes := edgeCand([]string{"LIKES"}, "Person", "Post")
	// Unlabeled edge with the same endpoints and properties (none):
	// should merge into LIKES via the endpoint-augmented Jaccard.
	anon := edgeCand(nil, "Person", "Post")
	res := s.ExtractEdgeTypes([]*EdgeType{likes, anon}, 0.9)
	if len(s.EdgeTypes) != 1 {
		t.Fatalf("want unlabeled edge merged into LIKES, got %d types", len(s.EdgeTypes))
	}
	if res[1] != res[0] {
		t.Fatal("unlabeled edge cluster must map into LIKES")
	}
	// An unlabeled edge with different endpoints must not merge.
	s2 := New()
	works := edgeCand([]string{"WORKS_AT"}, "Person", "Org.")
	anon2 := edgeCand(nil, "Org.", "Place")
	s2.ExtractEdgeTypes([]*EdgeType{works, anon2}, 0.9)
	if len(s2.EdgeTypes) != 2 {
		t.Fatalf("different endpoints must stay apart, got %d types", len(s2.EdgeTypes))
	}
}

func TestExtractEdgeSameLabelDisjointEndpointsStaySeparate(t *testing.T) {
	// MB6/FIB25-style label reuse: ConnectsTo between two unrelated
	// endpoint pairs must remain two types (Table 2 reports more edge
	// types than edge labels for these datasets).
	s := New()
	e1 := edgeCand([]string{"ConnectsTo"}, "Neuron", "Neuron")
	e2 := edgeCand([]string{"ConnectsTo"}, "Region", "Tract")
	res := s.ExtractEdgeTypes([]*EdgeType{e1, e2}, 0)
	if len(s.EdgeTypes) != 2 {
		t.Fatalf("endpoint-disjoint same-label clusters must stay separate, got %d types", len(s.EdgeTypes))
	}
	if res[0] == res[1] {
		t.Fatal("clusters mapped to the same type")
	}
	if got := len(s.EdgeTypesByToken("ConnectsTo")); got != 2 {
		t.Fatalf("EdgeTypesByToken = %d entries, want 2", got)
	}
}

func TestCardinalityAccumulation(t *testing.T) {
	c := NewEdgeCandidate()
	// Three edges out of node 1, one into each of 3 targets.
	for dst := pg.ID(10); dst < 13; dst++ {
		c.observe([]string{"LIKES"}, nil)
		c.SrcDeg[1]++
		c.DstDeg[dst]++
	}
	if c.MaxOutDegree() != 3 {
		t.Errorf("MaxOutDegree = %d, want 3", c.MaxOutDegree())
	}
	if c.MaxInDegree() != 1 {
		t.Errorf("MaxInDegree = %d, want 1", c.MaxInDegree())
	}
}

func TestCardinalityString(t *testing.T) {
	want := map[Cardinality]string{
		CardOneToOne: "1:1", CardManyToOne: "N:1",
		CardOneToMany: "1:N", CardManyToMany: "M:N", CardUnknown: "?",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
}

func TestSchemaMergeMonotone(t *testing.T) {
	// Build two schemas and merge; every label and property of both
	// inputs must survive (§4.6 monotonicity).
	s1 := New()
	s1.ExtractNodeTypes([]*NodeType{
		labeledCand([]string{"Person"}, "name", "bday"),
		labeledCand([]string{"Post"}, "content"),
	}, 0)
	s1.ExtractEdgeTypes([]*EdgeType{edgeCand([]string{"LIKES"}, "Person", "Post")}, 0)

	s2 := New()
	s2.ExtractNodeTypes([]*NodeType{
		labeledCand([]string{"Person"}, "name", "gender"),
		labeledCand([]string{"Org"}, "url"),
	}, 0)
	s2.ExtractEdgeTypes([]*EdgeType{
		edgeCand([]string{"LIKES"}, "Org", "Post"),
		edgeCand([]string{"WORKS_AT"}, "Person", "Org"),
	}, 0)

	nmap, emap := s1.Merge(s2, 0)
	if len(s1.NodeTypes) != 3 {
		t.Fatalf("merged node types = %d, want 3 (Person unified)", len(s1.NodeTypes))
	}
	person := s1.NodeTypeByToken("Person")
	for _, k := range []string{"name", "bday", "gender"} {
		if person.Props[k] == nil {
			t.Errorf("Person lost property %q after merge", k)
		}
	}
	// LIKES appears with disjoint sources (Person vs Org): the
	// endpoint-compatibility rule keeps two LIKES types, plus
	// WORKS_AT — three edge types in total, and no label lost.
	if len(s1.EdgeTypes) != 3 {
		t.Fatalf("merged edge types = %d, want 3", len(s1.EdgeTypes))
	}
	if got := len(s1.EdgeTypesByToken("LIKES")); got != 2 {
		t.Fatalf("LIKES types = %d, want 2 (disjoint sources)", got)
	}
	srcSeen := map[string]bool{}
	for _, et := range s1.EdgeTypesByToken("LIKES") {
		for tok := range et.SrcTokens {
			srcSeen[tok] = true
		}
	}
	if !srcSeen["Person"] || !srcSeen["Org"] {
		t.Error("LIKES endpoint evidence lost after merge")
	}
	if len(nmap) != 2 || len(emap) != 2 {
		t.Errorf("merge maps sizes: %d nodes, %d edges", len(nmap), len(emap))
	}
}

func TestBuildNodeCandidates(t *testing.T) {
	nodes := []pg.Node{
		{ID: 0, Labels: []string{"Person"}, Props: map[string]pg.Value{"name": pg.Str("a"), "age": pg.Int(3)}},
		{ID: 1, Labels: []string{"Person"}, Props: map[string]pg.Value{"name": pg.Str("b")}},
		{ID: 2, Labels: nil, Props: map[string]pg.Value{"x": pg.Float(1)}},
	}
	assign := []int{0, 0, 1}
	cands := BuildNodeCandidates(nodes, assign, 2)
	if len(cands) != 2 {
		t.Fatalf("candidates = %d", len(cands))
	}
	if cands[0].Token != "Person" || cands[0].Instances != 2 {
		t.Errorf("cluster 0: token=%q instances=%d", cands[0].Token, cands[0].Instances)
	}
	if cands[0].Props["name"].Count != 2 || cands[0].Props["age"].Count != 1 {
		t.Error("property counts wrong")
	}
	if cands[0].Props["age"].Kinds[pg.KindInt] != 1 {
		t.Error("kind tally wrong")
	}
	if !cands[1].Abstract {
		t.Error("unlabeled cluster must be abstract")
	}
}

func TestBuildEdgeCandidates(t *testing.T) {
	edges := []pg.Edge{
		{ID: 0, Labels: []string{"KNOWS"}, Src: 1, Dst: 2, Props: map[string]pg.Value{"since": pg.Int(2020)}},
		{ID: 1, Labels: []string{"KNOWS"}, Src: 1, Dst: 3, Props: nil},
	}
	cands := BuildEdgeCandidates(edges, []int{0, 0}, 1, []string{"Person", "Person"}, []string{"Person", ""})
	c := cands[0]
	if c.Token != "KNOWS" || c.Instances != 2 {
		t.Fatalf("token=%q instances=%d", c.Token, c.Instances)
	}
	if !c.SrcTokens["Person"] {
		t.Error("source token missing")
	}
	if len(c.DstTokens) != 1 {
		t.Errorf("empty endpoint tokens must be skipped: %v", c.DstTokens)
	}
	if c.MaxOutDegree() != 2 || c.MaxInDegree() != 1 {
		t.Errorf("degrees: out=%d in=%d", c.MaxOutDegree(), c.MaxInDegree())
	}
}

func TestTypeName(t *testing.T) {
	ty := labeledCand([]string{"Person"}, "name")
	ty.ID = 7
	if ty.Name() != "Person" {
		t.Errorf("Name = %q", ty.Name())
	}
	ab := labeledCand(nil, "x")
	ab.ID = 3
	ab.Abstract = true
	if ab.Name() != "ABSTRACT_3" {
		t.Errorf("Name = %q", ab.Name())
	}
}

func TestEmptyCandidatesSkipped(t *testing.T) {
	s := New()
	empty := NewNodeCandidate()
	res := s.ExtractNodeTypes([]*NodeType{empty}, 0)
	if len(s.NodeTypes) != 0 {
		t.Fatal("empty candidate must not create a type")
	}
	if res[0] != nil {
		t.Fatal("empty candidate must map to nil")
	}
}
