package schema

// persist.go serializes a Schema — including the occurrence
// statistics that power incremental merging and §4.4 inference — as
// JSON, so a discovery session can be suspended and resumed: load the
// schema, keep feeding batches, and constraints stay exact.

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/pghive/pghive/internal/pg"
)

type jsonProp struct {
	Count            int            `json:"count"`
	Kinds            []int          `json:"kinds"`
	MinInt           int64          `json:"minInt,omitempty"`
	MaxInt           int64          `json:"maxInt,omitempty"`
	Distinct         map[string]int `json:"distinct,omitempty"`
	DistinctOverflow bool           `json:"distinctOverflow,omitempty"`
	Mandatory        bool           `json:"mandatory,omitempty"`
	DataType         uint8          `json:"dataType,omitempty"`
	Enum             []string       `json:"enum,omitempty"`
	HasIntRange      bool           `json:"hasIntRange,omitempty"`
}

type jsonType struct {
	ID        int                 `json:"id"`
	Labels    map[string]int      `json:"labels,omitempty"`
	Token     string              `json:"token,omitempty"`
	Abstract  bool                `json:"abstract,omitempty"`
	Instances int                 `json:"instances"`
	Props     map[string]jsonProp `json:"props,omitempty"`

	// Edge-only fields.
	SrcTokens   []string       `json:"srcTokens,omitempty"`
	DstTokens   []string       `json:"dstTokens,omitempty"`
	SrcDeg      map[string]int `json:"srcDeg,omitempty"`
	DstDeg      map[string]int `json:"dstDeg,omitempty"`
	Cardinality uint8          `json:"cardinality,omitempty"`
}

type jsonSchema struct {
	Version   int        `json:"version"`
	NodeTypes []jsonType `json:"nodeTypes"`
	EdgeTypes []jsonType `json:"edgeTypes"`
}

const persistVersion = 1

func propToJSON(ps *PropStat) jsonProp {
	kinds := make([]int, len(ps.Kinds))
	copy(kinds, ps.Kinds[:])
	return jsonProp{
		Count: ps.Count, Kinds: kinds,
		MinInt: ps.MinInt, MaxInt: ps.MaxInt,
		Distinct: ps.Distinct, DistinctOverflow: ps.DistinctOverflow,
		Mandatory: ps.Mandatory, DataType: uint8(ps.DataType),
		Enum: ps.Enum, HasIntRange: ps.HasIntRange,
	}
}

func propFromJSON(jp jsonProp) (*PropStat, error) {
	ps := &PropStat{
		Count: jp.Count, MinInt: jp.MinInt, MaxInt: jp.MaxInt,
		DistinctOverflow: jp.DistinctOverflow,
		Mandatory:        jp.Mandatory, DataType: pg.Kind(jp.DataType),
		Enum: jp.Enum, HasIntRange: jp.HasIntRange,
	}
	if len(jp.Kinds) > len(ps.Kinds) {
		return nil, fmt.Errorf("schema: kind tally has %d entries, max %d", len(jp.Kinds), len(ps.Kinds))
	}
	copy(ps.Kinds[:], jp.Kinds)
	if len(jp.Distinct) > 0 {
		ps.Distinct = jp.Distinct
	}
	return ps, nil
}

func typeToJSON(t *Type) jsonType {
	jt := jsonType{
		ID: t.ID, Labels: t.Labels, Token: t.Token,
		Abstract: t.Abstract, Instances: t.Instances,
	}
	if len(t.Props) > 0 {
		jt.Props = make(map[string]jsonProp, len(t.Props))
		for k, ps := range t.Props {
			jt.Props[k] = propToJSON(ps)
		}
	}
	return jt
}

func typeFromJSON(jt jsonType) (Type, error) {
	t := newType()
	t.ID = jt.ID
	t.Token = jt.Token
	t.Abstract = jt.Abstract
	t.Instances = jt.Instances
	for l, c := range jt.Labels {
		t.Labels[l] = c
	}
	for k, jp := range jt.Props {
		ps, err := propFromJSON(jp)
		if err != nil {
			return t, fmt.Errorf("property %q: %w", k, err)
		}
		t.Props[k] = ps
	}
	return t, nil
}

func degToJSON(m map[pg.ID]int) map[string]int {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]int, len(m))
	for id, d := range m {
		out[fmt.Sprint(int64(id))] = d
	}
	return out
}

func degFromJSON(m map[string]int) (map[pg.ID]int, error) {
	out := make(map[pg.ID]int, len(m))
	for k, d := range m {
		var id int64
		if _, err := fmt.Sscanf(k, "%d", &id); err != nil {
			return nil, fmt.Errorf("schema: bad degree key %q: %w", k, err)
		}
		out[pg.ID(id)] = d
	}
	return out, nil
}

// WriteJSON serializes the schema.
func WriteJSON(w io.Writer, s *Schema) error {
	js := jsonSchema{Version: persistVersion}
	for _, nt := range s.NodeTypes {
		js.NodeTypes = append(js.NodeTypes, typeToJSON(&nt.Type))
	}
	for _, et := range s.EdgeTypes {
		jt := typeToJSON(&et.Type)
		jt.SrcTokens = et.SortedSrcTokens()
		jt.DstTokens = et.SortedDstTokens()
		jt.SrcDeg = degToJSON(et.SrcDeg)
		jt.DstDeg = degToJSON(et.DstDeg)
		jt.Cardinality = uint8(et.Cardinality)
		js.EdgeTypes = append(js.EdgeTypes, jt)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&js)
}

// ReadJSON restores a schema serialized by WriteJSON, rebuilding the
// token indexes and the ID counter.
func ReadJSON(r io.Reader) (*Schema, error) {
	var js jsonSchema
	if err := json.NewDecoder(r).Decode(&js); err != nil {
		return nil, fmt.Errorf("schema: %w", err)
	}
	if js.Version != persistVersion {
		return nil, fmt.Errorf("schema: unsupported version %d", js.Version)
	}
	s := New()
	maxID := -1
	for _, jt := range js.NodeTypes {
		core, err := typeFromJSON(jt)
		if err != nil {
			return nil, fmt.Errorf("schema: node type %d: %w", jt.ID, err)
		}
		nt := &NodeType{Type: core}
		s.NodeTypes = append(s.NodeTypes, nt)
		if nt.Token != "" {
			s.byNodeToken[nt.Token] = nt
		}
		if nt.ID > maxID {
			maxID = nt.ID
		}
	}
	for _, jt := range js.EdgeTypes {
		core, err := typeFromJSON(jt)
		if err != nil {
			return nil, fmt.Errorf("schema: edge type %d: %w", jt.ID, err)
		}
		et := &EdgeType{
			Type:        core,
			SrcTokens:   map[string]bool{},
			DstTokens:   map[string]bool{},
			Cardinality: Cardinality(jt.Cardinality),
		}
		for _, tok := range jt.SrcTokens {
			et.SrcTokens[tok] = true
		}
		for _, tok := range jt.DstTokens {
			et.DstTokens[tok] = true
		}
		var err2 error
		if et.SrcDeg, err2 = degFromJSON(jt.SrcDeg); err2 != nil {
			return nil, err2
		}
		if et.DstDeg, err2 = degFromJSON(jt.DstDeg); err2 != nil {
			return nil, err2
		}
		s.EdgeTypes = append(s.EdgeTypes, et)
		if et.Token != "" {
			s.byEdgeToken[et.Token] = append(s.byEdgeToken[et.Token], et)
		}
		if et.ID > maxID {
			maxID = et.ID
		}
	}
	s.nextID = maxID + 1
	return s, nil
}
