package schema

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/pghive/pghive/internal/pg"
)

func TestRetractReversesObserve(t *testing.T) {
	nodes := []pg.Node{
		{ID: 0, Labels: []string{"T"}, Props: map[string]pg.Value{
			"a": pg.Int(5), "s": pg.Str("x")}},
		{ID: 1, Labels: []string{"T"}, Props: map[string]pg.Value{
			"a": pg.Int(9)}},
	}
	cands := BuildNodeCandidates(nodes, []int{0, 0}, 1)
	ty := cands[0]
	// Retract node 1.
	ty.Retract(nodes[1].Labels, nodes[1].Props)
	if ty.Instances != 1 {
		t.Errorf("Instances = %d, want 1", ty.Instances)
	}
	if ty.Props["a"].Count != 1 || ty.Props["a"].Kinds[pg.KindInt] != 1 {
		t.Errorf("a stats = %+v", ty.Props["a"])
	}
	if ty.Labels["T"] != 1 {
		t.Errorf("label count = %d, want 1", ty.Labels["T"])
	}
	// Retract node 0: property keys and labels vanish.
	ty.Retract(nodes[0].Labels, nodes[0].Props)
	if ty.Instances != 0 {
		t.Errorf("Instances = %d, want 0", ty.Instances)
	}
	if len(ty.Props) != 0 {
		t.Errorf("props must be empty: %v", ty.PropertyKeys())
	}
	if len(ty.Labels) != 0 {
		t.Errorf("labels must be empty: %v", ty.SortedLabels())
	}
}

func TestRetractDistinctValues(t *testing.T) {
	ty := NewNodeCandidate()
	ty.observe([]string{"T"}, map[string]pg.Value{"s": pg.Str("a")})
	ty.observe([]string{"T"}, map[string]pg.Value{"s": pg.Str("a")})
	ty.observe([]string{"T"}, map[string]pg.Value{"s": pg.Str("b")})
	ty.Retract([]string{"T"}, map[string]pg.Value{"s": pg.Str("b")})
	ps := ty.Props["s"]
	if len(ps.Distinct) != 1 || ps.Distinct["a"] != 2 {
		t.Errorf("distinct after retract = %v", ps.Distinct)
	}
}

func TestRetractEdgeDegrees(t *testing.T) {
	et := NewEdgeCandidate()
	et.observe([]string{"R"}, nil)
	et.SrcDeg[1]++
	et.DstDeg[2]++
	et.observe([]string{"R"}, nil)
	et.SrcDeg[1]++
	et.DstDeg[3]++
	et.RetractEdge([]string{"R"}, nil, 1, 3)
	if et.MaxOutDegree() != 1 {
		t.Errorf("out degree = %d, want 1", et.MaxOutDegree())
	}
	if len(et.DstDeg) != 1 {
		t.Errorf("dst degrees = %v", et.DstDeg)
	}
}

func TestCompactRemovesEmptyTypes(t *testing.T) {
	s := New()
	c1 := labeledCand([]string{"A"}, "x")
	c2 := labeledCand([]string{"B"}, "y")
	s.ExtractNodeTypes([]*NodeType{c1, c2}, 0.9)
	a := s.NodeTypeByToken("A")
	a.Retract([]string{"A"}, map[string]pg.Value{"x": pg.Str("x")})
	removedN, _ := s.Compact()
	if len(removedN) != 1 || removedN[0] != a {
		t.Fatalf("removed = %v", removedN)
	}
	if s.NodeTypeByToken("A") != nil {
		t.Error("token index must drop the removed type")
	}
	if s.NodeTypeByToken("B") == nil {
		t.Error("surviving type lost")
	}
	// Edge side.
	e1 := edgeCand([]string{"R"}, "A", "B")
	s.ExtractEdgeTypes([]*EdgeType{e1}, 0.9)
	r := s.EdgeTypeByToken("R")
	r.RetractEdge([]string{"R"}, map[string]pg.Value{}, 1, 2)
	_, removedE := s.Compact()
	if len(removedE) != 1 {
		t.Fatalf("removed edges = %v", removedE)
	}
	if s.EdgeTypeByToken("R") != nil {
		t.Error("edge token index must drop the removed type")
	}
}

// Property: observe followed by Retract of the same instances returns
// the type to its prior statistics (add/remove inverse), for random
// instance populations.
func TestRetractInverseProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%10) + 1
		base := NewNodeCandidate()
		base.observe([]string{"T"}, map[string]pg.Value{"k": pg.Int(1)})
		snapshot := base.Instances

		type inst struct {
			labels []string
			props  map[string]pg.Value
		}
		var added []inst
		for i := 0; i < n; i++ {
			props := map[string]pg.Value{}
			if rng.Intn(2) == 0 {
				props["k"] = pg.Int(int64(rng.Intn(5)))
			}
			if rng.Intn(2) == 0 {
				props["s"] = pg.Str([]string{"a", "b"}[rng.Intn(2)])
			}
			in := inst{labels: []string{"T"}, props: props}
			base.observe(in.labels, in.props)
			added = append(added, in)
		}
		for _, in := range added {
			base.Retract(in.labels, in.props)
		}
		if base.Instances != snapshot {
			return false
		}
		if base.Props["k"].Count != 1 || base.Props["k"].Kinds[pg.KindInt] != 1 {
			return false
		}
		_, hasS := base.Props["s"]
		return !hasS
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
