package schema

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/pghive/pghive/internal/pg"
)

// randomCandidates builds a reproducible random candidate population
// from a seed: a mix of labeled and unlabeled node candidates over a
// small label/key universe.
func randomCandidates(seed int64, n int) []*NodeType {
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"A", "B", "C", "D"}
	keys := []string{"k1", "k2", "k3", "k4", "k5", "k6"}
	cands := make([]*NodeType, n)
	for i := range cands {
		c := NewNodeCandidate()
		var ls []string
		if rng.Float64() < 0.7 {
			ls = []string{labels[rng.Intn(len(labels))]}
			if rng.Float64() < 0.3 {
				ls = append(ls, labels[rng.Intn(len(labels))])
			}
		}
		props := map[string]pg.Value{}
		for _, k := range keys {
			if rng.Float64() < 0.5 {
				props[k] = pg.Int(int64(rng.Intn(10)))
			}
		}
		for j := 0; j < 1+rng.Intn(3); j++ {
			c.observe(ls, props)
		}
		c.Token = pg.LabelToken(c.SortedLabels())
		c.Abstract = c.Token == ""
		cands[i] = c
	}
	return cands
}

// TestMonotonicityProperty verifies Lemma 1 / the §4.7 type
// completeness guarantee end to end: after extraction, every label and
// every property key observed in any candidate is present in the type
// the candidate was merged into, and global instance counts are
// conserved.
func TestMonotonicityProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		cands := randomCandidates(seed, n)
		// Snapshot candidate contents before extraction mutates the
		// types they merge into.
		type snap struct {
			labels []string
			keys   []string
			inst   int
		}
		snaps := make([]snap, n)
		for i, c := range cands {
			snaps[i] = snap{c.SortedLabels(), c.PropertyKeys(), c.Instances}
		}
		s := New()
		res := s.ExtractNodeTypes(cands, 0.9)

		totalInst := 0
		for i := range snaps {
			ty := res[i]
			if ty == nil {
				return false
			}
			for _, l := range snaps[i].labels {
				if ty.Labels[l] <= 0 {
					return false // label lost — violates Lemma 1
				}
			}
			for _, k := range snaps[i].keys {
				if ty.Props[k] == nil {
					return false // property lost — violates Lemma 1
				}
			}
		}
		for _, ty := range s.NodeTypes {
			totalInst += ty.Instances
		}
		wantInst := 0
		for i := range snaps {
			wantInst += snaps[i].inst
		}
		return totalInst == wantInst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalChainProperty verifies S_i ⊑ S_{i+1} (§4.6): feeding
// candidates in two batches yields a schema whose types cover
// everything a single-batch extraction covers, and batch order never
// loses information.
func TestIncrementalChainProperty(t *testing.T) {
	f := func(seed int64) bool {
		cands := randomCandidates(seed, 12)
		// Single shot.
		all := New()
		all.ExtractNodeTypes(randomCandidates(seed, 12), 0.9)

		// Two batches.
		inc := New()
		inc.ExtractNodeTypes(cands[:6], 0.9)
		// Snapshot after batch 1.
		cover1 := map[string]bool{}
		for _, ty := range inc.NodeTypes {
			for l := range ty.Labels {
				cover1["L:"+l] = true
			}
			for k := range ty.Props {
				cover1["K:"+k] = true
			}
		}
		inc.ExtractNodeTypes(cands[6:], 0.9)
		cover2 := map[string]bool{}
		for _, ty := range inc.NodeTypes {
			for l := range ty.Labels {
				cover2["L:"+l] = true
			}
			for k := range ty.Props {
				cover2["K:"+k] = true
			}
		}
		// Monotone: everything covered after batch 1 is still covered.
		for k := range cover1 {
			if !cover2[k] {
				return false
			}
		}
		// And the incremental coverage equals the single-shot one.
		coverAll := map[string]bool{}
		for _, ty := range all.NodeTypes {
			for l := range ty.Labels {
				coverAll["L:"+l] = true
			}
			for k := range ty.Props {
				coverAll["K:"+k] = true
			}
		}
		if len(coverAll) != len(cover2) {
			return false
		}
		for k := range coverAll {
			if !cover2[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestJaccardProperty checks the metric axioms we rely on: symmetry,
// range, and identity.
func TestJaccardProperty(t *testing.T) {
	mkSet := func(bits uint8) map[string]bool {
		keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
		m := map[string]bool{}
		for i, k := range keys {
			if bits&(1<<i) != 0 {
				m[k] = true
			}
		}
		return m
	}
	f := func(x, y uint8) bool {
		a, b := mkSet(x), mkSet(y)
		j1, j2 := Jaccard(a, b), Jaccard(b, a)
		if j1 != j2 {
			return false
		}
		if j1 < 0 || j1 > 1 {
			return false
		}
		if x == y && j1 != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
