package schema

// Regression tests for persistence edge cases: every state the
// pipeline can actually leave in a schema — including the awkward
// corners (empty schema, overflowed distinct trackers, abstract
// types, edge degree maps, retraction residue) — must read back
// deeply equal to the in-memory original, because checkpoint/restore
// correctness (bit-identical resumption) is built on this layer.

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/pghive/pghive/internal/pg"
)

// roundTrip serializes and re-reads a schema.
func roundTrip(t *testing.T, s *Schema) *Schema {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// assertTypesEqual deep-compares the exported state of every type.
func assertTypesEqual(t *testing.T, want, got *Schema) {
	t.Helper()
	if len(got.NodeTypes) != len(want.NodeTypes) || len(got.EdgeTypes) != len(want.EdgeTypes) {
		t.Fatalf("type counts differ: %d/%d vs %d/%d",
			len(got.NodeTypes), len(got.EdgeTypes), len(want.NodeTypes), len(want.EdgeTypes))
	}
	for i, w := range want.NodeTypes {
		if !reflect.DeepEqual(w, got.NodeTypes[i]) {
			t.Errorf("node type %d (%s) differs after round trip:\nwant %+v\ngot  %+v",
				i, w.Name(), w, got.NodeTypes[i])
		}
	}
	for i, w := range want.EdgeTypes {
		if !reflect.DeepEqual(w, got.EdgeTypes[i]) {
			t.Errorf("edge type %d (%s) differs after round trip:\nwant %+v\ngot  %+v",
				i, w.Name(), w, got.EdgeTypes[i])
		}
	}
}

func TestPersistEmptySchema(t *testing.T) {
	got := roundTrip(t, New())
	if len(got.NodeTypes) != 0 || len(got.EdgeTypes) != 0 {
		t.Fatalf("empty schema read back %d/%d types", len(got.NodeTypes), len(got.EdgeTypes))
	}
	// An empty restored schema must still be usable as a merge target.
	nt := NewNodeCandidate()
	nt.Token = "T"
	nt.Labels["T"] = 1
	nt.Instances = 1
	got.ExtractNodeTypes([]*NodeType{nt}, DefaultTheta)
	if got.NodeTypeByToken("T") == nil || got.NodeTypes[0].ID != 0 {
		t.Fatal("restored empty schema does not extend cleanly")
	}
}

func TestPersistDistinctOverflow(t *testing.T) {
	s := New()
	nt := NewNodeCandidate()
	nt.Token = "Doc"
	nt.Labels["Doc"] = 20
	nt.Instances = 20
	// Overflowed tracker: Distinct released, flag set.
	nt.Props["body"] = &PropStat{Count: 20, DistinctOverflow: true, DataType: pg.KindString}
	// Still-tracking neighbor for contrast.
	nt.Props["lang"] = &PropStat{Count: 20, Distinct: map[string]int{"en": 12, "de": 8},
		DataType: pg.KindString, Enum: []string{"de", "en"}}
	nt.Props["body"].Kinds[pg.KindString] = 20
	nt.Props["lang"].Kinds[pg.KindString] = 20
	s.AppendNodeTypes([]*NodeType{nt})

	got := roundTrip(t, s)
	assertTypesEqual(t, s, got)
	ps := got.NodeTypes[0].Props["body"]
	if !ps.DistinctOverflow || ps.Distinct != nil {
		t.Fatal("overflowed tracker state lost in round trip")
	}
	// The restored tracker must keep refusing to track (overflow is
	// sticky), exactly like the in-memory one.
	ps.observeValue(pg.Str("x"))
	if ps.Distinct != nil {
		t.Fatal("restored overflow flag did not stay sticky")
	}
}

func TestPersistAbstractTypes(t *testing.T) {
	s := New()
	ab := NewNodeCandidate()
	ab.Abstract = true
	ab.Instances = 2
	ab.Props["k"] = &PropStat{Count: 2, Mandatory: true, DataType: pg.KindInt, MinInt: 1, MaxInt: 5}
	ab.Props["k"].Kinds[pg.KindInt] = 2
	s.AppendNodeTypes([]*NodeType{ab})
	abe := NewEdgeCandidate()
	abe.Abstract = true
	abe.Instances = 1
	s.AppendEdgeTypes([]*EdgeType{abe})

	got := roundTrip(t, s)
	assertTypesEqual(t, s, got)
	if !got.NodeTypes[0].Abstract || got.NodeTypes[0].Name() != "ABSTRACT_0" {
		t.Fatalf("abstract node type read back as %q", got.NodeTypes[0].Name())
	}
	if len(got.AbstractNodeTypes()) != 1 || len(got.AbstractEdgeTypes()) != 1 {
		t.Fatal("abstract type accessors disagree after round trip")
	}
	// Token-less types must stay out of the token indexes.
	if got.NodeTypeByToken("") != nil || got.EdgeTypeByToken("") != nil {
		t.Fatal("abstract types leaked into the token indexes")
	}
}

func TestPersistEdgeDegreeMaps(t *testing.T) {
	s := New()
	et := NewEdgeCandidate()
	et.Token = "REL"
	et.Labels["REL"] = 5
	et.Instances = 5
	et.SrcTokens["A"] = true
	et.SrcTokens["B"] = true
	et.DstTokens["C"] = true
	// Degree evidence including large and negative IDs (IDs are
	// loader-controlled int64s, so the string key encoding must cover
	// the full range).
	et.SrcDeg[pg.ID(0)] = 2
	et.SrcDeg[pg.ID(1<<40)] = 1
	et.SrcDeg[pg.ID(-7)] = 2
	et.DstDeg[pg.ID(3)] = 5
	et.Cardinality = CardManyToOne
	s.AppendEdgeTypes([]*EdgeType{et})

	got := roundTrip(t, s)
	assertTypesEqual(t, s, got)
	ge := got.EdgeTypes[0]
	if ge.MaxOutDegree() != 2 || ge.MaxInDegree() != 5 {
		t.Fatalf("degree maxima %d/%d after round trip, want 2/5",
			ge.MaxOutDegree(), ge.MaxInDegree())
	}
	// The restored maps must be mutable merge targets (a nil map here
	// would panic the next incremental batch).
	ge.SrcDeg[pg.ID(9)]++
	ge.DstDeg[pg.ID(9)]++
}

// TestPersistRetractionResidue pins the state retraction leaves
// behind — the exact case that used to diverge: retracting the last
// tracked string left an empty non-nil Distinct map in memory, which
// reads back as nil.
func TestPersistRetractionResidue(t *testing.T) {
	s := New()
	nt := NewNodeCandidate()
	nt.Token = "P"
	nt.Labels["P"] = 2
	nt.Instances = 2
	s.AppendNodeTypes([]*NodeType{nt})
	// The property must survive the retraction (Count stays positive)
	// while its *last tracked string* goes away — a mixed-kind
	// property does exactly that.
	nt.observe([]string{"P"}, map[string]pg.Value{"tag": pg.Str("only")})
	nt.observe([]string{"P"}, map[string]pg.Value{"tag": pg.Int(5)})
	nt.Retract([]string{"P"}, map[string]pg.Value{"tag": pg.Str("only")})
	if ps := nt.Props["tag"]; ps == nil || ps.Count != 1 {
		t.Fatal("fixture lost the property entirely; the residue case needs it to survive")
	}

	got := roundTrip(t, s)
	assertTypesEqual(t, s, got)
}

// TestPersistMultiTokenEdgeOrder pins that edge types sharing a label
// token keep their order (and therefore their identity) through a
// round trip — EdgeTypesByToken returns them in schema order.
func TestPersistMultiTokenEdgeOrder(t *testing.T) {
	s := New()
	mk := func(src, dst string, n int) *EdgeType {
		et := NewEdgeCandidate()
		et.Token = "LINKS"
		et.Labels["LINKS"] = n
		et.Instances = n
		et.SrcTokens[src] = true
		et.DstTokens[dst] = true
		return et
	}
	s.AppendEdgeTypes([]*EdgeType{mk("A", "B", 3), mk("C", "D", 1)})
	got := roundTrip(t, s)
	assertTypesEqual(t, s, got)
	ts := got.EdgeTypesByToken("LINKS")
	if len(ts) != 2 || !ts[0].SrcTokens["A"] || !ts[1].SrcTokens["C"] {
		t.Fatal("edge types sharing a token lost order or identity in round trip")
	}
}
