package infer

import (
	"sort"

	"github.com/pghive/pghive/internal/pg"
	"github.com/pghive/pghive/internal/schema"
)

// extended.go implements the refinements the paper leaves as future
// work in §4.4: enumerated string types and bounded integer ranges
// ("we leave for future work the identification of more detailed
// datatypes, such as enumerated types or bounded ranges"), and exact
// cardinality lower bounds ("we cannot determine whether the source's
// lower bound is exactly 0 or 1 ... we leave this as future work").

// EnumOptions tunes enumeration detection.
type EnumOptions struct {
	// MaxValues is the largest closed value set reported as an enum
	// (default 8; must be ≤ schema.EnumTrackLimit).
	MaxValues int
	// MinSupport requires at least this many observations per
	// distinct value on average before a set counts as closed
	// (default 3), so tiny samples don't produce spurious enums.
	MinSupport int
}

func (o EnumOptions) withDefaults() EnumOptions {
	if o.MaxValues <= 0 {
		o.MaxValues = 8
	}
	if o.MaxValues > schema.EnumTrackLimit {
		o.MaxValues = schema.EnumTrackLimit
	}
	if o.MinSupport <= 0 {
		o.MinSupport = 3
	}
	return o
}

// RefineDataTypes derives enumerations and integer ranges for every
// property of a type whose base data type allows them. It must run
// after DataTypes (it reads PropStat.DataType).
func RefineDataTypes(t *schema.Type, o EnumOptions) {
	o = o.withDefaults()
	for _, ps := range t.Props {
		ps.Enum = nil
		ps.HasIntRange = false
		switch ps.DataType {
		case pg.KindString:
			if ps.DistinctOverflow || len(ps.Distinct) == 0 || len(ps.Distinct) > o.MaxValues {
				continue
			}
			// Pure string column (no mixed kinds were generalized
			// into it) with a small closed value set and enough
			// support per value.
			if ps.Kinds[pg.KindString] != ps.Count {
				continue
			}
			if ps.Count < o.MinSupport*len(ps.Distinct) {
				continue
			}
			vals := make([]string, 0, len(ps.Distinct))
			for v := range ps.Distinct {
				vals = append(vals, v)
			}
			sort.Strings(vals)
			ps.Enum = vals
		case pg.KindInt:
			if ps.Kinds[pg.KindInt] > 0 {
				ps.HasIntRange = true
			}
		}
	}
}

// CardinalityBound holds the exact participation lower bounds of an
// edge type (0 or 1 on each side): 1 when every instance of the
// endpoint's node type participates in at least one edge of this
// type.
type CardinalityBound struct {
	SrcLower int
	DstLower int
}

// LowerBounds computes, for each edge type, whether every node of its
// source (respectively target) types participates — the exact lower
// bound the paper's §4.4 approximates as unknown. nodeAssign is the
// final node-type assignment; edgeAssign the final edge-type
// assignment; edges the concrete edge list (endpoints + IDs).
func LowerBounds(
	s *schema.Schema,
	nodeAssign map[pg.ID]*schema.NodeType,
	edgeAssign map[pg.ID]*schema.EdgeType,
	edges []pg.Edge,
) map[*schema.EdgeType]CardinalityBound {
	// Count participating nodes per (edge type, side).
	srcSeen := map[*schema.EdgeType]map[pg.ID]bool{}
	dstSeen := map[*schema.EdgeType]map[pg.ID]bool{}
	// Node population per node type name (types reachable from the
	// edge's endpoint token sets).
	for i := range edges {
		e := &edges[i]
		et := edgeAssign[e.ID]
		if et == nil {
			continue
		}
		if srcSeen[et] == nil {
			srcSeen[et] = map[pg.ID]bool{}
			dstSeen[et] = map[pg.ID]bool{}
		}
		srcSeen[et][e.Src] = true
		dstSeen[et][e.Dst] = true
	}
	// Population per node type.
	population := map[*schema.NodeType]int{}
	for _, nt := range nodeAssign {
		population[nt]++
	}
	// Resolve each edge type's endpoint node types by token.
	out := make(map[*schema.EdgeType]CardinalityBound, len(s.EdgeTypes))
	for _, et := range s.EdgeTypes {
		bound := CardinalityBound{}
		bound.SrcLower = participationBound(s, et.SrcTokens, srcSeen[et], population)
		bound.DstLower = participationBound(s, et.DstTokens, dstSeen[et], population)
		out[et] = bound
	}
	return out
}

// participationBound returns 1 when the number of distinct
// participating endpoint nodes equals the total population of the
// endpoint node types, 0 otherwise (including when the endpoint types
// cannot be resolved).
func participationBound(s *schema.Schema, tokens map[string]bool, seen map[pg.ID]bool, population map[*schema.NodeType]int) int {
	if len(tokens) == 0 || seen == nil {
		return 0
	}
	total := 0
	for tok := range tokens {
		nt := s.NodeTypeByToken(tok)
		if nt == nil {
			// Endpoint resolved to an abstract type name; find it.
			nt = abstractByName(s, tok)
		}
		if nt == nil {
			return 0
		}
		total += population[nt]
	}
	if total == 0 {
		return 0
	}
	if len(seen) >= total {
		return 1
	}
	return 0
}

func abstractByName(s *schema.Schema, name string) *schema.NodeType {
	for _, nt := range s.NodeTypes {
		if nt.Abstract && nt.Name() == name {
			return nt
		}
	}
	return nil
}
