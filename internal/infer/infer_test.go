package infer

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/pghive/pghive/internal/pg"
	"github.com/pghive/pghive/internal/schema"
)

func tally(ints, floats, bools, dates, dts, strs int) Tally {
	var t Tally
	t[pg.KindInt] = ints
	t[pg.KindFloat] = floats
	t[pg.KindBool] = bools
	t[pg.KindDate] = dates
	t[pg.KindDateTime] = dts
	t[pg.KindString] = strs
	return t
}

func TestDataTypeFromTally(t *testing.T) {
	cases := []struct {
		t    Tally
		want pg.Kind
	}{
		{tally(10, 0, 0, 0, 0, 0), pg.KindInt},
		{tally(5, 5, 0, 0, 0, 0), pg.KindFloat},
		{tally(0, 7, 0, 0, 0, 0), pg.KindFloat},
		{tally(0, 0, 3, 0, 0, 0), pg.KindBool},
		{tally(0, 0, 0, 9, 0, 0), pg.KindDate},
		{tally(0, 0, 0, 4, 4, 0), pg.KindDateTime},
		{tally(0, 0, 0, 0, 6, 0), pg.KindDateTime},
		{tally(0, 0, 0, 0, 0, 2), pg.KindString},
		{tally(10, 0, 0, 0, 0, 1), pg.KindString}, // string outlier generalizes
		{tally(3, 0, 3, 0, 0, 0), pg.KindString},  // cross-group mix
		{tally(0, 0, 0, 0, 0, 0), pg.KindString},  // empty defaults to string
	}
	for i, c := range cases {
		if got := DataTypeFromTally(&c.t); got != c.want {
			t.Errorf("case %d: DataTypeFromTally = %v, want %v", i, got, c.want)
		}
	}
}

// Property (§4.7 guarantee iii): the inferred type is always
// compatible with every observed value.
func TestDataTypeCompatibilityProperty(t *testing.T) {
	f := func(a, b, c, d, e, s uint8) bool {
		ta := tally(int(a%50), int(b%50), int(c%50), int(d%50), int(e%50), int(s%50))
		dt := DataTypeFromTally(&ta)
		for k := range ta {
			if ta[k] > 0 && !compatible(pg.Kind(k), dt) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleTallySizes(t *testing.T) {
	full := tally(10000, 0, 0, 0, 0, 0)
	s := SampleTally(&full, 0.1, 100, 1)
	if got := total(&s); got != 1000 {
		t.Errorf("10%% of 10000 = %d, want 1000", got)
	}
	// MinSample floor applies.
	s = SampleTally(&full, 0.001, 500, 1)
	if got := total(&s); got != 500 {
		t.Errorf("floored sample = %d, want 500", got)
	}
	// Small populations are returned whole.
	small := tally(50, 0, 0, 0, 0, 0)
	s = SampleTally(&small, 0.1, 1000, 1)
	if got := total(&s); got != 50 {
		t.Errorf("small population sample = %d, want all 50", got)
	}
}

func TestSampleTallyDeterministic(t *testing.T) {
	full := tally(5000, 300, 0, 0, 0, 7)
	a := SampleTally(&full, 0.1, 100, 42)
	b := SampleTally(&full, 0.1, 100, 42)
	if a != b {
		t.Fatal("sampling must be deterministic for a fixed seed")
	}
}

// Property: a sampled tally never exceeds the full tally in any kind,
// and its total matches the requested size.
func TestSampleTallyBoundsProperty(t *testing.T) {
	f := func(a, b, s uint16, seed int64) bool {
		full := tally(int(a), int(b), 0, 0, 0, int(s%10))
		n := total(&full)
		out := SampleTally(&full, 0.2, 50, seed)
		for k := range out {
			if out[k] > full[k] {
				return false
			}
		}
		want := int(0.2 * float64(n))
		if want < 50 {
			want = 50
		}
		if want > n {
			want = n
		}
		return total(&out) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSamplingErrorShape(t *testing.T) {
	// Sample inferred DATE, but full data has 3% strings: error 0.03.
	full := tally(0, 0, 0, 970, 0, 30)
	if got := SamplingError(&full, pg.KindDate); math.Abs(got-0.03) > 1e-12 {
		t.Errorf("error = %v, want 0.03", got)
	}
	// Inferring STRING is always compatible: error 0.
	if got := SamplingError(&full, pg.KindString); got != 0 {
		t.Errorf("string inference error = %v, want 0", got)
	}
	// INT inferred but 15% floats: error 0.15.
	full = tally(850, 150, 0, 0, 0, 0)
	if got := SamplingError(&full, pg.KindInt); math.Abs(got-0.15) > 1e-12 {
		t.Errorf("error = %v, want 0.15", got)
	}
	var empty Tally
	if got := SamplingError(&empty, pg.KindInt); got != 0 {
		t.Errorf("empty tally error = %v, want 0", got)
	}
}

func TestConstraints(t *testing.T) {
	// 3 instances of one type; "name" on all, "url" on one.
	nodes := make([]pg.Node, 3)
	for i := range nodes {
		props := map[string]pg.Value{"name": pg.Str("x")}
		if i == 0 {
			props["url"] = pg.Str("http")
		}
		nodes[i] = pg.Node{ID: pg.ID(i), Labels: []string{"Org"}, Props: props}
	}
	ty := schema.BuildNodeCandidates(nodes, []int{0, 0, 0}, 1)[0]
	Constraints(&ty.Type)
	if !ty.Props["name"].Mandatory {
		t.Error("name appears in every instance: must be mandatory (Example 6)")
	}
	if ty.Props["url"].Mandatory {
		t.Error("url is optional")
	}
}

func TestCardinalityInterpretation(t *testing.T) {
	mk := func(srcDeg, dstDeg map[pg.ID]int) *schema.EdgeType {
		et := schema.NewEdgeCandidate()
		for id, d := range srcDeg {
			et.SrcDeg[id] = d
		}
		for id, d := range dstDeg {
			et.DstDeg[id] = d
		}
		return et
	}
	cases := []struct {
		name string
		src  map[pg.ID]int
		dst  map[pg.ID]int
		want schema.Cardinality
	}{
		{"one-to-one", map[pg.ID]int{1: 1}, map[pg.ID]int{2: 1}, schema.CardOneToOne},
		{"works_at N:1", map[pg.ID]int{1: 1, 2: 1, 3: 1}, map[pg.ID]int{9: 3}, schema.CardManyToOne},
		{"1:N", map[pg.ID]int{1: 3}, map[pg.ID]int{7: 1, 8: 1, 9: 1}, schema.CardOneToMany},
		{"knows M:N", map[pg.ID]int{1: 2, 2: 2}, map[pg.ID]int{3: 2, 4: 2}, schema.CardManyToMany},
		{"empty", nil, nil, schema.CardUnknown},
	}
	for _, c := range cases {
		et := mk(c.src, c.dst)
		Cardinality(et)
		if et.Cardinality != c.want {
			t.Errorf("%s: got %v, want %v", c.name, et.Cardinality, c.want)
		}
	}
}

func TestFinalizeEndToEnd(t *testing.T) {
	s := schema.New()
	nodes := []pg.Node{
		{ID: 0, Labels: []string{"Person"}, Props: map[string]pg.Value{"name": pg.Str("a"), "age": pg.Int(30)}},
		{ID: 1, Labels: []string{"Person"}, Props: map[string]pg.Value{"name": pg.Str("b"), "age": pg.Int(31)}},
		{ID: 2, Labels: []string{"Person"}, Props: map[string]pg.Value{"name": pg.Str("c")}},
	}
	cands := schema.BuildNodeCandidates(nodes, []int{0, 0, 0}, 1)
	s.ExtractNodeTypes(cands, 0)

	edges := []pg.Edge{
		{ID: 0, Labels: []string{"KNOWS"}, Src: 0, Dst: 1, Props: map[string]pg.Value{"since": pg.Int(2020)}},
		{ID: 1, Labels: []string{"KNOWS"}, Src: 0, Dst: 2, Props: nil},
	}
	ecands := schema.BuildEdgeCandidates(edges, []int{0, 0}, 1, []string{"Person", "Person"}, []string{"Person", "Person"})
	s.ExtractEdgeTypes(ecands, 0)

	Finalize(s, Options{})
	person := s.NodeTypeByToken("Person")
	if !person.Props["name"].Mandatory || person.Props["age"].Mandatory {
		t.Error("constraints wrong")
	}
	if person.Props["age"].DataType != pg.KindInt {
		t.Errorf("age data type = %v, want INT", person.Props["age"].DataType)
	}
	if person.Props["name"].DataType != pg.KindString {
		t.Errorf("name data type = %v, want STRING", person.Props["name"].DataType)
	}
	knows := s.EdgeTypeByToken("KNOWS")
	if knows.Cardinality != schema.CardOneToMany {
		t.Errorf("KNOWS cardinality = %v, want 1:N (one source, two targets)", knows.Cardinality)
	}
	if knows.Props["since"].Mandatory {
		t.Error("since must be optional (absent on one instance)")
	}
}

func TestFinalizeSampledMode(t *testing.T) {
	// 2000 int values with 10 string outliers: full scan must say
	// STRING; a 10% sample will often miss the outliers and say INT.
	nodes := make([]pg.Node, 2010)
	for i := range nodes {
		v := pg.Value(pg.Int(int64(i)))
		if i < 10 {
			v = pg.Str("oops")
		}
		nodes[i] = pg.Node{ID: pg.ID(i), Labels: []string{"T"}, Props: map[string]pg.Value{"p": v}}
	}
	assign := make([]int, len(nodes))
	cands := schema.BuildNodeCandidates(nodes, assign, 1)

	sFull := schema.New()
	sFull.ExtractNodeTypes(cands, 0)
	Finalize(sFull, Options{})
	ty := sFull.NodeTypeByToken("T")
	if ty.Props["p"].DataType != pg.KindString {
		t.Fatalf("full scan type = %v, want STRING", ty.Props["p"].DataType)
	}

	// Sampled: with MinSample 50 and rate 0.02 (sample of 50 out of
	// 2010) the outliers are likely missed for some seed.
	missed := false
	for seed := int64(0); seed < 20; seed++ {
		Finalize(sFull, Options{SampleDataTypes: true, SampleRate: 0.02, MinSample: 50, Seed: seed})
		if ty.Props["p"].DataType == pg.KindInt {
			missed = true
			break
		}
	}
	if !missed {
		t.Error("sampling never missed 0.5% outliers across 20 seeds; sampler suspicious")
	}
}
