package infer

import (
	"fmt"
	"testing"

	"github.com/pghive/pghive/internal/pg"
	"github.com/pghive/pghive/internal/schema"
)

func buildTypeFromValues(t *testing.T, key string, values []pg.Value) *schema.NodeType {
	t.Helper()
	nodes := make([]pg.Node, len(values))
	for i, v := range values {
		nodes[i] = pg.Node{ID: pg.ID(i), Labels: []string{"T"},
			Props: map[string]pg.Value{key: v}}
	}
	assign := make([]int, len(nodes))
	cands := schema.BuildNodeCandidates(nodes, assign, 1)
	s := schema.New()
	s.ExtractNodeTypes(cands, 0.9)
	return s.NodeTypeByToken("T")
}

func TestEnumDetection(t *testing.T) {
	var vals []pg.Value
	for i := 0; i < 30; i++ {
		vals = append(vals, pg.Str([]string{"red", "green", "blue"}[i%3]))
	}
	ty := buildTypeFromValues(t, "color", vals)
	Constraints(&ty.Type)
	DataTypes(&ty.Type, Options{})
	RefineDataTypes(&ty.Type, EnumOptions{})
	ps := ty.Props["color"]
	if len(ps.Enum) != 3 {
		t.Fatalf("Enum = %v, want 3 values", ps.Enum)
	}
	if ps.Enum[0] != "blue" || ps.Enum[1] != "green" || ps.Enum[2] != "red" {
		t.Errorf("Enum must be sorted: %v", ps.Enum)
	}
}

func TestEnumRejectsOpenDomains(t *testing.T) {
	// Many distinct values: not an enum.
	var vals []pg.Value
	for i := 0; i < 100; i++ {
		vals = append(vals, pg.Str(fmt.Sprintf("name-%d", i)))
	}
	ty := buildTypeFromValues(t, "name", vals)
	DataTypes(&ty.Type, Options{})
	RefineDataTypes(&ty.Type, EnumOptions{})
	if ty.Props["name"].Enum != nil {
		t.Errorf("open string domain must not be an enum: %v", ty.Props["name"].Enum)
	}
	if !ty.Props["name"].DistinctOverflow {
		t.Error("tracker must have overflowed at 100 distinct values")
	}
}

func TestEnumRejectsLowSupport(t *testing.T) {
	// 4 values seen once each: too little support for a closed set.
	vals := []pg.Value{pg.Str("a"), pg.Str("b"), pg.Str("c"), pg.Str("d")}
	ty := buildTypeFromValues(t, "x", vals)
	DataTypes(&ty.Type, Options{})
	RefineDataTypes(&ty.Type, EnumOptions{})
	if ty.Props["x"].Enum != nil {
		t.Errorf("low-support domain must not be an enum: %v", ty.Props["x"].Enum)
	}
}

func TestEnumRejectsMixedKinds(t *testing.T) {
	// Strings generalized from a mixed column are not closed sets.
	vals := []pg.Value{
		pg.Str("a"), pg.Str("a"), pg.Str("b"), pg.Str("b"),
		pg.Str("a"), pg.Str("b"), pg.Int(4), pg.Str("a"), pg.Str("b"),
	}
	ty := buildTypeFromValues(t, "x", vals)
	DataTypes(&ty.Type, Options{})
	RefineDataTypes(&ty.Type, EnumOptions{})
	if ty.Props["x"].Enum != nil {
		t.Errorf("mixed-kind column must not be an enum: %v", ty.Props["x"].Enum)
	}
}

func TestIntRange(t *testing.T) {
	vals := []pg.Value{pg.Int(5), pg.Int(-3), pg.Int(40), pg.Int(12)}
	ty := buildTypeFromValues(t, "n", vals)
	DataTypes(&ty.Type, Options{})
	RefineDataTypes(&ty.Type, EnumOptions{})
	ps := ty.Props["n"]
	if !ps.HasIntRange {
		t.Fatal("integer column must carry a range")
	}
	if ps.MinInt != -3 || ps.MaxInt != 40 {
		t.Errorf("range = [%d, %d], want [-3, 40]", ps.MinInt, ps.MaxInt)
	}
}

func TestRangeMergesAcrossClusters(t *testing.T) {
	// Two clusters of the same type: merged range must span both.
	mk := func(base int64, ids int) []*schema.NodeType {
		nodes := make([]pg.Node, 3)
		for i := range nodes {
			nodes[i] = pg.Node{ID: pg.ID(ids + i), Labels: []string{"T"},
				Props: map[string]pg.Value{"n": pg.Int(base + int64(i))}}
		}
		return schema.BuildNodeCandidates(nodes, []int{0, 0, 0}, 1)
	}
	s := schema.New()
	s.ExtractNodeTypes(mk(10, 0), 0.9)
	s.ExtractNodeTypes(mk(-100, 10), 0.9)
	ty := s.NodeTypeByToken("T")
	DataTypes(&ty.Type, Options{})
	RefineDataTypes(&ty.Type, EnumOptions{})
	ps := ty.Props["n"]
	if ps.MinInt != -100 || ps.MaxInt != 12 {
		t.Errorf("merged range = [%d, %d], want [-100, 12]", ps.MinInt, ps.MaxInt)
	}
}

func TestLowerBounds(t *testing.T) {
	s := schema.New()
	// Person nodes 0..3, Org node 10. Every person works somewhere →
	// src lower bound 1. Only some orgs (here: the one org) have
	// employees → dst lower bound 1 too. Then add an org with no
	// employees via a second org node: dst bound drops to 0.
	nodes := []pg.Node{
		{ID: 0, Labels: []string{"Person"}, Props: map[string]pg.Value{"n": pg.Str("a")}},
		{ID: 1, Labels: []string{"Person"}, Props: map[string]pg.Value{"n": pg.Str("b")}},
		{ID: 10, Labels: []string{"Org"}, Props: map[string]pg.Value{"u": pg.Str("x")}},
		{ID: 11, Labels: []string{"Org"}, Props: map[string]pg.Value{"u": pg.Str("y")}},
	}
	cands := schema.BuildNodeCandidates(nodes, []int{0, 0, 1, 1}, 2)
	ntypes := s.ExtractNodeTypes(cands, 0.9)
	nodeAssign := map[pg.ID]*schema.NodeType{}
	for i, n := range nodes {
		nodeAssign[n.ID] = ntypes[[]int{0, 0, 1, 1}[i]]
	}

	edges := []pg.Edge{
		{ID: 0, Labels: []string{"WORKS_AT"}, Src: 0, Dst: 10},
		{ID: 1, Labels: []string{"WORKS_AT"}, Src: 1, Dst: 10},
	}
	ecands := schema.BuildEdgeCandidates(edges, []int{0, 0}, 1,
		[]string{"Person", "Person"}, []string{"Org", "Org"})
	etypes := s.ExtractEdgeTypes(ecands, 0.9)
	edgeAssign := map[pg.ID]*schema.EdgeType{0: etypes[0], 1: etypes[0]}

	bounds := LowerBounds(s, nodeAssign, edgeAssign, edges)
	b := bounds[etypes[0]]
	if b.SrcLower != 1 {
		t.Errorf("every Person participates: src lower = %d, want 1", b.SrcLower)
	}
	if b.DstLower != 0 {
		t.Errorf("org 11 has no employees: dst lower = %d, want 0", b.DstLower)
	}
}

func TestLowerBoundsFullParticipation(t *testing.T) {
	s := schema.New()
	nodes := []pg.Node{
		{ID: 0, Labels: []string{"A"}},
		{ID: 1, Labels: []string{"B"}},
	}
	cands := schema.BuildNodeCandidates(nodes, []int{0, 1}, 2)
	ntypes := s.ExtractNodeTypes(cands, 0.9)
	nodeAssign := map[pg.ID]*schema.NodeType{0: ntypes[0], 1: ntypes[1]}
	edges := []pg.Edge{{ID: 0, Labels: []string{"R"}, Src: 0, Dst: 1}}
	ecands := schema.BuildEdgeCandidates(edges, []int{0}, 1, []string{"A"}, []string{"B"})
	etypes := s.ExtractEdgeTypes(ecands, 0.9)
	bounds := LowerBounds(s, nodeAssign, map[pg.ID]*schema.EdgeType{0: etypes[0]}, edges)
	b := bounds[etypes[0]]
	if b.SrcLower != 1 || b.DstLower != 1 {
		t.Errorf("full participation: bounds = %+v, want 1/1", b)
	}
}
