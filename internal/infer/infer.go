// Package infer implements the post-processing steps of §4.4:
// mandatory/optional property constraints, property data-type
// inference (full-scan and sampling-based), and edge cardinalities.
// All inferences read the occurrence statistics accumulated in the
// schema types, so they can run at any point of an incremental
// discovery without revisiting earlier batches.
package infer

import (
	"math/rand"

	"github.com/pghive/pghive/internal/pg"
	"github.com/pghive/pghive/internal/schema"
)

// Options configures Finalize.
type Options struct {
	// SampleDataTypes enables the paper's sampling-based data-type
	// inference (§4.4): instead of considering every observed value,
	// a random sample of max(MinSample, SampleRate·N) values per
	// property is examined.
	SampleDataTypes bool
	// SampleRate is the sampled fraction (default 0.10).
	SampleRate float64
	// MinSample is the sample-size floor (default 1000).
	MinSample int
	// Seed drives the sampling.
	Seed int64
	// Enums tunes the enumeration/range refinement (zero value =
	// defaults).
	Enums EnumOptions
	// DisableRefinement turns off enum and integer-range detection
	// (§4.4's future-work datatypes, on by default).
	DisableRefinement bool
}

func (o Options) withDefaults() Options {
	if o.SampleRate <= 0 {
		o.SampleRate = 0.10
	}
	if o.MinSample <= 0 {
		o.MinSample = 1000
	}
	return o
}

// Tally is the per-kind value-count array accumulated in
// schema.PropStat.
type Tally = [pg.KindString + 1]int

// total sums a tally.
func total(t *Tally) int {
	n := 0
	for _, c := range t {
		n += c
	}
	return n
}

// DataTypeFromTally assigns the most specific data type compatible
// with every observed value (§4.7: "all values of a property are
// consistent with the inferred type, even though the type may be a
// generalization as string"):
//
//	only INT                → INT
//	INT/FLOAT mixes         → DOUBLE
//	only BOOLEAN            → BOOLEAN
//	only DATE               → DATE
//	DATE/TIMESTAMP mixes    → TIMESTAMP
//	anything else           → STRING
func DataTypeFromTally(t *Tally) pg.Kind {
	n := total(t)
	if n == 0 {
		return pg.KindString
	}
	ints, floats := t[pg.KindInt], t[pg.KindFloat]
	bools := t[pg.KindBool]
	dates, dts := t[pg.KindDate], t[pg.KindDateTime]
	strs := t[pg.KindString] + t[pg.KindInvalid]
	switch {
	case ints == n:
		return pg.KindInt
	case ints+floats == n:
		return pg.KindFloat
	case bools == n:
		return pg.KindBool
	case dates == n:
		return pg.KindDate
	case dates+dts == n:
		return pg.KindDateTime
	case strs >= 0:
		return pg.KindString
	}
	return pg.KindString
}

// SampleTally draws a without-replacement sample of size
// max(minSample, rate·N) (capped at N) from a full tally and returns
// the sampled tally. The draw is deterministic for a given seed.
func SampleTally(t *Tally, rate float64, minSample int, seed int64) Tally {
	n := total(t)
	want := int(rate * float64(n))
	if want < minSample {
		want = minSample
	}
	if want >= n {
		return *t
	}
	rng := rand.New(rand.NewSource(seed))
	var out Tally
	remainingPop := n
	remainingSample := want
	for k := range t {
		if t[k] == 0 {
			continue
		}
		// Sequential hypergeometric draw: decide per item of this
		// kind whether it enters the sample, conditioning on the
		// remaining quota.
		for i := 0; i < t[k] && remainingSample > 0; i++ {
			if rng.Float64() < float64(remainingSample)/float64(remainingPop) {
				out[k]++
				remainingSample--
			}
			remainingPop--
		}
		// Any items of this kind left after quota exhaustion just
		// shrink the remaining population.
		if remainingSample == 0 {
			break
		}
	}
	return out
}

// compatible reports whether a value of kind k conforms to the
// inferred data type dt.
func compatible(k pg.Kind, dt pg.Kind) bool {
	switch dt {
	case pg.KindString:
		return true
	case pg.KindInt:
		return k == pg.KindInt
	case pg.KindFloat:
		return k == pg.KindInt || k == pg.KindFloat
	case pg.KindBool:
		return k == pg.KindBool
	case pg.KindDate:
		return k == pg.KindDate
	case pg.KindDateTime:
		return k == pg.KindDate || k == pg.KindDateTime
	default:
		return false
	}
}

// SamplingError quantifies the §5 "sampling error" of a property: the
// fraction of all observed values that are incompatible with the
// data type inferred from the sampled tally. A property whose sample
// missed rare outliers (e.g. sample says DATE, full data holds a few
// malformed strings) gets a small positive error; agreement gives 0.
func SamplingError(full *Tally, sampledKind pg.Kind) float64 {
	n := total(full)
	if n == 0 {
		return 0
	}
	bad := 0
	for k := range full {
		if full[k] > 0 && !compatible(pg.Kind(k), sampledKind) {
			bad += full[k]
		}
	}
	return float64(bad) / float64(n)
}

// Constraints fills the Mandatory flag of every property of a type: a
// property is mandatory iff it appears in all instances (f_T(p) = 1,
// §4.4).
func Constraints(t *schema.Type) {
	for _, ps := range t.Props {
		ps.Mandatory = ps.Count == t.Instances && t.Instances > 0
	}
}

// DataTypes fills the DataType of every property of a type, either
// from the full tally or from a deterministic sample of it.
func DataTypes(t *schema.Type, o Options) {
	o = o.withDefaults()
	for k, ps := range t.Props {
		tally := ps.Kinds
		if o.SampleDataTypes {
			tally = SampleTally(&ps.Kinds, o.SampleRate, o.MinSample, o.Seed+int64(fnvMix(k)))
		}
		ps.DataType = DataTypeFromTally(&tally)
	}
}

// Cardinality interprets the accumulated degree maxima of an edge type
// (§4.4, Example 8): a source with at most one target and targets with
// many sources is N:1 (WORKS_AT), the converse is 1:N, both bounded by
// one is 1:1, and both exceeding one is M:N.
func Cardinality(t *schema.EdgeType) {
	out, in := t.MaxOutDegree(), t.MaxInDegree()
	switch {
	case out == 0 && in == 0:
		t.Cardinality = schema.CardUnknown
	case out <= 1 && in <= 1:
		t.Cardinality = schema.CardOneToOne
	case out <= 1 && in > 1:
		t.Cardinality = schema.CardManyToOne
	case out > 1 && in <= 1:
		t.Cardinality = schema.CardOneToMany
	default:
		t.Cardinality = schema.CardManyToMany
	}
}

// Finalize runs all §4.4 post-processing over a schema: property
// constraints, property data types (plus enum/range refinement unless
// disabled), and edge cardinalities.
func Finalize(s *schema.Schema, o Options) {
	for _, nt := range s.NodeTypes {
		Constraints(&nt.Type)
		DataTypes(&nt.Type, o)
		if !o.DisableRefinement {
			RefineDataTypes(&nt.Type, o.Enums)
		}
	}
	for _, et := range s.EdgeTypes {
		Constraints(&et.Type)
		DataTypes(&et.Type, o)
		if !o.DisableRefinement {
			RefineDataTypes(&et.Type, o.Enums)
		}
		Cardinality(et)
	}
}

// fnvMix hashes a property key into a seed offset so each property
// samples independently but deterministically.
func fnvMix(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
