package core

// checkpoint.go persists the FULL cross-batch state of an incremental
// discovery, not just the schema: per-element type assignments (which
// unlabeled-endpoint resolution and retraction need), the interned
// shape caches, the accumulated counters, and — when the caller
// passes it — the stream reader's endpoint bookkeeping. Restoring a
// checkpoint taken mid-stream and finishing the stream produces a
// schema and assignments bit-identical to the uninterrupted run;
// WriteSchemaJSON alone cannot promise that (a schema-only resume
// loses assignments, so previously seen unlabeled endpoints stop
// resolving to their discovered types).
//
// The materialized state is exposed as an Image: a plain value the
// durable layer can capture, serialize, load, diff (delta.go) and
// merge without holding a live pipeline. WriteCheckpoint is
// CaptureImage + EncodeImage; ResumeFromCheckpoint is DecodeImage +
// RestoreImage. The byte format is unchanged from version 1.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/pghive/pghive/internal/lsh"
	"github.com/pghive/pghive/internal/pg"
	"github.com/pghive/pghive/internal/schema"
	"github.com/pghive/pghive/internal/vfs"
)

// CheckpointVersion is the format version WriteCheckpoint emits.
const CheckpointVersion = 1

// ResolverNode is one persisted entry of the stream's endpoint
// bookkeeping: a node ID and its labels (never properties or edges).
// Labels are in sorted order (pg.Graph canonicalizes them on insert).
type ResolverNode struct {
	ID     pg.ID    `json:"id"`
	Labels []string `json:"labels,omitempty"`
}

// Image is the materialized checkpoint state — the on-disk layout of a
// checkpoint file and the value delta runs are diffed against. Maps
// marshal with sorted keys and shape entries are exported in
// fingerprint order, so identical states serialize to identical bytes
// — which is what lets tests (and operators) diff checkpoints
// directly, and what makes the recovered-state bit-identity property
// checkable by comparing encoded images.
type Image struct {
	Version int `json:"version"`
	// Schema is the evolving schema in WriteSchemaJSON form.
	Schema json.RawMessage `json:"schema"`
	// Batches counts processed batches.
	Batches int `json:"batches"`
	// NodeAssign / EdgeAssign map element IDs to schema type IDs.
	NodeAssign map[pg.ID]int `json:"nodeAssign,omitempty"`
	EdgeAssign map[pg.ID]int `json:"edgeAssign,omitempty"`
	// Accumulated Result counters.
	NodeClusters int `json:"nodeClusters"`
	EdgeClusters int `json:"edgeClusters"`
	NodeShapes   int `json:"nodeShapes"`
	EdgeShapes   int `json:"edgeShapes"`
	// NodeChoice / EdgeChoice are the last adaptive parameter choices.
	NodeChoice lsh.AdaptiveChoice `json:"nodeChoice"`
	EdgeChoice lsh.AdaptiveChoice `json:"edgeChoice"`
	// NodeShapeCache / EdgeShapeCache are the interned shape caches,
	// in byte-wise fingerprint order.
	NodeShapeCache []pg.ShapeEntry `json:"nodeShapeCache,omitempty"`
	EdgeShapeCache []pg.ShapeEntry `json:"edgeShapeCache,omitempty"`
	// Resolver is the stream's label-only endpoint bookkeeping, in ID
	// order.
	Resolver []ResolverNode `json:"resolver,omitempty"`
	// NextEdgeID preserves the CSV stream's sequential edge-ID counter
	// (0 for JSONL streams, whose IDs are explicit in the input).
	NextEdgeID pg.ID `json:"nextEdgeID,omitempty"`
	// NextTypeID preserves the schema's type-ID counter. The schema
	// image alone cannot: after a retraction compacts a type away, the
	// live counter sits past the highest surviving ID, and restoring
	// it as max+1 would reuse the compacted ID — diverging from the
	// uninterrupted run in every later ABSTRACT_<id> name.
	NextTypeID int `json:"nextTypeID"`
	// WALSeq is the last write-ahead-log sequence number folded into
	// this image (durable serving's compactor sets it; zero for
	// manual images). Recovery replays only WAL records above it.
	WALSeq uint64 `json:"walSeq,omitempty"`
	// AppliedKeys are the idempotency keys of writes folded into this
	// image, in LSN order. Without them, compacting (which prunes the
	// WAL records that carried the keys) would let a client's retry of
	// an already-applied write slip through after a restart.
	AppliedKeys []AppliedKey `json:"appliedKeys,omitempty"`
}

// Elements counts the assigned elements (nodes + edges) the image
// holds — the denominator of the durable layer's tombstone ratio.
func (img *Image) Elements() int {
	return len(img.NodeAssign) + len(img.EdgeAssign)
}

// AppliedKey records one applied idempotency key and the WAL LSN of
// the record that carried it.
type AppliedKey struct {
	Key string `json:"key"`
	LSN uint64 `json:"lsn"`
}

// CheckpointExtras carries the stream-reader state that lives outside
// the Incremental but must survive a restore for bit-identical
// resumption.
type CheckpointExtras struct {
	// Resolver is the stream's endpoint bookkeeping graph
	// (StreamReader.Resolver()); nil when no stream is involved.
	Resolver *pg.Graph
	// NextEdgeID is the CSV stream's next sequential edge ID; leave 0
	// for JSONL streams.
	NextEdgeID pg.ID
	// WALSeq is the last WAL sequence number the image covers; only
	// the durable serving layer's compactor sets it.
	WALSeq uint64
	// AppliedKeys are the idempotency keys of writes the image covers,
	// in LSN order; only the durable serving layer sets them.
	AppliedKeys []AppliedKey
}

// CaptureImage materializes the discovery's full cross-batch state as
// an Image. extras may be nil when the discovery is fed by explicit
// batches rather than a stream. The caller must serialize the call
// with writes (ProcessBatch / RetractBatch), like every other read.
func (inc *Incremental) CaptureImage(extras *CheckpointExtras) (*Image, error) {
	var sb bytes.Buffer
	if err := schema.WriteJSON(&sb, inc.sch); err != nil {
		return nil, fmt.Errorf("core: checkpoint schema: %w", err)
	}
	img := &Image{
		Version:        CheckpointVersion,
		Schema:         json.RawMessage(sb.Bytes()),
		Batches:        inc.batches,
		NextTypeID:     inc.sch.NextTypeID(),
		NodeClusters:   inc.result.NodeClusters,
		EdgeClusters:   inc.result.EdgeClusters,
		NodeShapes:     inc.result.NodeShapes,
		EdgeShapes:     inc.result.EdgeShapes,
		NodeChoice:     inc.result.NodeChoice,
		EdgeChoice:     inc.result.EdgeChoice,
		NodeShapeCache: inc.nodeShapes.Export(),
		EdgeShapeCache: inc.edgeShapes.Export(),
	}
	if len(inc.result.NodeAssign) > 0 {
		img.NodeAssign = make(map[pg.ID]int, len(inc.result.NodeAssign))
		for id, t := range inc.result.NodeAssign {
			img.NodeAssign[id] = t.ID
		}
	}
	if len(inc.result.EdgeAssign) > 0 {
		img.EdgeAssign = make(map[pg.ID]int, len(inc.result.EdgeAssign))
		for id, t := range inc.result.EdgeAssign {
			img.EdgeAssign[id] = t.ID
		}
	}
	if extras != nil {
		img.NextEdgeID = extras.NextEdgeID
		img.WALSeq = extras.WALSeq
		img.AppliedKeys = extras.AppliedKeys
		if extras.Resolver != nil {
			nodes := extras.Resolver.Nodes()
			img.Resolver = make([]ResolverNode, len(nodes))
			for i := range nodes {
				img.Resolver[i] = ResolverNode{ID: nodes[i].ID, Labels: nodes[i].Labels}
			}
			// Canonical ID order, not insertion order: two logically
			// identical states whose nodes arrived in different orders
			// still serialize to identical bytes.
			sort.Slice(img.Resolver, func(i, j int) bool { return img.Resolver[i].ID < img.Resolver[j].ID })
		}
	}
	return img, nil
}

// EncodeImage writes the image in the canonical checkpoint byte
// format (indented JSON, sorted map keys, trailing newline).
func EncodeImage(w io.Writer, img *Image) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(img)
}

// DecodeImage reads one checkpoint image and validates its version.
func DecodeImage(r io.Reader) (*Image, error) {
	var img Image
	dec := json.NewDecoder(r)
	if err := dec.Decode(&img); err != nil {
		return nil, fmt.Errorf("core: checkpoint: %w", err)
	}
	if img.Version != CheckpointVersion {
		return nil, fmt.Errorf("core: unsupported checkpoint version %d", img.Version)
	}
	return &img, nil
}

// EmptyImage is the image of a freshly created discovery — the base
// every delta run chain starts from when no checkpoint exists yet.
// It depends only on opts, so two processes with matching options
// agree on it without any file existing.
func EmptyImage(opts Options) (*Image, error) {
	return NewIncremental(opts).CaptureImage(nil)
}

// WriteCheckpoint serializes the discovery's full cross-batch state.
// extras may be nil when the discovery is fed by explicit batches
// rather than a stream. The caller must serialize the call with
// writes (ProcessBatch / RetractBatch), like every other read.
func (inc *Incremental) WriteCheckpoint(w io.Writer, extras *CheckpointExtras) error {
	img, err := inc.CaptureImage(extras)
	if err != nil {
		return err
	}
	return EncodeImage(w, img)
}

// RestoreImage rebuilds a live discovery from a materialized image.
// opts must match the run that produced the image; the image does not
// store them (they may contain live configuration like parallelism
// that the operator wants to change across restarts, and changing
// discovery-relevant ones simply forfeits bit-identity).
func RestoreImage(opts Options, img *Image) (*Incremental, *CheckpointExtras, error) {
	if img.Version != CheckpointVersion {
		return nil, nil, fmt.Errorf("core: unsupported checkpoint version %d", img.Version)
	}
	s, err := schema.ReadJSON(bytes.NewReader(img.Schema))
	if err != nil {
		return nil, nil, fmt.Errorf("core: checkpoint: %w", err)
	}

	inc := ResumeIncremental(opts, s)
	s.SetNextTypeID(img.NextTypeID)
	inc.batches = img.Batches
	inc.result.NodeClusters = img.NodeClusters
	inc.result.EdgeClusters = img.EdgeClusters
	inc.result.NodeShapes = img.NodeShapes
	inc.result.EdgeShapes = img.EdgeShapes
	inc.result.NodeChoice = img.NodeChoice
	inc.result.EdgeChoice = img.EdgeChoice

	nodeByID := make(map[int]*schema.NodeType, len(s.NodeTypes))
	for _, nt := range s.NodeTypes {
		nodeByID[nt.ID] = nt
	}
	edgeByID := make(map[int]*schema.EdgeType, len(s.EdgeTypes))
	for _, et := range s.EdgeTypes {
		edgeByID[et.ID] = et
	}
	if len(img.NodeAssign) > 0 {
		inc.result.NodeAssign = make(map[pg.ID]*schema.NodeType, len(img.NodeAssign))
		for id, tid := range img.NodeAssign {
			t := nodeByID[tid]
			if t == nil {
				return nil, nil, fmt.Errorf("core: checkpoint: node %d assigned to unknown type %d", id, tid)
			}
			inc.result.NodeAssign[id] = t
		}
	}
	if len(img.EdgeAssign) > 0 {
		inc.result.EdgeAssign = make(map[pg.ID]*schema.EdgeType, len(img.EdgeAssign))
		for id, tid := range img.EdgeAssign {
			t := edgeByID[tid]
			if t == nil {
				return nil, nil, fmt.Errorf("core: checkpoint: edge %d assigned to unknown type %d", id, tid)
			}
			inc.result.EdgeAssign[id] = t
		}
	}

	if inc.nodeShapes, err = pg.RestoreShapeCache(img.NodeShapeCache); err != nil {
		return nil, nil, fmt.Errorf("core: checkpoint: node shapes: %w", err)
	}
	if inc.edgeShapes, err = pg.RestoreShapeCache(img.EdgeShapeCache); err != nil {
		return nil, nil, fmt.Errorf("core: checkpoint: edge shapes: %w", err)
	}

	extras := &CheckpointExtras{NextEdgeID: img.NextEdgeID, WALSeq: img.WALSeq, AppliedKeys: img.AppliedKeys}
	if len(img.Resolver) > 0 {
		g := pg.NewGraph()
		g.AllowDanglingEdges(true)
		for _, rn := range img.Resolver {
			if err := g.PutNode(rn.ID, rn.Labels, nil); err != nil {
				return nil, nil, fmt.Errorf("core: checkpoint: resolver: %w", err)
			}
		}
		extras.Resolver = g
	}
	return inc, extras, nil
}

// ResumeFromCheckpoint restores a discovery from a checkpoint written
// by WriteCheckpoint. It returns the Incremental, positioned exactly
// where the interrupted run stood, plus the persisted stream extras:
// seed a new StreamReader over the remaining input with the returned
// resolver nodes (SeedResolver) — and, for CSV, SetNextEdgeID — and
// the finished run is bit-identical to one that never stopped.
// opts must match the interrupted run's options (see RestoreImage).
func ResumeFromCheckpoint(opts Options, r io.Reader) (*Incremental, *CheckpointExtras, error) {
	img, err := DecodeImage(r)
	if err != nil {
		return nil, nil, err
	}
	return RestoreImage(opts, img)
}

// LoadImage reads a checkpoint image from path on fsys (nil selects
// the real OS) without restoring a live pipeline from it — the
// durable layer's recovery and delta-diffing paths start here.
func LoadImage(fsys vfs.FS, path string) (*Image, error) {
	f, err := vfs.Open(vfs.OrOS(fsys), path)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint: %w", err)
	}
	defer f.Close()
	return DecodeImage(f)
}

// LoadCheckpoint opens a checkpoint image on fsys (nil selects the
// real OS) and restores it via ResumeFromCheckpoint.
func LoadCheckpoint(fsys vfs.FS, opts Options, path string) (*Incremental, *CheckpointExtras, error) {
	img, err := LoadImage(fsys, path)
	if err != nil {
		return nil, nil, err
	}
	return RestoreImage(opts, img)
}

// WriteCheckpointFile writes the checkpoint image crash-safely to
// path on fsys (nil selects the real OS): the image is staged in a
// temporary file and renamed into place, so a crash at any instant
// leaves either the previous image or the complete new one. The
// caller must serialize with writes, as for WriteCheckpoint.
func (inc *Incremental) WriteCheckpointFile(fsys vfs.FS, path string, extras *CheckpointExtras) error {
	return vfs.WriteFileAtomic(fsys, path, func(w io.Writer) error {
		return inc.WriteCheckpoint(w, extras)
	})
}
