package core

import (
	"testing"

	"github.com/pghive/pghive/internal/pg"
)

// internBatch builds a batch of n nodes and n edges drawn from a
// fixed, small set of shapes; vals offsets the property values so
// batches differ in content but not in shape.
func internBatch(n int, vals int64, index int, resolver *pg.Graph) *pg.Batch {
	g := pg.NewGraph()
	g.AllowDanglingEdges(true)
	var ids []pg.ID
	for i := 0; i < n; i++ {
		props := map[string]pg.Value{"v": pg.Int(vals + int64(i))}
		if i%2 == 0 {
			props["extra"] = pg.Str("x")
		}
		ids = append(ids, g.AddNode([]string{"T"}, props))
	}
	for i := 0; i+1 < n; i++ {
		_, _ = g.AddEdge([]string{"E"}, ids[i], ids[i+1], nil)
	}
	return &pg.Batch{Graph: g, Resolver: resolver, Index: index}
}

// TestIncrementalShapeCacheReuse: a second batch whose elements all
// have already-seen shapes registers no new cache entries, while its
// BatchTiming still reports the per-batch distinct counts.
func TestIncrementalShapeCacheReuse(t *testing.T) {
	for _, method := range []Method{ELSH, MinHash} {
		inc := NewIncremental(Options{Seed: 1, Method: method, Parallelism: 1})
		bt1 := inc.ProcessBatch(internBatch(40, 0, 1, nil))
		nodeSize, edgeSize := inc.nodeShapes.Size(), inc.edgeShapes.Size()
		if nodeSize == 0 || bt1.NodeShapes != nodeSize {
			t.Fatalf("%v: batch 1 node shapes = %d, cache = %d", method, bt1.NodeShapes, nodeSize)
		}
		if bt1.Nodes != 40 || bt1.NodeShapes != 2 {
			t.Fatalf("%v: batch 1 stats = %d nodes / %d shapes, want 40/2", method, bt1.Nodes, bt1.NodeShapes)
		}

		bt2 := inc.ProcessBatch(internBatch(25, 1000, 2, internBatch(40, 0, 1, nil).Graph))
		if inc.nodeShapes.Size() != nodeSize {
			t.Errorf("%v: batch 2 grew the node shape cache: %d -> %d", method, nodeSize, inc.nodeShapes.Size())
		}
		if inc.edgeShapes.Size() != edgeSize {
			t.Errorf("%v: batch 2 grew the edge shape cache: %d -> %d", method, edgeSize, inc.edgeShapes.Size())
		}
		if bt2.NodeShapes != 2 {
			t.Errorf("%v: batch 2 reports %d node shapes, want 2", method, bt2.NodeShapes)
		}

		// A third batch with one genuinely new shape grows the cache
		// by exactly one.
		g := pg.NewGraph()
		g.AddNode([]string{"NewType"}, nil)
		inc.ProcessBatch(&pg.Batch{Graph: g, Index: 3})
		if inc.nodeShapes.Size() != nodeSize+1 {
			t.Errorf("%v: new shape not registered once: %d -> %d", method, nodeSize, inc.nodeShapes.Size())
		}
		inc.Finalize()
	}
}

// TestDisableShapeInterningReportsNoShapes: the A/B switch zeroes the
// shape statistics but — as the equivalence tests at the pghive level
// prove — never the discovered schema.
func TestDisableShapeInterningReportsNoShapes(t *testing.T) {
	inc := NewIncremental(Options{Seed: 1, Parallelism: 1, DisableShapeInterning: true})
	bt := inc.ProcessBatch(internBatch(30, 0, 1, nil))
	if bt.NodeShapes != 0 || bt.EdgeShapes != 0 {
		t.Errorf("disabled interning still reports shapes: %d/%d", bt.NodeShapes, bt.EdgeShapes)
	}
	res := inc.Finalize()
	if res.NodeShapes != 0 || res.EdgeShapes != 0 {
		t.Errorf("disabled interning accumulated shapes: %d/%d", res.NodeShapes, res.EdgeShapes)
	}
	if inc.nodeShapes.Size() != 0 {
		t.Errorf("disabled interning populated the cache: %d", inc.nodeShapes.Size())
	}
}
