// Package hive implements the PG-HIVE schema-discovery pipeline of
// §4 (Algorithm 1): preprocessing into representation vectors, LSH
// clustering (ELSH or MinHash), type extraction and merging
// (Algorithm 2), optional post-processing (constraints, data types,
// cardinalities), and the incremental batch mode of §4.6.
package core

import (
	"io"
	"runtime"
	"time"

	"github.com/pghive/pghive/internal/infer"
	"github.com/pghive/pghive/internal/lsh"
	"github.com/pghive/pghive/internal/parallel"
	"github.com/pghive/pghive/internal/pg"
	"github.com/pghive/pghive/internal/schema"
	"github.com/pghive/pghive/internal/vectorize"
	"github.com/pghive/pghive/internal/word2vec"
)

// Method selects the LSH clustering scheme (§4.2).
type Method uint8

const (
	// ELSH is Euclidean (p-stable / bucketed random projection) LSH
	// over the hybrid representation vectors.
	ELSH Method = iota
	// MinHash is MinHash LSH over label/property token sets.
	MinHash
)

// String names the method the way the paper's figures do.
func (m Method) String() string {
	if m == MinHash {
		return "PG-HIVE-MinHash"
	}
	return "PG-HIVE-ELSH"
}

// EmbeddingMode selects how label tokens are embedded for ELSH.
type EmbeddingMode uint8

const (
	// EmbedWord2Vec trains a skip-gram model on the label corpus of
	// each processed graph or batch (the paper's approach, §4.1).
	EmbedWord2Vec EmbeddingMode = iota
	// EmbedHashed derives deterministic hash-based unit vectors per
	// token with no training: cheaper, and stable across batches.
	EmbedHashed
)

// Options configures a discovery run.
type Options struct {
	// Method is the clustering scheme (default ELSH).
	Method Method
	// Theta is the Jaccard merge threshold θ (default 0.9, §4.3).
	Theta float64
	// Embedding selects the label-embedding provider for ELSH.
	Embedding EmbeddingMode
	// EmbedDim is the Word2Vec dimension d (default 16).
	EmbedDim int
	// LabelWeight scales the label-embedding block of the hybrid
	// vectors relative to the binary property block (default 3). A
	// weight above 1 keeps semantically different but structurally
	// similar elements apart under heavy property noise — the role
	// §4.1 assigns to the hybrid representation.
	LabelWeight float64
	// W2V optionally overrides the full Word2Vec configuration; the
	// zero value uses defaults with EmbedDim and Seed applied.
	W2V word2vec.Config
	// NodeParams / EdgeParams pin the LSH parameters; nil selects the
	// adaptive strategy of §4.2.
	NodeParams *lsh.Params
	EdgeParams *lsh.Params
	// PostProcess runs §4.4 inference after every batch (Algorithm 1
	// line 7 flag); the final batch always runs it.
	PostProcess bool
	// DisableMerging skips the Algorithm 2 type-extraction merge and
	// turns every raw LSH cluster into its own type. Only useful for
	// the merge-step ablation; incremental discovery degenerates to
	// per-batch schemas under it.
	DisableMerging bool
	// DisableShapeInterning turns off the shape-interning fast path.
	// With interning (the default), elements are grouped by shape —
	// label set, property-key set, and endpoint tokens for edges — and
	// vectorization plus LSH signature hashing run once per distinct
	// shape instead of once per element, so discovery cost scales with
	// the number of distinct patterns rather than with graph size.
	// Same-shape elements produce byte-identical representations, so
	// the discovered schema and every per-element assignment are
	// bit-identical with interning on or off; the switch exists for
	// A/B measurement.
	DisableShapeInterning bool
	// Infer configures data-type inference sampling.
	Infer infer.Options
	// Seed drives every random choice in the pipeline.
	Seed int64
	// Parallelism is the number of worker goroutines each parallel
	// stage uses: vectorization, LSH signature computation, and
	// bucket sharding. 0 (the default) selects runtime.NumCPU(); 1
	// forces fully sequential execution. With Parallelism > 1,
	// ProcessBatch additionally overlaps edge-endpoint resolution
	// with the node phase on one extra goroutine, so peak concurrency
	// is Parallelism + 1. The discovered schema is bit-identical for
	// every value: work is sharded into disjoint index ranges and
	// merged in a fixed order, and the stochastic stages (Word2Vec
	// training, LSH parameter adaptation) always run sequentially
	// from Seed.
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.Theta <= 0 {
		o.Theta = schema.DefaultTheta
	}
	if o.EmbedDim <= 0 {
		o.EmbedDim = 16
	}
	if o.LabelWeight <= 0 {
		o.LabelWeight = 3
	}
	o.Parallelism = parallel.Workers(o.Parallelism)
	return o
}

// scaledEmbedder multiplies an inner embedder's vectors by a constant
// weight, giving the label block more influence on Euclidean
// distances than individual property bits. Vectors are memoized per
// token; not safe for concurrent use.
type scaledEmbedder struct {
	inner vectorize.Embedder
	w     float64
	cache map[string][]float64
}

func newScaledEmbedder(inner vectorize.Embedder, w float64) *scaledEmbedder {
	return &scaledEmbedder{inner: inner, w: w, cache: map[string][]float64{}}
}

func (s *scaledEmbedder) Dim() int { return s.inner.Dim() }

// Preload forwards batch cache warming to the inner embedder when it
// supports it; the scaled copies themselves are built lazily on the
// (serial) Vector path.
func (s *scaledEmbedder) Preload(tokens []string, workers int) {
	if p, ok := s.inner.(vectorize.Preloader); ok {
		p.Preload(tokens, workers)
	}
}

func (s *scaledEmbedder) Vector(token string) []float64 {
	if v, ok := s.cache[token]; ok {
		return v
	}
	v := s.inner.Vector(token)
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = x * s.w
	}
	s.cache[token] = out
	return out
}

// anchoredEmbedder concatenates a trained semantic embedding with a
// hash-based identity embedding of the same token. The semantic half
// keeps co-occurring labels close (what §4.1 wants from Word2Vec); the
// identity half lower-bounds the distance between *distinct* label
// tokens, so labels that appear in identical contexts (CALLER/CALLED
// between the same endpoint types) cannot collapse to
// indistinguishable vectors and silently merge their types.
type anchoredEmbedder struct {
	sem   vectorize.Embedder
	id    *word2vec.HashedEmbedder
	cache map[string][]float64
}

func newAnchoredEmbedder(sem vectorize.Embedder, id *word2vec.HashedEmbedder) *anchoredEmbedder {
	return &anchoredEmbedder{sem: sem, id: id, cache: map[string][]float64{}}
}

func (a *anchoredEmbedder) Dim() int { return a.sem.Dim() + a.id.Dim() }

// Preload warms the hashed identity half (and the semantic half when
// it supports preloading) with a worker pool; the concatenated
// vectors are built lazily on the (serial) Vector path.
func (a *anchoredEmbedder) Preload(tokens []string, workers int) {
	a.id.Preload(tokens, workers)
	if p, ok := a.sem.(vectorize.Preloader); ok {
		p.Preload(tokens, workers)
	}
}

func (a *anchoredEmbedder) Vector(token string) []float64 {
	if v, ok := a.cache[token]; ok {
		return v
	}
	out := make([]float64, 0, a.Dim())
	out = append(out, a.sem.Vector(token)...)
	out = append(out, a.id.Vector(token)...)
	a.cache[token] = out
	return out
}

// Timing breaks a run into the phases reported by the efficiency
// experiments (Fig. 5 measures preprocessing + clustering + type
// extraction). Each field records critical-path time: work that
// overlaps another phase (the concurrent edge-endpoint resolution
// under Parallelism > 1) contributes only the time the pipeline
// actually waited for it, so the phase sum tracks wall-clock.
type Timing struct {
	Preprocess  time.Duration
	Cluster     time.Duration
	Extract     time.Duration
	PostProcess time.Duration
}

// Discovery returns the time until type discovery: preprocessing +
// clustering + extraction, the quantity Fig. 5 plots.
func (t Timing) Discovery() time.Duration {
	return t.Preprocess + t.Cluster + t.Extract
}

// Total returns the full pipeline time including post-processing.
func (t Timing) Total() time.Duration {
	return t.Discovery() + t.PostProcess
}

func (t *Timing) add(o Timing) {
	t.Preprocess += o.Preprocess
	t.Cluster += o.Cluster
	t.Extract += o.Extract
	t.PostProcess += o.PostProcess
}

// Result is the outcome of a discovery run.
type Result struct {
	// Schema is the discovered schema graph.
	Schema *schema.Schema
	// NodeAssign / EdgeAssign map every element to its final type,
	// for downstream validation and for the F1* evaluation.
	NodeAssign map[pg.ID]*schema.NodeType
	EdgeAssign map[pg.ID]*schema.EdgeType
	// NodeClusters / EdgeClusters count the raw LSH clusters before
	// merging.
	NodeClusters int
	EdgeClusters int
	// NodeShapes / EdgeShapes accumulate the distinct element shapes
	// per processed batch — the units of work the interned pipeline
	// actually vectorizes and hashes. Zero when shape interning is
	// disabled. Compare against the element counts for the dedup
	// ratio.
	NodeShapes int
	EdgeShapes int
	// NodeChoice / EdgeChoice record the adaptive parameter choices
	// (zero-valued when parameters were pinned).
	NodeChoice lsh.AdaptiveChoice
	EdgeChoice lsh.AdaptiveChoice
	// Timing records phase durations (accumulated across batches in
	// incremental mode).
	Timing Timing
}

// Discover runs the full static pipeline over a graph.
func Discover(g *pg.Graph, opts Options) *Result {
	inc := NewIncremental(opts)
	batch := &pg.Batch{Graph: g, Resolver: g, Index: 1}
	inc.ProcessBatch(batch)
	return inc.Finalize()
}

// Incremental is the streaming pipeline of §4.6: feed batches with
// ProcessBatch, read the evolving schema at any time, and call
// Finalize to run post-processing and obtain the final result.
type Incremental struct {
	opts   Options
	sch    *schema.Schema
	result *Result
	// nodeShapes / edgeShapes intern element shapes across batches:
	// a shape re-seen in a later batch costs one fingerprint map
	// lookup and reuses its cached token set.
	nodeShapes *pg.ShapeCache
	edgeShapes *pg.ShapeCache
	// batches counts ProcessBatch calls (RetractBatch excluded), so
	// serving layers and checkpoints can report stream progress.
	batches int
}

// NewIncremental returns a streaming pipeline with an empty schema.
func NewIncremental(opts Options) *Incremental {
	return ResumeIncremental(opts, schema.New())
}

// ResumeIncremental returns a streaming pipeline that continues from a
// previously discovered (e.g. persisted and reloaded) schema: new
// batches merge into the existing types per the §4.6 rules.
func ResumeIncremental(opts Options, s *schema.Schema) *Incremental {
	opts = opts.withDefaults()
	if s == nil {
		s = schema.New()
	}
	return &Incremental{
		opts: opts,
		sch:  s,
		result: &Result{
			Schema:     s,
			NodeAssign: map[pg.ID]*schema.NodeType{},
			EdgeAssign: map[pg.ID]*schema.EdgeType{},
		},
		nodeShapes: pg.NewShapeCache(),
		edgeShapes: pg.NewShapeCache(),
	}
}

// Schema exposes the current (evolving) schema.
func (inc *Incremental) Schema() *schema.Schema { return inc.sch }

// Batches returns the number of batches processed so far (across a
// checkpoint restore, the count continues from the interrupted run).
func (inc *Incremental) Batches() int { return inc.batches }

// IncrementalStats summarizes the live state of an Incremental for
// serving layers: stream progress, element coverage, and the size of
// the cross-batch caches.
type IncrementalStats struct {
	// Batches counts processed batches.
	Batches int `json:"batches"`
	// Nodes / Edges count the elements currently assigned to a type
	// (ingested minus retracted).
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	// NodeClusters / EdgeClusters accumulate raw LSH clusters.
	NodeClusters int `json:"nodeClusters"`
	EdgeClusters int `json:"edgeClusters"`
	// NodeShapes / EdgeShapes accumulate per-batch distinct shape
	// counts (0 with interning disabled).
	NodeShapes int `json:"nodeShapes"`
	EdgeShapes int `json:"edgeShapes"`
	// CachedNodeShapes / CachedEdgeShapes are the cross-batch shape
	// cache sizes — the distinct shapes ever seen.
	CachedNodeShapes int `json:"cachedNodeShapes"`
	CachedEdgeShapes int `json:"cachedEdgeShapes"`
}

// Stats snapshots the live counters. Callers must serialize it with
// writes like every other read of an Incremental.
func (inc *Incremental) Stats() IncrementalStats {
	return IncrementalStats{
		Batches:          inc.batches,
		Nodes:            len(inc.result.NodeAssign),
		Edges:            len(inc.result.EdgeAssign),
		NodeClusters:     inc.result.NodeClusters,
		EdgeClusters:     inc.result.EdgeClusters,
		NodeShapes:       inc.result.NodeShapes,
		EdgeShapes:       inc.result.EdgeShapes,
		CachedNodeShapes: inc.nodeShapes.Size(),
		CachedEdgeShapes: inc.edgeShapes.Size(),
	}
}

// BatchTiming is the per-batch cost record used by the Fig. 7
// experiment, plus the batch's interning statistics and — when the
// batch came through DrainStream — its memory accounting.
type BatchTiming struct {
	Index  int
	Timing Timing
	// Nodes / Edges are the batch's element counts.
	Nodes int
	Edges int
	// NodeShapes / EdgeShapes are the batch's distinct shape counts
	// (0 when shape interning is disabled): the number of
	// representatives that were actually vectorized and hashed.
	NodeShapes int
	EdgeShapes int
	// AllocBytes is the heap allocation attributed to reading and
	// processing the batch (runtime.MemStats.TotalAlloc delta), and
	// HeapLiveBytes the live heap after it — the evidence that
	// streamed ingestion runs in bounded memory (live heap stays flat
	// as batches pass through, instead of growing with the stream).
	// Both are only filled by DrainStream / DiscoverStream; plain
	// ProcessBatch calls leave them zero to keep the hot path free of
	// stop-the-world MemStats reads.
	AllocBytes    uint64
	HeapLiveBytes uint64
}

// ProcessBatch runs preprocess → cluster → extract on one batch and
// merges the discovered types into the schema (Algorithm 1 lines
// 3–6). If Options.PostProcess is set, §4.4 inference runs too.
//
// With Options.Parallelism > 1 the heavy stages run on worker pools
// (vectorization, LSH signatures, bucket sharding) and the
// label-resolvable part of edge endpoint preprocessing overlaps the
// node phase; only the fallback to discovered node types waits for
// node extraction. Scheduling never changes the discovered schema —
// every parallel stage is sharded with disjoint writes and merged in
// a fixed order.
func (inc *Incremental) ProcessBatch(b *pg.Batch) BatchTiming {
	o := inc.opts
	var tm Timing

	nodes := b.Graph.Nodes()
	edges := b.Graph.Edges()

	// (b'-pre) Edge endpoint labels depend only on the batch and its
	// resolver, never on discovered node types, so they resolve
	// concurrently with the whole node phase. The Graph is read-only
	// during discovery, which makes the overlap race-free.
	srcToks := make([]string, len(edges))
	dstToks := make([]string, len(edges))
	resolveEndpoints := func(workers int) time.Duration {
		start := time.Now()
		ep := vectorize.BatchEndpoints(b)
		parallel.For(len(edges), workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				srcToks[i], dstToks[i] = ep(&edges[i])
			}
		})
		return time.Since(start)
	}
	// When overlapped, the resolver stays on its single goroutine so
	// total concurrency never exceeds Parallelism + 1; the full pool
	// is only used when resolution runs alone on the critical path.
	// Edge-dominated batches skip the overlap: a lone goroutine
	// walking a huge edge set would outlive the node phase and
	// serialize the batch, so resolving with all workers afterwards
	// is faster. Interned batches never overlap — the node phase
	// touches only shape representatives and is far too short to hide
	// a serial walk over every edge; they resolve endpoints up front
	// instead (see below), sharing the pass with the Word2Vec corpus.
	// The choice depends only on the batch shape and options, never
	// on scheduling, so determinism is unaffected.
	intern := !o.DisableShapeInterning
	var epDone chan time.Duration
	if o.Parallelism > 1 && !intern && len(edges) > 0 && len(edges) <= 4*len(nodes) {
		epDone = make(chan time.Duration, 1)
		go func() { epDone <- resolveEndpoints(1) }()
	}

	// Interned endpoint resolution runs before the node phase — it
	// depends only on the batch and resolver — and additionally keeps
	// the batch-local endpoint tokens so the Word2Vec corpus (which
	// by definition sees only the batch's own labels, not the
	// resolver's) reuses this pass instead of re-resolving every
	// edge.
	var srcBatchToks, dstBatchToks []string
	if intern && len(edges) > 0 {
		epStart := time.Now()
		if o.Method != MinHash {
			if b.Resolver == nil || b.Resolver == b.Graph {
				// With no separate resolver the batch-local and
				// resolved tokens coincide; alias the arrays (the loop
				// below writes the resolved token last, and it equals
				// the batch-local one here).
				srcBatchToks, dstBatchToks = srcToks, dstToks
			} else {
				srcBatchToks = make([]string, len(edges))
				dstBatchToks = make([]string, len(edges))
			}
		}
		parallel.For(len(edges), o.Parallelism, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				e := &edges[i]
				src := b.Graph.SrcLabels(e)
				dst := b.Graph.DstLabels(e)
				sTok, dTok := pg.LabelToken(src), pg.LabelToken(dst)
				if srcBatchToks != nil {
					srcBatchToks[i], dstBatchToks[i] = sTok, dTok
				}
				if src == nil && b.Resolver != nil {
					sTok = pg.LabelToken(b.Resolver.SrcLabels(e))
				}
				if dst == nil && b.Resolver != nil {
					dTok = pg.LabelToken(b.Resolver.DstLabels(e))
				}
				srcToks[i], dstToks[i] = sTok, dTok
			}
		})
		tm.Preprocess += time.Since(epStart)
	}

	// (b) Preprocess nodes: shape interning, embeddings,
	// representation structures. With interning (the default), rows
	// are grouped by shape — same label set and property-key set —
	// and only the first occurrence of each shape is vectorized or
	// tokenized: same-shape rows would produce byte-identical
	// representations anyway, so the per-element stages run once per
	// distinct pattern instead of once per element. The distinct
	// label and property-key sets are likewise unions over
	// representatives, since both are shape components.
	start := time.Now()
	if len(inc.result.NodeAssign) == 0 && len(nodes) > 0 {
		inc.result.NodeAssign = make(map[pg.ID]*schema.NodeType, len(nodes))
	}
	if len(inc.result.EdgeAssign) == 0 && len(edges) > 0 {
		inc.result.EdgeAssign = make(map[pg.ID]*schema.EdgeType, len(edges))
	}
	var nodeSI *pg.ShapeIndex
	var distinctNodeLabels int
	if intern {
		nodeSI = inc.nodeShapes.IndexNodes(nodes)
		distinctNodeLabels = len(nodeSI.NodeLabels(nodes))
	} else {
		distinctNodeLabels = len(b.Graph.DistinctNodeLabels())
	}
	var emb vectorize.Embedder
	var nodeMat *vectorize.Matrix
	var nodeSets [][]string
	switch o.Method {
	case MinHash:
		if intern {
			nodeSets = internedNodeSets(nodes, nodeSI)
		} else {
			nodeSets = nodeTokenSets(nodes, o.Parallelism)
		}
	default:
		emb = inc.embedder(b.Graph, nodeSI, srcBatchToks, dstBatchToks)
		if intern {
			nodeMat = vectorize.NodesInterned(nodes, nodeSI, nodeSI.NodePropertyKeys(nodes), emb, o.Parallelism)
		} else {
			nodeMat = vectorize.NodesParallel(nodes, b.Graph.DistinctNodePropertyKeys(), emb, o.Parallelism)
		}
	}
	tm.Preprocess += time.Since(start)

	// (c) Cluster nodes. Under interning the clusterer sees only the
	// shape representatives and nodeCl is a *shape-level* clustering
	// (rows resolve through nodeSI.Rows); same-shape rows would
	// collide in every band anyway, so the partition — and, because
	// representatives keep first-occurrence order, every cluster
	// label — matches the non-interned run exactly. The adaptive
	// parameter estimation still samples the full per-row view
	// (representatives expanded through the row→shape map, sharing
	// rows) so the chosen parameters match too.
	start = time.Now()
	var nodeCl *lsh.Clustering
	switch o.Method {
	case MinHash:
		np := inc.minhashParams(len(nodes), distinctNodeLabels, &inc.result.NodeChoice, o.NodeParams)
		nodeCl = lsh.ClusterMinHash(nodeSets, np)
	default:
		var rows []int32
		if intern {
			rows = nodeSI.Rows
		}
		np := inc.elshParams(nodeMat.Vecs, rows, distinctNodeLabels, &inc.result.NodeChoice, o.NodeParams, true)
		nodeCl = lsh.ClusterEuclideanSparse(nodeMat.Vecs, nodeMat.BinStart, nodeMat.Bits, np)
	}
	inc.result.NodeClusters += nodeCl.NumClusters
	tm.Cluster += time.Since(start)

	// (d) Extract node types first: edge endpoints resolve to the
	// *discovered node type* when the endpoint node is unlabeled (the
	// paper's edge vectors embed the source and target node types,
	// §4.1 — Example 2 lists unlabeled Alice's KNOWS edge with a
	// Person source).
	start = time.Now()
	var ncands []*schema.NodeType
	if intern {
		ncands = schema.BuildNodeCandidatesInterned(nodes, nodeSI, nodeCl.Assign, nodeCl.NumClusters)
	} else {
		ncands = schema.BuildNodeCandidates(nodes, nodeCl.Assign, nodeCl.NumClusters)
	}
	var ntypes []*schema.NodeType
	if o.DisableMerging {
		ntypes = inc.sch.AppendNodeTypes(ncands)
	} else {
		ntypes = inc.sch.ExtractNodeTypes(ncands, o.Theta)
	}
	if intern {
		for row := range nodes {
			inc.result.NodeAssign[nodes[row].ID] = ntypes[nodeCl.Assign[nodeSI.Rows[row]]]
		}
	} else {
		for row := range nodes {
			inc.result.NodeAssign[nodes[row].ID] = ntypes[nodeCl.Assign[row]]
		}
	}
	tm.Extract += time.Since(start)

	// (b') Preprocess edges: join the overlapped endpoint resolution,
	// fill unresolvable endpoints with discovered node types, then
	// vectorize.
	if epDone != nil {
		// Only the time the pipeline actually blocked on the overlapped
		// resolver counts: its overlapped portion is already inside the
		// node-phase timings, and double-counting would inflate
		// Timing.Discovery() past wall-clock.
		wait := time.Now()
		<-epDone
		tm.Preprocess += time.Since(wait)
	} else if !intern {
		tm.Preprocess += resolveEndpoints(o.Parallelism)
	}
	start = time.Now()
	for i := range edges {
		e := &edges[i]
		if srcToks[i] == "" {
			srcToks[i] = inc.endpointTypeToken(e.Src)
		}
		if dstToks[i] == "" {
			dstToks[i] = inc.endpointTypeToken(e.Dst)
		}
	}
	var edgeSI *pg.ShapeIndex
	var distinctEdgeLabels int
	if intern {
		edgeSI = inc.edgeShapes.IndexEdges(edges, srcToks, dstToks)
		distinctEdgeLabels = len(edgeSI.EdgeLabels(edges))
	} else {
		distinctEdgeLabels = len(b.Graph.DistinctEdgeLabels())
	}
	var edgeMat *vectorize.Matrix
	var edgeSets [][]string
	switch o.Method {
	case MinHash:
		if intern {
			edgeSets = internedEdgeSets(edges, edgeSI, srcToks, dstToks)
		} else {
			edgeSets = edgeTokenSets(edges, srcToks, dstToks, o.Parallelism)
		}
	default:
		if intern {
			edgeMat = vectorize.EdgesInterned(edges, edgeSI, edgeSI.EdgePropertyKeys(edges), emb, srcToks, dstToks, o.Parallelism)
		} else {
			edgeMat = vectorize.EdgesParallel(edges, b.Graph.DistinctEdgePropertyKeys(), emb, srcToks, dstToks, o.Parallelism)
		}
	}
	tm.Preprocess += time.Since(start)

	// (c') Cluster edges (shape-level under interning, as for nodes).
	start = time.Now()
	var edgeCl *lsh.Clustering
	switch o.Method {
	case MinHash:
		epp := inc.minhashParams(len(edges), distinctEdgeLabels, &inc.result.EdgeChoice, o.EdgeParams)
		edgeCl = lsh.ClusterMinHash(edgeSets, epp)
	default:
		var rows []int32
		if intern {
			rows = edgeSI.Rows
		}
		epp := inc.elshParams(edgeMat.Vecs, rows, distinctEdgeLabels, &inc.result.EdgeChoice, o.EdgeParams, false)
		edgeCl = lsh.ClusterEuclideanSparse(edgeMat.Vecs, edgeMat.BinStart, edgeMat.Bits, epp)
	}
	inc.result.EdgeClusters += edgeCl.NumClusters
	tm.Cluster += time.Since(start)

	// (d') Extract edge types.
	start = time.Now()
	var ecands []*schema.EdgeType
	if intern {
		maxEndpoints := b.Graph.NumNodes()
		if b.Resolver != nil && b.Resolver != b.Graph {
			maxEndpoints += b.Resolver.NumNodes()
		}
		ecands = schema.BuildEdgeCandidatesInterned(edges, edgeSI, edgeCl.Assign, edgeCl.NumClusters, srcToks, dstToks, maxEndpoints)
	} else {
		ecands = schema.BuildEdgeCandidates(edges, edgeCl.Assign, edgeCl.NumClusters, srcToks, dstToks)
	}
	var etypes []*schema.EdgeType
	if o.DisableMerging {
		etypes = inc.sch.AppendEdgeTypes(ecands)
	} else {
		etypes = inc.sch.ExtractEdgeTypes(ecands, o.Theta)
	}
	if intern {
		for row := range edges {
			inc.result.EdgeAssign[edges[row].ID] = etypes[edgeCl.Assign[edgeSI.Rows[row]]]
		}
	} else {
		for row := range edges {
			inc.result.EdgeAssign[edges[row].ID] = etypes[edgeCl.Assign[row]]
		}
	}
	tm.Extract += time.Since(start)

	// (e)-(g) Optional per-batch post-processing (Algorithm 1 line 7).
	if o.PostProcess {
		start = time.Now()
		infer.Finalize(inc.sch, o.Infer)
		tm.PostProcess = time.Since(start)
	}

	inc.result.Timing.add(tm)
	inc.batches++
	bt := BatchTiming{Index: b.Index, Timing: tm, Nodes: len(nodes), Edges: len(edges)}
	if intern {
		bt.NodeShapes = nodeSI.NumShapes()
		bt.EdgeShapes = edgeSI.NumShapes()
		inc.result.NodeShapes += bt.NodeShapes
		inc.result.EdgeShapes += bt.EdgeShapes
	}
	return bt
}

// RetractBatch removes a batch of previously processed elements from
// the schema — deletion support beyond the paper (§4.6 leaves it as
// future work). Every node and edge in the batch must have been
// processed earlier (its statistics were added then); elements never
// seen are skipped. Types whose last instance disappears are removed
// from the schema. Constraints and cardinalities reflect the
// retraction after the next Finalize (or per-batch post-processing).
func (inc *Incremental) RetractBatch(b *pg.Batch) BatchTiming {
	start := time.Now()
	nodes := b.Graph.Nodes()
	for i := range nodes {
		n := &nodes[i]
		ty := inc.result.NodeAssign[n.ID]
		if ty == nil {
			continue
		}
		ty.Retract(n.Labels, n.Props)
		delete(inc.result.NodeAssign, n.ID)
	}
	edges := b.Graph.Edges()
	for i := range edges {
		e := &edges[i]
		ty := inc.result.EdgeAssign[e.ID]
		if ty == nil {
			continue
		}
		ty.RetractEdge(e.Labels, e.Props, e.Src, e.Dst)
		delete(inc.result.EdgeAssign, e.ID)
	}
	inc.sch.Compact()
	var tm Timing
	tm.Extract = time.Since(start)
	if inc.opts.PostProcess {
		pp := time.Now()
		infer.Finalize(inc.sch, inc.opts.Infer)
		tm.PostProcess = time.Since(pp)
	}
	inc.result.Timing.add(tm)
	return BatchTiming{Index: b.Index, Timing: tm}
}

// MemObservedOnBatch wraps a batch observer so every invocation first
// fills the batch's AllocBytes / HeapLiveBytes counters from
// runtime.MemStats deltas. A nil observer returns nil, which is how
// the drain loops skip the stop-the-world MemStats reads entirely
// when nobody can observe the counters. The returned function is not
// safe for concurrent use (drain loops are sequential).
func MemObservedOnBatch(onBatch func(BatchTiming)) func(BatchTiming) {
	if onBatch == nil {
		return nil
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	prevAlloc := ms.TotalAlloc
	return func(bt BatchTiming) {
		runtime.ReadMemStats(&ms)
		bt.AllocBytes = ms.TotalAlloc - prevAlloc
		bt.HeapLiveBytes = ms.HeapAlloc
		prevAlloc = ms.TotalAlloc
		onBatch(bt)
	}
}

// DrainStream feeds every batch of the stream through ProcessBatch,
// filling each BatchTiming's memory counters, and invokes onBatch
// (when non-nil) after each batch. It returns on io.EOF (nil error)
// or on the first reader error. The caller finishes with Finalize,
// so a drained stream can be followed by more batches or by another
// stream — the incremental-maintenance loop of §4.6.
func (inc *Incremental) DrainStream(r pg.StreamReader, onBatch func(BatchTiming)) error {
	onBatch = MemObservedOnBatch(onBatch)
	for {
		b, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		bt := inc.ProcessBatch(b)
		if onBatch != nil {
			onBatch(bt)
		}
	}
}

// DiscoverStream runs the full pipeline over a batched stream: it
// drives a fresh Incremental through every batch the reader yields
// and finalizes. Peak memory is one batch of elements, the evolving
// schema, the reader's endpoint bookkeeping and the result's
// per-element type assignments — never the whole graph with its
// property data. onBatch, when non-nil, observes each batch's cost
// record as it completes.
func DiscoverStream(r pg.StreamReader, opts Options, onBatch func(BatchTiming)) (*Result, error) {
	inc := NewIncremental(opts)
	if err := inc.DrainStream(r, onBatch); err != nil {
		return nil, err
	}
	return inc.Finalize(), nil
}

// Finalize runs the §4.4 post-processing (always, per Algorithm 1
// line 7's i = n case) and returns the accumulated result.
func (inc *Incremental) Finalize() *Result {
	start := time.Now()
	infer.Finalize(inc.sch, inc.opts.Infer)
	inc.result.Timing.PostProcess += time.Since(start)
	return inc.result
}

// endpointTypeToken resolves an unlabeled endpoint node to the name of
// the node type it was assigned to (in this or any earlier batch), or
// "" when the node has not been seen yet.
func (inc *Incremental) endpointTypeToken(id pg.ID) string {
	if t := inc.result.NodeAssign[id]; t != nil {
		return t.Name()
	}
	return ""
}

// embedder builds the batch's label embedder. nodeSI, when non-nil,
// lets the Word2Vec corpus derive its node sentences from the
// distinct shapes (count-weighted) instead of walking every node, and
// srcToks/dstToks (batch-local endpoint tokens from the interned
// endpoint pass, nil otherwise) spare the corpus its own resolution
// walk; the corpus — and so the trained model — is byte-identical
// either way.
func (inc *Incremental) embedder(g *pg.Graph, nodeSI *pg.ShapeIndex, srcToks, dstToks []string) vectorize.Embedder {
	o := inc.opts
	var inner vectorize.Embedder
	if o.Embedding == EmbedHashed {
		inner = word2vec.NewHashedEmbedder(o.EmbedDim)
	} else {
		// Word2Vec mode splits the budget between a trained semantic
		// half and a hashed identity half (see anchoredEmbedder).
		semDim := o.EmbedDim / 2
		if semDim < 4 {
			semDim = 4
		}
		cfg := o.W2V
		if cfg.Dim == 0 {
			cfg.Dim = semDim
		}
		if cfg.Seed == 0 {
			cfg.Seed = o.Seed + 1
		}
		idDim := o.EmbedDim - cfg.Dim
		if idDim < 4 {
			idDim = 4
		}
		inner = newAnchoredEmbedder(word2vec.Train(vectorize.BuildCorpusInterned(g, nodeSI, srcToks, dstToks), cfg),
			word2vec.NewHashedEmbedder(idDim))
	}
	if o.LabelWeight != 1 {
		return newScaledEmbedder(inner, o.LabelWeight)
	}
	return inner
}

// elshParams resolves the ELSH parameters: pinned ones pass through,
// otherwise the adaptive strategy estimates them from the vectors.
// rows, when non-nil, is the interned row→shape map, making vecs a
// representative matrix whose logical population is rows — the
// adaptive choice is identical to the materialized per-row matrix.
func (inc *Incremental) elshParams(vecs [][]float64, rows []int32, labels int, choice *lsh.AdaptiveChoice, pinned *lsh.Params, isNode bool) lsh.Params {
	if pinned != nil {
		p := *pinned
		if p.Seed == 0 {
			p.Seed = inc.opts.Seed + 2
		}
		return inc.withWorkers(p)
	}
	var ch lsh.AdaptiveChoice
	if isNode {
		ch = lsh.AdaptiveNodeParamsInterned(vecs, rows, labels, inc.opts.Seed+2)
	} else {
		ch = lsh.AdaptiveEdgeParamsInterned(vecs, rows, labels, inc.opts.Seed+3)
	}
	*choice = ch
	return inc.withWorkers(ch.Params)
}

func (inc *Incremental) minhashParams(n, labels int, choice *lsh.AdaptiveChoice, pinned *lsh.Params) lsh.Params {
	if pinned != nil {
		p := *pinned
		if p.Seed == 0 {
			p.Seed = inc.opts.Seed + 4
		}
		return inc.withWorkers(p)
	}
	ch := lsh.AdaptiveMinHashParams(n, labels, inc.opts.Seed+4)
	*choice = ch
	return inc.withWorkers(ch.Params)
}

// withWorkers applies Options.Parallelism to an LSH parameter set,
// keeping an explicitly pinned Workers value.
func (inc *Incremental) withWorkers(p lsh.Params) lsh.Params {
	if p.Workers == 0 {
		p.Workers = inc.opts.Parallelism
	}
	return p
}

// nodeTokenSets builds the MinHash item set of each node: its label
// token plus its property keys, each qualified by the label token.
// Qualification is the set-world analogue of the hybrid vectors of
// §4.1: items of differently labeled elements never coincide, so the
// Jaccard similarity between semantically different types is 0 and
// banding cannot chain them together, while unlabeled elements fall
// back to raw property keys and are matched purely structurally.
// Sets are built on a worker pool (each element's set is independent
// of all others).
func nodeTokenSets(nodes []pg.Node, workers int) [][]string {
	sets := make([][]string, len(nodes))
	parallel.For(len(nodes), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sets[i] = nodeItemSet(&nodes[i])
		}
	})
	return sets
}

// nodeItemSet builds one node's MinHash item set.
func nodeItemSet(n *pg.Node) []string {
	tok := n.LabelToken()
	keys := n.PropertyKeys()
	set := make([]string, 0, len(keys)+1)
	if tok != "" {
		set = append(set, "\x00label:"+tok)
		for _, k := range keys {
			set = append(set, tok+"\x01"+k)
		}
	} else {
		set = append(set, keys...)
	}
	return set
}

// internedNodeSets returns the item set of each distinct node shape,
// in shape order. Sets depend only on the shape, so they are cached
// on the cache entry and reused by later batches that see the shape
// again.
func internedNodeSets(nodes []pg.Node, si *pg.ShapeIndex) [][]string {
	sets := make([][]string, si.NumShapes())
	for s, sh := range si.Shapes {
		if sh.Items == nil {
			sh.Items = nodeItemSet(&nodes[si.Reps[s]])
		}
		sets[s] = sh.Items
	}
	return sets
}

// edgeTokenSets builds the MinHash item set of each edge. Every item
// is qualified by the full (label, source, target) pattern triple —
// Def. 3.6 makes the endpoint pair R part of an edge's pattern — so
// edges of different patterns have Jaccard 0 and cannot chain
// together, while same-pattern edges with noisy property sets still
// collide in some band. Unlabeled, unresolvable edges degrade
// gracefully to property-key sets. Sets are built on a worker pool.
func edgeTokenSets(edges []pg.Edge, srcToks, dstToks []string, workers int) [][]string {
	sets := make([][]string, len(edges))
	parallel.For(len(edges), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sets[i] = edgeItemSet(&edges[i], srcToks[i], dstToks[i])
		}
	})
	return sets
}

// edgeItemSet builds one edge's MinHash item set.
func edgeItemSet(e *pg.Edge, srcTok, dstTok string) []string {
	tok := e.LabelToken()
	keys := e.PropertyKeys()
	pattern := tok + "\x01" + srcTok + "\x01" + dstTok
	set := make([]string, 0, len(keys)+1)
	if pattern != "\x01\x01" {
		set = append(set, "\x00pat:"+pattern)
		for _, k := range keys {
			set = append(set, pattern+"\x02"+k)
		}
	} else {
		set = append(set, keys...)
	}
	return set
}

// internedEdgeSets returns the item set of each distinct edge shape,
// cached across batches like internedNodeSets.
func internedEdgeSets(edges []pg.Edge, si *pg.ShapeIndex, srcToks, dstToks []string) [][]string {
	sets := make([][]string, si.NumShapes())
	for s, sh := range si.Shapes {
		if sh.Items == nil {
			r := si.Reps[s]
			sh.Items = edgeItemSet(&edges[r], srcToks[r], dstToks[r])
		}
		sets[s] = sh.Items
	}
	return sets
}
