package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/pghive/pghive/internal/pg"
)

// deltaBase and deltaNext are hand-built canonical images exercising
// every collection the differ walks: assignments added, re-typed, and
// removed; shape-cache entries replaced and tombstoned; resolver
// nodes relabeled and deleted; applied keys before and after the base
// coverage.
func deltaBase() *Image {
	return &Image{
		Version:      CheckpointVersion,
		Schema:       json.RawMessage(`{"nodeTypes":1}`),
		Batches:      3,
		NodeAssign:   map[pg.ID]int{1: 0, 2: 1, 3: 0},
		EdgeAssign:   map[pg.ID]int{10: 0},
		NodeClusters: 2,
		EdgeClusters: 1,
		NodeShapes:   3,
		EdgeShapes:   1,
		NodeShapeCache: []pg.ShapeEntry{
			{Key: []byte{0x01}, Token: "t0"},
			{Key: []byte{0x02}, Token: "t1"},
		},
		EdgeShapeCache: []pg.ShapeEntry{{Key: []byte{0x09}, Token: "e0"}},
		Resolver: []ResolverNode{
			{ID: 1, Labels: []string{"A"}},
			{ID: 2, Labels: []string{"B"}},
			{ID: 3, Labels: []string{"A"}},
		},
		NextEdgeID:  11,
		NextTypeID:  2,
		WALSeq:      3,
		AppliedKeys: []AppliedKey{{Key: "k1", LSN: 2}},
	}
}

func deltaNext() *Image {
	return &Image{
		Version:      CheckpointVersion,
		Schema:       json.RawMessage(`{"nodeTypes":2}`),
		Batches:      5,
		NodeAssign:   map[pg.ID]int{1: 1, 3: 0, 4: 1}, // 1 re-typed, 2 gone, 4 new
		EdgeAssign:   map[pg.ID]int{},                 // 10 gone
		NodeClusters: 3,
		EdgeClusters: 0,
		NodeShapes:   4,
		EdgeShapes:   0,
		NodeShapeCache: []pg.ShapeEntry{
			{Key: []byte{0x01}, Token: "t2"}, // replaced
			{Key: []byte{0x03}, Token: "t3"}, // added; 0x02 tombstoned
		},
		EdgeShapeCache: nil, // 0x09 tombstoned
		Resolver: []ResolverNode{
			{ID: 1, Labels: []string{"A", "X"}}, // relabeled
			{ID: 3, Labels: []string{"A"}},      // unchanged
			{ID: 4, Labels: []string{"C"}},      // added; 2 deleted
		},
		NextEdgeID:  11,
		NextTypeID:  3,
		WALSeq:      7,
		AppliedKeys: []AppliedKey{{Key: "k1", LSN: 2}, {Key: "k2", LSN: 6}},
	}
}

func imageBytes(t *testing.T, img *Image) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeImage(&buf, img); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func cloneImage(t *testing.T, img *Image) *Image {
	t.Helper()
	out, err := DecodeImage(bytes.NewReader(imageBytes(t, img)))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestDeltaDiffApplyRoundTrip is the exactness contract the run
// layout rests on: Apply(base, Diff(base, next)) rebuilds next
// byte-identically under image serialization — including after the
// delta itself round-trips through JSON, which is how run files carry
// it.
func TestDeltaDiffApplyRoundTrip(t *testing.T) {
	base, next := deltaBase(), deltaNext()
	d, err := DiffImage(base, next)
	if err != nil {
		t.Fatal(err)
	}
	if d.FromLSN != 3 || d.ToLSN != 7 {
		t.Fatalf("delta spans (%d, %d], want (3, 7]", d.FromLSN, d.ToLSN)
	}
	// Tombstones: node 2 unassigned, edge 10 unassigned, node shape
	// 0x02, edge shape 0x09, resolver node 2.
	if got := d.Tombstones(); got != 5 {
		t.Fatalf("Tombstones() = %d, want 5", got)
	}
	// Only keys applied after the base coverage ride in the delta.
	if len(d.AppliedKeys) != 1 || d.AppliedKeys[0].Key != "k2" {
		t.Fatalf("delta applied keys: %+v, want just k2", d.AppliedKeys)
	}

	payload, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var decoded ImageDelta
	if err := json.Unmarshal(payload, &decoded); err != nil {
		t.Fatal(err)
	}
	img := cloneImage(t, base)
	if err := decoded.Apply(img); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(imageBytes(t, img), imageBytes(t, next)) {
		t.Fatal("Apply(base, Diff(base, next)) does not rebuild next")
	}
}

// TestDeltaChainApply: two contiguous deltas applied in order rebuild
// the final image — the multi-run recovery path.
func TestDeltaChainApply(t *testing.T) {
	base, next := deltaBase(), deltaNext()
	mid := cloneImage(t, base)
	mid.Batches = 4
	mid.NodeAssign[4] = 1
	mid.Resolver = append(mid.Resolver, ResolverNode{ID: 4, Labels: []string{"C"}})
	mid.WALSeq = 5

	d1, err := DiffImage(base, mid)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := DiffImage(mid, next)
	if err != nil {
		t.Fatal(err)
	}
	img := cloneImage(t, base)
	if err := d1.Apply(img); err != nil {
		t.Fatal(err)
	}
	if err := d2.Apply(img); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(imageBytes(t, img), imageBytes(t, next)) {
		t.Fatal("chained deltas do not rebuild the final image")
	}
}

// TestDeltaEmptyDiff: diffing an image against itself yields no puts,
// no tombstones, and applying it is an identity (modulo coverage).
func TestDeltaEmptyDiff(t *testing.T) {
	base := deltaBase()
	d, err := DiffImage(base, cloneImage(t, base))
	if err != nil {
		t.Fatal(err)
	}
	if d.Tombstones() != 0 || len(d.NodeAssign) != 0 || len(d.NodeShapePut) != 0 || len(d.ResolverPut) != 0 || len(d.AppliedKeys) != 0 {
		t.Fatalf("self-diff is not empty: %+v", d)
	}
	img := cloneImage(t, base)
	if err := d.Apply(img); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(imageBytes(t, img), imageBytes(t, base)) {
		t.Fatal("empty delta is not an identity")
	}
}

// TestDeltaContiguityEnforced: a delta applies only to the image
// whose coverage it starts from, and diffs only run forward.
func TestDeltaContiguityEnforced(t *testing.T) {
	base, next := deltaBase(), deltaNext()
	if _, err := DiffImage(next, base); err == nil {
		t.Fatal("DiffImage accepted a next image older than the base")
	}
	d, err := DiffImage(base, next)
	if err != nil {
		t.Fatal(err)
	}
	wrong := cloneImage(t, base)
	wrong.WALSeq = 4
	if err := d.Apply(wrong); err == nil {
		t.Fatal("Apply accepted an image at the wrong coverage")
	}
	bad := *d
	bad.Version = 99
	if err := bad.Apply(cloneImage(t, base)); err == nil {
		t.Fatal("Apply accepted an unknown delta version")
	}
}
