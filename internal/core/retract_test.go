package core

import (
	"math/rand"
	"testing"

	"github.com/pghive/pghive/internal/pg"
)

func TestRetractBatchRemovesContribution(t *testing.T) {
	g := socialGraph(200, 1.0, 0, 31)
	inc := NewIncremental(Options{Seed: 31})
	batches := pg.SplitBatches(g, 2, rand.New(rand.NewSource(31)))
	inc.ProcessBatch(batches[0])
	inc.ProcessBatch(batches[1])

	person := inc.Schema().NodeTypeByToken("Person")
	before := person.Instances

	// Count batch-1 Person nodes.
	b1Persons := 0
	for i := range batches[1].Graph.Nodes() {
		if batches[1].Graph.Nodes()[i].LabelToken() == "Person" {
			b1Persons++
		}
	}
	bt := inc.RetractBatch(batches[1])
	if bt.Timing.Extract <= 0 {
		t.Error("retraction must be timed")
	}
	if got := person.Instances; got != before-b1Persons {
		t.Errorf("Person instances after retract = %d, want %d", got, before-b1Persons)
	}
	// Retracted elements lose their assignment.
	for i := range batches[1].Graph.Nodes() {
		if inc.result.NodeAssign[batches[1].Graph.Nodes()[i].ID] != nil {
			t.Fatal("retracted node still assigned")
		}
	}
	// Remaining elements keep theirs.
	for i := range batches[0].Graph.Nodes() {
		if inc.result.NodeAssign[batches[0].Graph.Nodes()[i].ID] == nil {
			t.Fatal("surviving node lost its assignment")
		}
	}
}

func TestRetractEverythingEmptiesSchema(t *testing.T) {
	g := socialGraph(100, 1.0, 0.2, 32)
	inc := NewIncremental(Options{Seed: 32})
	b := &pg.Batch{Graph: g, Resolver: g, Index: 1}
	inc.ProcessBatch(b)
	if len(inc.Schema().NodeTypes) == 0 {
		t.Fatal("setup failed")
	}
	inc.RetractBatch(b)
	if n := len(inc.Schema().NodeTypes); n != 0 {
		t.Errorf("node types after full retraction = %d, want 0", n)
	}
	if n := len(inc.Schema().EdgeTypes); n != 0 {
		t.Errorf("edge types after full retraction = %d, want 0", n)
	}
}

func TestRetractThenReprocessMatchesFresh(t *testing.T) {
	// add A, add B, retract B ≍ add A (for labeled type coverage and
	// instance counts).
	g := socialGraph(150, 1.0, 0.1, 33)
	batches := pg.SplitBatches(g, 2, rand.New(rand.NewSource(33)))

	inc := NewIncremental(Options{Seed: 33})
	inc.ProcessBatch(batches[0])
	wantInstances := map[string]int{}
	for _, nt := range inc.Schema().NodeTypes {
		if !nt.Abstract {
			wantInstances[nt.Token] = nt.Instances
		}
	}
	inc.ProcessBatch(batches[1])
	inc.RetractBatch(batches[1])

	for tok, want := range wantInstances {
		nt := inc.Schema().NodeTypeByToken(tok)
		if nt == nil {
			t.Fatalf("type %q lost after retract", tok)
		}
		if nt.Instances != want {
			t.Errorf("type %q instances = %d, want %d", tok, nt.Instances, want)
		}
	}
}

func TestRetractUpdatesConstraints(t *testing.T) {
	// One Person lacks `gender`; after retracting it, gender becomes
	// mandatory again.
	g := pg.NewGraph()
	for i := 0; i < 10; i++ {
		g.AddNode([]string{"Person"}, map[string]pg.Value{
			"name": pg.Str("x"), "gender": pg.Str("f")})
	}
	odd := g.AddNode([]string{"Person"}, map[string]pg.Value{"name": pg.Str("odd")})

	inc := NewIncremental(Options{Seed: 34})
	inc.ProcessBatch(&pg.Batch{Graph: g, Resolver: g, Index: 1})
	res := inc.Finalize()
	person := res.Schema.NodeTypeByToken("Person")
	if person.Props["gender"].Mandatory {
		t.Fatal("gender cannot be mandatory while the odd node is present")
	}

	rb := pg.NewGraph()
	rb.AllowDanglingEdges(true)
	n := g.Node(odd)
	_ = rb.PutNode(n.ID, n.Labels, n.Props)
	inc.RetractBatch(&pg.Batch{Graph: rb, Resolver: g, Index: 2})
	inc.Finalize()
	if !person.Props["gender"].Mandatory {
		t.Error("gender must be mandatory after the deviant instance is deleted")
	}
}

func TestRetractUnknownElementsIsNoop(t *testing.T) {
	g := socialGraph(50, 1.0, 0, 35)
	inc := NewIncremental(Options{Seed: 35})
	inc.ProcessBatch(&pg.Batch{Graph: g, Resolver: g, Index: 1})
	types := len(inc.Schema().NodeTypes)

	foreign := pg.NewGraph()
	foreign.AllowDanglingEdges(true)
	_ = foreign.PutNode(9999, []string{"Ghost"}, nil)
	inc.RetractBatch(&pg.Batch{Graph: foreign, Resolver: foreign, Index: 2})
	if len(inc.Schema().NodeTypes) != types {
		t.Error("retracting unseen elements must not change the schema")
	}
}
