package core

import (
	"math/rand"
	"testing"

	"github.com/pghive/pghive/internal/pg"
)

func TestDisableMergingProducesRawClusters(t *testing.T) {
	g := socialGraph(200, 1.0, 0.3, 21)
	merged := Discover(g, Options{Seed: 21})
	raw := Discover(g, Options{Seed: 21, DisableMerging: true})
	if len(raw.Schema.NodeTypes) < len(merged.Schema.NodeTypes) {
		t.Fatalf("no-merge types (%d) must be >= merged types (%d)",
			len(raw.Schema.NodeTypes), len(merged.Schema.NodeTypes))
	}
	if len(raw.Schema.NodeTypes) != raw.NodeClusters {
		t.Errorf("no-merge node types (%d) must equal raw clusters (%d)",
			len(raw.Schema.NodeTypes), raw.NodeClusters)
	}
	if len(raw.NodeAssign) != g.NumNodes() {
		t.Error("assignments must still cover every node")
	}
}

// TestEdgeEndpointsResolveToNodeTypes verifies the §4.1 behaviour the
// pipeline implements: an edge whose endpoint node is unlabeled uses
// the endpoint's *discovered node type* in its representation, so
// structurally bare edges between different types remain separable
// even with no labels anywhere (Example 2 lists unlabeled Alice's
// KNOWS edge with a Person source).
func TestEdgeEndpointsResolveToNodeTypes(t *testing.T) {
	// Two node types distinguishable purely by structure, connected
	// by property-less edges of two different (unlabeled) kinds.
	g := pg.NewGraph()
	var as, bs []pg.ID
	for i := 0; i < 60; i++ {
		as = append(as, g.AddNode(nil, map[string]pg.Value{
			"alpha": pg.Int(1), "beta": pg.Int(2)}))
		bs = append(bs, g.AddNode(nil, map[string]pg.Value{
			"gamma": pg.Str("x"), "delta": pg.Str("y"), "eps": pg.Str("z")}))
	}
	rng := rand.New(rand.NewSource(4))
	var aa, ab []pg.ID
	for i := 0; i < 100; i++ {
		id1, _ := g.AddEdge(nil, as[rng.Intn(len(as))], as[rng.Intn(len(as))], nil)
		id2, _ := g.AddEdge(nil, as[rng.Intn(len(as))], bs[rng.Intn(len(bs))], nil)
		aa = append(aa, id1)
		ab = append(ab, id2)
	}
	res := Discover(g, Options{Seed: 9})
	// A→A edges and A→B edges must land in different types.
	tA := res.EdgeAssign[aa[0]]
	tB := res.EdgeAssign[ab[0]]
	if tA == tB {
		t.Fatal("edges with different endpoint types collapsed despite type-resolved endpoints")
	}
	pureA, pureB := 0, 0
	for _, id := range aa {
		if res.EdgeAssign[id] == tA {
			pureA++
		}
	}
	for _, id := range ab {
		if res.EdgeAssign[id] == tB {
			pureB++
		}
	}
	if pureA < 95 || pureB < 95 {
		t.Errorf("edge separation impure: %d/100 A→A, %d/100 A→B", pureA, pureB)
	}
}

func TestMinHashUnlabeledStructure(t *testing.T) {
	// MinHash at 0% labels falls back to raw property-key sets.
	g := socialGraph(200, 0, 0, 22)
	res := Discover(g, Options{Method: MinHash, Seed: 22})
	if len(res.Schema.NodeTypes) == 0 {
		t.Fatal("MinHash must discover abstract types without labels")
	}
	for _, nt := range res.Schema.NodeTypes {
		if !nt.Abstract {
			t.Error("all types must be abstract at 0% labels")
		}
	}
}

func TestIncrementalAcrossBatchEndpoints(t *testing.T) {
	// An edge arriving in a later batch than its endpoints must still
	// resolve endpoint labels through the batch resolver.
	g := socialGraph(100, 1.0, 0, 23)
	inc := NewIncremental(Options{Seed: 23})
	nodesOnly := pg.NewGraph()
	nodesOnly.AllowDanglingEdges(true)
	for i := range g.Nodes() {
		n := &g.Nodes()[i]
		_ = nodesOnly.PutNode(n.ID, n.Labels, n.Props)
	}
	edgesOnly := pg.NewGraph()
	edgesOnly.AllowDanglingEdges(true)
	for i := range g.Edges() {
		e := &g.Edges()[i]
		_ = edgesOnly.PutEdge(e.ID, e.Labels, e.Src, e.Dst, e.Props)
	}
	inc.ProcessBatch(&pg.Batch{Graph: nodesOnly, Resolver: nodesOnly, Index: 1})
	inc.ProcessBatch(&pg.Batch{Graph: edgesOnly, Resolver: nodesOnly, Index: 2})
	res := inc.Finalize()
	works := res.Schema.EdgeTypeByToken("WORKS_AT")
	if works == nil {
		t.Fatal("WORKS_AT missing")
	}
	if !works.SrcTokens["Person"] || !works.DstTokens["Org"] {
		t.Errorf("cross-batch endpoint resolution failed: src=%v dst=%v",
			works.SortedSrcTokens(), works.SortedDstTokens())
	}
}

func TestMethodString(t *testing.T) {
	if ELSH.String() != "PG-HIVE-ELSH" || MinHash.String() != "PG-HIVE-MinHash" {
		t.Error("method names must match the paper's figures")
	}
}

func TestThetaOptionPropagates(t *testing.T) {
	// With θ lowered, unlabeled clusters merge more aggressively:
	// fewer abstract types at partial availability.
	g := socialGraph(300, 0.5, 0.3, 24)
	strict := Discover(g, Options{Seed: 24, Theta: 0.95})
	loose := Discover(g, Options{Seed: 24, Theta: 0.5})
	if len(loose.Schema.NodeTypes) > len(strict.Schema.NodeTypes) {
		t.Errorf("θ=0.5 produced more types (%d) than θ=0.95 (%d)",
			len(loose.Schema.NodeTypes), len(strict.Schema.NodeTypes))
	}
}
