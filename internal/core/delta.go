package core

// delta.go turns two checkpoint Images into an ImageDelta — the
// payload of one durable-layer run file — and folds a delta back onto
// an image. The pair is exact by construction: for any base and next,
// Apply(base, Diff(base, next)) rebuilds next's state (the scalar
// fields byte-for-byte; the keyed collections as sets, which is all
// image serialization observes since it emits them in canonical
// order). That equivalence is what lets compaction write only what
// changed since the previous fold while recovery still reaches the
// bit-identical full image.
//
// Large collections are encoded as explicit put/delete lists — the
// deletes are the tombstones of the run layout — while the scalars
// (counters, adaptive choices) are carried whole: they are O(types),
// not O(elements), and replacing them beats diffing them. The one
// exception is the schema blob, whose per-node degree statistics grow
// with the database: it travels as a structural patch (see
// schema.DiffJSON) so delta runs stay proportional to what changed.

import (
	"bytes"
	"cmp"
	"fmt"
	"slices"

	"encoding/json"

	"github.com/pghive/pghive/internal/lsh"
	"github.com/pghive/pghive/internal/pg"
	"github.com/pghive/pghive/internal/schema"
)

// schemaEqual compares two serialized schemas modulo whitespace: a
// freshly captured image carries WriteJSON's indented form while a
// decoded one carries the compact form, and the two must not produce
// a patch for an unchanged schema.
func schemaEqual(a, b json.RawMessage) bool {
	if bytes.Equal(a, b) {
		return true
	}
	var ca, cb bytes.Buffer
	if json.Compact(&ca, a) != nil || json.Compact(&cb, b) != nil {
		return false
	}
	return bytes.Equal(ca.Bytes(), cb.Bytes())
}

// DeltaVersion is the ImageDelta format version.
const DeltaVersion = 1

// Assign records one element's (re)assignment to a schema type.
type Assign struct {
	ID   pg.ID `json:"id"`
	Type int   `json:"type"`
}

// ImageDelta is the difference between two checkpoint images: the
// state change a span of WAL records (FromLSN, ToLSN] produced.
// Collections list puts and deletes in canonical order (IDs and
// fingerprints ascending), so identical deltas marshal to identical
// bytes — run files are golden-diffable like checkpoints.
type ImageDelta struct {
	Version int `json:"version"`
	// FromLSN / ToLSN bound the WAL span the delta covers: it applies
	// only to an image whose WALSeq equals FromLSN, and produces an
	// image covering ToLSN.
	FromLSN uint64 `json:"fromLSN"`
	ToLSN   uint64 `json:"toLSN"`

	// SchemaPatch is the structural schema diff (schema.DiffJSON);
	// absent when the schema did not change across the span.
	SchemaPatch json.RawMessage `json:"schemaPatch,omitempty"`

	// Whole-value replacements: O(schema), not O(elements).
	Batches      int                `json:"batches"`
	NodeClusters int                `json:"nodeClusters"`
	EdgeClusters int                `json:"edgeClusters"`
	NodeShapes   int                `json:"nodeShapes"`
	EdgeShapes   int                `json:"edgeShapes"`
	NodeChoice   lsh.AdaptiveChoice `json:"nodeChoice"`
	EdgeChoice   lsh.AdaptiveChoice `json:"edgeChoice"`
	NextTypeID   int                `json:"nextTypeID"`
	NextEdgeID   pg.ID              `json:"nextEdgeID,omitempty"`

	// Assignment puts and tombstones, ID-ascending.
	NodeAssign   []Assign `json:"nodeAssign,omitempty"`
	NodeUnassign []pg.ID  `json:"nodeUnassign,omitempty"`
	EdgeAssign   []Assign `json:"edgeAssign,omitempty"`
	EdgeUnassign []pg.ID  `json:"edgeUnassign,omitempty"`

	// Shape-cache puts and tombstones, fingerprint-ascending (deleted
	// fingerprints marshal as base64 like ShapeEntry keys).
	NodeShapePut []pg.ShapeEntry `json:"nodeShapePut,omitempty"`
	NodeShapeDel [][]byte        `json:"nodeShapeDel,omitempty"`
	EdgeShapePut []pg.ShapeEntry `json:"edgeShapePut,omitempty"`
	EdgeShapeDel [][]byte        `json:"edgeShapeDel,omitempty"`

	// Resolver puts and tombstones, ID-ascending.
	ResolverPut []ResolverNode `json:"resolverPut,omitempty"`
	ResolverDel []pg.ID        `json:"resolverDel,omitempty"`

	// AppliedKeys are the idempotency keys applied in (FromLSN, ToLSN],
	// in LSN order. Keys the base image already carried are not
	// repeated; merging concatenates, and the bounded applied-key
	// store re-applies its retention cap on restore.
	AppliedKeys []AppliedKey `json:"appliedKeys,omitempty"`
}

// Tombstones counts the delta's deletions — the numerator of the
// durable layer's fold-triggering tombstone ratio.
func (d *ImageDelta) Tombstones() int {
	return len(d.NodeUnassign) + len(d.EdgeUnassign) +
		len(d.NodeShapeDel) + len(d.EdgeShapeDel) + len(d.ResolverDel)
}

// DiffImage computes the delta that transforms base into next. Both
// images must be canonical (as produced by CaptureImage / DecodeImage)
// and next.WALSeq must not precede base.WALSeq.
func DiffImage(base, next *Image) (*ImageDelta, error) {
	if base.Version != CheckpointVersion || next.Version != CheckpointVersion {
		return nil, fmt.Errorf("core: delta: unsupported image versions %d -> %d", base.Version, next.Version)
	}
	if next.WALSeq < base.WALSeq {
		return nil, fmt.Errorf("core: delta: next image covers LSN %d, before base LSN %d", next.WALSeq, base.WALSeq)
	}
	d := &ImageDelta{
		Version: DeltaVersion,
		FromLSN: base.WALSeq,
		ToLSN:   next.WALSeq,

		Batches:      next.Batches,
		NodeClusters: next.NodeClusters,
		EdgeClusters: next.EdgeClusters,
		NodeShapes:   next.NodeShapes,
		EdgeShapes:   next.EdgeShapes,
		NodeChoice:   next.NodeChoice,
		EdgeChoice:   next.EdgeChoice,
		NextTypeID:   next.NextTypeID,
		NextEdgeID:   next.NextEdgeID,
	}
	if !schemaEqual(base.Schema, next.Schema) {
		patch, err := schema.DiffJSON(base.Schema, next.Schema)
		if err != nil {
			return nil, fmt.Errorf("core: delta: schema diff: %w", err)
		}
		d.SchemaPatch = patch
	}
	d.NodeAssign, d.NodeUnassign = diffAssign(base.NodeAssign, next.NodeAssign)
	d.EdgeAssign, d.EdgeUnassign = diffAssign(base.EdgeAssign, next.EdgeAssign)
	d.NodeShapePut, d.NodeShapeDel = diffShapes(base.NodeShapeCache, next.NodeShapeCache)
	d.EdgeShapePut, d.EdgeShapeDel = diffShapes(base.EdgeShapeCache, next.EdgeShapeCache)
	d.ResolverPut, d.ResolverDel = diffResolver(base.Resolver, next.Resolver)
	for _, k := range next.AppliedKeys {
		if k.LSN > base.WALSeq {
			d.AppliedKeys = append(d.AppliedKeys, k)
		}
	}
	return d, nil
}

// Apply folds the delta onto img in place, advancing it from FromLSN
// to ToLSN. The delta chain's contiguity is enforced here: applying a
// run whose FromLSN is not exactly the image's covered LSN fails.
func (d *ImageDelta) Apply(img *Image) error {
	if d.Version != DeltaVersion {
		return fmt.Errorf("core: delta: unsupported delta version %d", d.Version)
	}
	if img.Version != CheckpointVersion {
		return fmt.Errorf("core: delta: unsupported image version %d", img.Version)
	}
	if d.FromLSN != img.WALSeq {
		return fmt.Errorf("core: delta: run starts at LSN %d but image covers LSN %d", d.FromLSN, img.WALSeq)
	}

	if d.SchemaPatch != nil {
		patched, err := schema.ApplyPatchJSON(img.Schema, d.SchemaPatch)
		if err != nil {
			return fmt.Errorf("core: delta: schema patch: %w", err)
		}
		img.Schema = patched
	}
	img.Batches = d.Batches
	img.NodeClusters = d.NodeClusters
	img.EdgeClusters = d.EdgeClusters
	img.NodeShapes = d.NodeShapes
	img.EdgeShapes = d.EdgeShapes
	img.NodeChoice = d.NodeChoice
	img.EdgeChoice = d.EdgeChoice
	img.NextTypeID = d.NextTypeID
	img.NextEdgeID = d.NextEdgeID

	img.NodeAssign = applyAssign(img.NodeAssign, d.NodeAssign, d.NodeUnassign)
	img.EdgeAssign = applyAssign(img.EdgeAssign, d.EdgeAssign, d.EdgeUnassign)
	img.NodeShapeCache = applyShapes(img.NodeShapeCache, d.NodeShapePut, d.NodeShapeDel)
	img.EdgeShapeCache = applyShapes(img.EdgeShapeCache, d.EdgeShapePut, d.EdgeShapeDel)
	img.Resolver = applyResolver(img.Resolver, d.ResolverPut, d.ResolverDel)
	img.AppliedKeys = append(img.AppliedKeys, d.AppliedKeys...)
	img.WALSeq = d.ToLSN
	return nil
}

func diffAssign(base, next map[pg.ID]int) (puts []Assign, dels []pg.ID) {
	for id, t := range next {
		if bt, ok := base[id]; !ok || bt != t {
			puts = append(puts, Assign{ID: id, Type: t})
		}
	}
	for id := range base {
		if _, ok := next[id]; !ok {
			dels = append(dels, id)
		}
	}
	slices.SortFunc(puts, func(a, b Assign) int { return cmp.Compare(a.ID, b.ID) })
	slices.Sort(dels)
	return puts, dels
}

func applyAssign(m map[pg.ID]int, puts []Assign, dels []pg.ID) map[pg.ID]int {
	if len(puts) > 0 && m == nil {
		m = make(map[pg.ID]int, len(puts))
	}
	for _, p := range puts {
		m[p.ID] = p.Type
	}
	for _, id := range dels {
		delete(m, id)
	}
	if len(m) == 0 {
		return nil // canonical: empty marshals as absent, like CaptureImage
	}
	return m
}

// diffShapes merge-walks two fingerprint-sorted exports.
func diffShapes(base, next []pg.ShapeEntry) (puts []pg.ShapeEntry, dels [][]byte) {
	i, j := 0, 0
	for i < len(base) || j < len(next) {
		switch {
		case i == len(base):
			puts = append(puts, next[j])
			j++
		case j == len(next):
			dels = append(dels, base[i].Key)
			i++
		default:
			switch c := bytes.Compare(base[i].Key, next[j].Key); {
			case c < 0:
				dels = append(dels, base[i].Key)
				i++
			case c > 0:
				puts = append(puts, next[j])
				j++
			default:
				if base[i].Token != next[j].Token || !slices.Equal(base[i].Items, next[j].Items) {
					puts = append(puts, next[j])
				}
				i, j = i+1, j+1
			}
		}
	}
	return puts, dels
}

func applyShapes(entries []pg.ShapeEntry, puts []pg.ShapeEntry, dels [][]byte) []pg.ShapeEntry {
	if len(puts) == 0 && len(dels) == 0 {
		return entries
	}
	m := make(map[string]pg.ShapeEntry, len(entries)+len(puts))
	for _, e := range entries {
		m[string(e.Key)] = e
	}
	for _, e := range puts {
		m[string(e.Key)] = e
	}
	for _, k := range dels {
		delete(m, string(k))
	}
	if len(m) == 0 {
		return nil
	}
	out := make([]pg.ShapeEntry, 0, len(m))
	for _, e := range m {
		out = append(out, e)
	}
	slices.SortFunc(out, func(a, b pg.ShapeEntry) int { return bytes.Compare(a.Key, b.Key) })
	return out
}

// diffResolver merge-walks two ID-sorted resolver exports.
func diffResolver(base, next []ResolverNode) (puts []ResolverNode, dels []pg.ID) {
	i, j := 0, 0
	for i < len(base) || j < len(next) {
		switch {
		case i == len(base):
			puts = append(puts, next[j])
			j++
		case j == len(next):
			dels = append(dels, base[i].ID)
			i++
		case base[i].ID < next[j].ID:
			dels = append(dels, base[i].ID)
			i++
		case base[i].ID > next[j].ID:
			puts = append(puts, next[j])
			j++
		default:
			if !slices.Equal(base[i].Labels, next[j].Labels) {
				puts = append(puts, next[j])
			}
			i, j = i+1, j+1
		}
	}
	return puts, dels
}

func applyResolver(nodes []ResolverNode, puts []ResolverNode, dels []pg.ID) []ResolverNode {
	if len(puts) == 0 && len(dels) == 0 {
		return nodes
	}
	m := make(map[pg.ID]ResolverNode, len(nodes)+len(puts))
	for _, n := range nodes {
		m[n.ID] = n
	}
	for _, n := range puts {
		m[n.ID] = n
	}
	for _, id := range dels {
		delete(m, id)
	}
	if len(m) == 0 {
		return nil
	}
	out := make([]ResolverNode, 0, len(m))
	for _, n := range m {
		out = append(out, n)
	}
	slices.SortFunc(out, func(a, b ResolverNode) int { return cmp.Compare(a.ID, b.ID) })
	return out
}
