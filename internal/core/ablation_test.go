package core

// ablation_test.go exercises, as regular tests, the design-choice
// ablations DESIGN.md calls out — the bench versions live in the root
// bench suite, but the qualitative claims must hold on every test run.

import (
	"math/rand"
	"testing"

	"github.com/pghive/pghive/internal/pg"
)

// hetioLike builds a graph whose types are structurally identical and
// only distinguishable by label — the case the hybrid representation
// (§4.1) exists for.
func hetioLike(n int, noise float64, seed int64) (*pg.Graph, map[pg.ID]string) {
	g := pg.NewGraph()
	truth := map[pg.ID]string{}
	labels := []string{"Gene", "Disease", "Compound", "Anatomy"}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		l := labels[i%len(labels)]
		props := map[string]pg.Value{}
		for _, k := range []string{"identifier", "name"} {
			if rng.Float64() >= noise {
				props[k] = pg.Str("v")
			}
		}
		id := g.AddNode([]string{l}, props)
		truth[id] = l
	}
	return g, truth
}

// purityOf computes majority-cluster purity of node assignments.
func purityOf(res *Result, truth map[pg.ID]string) float64 {
	perType := map[int]map[string]int{}
	for id, ty := range res.NodeAssign {
		if perType[ty.ID] == nil {
			perType[ty.ID] = map[string]int{}
		}
		perType[ty.ID][truth[id]]++
	}
	correct, total := 0, 0
	for _, m := range perType {
		best := 0
		for _, c := range m {
			if c > best {
				best = c
			}
			total += c
		}
		correct += best
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

func TestAblationHybridVectorsSeparateIdenticalStructures(t *testing.T) {
	g, truth := hetioLike(400, 0.3, 41)
	hybrid := Discover(g, Options{Seed: 41})
	flat := Discover(g, Options{Seed: 41, LabelWeight: 0.001})
	if p := purityOf(hybrid, truth); p < 0.99 {
		t.Errorf("hybrid vectors purity = %.3f, want ~1 (labels separate identical structures)", p)
	}
	if p := purityOf(flat, truth); p > 0.9 {
		t.Errorf("props-only purity = %.3f; expected mixing without the label block", p)
	}
}

func TestAblationMergeStepCompactsClusters(t *testing.T) {
	g := socialGraph(300, 1.0, 0.3, 42)
	merged := Discover(g, Options{Seed: 42})
	raw := Discover(g, Options{Seed: 42, DisableMerging: true})
	if len(merged.Schema.NodeTypes) != 4 {
		t.Errorf("merged node types = %d, want 4", len(merged.Schema.NodeTypes))
	}
	if len(raw.Schema.NodeTypes) < 3*len(merged.Schema.NodeTypes) {
		t.Errorf("noise at 30%% should fragment raw clusters well beyond the merged count: %d vs %d",
			len(raw.Schema.NodeTypes), len(merged.Schema.NodeTypes))
	}
}
