package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/pghive/pghive/internal/lsh"
	"github.com/pghive/pghive/internal/pg"
	"github.com/pghive/pghive/internal/schema"
)

// socialGraph generates a small LDBC-flavoured social network with a
// known schema: Person, Post, Org, Place node types and KNOWS, LIKES,
// WORKS_AT, LOCATED_IN edge types. labelAvail drops labels; noise
// drops properties.
func socialGraph(n int, labelAvail, noise float64, seed int64) *pg.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := pg.NewGraph()
	var persons, posts, orgs, places []pg.ID

	label := func(l ...string) []string {
		if rng.Float64() < labelAvail {
			return l
		}
		return nil
	}
	props := func(m map[string]pg.Value) map[string]pg.Value {
		out := map[string]pg.Value{}
		for k, v := range m {
			if rng.Float64() >= noise {
				out[k] = v
			}
		}
		return out
	}

	for i := 0; i < n; i++ {
		persons = append(persons, g.AddNode(label("Person"), props(map[string]pg.Value{
			"name": pg.Str(fmt.Sprintf("p%d", i)), "gender": pg.Str("x"),
			"bday": pg.ParseLexical("1990-01-02"),
		})))
	}
	for i := 0; i < n/2; i++ {
		posts = append(posts, g.AddNode(label("Post"), props(map[string]pg.Value{
			"content": pg.Str("hi"), "created": pg.ParseLexical("2024-05-01"),
		})))
	}
	for i := 0; i < n/5+1; i++ {
		orgs = append(orgs, g.AddNode(label("Org"), props(map[string]pg.Value{
			"name": pg.Str("o"), "url": pg.Str("u"),
		})))
	}
	for i := 0; i < n/10+1; i++ {
		places = append(places, g.AddNode(label("Place"), props(map[string]pg.Value{
			"name": pg.Str("pl"),
		})))
	}
	pick := func(ids []pg.ID) pg.ID { return ids[rng.Intn(len(ids))] }
	for i := 0; i < n; i++ {
		_, _ = g.AddEdge(label("KNOWS"), pick(persons), pick(persons),
			props(map[string]pg.Value{"since": pg.Int(int64(2000 + i%20))}))
		if len(posts) > 0 {
			_, _ = g.AddEdge(label("LIKES"), pick(persons), pick(posts), nil)
		}
		_, _ = g.AddEdge(label("WORKS_AT"), pick(persons), pick(orgs),
			props(map[string]pg.Value{"from": pg.Int(2010)}))
	}
	for _, o := range orgs {
		_, _ = g.AddEdge(label("LOCATED_IN"), o, pick(places), nil)
	}
	return g
}

func TestDiscoverCleanGraph(t *testing.T) {
	g := socialGraph(200, 1.0, 0, 1)
	res := Discover(g, Options{Seed: 1})
	s := res.Schema
	for _, tok := range []string{"Person", "Post", "Org", "Place"} {
		if s.NodeTypeByToken(tok) == nil {
			t.Errorf("missing node type %q", tok)
		}
	}
	for _, tok := range []string{"KNOWS", "LIKES", "WORKS_AT", "LOCATED_IN"} {
		if s.EdgeTypeByToken(tok) == nil {
			t.Errorf("missing edge type %q", tok)
		}
	}
	if len(s.NodeTypes) != 4 {
		t.Errorf("node types = %d, want exactly 4 on clean data", len(s.NodeTypes))
	}
	if len(s.EdgeTypes) != 4 {
		t.Errorf("edge types = %d, want exactly 4", len(s.EdgeTypes))
	}
	// Every element must be assigned.
	if len(res.NodeAssign) != g.NumNodes() {
		t.Errorf("node assignments = %d, want %d", len(res.NodeAssign), g.NumNodes())
	}
	if len(res.EdgeAssign) != g.NumEdges() {
		t.Errorf("edge assignments = %d, want %d", len(res.EdgeAssign), g.NumEdges())
	}
	// Person properties: all mandatory at 0 noise.
	person := s.NodeTypeByToken("Person")
	for _, k := range []string{"name", "gender", "bday"} {
		if ps := person.Props[k]; ps == nil || !ps.Mandatory {
			t.Errorf("Person.%s should be mandatory on clean data", k)
		}
	}
	if person.Props["bday"].DataType != pg.KindDate {
		t.Errorf("bday type = %v, want DATE", person.Props["bday"].DataType)
	}
	// WORKS_AT: persons work at one org, orgs have many employees.
	wa := s.EdgeTypeByToken("WORKS_AT")
	if wa.Cardinality != schema.CardManyToOne && wa.Cardinality != schema.CardManyToMany {
		t.Errorf("WORKS_AT cardinality = %v", wa.Cardinality)
	}
}

func TestDiscoverMinHash(t *testing.T) {
	g := socialGraph(200, 1.0, 0, 2)
	res := Discover(g, Options{Method: MinHash, Seed: 2})
	s := res.Schema
	if len(s.NodeTypes) != 4 {
		t.Errorf("MinHash node types = %d, want 4", len(s.NodeTypes))
	}
	if len(s.EdgeTypes) != 4 {
		t.Errorf("MinHash edge types = %d, want 4", len(s.EdgeTypes))
	}
}

func TestDiscoverWithNoiseKeepsTypesPure(t *testing.T) {
	for _, m := range []Method{ELSH, MinHash} {
		g := socialGraph(300, 1.0, 0.4, 3)
		res := Discover(g, Options{Method: m, Seed: 3})
		s := res.Schema
		// Labeled merging must still produce exactly the 4 node types:
		// noise fragments clusters but labels reunite them.
		if len(s.NodeTypes) != 4 {
			t.Errorf("%v: node types under 40%% noise = %d, want 4", m, len(s.NodeTypes))
		}
		person := s.NodeTypeByToken("Person")
		if person == nil {
			t.Fatalf("%v: Person missing", m)
		}
		if person.Props["name"] == nil {
			t.Errorf("%v: Person.name lost", m)
		}
		if person.Props["name"].Mandatory {
			t.Errorf("%v: with property noise, name cannot be mandatory", m)
		}
	}
}

func TestDiscoverUnlabeledMergesByStructure(t *testing.T) {
	// 50% label availability: unlabeled Person nodes share their full
	// property set with labeled ones (0 noise), so Jaccard = 1 merges
	// them into the Person type (Example 5).
	g := socialGraph(300, 0.5, 0, 4)
	res := Discover(g, Options{Seed: 4})
	s := res.Schema
	person := s.NodeTypeByToken("Person")
	if person == nil {
		t.Fatal("Person type missing")
	}
	// Person instances should include both labeled and unlabeled
	// halves — allow some slack for nodes captured by other types.
	if person.Instances < 250 {
		t.Errorf("Person.Instances = %d, want ~300 (unlabeled merged in)", person.Instances)
	}
}

func TestDiscoverFullyUnlabeled(t *testing.T) {
	g := socialGraph(200, 0, 0, 5)
	res := Discover(g, Options{Seed: 5})
	s := res.Schema
	if len(s.NodeTypes) == 0 {
		t.Fatal("0% labels must still discover abstract types")
	}
	for _, nt := range s.NodeTypes {
		if !nt.Abstract {
			t.Errorf("type %s should be abstract with no labels", nt.Name())
		}
	}
	if len(res.NodeAssign) != g.NumNodes() {
		t.Error("all nodes must be assigned even without labels")
	}
}

func TestIncrementalMatchesStaticCoverage(t *testing.T) {
	g := socialGraph(300, 1.0, 0.1, 6)
	static := Discover(g, Options{Seed: 6})

	inc := NewIncremental(Options{Seed: 6})
	batches := pg.SplitBatches(g, 5, rand.New(rand.NewSource(6)))
	for _, b := range batches {
		inc.ProcessBatch(b)
	}
	res := inc.Finalize()

	// Same labeled node and edge types must exist (coverage identity;
	// §4.6 incremental guarantee).
	for _, nt := range static.Schema.NodeTypes {
		if nt.Abstract {
			continue
		}
		got := res.Schema.NodeTypeByToken(nt.Token)
		if got == nil {
			t.Errorf("incremental lost node type %q", nt.Token)
			continue
		}
		for k := range nt.Props {
			if got.Props[k] == nil {
				t.Errorf("incremental lost property %s.%s", nt.Token, k)
			}
		}
	}
	for _, et := range static.Schema.EdgeTypes {
		if et.Abstract {
			continue
		}
		if res.Schema.EdgeTypeByToken(et.Token) == nil {
			t.Errorf("incremental lost edge type %q", et.Token)
		}
	}
	if len(res.NodeAssign) != g.NumNodes() {
		t.Errorf("incremental assignments = %d, want %d", len(res.NodeAssign), g.NumNodes())
	}
}

func TestIncrementalSchemaMonotone(t *testing.T) {
	g := socialGraph(200, 0.8, 0.2, 7)
	inc := NewIncremental(Options{Seed: 7})
	batches := pg.SplitBatches(g, 4, rand.New(rand.NewSource(7)))
	seen := map[string]bool{}
	for _, b := range batches {
		inc.ProcessBatch(b)
		now := map[string]bool{}
		for _, nt := range inc.Schema().NodeTypes {
			for l := range nt.Labels {
				now["L:"+l] = true
			}
			for k := range nt.Props {
				now["K:"+k] = true
			}
		}
		for k := range seen {
			if !now[k] {
				t.Fatalf("schema lost %q after batch %d (violates S_i ⊑ S_i+1)", k, b.Index)
			}
		}
		seen = now
	}
}

func TestPinnedParams(t *testing.T) {
	g := socialGraph(100, 1.0, 0, 8)
	p := &lsh.Params{Tables: 10, BucketLength: 1.5}
	res := Discover(g, Options{Seed: 8, NodeParams: p, EdgeParams: p})
	if res.NodeChoice.Params.Tables != 0 {
		t.Error("adaptive choice must stay zero when parameters are pinned")
	}
	if len(res.Schema.NodeTypes) != 4 {
		t.Errorf("pinned params node types = %d, want 4", len(res.Schema.NodeTypes))
	}
}

func TestAdaptiveChoiceRecorded(t *testing.T) {
	g := socialGraph(150, 1.0, 0, 9)
	res := Discover(g, Options{Seed: 9})
	if res.NodeChoice.Params.Tables == 0 || res.NodeChoice.Params.BucketLength <= 0 {
		t.Errorf("adaptive node choice not recorded: %+v", res.NodeChoice)
	}
	if res.EdgeChoice.Params.Tables == 0 {
		t.Errorf("adaptive edge choice not recorded: %+v", res.EdgeChoice)
	}
	if res.NodeChoice.Mu <= 0 {
		t.Error("distance scale µ must be positive")
	}
}

func TestHashedEmbeddingMode(t *testing.T) {
	g := socialGraph(150, 1.0, 0, 10)
	res := Discover(g, Options{Seed: 10, Embedding: EmbedHashed})
	if len(res.Schema.NodeTypes) != 4 {
		t.Errorf("hashed embedding node types = %d, want 4", len(res.Schema.NodeTypes))
	}
}

func TestTimingPopulated(t *testing.T) {
	g := socialGraph(200, 1.0, 0, 11)
	res := Discover(g, Options{Seed: 11})
	if res.Timing.Preprocess <= 0 || res.Timing.Cluster <= 0 || res.Timing.Extract <= 0 {
		t.Errorf("phase timings must be positive: %+v", res.Timing)
	}
	if res.Timing.Discovery() != res.Timing.Preprocess+res.Timing.Cluster+res.Timing.Extract {
		t.Error("Discovery() must sum the three discovery phases")
	}
	if res.Timing.Total() < res.Timing.Discovery() {
		t.Error("Total() must include post-processing")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := pg.NewGraph()
	res := Discover(g, Options{Seed: 1})
	if len(res.Schema.NodeTypes) != 0 || len(res.Schema.EdgeTypes) != 0 {
		t.Error("empty graph must yield an empty schema")
	}
}

func TestPerBatchPostProcess(t *testing.T) {
	g := socialGraph(100, 1.0, 0, 12)
	inc := NewIncremental(Options{Seed: 12, PostProcess: true})
	batches := pg.SplitBatches(g, 2, rand.New(rand.NewSource(12)))
	bt := inc.ProcessBatch(batches[0])
	if bt.Timing.PostProcess <= 0 {
		t.Error("per-batch post-processing must be timed when enabled")
	}
	// Constraints must already be available mid-stream.
	person := inc.Schema().NodeTypeByToken("Person")
	if person == nil {
		t.Skip("Person not in first batch")
	}
	if person.Props["name"] != nil && person.Props["name"].DataType == pg.KindInvalid {
		t.Error("mid-stream post-processing did not fill data types")
	}
}
