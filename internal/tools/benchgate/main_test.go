package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: github.com/pghive/pghive
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkShapeInterning/PG-HIVE-ELSH/elements=10000/interned=true-4                 5           9000000 ns/op          4.000 node-types        1199032 B/op        690 allocs/op
BenchmarkShapeInterning/PG-HIVE-ELSH/elements=10000/interned=false-4             5          26000000 ns/op
BenchmarkServeConcurrentReads/stats-4                                  150000000                8.10 ns/op             244 writes/s               1 B/op          0 allocs/op
BenchmarkServeConcurrentReads/pgschema-4                                   10000            150000 ns/op
not a bench line
PASS
`

const sampleBaseline2 = `{
  "benchmarks": {
    "BenchmarkShapeInterning": {
      "description": "x",
      "ns_per_op": {
        "PG-HIVE-ELSH/elements=10000/interned=true": 8284152,
        "PG-HIVE-ELSH/elements=10000/interned=false": 26182575
      },
      "allocs_per_op": {
        "PG-HIVE-ELSH/elements=10000/interned=true": 690,
        "PG-HIVE-ELSH/elements=10000/interned=false": 24721
      },
      "ratios": { "PG-HIVE-ELSH/elements=10000": 3.16 }
    },
    "BenchmarkShapeInterningSpeedup": {
      "default_GOGC": { "PG-HIVE-ELSH/elements=10000": { "discovery_speedup": 3.99 } }
    }
  }
}`

const sampleBaseline4 = `{
  "benchmarks": {
    "BenchmarkServeConcurrentReads": {
      "results": {
        "stats": { "ns_per_op": 7.1, "allocs_per_op": 0, "writes_per_s": 244, "note": "n" },
        "pgschema": { "ns_per_op": 148827, "allocs_per_op": 622, "writes_per_s": 520 },
        "validate": { "ns_per_op": 7796, "writes_per_s": 468 }
      }
    }
  }
}`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBenchOutput(t *testing.T) {
	measured := newMetrics()
	if err := parseBenchOutput(writeTemp(t, "bench.txt", sampleBenchOutput), measured); err != nil {
		t.Fatal(err)
	}
	wantNs := map[string]float64{
		"ShapeInterning/PG-HIVE-ELSH/elements=10000/interned=true":  9000000,
		"ShapeInterning/PG-HIVE-ELSH/elements=10000/interned=false": 26000000,
		"ServeConcurrentReads/stats":                                8.10,
		"ServeConcurrentReads/pgschema":                             150000,
	}
	if len(measured.ns) != len(wantNs) {
		t.Fatalf("parsed %d ns entries, want %d: %v", len(measured.ns), len(wantNs), measured.ns)
	}
	for k, v := range wantNs {
		if measured.ns[k] != v {
			t.Errorf("ns[%s] = %v, want %v", k, measured.ns[k], v)
		}
	}
	// Allocations only where the line carried an allocs/op column —
	// including a genuine zero, which must be recorded, not dropped.
	wantAllocs := map[string]float64{
		"ShapeInterning/PG-HIVE-ELSH/elements=10000/interned=true": 690,
		"ServeConcurrentReads/stats":                               0,
	}
	if len(measured.allocs) != len(wantAllocs) {
		t.Fatalf("parsed %d alloc entries, want %d: %v", len(measured.allocs), len(wantAllocs), measured.allocs)
	}
	for k, v := range wantAllocs {
		if got, ok := measured.allocs[k]; !ok || got != v {
			t.Errorf("allocs[%s] = %v (present=%v), want %v", k, got, ok, v)
		}
	}
}

func TestParseBaselineShapes(t *testing.T) {
	baseline := newMetrics()
	if err := parseBaseline(writeTemp(t, "b2.json", sampleBaseline2), baseline); err != nil {
		t.Fatal(err)
	}
	if err := parseBaseline(writeTemp(t, "b4.json", sampleBaseline4), baseline); err != nil {
		t.Fatal(err)
	}
	wantNs := map[string]float64{
		// Map-shaped ns_per_op (BENCH_2 layout).
		"ShapeInterning/PG-HIVE-ELSH/elements=10000/interned=true":  8284152,
		"ShapeInterning/PG-HIVE-ELSH/elements=10000/interned=false": 26182575,
		// Scalar ns_per_op nested under results.<name> (BENCH_4 layout).
		"ServeConcurrentReads/stats":    7.1,
		"ServeConcurrentReads/pgschema": 148827,
		"ServeConcurrentReads/validate": 7796,
	}
	if len(baseline.ns) != len(wantNs) {
		t.Fatalf("extracted %d ns entries, want %d: %v", len(baseline.ns), len(wantNs), baseline.ns)
	}
	for k, v := range wantNs {
		if baseline.ns[k] != v {
			t.Errorf("ns[%s] = %v, want %v", k, baseline.ns[k], v)
		}
	}
	wantAllocs := map[string]float64{
		"ShapeInterning/PG-HIVE-ELSH/elements=10000/interned=true":  690,
		"ShapeInterning/PG-HIVE-ELSH/elements=10000/interned=false": 24721,
		"ServeConcurrentReads/stats":                                0,
		"ServeConcurrentReads/pgschema":                             622,
	}
	if len(baseline.allocs) != len(wantAllocs) {
		t.Fatalf("extracted %d alloc entries, want %d: %v", len(baseline.allocs), len(wantAllocs), baseline.allocs)
	}
	for k, v := range wantAllocs {
		if got, ok := baseline.allocs[k]; !ok || got != v {
			t.Errorf("allocs[%s] = %v (present=%v), want %v", k, got, ok, v)
		}
	}
}

// TestParseBaselineErrors: every way a baseline file can be unusable
// must surface as an error, never as a silently empty baseline — an
// empty baseline would disarm the gate while CI stays green.
func TestParseBaselineErrors(t *testing.T) {
	cases := []struct {
		name, content, wantErr string
	}{
		{"not-json", "this is not json {", "invalid character"},
		{"missing-benchmarks-key", `{"pr": 9, "title": "no benchmarks here"}`, `no "benchmarks" object`},
		{"benchmarks-wrong-type", `{"benchmarks": [1, 2, 3]}`, `no "benchmarks" object`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := parseBaseline(writeTemp(t, "bad.json", tc.content), newMetrics())
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want containing %q", err, tc.wantErr)
			}
		})
	}
	t.Run("unreadable-file", func(t *testing.T) {
		if err := parseBaseline(filepath.Join(t.TempDir(), "absent.json"), newMetrics()); err == nil {
			t.Fatal("missing file produced no error")
		}
	})
}

// TestParseBenchOutputErrors: unreadable transcripts fail loudly;
// transcripts with no recognizable bench lines parse to an empty set
// (which the compare stage then flags as zero overlap).
func TestParseBenchOutputErrors(t *testing.T) {
	if err := parseBenchOutput(filepath.Join(t.TempDir(), "absent.txt"), newMetrics()); err == nil {
		t.Fatal("missing file produced no error")
	}
	malformed := newMetrics()
	err := parseBenchOutput(writeTemp(t, "garbage.txt",
		"BenchmarkBroken-4 not-a-count NaNish ns/op\nrandom noise\nBenchmarkAlso 12 (missing unit)\n"), malformed)
	if err != nil {
		t.Fatalf("malformed transcript errored instead of parsing empty: %v", err)
	}
	if len(malformed.ns) != 0 {
		t.Fatalf("malformed transcript produced entries: %v", malformed.ns)
	}
	_, failures := compare(malformed, metricsFrom(map[string]float64{"a/x": 100}, nil), 2, 2)
	if len(failures) != 1 || !strings.Contains(failures[0], "no measured benchmark") {
		t.Fatalf("empty measurement set must trip the zero-overlap failure, got %v", failures)
	}
}

// metricsFrom builds a metrics value from literal maps (nil = empty).
func metricsFrom(ns, allocs map[string]float64) *metrics {
	m := newMetrics()
	for k, v := range ns {
		m.ns[k] = v
	}
	for k, v := range allocs {
		m.allocs[k] = v
	}
	return m
}

func TestCompareGate(t *testing.T) {
	baseline := metricsFrom(map[string]float64{"a/x": 100, "a/y": 100, "a/z": 100}, nil)

	// Within tolerance (1.9x) and a missing baseline: no failures.
	report, failures := compare(metricsFrom(map[string]float64{"a/x": 190, "new": 5}, nil), baseline, 2, 2)
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
	if !strings.Contains(report, "no baseline") || !strings.Contains(report, "not measured") {
		t.Fatalf("report missing informational rows:\n%s", report)
	}

	// Past tolerance: exactly the regressed benchmark fails.
	_, failures = compare(metricsFrom(map[string]float64{"a/x": 201, "a/y": 90}, nil), baseline, 2, 2)
	if len(failures) != 1 || !strings.Contains(failures[0], "a/x") {
		t.Fatalf("failures = %v, want exactly a/x", failures)
	}

	// Zero overlap is itself a failure — a renamed benchmark must not
	// silently disable the gate.
	_, failures = compare(metricsFrom(map[string]float64{"renamed": 1}, nil), baseline, 2, 2)
	if len(failures) != 1 {
		t.Fatalf("no-overlap run produced %v, want one failure", failures)
	}
}

func TestCompareAllocGate(t *testing.T) {
	baseline := metricsFrom(
		map[string]float64{"a/x": 100, "a/zero": 100},
		map[string]float64{"a/x": 100, "a/zero": 0},
	)

	// Time fine, allocations doubled-plus-slack: alloc gate fires.
	report, failures := compare(metricsFrom(
		map[string]float64{"a/x": 100, "a/zero": 100},
		map[string]float64{"a/x": 203, "a/zero": 0},
	), baseline, 2, 2)
	if len(failures) != 1 || !strings.Contains(failures[0], "allocs/op") {
		t.Fatalf("failures = %v, want one alloc regression", failures)
	}
	if !strings.Contains(report, "ALLOC REGRESSION") {
		t.Fatalf("report missing alloc regression status:\n%s", report)
	}

	// Within ratio+slack — including a zero-alloc baseline picking up
	// slack-many allocations: no failures.
	_, failures = compare(metricsFrom(
		map[string]float64{"a/x": 100, "a/zero": 100},
		map[string]float64{"a/x": 202, "a/zero": allocSlack},
	), baseline, 2, 2)
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}

	// Zero-alloc baseline exceeded past the slack: fires even though
	// the ratio term alone (anything × 0) never would.
	_, failures = compare(metricsFrom(
		map[string]float64{"a/zero": 100},
		map[string]float64{"a/zero": allocSlack + 1},
	), baseline, 2, 2)
	if len(failures) != 1 || !strings.Contains(failures[0], "a/zero") {
		t.Fatalf("failures = %v, want a/zero alloc regression", failures)
	}

	// A -benchmem-less run (no measured allocs) is never alloc-gated.
	_, failures = compare(metricsFrom(map[string]float64{"a/x": 100}, nil), baseline, 2, 2)
	if len(failures) != 0 {
		t.Fatalf("alloc gate fired without measured allocations: %v", failures)
	}
}

// TestRealBaselinesParse pins the extraction against the actual
// committed BENCH files, so a future baseline reshape that the walker
// cannot read fails here instead of silently disarming the CI gate.
func TestRealBaselinesParse(t *testing.T) {
	baseline := newMetrics()
	for _, f := range []string{"BENCH_2.json", "BENCH_4.json"} {
		if err := parseBaseline(filepath.Join("..", "..", "..", f), baseline); err != nil {
			t.Fatal(err)
		}
	}
	for _, key := range []string{
		"ShapeInterning/PG-HIVE-ELSH/elements=100000/interned=true",
		"ShapeInterning/PG-HIVE-MinHash/elements=10000/interned=false",
		"ServeConcurrentReads/stats",
		"ServeConcurrentReads/pgschema",
		"ServeConcurrentReads/validate",
	} {
		if _, ok := baseline.ns[key]; !ok {
			t.Errorf("committed baselines missing ns/op for %s (extracted: %d entries)", key, len(baseline.ns))
		}
		if _, ok := baseline.allocs[key]; !ok {
			t.Errorf("committed baselines missing allocs/op for %s (extracted: %d entries)", key, len(baseline.allocs))
		}
	}
}
