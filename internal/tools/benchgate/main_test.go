package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: github.com/pghive/pghive
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkShapeInterning/PG-HIVE-ELSH/elements=10000/interned=true-4                 5           9000000 ns/op
BenchmarkShapeInterning/PG-HIVE-ELSH/elements=10000/interned=false-4             5          26000000 ns/op
BenchmarkServeConcurrentReads/stats-4                                  150000000                8.10 ns/op             244 writes/s
BenchmarkServeConcurrentReads/pgschema-4                                   10000            150000 ns/op
not a bench line
PASS
`

const sampleBaseline2 = `{
  "benchmarks": {
    "BenchmarkShapeInterning": {
      "description": "x",
      "ns_per_op": {
        "PG-HIVE-ELSH/elements=10000/interned=true": 8284152,
        "PG-HIVE-ELSH/elements=10000/interned=false": 26182575
      },
      "ratios": { "PG-HIVE-ELSH/elements=10000": 3.16 }
    },
    "BenchmarkShapeInterningSpeedup": {
      "default_GOGC": { "PG-HIVE-ELSH/elements=10000": { "discovery_speedup": 3.99 } }
    }
  }
}`

const sampleBaseline4 = `{
  "benchmarks": {
    "BenchmarkServeConcurrentReads": {
      "results": {
        "stats": { "ns_per_op": 7.1, "writes_per_s": 244, "note": "n" },
        "pgschema": { "ns_per_op": 148827, "writes_per_s": 520 },
        "validate": { "ns_per_op": 7796, "writes_per_s": 468 }
      }
    }
  }
}`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBenchOutput(t *testing.T) {
	measured := map[string]float64{}
	if err := parseBenchOutput(writeTemp(t, "bench.txt", sampleBenchOutput), measured); err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"ShapeInterning/PG-HIVE-ELSH/elements=10000/interned=true":  9000000,
		"ShapeInterning/PG-HIVE-ELSH/elements=10000/interned=false": 26000000,
		"ServeConcurrentReads/stats":                                8.10,
		"ServeConcurrentReads/pgschema":                             150000,
	}
	if len(measured) != len(want) {
		t.Fatalf("parsed %d entries, want %d: %v", len(measured), len(want), measured)
	}
	for k, v := range want {
		if measured[k] != v {
			t.Errorf("%s = %v, want %v", k, measured[k], v)
		}
	}
}

func TestParseBaselineShapes(t *testing.T) {
	baseline := map[string]float64{}
	if err := parseBaseline(writeTemp(t, "b2.json", sampleBaseline2), baseline); err != nil {
		t.Fatal(err)
	}
	if err := parseBaseline(writeTemp(t, "b4.json", sampleBaseline4), baseline); err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		// Map-shaped ns_per_op (BENCH_2 layout).
		"ShapeInterning/PG-HIVE-ELSH/elements=10000/interned=true":  8284152,
		"ShapeInterning/PG-HIVE-ELSH/elements=10000/interned=false": 26182575,
		// Scalar ns_per_op nested under results.<name> (BENCH_4 layout).
		"ServeConcurrentReads/stats":    7.1,
		"ServeConcurrentReads/pgschema": 148827,
		"ServeConcurrentReads/validate": 7796,
	}
	if len(baseline) != len(want) {
		t.Fatalf("extracted %d entries, want %d: %v", len(baseline), len(want), baseline)
	}
	for k, v := range want {
		if baseline[k] != v {
			t.Errorf("%s = %v, want %v", k, baseline[k], v)
		}
	}
}

func TestCompareGate(t *testing.T) {
	baseline := map[string]float64{"a/x": 100, "a/y": 100, "a/z": 100}

	// Within tolerance (1.9x) and a missing baseline: no failures.
	report, failures := compare(map[string]float64{"a/x": 190, "new": 5}, baseline, 2)
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
	if !strings.Contains(report, "no baseline") || !strings.Contains(report, "not measured") {
		t.Fatalf("report missing informational rows:\n%s", report)
	}

	// Past tolerance: exactly the regressed benchmark fails.
	_, failures = compare(map[string]float64{"a/x": 201, "a/y": 90}, baseline, 2)
	if len(failures) != 1 || !strings.Contains(failures[0], "a/x") {
		t.Fatalf("failures = %v, want exactly a/x", failures)
	}

	// Zero overlap is itself a failure — a renamed benchmark must not
	// silently disable the gate.
	_, failures = compare(map[string]float64{"renamed": 1}, baseline, 2)
	if len(failures) != 1 {
		t.Fatalf("no-overlap run produced %v, want one failure", failures)
	}
}

// TestRealBaselinesParse pins the extraction against the actual
// committed BENCH files, so a future baseline reshape that the walker
// cannot read fails here instead of silently disarming the CI gate.
func TestRealBaselinesParse(t *testing.T) {
	baseline := map[string]float64{}
	for _, f := range []string{"BENCH_2.json", "BENCH_4.json"} {
		if err := parseBaseline(filepath.Join("..", "..", "..", f), baseline); err != nil {
			t.Fatal(err)
		}
	}
	for _, key := range []string{
		"ShapeInterning/PG-HIVE-ELSH/elements=100000/interned=true",
		"ShapeInterning/PG-HIVE-MinHash/elements=10000/interned=false",
		"ServeConcurrentReads/stats",
		"ServeConcurrentReads/pgschema",
		"ServeConcurrentReads/validate",
	} {
		if _, ok := baseline[key]; !ok {
			t.Errorf("committed baselines missing %s (extracted: %d entries)", key, len(baseline))
		}
	}
}
