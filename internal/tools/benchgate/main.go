// Command benchgate compares fresh `go test -bench` output against
// the committed benchmark baselines (BENCH_*.json) and fails — exit
// code 1 — only on order-of-magnitude regressions (ns/op more than
// -max-ratio times the baseline). Everything else is informational: a
// markdown table of measured vs baseline numbers goes to stdout, and
// -out writes the fresh numbers as JSON for the CI artifact.
//
// CI runners and the machines that recorded the baselines differ, so
// the gate is deliberately generous: its job is to catch "the
// benchmark got 2x+ slower", not to police single-digit percentages.
//
//	go test -run XXX -bench 'ShapeInterning$' -benchtime 3x . | tee bench.txt
//	go run ./internal/tools/benchgate -baseline BENCH_2.json -baseline BENCH_4.json \
//	    -max-ratio 2 -out bench-fresh.json bench.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var baselines multiFlag
	flag.Var(&baselines, "baseline", "baseline JSON file (repeatable); ns/op entries are extracted from any nesting")
	maxRatio := flag.Float64("max-ratio", 2, "fail when measured ns/op exceeds baseline by more than this factor")
	out := flag.String("out", "", "write the fresh measurements (and ratios) as JSON to this file")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no bench output files given")
		os.Exit(2)
	}
	measured := map[string]float64{}
	for _, path := range flag.Args() {
		if err := parseBenchOutput(path, measured); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
	}
	baseline := map[string]float64{}
	for _, path := range baselines {
		if err := parseBaseline(path, baseline); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
	}

	report, failures := compare(measured, baseline, *maxRatio)
	fmt.Print(report)

	if *out != "" {
		if err := writeFresh(*out, measured, baseline); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d benchmark(s) regressed more than %.1fx:\n", len(failures), *maxRatio)
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		os.Exit(1)
	}
}

// benchLine matches `go test -bench` result lines, e.g.
//
//	BenchmarkShapeInterning/PG-HIVE-ELSH/elements=10000/interned-4   5   8284152 ns/op   12 extra/metric
//
// The trailing -N is the GOMAXPROCS suffix the test runner appends.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBenchOutput extracts name → ns/op from a `go test -bench`
// transcript. A benchmark appearing several times keeps its last
// value.
func parseBenchOutput(path string, into map[string]float64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		into[strings.TrimPrefix(m[1], "Benchmark")] = ns
	}
	return sc.Err()
}

// parseBaseline extracts benchmark-name → ns/op pairs from a BENCH_*.json
// file. The files are hand-maintained narratives, so extraction is
// structural rather than schema-bound: inside the "benchmarks" object,
// each key names a benchmark function, and every "ns_per_op" found in
// its subtree contributes entries — either a map of sub-benchmark
// names to numbers, or a single number whose sub-benchmark name is the
// enclosing object's key (e.g. results.stats.ns_per_op → "stats").
func parseBaseline(path string, into map[string]float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	benches, ok := doc["benchmarks"].(map[string]any)
	if !ok {
		return fmt.Errorf("%s: no \"benchmarks\" object", path)
	}
	for fn, sub := range benches {
		fn = strings.TrimPrefix(fn, "Benchmark")
		collectNsPerOp(sub, fn, into)
	}
	return nil
}

// collectNsPerOp walks a baseline subtree, keying discovered ns_per_op
// values under prefix (the benchmark function, extended by the map key
// that encloses a scalar ns_per_op).
func collectNsPerOp(v any, prefix string, into map[string]float64) {
	obj, ok := v.(map[string]any)
	if !ok {
		return
	}
	for k, val := range obj {
		if k == "ns_per_op" {
			switch t := val.(type) {
			case float64:
				into[prefix] = t
			case map[string]any:
				for name, n := range t {
					if ns, ok := n.(float64); ok {
						into[prefix+"/"+name] = ns
					}
				}
			}
			continue
		}
		next := prefix
		// Descend with the key appended only where the key names a
		// sub-benchmark level (objects that eventually hold a scalar
		// ns_per_op); structural keys like "results" stay transparent.
		if child, ok := val.(map[string]any); ok {
			if _, scalar := child["ns_per_op"].(float64); scalar {
				next = prefix + "/" + k
			}
			collectNsPerOp(child, next, into)
		}
	}
}

// compare renders the informational table and returns the list of
// >max-ratio regressions.
func compare(measured, baseline map[string]float64, maxRatio float64) (string, []string) {
	names := make([]string, 0, len(measured))
	for name := range measured {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	var failures []string
	matched := 0
	fmt.Fprintf(&b, "| benchmark | measured ns/op | baseline ns/op | ratio | status |\n")
	fmt.Fprintf(&b, "|---|---:|---:|---:|---|\n")
	for _, name := range names {
		got := measured[name]
		base, ok := baseline[name]
		if !ok {
			fmt.Fprintf(&b, "| %s | %.0f | — | — | no baseline |\n", name, got)
			continue
		}
		matched++
		ratio := got / base
		status := "ok"
		if ratio > maxRatio {
			status = fmt.Sprintf("REGRESSION >%.1fx", maxRatio)
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (%.2fx)", name, got, base, ratio))
		}
		fmt.Fprintf(&b, "| %s | %.0f | %.0f | %.2fx | %s |\n", name, got, base, ratio, status)
	}
	var unmeasured []string
	for name := range baseline {
		if _, ok := measured[name]; !ok {
			unmeasured = append(unmeasured, name)
		}
	}
	sort.Strings(unmeasured)
	if len(unmeasured) > 0 {
		fmt.Fprintf(&b, "\n%d baseline entr(ies) not measured in this run (informational): %s\n",
			len(unmeasured), strings.Join(unmeasured, ", "))
	}
	if matched == 0 {
		// A gate that silently matches nothing gates nothing: make the
		// mismatch loud so a renamed benchmark cannot disable the job.
		failures = append(failures, "no measured benchmark matched any baseline entry")
	}
	return b.String(), failures
}

// writeFresh persists the run's numbers (with ratios where a baseline
// exists) for the CI artifact.
func writeFresh(path string, measured, baseline map[string]float64) error {
	type entry struct {
		NsPerOp  float64  `json:"ns_per_op"`
		Baseline *float64 `json:"baseline_ns_per_op,omitempty"`
		Ratio    *float64 `json:"ratio,omitempty"`
	}
	out := map[string]entry{}
	for name, got := range measured {
		e := entry{NsPerOp: got}
		if base, ok := baseline[name]; ok && base > 0 {
			r := got / base
			e.Baseline, e.Ratio = &base, &r
		}
		out[name] = e
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
