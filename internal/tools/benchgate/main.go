// Command benchgate compares fresh `go test -bench` output against
// the committed benchmark baselines (BENCH_*.json) and fails — exit
// code 1 — only on order-of-magnitude regressions: ns/op more than
// -max-ratio times the baseline, or (when the run used -benchmem and
// the baseline records allocs_per_op) allocations per op more than
// -max-alloc-ratio times the baseline plus a small absolute slack.
// Everything else is informational: a markdown table of measured vs
// baseline numbers goes to stdout, and -out writes the fresh numbers
// as JSON for the CI artifact.
//
// CI runners and the machines that recorded the baselines differ, so
// the time gate is deliberately generous: its job is to catch "the
// benchmark got 2x+ slower", not to police single-digit percentages.
// Allocation counts are far more stable across machines, but an
// absolute slack of a couple of allocs keeps zero-alloc baselines
// from turning one stray allocation into a hard failure.
//
//	go test -run XXX -bench 'ShapeInterning$' -benchtime 3x -benchmem . | tee bench.txt
//	go run ./internal/tools/benchgate -baseline BENCH_2.json -baseline BENCH_4.json \
//	    -max-ratio 2 -max-alloc-ratio 2 -out bench-fresh.json bench.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var baselines multiFlag
	flag.Var(&baselines, "baseline", "baseline JSON file (repeatable); ns_per_op/allocs_per_op entries are extracted from any nesting")
	maxRatio := flag.Float64("max-ratio", 2, "fail when measured ns/op exceeds baseline by more than this factor")
	maxAllocRatio := flag.Float64("max-alloc-ratio", 2,
		fmt.Sprintf("fail when measured allocs/op exceeds baseline by more than this factor plus %d allocs of slack", allocSlack))
	out := flag.String("out", "", "write the fresh measurements (and ratios) as JSON to this file")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no bench output files given")
		os.Exit(2)
	}
	measured := newMetrics()
	for _, path := range flag.Args() {
		if err := parseBenchOutput(path, measured); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
	}
	baseline := newMetrics()
	for _, path := range baselines {
		if err := parseBaseline(path, baseline); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
	}

	report, failures := compare(measured, baseline, *maxRatio, *maxAllocRatio)
	fmt.Print(report)

	if *out != "" {
		if err := writeFresh(*out, measured, baseline); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d benchmark(s) regressed past the gate (ns >%.1fx, allocs >%.1fx+%d):\n",
			len(failures), *maxRatio, *maxAllocRatio, allocSlack)
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		os.Exit(1)
	}
}

// metrics holds one side of the comparison: benchmark name → ns/op,
// and (where measured/recorded) benchmark name → allocs/op.
type metrics struct {
	ns     map[string]float64
	allocs map[string]float64
}

func newMetrics() *metrics {
	return &metrics{ns: map[string]float64{}, allocs: map[string]float64{}}
}

// allocSlack is the absolute allocation headroom added on top of the
// ratio gate: a benchmark with a zero-alloc baseline would otherwise
// fail on its first incidental allocation, which is exactly the kind
// of noise this gate must not page on.
const allocSlack = 2

// benchLine matches `go test -bench` result lines, e.g.
//
//	BenchmarkShapeInterning/PG-HIVE-ELSH/elements=10000/interned-4   5   8284152 ns/op   12 extra/metric
//
// The trailing -N is the GOMAXPROCS suffix the test runner appends.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// allocsField matches the -benchmem allocation column. It is anchored
// on the unit, not the column position, because custom metrics
// (b.ReportMetric) print between ns/op and B/op.
var allocsField = regexp.MustCompile(`\s([0-9]+) allocs/op\s*$`)

// parseBenchOutput extracts name → ns/op (and, for -benchmem runs,
// name → allocs/op) from a `go test -bench` transcript. A benchmark
// appearing several times keeps its last value.
func parseBenchOutput(path string, into *metrics) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		into.ns[name] = ns
		if a := allocsField.FindStringSubmatch(line); a != nil {
			if allocs, err := strconv.ParseFloat(a[1], 64); err == nil {
				into.allocs[name] = allocs
			}
		}
	}
	return sc.Err()
}

// parseBaseline extracts benchmark-name → ns/op and → allocs/op pairs
// from a BENCH_*.json file. The files are hand-maintained narratives,
// so extraction is structural rather than schema-bound: inside the
// "benchmarks" object, each key names a benchmark function, and every
// "ns_per_op" / "allocs_per_op" found in its subtree contributes
// entries — either a map of sub-benchmark names to numbers, or a
// single number whose sub-benchmark name is the enclosing object's
// key (e.g. results.stats.ns_per_op → "stats").
func parseBaseline(path string, into *metrics) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	benches, ok := doc["benchmarks"].(map[string]any)
	if !ok {
		return fmt.Errorf("%s: no \"benchmarks\" object", path)
	}
	for fn, sub := range benches {
		fn = strings.TrimPrefix(fn, "Benchmark")
		collectMetrics(sub, fn, into)
	}
	return nil
}

// collectMetrics walks a baseline subtree, keying discovered
// ns_per_op / allocs_per_op values under prefix (the benchmark
// function, extended by the map key that encloses a scalar metric).
func collectMetrics(v any, prefix string, into *metrics) {
	obj, ok := v.(map[string]any)
	if !ok {
		return
	}
	for k, val := range obj {
		switch k {
		case "ns_per_op":
			addMetric(val, prefix, into.ns)
			continue
		case "allocs_per_op":
			addMetric(val, prefix, into.allocs)
			continue
		}
		next := prefix
		// Descend with the key appended only where the key names a
		// sub-benchmark level (objects that directly hold a scalar
		// metric); structural keys like "results" stay transparent.
		if child, ok := val.(map[string]any); ok {
			if hasScalarMetric(child) {
				next = prefix + "/" + k
			}
			collectMetrics(child, next, into)
		}
	}
}

func hasScalarMetric(m map[string]any) bool {
	_, ns := m["ns_per_op"].(float64)
	_, allocs := m["allocs_per_op"].(float64)
	return ns || allocs
}

func addMetric(val any, prefix string, into map[string]float64) {
	switch t := val.(type) {
	case float64:
		into[prefix] = t
	case map[string]any:
		for name, n := range t {
			if v, ok := n.(float64); ok {
				into[prefix+"/"+name] = v
			}
		}
	}
}

// compare renders the informational table and returns the list of
// regressions past either gate.
func compare(measured, baseline *metrics, maxRatio, maxAllocRatio float64) (string, []string) {
	names := make([]string, 0, len(measured.ns))
	for name := range measured.ns {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	var failures []string
	matched := 0
	fmt.Fprintf(&b, "| benchmark | measured ns/op | baseline ns/op | ratio | measured allocs/op | baseline allocs/op | status |\n")
	fmt.Fprintf(&b, "|---|---:|---:|---:|---:|---:|---|\n")
	for _, name := range names {
		got := measured.ns[name]
		gotAllocs, haveAllocs := measured.allocs[name]
		allocCell := "—"
		if haveAllocs {
			allocCell = fmt.Sprintf("%.0f", gotAllocs)
		}
		base, ok := baseline.ns[name]
		baseAllocs, okAllocs := baseline.allocs[name]
		baseAllocCell := "—"
		if okAllocs {
			baseAllocCell = fmt.Sprintf("%.0f", baseAllocs)
		}
		if !ok && !okAllocs {
			fmt.Fprintf(&b, "| %s | %.0f | — | — | %s | — | no baseline |\n", name, got, allocCell)
			continue
		}
		matched++
		status := "ok"
		ratioCell := "—"
		if ok {
			ratio := got / base
			ratioCell = fmt.Sprintf("%.2fx", ratio)
			if ratio > maxRatio {
				status = fmt.Sprintf("REGRESSION >%.1fx", maxRatio)
				failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (%.2fx)", name, got, base, ratio))
			}
		}
		// The allocation gate is ratio plus absolute slack: allocs/op
		// is near-deterministic, but a zero-alloc baseline must not
		// turn one incidental allocation into a failure.
		if okAllocs && haveAllocs && gotAllocs > baseAllocs*maxAllocRatio+allocSlack {
			status = fmt.Sprintf("ALLOC REGRESSION >%.1fx", maxAllocRatio)
			failures = append(failures, fmt.Sprintf("%s: %.0f allocs/op vs baseline %.0f", name, gotAllocs, baseAllocs))
		}
		if ok {
			fmt.Fprintf(&b, "| %s | %.0f | %.0f | %s | %s | %s | %s |\n",
				name, got, base, ratioCell, allocCell, baseAllocCell, status)
		} else {
			fmt.Fprintf(&b, "| %s | %.0f | — | %s | %s | %s | %s |\n",
				name, got, ratioCell, allocCell, baseAllocCell, status)
		}
	}
	var unmeasured []string
	for name := range baseline.ns {
		if _, ok := measured.ns[name]; !ok {
			unmeasured = append(unmeasured, name)
		}
	}
	sort.Strings(unmeasured)
	if len(unmeasured) > 0 {
		fmt.Fprintf(&b, "\n%d baseline entr(ies) not measured in this run (informational): %s\n",
			len(unmeasured), strings.Join(unmeasured, ", "))
	}
	if matched == 0 {
		// A gate that silently matches nothing gates nothing: make the
		// mismatch loud so a renamed benchmark cannot disable the job.
		failures = append(failures, "no measured benchmark matched any baseline entry")
	}
	return b.String(), failures
}

// writeFresh persists the run's numbers (with ratios where a baseline
// exists) for the CI artifact.
func writeFresh(path string, measured, baseline *metrics) error {
	type entry struct {
		NsPerOp        float64  `json:"ns_per_op"`
		Baseline       *float64 `json:"baseline_ns_per_op,omitempty"`
		Ratio          *float64 `json:"ratio,omitempty"`
		AllocsPerOp    *float64 `json:"allocs_per_op,omitempty"`
		BaselineAllocs *float64 `json:"baseline_allocs_per_op,omitempty"`
	}
	out := map[string]entry{}
	for name, got := range measured.ns {
		e := entry{NsPerOp: got}
		if base, ok := baseline.ns[name]; ok && base > 0 {
			r := got / base
			e.Baseline, e.Ratio = &base, &r
		}
		if allocs, ok := measured.allocs[name]; ok {
			a := allocs
			e.AllocsPerOp = &a
			if base, ok := baseline.allocs[name]; ok {
				ba := base
				e.BaselineAllocs = &ba
			}
		}
		out[name] = e
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
