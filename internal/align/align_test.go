package align

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/pghive/pghive/internal/core"
	"github.com/pghive/pghive/internal/pg"
	"github.com/pghive/pghive/internal/word2vec"
)

// integrationGraph builds the paper's §1 integration scenario: two
// data sources contribute the same conceptual entity under different
// labels (Organization vs Company), with identical structure and
// identical edge contexts, alongside a genuinely different type
// (Person) that shares the edge context but not the structure.
func integrationGraph(seed int64) *pg.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := pg.NewGraph()
	var orgs, companies, people, places []pg.ID
	for i := 0; i < 80; i++ {
		props := map[string]pg.Value{
			"name": pg.Str(fmt.Sprintf("o%d", i)), "url": pg.Str("u"),
			"founded": pg.Int(int64(1990 + i%30)),
		}
		if i%2 == 0 {
			orgs = append(orgs, g.AddNode([]string{"Organization"}, props))
		} else {
			companies = append(companies, g.AddNode([]string{"Company"}, props))
		}
	}
	for i := 0; i < 120; i++ {
		people = append(people, g.AddNode([]string{"Person"}, map[string]pg.Value{
			"name": pg.Str("p"), "bday": pg.ParseLexical("1990-01-01")}))
	}
	for i := 0; i < 20; i++ {
		places = append(places, g.AddNode([]string{"Place"}, map[string]pg.Value{"name": pg.Str("pl")}))
	}
	pick := func(ids []pg.ID) pg.ID { return ids[rng.Intn(len(ids))] }
	for _, p := range people {
		// People work at orgs AND companies: identical edge contexts.
		if rng.Intn(2) == 0 {
			_, _ = g.AddEdge([]string{"WORKS_AT"}, p, pick(orgs), nil)
		} else {
			_, _ = g.AddEdge([]string{"WORKS_AT"}, p, pick(companies), nil)
		}
	}
	for _, o := range orgs {
		_, _ = g.AddEdge([]string{"LOCATED_IN"}, o, pick(places), nil)
	}
	for _, c := range companies {
		_, _ = g.AddEdge([]string{"LOCATED_IN"}, c, pick(places), nil)
	}
	return g
}

func TestAlignMergesSynonymLabels(t *testing.T) {
	g := integrationGraph(1)
	res := core.Discover(g, core.Options{Seed: 1})
	if res.Schema.NodeTypeByToken("Organization") == nil || res.Schema.NodeTypeByToken("Company") == nil {
		t.Fatal("discovery should initially keep Organization and Company apart")
	}
	before := len(res.Schema.NodeTypes)

	merges := NodeTypes(res.Schema, g, Options{W2V: word2vec.Config{Seed: 2, Epochs: 30}})
	if len(merges) == 0 {
		t.Fatal("alignment found no synonym pair")
	}
	found := false
	for _, m := range merges {
		pair := m.Kept + "/" + m.Absorbed
		if pair == "Organization/Company" || pair == "Company/Organization" {
			found = true
			if m.LabelSimilarity <= 0.6 || m.StructureSimilarity < 0.99 {
				t.Errorf("merge evidence weak: %v", m)
			}
		}
	}
	if !found {
		t.Fatalf("Organization/Company not aligned; merges: %v", merges)
	}
	if len(res.Schema.NodeTypes) >= before {
		t.Error("schema must shrink after alignment")
	}
	// The unified type carries both labels and all instances.
	uni := res.Schema.NodeTypeByToken("Organization")
	if uni == nil {
		uni = res.Schema.NodeTypeByToken("Company")
	}
	if uni == nil {
		t.Fatal("unified type lost from token index")
	}
	if !uni.HasLabel("Organization") || !uni.HasLabel("Company") {
		t.Errorf("unified labels = %v", uni.SortedLabels())
	}
	if uni.Instances != 80 {
		t.Errorf("unified instances = %d, want 80", uni.Instances)
	}
	// Both tokens must now resolve to the unified type, so later
	// incremental batches merge correctly.
	if res.Schema.NodeTypeByToken("Company") != res.Schema.NodeTypeByToken("Organization") {
		t.Error("token index must alias both labels to the unified type")
	}
}

func TestAlignKeepsDistinctTypesApart(t *testing.T) {
	g := integrationGraph(3)
	res := core.Discover(g, core.Options{Seed: 3})
	NodeTypes(res.Schema, g, Options{W2V: word2vec.Config{Seed: 4, Epochs: 30}})
	// Person (different structure) and Place (different context) must
	// survive as their own types.
	if res.Schema.NodeTypeByToken("Person") == nil {
		t.Error("Person must not be absorbed")
	}
	if res.Schema.NodeTypeByToken("Place") == nil {
		t.Error("Place must not be absorbed")
	}
	person := res.Schema.NodeTypeByToken("Person")
	if person.HasLabel("Organization") || person.HasLabel("Company") {
		t.Error("Person wrongly unified with organizations")
	}
}

func TestAlignSkipsCooccurringLabels(t *testing.T) {
	// Person and Student co-occur on instances: roles, not synonyms.
	g := pg.NewGraph()
	for i := 0; i < 30; i++ {
		g.AddNode([]string{"Person"}, map[string]pg.Value{"name": pg.Str("a"), "bday": pg.Str("b")})
	}
	for i := 0; i < 30; i++ {
		g.AddNode([]string{"Person", "Student"}, map[string]pg.Value{"name": pg.Str("a"), "bday": pg.Str("b")})
	}
	res := core.Discover(g, core.Options{Seed: 5})
	merges := NodeTypes(res.Schema, g, Options{W2V: word2vec.Config{Seed: 5, Epochs: 20}})
	for _, m := range merges {
		if (m.Kept == "Person" && m.Absorbed == "Person&Student") ||
			(m.Kept == "Person&Student" && m.Absorbed == "Person") {
			t.Fatalf("co-occurring label sets must not be aligned: %v", m)
		}
	}
}

func TestMergeString(t *testing.T) {
	m := Merge{Kept: "A", Absorbed: "B", LabelSimilarity: 0.91, StructureSimilarity: 1}
	if got := m.String(); got != "A <= B (labels 0.91, structure 1.00)" {
		t.Errorf("String() = %q", got)
	}
}
