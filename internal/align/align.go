// Package align implements semantic label alignment across discovered
// types — the integration scenario the paper lists as future work
// (§6c: "support integration scenarios when label semantics are not
// consistent (e.g., labels in different languages)", and §1's
// "Organization vs Company" example).
//
// The paper proposes aligning labels with large language models; this
// implementation uses the machinery already in the repository: the
// Word2Vec model trained on the label corpus embeds labels by the
// structural contexts they appear in, so two labels naming the same
// conceptual entity (used with the same properties and the same edge
// neighbourhoods) land nearby. Alignment merges labeled types whose
// label embeddings are close *and* whose property structure overlaps;
// requiring both keeps semantically distinct but structurally similar
// types apart.
package align

import (
	"fmt"
	"math"
	"sort"

	"github.com/pghive/pghive/internal/pg"
	"github.com/pghive/pghive/internal/schema"
	"github.com/pghive/pghive/internal/vectorize"
	"github.com/pghive/pghive/internal/word2vec"
)

// Options tunes alignment.
type Options struct {
	// MinLabelSimilarity is the cosine-similarity floor between the
	// types' label-token embeddings (default 0.60).
	MinLabelSimilarity float64
	// MinStructureSimilarity is the property-key Jaccard floor
	// (default 0.60).
	MinStructureSimilarity float64
	// W2V overrides the embedding training configuration.
	W2V word2vec.Config
}

func (o Options) withDefaults() Options {
	if o.MinLabelSimilarity <= 0 {
		o.MinLabelSimilarity = 0.60
	}
	if o.MinStructureSimilarity <= 0 {
		o.MinStructureSimilarity = 0.60
	}
	return o
}

// Merge records one alignment decision.
type Merge struct {
	// Kept is the surviving type's name, Absorbed the merged-away
	// one's.
	Kept, Absorbed string
	// LabelSimilarity and StructureSimilarity are the evidence values.
	LabelSimilarity     float64
	StructureSimilarity float64
}

// String renders the merge decision.
func (m Merge) String() string {
	return fmt.Sprintf("%s <= %s (labels %.2f, structure %.2f)",
		m.Kept, m.Absorbed, m.LabelSimilarity, m.StructureSimilarity)
}

// NodeTypes aligns the labeled node types of a schema against the
// label semantics observable in g (the graph the schema was discovered
// from, or any corpus exhibiting the same label usage). Types are
// compared pairwise; qualifying pairs merge smaller-into-larger.
// The merge log is returned in application order.
func NodeTypes(s *schema.Schema, g *pg.Graph, opts Options) []Merge {
	opts = opts.withDefaults()
	model := vectorize.TrainEmbedder(g, opts.W2V)

	var merges []Merge
	for {
		dst, src, lsim, ssim := bestPair(s, model, opts)
		if dst == nil {
			break
		}
		merges = append(merges, Merge{
			Kept: dst.Name(), Absorbed: src.Name(),
			LabelSimilarity: lsim, StructureSimilarity: ssim,
		})
		s.UnifyNodeTypes(dst, src)
	}
	return merges
}

// bestPair finds the highest-evidence qualifying pair of distinct
// labeled node types, returning larger type first.
func bestPair(s *schema.Schema, model *word2vec.Model, opts Options) (dst, src *schema.NodeType, lsim, ssim float64) {
	// Deterministic order: by token.
	types := make([]*schema.NodeType, 0, len(s.NodeTypes))
	for _, nt := range s.NodeTypes {
		if !nt.Abstract && nt.Token != "" {
			types = append(types, nt)
		}
	}
	sort.Slice(types, func(i, j int) bool { return types[i].Token < types[j].Token })

	bestScore := math.Inf(-1)
	for i := 0; i < len(types); i++ {
		for j := i + 1; j < len(types); j++ {
			a, b := types[i], types[j]
			if sharesLabel(a, b) {
				// Labels that co-occur with each other on instances
				// (Person & Student) are roles, not synonyms; exact
				// same-token types were already merged by Alg. 2.
				continue
			}
			ls := model.Similarity(a.Token, b.Token)
			if ls < opts.MinLabelSimilarity {
				continue
			}
			ss := schema.Jaccard(propSet(a), propSet(b))
			if ss < opts.MinStructureSimilarity {
				continue
			}
			if score := ls + ss; score > bestScore {
				bestScore = score
				lsim, ssim = ls, ss
				if a.Instances >= b.Instances {
					dst, src = a, b
				} else {
					dst, src = b, a
				}
			}
		}
	}
	return dst, src, lsim, ssim
}

func sharesLabel(a, b *schema.NodeType) bool {
	for l, c := range a.Labels {
		if c > 0 && b.HasLabel(l) {
			return true
		}
	}
	return false
}

func propSet(t *schema.NodeType) map[string]bool {
	out := make(map[string]bool, len(t.Props))
	for k := range t.Props {
		out[k] = true
	}
	return out
}
