package vfs

// atomic.go: crash-safe whole-file writes over any FS. The content is
// staged in a same-directory temporary file, fsynced, renamed into
// place, and the directory is fsynced; rename within a directory is
// atomic on POSIX filesystems, so readers see either the old file or
// the complete new one, never a prefix.

import (
	"bufio"
	"fmt"
	"io"
	"path/filepath"
)

// TmpSuffix marks staging files left behind by interrupted atomic
// writes; recovery code removes anything matching "*"+TmpSuffix.
const TmpSuffix = ".tmp"

// WriteFileAtomic writes the content produced by write to path so
// that a crash at any instant leaves either the previous file or the
// complete new one. On any error the target path is untouched and the
// staging file is removed (a crash may still leave it; sweep
// "*"+TmpSuffix on recovery).
func WriteFileAtomic(fsys FS, path string, write func(io.Writer) error) error {
	fsys = OrOS(fsys)
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, filepath.Base(path)+"-*"+TmpSuffix)
	if err != nil {
		return fmt.Errorf("vfs: atomic write: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			fsys.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriter(tmp)
	if err := write(bw); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("vfs: atomic write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("vfs: atomic write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("vfs: atomic write: %w", err)
	}
	name := tmp.Name()
	tmp = nil // the deferred cleanup no longer owns it
	if err := fsys.Rename(name, path); err != nil {
		fsys.Remove(name)
		return fmt.Errorf("vfs: atomic write: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("vfs: atomic write: %w", err)
	}
	return nil
}
