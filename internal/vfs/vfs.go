// Package vfs abstracts the filesystem underneath the durability
// stack (WAL segments, checkpoint images, atomic whole-file writes)
// so the same code can run against the real OS in production and
// against a hostile, fault-injected filesystem in tests.
//
// Three implementations ship with the package:
//
//   - OS: a passthrough to the os package — the production path.
//   - MemFS: an in-memory filesystem that models crash durability
//     precisely: file bytes survive a simulated crash only up to the
//     last successful Sync, and namespace changes (create, rename,
//     remove) survive only once the containing directory has been
//     SyncDir'd — the POSIX rules real disks hold callers to.
//   - InjectFS: a wrapper over any FS that fails chosen operations —
//     the Nth write, a short write, an fsync that persists the data
//     and then reports failure, a rename that dies after taking
//     effect — so durability code can be proven correct against
//     every disk fault a test can name.
//
// The interface is deliberately small: exactly the operations the
// WAL, the checkpoint writer, and the compactor need, nothing more.
package vfs

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// File is an open file handle. It is the subset of *os.File the
// durability stack uses; Sync is the durability point — bytes written
// but not synced are the bytes a crash may destroy.
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.Seeker
	io.Closer
	// Name returns the path the file was opened with.
	Name() string
	// Sync flushes written bytes to stable storage.
	Sync() error
	// Truncate changes the file's size. Like any write, the change is
	// only crash-durable after a successful Sync.
	Truncate(size int64) error
}

// FS is a filesystem. Implementations must be safe for concurrent
// use. List-style access is provided by Glob (the only enumeration
// the durability stack performs).
type FS interface {
	// OpenFile opens name with os.OpenFile semantics (os.O_RDONLY,
	// os.O_WRONLY, os.O_CREATE, os.O_EXCL, os.O_TRUNC are honored).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// CreateTemp creates a new temporary file in dir with os.CreateTemp
	// naming semantics (the final "*" in pattern is replaced).
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically renames oldpath to newpath (same directory in
	// all durability-stack uses). Crash durability of the new name
	// requires a subsequent SyncDir.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// Truncate changes the size of the named file.
	Truncate(name string, size int64) error
	// Stat describes a file.
	Stat(name string) (fs.FileInfo, error)
	// MkdirAll creates a directory and its parents.
	MkdirAll(path string, perm fs.FileMode) error
	// Glob lists paths matching pattern (filepath.Glob semantics over
	// files; the durability stack only globs file names).
	Glob(pattern string) ([]string, error)
	// SyncDir makes the directory's entries (creates, renames,
	// removals) crash-durable.
	SyncDir(dir string) error
}

// Open opens name read-only.
func Open(fsys FS, name string) (File, error) {
	return fsys.OpenFile(name, os.O_RDONLY, 0)
}

// OrOS returns fsys, or the real OS filesystem when fsys is nil — the
// defaulting rule every Options struct with an FS field uses.
func OrOS(fsys FS) FS {
	if fsys == nil {
		return OS
	}
	return fsys
}

// OS is the real operating-system filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error {
	return os.Truncate(name, size)
}
func (osFS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) Glob(pattern string) ([]string, error) {
	return filepath.Glob(pattern)
}

// SyncDir fsyncs the directory so renames and creates within it are
// durable. A failed directory fsync is tolerated here — some
// platforms and filesystems reject fsync on directories — but a
// failure to even open the directory is reported. Simulated
// filesystems (MemFS, InjectFS) report SyncDir failures for real,
// which is what lets tests prove the callers handle them.
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	d.Sync()
	return nil
}
