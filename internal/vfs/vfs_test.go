package vfs

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

// exercise runs a common conformance workload against any FS rooted
// at dir, checking os-compatible behavior.
func exercise(t *testing.T, fsys FS, dir string) {
	t.Helper()
	if err := fsys.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	path := filepath.Join(dir, "sub", "a.txt")
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := f.Write([]byte("hello world")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	// O_EXCL on an existing file must fail.
	if _, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600); !errors.Is(err, fs.ErrExist) {
		t.Fatalf("O_EXCL on existing: err = %v, want ErrExist", err)
	}
	// ReadAt sees the written bytes.
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 6); err != nil {
		t.Fatalf("readat: %v", err)
	}
	if string(buf) != "world" {
		t.Fatalf("readat = %q, want %q", buf, "world")
	}
	// Truncate then stat.
	if err := f.Truncate(5); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if info, err := fsys.Stat(path); err != nil || info.Size() != 5 {
		t.Fatalf("stat after truncate: info=%v err=%v", info, err)
	}
	// Seek + read from the start.
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatalf("seek: %v", err)
	}
	got, err := io.ReadAll(f)
	if err != nil {
		t.Fatalf("readall: %v", err)
	}
	if string(got) != "hello" {
		t.Fatalf("content = %q, want %q", got, "hello")
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Rename, glob, remove.
	path2 := filepath.Join(dir, "sub", "b.txt")
	if err := fsys.Rename(path, path2); err != nil {
		t.Fatalf("rename: %v", err)
	}
	if err := fsys.SyncDir(filepath.Join(dir, "sub")); err != nil {
		t.Fatalf("syncdir: %v", err)
	}
	matches, err := fsys.Glob(filepath.Join(dir, "sub", "*.txt"))
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	if len(matches) != 1 || matches[0] != path2 {
		t.Fatalf("glob = %v, want [%s]", matches, path2)
	}
	if _, err := fsys.Stat(path); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("stat old name: err = %v, want ErrNotExist", err)
	}
	// CreateTemp produces a distinct writable file.
	tmp, err := fsys.CreateTemp(dir, "stage-*.tmp")
	if err != nil {
		t.Fatalf("createtemp: %v", err)
	}
	if _, err := tmp.Write([]byte("x")); err != nil {
		t.Fatalf("tmp write: %v", err)
	}
	if err := tmp.Close(); err != nil {
		t.Fatalf("tmp close: %v", err)
	}
	if err := fsys.Remove(tmp.Name()); err != nil {
		t.Fatalf("remove tmp: %v", err)
	}
	if err := fsys.Remove(path2); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, err := fsys.Stat(path2); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("stat removed: err = %v, want ErrNotExist", err)
	}
}

func TestOSConformance(t *testing.T) {
	exercise(t, OS, t.TempDir())
}

func TestMemFSConformance(t *testing.T) {
	exercise(t, NewMemFS(), "root")
}

func readFile(t *testing.T, fsys FS, name string) []byte {
	t.Helper()
	f, err := Open(fsys, name)
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	defer f.Close()
	b, err := io.ReadAll(f)
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return b
}

func TestMemFSCrashRevertsUnsyncedBytes(t *testing.T) {
	m := NewMemFS()
	f, err := m.OpenFile("a", os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("durable"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := m.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte(" and lost"))
	m.Crash()
	if got := readFile(t, m, "a"); string(got) != "durable" {
		t.Fatalf("post-crash content = %q, want %q", got, "durable")
	}
}

func TestMemFSCrashUndoesUnsyncedNamespace(t *testing.T) {
	m := NewMemFS()
	// A created-but-never-SyncDir'd file vanishes at crash.
	f, _ := m.OpenFile("gone", os.O_RDWR|os.O_CREATE, 0o600)
	f.Write([]byte("x"))
	f.Sync()
	// A committed file survives; an uncommitted rename of it reverts.
	g, _ := m.OpenFile("old", os.O_RDWR|os.O_CREATE, 0o600)
	g.Write([]byte("y"))
	g.Sync()
	// Commit only "old" by syncing the dir before the other changes.
	if err := m.Remove("gone"); err != nil {
		t.Fatal(err)
	}
	if err := m.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	if err := m.Rename("old", "new"); err != nil {
		t.Fatal(err)
	}
	h, _ := m.OpenFile("gone2", os.O_RDWR|os.O_CREATE, 0o600)
	h.Write([]byte("z"))
	h.Sync()
	m.Crash()
	if names := m.DurableNames(); len(names) != 1 || names[0] != "old" {
		t.Fatalf("durable names = %v, want [old]", names)
	}
	if _, err := m.Stat("new"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("renamed name survived crash: %v", err)
	}
	if got := readFile(t, m, "old"); string(got) != "y" {
		t.Fatalf("old content = %q, want %q", got, "y")
	}
}

func TestMemFSCrashHonorsSyncedRemove(t *testing.T) {
	m := NewMemFS()
	f, _ := m.OpenFile("a", os.O_RDWR|os.O_CREATE, 0o600)
	f.Sync()
	m.SyncDir(".")
	if err := m.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := m.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if _, err := m.Stat("a"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("committed removal undone by crash: %v", err)
	}
}

func TestInjectFailEarlySync(t *testing.T) {
	m := NewMemFS()
	plan := NewPlan(Fault{Op: OpSync, N: 1, Mode: FailEarly})
	ifs := NewInjectFS(m, plan)
	f, err := ifs.OpenFile("a", os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("x"))
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("first sync err = %v, want ErrInjected", err)
	}
	// FailEarly means the data was NOT persisted.
	m.SyncDir(".")
	m.Crash()
	if got := readFile(t, m, "a"); len(got) != 0 {
		t.Fatalf("failed sync persisted data: %q", got)
	}
	// The fault is spent: the next sync succeeds.
	f2, _ := ifs.OpenFile("a", os.O_RDWR|os.O_CREATE, 0o600)
	f2.Write([]byte("y"))
	if err := f2.Sync(); err != nil {
		t.Fatalf("second sync: %v", err)
	}
}

func TestInjectFailLateSyncIsLyingDisk(t *testing.T) {
	m := NewMemFS()
	plan := NewPlan(Fault{Op: OpSync, N: 1, Mode: FailLate})
	ifs := NewInjectFS(m, plan)
	f, _ := ifs.OpenFile("a", os.O_RDWR|os.O_CREATE, 0o600)
	f.Write([]byte("persisted"))
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync err = %v, want ErrInjected", err)
	}
	m.SyncDir(".")
	m.Crash()
	// FailLate: the error lied — the bytes are durable.
	if got := readFile(t, m, "a"); string(got) != "persisted" {
		t.Fatalf("lying sync did not persist: %q", got)
	}
}

func TestInjectShortWrite(t *testing.T) {
	m := NewMemFS()
	plan := NewPlan(Fault{Op: OpWrite, N: 2, Mode: ShortWrite})
	ifs := NewInjectFS(m, plan)
	f, _ := ifs.OpenFile("a", os.O_RDWR|os.O_CREATE, 0o600)
	if n, err := f.Write([]byte("full")); n != 4 || err != nil {
		t.Fatalf("write 1: n=%d err=%v", n, err)
	}
	n, err := f.Write([]byte("abcdefgh"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("write 2 err = %v, want ErrInjected", err)
	}
	if n >= 8 || n == 0 {
		t.Fatalf("short write wrote n=%d of 8", n)
	}
	f.Sync()
	if got := readFile(t, m, "a"); string(got) != "full"+"abcdefgh"[:n] {
		t.Fatalf("content = %q after short write of %d", got, n)
	}
}

func TestInjectAnyOpCountsAll(t *testing.T) {
	m := NewMemFS()
	// Ops: open(1) write(2) sync(3) — fail the third op of any kind.
	plan := NewPlan(Fault{Op: AnyOp, N: 3, Mode: FailEarly})
	ifs := NewInjectFS(m, plan)
	f, err := ifs.OpenFile("a", os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("third op err = %v, want ErrInjected", err)
	}
	if fired := plan.Fired(); len(fired) != 1 {
		t.Fatalf("fired = %v", fired)
	}
	ops := plan.Ops()
	if ops[AnyOp] != 3 || ops[OpOpen] != 1 || ops[OpWrite] != 1 || ops[OpSync] != 1 {
		t.Fatalf("ops = %v", ops)
	}
}

func TestInjectRenameFailLateTakesEffect(t *testing.T) {
	m := NewMemFS()
	plan := NewPlan(Fault{Op: OpRename, N: 1, Mode: FailLate})
	ifs := NewInjectFS(m, plan)
	f, _ := ifs.OpenFile("a", os.O_RDWR|os.O_CREATE, 0o600)
	f.Write([]byte("x"))
	f.Sync()
	f.Close()
	if err := ifs.Rename("a", "b"); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename err = %v, want ErrInjected", err)
	}
	// FailLate: the rename happened despite the error.
	if _, err := m.Stat("b"); err != nil {
		t.Fatalf("late-failed rename did not take effect: %v", err)
	}
}

func TestWriteFileAtomicMemFS(t *testing.T) {
	m := NewMemFS()
	path := "img"
	if err := WriteFileAtomic(m, path, func(w io.Writer) error {
		_, err := w.Write([]byte("v1"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if got := readFile(t, m, path); string(got) != "v1" {
		t.Fatalf("post-crash = %q, want v1", got)
	}
	// A failed rewrite leaves the old content intact, even post-crash.
	plan := NewPlan(Fault{Op: OpSync, N: 1, Mode: FailEarly})
	ifs := NewInjectFS(m, plan)
	err := WriteFileAtomic(ifs, path, func(w io.Writer) error {
		_, werr := w.Write([]byte("v2"))
		return werr
	})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("rewrite err = %v, want ErrInjected", err)
	}
	m.Crash()
	if got := readFile(t, m, path); string(got) != "v1" {
		t.Fatalf("failed rewrite corrupted target: %q", got)
	}
	if tmps, _ := m.Glob("*" + TmpSuffix); len(tmps) != 0 {
		t.Fatalf("staging leftovers: %v", tmps)
	}
}

func TestWriteFileAtomicOS(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "img")
	if err := WriteFileAtomic(OS, path, func(w io.Writer) error {
		_, err := w.Write([]byte("v1"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "v1" {
		t.Fatalf("content=%q err=%v", b, err)
	}
}
