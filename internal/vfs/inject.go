package vfs

// inject.go: a fault-injecting filesystem wrapper. InjectFS counts
// every operation flowing to the inner FS and consults a Plan; when a
// fault matches, the operation fails in the planned way. Each fault
// fires exactly once and is then spent, so "fsync fails once, then
// succeeds" is the natural behavior of a single OpSync fault. Combine
// with MemFS.Crash to model the full hostile-disk repertoire: short
// writes, lying fsyncs (data persisted, error reported), renames
// undone by power loss.

import (
	"errors"
	"io/fs"
	"sync"
)

// ErrInjected is the default error returned by injected faults.
var ErrInjected = errors.New("vfs: injected fault")

// Op identifies a class of filesystem operation for fault matching.
type Op int

const (
	// AnyOp matches every operation; Fault.N counts all operations.
	AnyOp Op = iota
	// OpOpen matches OpenFile and CreateTemp calls.
	OpOpen
	// OpWrite matches File.Write calls.
	OpWrite
	// OpSync matches File.Sync calls.
	OpSync
	// OpSyncDir matches FS.SyncDir calls.
	OpSyncDir
	// OpRename matches FS.Rename calls.
	OpRename
	// OpRemove matches FS.Remove calls.
	OpRemove
	// OpTruncate matches File.Truncate and FS.Truncate calls.
	OpTruncate
	opCount
)

var opNames = [...]string{"any", "open", "write", "sync", "syncdir", "rename", "remove", "truncate"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "unknown"
}

// Mode selects how a matched fault manifests.
type Mode int

const (
	// FailEarly returns the error without performing the operation.
	FailEarly Mode = iota
	// FailLate performs the operation, then returns the error anyway —
	// the lying disk: an fsync that persisted the data but reported
	// failure, a rename that took effect before the power died.
	FailLate
	// ShortWrite applies to OpWrite: writes roughly half the buffer,
	// reports the short count with an error.
	ShortWrite
)

// Fault is one planned failure: the Nth operation of kind Op (1-based,
// counted per kind; for AnyOp, counted across all operations) fails
// with Mode and Err. A fault fires once and is spent.
type Fault struct {
	Op   Op
	N    int
	Mode Mode
	// Err is the error to return; nil means ErrInjected.
	Err error
}

func (f Fault) error() error {
	if f.Err != nil {
		return f.Err
	}
	return ErrInjected
}

// Plan holds pending faults and operation counters. A single Plan is
// consulted by one InjectFS; it is safe for concurrent use.
type Plan struct {
	mu     sync.Mutex
	faults []Fault
	count  [opCount]int
	fired  []Fault
}

// NewPlan returns a Plan that will trigger the given faults.
func NewPlan(faults ...Fault) *Plan {
	return &Plan{faults: faults}
}

// Ops returns how many operations of each kind have executed so far.
// Index by Op; index AnyOp for the total. Useful for probing a
// workload once fault-free and then scheduling faults at every
// observed operation index.
func (p *Plan) Ops() [int(opCount)]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.count
}

// Fired returns the faults that have triggered, in order.
func (p *Plan) Fired() []Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Fault(nil), p.fired...)
}

// next records one operation of kind op and returns the fault to
// apply, if any.
func (p *Plan) next(op Op) (Fault, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.count[AnyOp]++
	p.count[op]++
	for i, f := range p.faults {
		if f.Op != AnyOp && f.Op != op {
			continue
		}
		if p.count[f.Op] != f.N {
			continue
		}
		p.faults = append(p.faults[:i], p.faults[i+1:]...)
		p.fired = append(p.fired, f)
		return f, true
	}
	return Fault{}, false
}

// InjectFS wraps an FS and fails operations per its Plan.
type InjectFS struct {
	inner FS
	plan  *Plan
}

// NewInjectFS wraps inner with the fault plan.
func NewInjectFS(inner FS, plan *Plan) *InjectFS {
	return &InjectFS{inner: inner, plan: plan}
}

func (ifs *InjectFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if f, ok := ifs.plan.next(OpOpen); ok && f.Mode == FailEarly {
		return nil, &fs.PathError{Op: "open", Path: name, Err: f.error()}
	}
	inner, err := ifs.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injectFile{inner: inner, fs: ifs}, nil
}

func (ifs *InjectFS) CreateTemp(dir, pattern string) (File, error) {
	if f, ok := ifs.plan.next(OpOpen); ok && f.Mode == FailEarly {
		return nil, &fs.PathError{Op: "createtemp", Path: dir, Err: f.error()}
	}
	inner, err := ifs.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injectFile{inner: inner, fs: ifs}, nil
}

func (ifs *InjectFS) Rename(oldpath, newpath string) error {
	f, ok := ifs.plan.next(OpRename)
	if ok && f.Mode == FailEarly {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: f.error()}
	}
	err := ifs.inner.Rename(oldpath, newpath)
	if err == nil && ok {
		err = &fs.PathError{Op: "rename", Path: oldpath, Err: f.error()}
	}
	return err
}

func (ifs *InjectFS) Remove(name string) error {
	f, ok := ifs.plan.next(OpRemove)
	if ok && f.Mode == FailEarly {
		return &fs.PathError{Op: "remove", Path: name, Err: f.error()}
	}
	err := ifs.inner.Remove(name)
	if err == nil && ok {
		err = &fs.PathError{Op: "remove", Path: name, Err: f.error()}
	}
	return err
}

func (ifs *InjectFS) Truncate(name string, size int64) error {
	f, ok := ifs.plan.next(OpTruncate)
	if ok && f.Mode == FailEarly {
		return &fs.PathError{Op: "truncate", Path: name, Err: f.error()}
	}
	err := ifs.inner.Truncate(name, size)
	if err == nil && ok {
		err = &fs.PathError{Op: "truncate", Path: name, Err: f.error()}
	}
	return err
}

func (ifs *InjectFS) Stat(name string) (fs.FileInfo, error) { return ifs.inner.Stat(name) }

func (ifs *InjectFS) MkdirAll(path string, perm fs.FileMode) error {
	return ifs.inner.MkdirAll(path, perm)
}

func (ifs *InjectFS) Glob(pattern string) ([]string, error) { return ifs.inner.Glob(pattern) }

func (ifs *InjectFS) SyncDir(dir string) error {
	f, ok := ifs.plan.next(OpSyncDir)
	if ok && f.Mode == FailEarly {
		return &fs.PathError{Op: "syncdir", Path: dir, Err: f.error()}
	}
	err := ifs.inner.SyncDir(dir)
	if err == nil && ok {
		err = &fs.PathError{Op: "syncdir", Path: dir, Err: f.error()}
	}
	return err
}

// injectFile wraps an open file so writes, syncs, and truncates pass
// through the plan.
type injectFile struct {
	inner File
	fs    *InjectFS
}

func (f *injectFile) Name() string                            { return f.inner.Name() }
func (f *injectFile) Read(p []byte) (int, error)              { return f.inner.Read(p) }
func (f *injectFile) ReadAt(p []byte, off int64) (int, error) { return f.inner.ReadAt(p, off) }
func (f *injectFile) Seek(offset int64, whence int) (int64, error) {
	return f.inner.Seek(offset, whence)
}
func (f *injectFile) Close() error { return f.inner.Close() }

func (f *injectFile) Write(p []byte) (int, error) {
	ft, ok := f.fs.plan.next(OpWrite)
	if !ok {
		return f.inner.Write(p)
	}
	switch ft.Mode {
	case FailEarly:
		return 0, &fs.PathError{Op: "write", Path: f.inner.Name(), Err: ft.error()}
	case ShortWrite:
		n, err := f.inner.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, &fs.PathError{Op: "write", Path: f.inner.Name(), Err: ft.error()}
	default: // FailLate: the write lands, the error is reported anyway.
		n, err := f.inner.Write(p)
		if err != nil {
			return n, err
		}
		return n, &fs.PathError{Op: "write", Path: f.inner.Name(), Err: ft.error()}
	}
}

func (f *injectFile) Sync() error {
	ft, ok := f.fs.plan.next(OpSync)
	if ok && ft.Mode == FailEarly {
		return &fs.PathError{Op: "sync", Path: f.inner.Name(), Err: ft.error()}
	}
	err := f.inner.Sync()
	if err == nil && ok {
		err = &fs.PathError{Op: "sync", Path: f.inner.Name(), Err: ft.error()}
	}
	return err
}

func (f *injectFile) Truncate(size int64) error {
	ft, ok := f.fs.plan.next(OpTruncate)
	if ok && ft.Mode == FailEarly {
		return &fs.PathError{Op: "truncate", Path: f.inner.Name(), Err: ft.error()}
	}
	err := f.inner.Truncate(size)
	if err == nil && ok {
		err = &fs.PathError{Op: "truncate", Path: f.inner.Name(), Err: ft.error()}
	}
	return err
}
