package vfs

// mem.go: an in-memory filesystem with an explicit crash-durability
// model. Every file has two byte images: the cache (what reads and
// the process see) and the synced image (what survives a crash).
// Writes and truncations touch only the cache; File.Sync copies the
// cache into the synced image. Likewise the namespace has two views:
// creates, renames, and removals take effect in the cache view
// immediately but survive a crash only after SyncDir commits the
// containing directory — the same contract POSIX gives fsync and
// directory fsync. Crash() discards everything uncommitted, exactly
// what a power loss does, so a test can run any workload, crash it,
// and reopen the surviving state.

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// MemFS is an in-memory FS with simulated crash semantics. The zero
// value is not usable; call NewMemFS.
type MemFS struct {
	mu sync.Mutex
	// dirs is the set of created directories. Directory creation is
	// modeled as immediately durable: recovery code re-creates its
	// directories anyway, and modeling dirent-of-dir durability buys
	// no extra test power.
	dirs map[string]bool
	// live is the cache namespace: path -> file node, as the running
	// process sees it.
	live map[string]*memNode
	// durable is the crash-surviving namespace: the entries committed
	// by the last SyncDir of each directory.
	durable map[string]*memNode
	tmpSeq  int
}

// memNode is one file's content: data is the cache, synced the bytes
// a crash preserves.
type memNode struct {
	data   []byte
	synced []byte
}

// NewMemFS returns an empty in-memory filesystem containing only the
// root directory ".".
func NewMemFS() *MemFS {
	return &MemFS{
		dirs:    map[string]bool{".": true},
		live:    map[string]*memNode{},
		durable: map[string]*memNode{},
	}
}

// Crash simulates a power loss: every file reverts to its last synced
// bytes, and every namespace change not committed by SyncDir is
// undone — unsynced creates vanish, unsynced renames revert to the
// old name, unsynced removals resurrect the file. Open handles become
// stale; reopen what survived.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.live = make(map[string]*memNode, len(m.durable))
	for name, n := range m.durable {
		n.data = append([]byte(nil), n.synced...)
		m.live[name] = n
	}
}

// DurableNames lists the paths that would survive a crash right now,
// sorted — a test convenience.
func (m *MemFS) DurableNames() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.durable))
	for name := range m.durable {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func memPath(name string) string { return filepath.Clean(name) }

func pathError(op, name string, err error) error {
	return &fs.PathError{Op: op, Path: name, Err: err}
}

func (m *MemFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = memPath(name)
	node, exists := m.live[name]
	if flag&os.O_CREATE != 0 {
		if exists && flag&os.O_EXCL != 0 {
			return nil, pathError("open", name, fs.ErrExist)
		}
		if !exists {
			if dir := filepath.Dir(name); !m.dirs[dir] {
				return nil, pathError("open", name, fs.ErrNotExist)
			}
			node = &memNode{}
			m.live[name] = node
		}
	} else if !exists {
		return nil, pathError("open", name, fs.ErrNotExist)
	}
	if flag&os.O_TRUNC != 0 {
		node.data = nil
	}
	return &memFile{fs: m, node: node, name: name}, nil
}

func (m *MemFS) CreateTemp(dir, pattern string) (File, error) {
	m.mu.Lock()
	m.tmpSeq++
	seq := m.tmpSeq
	m.mu.Unlock()
	var name string
	if i := strings.LastIndex(pattern, "*"); i >= 0 {
		name = pattern[:i] + fmt.Sprintf("%09d", seq) + pattern[i+1:]
	} else {
		name = pattern + fmt.Sprintf("%09d", seq)
	}
	return m.OpenFile(filepath.Join(dir, name), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
}

func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldpath, newpath = memPath(oldpath), memPath(newpath)
	node, ok := m.live[oldpath]
	if !ok {
		return pathError("rename", oldpath, fs.ErrNotExist)
	}
	if dir := filepath.Dir(newpath); !m.dirs[dir] {
		return pathError("rename", newpath, fs.ErrNotExist)
	}
	delete(m.live, oldpath)
	m.live[newpath] = node
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = memPath(name)
	if _, ok := m.live[name]; !ok {
		return pathError("remove", name, fs.ErrNotExist)
	}
	delete(m.live, name)
	return nil
}

func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = memPath(name)
	node, ok := m.live[name]
	if !ok {
		return pathError("truncate", name, fs.ErrNotExist)
	}
	return node.truncateLocked(size)
}

func (m *MemFS) Stat(name string) (fs.FileInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = memPath(name)
	if node, ok := m.live[name]; ok {
		return memInfo{name: filepath.Base(name), size: int64(len(node.data))}, nil
	}
	if m.dirs[name] {
		return memInfo{name: filepath.Base(name), dir: true}, nil
	}
	return nil, pathError("stat", name, fs.ErrNotExist)
}

func (m *MemFS) MkdirAll(path string, perm fs.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	path = memPath(path)
	for p := path; ; p = filepath.Dir(p) {
		m.dirs[p] = true
		if p == filepath.Dir(p) {
			break
		}
	}
	return nil
}

func (m *MemFS) Glob(pattern string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for name := range m.live {
		ok, err := filepath.Match(memPath(pattern), name)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// SyncDir commits the directory's namespace: every cache entry
// directly under dir becomes crash-durable, and durable entries the
// cache no longer holds are dropped. Commit is per-directory and
// all-or-nothing — a deliberate simplification (real disks may commit
// dirents individually) that still models the failure the durability
// stack must survive: a rename or create that a crash undoes.
func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir = memPath(dir)
	if !m.dirs[dir] {
		return pathError("syncdir", dir, fs.ErrNotExist)
	}
	for name := range m.durable {
		if filepath.Dir(name) == dir {
			if _, ok := m.live[name]; !ok {
				delete(m.durable, name)
			}
		}
	}
	for name, node := range m.live {
		if filepath.Dir(name) == dir {
			m.durable[name] = node
		}
	}
	return nil
}

// memFile is an open handle: a position over the node's cache bytes.
type memFile struct {
	fs     *MemFS
	node   *memNode
	name   string
	pos    int64
	closed bool
}

func (f *memFile) Name() string { return f.name }

func (f *memFile) Read(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, pathError("read", f.name, fs.ErrClosed)
	}
	if f.pos >= int64(len(f.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.node.data[f.pos:])
	f.pos += int64(n)
	return n, nil
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, pathError("read", f.name, fs.ErrClosed)
	}
	if off >= int64(len(f.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.node.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, pathError("write", f.name, fs.ErrClosed)
	}
	end := f.pos + int64(len(p))
	if end > int64(len(f.node.data)) {
		grown := make([]byte, end)
		copy(grown, f.node.data)
		f.node.data = grown
	}
	copy(f.node.data[f.pos:end], p)
	f.pos = end
	return len(p), nil
}

func (f *memFile) Seek(offset int64, whence int) (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, pathError("seek", f.name, fs.ErrClosed)
	}
	switch whence {
	case io.SeekStart:
		f.pos = offset
	case io.SeekCurrent:
		f.pos += offset
	case io.SeekEnd:
		f.pos = int64(len(f.node.data)) + offset
	default:
		return 0, pathError("seek", f.name, fs.ErrInvalid)
	}
	if f.pos < 0 {
		f.pos = 0
		return 0, pathError("seek", f.name, fs.ErrInvalid)
	}
	return f.pos, nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return pathError("sync", f.name, fs.ErrClosed)
	}
	f.node.synced = append([]byte(nil), f.node.data...)
	return nil
}

func (f *memFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return pathError("truncate", f.name, fs.ErrClosed)
	}
	return f.node.truncateLocked(size)
}

func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return pathError("close", f.name, fs.ErrClosed)
	}
	f.closed = true
	return nil
}

func (n *memNode) truncateLocked(size int64) error {
	if size < 0 {
		return fs.ErrInvalid
	}
	if size <= int64(len(n.data)) {
		n.data = n.data[:size]
		return nil
	}
	grown := make([]byte, size)
	copy(grown, n.data)
	n.data = grown
	return nil
}

// memInfo is the fs.FileInfo of a MemFS entry.
type memInfo struct {
	name string
	size int64
	dir  bool
}

func (i memInfo) Name() string { return i.name }
func (i memInfo) Size() int64  { return i.size }
func (i memInfo) Mode() fs.FileMode {
	if i.dir {
		return fs.ModeDir | 0o755
	}
	return 0o644
}
func (i memInfo) ModTime() time.Time { return time.Time{} }
func (i memInfo) IsDir() bool        { return i.dir }
func (i memInfo) Sys() any           { return nil }
