// Package eval implements the evaluation machinery of §5: the
// majority-based F1* score for discovered clusters, Friedman average
// ranks with the Nemenyi post-hoc test (Fig. 3), and the
// sampling-error binning of Fig. 8.
package eval

import (
	"math"
	"sort"

	"github.com/pghive/pghive/internal/pg"
	"github.com/pghive/pghive/internal/schema"
)

// MajorityF1 computes the majority-based macro F1* of §5: every
// cluster is labeled with the most frequent ground-truth type among
// its members; per ground-truth type, precision and recall are
// computed over the induced prediction (an element is predicted as
// type t iff its cluster's majority is t), and the per-type F1 values
// are macro-averaged.
//
// pred maps element ID to an opaque cluster identifier; truth maps
// element ID to its ground-truth type name. Elements missing from
// either map are ignored.
func MajorityF1(pred map[pg.ID]int, truth map[pg.ID]string) float64 {
	if len(pred) == 0 || len(truth) == 0 {
		return 0
	}
	// Majority type per cluster.
	clusterCounts := map[int]map[string]int{}
	typeTotal := map[string]int{}
	for id, cl := range pred {
		ty, ok := truth[id]
		if !ok {
			continue
		}
		mc := clusterCounts[cl]
		if mc == nil {
			mc = map[string]int{}
			clusterCounts[cl] = mc
		}
		mc[ty]++
		typeTotal[ty]++
	}
	majority := map[int]string{}
	for cl, counts := range clusterCounts {
		best, bestN := "", -1
		// Deterministic tie-break: lexicographically smallest type.
		keys := make([]string, 0, len(counts))
		for ty := range counts {
			keys = append(keys, ty)
		}
		sort.Strings(keys)
		for _, ty := range keys {
			if counts[ty] > bestN {
				best, bestN = ty, counts[ty]
			}
		}
		majority[cl] = best
	}
	// Per-type TP / predicted / actual tallies.
	tp := map[string]int{}
	predicted := map[string]int{}
	for id, cl := range pred {
		ty, ok := truth[id]
		if !ok {
			continue
		}
		m := majority[cl]
		predicted[m]++
		if m == ty {
			tp[ty]++
		}
	}
	// Macro-average F1 over ground-truth types.
	var sum float64
	n := 0
	for ty, actual := range typeTotal {
		p := 0.0
		if predicted[ty] > 0 {
			p = float64(tp[ty]) / float64(predicted[ty])
		}
		r := float64(tp[ty]) / float64(actual)
		f1 := 0.0
		if p+r > 0 {
			f1 = 2 * p * r / (p + r)
		}
		sum += f1
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Accuracy returns the fraction of elements whose ground-truth type
// matches their cluster's majority type (the per-placement correctness
// notion §5 describes).
func Accuracy(pred map[pg.ID]int, truth map[pg.ID]string) float64 {
	if len(pred) == 0 {
		return 0
	}
	clusterCounts := map[int]map[string]int{}
	for id, cl := range pred {
		ty, ok := truth[id]
		if !ok {
			continue
		}
		mc := clusterCounts[cl]
		if mc == nil {
			mc = map[string]int{}
			clusterCounts[cl] = mc
		}
		mc[ty]++
	}
	correct, total := 0, 0
	for _, counts := range clusterCounts {
		bestN, sum := 0, 0
		for _, c := range counts {
			if c > bestN {
				bestN = c
			}
			sum += c
		}
		correct += bestN
		total += sum
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// NodeAssignments converts a node type assignment into opaque cluster
// IDs for MajorityF1.
func NodeAssignments(a map[pg.ID]*schema.NodeType) map[pg.ID]int {
	out := make(map[pg.ID]int, len(a))
	for id, t := range a {
		if t != nil {
			out[id] = t.ID
		}
	}
	return out
}

// EdgeAssignments converts an edge type assignment into opaque cluster
// IDs for MajorityF1.
func EdgeAssignments(a map[pg.ID]*schema.EdgeType) map[pg.ID]int {
	out := make(map[pg.ID]int, len(a))
	for id, t := range a {
		if t != nil {
			out[id] = t.ID
		}
	}
	return out
}

// AverageRanks computes per-method Friedman average ranks over a set
// of cases. scores[c][m] is method m's score on case c; higher scores
// are better (rank 1 = best). Ties receive the average of the tied
// rank positions, the standard Friedman treatment.
func AverageRanks(scores [][]float64) []float64 {
	if len(scores) == 0 {
		return nil
	}
	k := len(scores[0])
	sums := make([]float64, k)
	for _, row := range scores {
		idx := make([]int, k)
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return row[idx[a]] > row[idx[b]] })
		// Assign ranks with tie averaging.
		pos := 0
		for pos < k {
			end := pos
			for end+1 < k && row[idx[end+1]] == row[idx[pos]] {
				end++
			}
			avg := float64(pos+end)/2 + 1
			for i := pos; i <= end; i++ {
				sums[idx[i]] += avg
			}
			pos = end + 1
		}
	}
	for i := range sums {
		sums[i] /= float64(len(scores))
	}
	return sums
}

// nemenyiQ05 holds the α = 0.05 critical values of the studentized
// range statistic divided by √2, indexed by the number of compared
// methods k (Demšar 2006, Table 5).
var nemenyiQ05 = map[int]float64{
	2: 1.960, 3: 2.343, 4: 2.569, 5: 2.728, 6: 2.850,
	7: 2.949, 8: 3.031, 9: 3.102, 10: 3.164,
}

// NemenyiCD returns the critical difference of average ranks at
// α = 0.05 for k methods compared over n cases: two methods differ
// significantly when their average ranks differ by more than CD.
func NemenyiCD(k, n int) float64 {
	q, ok := nemenyiQ05[k]
	if !ok || n == 0 {
		return math.NaN()
	}
	return q * math.Sqrt(float64(k*(k+1))/(6*float64(n)))
}

// ErrorBin classifies a sampling error into the four Fig. 8 bins.
type ErrorBin uint8

const (
	// Bin005 is the 0–0.05 bin.
	Bin005 ErrorBin = iota
	// Bin010 is the 0.05–0.10 bin.
	Bin010
	// Bin020 is the 0.10–0.20 bin.
	Bin020
	// BinBig is the ≥ 0.20 bin.
	BinBig
)

// String renders the bin's Fig. 8 caption.
func (b ErrorBin) String() string {
	switch b {
	case Bin005:
		return "0-0.05"
	case Bin010:
		return "0.05-0.10"
	case Bin020:
		return "0.10-0.20"
	default:
		return ">=0.20"
	}
}

// BinOf classifies one error value.
func BinOf(err float64) ErrorBin {
	switch {
	case err < 0.05:
		return Bin005
	case err < 0.10:
		return Bin010
	case err < 0.20:
		return Bin020
	default:
		return BinBig
	}
}

// BinDistribution computes the normalized share of properties per bin.
func BinDistribution(errs []float64) [4]float64 {
	var out [4]float64
	if len(errs) == 0 {
		return out
	}
	for _, e := range errs {
		out[BinOf(e)]++
	}
	for i := range out {
		out[i] /= float64(len(errs))
	}
	return out
}
