package eval

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/pghive/pghive/internal/pg"
)

func TestMajorityF1Perfect(t *testing.T) {
	pred := map[pg.ID]int{}
	truth := map[pg.ID]string{}
	for i := 0; i < 100; i++ {
		pred[pg.ID(i)] = i % 4
		truth[pg.ID(i)] = []string{"A", "B", "C", "D"}[i%4]
	}
	if f1 := MajorityF1(pred, truth); f1 != 1 {
		t.Fatalf("perfect clustering F1 = %v, want 1", f1)
	}
	if acc := Accuracy(pred, truth); acc != 1 {
		t.Fatalf("perfect clustering accuracy = %v, want 1", acc)
	}
}

func TestMajorityF1FragmentationIsFree(t *testing.T) {
	// Splitting one type across many pure clusters must not hurt F1*:
	// each fragment's majority is still the right type.
	pred := map[pg.ID]int{}
	truth := map[pg.ID]string{}
	for i := 0; i < 60; i++ {
		pred[pg.ID(i)] = i % 10 // 10 fragments
		truth[pg.ID(i)] = "A"
	}
	for i := 60; i < 100; i++ {
		pred[pg.ID(i)] = 10
		truth[pg.ID(i)] = "B"
	}
	if f1 := MajorityF1(pred, truth); f1 != 1 {
		t.Fatalf("pure fragmentation F1 = %v, want 1", f1)
	}
}

func TestMajorityF1MixingHurts(t *testing.T) {
	// One cluster swallowing two types: the minority type has recall
	// 0, so macro-F1 drops to 0.5 · F1(A).
	pred := map[pg.ID]int{}
	truth := map[pg.ID]string{}
	for i := 0; i < 70; i++ {
		pred[pg.ID(i)] = 0
		truth[pg.ID(i)] = "A"
	}
	for i := 70; i < 100; i++ {
		pred[pg.ID(i)] = 0
		truth[pg.ID(i)] = "B"
	}
	f1 := MajorityF1(pred, truth)
	// A: precision 0.7, recall 1 → F1 ≈ 0.8235; B: 0 → macro ≈ 0.412.
	if math.Abs(f1-0.4118) > 0.01 {
		t.Fatalf("mixed cluster F1 = %v, want ≈ 0.412", f1)
	}
	if acc := Accuracy(pred, truth); math.Abs(acc-0.7) > 1e-9 {
		t.Fatalf("accuracy = %v, want 0.7", acc)
	}
}

func TestMajorityF1Empty(t *testing.T) {
	if MajorityF1(nil, nil) != 0 {
		t.Error("empty inputs must score 0")
	}
	if Accuracy(nil, nil) != 0 {
		t.Error("empty accuracy must be 0")
	}
}

// Property: F1* is always within [0,1] and equals 1 whenever clusters
// are singletons (every singleton is trivially pure).
func TestMajorityF1Property(t *testing.T) {
	f := func(assign []uint8) bool {
		if len(assign) == 0 {
			return true
		}
		pred := map[pg.ID]int{}
		truth := map[pg.ID]string{}
		types := []string{"A", "B", "C"}
		for i, a := range assign {
			pred[pg.ID(i)] = int(a % 7)
			truth[pg.ID(i)] = types[int(a)%len(types)]
		}
		f1 := MajorityF1(pred, truth)
		if f1 < 0 || f1 > 1 {
			return false
		}
		// Singleton clustering: always 1.
		for i := range assign {
			pred[pg.ID(i)] = i
		}
		return MajorityF1(pred, truth) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAverageRanks(t *testing.T) {
	scores := [][]float64{
		{0.9, 0.8, 0.7}, // ranks 1,2,3
		{0.9, 0.8, 0.7}, // ranks 1,2,3
	}
	ranks := AverageRanks(scores)
	want := []float64{1, 2, 3}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", ranks, want)
		}
	}
}

func TestAverageRanksTies(t *testing.T) {
	scores := [][]float64{{0.5, 0.5, 0.1}}
	ranks := AverageRanks(scores)
	if ranks[0] != 1.5 || ranks[1] != 1.5 || ranks[2] != 3 {
		t.Fatalf("tied ranks = %v, want [1.5 1.5 3]", ranks)
	}
}

func TestAverageRanksEmpty(t *testing.T) {
	if AverageRanks(nil) != nil {
		t.Error("no cases must give nil ranks")
	}
}

func TestNemenyiCD(t *testing.T) {
	// Demšar's example shape: CD grows with k, shrinks with n.
	cd4over40 := NemenyiCD(4, 40)
	want := 2.569 * math.Sqrt(float64(4*5)/(6*40.0))
	if math.Abs(cd4over40-want) > 1e-9 {
		t.Fatalf("CD(4,40) = %v, want %v", cd4over40, want)
	}
	if NemenyiCD(4, 10) <= cd4over40 {
		t.Error("CD must shrink with more cases")
	}
	if NemenyiCD(5, 40) <= cd4over40 {
		t.Error("CD must grow with more methods")
	}
	if !math.IsNaN(NemenyiCD(99, 40)) {
		t.Error("unknown k must return NaN")
	}
	if !math.IsNaN(NemenyiCD(4, 0)) {
		t.Error("zero cases must return NaN")
	}
}

func TestBins(t *testing.T) {
	cases := map[float64]ErrorBin{
		0:    Bin005,
		0.04: Bin005,
		0.05: Bin010,
		0.09: Bin010,
		0.10: Bin020,
		0.19: Bin020,
		0.20: BinBig,
		0.9:  BinBig,
	}
	for e, want := range cases {
		if got := BinOf(e); got != want {
			t.Errorf("BinOf(%v) = %v, want %v", e, got, want)
		}
	}
	dist := BinDistribution([]float64{0, 0.01, 0.06, 0.5})
	if dist[Bin005] != 0.5 || dist[Bin010] != 0.25 || dist[BinBig] != 0.25 {
		t.Errorf("distribution = %v", dist)
	}
	var zero [4]float64
	if BinDistribution(nil) != zero {
		t.Error("empty distribution must be all zeros")
	}
}

func TestBinStrings(t *testing.T) {
	wants := map[ErrorBin]string{
		Bin005: "0-0.05", Bin010: "0.05-0.10", Bin020: "0.10-0.20", BinBig: ">=0.20",
	}
	for b, w := range wants {
		if b.String() != w {
			t.Errorf("%d.String() = %q, want %q", b, b.String(), w)
		}
	}
}
