// Package store defines the pluggable storage backend the durable
// layer ships its artifacts through — WAL segments, delta runs, base
// images, and the manifests that name consistent generations — so a
// read-only follower can bootstrap and tail a leader without sharing
// its filesystem.
//
// Two implementations ship with the package:
//
//   - Dir: a local-directory backend over a vfs.FS, so fault-injection
//     tests (vfs.InjectFS) see every operation the shipper performs.
//   - HTTP: a client for the object endpoints a leader serves from its
//     mux (GET/PUT/DELETE /v1/objects/...), with bearer-token auth on
//     the mutating verbs; Handler is the matching server side over any
//     Backend.
//
// Both implementations honor the same atomic-publish contract: an
// object is either absent or complete — a reader can never observe a
// half-written object under its final name. That is the property the
// replication protocol leans on: a follower that can Get an object may
// trust its bytes (every artifact additionally carries its own CRC
// framing, so even a lying backend is detected, not believed).
package store

import (
	"context"
	"errors"
	"fmt"
	"strings"
)

// ErrNotFound reports a Get or Delete of an object that does not
// exist. Implementations return it (possibly wrapped) for exactly this
// condition, so callers can distinguish "not shipped yet" from a real
// backend fault.
var ErrNotFound = errors.New("store: object not found")

// Backend is an object store holding the durable layer's shipped
// artifacts. Object names are slash-separated relative paths
// (ValidateName); values are opaque bytes. Implementations must be
// safe for concurrent use and must publish atomically: a concurrent or
// crashed Put never leaves a partial object visible under its final
// name — Get returns either a complete prior version or ErrNotFound.
type Backend interface {
	// Put atomically publishes data under name, replacing any existing
	// object. The data is not retained after the call.
	Put(ctx context.Context, name string, data []byte) error
	// Get returns the complete bytes of the named object, or
	// ErrNotFound.
	Get(ctx context.Context, name string) ([]byte, error)
	// List returns the names of every object starting with prefix, in
	// lexicographic order. A prefix selects either a whole directory
	// level ("wal/") or a name prefix within one ("manifest-").
	List(ctx context.Context, prefix string) ([]string, error)
	// Delete removes the named object; ErrNotFound if absent.
	Delete(ctx context.Context, name string) error
}

// ValidateName checks an object name: a non-empty, slash-separated
// relative path whose segments contain only [A-Za-z0-9._-] and are
// never ".", "..", or empty. The restriction keeps every name safe to
// map onto a filesystem path or an unescaped URL path segment — the
// two transports the package ships with.
func ValidateName(name string) error {
	if name == "" {
		return fmt.Errorf("store: empty object name")
	}
	for _, seg := range strings.Split(name, "/") {
		if seg == "" || seg == "." || seg == ".." {
			return fmt.Errorf("store: invalid object name %q", name)
		}
		for _, r := range seg {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			case r == '.', r == '_', r == '-':
			default:
				return fmt.Errorf("store: invalid object name %q", name)
			}
		}
	}
	return nil
}

// validatePrefix checks a List prefix: empty (list everything) or a
// valid name optionally ending in "/".
func validatePrefix(prefix string) error {
	if prefix == "" {
		return nil
	}
	return ValidateName(strings.TrimSuffix(prefix, "/"))
}
