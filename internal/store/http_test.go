package store

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/pghive/pghive/internal/vfs"
)

// TestHandlerAuth pins the auth matrix: reads open, mutations require
// the exact bearer token, and a handler configured with no token
// refuses every mutation.
func TestHandlerAuth(t *testing.T) {
	ctx := context.Background()
	back := NewDir(vfs.NewMemFS(), "/obj")
	if err := back.Put(ctx, "manifest-1.mft", []byte("m")); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(back, "sekrit"))
	defer srv.Close()

	do := func(method, path, token string) int {
		t.Helper()
		req, err := http.NewRequest(method, srv.URL+path, strings.NewReader("body"))
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}

	cases := []struct {
		method, path, token string
		want                int
	}{
		{http.MethodGet, ObjectPath("manifest-1.mft"), "", http.StatusOK},
		{http.MethodGet, ObjectsRoute, "", http.StatusOK},
		{http.MethodGet, ObjectsRoute + "?prefix=manifest-", "", http.StatusOK},
		{http.MethodPut, ObjectPath("wal/1.wal"), "", http.StatusUnauthorized},
		{http.MethodPut, ObjectPath("wal/1.wal"), "wrong", http.StatusUnauthorized},
		{http.MethodPut, ObjectPath("wal/1.wal"), "sekrit", http.StatusNoContent},
		{http.MethodDelete, ObjectPath("wal/1.wal"), "", http.StatusUnauthorized},
		{http.MethodDelete, ObjectPath("wal/1.wal"), "sekrit", http.StatusNoContent},
		{http.MethodPost, ObjectPath("manifest-1.mft"), "sekrit", http.StatusMethodNotAllowed},
		{http.MethodGet, ObjectPath("..%2Fescape"), "", http.StatusBadRequest},
	}
	for _, c := range cases {
		if got := do(c.method, c.path, c.token); got != c.want {
			t.Errorf("%s %s token=%q: status %d, want %d", c.method, c.path, c.token, got, c.want)
		}
	}
}

// TestHandlerNoTokenRefusesMutations: an empty configured token means
// the leader never accepts remote writes, even with an empty bearer.
func TestHandlerNoTokenRefusesMutations(t *testing.T) {
	srv := httptest.NewServer(Handler(NewDir(vfs.NewMemFS(), "/obj"), ""))
	defer srv.Close()
	req, _ := http.NewRequest(http.MethodPut, srv.URL+ObjectPath("a"), strings.NewReader("x"))
	req.Header.Set("Authorization", "Bearer ")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("PUT with no configured token: status %d, want 401", resp.StatusCode)
	}
}

// TestHTTPNotFound maps a 404 to ErrNotFound so the follower can tell
// "not shipped yet" from a transport fault.
func TestHTTPBadBase(t *testing.T) {
	if _, err := NewHTTP("not-a-url", "", nil); err == nil {
		t.Fatal("NewHTTP accepted a relative base URL")
	}
	if _, err := NewHTTP("", "", nil); err == nil {
		t.Fatal("NewHTTP accepted an empty base URL")
	}
}
