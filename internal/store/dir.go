package store

import (
	"context"
	"errors"
	"io"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"

	"github.com/pghive/pghive/internal/vfs"
)

// Dir is a Backend rooted in a local directory. Every operation flows
// through the supplied vfs.FS, so the fault-injection filesystems see
// each one; Put publishes via the same temp-file + rename + directory
// fsync protocol the checkpoint writer uses, which is what makes the
// atomic-publish contract hold even across a crash. Safe for
// concurrent use (to the extent the underlying FS is).
type Dir struct {
	fsys vfs.FS
	root string
}

// NewDir returns a Dir backend rooted at root on fsys (nil selects the
// real OS filesystem). The root directory is created lazily by the
// first Put.
func NewDir(fsys vfs.FS, root string) *Dir {
	return &Dir{fsys: vfs.OrOS(fsys), root: root}
}

// Put atomically publishes data under name: staged to a temp file,
// fsynced, renamed into place, directory fsynced. A crash at any point
// leaves either the old object or the new one, never a mixture.
func (d *Dir) Put(ctx context.Context, name string, data []byte) error {
	if err := ValidateName(name); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	path := d.path(name)
	if err := d.fsys.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return vfs.WriteFileAtomic(d.fsys, path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// Get returns the complete bytes of the named object, or ErrNotFound.
func (d *Dir) Get(ctx context.Context, name string) ([]byte, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f, err := vfs.Open(d.fsys, d.path(name))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, ErrNotFound
		}
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// List returns the object names under prefix in lexicographic order.
// Staging residue from in-flight atomic Puts is never listed, so a
// concurrent reader only ever sees published objects.
func (d *Dir) List(ctx context.Context, prefix string) ([]string, error) {
	if err := validatePrefix(prefix); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The namespace is at most one directory deep (e.g. "wal/<seg>"),
	// so two glob levels cover every object.
	patterns := []string{
		filepath.Join(d.root, filepath.FromSlash(prefix)+"*"),
	}
	if !strings.Contains(prefix, "/") {
		patterns = append(patterns, filepath.Join(d.root, filepath.FromSlash(prefix)+"*", "*"))
	}
	var names []string
	for _, pat := range patterns {
		matches, err := d.fsys.Glob(pat)
		if err != nil {
			return nil, err
		}
		for _, m := range matches {
			if strings.HasSuffix(m, vfs.TmpSuffix) {
				continue
			}
			if fi, err := d.fsys.Stat(m); err != nil || fi.IsDir() {
				continue
			}
			rel, err := filepath.Rel(d.root, m)
			if err != nil {
				continue
			}
			name := filepath.ToSlash(rel)
			if strings.HasPrefix(name, prefix) {
				names = append(names, name)
			}
		}
	}
	sort.Strings(names)
	return names, nil
}

// Delete removes the named object; ErrNotFound if absent.
func (d *Dir) Delete(ctx context.Context, name string) error {
	if err := ValidateName(name); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := d.fsys.Remove(d.path(name)); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return ErrNotFound
		}
		return err
	}
	return nil
}

func (d *Dir) path(name string) string {
	return filepath.Join(d.root, filepath.FromSlash(name))
}
