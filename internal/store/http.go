package store

import (
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
)

// ObjectsRoute is the mux pattern prefix the object endpoints live
// under; both Handler and the HTTP client derive every wire path from
// it, and the golden wire-path test pins the mapping.
const ObjectsRoute = "/v1/objects"

// ObjectPath returns the URL path serving the named object. Names are
// restricted by ValidateName to characters that need no escaping, so
// the mapping is the identity both ways.
func ObjectPath(name string) string { return ObjectsRoute + "/" + name }

// ListPath returns the URL path (with query) listing objects under
// prefix.
func ListPath(prefix string) string {
	if prefix == "" {
		return ObjectsRoute
	}
	return ObjectsRoute + "?prefix=" + url.QueryEscape(prefix)
}

// listResponse is the JSON body of a list request — the object-store
// wire format the golden test pins.
type listResponse struct {
	Objects []string `json:"objects"`
}

// HTTP is a Backend reaching a leader's object endpoints over HTTP:
// GET for reads and lists (unauthenticated, like every other read
// endpoint), PUT/DELETE with a bearer token. Atomic publish is the
// server's job (Handler delegates to its inner Backend); the client
// adds nothing but transport. Safe for concurrent use.
type HTTP struct {
	base   string
	token  string
	client *http.Client
}

// NewHTTP returns an HTTP backend addressing the object endpoints
// under baseURL (scheme://host[:port], no trailing path). token is
// sent as a bearer token on mutating requests ("" sends none). hc nil
// selects http.DefaultClient.
func NewHTTP(baseURL, token string, hc *http.Client) (*HTTP, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("store: leader url: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("store: leader url %q must be absolute", baseURL)
	}
	if hc == nil {
		hc = http.DefaultClient
	}
	return &HTTP{base: strings.TrimSuffix(u.String(), "/"), token: token, client: hc}, nil
}

// Put atomically publishes data under name via an authenticated PUT.
func (h *HTTP) Put(ctx context.Context, name string, data []byte) error {
	if err := ValidateName(name); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, h.base+ObjectPath(name), bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if h.token != "" {
		req.Header.Set("Authorization", "Bearer "+h.token)
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return statusErr("put", name, resp)
	}
	return nil
}

// Get returns the complete bytes of the named object, or ErrNotFound.
func (h *HTTP) Get(ctx context.Context, name string) ([]byte, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, h.base+ObjectPath(name), nil)
	if err != nil {
		return nil, err
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	if resp.StatusCode == http.StatusNotFound {
		return nil, ErrNotFound
	}
	if resp.StatusCode != http.StatusOK {
		return nil, statusErr("get", name, resp)
	}
	return io.ReadAll(resp.Body)
}

// List returns the object names under prefix in lexicographic order.
func (h *HTTP) List(ctx context.Context, prefix string) ([]string, error) {
	if err := validatePrefix(prefix); err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, h.base+ListPath(prefix), nil)
	if err != nil {
		return nil, err
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, statusErr("list", prefix, resp)
	}
	var lr listResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		return nil, fmt.Errorf("store: list %q: %w", prefix, err)
	}
	return lr.Objects, nil
}

// Delete removes the named object via an authenticated DELETE;
// ErrNotFound if absent.
func (h *HTTP) Delete(ctx context.Context, name string) error {
	if err := ValidateName(name); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, h.base+ObjectPath(name), nil)
	if err != nil {
		return err
	}
	if h.token != "" {
		req.Header.Set("Authorization", "Bearer "+h.token)
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode == http.StatusNotFound {
		return ErrNotFound
	}
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return statusErr("delete", name, resp)
	}
	return nil
}

func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
}

func statusErr(op, name string, resp *http.Response) error {
	return fmt.Errorf("store: %s %q: unexpected status %s", op, name, resp.Status)
}

// Handler serves a Backend over the object-endpoint wire protocol:
//
//	GET    /v1/objects?prefix=P  → {"objects":[...]}
//	GET    /v1/objects/<name>    → object bytes (404 when absent)
//	PUT    /v1/objects/<name>    → 204 (requires the bearer token)
//	DELETE /v1/objects/<name>    → 204 (requires the bearer token)
//
// Reads are unauthenticated, matching the service's other read
// endpoints; mutating verbs require the configured bearer token
// (compared in constant time) and are refused outright when the
// handler was built with an empty token — an unconfigured leader never
// accepts remote writes by accident. Mount the handler at both
// "/v1/objects" and "/v1/objects/". Safe for concurrent use.
func Handler(b Backend, token string) http.Handler {
	return &handler{b: b, token: token}
}

type handler struct {
	b     Backend
	token string
}

// maxObjectBytes bounds a PUT body: comfortably above the largest
// artifact the shipper produces (a WAL segment, default 8 MiB) while
// keeping an unauthenticated-by-bug or runaway client from exhausting
// memory.
const maxObjectBytes = 1 << 30

func (h *handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, ObjectsRoute)
	name = strings.TrimPrefix(name, "/")
	if name == "" {
		h.list(w, r)
		return
	}
	if err := ValidateName(name); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet:
		data, err := h.b.Get(r.Context(), name)
		if err != nil {
			objErr(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(data)
	case http.MethodPut:
		if !h.authorized(r) {
			w.Header().Set("WWW-Authenticate", "Bearer")
			http.Error(w, "unauthorized", http.StatusUnauthorized)
			return
		}
		data, err := io.ReadAll(io.LimitReader(r.Body, maxObjectBytes+1))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if len(data) > maxObjectBytes {
			http.Error(w, "object too large", http.StatusRequestEntityTooLarge)
			return
		}
		if err := h.b.Put(r.Context(), name, data); err != nil {
			objErr(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case http.MethodDelete:
		if !h.authorized(r) {
			w.Header().Set("WWW-Authenticate", "Bearer")
			http.Error(w, "unauthorized", http.StatusUnauthorized)
			return
		}
		if err := h.b.Delete(r.Context(), name); err != nil {
			objErr(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		w.Header().Set("Allow", "GET, PUT, DELETE")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (h *handler) list(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	prefix := r.URL.Query().Get("prefix")
	if err := validatePrefix(prefix); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	names, err := h.b.List(r.Context(), prefix)
	if err != nil {
		objErr(w, err)
		return
	}
	if names == nil {
		names = []string{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(listResponse{Objects: names})
}

// authorized checks the bearer token in constant time. An empty
// configured token authorizes nothing.
func (h *handler) authorized(r *http.Request) bool {
	if h.token == "" {
		return false
	}
	got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	if !ok {
		return false
	}
	return subtle.ConstantTimeCompare([]byte(got), []byte(h.token)) == 1
}

func objErr(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrNotFound) {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	http.Error(w, err.Error(), http.StatusInternalServerError)
}
