package store

import (
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"testing"

	"github.com/pghive/pghive/internal/vfs"
)

// testBackends builds one of each Backend implementation over a fresh
// store, so every conformance test runs against both.
func testBackends(t *testing.T) map[string]Backend {
	t.Helper()
	dir := NewDir(vfs.NewMemFS(), "/obj")

	srv := httptest.NewServer(Handler(NewDir(vfs.NewMemFS(), "/obj"), "sekrit"))
	t.Cleanup(srv.Close)
	hb, err := NewHTTP(srv.URL, "sekrit", nil)
	if err != nil {
		t.Fatalf("NewHTTP: %v", err)
	}
	return map[string]Backend{"dir": dir, "http": hb}
}

func TestBackendConformance(t *testing.T) {
	for name, b := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()

			if _, err := b.Get(ctx, "manifest-1.mft"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get missing: err = %v, want ErrNotFound", err)
			}
			if err := b.Delete(ctx, "manifest-1.mft"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Delete missing: err = %v, want ErrNotFound", err)
			}

			objects := map[string][]byte{
				"manifest-00000000000000000001.mft":                 []byte("mft one"),
				"manifest-00000000000000000002.mft":                 []byte("mft two"),
				"checkpoint-00000000000000000007.ckpt":              []byte("base"),
				"wal/00000000000000000001.wal":                      []byte("seg one"),
				"wal/00000000000000000009.wal":                      []byte("seg nine"),
				"run-00000000000000000001-00000000000000000005.run": []byte("run"),
			}
			for name, data := range objects {
				if err := b.Put(ctx, name, data); err != nil {
					t.Fatalf("Put %s: %v", name, err)
				}
			}
			for name, want := range objects {
				got, err := b.Get(ctx, name)
				if err != nil {
					t.Fatalf("Get %s: %v", name, err)
				}
				if string(got) != string(want) {
					t.Fatalf("Get %s = %q, want %q", name, got, want)
				}
			}

			// Overwrite replaces atomically.
			if err := b.Put(ctx, "manifest-00000000000000000001.mft", []byte("mft one v2")); err != nil {
				t.Fatalf("Put overwrite: %v", err)
			}
			if got, _ := b.Get(ctx, "manifest-00000000000000000001.mft"); string(got) != "mft one v2" {
				t.Fatalf("Get after overwrite = %q", got)
			}

			// Prefix listing: directory level and name prefix.
			wantWal := []string{"wal/00000000000000000001.wal", "wal/00000000000000000009.wal"}
			if got, err := b.List(ctx, "wal/"); err != nil || !reflect.DeepEqual(got, wantWal) {
				t.Fatalf("List wal/ = %v, %v; want %v", got, err, wantWal)
			}
			wantMft := []string{"manifest-00000000000000000001.mft", "manifest-00000000000000000002.mft"}
			if got, err := b.List(ctx, "manifest-"); err != nil || !reflect.DeepEqual(got, wantMft) {
				t.Fatalf("List manifest- = %v, %v; want %v", got, err, wantMft)
			}
			if got, err := b.List(ctx, ""); err != nil || len(got) != len(objects) {
				t.Fatalf("List all = %v, %v; want %d names", got, err, len(objects))
			}
			if got, err := b.List(ctx, "nothing-"); err != nil || len(got) != 0 {
				t.Fatalf("List nothing- = %v, %v; want empty", got, err)
			}

			// Delete removes exactly the named object.
			if err := b.Delete(ctx, "wal/00000000000000000001.wal"); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			if got, _ := b.List(ctx, "wal/"); !reflect.DeepEqual(got, wantWal[1:]) {
				t.Fatalf("List after delete = %v, want %v", got, wantWal[1:])
			}

			// Invalid names are rejected, never touching the store.
			for _, bad := range []string{"", "../evil", "a//b", "a/./b", "dir/", "sp ace", "q?x"} {
				if err := b.Put(ctx, bad, []byte("x")); err == nil {
					t.Fatalf("Put %q accepted", bad)
				}
				if _, err := b.Get(ctx, bad); err == nil {
					t.Fatalf("Get %q accepted", bad)
				}
			}
		})
	}
}

// TestDirListSkipsStaging proves an interrupted atomic Put's staging
// file is never listed as an object.
func TestDirListSkipsStaging(t *testing.T) {
	ctx := context.Background()
	mem := vfs.NewMemFS()
	d := NewDir(mem, "/obj")
	if err := d.Put(ctx, "manifest-00000000000000000001.mft", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Simulate residue from a crashed atomic write.
	f, err := mem.CreateTemp("/obj", "manifest-00000000000000000002.mft-*"+vfs.TmpSuffix)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("partial"))
	f.Close()
	names, err := d.List(ctx, "manifest-")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "manifest-00000000000000000001.mft" {
		t.Fatalf("List = %v, staging residue leaked", names)
	}
}

func TestValidateName(t *testing.T) {
	good := []string{"a", "wal/00000000000000000001.wal", "manifest-1.mft", "A-b_c.d"}
	for _, n := range good {
		if err := ValidateName(n); err != nil {
			t.Errorf("ValidateName(%q) = %v, want nil", n, err)
		}
	}
	bad := []string{"", ".", "..", "a/", "/a", "a//b", "a/../b", "a b", "a%2f", "käse", "a\\b"}
	for _, n := range bad {
		if err := ValidateName(n); err == nil {
			t.Errorf("ValidateName(%q) = nil, want error", n)
		}
	}
}
