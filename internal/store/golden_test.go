package store

// Golden-file snapshot test pinning the object-store wire protocol: a
// follower built against one release must keep bootstrapping from a
// leader built against another, so the request lines the HTTP backend
// emits and the list-response body the handler returns are frozen byte
// for byte. Regenerate after an intentional protocol change with:
//
//	go test ./internal/store -run Golden -update

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"github.com/pghive/pghive/internal/vfs"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

func TestGoldenWirePaths(t *testing.T) {
	var trace bytes.Buffer
	back := NewDir(vfs.NewMemFS(), "/obj")
	inner := Handler(back, "sekrit")
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(&trace, "%s %s\n", r.Method, r.URL.RequestURI())
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()
	hb, err := NewHTTP(srv.URL, "sekrit", nil)
	if err != nil {
		t.Fatal(err)
	}

	// One request of each kind, over each artifact kind the shipper
	// produces, in a fixed order.
	ctx := context.Background()
	steps := []func() error{
		func() error { return hb.Put(ctx, "wal/00000000000000000001.wal", []byte("seg")) },
		func() error { return hb.Put(ctx, "checkpoint-00000000000000000005.ckpt", []byte("base")) },
		func() error {
			return hb.Put(ctx, "run-00000000000000000005-00000000000000000009.run", []byte("run"))
		},
		func() error { return hb.Put(ctx, "manifest-00000000000000000002.mft", []byte("mft")) },
		func() error { _, err := hb.Get(ctx, "manifest-00000000000000000002.mft"); return err },
		func() error { _, err := hb.Get(ctx, "wal/00000000000000000001.wal"); return err },
		func() error { _, err := hb.List(ctx, ""); return err },
		func() error { _, err := hb.List(ctx, "wal/"); return err },
		func() error { _, err := hb.List(ctx, "manifest-"); return err },
		func() error { return hb.Delete(ctx, "wal/00000000000000000001.wal") },
	}
	for i, step := range steps {
		if err := step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}

	// The list-response body rides along in the same golden file, after
	// the request lines.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+ListPath("manifest-"), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	trace.WriteString("-- list response body --\n")
	trace.Write(body.Bytes())

	goldenPath := filepath.Join("testdata", "wire.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, trace.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if trace.String() != string(want) {
		t.Errorf("object-store wire paths drifted from %s:\n got:\n%s\nwant:\n%s", goldenPath, trace.String(), want)
	}
}
