package lsh

// Broadcast expands a clustering of shape representatives to a
// per-row clustering through the row→shape map: row i gets the
// cluster of its shape rowShape[i]. It is the reference form of the
// interning contract — the pipeline inlines the same indexing
// (Assign[rowShape[row]]) instead of materializing the per-row
// slice, and the equivalence tests pin the two against each other.
//
// Same-shape rows carry byte-identical vectors or token sets, so in a
// non-interned run they collide in every band and always land in one
// cluster; clustering only the representatives (weighted by their
// occurrence counts — the weights cannot change bucketing, only the
// statistics fed downstream) therefore produces the exact same
// partition. Cluster labels also coincide: components are labeled by
// first occurrence, and representatives are ordered by the first
// occurrence of their shape, so label k of the representative run is
// label k of the full run.
func Broadcast(rep *Clustering, rowShape []int32) *Clustering {
	assign := make([]int, len(rowShape))
	for i, s := range rowShape {
		assign[i] = rep.Assign[s]
	}
	return &Clustering{Assign: assign, NumClusters: rep.NumClusters}
}
