package lsh

import (
	"math"
	"testing"
)

func TestAlphaForLabels(t *testing.T) {
	cases := []struct {
		labels int
		want   float64
	}{
		{0, 0.8}, {1, 0.8}, {3, 0.8},
		{4, 1.0}, {7, 1.0}, {10, 1.0},
		{11, 1.5}, {100, 1.5},
	}
	for _, c := range cases {
		if got := alphaForLabels(c.labels); got != c.want {
			t.Errorf("alphaForLabels(%d) = %v, want %v", c.labels, got, c.want)
		}
	}
}

func TestEstimateMu(t *testing.T) {
	// All points at distance ~2 apart on a line: µ must land near the
	// true mean pairwise distance.
	vecs := make([][]float64, 200)
	for i := range vecs {
		vecs[i] = []float64{float64(i % 2 * 2)} // 0 or 2
	}
	mu, sample := estimateMu(vecs, nil, 1)
	if sample != 200 {
		t.Errorf("sample = %d, want full population below floor", sample)
	}
	// Half the pairs are at distance 0 within the same point group,
	// half at distance 2 → mean ≈ 1.
	if mu < 0.8 || mu > 1.2 {
		t.Errorf("mu = %v, want ≈ 1", mu)
	}
}

func TestEstimateMuDegenerate(t *testing.T) {
	if mu, _ := estimateMu(nil, nil, 1); mu != 1 {
		t.Errorf("empty input mu = %v, want fallback 1", mu)
	}
	if mu, _ := estimateMu([][]float64{{5}}, nil, 1); mu != 1 {
		t.Errorf("single-element mu = %v, want fallback 1", mu)
	}
	// Identical points: mu must not be zero (division guard).
	same := [][]float64{{1, 2}, {1, 2}, {1, 2}}
	mu, _ := estimateMu(same, nil, 1)
	if mu <= 0 {
		t.Errorf("identical points mu = %v, want > 0", mu)
	}
}

func TestAdaptiveNodeParams(t *testing.T) {
	vecs := make([][]float64, 1000)
	for i := range vecs {
		vecs[i] = []float64{float64(i%4) * 3, float64(i%5) * 2}
	}
	ch := AdaptiveNodeParams(vecs, 6, 1)
	if ch.Alpha != 1.0 {
		t.Errorf("alpha = %v, want 1.0 for 6 labels", ch.Alpha)
	}
	if math.Abs(ch.BBase-1.2*ch.Mu) > 1e-12 {
		t.Errorf("BBase = %v, want 1.2µ = %v", ch.BBase, 1.2*ch.Mu)
	}
	if math.Abs(ch.Params.BucketLength-ch.BBase*ch.Alpha) > 1e-12 {
		t.Errorf("b = %v, want b_base·α = %v", ch.Params.BucketLength, ch.BBase*ch.Alpha)
	}
	if ch.Params.Tables < 4 || ch.Params.Tables > 48 {
		t.Errorf("T = %d out of clamp range", ch.Params.Tables)
	}
}

func TestAdaptiveEdgeParamsUsesSmallerFloors(t *testing.T) {
	// With a tiny µ, T is driven by the floor: 5 for nodes, 3 for
	// edges. Make all vectors nearly identical so b_base is tiny.
	vecs := make([][]float64, 500)
	for i := range vecs {
		vecs[i] = []float64{1, 1 + float64(i%2)*1e-9}
	}
	n := AdaptiveNodeParams(vecs, 5, 1)
	e := AdaptiveEdgeParams(vecs, 5, 1)
	if n.Params.Tables < e.Params.Tables {
		t.Errorf("node T (%d) should be >= edge T (%d) for identical data",
			n.Params.Tables, e.Params.Tables)
	}
}

func TestAdaptiveMinHashParams(t *testing.T) {
	ch := AdaptiveMinHashParams(100000, 8, 1)
	if ch.Params.Tables < 15 || ch.Params.Tables > 48 {
		t.Errorf("MinHash T = %d out of practical range", ch.Params.Tables)
	}
	if ch.Params.RowsPerBand != 4 {
		t.Errorf("RowsPerBand = %d, want 4", ch.Params.RowsPerBand)
	}
	if ch.Params.BucketLength != 0 {
		t.Error("MinHash must not set a bucket length")
	}
}

func TestAdaptiveParamsScaleWithN(t *testing.T) {
	small := AdaptiveMinHashParams(100, 8, 1)
	big := AdaptiveMinHashParams(10_000_000, 8, 1)
	if big.Params.Tables < small.Params.Tables {
		t.Errorf("T must not shrink with dataset size: big=%d small=%d",
			big.Params.Tables, small.Params.Tables)
	}
}

func TestClampT(t *testing.T) {
	if clampT(-5) != 4 || clampT(0) != 4 {
		t.Error("lower clamp failed")
	}
	if clampT(100) != 48 {
		t.Error("upper clamp failed")
	}
	if clampT(20) != 20 {
		t.Error("in-range value must pass through")
	}
}
