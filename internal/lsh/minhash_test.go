package lsh

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMinHashDeterminism(t *testing.T) {
	sets := [][]string{
		{"a", "b", "c"}, {"a", "b", "d"}, {"x", "y"}, {"x", "y", "z"},
	}
	p := Params{Tables: 16, Seed: 9}
	a := ClusterMinHash(sets, p)
	b := ClusterMinHash(sets, p)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("MinHash clustering is not deterministic")
		}
	}
}

func TestMinHashSeedChangesBuckets(t *testing.T) {
	// Near-duplicate sets: the collision outcome may vary with the
	// seed, but identical sets must always co-cluster regardless.
	sets := [][]string{
		{"t", "a", "b", "c", "d"},
		{"t", "a", "b", "c", "d"},
		{"t", "a", "b", "c", "e"},
	}
	for seed := int64(0); seed < 10; seed++ {
		c := ClusterMinHash(sets, Params{Tables: 16, Seed: seed})
		if c.Assign[0] != c.Assign[1] {
			t.Fatalf("seed %d: identical sets split", seed)
		}
	}
}

// Property: identical sets always share a cluster, for any parameters.
func TestMinHashIdenticalSetsProperty(t *testing.T) {
	f := func(seed int64, tablesRaw, rowsRaw uint8) bool {
		p := Params{
			Tables:      int(tablesRaw%32) + 1,
			RowsPerBand: int(rowsRaw % 9), // 0 = default
			Seed:        seed,
		}
		set := []string{"alpha", "beta", "gamma"}
		c := ClusterMinHash([][]string{set, set, {"zeta"}}, p)
		return c.Assign[0] == c.Assign[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMinHashBandingRecall: with fixed T, narrower bands (smaller r)
// raise recall on similar pairs. Measured over many random
// pair-samples, the merge rate with r=2 must be at least that of r=8.
func TestMinHashBandingRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	merged := func(rows int) int {
		count := 0
		for trial := 0; trial < 60; trial++ {
			// Two sets with Jaccard 0.8 (8 shared / 10 union).
			shared := make([]string, 8)
			for i := range shared {
				shared[i] = fmt.Sprintf("s%d-%d", trial, rng.Intn(1000))
			}
			a := append(append([]string{}, shared...), fmt.Sprintf("a%d", trial))
			b := append(append([]string{}, shared...), fmt.Sprintf("b%d", trial))
			c := ClusterMinHash([][]string{a, b}, Params{Tables: 16, RowsPerBand: rows, Seed: int64(trial)})
			if c.Assign[0] == c.Assign[1] {
				count++
			}
		}
		return count
	}
	low, high := merged(8), merged(2)
	if high < low {
		t.Fatalf("narrow bands must not lower recall: r=2 merged %d, r=8 merged %d", high, low)
	}
	if high < 40 {
		t.Errorf("r=2 recall too low for J=0.8 pairs: %d/60", high)
	}
}

func TestMinHashRowsPerBandCappedAtTables(t *testing.T) {
	// RowsPerBand beyond Tables must behave like one full-signature
	// band, not panic.
	sets := [][]string{{"a", "b"}, {"a", "b"}, {"c"}}
	c := ClusterMinHash(sets, Params{Tables: 4, RowsPerBand: 99, Seed: 1})
	if c.Assign[0] != c.Assign[1] {
		t.Fatal("identical sets split with oversized RowsPerBand")
	}
	if c.Assign[0] == c.Assign[2] {
		t.Fatal("distinct sets merged")
	}
}

func TestEuclideanRowsPerBandBands(t *testing.T) {
	// Multiple ELSH bands (OR) must not lose the identical-vector
	// guarantee and must raise recall on near vectors vs one band.
	vecs := [][]float64{
		{0, 0, 0, 0}, {0, 0, 0, 0}, {0.4, 0, 0, 0}, {9, 9, 9, 9},
	}
	oneBand := ClusterEuclidean(vecs, Params{Tables: 12, BucketLength: 1, Seed: 5})
	banded := ClusterEuclidean(vecs, Params{Tables: 12, BucketLength: 1, RowsPerBand: 3, Seed: 5})
	if banded.Assign[0] != banded.Assign[1] || oneBand.Assign[0] != oneBand.Assign[1] {
		t.Fatal("identical vectors split")
	}
	// The far vector must stay apart under both configurations.
	if banded.Assign[3] == banded.Assign[0] {
		t.Fatal("distant vector merged under banding")
	}
	// Banding can only merge more (union over more buckets).
	if banded.NumClusters > oneBand.NumClusters {
		t.Fatalf("banding produced more clusters (%d) than one band (%d)",
			banded.NumClusters, oneBand.NumClusters)
	}
}
