package lsh

import (
	"math"
	"math/rand"
)

// AdaptiveChoice reports the parameters the adaptive strategy of §4.2
// picked, along with the intermediate quantities (useful for the
// Fig. 6 heatmap experiment, which marks the adaptive point).
type AdaptiveChoice struct {
	// Mu is the estimated distance scale: the mean Euclidean distance
	// between sampled element pairs.
	Mu float64
	// BBase is 1.2·µ, the pre-α bucket width.
	BBase float64
	// Alpha is the label-count correction factor (0.8, 1.0, or 1.5).
	Alpha float64
	// SampleSize is the number of elements examined.
	SampleSize int
	// Params holds the final (b, T) handed to the clusterer.
	Params Params
}

// adaptiveSampleFloor mirrors the paper's "1% of the graph, or at
// least 10k nodes (whichever is larger)" rule; it is a variable so
// tests can exercise the rule at small scale.
const adaptiveSampleFloor = 10000

// maxSampledPairs bounds the pairwise-distance estimation work. The
// estimator is a mean, so a few thousand random pairs give a tight
// estimate regardless of sample size.
const maxSampledPairs = 4000

// alphaForLabels returns the paper's α heuristic: graphs with few
// labels need tighter buckets (α=0.8) to keep types distinct, graphs
// with many labels need wider buckets (α=1.5) to avoid
// over-fragmentation, and mid-sized label sets use α=1.0.
func alphaForLabels(labels int) float64 {
	switch {
	case labels <= 3:
		return 0.8
	case labels <= 10:
		return 1.0
	default:
		return 1.5
	}
}

// estimateMu samples elements per the paper's rule (max of 1% and the
// 10k floor, capped at N) and returns the mean Euclidean distance over
// random sampled pairs, plus the sample size. rows, when non-nil, is
// a row→vector index (the shape-interned per-row view): the logical
// element i is vecs[rows[i]], so the estimate — including which
// logical rows the fixed-seed sampling picks — is identical to
// running over the materialized per-row matrix.
func estimateMu(vecs [][]float64, rows []int32, seed int64) (float64, int) {
	n := len(vecs)
	if rows != nil {
		n = len(rows)
	}
	at := func(i int) []float64 {
		if rows != nil {
			return vecs[rows[i]]
		}
		return vecs[i]
	}
	if n < 2 {
		return 1, n
	}
	sample := n / 100
	if sample < adaptiveSampleFloor {
		sample = adaptiveSampleFloor
	}
	if sample > n {
		sample = n
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(n)[:sample]

	pairs := maxSampledPairs
	maxPairs := sample * (sample - 1) / 2
	if pairs > maxPairs {
		pairs = maxPairs
	}
	var sum float64
	count := 0
	for count < pairs {
		i := idx[rng.Intn(sample)]
		j := idx[rng.Intn(sample)]
		if i == j {
			continue
		}
		sum += euclidean(at(i), at(j))
		count++
	}
	mu := sum / float64(count)
	if mu <= 0 {
		mu = 1e-6
	}
	return mu, sample
}

func euclidean(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// AdaptiveNodeParams derives (b, T) for node clustering from the data,
// per §4.2: b = 1.2·µ·α and T = b_base · max(5, α·min(25, log10 N)),
// rounded and clamped to a practical integer range.
func AdaptiveNodeParams(vecs [][]float64, distinctLabels int, seed int64) AdaptiveChoice {
	return adaptiveParams(vecs, nil, distinctLabels, seed, 5, 25)
}

// AdaptiveNodeParamsInterned is AdaptiveNodeParams over a
// shape-interned matrix: repVecs holds one vector per distinct shape
// and rows maps each logical row to its shape, so the estimation sees
// the same element population — and picks the same parameters — as
// the materialized per-row matrix would, without expanding it.
func AdaptiveNodeParamsInterned(repVecs [][]float64, rows []int32, distinctLabels int, seed int64) AdaptiveChoice {
	return adaptiveParams(repVecs, rows, distinctLabels, seed, 5, 25)
}

// AdaptiveEdgeParams derives (b, T) for edge clustering; the paper
// uses slightly smaller floors for edges (max(3, α·min(20, log10 E)))
// because edge vectors are more expressive (three embeddings).
func AdaptiveEdgeParams(vecs [][]float64, distinctLabels int, seed int64) AdaptiveChoice {
	return adaptiveParams(vecs, nil, distinctLabels, seed, 3, 20)
}

// AdaptiveEdgeParamsInterned is AdaptiveEdgeParams over a
// shape-interned matrix (see AdaptiveNodeParamsInterned).
func AdaptiveEdgeParamsInterned(repVecs [][]float64, rows []int32, distinctLabels int, seed int64) AdaptiveChoice {
	return adaptiveParams(repVecs, rows, distinctLabels, seed, 3, 20)
}

func adaptiveParams(vecs [][]float64, rows []int32, distinctLabels int, seed int64, tFloor, tCap float64) AdaptiveChoice {
	mu, sample := estimateMu(vecs, rows, seed)
	bBase := 1.2 * mu
	alpha := alphaForLabels(distinctLabels)
	b := bBase * alpha

	n := len(vecs)
	if rows != nil {
		n = len(rows)
	}
	logN := 0.0
	if n > 1 {
		logN = math.Log10(float64(n))
	}
	tf := bBase * math.Max(tFloor, alpha*math.Min(tCap, logN))
	t := clampT(int(math.Round(tf)))

	return AdaptiveChoice{
		Mu:         mu,
		BBase:      bBase,
		Alpha:      alpha,
		SampleSize: sample,
		Params:     Params{Tables: t, BucketLength: b, Seed: seed},
	}
}

// AdaptiveMinHashParams derives T for MinHash clustering. MinHash has
// no bucket-length parameter (§4.2), so only the T heuristic applies;
// without a distance scale the b_base multiplier is dropped and the
// practical range of §4.2 ("T ∈ [15, 35] works well across datasets")
// anchors the clamp.
func AdaptiveMinHashParams(numElements, distinctLabels int, seed int64) AdaptiveChoice {
	alpha := alphaForLabels(distinctLabels)
	logN := 0.0
	if numElements > 1 {
		logN = math.Log10(float64(numElements))
	}
	t := clampT(int(math.Round(4 * math.Max(5, alpha*math.Min(25, logN)))))
	if t < 15 {
		t = 15
	}
	return AdaptiveChoice{
		Alpha:      alpha,
		SampleSize: numElements,
		Params:     Params{Tables: t, RowsPerBand: 4, Seed: seed},
	}
}

// clampT keeps the table count in a practical integer range; §4.2
// reports T ∈ [15, 35] as the empirically useful region, and values
// outside [4, 48] only waste work or destroy selectivity.
func clampT(t int) int {
	if t < 4 {
		return 4
	}
	if t > 48 {
		return 48
	}
	return t
}
