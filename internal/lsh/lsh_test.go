package lsh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// syntheticVectors builds nTypes well-separated centers in dim
// dimensions and n instances round-robined across them, optionally
// jittered. It returns vectors and ground-truth type per row.
func syntheticVectors(n, nTypes, dim int, jitter float64, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, nTypes)
	for i := range centers {
		c := make([]float64, dim)
		for d := range c {
			c[d] = rng.NormFloat64() * 4
		}
		centers[i] = c
	}
	vecs := make([][]float64, n)
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		ty := i % nTypes
		v := make([]float64, dim)
		copy(v, centers[ty])
		if jitter > 0 {
			for d := range v {
				v[d] += rng.NormFloat64() * jitter
			}
		}
		vecs[i] = v
		truth[i] = ty
	}
	return vecs, truth
}

// purity computes the fraction of rows whose cluster majority type
// matches their own type — the same leniency as the paper's F1*.
func purity(assign []int, truth []int, k int) float64 {
	counts := make([]map[int]int, k)
	for i := range counts {
		counts[i] = map[int]int{}
	}
	for row, cl := range assign {
		counts[cl][truth[row]]++
	}
	majority := make([]int, k)
	for cl, m := range counts {
		best, bestN := -1, -1
		for ty, n := range m {
			if n > bestN {
				best, bestN = ty, n
			}
		}
		majority[cl] = best
	}
	correct := 0
	for row, cl := range assign {
		if truth[row] == majority[cl] {
			correct++
		}
	}
	return float64(correct) / float64(len(assign))
}

func TestClusterEuclideanSeparatesCleanTypes(t *testing.T) {
	vecs, truth := syntheticVectors(600, 6, 12, 0, 1)
	c := ClusterEuclidean(vecs, Params{Tables: 12, BucketLength: 1.0, Seed: 7})
	if c.NumClusters != 6 {
		t.Fatalf("NumClusters = %d, want 6 (identical vectors per type)", c.NumClusters)
	}
	if p := purity(c.Assign, truth, c.NumClusters); p != 1 {
		t.Fatalf("purity = %v, want 1.0 on clean data", p)
	}
}

func TestClusterEuclideanIdenticalVectorsAlwaysTogether(t *testing.T) {
	// Identical vectors must share every hash, for any parameters.
	f := func(seed int64, tables uint8, bl float64) bool {
		p := Params{Tables: int(tables%30) + 1, BucketLength: math.Abs(bl) + 0.1, Seed: seed}
		v := []float64{1.5, -2, 3, 0.25}
		vecs := [][]float64{v, v, v, v}
		c := ClusterEuclidean(vecs, p)
		return c.NumClusters == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestClusterEuclideanJitterStaysPure(t *testing.T) {
	// Moderate jitter fragments clusters but must not mix types when
	// centers are far apart relative to the bucket length.
	vecs, truth := syntheticVectors(800, 5, 16, 0.05, 3)
	c := ClusterEuclidean(vecs, Params{Tables: 16, BucketLength: 1.5, Seed: 11})
	if p := purity(c.Assign, truth, c.NumClusters); p < 0.99 {
		t.Fatalf("purity = %v, want >= 0.99 with separated centers", p)
	}
}

func TestClusterEuclideanMoreTablesMoreSelective(t *testing.T) {
	// AND semantics: increasing T cannot decrease the cluster count.
	vecs, _ := syntheticVectors(400, 4, 8, 0.3, 5)
	prev := 0
	for _, tables := range []int{2, 8, 24} {
		c := ClusterEuclidean(vecs, Params{Tables: tables, BucketLength: 2, Seed: 9})
		if c.NumClusters < prev {
			t.Fatalf("T=%d produced fewer clusters (%d) than smaller T (%d); AND amplification must be monotone",
				tables, c.NumClusters, prev)
		}
		prev = c.NumClusters
	}
}

func TestClusterEuclideanWiderBucketsMergeMore(t *testing.T) {
	vecs, _ := syntheticVectors(400, 4, 8, 0.5, 5)
	narrow := ClusterEuclidean(vecs, Params{Tables: 8, BucketLength: 0.05, Seed: 2})
	wide := ClusterEuclidean(vecs, Params{Tables: 8, BucketLength: 100, Seed: 2})
	if wide.NumClusters > narrow.NumClusters {
		t.Fatalf("wider buckets must merge more: wide=%d narrow=%d", wide.NumClusters, narrow.NumClusters)
	}
	// With a bucket length far beyond any projection magnitude, every
	// hash is ⌊u/b⌋ = 0 and everything collapses to one cluster.
	huge := ClusterEuclidean(vecs, Params{Tables: 8, BucketLength: 1e9, Seed: 2})
	if huge.NumClusters != 1 {
		t.Fatalf("bucket length 1e9 should collapse everything, got %d clusters", huge.NumClusters)
	}
}

func TestClusterEuclideanEmptyAndDegenerate(t *testing.T) {
	c := ClusterEuclidean(nil, Params{Tables: 4, BucketLength: 1})
	if c.NumClusters != 0 || len(c.Assign) != 0 {
		t.Fatal("empty input must produce an empty clustering")
	}
	// Zero/negative parameters fall back to sane defaults.
	c = ClusterEuclidean([][]float64{{1}, {1}}, Params{})
	if len(c.Assign) != 2 {
		t.Fatal("degenerate params must still cluster")
	}
	if c.NumClusters != 1 {
		t.Fatalf("identical rows must cluster together, got %d", c.NumClusters)
	}
}

func TestClusterEuclideanDeterminism(t *testing.T) {
	vecs, _ := syntheticVectors(300, 3, 10, 0.2, 4)
	p := Params{Tables: 10, BucketLength: 1, Seed: 42}
	a := ClusterEuclidean(vecs, p)
	b := ClusterEuclidean(vecs, p)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("clustering is not deterministic")
		}
	}
}

func TestClusterMinHashIdenticalSets(t *testing.T) {
	sets := [][]string{
		{"Person", "name", "age"},
		{"Person", "name", "age"},
		{"Post", "content"},
		{"Post", "content"},
	}
	c := ClusterMinHash(sets, Params{Tables: 16, Seed: 1})
	if c.NumClusters != 2 {
		t.Fatalf("NumClusters = %d, want 2", c.NumClusters)
	}
	if c.Assign[0] != c.Assign[1] || c.Assign[2] != c.Assign[3] || c.Assign[0] == c.Assign[2] {
		t.Fatalf("assignment wrong: %v", c.Assign)
	}
}

func TestClusterMinHashHighJaccardMerges(t *testing.T) {
	// 9/10 shared tokens (J = 0.81): with banding r=4 across many
	// bands the pair should collide in at least one band.
	base := []string{"T", "a", "b", "c", "d", "e", "f", "g", "h", "i"}
	variant := append(append([]string{}, base[:9]...), "z")
	other := []string{"U", "q", "r", "s", "t", "u", "v", "w", "x", "y"}
	sets := [][]string{base, variant, other}
	c := ClusterMinHash(sets, Params{Tables: 32, Seed: 5})
	if c.Assign[0] != c.Assign[1] {
		t.Fatalf("high-Jaccard sets should merge: %v", c.Assign)
	}
	if c.Assign[0] == c.Assign[2] {
		t.Fatalf("disjoint sets must not merge: %v", c.Assign)
	}
}

func TestClusterMinHashEmpty(t *testing.T) {
	c := ClusterMinHash(nil, Params{Tables: 8})
	if c.NumClusters != 0 {
		t.Fatal("empty input must produce an empty clustering")
	}
	// Elements with empty token sets must not panic and must cluster
	// together (identical empty signatures).
	c = ClusterMinHash([][]string{{}, {}}, Params{Tables: 8, Seed: 1})
	if c.NumClusters != 1 {
		t.Fatalf("empty sets should share a bucket, got %d clusters", c.NumClusters)
	}
}

// Property: cluster IDs are always dense in [0, NumClusters) and the
// assignment covers every row.
func TestClusteringDenseIDsProperty(t *testing.T) {
	f := func(seed int64, nRaw, tyRaw uint8) bool {
		n := int(nRaw%100) + 2
		ty := int(tyRaw%5) + 1
		vecs, _ := syntheticVectors(n, ty, 6, 0.4, seed)
		c := ClusterEuclidean(vecs, Params{Tables: 6, BucketLength: 1, Seed: seed})
		if len(c.Assign) != n {
			return false
		}
		seen := make([]bool, c.NumClusters)
		for _, cl := range c.Assign {
			if cl < 0 || cl >= c.NumClusters {
				return false
			}
			seen[cl] = true
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMembers(t *testing.T) {
	c := &Clustering{Assign: []int{0, 1, 0, 2, 1}, NumClusters: 3}
	m := c.Members()
	if len(m) != 3 {
		t.Fatalf("Members groups = %d, want 3", len(m))
	}
	if len(m[0]) != 2 || m[0][0] != 0 || m[0][1] != 2 {
		t.Errorf("cluster 0 members = %v", m[0])
	}
	if len(m[1]) != 2 || len(m[2]) != 1 {
		t.Errorf("cluster sizes wrong: %v", m)
	}
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(6)
	uf.union(0, 1)
	uf.union(2, 3)
	uf.union(1, 2)
	assign, k := uf.components()
	if k != 3 {
		t.Fatalf("components = %d, want 3", k)
	}
	if assign[0] != assign[3] {
		t.Error("0 and 3 should be connected")
	}
	if assign[4] == assign[5] || assign[4] == assign[0] {
		t.Error("4 and 5 must be singletons")
	}
}
