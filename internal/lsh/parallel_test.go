package lsh

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomVecs builds a noisy mixture of k vector prototypes, the
// shape the pipeline feeds ClusterEuclidean.
func randomVecs(n, dim, k int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	protos := make([][]float64, k)
	for i := range protos {
		p := make([]float64, dim)
		for d := range p {
			p[d] = rng.NormFloat64() * 10
		}
		protos[i] = p
	}
	vecs := make([][]float64, n)
	for i := range vecs {
		p := protos[rng.Intn(k)]
		v := make([]float64, dim)
		for d := range v {
			v[d] = p[d] + rng.NormFloat64()*0.01
		}
		vecs[i] = v
	}
	return vecs
}

// randomSets builds token sets drawn from k overlapping vocabularies.
func randomSets(n, k int, seed int64) [][]string {
	rng := rand.New(rand.NewSource(seed))
	sets := make([][]string, n)
	for i := range sets {
		base := rng.Intn(k)
		size := 3 + rng.Intn(5)
		set := make([]string, 0, size)
		for j := 0; j < size; j++ {
			set = append(set, fmt.Sprintf("tok-%d-%d", base, j))
		}
		sets[i] = set
	}
	return sets
}

func sameClustering(t *testing.T, label string, a, b *Clustering) {
	t.Helper()
	if a.NumClusters != b.NumClusters {
		t.Fatalf("%s: cluster counts differ: %d vs %d", label, a.NumClusters, b.NumClusters)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("%s: row %d assigned %d vs %d", label, i, a.Assign[i], b.Assign[i])
		}
	}
}

// TestClusterEuclideanParallelEquivalence is the sharding soundness
// check: for several band layouts, any worker count yields the exact
// sequential clustering.
func TestClusterEuclideanParallelEquivalence(t *testing.T) {
	vecs := randomVecs(700, 24, 9, 42)
	for _, rowsPerBand := range []int{0, 3, 5} {
		seq := ClusterEuclidean(vecs, Params{Tables: 12, BucketLength: 1, RowsPerBand: rowsPerBand, Seed: 7, Workers: 1})
		for _, workers := range []int{2, 4, 16} {
			par := ClusterEuclidean(vecs, Params{Tables: 12, BucketLength: 1, RowsPerBand: rowsPerBand, Seed: 7, Workers: workers})
			sameClustering(t, fmt.Sprintf("elsh rows=%d workers=%d", rowsPerBand, workers), seq, par)
		}
	}
}

// TestClusterMinHashParallelEquivalence mirrors the ELSH check for
// the banded MinHash scheme.
func TestClusterMinHashParallelEquivalence(t *testing.T) {
	sets := randomSets(900, 11, 43)
	for _, rowsPerBand := range []int{0, 2, 8} {
		seq := ClusterMinHash(sets, Params{Tables: 16, RowsPerBand: rowsPerBand, Seed: 9, Workers: 1})
		for _, workers := range []int{2, 4, 16} {
			par := ClusterMinHash(sets, Params{Tables: 16, RowsPerBand: rowsPerBand, Seed: 9, Workers: workers})
			sameClustering(t, fmt.Sprintf("minhash rows=%d workers=%d", rowsPerBand, workers), seq, par)
		}
	}
}

// TestClusterDefaultWorkersMatchesSequential pins the Workers zero
// value (NumCPU) to the sequential result too — the default path the
// pipeline takes.
func TestClusterDefaultWorkersMatchesSequential(t *testing.T) {
	vecs := randomVecs(300, 16, 5, 44)
	sameClustering(t, "elsh default workers",
		ClusterEuclidean(vecs, Params{Tables: 8, BucketLength: 1, Seed: 3, Workers: 1}),
		ClusterEuclidean(vecs, Params{Tables: 8, BucketLength: 1, Seed: 3}))
	sets := randomSets(300, 5, 45)
	sameClustering(t, "minhash default workers",
		ClusterMinHash(sets, Params{Tables: 16, Seed: 3, Workers: 1}),
		ClusterMinHash(sets, Params{Tables: 16, Seed: 3}))
}
