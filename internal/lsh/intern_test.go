package lsh

import (
	"math/rand"
	"testing"
)

// mixIntsFNV is the byte-at-a-time FNV-1a mixer mixInts replaced,
// kept as the reference for the equivalence test below.
func mixIntsFNV(seed uint64, vals []int64) uint64 {
	h := seed ^ 14695981039346656037
	for _, v := range vals {
		u := uint64(v)
		for b := 0; b < 8; b++ {
			h ^= (u >> (8 * b)) & 0xff
			h *= 1099511628211
		}
	}
	return h
}

// mixBandKeysWith is mixBandKeys parameterized over the mixer.
func mixBandKeysWith(mix func(uint64, []int64) uint64, keys []uint64, sig []int64, rows int) {
	for band := range keys {
		lo := band * rows
		hi := lo + rows
		if hi > len(sig) {
			hi = len(sig)
		}
		keys[band] = mix(uint64(band)+0x9e3779b97f4a7c15, sig[lo:hi])
	}
}

// TestMixIntsClusteringEquivalence pins the splitmix-style mixInts to
// the FNV reference: band keys are only compared for equality, so as
// long as neither mixer collides on the observed signatures, the
// resulting clusterings are identical. Signatures are generated from
// fixed seeds with heavy duplication so real bucket collisions occur.
func TestMixIntsClusteringEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		rng := rand.New(rand.NewSource(seed))
		const n, tables, rows = 500, 12, 4
		bands := (tables + rows - 1) / rows
		// 40 distinct signature patterns over 500 rows → dense
		// duplication, plus near-duplicates differing in one hash.
		patterns := make([][]int64, 40)
		for i := range patterns {
			sig := make([]int64, tables)
			for j := range sig {
				sig[j] = int64(rng.Intn(8)) - 4
			}
			patterns[i] = sig
		}
		newKeys := make([]uint64, n*bands)
		oldKeys := make([]uint64, n*bands)
		for row := 0; row < n; row++ {
			sig := patterns[rng.Intn(len(patterns))]
			mixBandKeys(newKeys[row*bands:(row+1)*bands], sig, rows)
			mixBandKeysWith(mixIntsFNV, oldKeys[row*bands:(row+1)*bands], sig, rows)
		}
		got := bandedComponents(n, bands, newKeys)
		want := bandedComponents(n, bands, oldKeys)
		if got.NumClusters != want.NumClusters {
			t.Fatalf("seed %d: %d clusters with splitmix vs %d with FNV", seed, got.NumClusters, want.NumClusters)
		}
		for i := range got.Assign {
			if got.Assign[i] != want.Assign[i] {
				t.Fatalf("seed %d: row %d assigned %d (splitmix) vs %d (FNV)", seed, i, got.Assign[i], want.Assign[i])
			}
		}
	}
}

// randHybrid builds n hybrid rows: a dense random prefix of width d
// followed by a binary block of width k drawn from a limited pattern
// pool (so clusters form), returning both the dense rows and the
// sparse bit lists.
func randHybrid(rng *rand.Rand, n, d, k int) ([][]float64, [][]int32) {
	prefixes := make([][]float64, 8)
	for i := range prefixes {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.NormFloat64() * 3
		}
		prefixes[i] = p
	}
	vecs := make([][]float64, n)
	bits := make([][]int32, n)
	for i := range vecs {
		row := make([]float64, d+k)
		copy(row, prefixes[rng.Intn(len(prefixes))])
		var bs []int32
		for j := 0; j < k; j++ {
			if rng.Float64() < 0.2 {
				row[d+j] = 1
				bs = append(bs, int32(j))
			}
		}
		vecs[i] = row
		bits[i] = bs
	}
	return vecs, bits
}

// TestClusterEuclideanSparseMatchesDense: skipping the zero tail and
// adding only set bits is bit-exact — the sparse and dense paths
// produce identical clusterings for every worker count.
func TestClusterEuclideanSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vecs, bits := randHybrid(rng, 400, 12, 30)
	p := Params{Tables: 8, BucketLength: 2, Seed: 5}
	want := ClusterEuclidean(vecs, p)
	for _, workers := range []int{1, 4} {
		p.Workers = workers
		got := ClusterEuclideanSparse(vecs, 12, bits, p)
		if got.NumClusters != want.NumClusters {
			t.Fatalf("workers=%d: %d clusters sparse vs %d dense", workers, got.NumClusters, want.NumClusters)
		}
		for i := range got.Assign {
			if got.Assign[i] != want.Assign[i] {
				t.Fatalf("workers=%d: row %d differs", workers, i)
			}
		}
	}
}

// TestBroadcast: representative clusters expand through the row→shape
// map, preserving cluster IDs and count.
func TestBroadcast(t *testing.T) {
	rep := &Clustering{Assign: []int{0, 1, 0, 2}, NumClusters: 3}
	got := Broadcast(rep, []int32{0, 0, 1, 2, 3, 1})
	want := []int{0, 0, 1, 0, 2, 1}
	if got.NumClusters != 3 || len(got.Assign) != len(want) {
		t.Fatalf("got %v (%d clusters)", got.Assign, got.NumClusters)
	}
	for i := range want {
		if got.Assign[i] != want[i] {
			t.Fatalf("Assign = %v, want %v", got.Assign, want)
		}
	}
}

// TestClusterInternedEquivalence: clustering deduplicated rows and
// broadcasting matches clustering the full duplicated row set, for
// both schemes — the exactness contract shape interning relies on.
func TestClusterInternedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Build distinct rep rows, then a duplicated expansion.
	repVecs, repBits := randHybrid(rng, 60, 10, 20)
	// First occurrences in shape order (what first-occurrence grouping
	// guarantees), then duplicates interleaved in random shape order.
	var rows []int32
	for s := range repVecs {
		rows = append(rows, int32(s))
	}
	for c := 0; c < 4*len(repVecs); c++ {
		rows = append(rows, int32(rng.Intn(len(repVecs))))
	}
	fullVecs := make([][]float64, len(rows))
	fullBits := make([][]int32, len(rows))
	for i, s := range rows {
		fullVecs[i] = repVecs[s]
		fullBits[i] = repBits[s]
	}

	p := Params{Tables: 10, BucketLength: 2.5, Seed: 9}
	full := ClusterEuclideanSparse(fullVecs, 10, fullBits, p)
	interned := Broadcast(ClusterEuclideanSparse(repVecs, 10, repBits, p), rows)
	if full.NumClusters != interned.NumClusters {
		t.Fatalf("clusters: full %d vs interned %d", full.NumClusters, interned.NumClusters)
	}
	for i := range full.Assign {
		if full.Assign[i] != interned.Assign[i] {
			t.Fatalf("row %d: full %d vs interned %d", i, full.Assign[i], interned.Assign[i])
		}
	}

	// MinHash: same construction over token sets.
	repSets := make([][]string, 40)
	for s := range repSets {
		set := []string{string(rune('a' + s%7))}
		for j := 0; j < s%5; j++ {
			set = append(set, string(rune('p'+j)))
		}
		repSets[s] = set
	}
	var mrows []int32
	for s := range repSets {
		mrows = append(mrows, int32(s))
	}
	for c := 0; c < 3*len(repSets); c++ {
		mrows = append(mrows, int32(rng.Intn(len(repSets))))
	}
	fullSets := make([][]string, len(mrows))
	for i, s := range mrows {
		fullSets[i] = repSets[s]
	}
	mp := Params{Tables: 16, Seed: 13}
	mfull := ClusterMinHash(fullSets, mp)
	minterned := Broadcast(ClusterMinHash(repSets, mp), mrows)
	if mfull.NumClusters != minterned.NumClusters {
		t.Fatalf("minhash clusters: full %d vs interned %d", mfull.NumClusters, minterned.NumClusters)
	}
	for i := range mfull.Assign {
		if mfull.Assign[i] != minterned.Assign[i] {
			t.Fatalf("minhash row %d differs", i)
		}
	}
}
