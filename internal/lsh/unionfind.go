package lsh

// unionFind is a classic disjoint-set structure with union by size and
// path halving, used to OR-combine bucket collisions across bands into
// connected-component clusters.
type unionFind struct {
	parent []int32
	size   []int32
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int32, n), size: make([]int32, n)}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
		uf.size[i] = 1
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	p := int32(x)
	for uf.parent[p] != p {
		uf.parent[p] = uf.parent[uf.parent[p]] // path halving
		p = uf.parent[p]
	}
	return int(p)
}

func (uf *unionFind) union(a, b int) {
	ra, rb := int32(uf.find(a)), int32(uf.find(b))
	if ra == rb {
		return
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
}

// components relabels roots to dense cluster IDs 0..K-1 and returns
// the assignment plus K.
func (uf *unionFind) components() ([]int, int) {
	assign := make([]int, len(uf.parent))
	next := 0
	remap := make(map[int]int)
	for i := range uf.parent {
		r := uf.find(i)
		id, ok := remap[r]
		if !ok {
			id = next
			next++
			remap[r] = id
		}
		assign[i] = id
	}
	return assign, next
}
