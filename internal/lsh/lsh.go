// Package lsh implements the two Locality-Sensitive Hashing schemes
// PG-HIVE clusters with (§4.2): Euclidean LSH (the p-stable / bucketed
// random-projection scheme of Datar et al.) for the hybrid
// representation vectors, and MinHash LSH (Broder) for set-shaped
// representations, plus the adaptive parameterization heuristics of
// the paper.
//
// Amplification. Each of the T hash functions is assigned to a band;
// within a band the hash values are concatenated into a single bucket
// key (AND-amplification: all hashes in the band must agree), and an
// element's bucket collisions across bands are OR-combined with a
// union-find, so clusters are connected components of the collision
// graph. ELSH defaults to a single band — the full T-hash signature
// must match — because PG-HIVE deliberately over-fragments at this
// stage ("we prefer more separate types, as we are going to perform a
// merging step afterwards", §4.2) and the Alg. 2 merging step re-joins
// fragments by label or property Jaccard. MinHash defaults to bands
// of 4 rows, the textbook banding of Leskovec et al. ch. 3 that the
// paper cites.
package lsh

import (
	"math"
	"math/rand"
)

// Params controls one LSH clustering run.
type Params struct {
	// Tables is T, the total number of hash functions.
	Tables int
	// BucketLength is b, the Euclidean bucket width (ELSH only).
	BucketLength float64
	// RowsPerBand is the AND-amplification width r. 0 selects the
	// scheme default: all T hashes in one band for ELSH, 4 rows per
	// band for MinHash.
	RowsPerBand int
	// Seed drives projection and permutation generation.
	Seed int64
}

func (p Params) rows(def int) int {
	r := p.RowsPerBand
	if r <= 0 {
		r = def
	}
	if r > p.Tables {
		r = p.Tables
	}
	if r < 1 {
		r = 1
	}
	return r
}

// Clustering is the result of an LSH run: a dense cluster ID per input
// row.
type Clustering struct {
	// Assign maps row index to cluster ID in [0, NumClusters).
	Assign []int
	// NumClusters is the number of distinct clusters.
	NumClusters int
}

// Members groups row indices by cluster ID.
func (c *Clustering) Members() [][]int {
	members := make([][]int, c.NumClusters)
	for row, cl := range c.Assign {
		members[cl] = append(members[cl], row)
	}
	return members
}

// ClusterEuclidean buckets vectors with p-stable projections:
// h_i(v) = ⌊(a_i·v + u_i)/b⌋ with a_i ~ N(0,1)^D and u_i ~ U[0,b).
// Rows whose per-band keys coincide are unioned.
func ClusterEuclidean(vecs [][]float64, p Params) *Clustering {
	n := len(vecs)
	if n == 0 {
		return &Clustering{Assign: []int{}, NumClusters: 0}
	}
	if p.Tables < 1 {
		p.Tables = 1
	}
	if p.BucketLength <= 0 {
		p.BucketLength = 1
	}
	dim := len(vecs[0])
	rows := p.rows(p.Tables) // default: one band of T hashes
	bands := (p.Tables + rows - 1) / rows

	rng := rand.New(rand.NewSource(p.Seed))
	proj := make([]float64, p.Tables*dim)
	for i := range proj {
		proj[i] = rng.NormFloat64()
	}
	offsets := make([]float64, p.Tables)
	for i := range offsets {
		offsets[i] = rng.Float64() * p.BucketLength
	}

	uf := newUnionFind(n)
	hashes := make([]int64, p.Tables)
	for band := 0; band < bands; band++ {
		lo := band * rows
		hi := lo + rows
		if hi > p.Tables {
			hi = p.Tables
		}
		buckets := make(map[uint64]int, n)
		for row, v := range vecs {
			for t := lo; t < hi; t++ {
				a := proj[t*dim : (t+1)*dim]
				var dot float64
				for d, x := range v {
					dot += a[d] * x
				}
				hashes[t] = int64(math.Floor((dot + offsets[t]) / p.BucketLength))
			}
			key := mixInts(uint64(band)+0x9e3779b97f4a7c15, hashes[lo:hi])
			if first, ok := buckets[key]; ok {
				uf.union(first, row)
			} else {
				buckets[key] = row
			}
		}
	}
	assign, k := uf.components()
	return &Clustering{Assign: assign, NumClusters: k}
}

// ClusterMinHash buckets token sets with MinHash signatures of length
// T, banded r rows at a time. Two sets land in the same band bucket
// with probability J(A,B)^r; bands are OR-combined.
func ClusterMinHash(sets [][]string, p Params) *Clustering {
	n := len(sets)
	if n == 0 {
		return &Clustering{Assign: []int{}, NumClusters: 0}
	}
	if p.Tables < 1 {
		p.Tables = 1
	}
	rows := p.rows(4)
	bands := (p.Tables + rows - 1) / rows

	rng := rand.New(rand.NewSource(p.Seed))
	// One (mult, add) pair of odd multipliers per hash function
	// implements a universal family over token hashes.
	mult := make([]uint64, p.Tables)
	add := make([]uint64, p.Tables)
	for i := range mult {
		mult[i] = rng.Uint64() | 1
		add[i] = rng.Uint64()
	}

	// Pre-hash every distinct token once.
	tokenHash := map[string]uint64{}
	hashed := make([][]uint64, n)
	for i, set := range sets {
		hs := make([]uint64, len(set))
		for j, tok := range set {
			h, ok := tokenHash[tok]
			if !ok {
				h = fnv64(tok)
				tokenHash[tok] = h
			}
			hs[j] = h
		}
		hashed[i] = hs
	}

	uf := newUnionFind(n)
	sig := make([]int64, p.Tables)
	sigs := make([][]int64, n)
	for i := range sigs {
		for t := 0; t < p.Tables; t++ {
			minv := uint64(math.MaxUint64)
			for _, h := range hashed[i] {
				v := h*mult[t] + add[t]
				if v < minv {
					minv = v
				}
			}
			sig[t] = int64(minv)
		}
		sigs[i] = append([]int64(nil), sig...)
	}
	for band := 0; band < bands; band++ {
		lo := band * rows
		hi := lo + rows
		if hi > p.Tables {
			hi = p.Tables
		}
		buckets := make(map[uint64]int, n)
		for row := range sigs {
			key := mixInts(uint64(band)+0x9e3779b97f4a7c15, sigs[row][lo:hi])
			if first, ok := buckets[key]; ok {
				uf.union(first, row)
			} else {
				buckets[key] = row
			}
		}
	}
	assign, k := uf.components()
	return &Clustering{Assign: assign, NumClusters: k}
}

// mixInts hashes a slice of int64 hash values into one 64-bit bucket
// key (FNV-1a over the little-endian bytes, seeded per band).
func mixInts(seed uint64, vals []int64) uint64 {
	h := seed ^ 14695981039346656037
	for _, v := range vals {
		u := uint64(v)
		for b := 0; b < 8; b++ {
			h ^= (u >> (8 * b)) & 0xff
			h *= 1099511628211
		}
	}
	return h
}

func fnv64(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
