// Package lsh implements the two Locality-Sensitive Hashing schemes
// PG-HIVE clusters with (§4.2): Euclidean LSH (the p-stable / bucketed
// random-projection scheme of Datar et al.) for the hybrid
// representation vectors, and MinHash LSH (Broder) for set-shaped
// representations, plus the adaptive parameterization heuristics of
// the paper.
//
// Amplification. Each of the T hash functions is assigned to a band;
// within a band the hash values are concatenated into a single bucket
// key (AND-amplification: all hashes in the band must agree), and an
// element's bucket collisions across bands are OR-combined with a
// union-find, so clusters are connected components of the collision
// graph. ELSH defaults to a single band — the full T-hash signature
// must match — because PG-HIVE deliberately over-fragments at this
// stage ("we prefer more separate types, as we are going to perform a
// merging step afterwards", §4.2) and the Alg. 2 merging step re-joins
// fragments by label or property Jaccard. MinHash defaults to bands
// of 4 rows, the textbook banding of Leskovec et al. ch. 3 that the
// paper cites.
package lsh

import (
	"math"
	"math/rand"

	"github.com/pghive/pghive/internal/parallel"
)

// Params controls one LSH clustering run.
type Params struct {
	// Tables is T, the total number of hash functions.
	Tables int
	// BucketLength is b, the Euclidean bucket width (ELSH only).
	BucketLength float64
	// RowsPerBand is the AND-amplification width r. 0 selects the
	// scheme default: all T hashes in one band for ELSH, 4 rows per
	// band for MinHash.
	RowsPerBand int
	// Seed drives projection and permutation generation.
	Seed int64
	// Workers is the number of goroutines used to compute signatures
	// and band bucket keys. 0 selects runtime.NumCPU(); 1 forces
	// sequential execution. The clustering is bit-identical for every
	// value — hashing is sharded into disjoint row ranges and the
	// banded keys stream into the union-find in a fixed order.
	Workers int
}

func (p Params) rows(def int) int {
	r := p.RowsPerBand
	if r <= 0 {
		r = def
	}
	if r > p.Tables {
		r = p.Tables
	}
	if r < 1 {
		r = 1
	}
	return r
}

// Clustering is the result of an LSH run: a dense cluster ID per input
// row.
type Clustering struct {
	// Assign maps row index to cluster ID in [0, NumClusters).
	Assign []int
	// NumClusters is the number of distinct clusters.
	NumClusters int
}

// Members groups row indices by cluster ID.
func (c *Clustering) Members() [][]int {
	members := make([][]int, c.NumClusters)
	for row, cl := range c.Assign {
		members[cl] = append(members[cl], row)
	}
	return members
}

// ClusterEuclidean buckets vectors with p-stable projections:
// h_i(v) = ⌊(a_i·v + u_i)/b⌋ with a_i ~ N(0,1)^D and u_i ~ U[0,b).
// Rows whose per-band keys coincide are unioned. Signature
// computation is sharded by row across p.Workers goroutines; the
// result is identical for every worker count.
func ClusterEuclidean(vecs [][]float64, p Params) *Clustering {
	return ClusterEuclideanSparse(vecs, 0, nil, p)
}

// ClusterEuclideanSparse is ClusterEuclidean for hybrid rows whose
// tail past binStart is binary with the set positions listed,
// ascending, in bits (§4.1's property-presence block). The projection
// accumulates the dense prefix normally and then adds only the
// projection entries at set bits, skipping the zero tail; because the
// skipped terms are exact zeros and the set bits contribute a[j]·1 in
// the same ascending order, every hash value — and therefore the
// clustering — is bit-identical to the dense path. bits == nil falls
// back to fully dense rows.
func ClusterEuclideanSparse(vecs [][]float64, binStart int, bits [][]int32, p Params) *Clustering {
	n := len(vecs)
	if n == 0 {
		return &Clustering{Assign: []int{}, NumClusters: 0}
	}
	if p.Tables < 1 {
		p.Tables = 1
	}
	if p.BucketLength <= 0 {
		p.BucketLength = 1
	}
	dim := len(vecs[0])
	rows := p.rows(p.Tables) // default: one band of T hashes

	rng := rand.New(rand.NewSource(p.Seed))
	proj := make([]float64, p.Tables*dim)
	for i := range proj {
		proj[i] = rng.NormFloat64()
	}
	offsets := make([]float64, p.Tables)
	for i := range offsets {
		offsets[i] = rng.Float64() * p.BucketLength
	}

	// Per-row band keys, disjoint row ranges per worker. Only the
	// mixed band keys are kept (O(n·bands)); the raw T-hash signature
	// lives in a per-worker scratch buffer.
	bands := (p.Tables + rows - 1) / rows
	keys := make([]uint64, n*bands)
	parallel.For(n, p.Workers, func(lo, hi int) {
		sig := make([]int64, p.Tables)
		for row := lo; row < hi; row++ {
			v := vecs[row]
			dense := v
			if bits != nil {
				dense = v[:binStart]
			}
			for t := 0; t < p.Tables; t++ {
				a := proj[t*dim : (t+1)*dim]
				var dot float64
				for d, x := range dense {
					dot += a[d] * x
				}
				if bits != nil {
					for _, j := range bits[row] {
						dot += a[binStart+int(j)]
					}
				}
				sig[t] = int64(math.Floor((dot + offsets[t]) / p.BucketLength))
			}
			mixBandKeys(keys[row*bands:(row+1)*bands], sig, rows)
		}
	})
	return bandedComponents(n, bands, keys)
}

// ClusterMinHash buckets token sets with MinHash signatures of length
// T, banded r rows at a time. Two sets land in the same band bucket
// with probability J(A,B)^r; bands are OR-combined. Signature
// computation is sharded by row across p.Workers goroutines; the
// result is identical for every worker count.
func ClusterMinHash(sets [][]string, p Params) *Clustering {
	n := len(sets)
	if n == 0 {
		return &Clustering{Assign: []int{}, NumClusters: 0}
	}
	if p.Tables < 1 {
		p.Tables = 1
	}
	rows := p.rows(4)

	rng := rand.New(rand.NewSource(p.Seed))
	// One (mult, add) pair of odd multipliers per hash function
	// implements a universal family over token hashes.
	mult := make([]uint64, p.Tables)
	add := make([]uint64, p.Tables)
	for i := range mult {
		mult[i] = rng.Uint64() | 1
		add[i] = rng.Uint64()
	}

	// Pre-hash every distinct token once, serially, so the worker
	// shards below only read the memo table.
	tokenHash := map[string]uint64{}
	hashed := make([][]uint64, n)
	for i, set := range sets {
		hs := make([]uint64, len(set))
		for j, tok := range set {
			h, ok := tokenHash[tok]
			if !ok {
				h = fnv64(tok)
				tokenHash[tok] = h
			}
			hs[j] = h
		}
		hashed[i] = hs
	}

	// Per-row band keys, disjoint row ranges per worker.
	bands := (p.Tables + rows - 1) / rows
	keys := make([]uint64, n*bands)
	parallel.For(n, p.Workers, func(lo, hi int) {
		sig := make([]int64, p.Tables)
		for row := lo; row < hi; row++ {
			for t := 0; t < p.Tables; t++ {
				minv := uint64(math.MaxUint64)
				for _, h := range hashed[row] {
					v := h*mult[t] + add[t]
					if v < minv {
						minv = v
					}
				}
				sig[t] = int64(minv)
			}
			mixBandKeys(keys[row*bands:(row+1)*bands], sig, rows)
		}
	})
	return bandedComponents(n, bands, keys)
}

// mixBandKeys condenses a row's T-hash signature into one bucket key
// per band, so only O(bands) values per row outlive the signature
// scratch buffer.
func mixBandKeys(keys []uint64, sig []int64, rows int) {
	for band := range keys {
		lo := band * rows
		hi := lo + rows
		if hi > len(sig) {
			hi = len(sig)
		}
		keys[band] = mixInts(uint64(band)+0x9e3779b97f4a7c15, sig[lo:hi])
	}
}

// bandedComponents OR-combines per-row band keys into
// connected-component clusters. The expensive work — hashing rows
// into band keys — was already sharded across workers by the
// callers; the remaining per-band bucket scan is a cheap map insert
// per (row, band), so it streams sequentially into the union-find
// with one reusable bucket map (O(n) extra memory) in fixed
// band-then-row order. components() labels clusters by first row
// occurrence, so the assignment is deterministic for every worker
// count.
func bandedComponents(n, bands int, keys []uint64) *Clustering {
	uf := newUnionFind(n)
	buckets := make(map[uint64]int, n)
	for band := 0; band < bands; band++ {
		clear(buckets)
		for row := 0; row < n; row++ {
			key := keys[row*bands+band]
			if first, ok := buckets[key]; ok {
				uf.union(first, row)
			} else {
				buckets[key] = row
			}
		}
	}
	assign, k := uf.components()
	return &Clustering{Assign: assign, NumClusters: k}
}

// mixInts hashes a slice of int64 hash values into one 64-bit bucket
// key, consuming each value in one splitmix64-style round — 8 bytes
// at a time instead of the byte-at-a-time FNV inner loop this
// replaced. Keys are only compared for equality, so any injective-in-
// practice mixer yields the same clustering; TestMixIntsClusteringEquivalence
// pins that against the FNV reference on fixed seeds.
func mixInts(seed uint64, vals []int64) uint64 {
	h := seed ^ 14695981039346656037
	for _, v := range vals {
		h ^= uint64(v)
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

func fnv64(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
