package pg

import "testing"

func mustEdge(t *testing.T, g *Graph, labels []string, src, dst ID, props map[string]Value) ID {
	t.Helper()
	id, err := g.AddEdge(labels, src, dst, props)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// TestIndexNodesGroupsByShape: same label set + property-key set is
// one shape regardless of property values; differing keys, labels, or
// label multiplicity split shapes.
func TestIndexNodesGroupsByShape(t *testing.T) {
	g := NewGraph()
	g.AddNode([]string{"Person"}, map[string]Value{"name": Str("a"), "age": Int(1)})
	g.AddNode([]string{"Person"}, map[string]Value{"name": Str("b"), "age": Int(2)}) // dup of 0
	g.AddNode([]string{"Person"}, map[string]Value{"name": Str("c")})                // fewer keys
	g.AddNode([]string{"Post"}, map[string]Value{"name": Str("d"), "age": Int(3)})   // other label
	g.AddNode([]string{"Person"}, map[string]Value{"age": Int(4), "name": Str("e")}) // dup of 0

	c := NewShapeCache()
	si := c.IndexNodes(g.Nodes())
	if si.NumShapes() != 3 {
		t.Fatalf("NumShapes = %d, want 3", si.NumShapes())
	}
	wantRows := []int32{0, 0, 1, 2, 0}
	for i, w := range wantRows {
		if si.Rows[i] != w {
			t.Errorf("Rows[%d] = %d, want %d", i, si.Rows[i], w)
		}
	}
	if si.Reps[0] != 0 || si.Reps[1] != 2 || si.Reps[2] != 3 {
		t.Errorf("Reps = %v, want [0 2 3]", si.Reps)
	}
	if si.Counts[0] != 3 || si.Counts[1] != 1 || si.Counts[2] != 1 {
		t.Errorf("Counts = %v, want [3 1 1]", si.Counts)
	}
	if si.Shapes[0].Token != "Person" || si.Shapes[2].Token != "Post" {
		t.Errorf("tokens = %q/%q", si.Shapes[0].Token, si.Shapes[2].Token)
	}
	if got := si.DedupRatio(); got != 5.0/3.0 {
		t.Errorf("DedupRatio = %v", got)
	}
}

// TestShapeKeyInjective: the length-prefixed fingerprint cannot
// confuse a multi-label set with a single label containing the token
// separator, nor labels with property keys.
func TestShapeKeyInjective(t *testing.T) {
	g := NewGraph()
	g.AddNode([]string{"A&B"}, nil)                         // one label that *renders* like two
	g.AddNode([]string{"A", "B"}, nil)                      // two labels, same LabelToken
	g.AddNode([]string{"A"}, map[string]Value{"B": Int(1)}) // label A, key B
	g.AddNode(nil, map[string]Value{"A": Int(1), "B": Int(2)})

	c := NewShapeCache()
	si := c.IndexNodes(g.Nodes())
	if si.NumShapes() != 4 {
		t.Fatalf("NumShapes = %d, want 4 (fingerprint collided)", si.NumShapes())
	}
	if si.Shapes[0].Token != si.Shapes[1].Token {
		t.Errorf("tokens should coincide: %q vs %q", si.Shapes[0].Token, si.Shapes[1].Token)
	}
}

// TestIndexEdgesShapeIncludesEndpoints: edges split by resolved
// endpoint tokens even when labels and keys agree.
func TestIndexEdgesShapeIncludesEndpoints(t *testing.T) {
	g := NewGraph()
	a := g.AddNode([]string{"A"}, nil)
	b := g.AddNode([]string{"B"}, nil)
	mustEdge(t, g, []string{"R"}, a, b, nil)
	mustEdge(t, g, []string{"R"}, b, a, nil) // reversed endpoints
	mustEdge(t, g, []string{"R"}, a, b, map[string]Value{"w": Int(1)})
	mustEdge(t, g, []string{"R"}, a, b, map[string]Value{"w": Int(2)}) // dup of 2

	c := NewShapeCache()
	si := c.IndexEdges(g.Edges(), []string{"A", "B", "A", "A"}, []string{"B", "A", "B", "B"})
	if si.NumShapes() != 3 {
		t.Fatalf("NumShapes = %d, want 3", si.NumShapes())
	}
	if si.Rows[2] != si.Rows[3] {
		t.Errorf("rows 2 and 3 should share a shape")
	}
}

// TestShapeCacheAcrossBatches: a second batch with already-seen shapes
// registers nothing new, and per-batch ordinals restart from zero.
func TestShapeCacheAcrossBatches(t *testing.T) {
	mk := func(vals ...int64) *Graph {
		g := NewGraph()
		for _, v := range vals {
			g.AddNode([]string{"X"}, map[string]Value{"v": Int(v)})
			g.AddNode([]string{"Y"}, nil)
		}
		return g
	}
	c := NewShapeCache()
	si1 := c.IndexNodes(mk(1, 2).Nodes())
	if c.Size() != 2 || si1.NumShapes() != 2 {
		t.Fatalf("batch 1: size=%d shapes=%d, want 2/2", c.Size(), si1.NumShapes())
	}
	si2 := c.IndexNodes(mk(3).Nodes())
	if c.Size() != 2 {
		t.Fatalf("batch 2 re-registered shapes: size=%d, want 2", c.Size())
	}
	if si2.NumShapes() != 2 || si2.Rows[0] != 0 || si2.Rows[1] != 1 {
		t.Fatalf("batch 2 ordinals = %v", si2.Rows)
	}
	// Cached entries are the same objects across batches.
	if si1.Shapes[0] != si2.Shapes[0] || si1.Shapes[1] != si2.Shapes[1] {
		t.Error("batch 2 did not reuse batch 1's cache entries")
	}
	// A genuinely new shape still registers.
	g3 := NewGraph()
	g3.AddNode([]string{"Z"}, nil)
	c.IndexNodes(g3.Nodes())
	if c.Size() != 3 {
		t.Fatalf("new shape not registered: size=%d, want 3", c.Size())
	}
}
