package pg

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// csv.go implements the neo4j-admin bulk-import CSV conventions the
// paper's datasets ship in (POLE, MB6/FIB25, LDBC CSV dumps): node
// files with an `:ID` column and an optional `:LABEL` column, and
// relationship files with `:START_ID`, `:END_ID` and `:TYPE` columns.
// Property columns may carry a type suffix (`age:int`, `score:float`,
// `flag:boolean`, `since:date`, `at:datetime`, `name:string`); untyped
// columns are inferred per the §4.4 priority rules.

// ReadNodesCSV parses a node CSV into the graph. The header must
// contain an ":ID" column (optionally named, e.g. "personId:ID");
// a ":LABEL" column, when present, carries ;-separated labels.
// Rows with a duplicate ID are rejected.
func ReadNodesCSV(r io.Reader, g *Graph) (int, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return 0, fmt.Errorf("pg: csv header: %w", err)
	}
	idCol, labelCol := -1, -1
	props := map[int]csvProp{}
	for i, h := range header {
		switch {
		case strings.HasSuffix(h, ":ID"):
			idCol = i
		case h == ":LABEL" || strings.HasSuffix(h, ":LABEL"):
			labelCol = i
		case strings.HasSuffix(h, ":IGNORE"):
		default:
			props[i] = parseCSVHeader(h)
		}
	}
	if idCol < 0 {
		return 0, fmt.Errorf("pg: node csv needs an :ID column, header %v", header)
	}
	count := 0
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return count, fmt.Errorf("pg: csv line %d: %w", line, err)
		}
		id, err := strconv.ParseInt(rec[idCol], 10, 64)
		if err != nil {
			return count, fmt.Errorf("pg: csv line %d: node id %q: %w", line, rec[idCol], err)
		}
		var labels []string
		if labelCol >= 0 && labelCol < len(rec) && rec[labelCol] != "" {
			labels = strings.Split(rec[labelCol], ";")
		}
		pv, err := csvProps(rec, props)
		if err != nil {
			return count, fmt.Errorf("pg: csv line %d: %w", line, err)
		}
		if err := g.PutNode(ID(id), labels, pv); err != nil {
			return count, fmt.Errorf("pg: csv line %d: %w", line, err)
		}
		count++
	}
	return count, nil
}

// ReadEdgesCSV parses a relationship CSV into the graph. The header
// must contain ":START_ID", ":END_ID" and, optionally, ":TYPE"
// (;-separated labels). Edge IDs are assigned sequentially.
func ReadEdgesCSV(r io.Reader, g *Graph) (int, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return 0, fmt.Errorf("pg: csv header: %w", err)
	}
	srcCol, dstCol, typeCol := -1, -1, -1
	props := map[int]csvProp{}
	for i, h := range header {
		switch {
		case strings.HasSuffix(h, ":START_ID"):
			srcCol = i
		case strings.HasSuffix(h, ":END_ID"):
			dstCol = i
		case h == ":TYPE" || strings.HasSuffix(h, ":TYPE"):
			typeCol = i
		case strings.HasSuffix(h, ":IGNORE"):
		default:
			props[i] = parseCSVHeader(h)
		}
	}
	if srcCol < 0 || dstCol < 0 {
		return 0, fmt.Errorf("pg: relationship csv needs :START_ID and :END_ID columns, header %v", header)
	}
	count := 0
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return count, fmt.Errorf("pg: csv line %d: %w", line, err)
		}
		src, err := strconv.ParseInt(rec[srcCol], 10, 64)
		if err != nil {
			return count, fmt.Errorf("pg: csv line %d: start id %q: %w", line, rec[srcCol], err)
		}
		dst, err := strconv.ParseInt(rec[dstCol], 10, 64)
		if err != nil {
			return count, fmt.Errorf("pg: csv line %d: end id %q: %w", line, rec[dstCol], err)
		}
		var labels []string
		if typeCol >= 0 && typeCol < len(rec) && rec[typeCol] != "" {
			labels = strings.Split(rec[typeCol], ";")
		}
		pv, err := csvProps(rec, props)
		if err != nil {
			return count, fmt.Errorf("pg: csv line %d: %w", line, err)
		}
		if _, err := g.AddEdge(labels, ID(src), ID(dst), pv); err != nil {
			return count, fmt.Errorf("pg: csv line %d: %w", line, err)
		}
		count++
	}
	return count, nil
}

// csvProp describes one property column: key plus declared type.
type csvProp struct {
	key  string
	kind string // "", "int", "float", "boolean", "date", "datetime", "string"
}

func parseCSVHeader(h string) csvProp {
	if i := strings.LastIndexByte(h, ':'); i >= 0 {
		return csvProp{key: h[:i], kind: strings.ToLower(h[i+1:])}
	}
	return csvProp{key: h}
}

func csvProps(rec []string, cols map[int]csvProp) (map[string]Value, error) {
	props := map[string]Value{}
	for i, cp := range cols {
		if i >= len(rec) || rec[i] == "" {
			continue // absent property
		}
		raw := rec[i]
		switch cp.kind {
		case "int", "long":
			v, err := strconv.ParseInt(raw, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("column %q: %w", cp.key, err)
			}
			props[cp.key] = Int(v)
		case "float", "double":
			v, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				return nil, fmt.Errorf("column %q: %w", cp.key, err)
			}
			props[cp.key] = Float(v)
		case "boolean", "bool":
			props[cp.key] = Bool(strings.EqualFold(raw, "true"))
		case "string":
			props[cp.key] = Str(raw)
		case "date", "datetime":
			v := ParseLexical(raw)
			if v.Kind() != KindDate && v.Kind() != KindDateTime {
				props[cp.key] = Str(raw) // malformed temporal: keep raw
			} else {
				props[cp.key] = v
			}
		default:
			props[cp.key] = ParseLexical(raw)
		}
	}
	return props, nil
}
