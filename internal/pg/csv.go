package pg

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// csv.go implements the neo4j-admin bulk-import CSV conventions the
// paper's datasets ship in (POLE, MB6/FIB25, LDBC CSV dumps): node
// files with an `:ID` column and an optional `:LABEL` column, and
// relationship files with `:START_ID`, `:END_ID` and `:TYPE` columns.
// Property columns may carry a type suffix (`age:int`, `score:float`,
// `flag:boolean`, `since:date`, `at:datetime`, `name:string`); untyped
// columns are inferred per the §4.4 priority rules. Unknown type
// suffixes are header errors, typed cells that do not parse as their
// declared type are line errors — with one deliberate exception:
// malformed `date`/`datetime` cells are kept as strings, because the
// evaluated dumps carry free-form legacy timestamps in typed columns.
//
// The record→element decoding lives in nodeCSVReader / edgeCSVReader
// and is shared by the one-shot loaders (ReadNodesCSV, ReadEdgesCSV)
// and the streaming loader (CSVStream), so both paths accept and
// reject exactly the same inputs.

// nodeCSVReader decodes a node CSV one row at a time: the header is
// parsed (and validated) once, then each next() call yields one node.
type nodeCSVReader struct {
	cr     *csv.Reader
	idCol  int
	lblCol int
	props  map[int]csvProp
	line   int // 1-based line of the most recently read record
}

func newNodeCSVReader(r io.Reader) (*nodeCSVReader, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("pg: csv header: %w", err)
	}
	nr := &nodeCSVReader{cr: cr, idCol: -1, lblCol: -1, props: map[int]csvProp{}, line: 1}
	for i, h := range header {
		switch {
		case strings.HasSuffix(h, ":ID"):
			nr.idCol = i
		case h == ":LABEL" || strings.HasSuffix(h, ":LABEL"):
			nr.lblCol = i
		case strings.HasSuffix(h, ":IGNORE"):
		default:
			cp, err := parseCSVHeader(h)
			if err != nil {
				return nil, err
			}
			nr.props[i] = cp
		}
	}
	if nr.idCol < 0 {
		return nil, fmt.Errorf("pg: node csv needs an :ID column, header %v", header)
	}
	return nr, nil
}

// next returns the next node row, or io.EOF at the end of the file.
// Errors carry the 1-based line number.
func (nr *nodeCSVReader) next() (id ID, labels []string, props map[string]Value, err error) {
	rec, err := nr.cr.Read()
	if err == io.EOF {
		return 0, nil, nil, io.EOF
	}
	nr.line++
	if err != nil {
		return 0, nil, nil, fmt.Errorf("pg: csv line %d: %w", nr.line, err)
	}
	// FieldsPerRecord = -1 admits ragged rows, so the well-known
	// columns need explicit bounds checks: a short row must be a
	// line-numbered error, not an index-out-of-range panic.
	if nr.idCol >= len(rec) {
		return 0, nil, nil, fmt.Errorf("pg: csv line %d: missing :ID column (row has %d fields)", nr.line, len(rec))
	}
	n, err := strconv.ParseInt(rec[nr.idCol], 10, 64)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("pg: csv line %d: node id %q: %w", nr.line, rec[nr.idCol], err)
	}
	if nr.lblCol >= 0 && nr.lblCol < len(rec) && rec[nr.lblCol] != "" {
		labels = strings.Split(rec[nr.lblCol], ";")
	}
	props, err = csvProps(rec, nr.props)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("pg: csv line %d: %w", nr.line, err)
	}
	return ID(n), labels, props, nil
}

// edgeCSVReader decodes a relationship CSV one row at a time.
type edgeCSVReader struct {
	cr      *csv.Reader
	srcCol  int
	dstCol  int
	typeCol int
	props   map[int]csvProp
	line    int
}

func newEdgeCSVReader(r io.Reader) (*edgeCSVReader, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("pg: csv header: %w", err)
	}
	er := &edgeCSVReader{cr: cr, srcCol: -1, dstCol: -1, typeCol: -1, props: map[int]csvProp{}, line: 1}
	for i, h := range header {
		switch {
		case strings.HasSuffix(h, ":START_ID"):
			er.srcCol = i
		case strings.HasSuffix(h, ":END_ID"):
			er.dstCol = i
		case h == ":TYPE" || strings.HasSuffix(h, ":TYPE"):
			er.typeCol = i
		case strings.HasSuffix(h, ":IGNORE"):
		default:
			cp, err := parseCSVHeader(h)
			if err != nil {
				return nil, err
			}
			er.props[i] = cp
		}
	}
	if er.srcCol < 0 || er.dstCol < 0 {
		return nil, fmt.Errorf("pg: relationship csv needs :START_ID and :END_ID columns, header %v", header)
	}
	return er, nil
}

// next returns the next edge row, or io.EOF at the end of the file.
func (er *edgeCSVReader) next() (src, dst ID, labels []string, props map[string]Value, err error) {
	rec, err := er.cr.Read()
	if err == io.EOF {
		return 0, 0, nil, nil, io.EOF
	}
	er.line++
	if err != nil {
		return 0, 0, nil, nil, fmt.Errorf("pg: csv line %d: %w", er.line, err)
	}
	if er.srcCol >= len(rec) {
		return 0, 0, nil, nil, fmt.Errorf("pg: csv line %d: missing :START_ID column (row has %d fields)", er.line, len(rec))
	}
	if er.dstCol >= len(rec) {
		return 0, 0, nil, nil, fmt.Errorf("pg: csv line %d: missing :END_ID column (row has %d fields)", er.line, len(rec))
	}
	s, err := strconv.ParseInt(rec[er.srcCol], 10, 64)
	if err != nil {
		return 0, 0, nil, nil, fmt.Errorf("pg: csv line %d: start id %q: %w", er.line, rec[er.srcCol], err)
	}
	d, err := strconv.ParseInt(rec[er.dstCol], 10, 64)
	if err != nil {
		return 0, 0, nil, nil, fmt.Errorf("pg: csv line %d: end id %q: %w", er.line, rec[er.dstCol], err)
	}
	if er.typeCol >= 0 && er.typeCol < len(rec) && rec[er.typeCol] != "" {
		labels = strings.Split(rec[er.typeCol], ";")
	}
	props, err = csvProps(rec, er.props)
	if err != nil {
		return 0, 0, nil, nil, fmt.Errorf("pg: csv line %d: %w", er.line, err)
	}
	return ID(s), ID(d), labels, props, nil
}

// ReadNodesCSV parses a node CSV into the graph. The header must
// contain an ":ID" column (optionally named, e.g. "personId:ID");
// a ":LABEL" column, when present, carries ;-separated labels.
// Rows with a duplicate ID are rejected.
func ReadNodesCSV(r io.Reader, g *Graph) (int, error) {
	nr, err := newNodeCSVReader(r)
	if err != nil {
		return 0, err
	}
	count := 0
	for {
		id, labels, props, err := nr.next()
		if err == io.EOF {
			return count, nil
		}
		if err != nil {
			return count, err
		}
		if err := g.PutNode(id, labels, props); err != nil {
			return count, fmt.Errorf("pg: csv line %d: %w", nr.line, err)
		}
		count++
	}
}

// ReadEdgesCSV parses a relationship CSV into the graph. The header
// must contain ":START_ID", ":END_ID" and, optionally, ":TYPE"
// (;-separated labels). Edge IDs are assigned sequentially.
func ReadEdgesCSV(r io.Reader, g *Graph) (int, error) {
	er, err := newEdgeCSVReader(r)
	if err != nil {
		return 0, err
	}
	count := 0
	for {
		src, dst, labels, props, err := er.next()
		if err == io.EOF {
			return count, nil
		}
		if err != nil {
			return count, err
		}
		if _, err := g.AddEdge(labels, src, dst, props); err != nil {
			return count, fmt.Errorf("pg: csv line %d: %w", er.line, err)
		}
		count++
	}
}

// csvProp describes one property column: key plus declared type.
type csvProp struct {
	key  string
	kind string // "", "int", "long", "float", "double", "boolean", "bool", "string", "date", "datetime"
}

// parseCSVHeader splits a property column header into key and declared
// type. A suffix that is not one of the known types is a header error
// — silently treating `age:itn` as an untyped column named "age:itn"
// would let a typo downgrade every value in the column to lexical
// inference.
func parseCSVHeader(h string) (csvProp, error) {
	i := strings.LastIndexByte(h, ':')
	if i < 0 {
		return csvProp{key: h}, nil
	}
	kind := strings.ToLower(h[i+1:])
	switch kind {
	case "int", "long", "float", "double", "boolean", "bool", "string", "date", "datetime":
		return csvProp{key: h[:i], kind: kind}, nil
	default:
		return csvProp{}, fmt.Errorf("pg: csv header: column %q: unknown type suffix %q", h, h[i+1:])
	}
}

func csvProps(rec []string, cols map[int]csvProp) (map[string]Value, error) {
	props := map[string]Value{}
	for i, cp := range cols {
		if i >= len(rec) || rec[i] == "" {
			continue // absent property
		}
		raw := rec[i]
		switch cp.kind {
		case "int", "long":
			v, err := strconv.ParseInt(raw, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("column %q: %w", cp.key, err)
			}
			props[cp.key] = Int(v)
		case "float", "double":
			v, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				return nil, fmt.Errorf("column %q: %w", cp.key, err)
			}
			props[cp.key] = Float(v)
		case "boolean", "bool":
			// Only true/false are booleans; anything else ("yes", "1",
			// a stray shift of the row) is rejected like the numeric
			// branches reject unparsable cells — silently mapping it to
			// false would corrupt the discovered schema.
			switch {
			case strings.EqualFold(raw, "true"):
				props[cp.key] = Bool(true)
			case strings.EqualFold(raw, "false"):
				props[cp.key] = Bool(false)
			default:
				return nil, fmt.Errorf("column %q: invalid boolean %q", cp.key, raw)
			}
		case "string":
			props[cp.key] = Str(raw)
		case "date", "datetime":
			v := ParseLexical(raw)
			if v.Kind() != KindDate && v.Kind() != KindDateTime {
				props[cp.key] = Str(raw) // malformed temporal: keep raw
			} else {
				props[cp.key] = v
			}
		default:
			props[cp.key] = ParseLexical(raw)
		}
	}
	return props, nil
}
