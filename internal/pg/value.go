// Package pg implements the property-graph data model used throughout
// PG-HIVE: typed property values, nodes, edges, and an in-memory graph
// store with JSONL import/export and batch streaming.
//
// It is the stand-in for the Neo4j storage layer the paper loads from
// (§4.1): PG-HIVE only needs the nodes, edges and their key-value
// properties in memory, so a single-process store preserves all
// algorithmic behaviour.
package pg

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the dynamic types a property value can carry.
// The ordering mirrors the inference priority of §4.4: integer before
// float before bool before date/time, with string as the fallback.
type Kind uint8

const (
	// KindInvalid is the zero Kind; it marks an absent value.
	KindInvalid Kind = iota
	// KindInt is a 64-bit signed integer (GQL INT).
	KindInt
	// KindFloat is a 64-bit IEEE float (GQL DOUBLE).
	KindFloat
	// KindBool is a boolean (GQL BOOLEAN).
	KindBool
	// KindDate is a calendar date without time-of-day (GQL DATE).
	KindDate
	// KindDateTime is a date with time-of-day (GQL TIMESTAMP).
	KindDateTime
	// KindString is an arbitrary UTF-8 string (GQL STRING).
	KindString
)

// String returns the GQL-style name of the kind, as used by the
// PG-Schema serializer.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "INT"
	case KindFloat:
		return "DOUBLE"
	case KindBool:
		return "BOOLEAN"
	case KindDate:
		return "DATE"
	case KindDateTime:
		return "TIMESTAMP"
	case KindString:
		return "STRING"
	default:
		return "INVALID"
	}
}

// Value is a dynamically typed property value. The zero Value is
// invalid (absent). Values are small (no heap indirection for numeric
// kinds) so property maps stay compact for multi-million element
// graphs.
type Value struct {
	kind Kind
	num  int64   // int, bool (0/1), date/datetime (unix seconds)
	f    float64 // float
	str  string  // string
}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, num: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	var n int64
	if v {
		n = 1
	}
	return Value{kind: KindBool, num: n}
}

// Str returns a string value.
func Str(v string) Value { return Value{kind: KindString, str: v} }

// Date returns a date value (time-of-day truncated).
func Date(t time.Time) Value {
	y, m, d := t.Date()
	tt := time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
	return Value{kind: KindDate, num: tt.Unix()}
}

// DateTime returns a timestamp value with second resolution.
func DateTime(t time.Time) Value {
	return Value{kind: KindDateTime, num: t.Truncate(time.Second).Unix()}
}

// Kind reports the dynamic kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether the value is present (non-zero).
func (v Value) IsValid() bool { return v.kind != KindInvalid }

// AsInt returns the integer payload; it is only meaningful for KindInt.
func (v Value) AsInt() int64 { return v.num }

// AsFloat returns the numeric payload as float64 for KindInt and
// KindFloat values.
func (v Value) AsFloat() float64 {
	if v.kind == KindInt {
		return float64(v.num)
	}
	return v.f
}

// AsBool returns the boolean payload; it is only meaningful for KindBool.
func (v Value) AsBool() bool { return v.num != 0 }

// AsString returns the string payload; it is only meaningful for
// KindString.
func (v Value) AsString() string { return v.str }

// AsTime returns the time payload for KindDate and KindDateTime values.
func (v Value) AsTime() time.Time { return time.Unix(v.num, 0).UTC() }

// Equal reports whether two values have the same kind and payload.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindFloat:
		return v.f == o.f || (math.IsNaN(v.f) && math.IsNaN(o.f))
	case KindString:
		return v.str == o.str
	default:
		return v.num == o.num
	}
}

// Lexical returns the canonical textual form of the value, used by the
// serializers and by the datatype-inference sampler (§4.4), which
// re-parses lexical forms the way the paper's heuristics do.
func (v Value) Lexical() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.num, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		if v.num != 0 {
			return "true"
		}
		return "false"
	case KindDate:
		return v.AsTime().Format("2006-01-02")
	case KindDateTime:
		return v.AsTime().Format(time.RFC3339)
	case KindString:
		return v.str
	default:
		return ""
	}
}

// GoString implements fmt.GoStringer for debugging output.
func (v Value) GoString() string {
	return fmt.Sprintf("pg.Value{%s %q}", v.kind, v.Lexical())
}

// ParseLexical applies the paper's priority-based inference (§4.4) to a
// lexical form: integer, then float, then boolean, then ISO date /
// date-time via format checks, defaulting to string. It returns the
// most specific Value the text is compatible with.
func ParseLexical(s string) Value {
	if s == "" {
		return Str(s)
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return Float(f)
	}
	switch s {
	case "true", "false", "TRUE", "FALSE", "True", "False":
		return Bool(strings.EqualFold(s, "true"))
	}
	if t, err := time.Parse("2006-01-02", s); err == nil {
		return Date(t)
	}
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return DateTime(t)
	}
	if t, err := time.Parse("2006-01-02 15:04:05", s); err == nil {
		return DateTime(t)
	}
	return Str(s)
}
