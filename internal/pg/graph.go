package pg

import (
	"fmt"
	"sort"
	"strings"
)

// ID identifies a node or an edge within a Graph. Node and edge ID
// spaces are independent (Def. 3.1 keeps V and E disjoint).
type ID int64

// Node is a property-graph node: a finite (possibly empty) label set
// and a finite set of key-value properties (Def. 3.1). Labels are kept
// sorted so that identical label sets compare equal and produce the
// same label token (§4.1).
type Node struct {
	ID     ID
	Labels []string
	Props  map[string]Value
}

// Edge is a directed property-graph edge between two nodes. Like
// nodes, edges may carry a label set and properties.
type Edge struct {
	ID     ID
	Labels []string
	Src    ID
	Dst    ID
	Props  map[string]Value
}

// LabelToken returns the canonical token for a label set: the sorted
// labels joined by "&". The paper (§4.1) treats the sorted
// concatenation of a multi-label set as one vocabulary word, so that
// identical label sets always embed identically. The empty set yields
// "".
func LabelToken(labels []string) string {
	switch len(labels) {
	case 0:
		return ""
	case 1:
		return labels[0]
	}
	s := make([]string, len(labels))
	copy(s, labels)
	sort.Strings(s)
	return strings.Join(s, "&")
}

// LabelToken returns the node's canonical label token.
func (n *Node) LabelToken() string { return LabelToken(n.Labels) }

// LabelToken returns the edge's canonical label token.
func (e *Edge) LabelToken() string { return LabelToken(e.Labels) }

// PropertyKeys returns the node's property keys in sorted order.
func (n *Node) PropertyKeys() []string { return sortedKeys(n.Props) }

// PropertyKeys returns the edge's property keys in sorted order.
func (e *Edge) PropertyKeys() []string { return sortedKeys(e.Props) }

func sortedKeys(m map[string]Value) []string {
	if len(m) == 0 {
		return nil
	}
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Graph is an in-memory property graph (Def. 3.1): disjoint node and
// edge sets, a total endpoint function for edges, and partial label
// and property functions. It is the loading substrate for PG-HIVE and
// the target the synthetic dataset generators populate.
//
// Graph is not safe for concurrent mutation; the discovery pipeline
// only reads it after loading.
type Graph struct {
	nodes     []Node
	edges     []Edge
	nodeIdx   map[ID]int
	edgeIdx   map[ID]int
	nextNode  ID
	nextEdge  ID
	allowDang bool
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		nodeIdx: make(map[ID]int),
		edgeIdx: make(map[ID]int),
	}
}

// AllowDanglingEdges configures the graph to accept edges whose
// endpoints are not (yet) present. Batch streaming (§4.6) needs this:
// a batch may carry an edge whose source node arrived in an earlier
// batch.
func (g *Graph) AllowDanglingEdges(ok bool) { g.allowDang = ok }

// AddNode inserts a node with a fresh ID and returns it. The labels
// slice is copied and sorted; the property map is taken over by the
// graph.
func (g *Graph) AddNode(labels []string, props map[string]Value) ID {
	id := g.nextNode
	g.nextNode++
	g.putNode(id, labels, props)
	return id
}

// PutNode inserts a node with an explicit ID (used by loaders).
// It returns an error if the ID is already present.
func (g *Graph) PutNode(id ID, labels []string, props map[string]Value) error {
	if _, dup := g.nodeIdx[id]; dup {
		return fmt.Errorf("pg: duplicate node id %d", id)
	}
	g.putNode(id, labels, props)
	if id >= g.nextNode {
		g.nextNode = id + 1
	}
	return nil
}

func (g *Graph) putNode(id ID, labels []string, props map[string]Value) {
	ls := append([]string(nil), labels...)
	sort.Strings(ls)
	if props == nil {
		props = map[string]Value{}
	}
	g.nodeIdx[id] = len(g.nodes)
	g.nodes = append(g.nodes, Node{ID: id, Labels: ls, Props: props})
}

// AddEdge inserts a directed edge with a fresh ID and returns it.
// Unless AllowDanglingEdges is set, both endpoints must exist.
func (g *Graph) AddEdge(labels []string, src, dst ID, props map[string]Value) (ID, error) {
	if !g.allowDang {
		if _, ok := g.nodeIdx[src]; !ok {
			return 0, fmt.Errorf("pg: edge source node %d not found", src)
		}
		if _, ok := g.nodeIdx[dst]; !ok {
			return 0, fmt.Errorf("pg: edge target node %d not found", dst)
		}
	}
	id := g.nextEdge
	g.nextEdge++
	g.putEdge(id, labels, src, dst, props)
	return id, nil
}

// PutEdge inserts an edge with an explicit ID (used by loaders).
func (g *Graph) PutEdge(id ID, labels []string, src, dst ID, props map[string]Value) error {
	if _, dup := g.edgeIdx[id]; dup {
		return fmt.Errorf("pg: duplicate edge id %d", id)
	}
	if !g.allowDang {
		if _, ok := g.nodeIdx[src]; !ok {
			return fmt.Errorf("pg: edge source node %d not found", src)
		}
		if _, ok := g.nodeIdx[dst]; !ok {
			return fmt.Errorf("pg: edge target node %d not found", dst)
		}
	}
	g.putEdge(id, labels, src, dst, props)
	if id >= g.nextEdge {
		g.nextEdge = id + 1
	}
	return nil
}

func (g *Graph) putEdge(id ID, labels []string, src, dst ID, props map[string]Value) {
	ls := append([]string(nil), labels...)
	sort.Strings(ls)
	if props == nil {
		props = map[string]Value{}
	}
	g.edgeIdx[id] = len(g.edges)
	g.edges = append(g.edges, Edge{ID: id, Labels: ls, Src: src, Dst: dst, Props: props})
}

// RemoveNode deletes a node by ID, reporting whether it was present.
// The hole is filled by swapping the last node in, so insertion order
// is not preserved. Edges are not touched — this exists for the
// label-only bookkeeping graphs (stream and service resolvers), which
// must drop entries when elements are retracted or they grow without
// bound under churn.
func (g *Graph) RemoveNode(id ID) bool {
	i, ok := g.nodeIdx[id]
	if !ok {
		return false
	}
	last := len(g.nodes) - 1
	if i != last {
		g.nodes[i] = g.nodes[last]
		g.nodeIdx[g.nodes[i].ID] = i
	}
	g.nodes = g.nodes[:last]
	delete(g.nodeIdx, id)
	return true
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Node returns the node with the given ID, or nil if absent.
func (g *Graph) Node(id ID) *Node {
	i, ok := g.nodeIdx[id]
	if !ok {
		return nil
	}
	return &g.nodes[i]
}

// Edge returns the edge with the given ID, or nil if absent.
func (g *Graph) Edge(id ID) *Edge {
	i, ok := g.edgeIdx[id]
	if !ok {
		return nil
	}
	return &g.edges[i]
}

// Nodes returns the node slice in insertion order. Callers must not
// append to it; element mutation is permitted for in-place transforms
// such as noise injection.
func (g *Graph) Nodes() []Node { return g.nodes }

// Edges returns the edge slice in insertion order, with the same
// aliasing rules as Nodes.
func (g *Graph) Edges() []Edge { return g.edges }

// SrcLabels returns the label set of the edge's source node when it is
// resolvable in this graph, or nil otherwise (dangling endpoints in a
// batch).
func (g *Graph) SrcLabels(e *Edge) []string {
	if n := g.Node(e.Src); n != nil {
		return n.Labels
	}
	return nil
}

// DstLabels returns the label set of the edge's target node, or nil.
func (g *Graph) DstLabels(e *Edge) []string {
	if n := g.Node(e.Dst); n != nil {
		return n.Labels
	}
	return nil
}

// Clone returns a deep copy of the graph. Noise-injection experiments
// clone the clean dataset once per configuration.
func (g *Graph) Clone() *Graph {
	c := NewGraph()
	c.allowDang = g.allowDang
	c.nextNode, c.nextEdge = g.nextNode, g.nextEdge
	c.nodes = make([]Node, len(g.nodes))
	c.edges = make([]Edge, len(g.edges))
	for i, n := range g.nodes {
		cp := n
		cp.Labels = append([]string(nil), n.Labels...)
		cp.Props = make(map[string]Value, len(n.Props))
		for k, v := range n.Props {
			cp.Props[k] = v
		}
		c.nodes[i] = cp
		c.nodeIdx[n.ID] = i
	}
	for i, e := range g.edges {
		cp := e
		cp.Labels = append([]string(nil), e.Labels...)
		cp.Props = make(map[string]Value, len(e.Props))
		for k, v := range e.Props {
			cp.Props[k] = v
		}
		c.edges[i] = cp
		c.edgeIdx[e.ID] = i
	}
	return c
}

// DistinctNodeLabels returns the sorted set of individual labels that
// appear on at least one node.
func (g *Graph) DistinctNodeLabels() []string {
	set := map[string]struct{}{}
	for i := range g.nodes {
		for _, l := range g.nodes[i].Labels {
			set[l] = struct{}{}
		}
	}
	return setToSorted(set)
}

// DistinctEdgeLabels returns the sorted set of individual labels that
// appear on at least one edge.
func (g *Graph) DistinctEdgeLabels() []string {
	set := map[string]struct{}{}
	for i := range g.edges {
		for _, l := range g.edges[i].Labels {
			set[l] = struct{}{}
		}
	}
	return setToSorted(set)
}

// DistinctNodePropertyKeys returns the sorted global node property key
// set K_n (§4.1), which fixes the binary-vector layout.
func (g *Graph) DistinctNodePropertyKeys() []string {
	set := map[string]struct{}{}
	for i := range g.nodes {
		for k := range g.nodes[i].Props {
			set[k] = struct{}{}
		}
	}
	return setToSorted(set)
}

// DistinctEdgePropertyKeys returns the sorted global edge property key
// set K_e (§4.1).
func (g *Graph) DistinctEdgePropertyKeys() []string {
	set := map[string]struct{}{}
	for i := range g.edges {
		for k := range g.edges[i].Props {
			set[k] = struct{}{}
		}
	}
	return setToSorted(set)
}

func setToSorted(set map[string]struct{}) []string {
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
