package pg

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// jsonElement is the JSONL wire form of one node or edge. Property
// values are written with an explicit type tag so round-trips preserve
// kinds exactly; untagged plain JSON values (strings, numbers,
// booleans) are also accepted on input — JSON strings are inferred
// with the ParseLexical priority rules, numbers map to int or float,
// booleans to bool.
type jsonElement struct {
	Kind   string               `json:"kind"` // "node" | "edge"
	ID     int64                `json:"id"`
	Labels []string             `json:"labels,omitempty"`
	Src    int64                `json:"src,omitempty"`
	Dst    int64                `json:"dst,omitempty"`
	Props  map[string]jsonValue `json:"props,omitempty"`
}

type jsonValue struct {
	T string `json:"t"`
	V string `json:"v"`
}

// tagged distinguishes the object wire form (explicit tag, parsed
// strictly) from an untagged plain JSON scalar (inferred).
type taggedValue struct {
	jsonValue
	untagged Value // set when the wire form was a plain scalar
}

// UnmarshalJSON accepts either the tagged {"t":...,"v":...} object
// form or a plain JSON scalar: strings run through the ParseLexical
// inference rules, numbers become int (no fraction/exponent) or
// float, booleans become bool.
func (tv *taggedValue) UnmarshalJSON(b []byte) error {
	if len(b) == 0 {
		return fmt.Errorf("empty property value")
	}
	switch b[0] {
	case '{':
		return json.Unmarshal(b, &tv.jsonValue)
	case '"':
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		tv.untagged = ParseLexical(s)
		return nil
	case 't', 'f':
		var v bool
		if err := json.Unmarshal(b, &v); err != nil {
			return err
		}
		tv.untagged = Bool(v)
		return nil
	case 'n': // null
		return fmt.Errorf("null is not a valid property value")
	default:
		var n json.Number
		if err := json.Unmarshal(b, &n); err != nil {
			return err
		}
		if i, err := n.Int64(); err == nil {
			tv.untagged = Int(i)
			return nil
		}
		f, err := n.Float64()
		if err != nil {
			return err
		}
		tv.untagged = Float(f)
		return nil
	}
}

func toJSONValue(v Value) jsonValue {
	var t string
	switch v.Kind() {
	case KindInt:
		t = "int"
	case KindFloat:
		t = "float"
	case KindBool:
		t = "bool"
	case KindDate:
		t = "date"
	case KindDateTime:
		t = "datetime"
	default:
		t = "string"
	}
	return jsonValue{T: t, V: v.Lexical()}
}

// fromJSONValue parses a tagged wire value strictly per its type tag:
// a value whose lexical form does not belong to the tagged kind is a
// tag/value mismatch error, never silently re-inferred — so kinds
// survive round-trips exactly (a "float" 5 stays DOUBLE, it does not
// collapse to INT via lexical inference).
func fromJSONValue(jv jsonValue) (Value, error) {
	switch jv.T {
	case "int":
		i, err := strconv.ParseInt(jv.V, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("value %q does not match type tag \"int\"", jv.V)
		}
		return Int(i), nil
	case "float":
		f, err := strconv.ParseFloat(jv.V, 64)
		if err != nil {
			return Value{}, fmt.Errorf("value %q does not match type tag \"float\"", jv.V)
		}
		return Float(f), nil
	case "bool":
		switch jv.V {
		case "true":
			return Bool(true), nil
		case "false":
			return Bool(false), nil
		}
		return Value{}, fmt.Errorf("value %q does not match type tag \"bool\"", jv.V)
	case "date":
		t, err := time.Parse("2006-01-02", jv.V)
		if err != nil {
			return Value{}, fmt.Errorf("value %q does not match type tag \"date\"", jv.V)
		}
		return Date(t), nil
	case "datetime":
		if t, err := time.Parse(time.RFC3339, jv.V); err == nil {
			return DateTime(t), nil
		}
		if t, err := time.Parse("2006-01-02 15:04:05", jv.V); err == nil {
			return DateTime(t), nil
		}
		return Value{}, fmt.Errorf("value %q does not match type tag \"datetime\"", jv.V)
	case "string", "":
		// The tagless object form {"v":"..."} has always meant string
		// (only plain JSON scalars go through inference), so existing
		// hand-written files keep their kinds.
		return Str(jv.V), nil
	default:
		return Value{}, fmt.Errorf("unknown value type tag %q", jv.T)
	}
}

// WriteJSONL serializes the graph as one JSON object per line: all
// nodes first, then all edges. The format is the library's native
// interchange format for the CLI, and the nodes-before-edges order is
// what makes streamed re-ingestion (JSONLStream) resolve every edge
// endpoint from elements already seen.
func WriteJSONL(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range g.Nodes() {
		n := &g.Nodes()[i]
		el := jsonElement{Kind: "node", ID: int64(n.ID), Labels: n.Labels}
		if len(n.Props) > 0 {
			el.Props = make(map[string]jsonValue, len(n.Props))
			for k, v := range n.Props {
				el.Props[k] = toJSONValue(v)
			}
		}
		if err := enc.Encode(&el); err != nil {
			return err
		}
	}
	for i := range g.Edges() {
		e := &g.Edges()[i]
		el := jsonElement{Kind: "edge", ID: int64(e.ID), Labels: e.Labels,
			Src: int64(e.Src), Dst: int64(e.Dst)}
		if len(e.Props) > 0 {
			el.Props = make(map[string]jsonValue, len(e.Props))
			for k, v := range e.Props {
				el.Props[k] = toJSONValue(v)
			}
		}
		if err := enc.Encode(&el); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// jsonlElement is one decoded JSONL line: the raw wire element plus
// its properties converted to typed values.
type jsonlElement struct {
	kind   string // "node" | "edge"
	id     ID
	labels []string
	src    ID
	dst    ID
	props  map[string]Value
}

// jsonlDecoder decodes the JSONL wire format one element at a time,
// tracking line numbers for errors. It is the single record→element
// decoding path shared by the one-shot loader (ReadJSONL) and the
// streaming loader (JSONLStream), so both accept exactly the same
// inputs and reject exactly the same malformed lines.
type jsonlDecoder struct {
	sc   *bufio.Scanner
	line int
}

func newJSONLDecoder(r io.Reader) *jsonlDecoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	return &jsonlDecoder{sc: sc}
}

// next decodes the next non-empty line, or returns io.EOF at the end
// of the stream. Errors carry the 1-based line number.
func (d *jsonlDecoder) next() (jsonlElement, error) {
	for d.sc.Scan() {
		d.line++
		raw := d.sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var el struct {
			Kind   string                 `json:"kind"`
			ID     int64                  `json:"id"`
			Labels []string               `json:"labels"`
			Src    int64                  `json:"src"`
			Dst    int64                  `json:"dst"`
			Props  map[string]taggedValue `json:"props"`
		}
		if err := json.Unmarshal(raw, &el); err != nil {
			return jsonlElement{}, fmt.Errorf("pg: line %d: %w", d.line, err)
		}
		out := jsonlElement{
			kind:   el.Kind,
			id:     ID(el.ID),
			labels: el.Labels,
			src:    ID(el.Src),
			dst:    ID(el.Dst),
		}
		if el.Kind != "node" && el.Kind != "edge" {
			return jsonlElement{}, fmt.Errorf("pg: line %d: unknown element kind %q", d.line, el.Kind)
		}
		if len(el.Props) > 0 {
			out.props = make(map[string]Value, len(el.Props))
			for k, tv := range el.Props {
				if tv.untagged.IsValid() {
					out.props[k] = tv.untagged
					continue
				}
				v, err := fromJSONValue(tv.jsonValue)
				if err != nil {
					return jsonlElement{}, fmt.Errorf("pg: line %d, property %q: %w", d.line, k, err)
				}
				out.props[k] = v
			}
		}
		return out, nil
	}
	if err := d.sc.Err(); err != nil {
		return jsonlElement{}, err
	}
	return jsonlElement{}, io.EOF
}

// addTo inserts a decoded element into the graph, wrapping insertion
// errors (duplicate IDs, missing endpoints) with the source line.
func (d *jsonlDecoder) addTo(g *Graph, el jsonlElement) error {
	var err error
	switch el.kind {
	case "node":
		err = g.PutNode(el.id, el.labels, el.props)
	case "edge":
		err = g.PutEdge(el.id, el.labels, el.src, el.dst, el.props)
	}
	if err != nil {
		return fmt.Errorf("pg: line %d: %w", d.line, err)
	}
	return nil
}

// ReadJSONL parses a JSONL stream produced by WriteJSONL (or
// hand-written in the same shape) into a new Graph. Edges may appear
// before their endpoints; dangling edges are accepted during the read
// and validated afterwards unless allowDangling is set.
func ReadJSONL(r io.Reader, allowDangling bool) (*Graph, error) {
	g := NewGraph()
	g.AllowDanglingEdges(true)
	dec := newJSONLDecoder(r)
	for {
		el, err := dec.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := dec.addTo(g, el); err != nil {
			return nil, err
		}
	}
	if !allowDangling {
		for i := range g.Edges() {
			e := &g.Edges()[i]
			if g.Node(e.Src) == nil {
				return nil, fmt.Errorf("pg: edge %d references missing source node %d", e.ID, e.Src)
			}
			if g.Node(e.Dst) == nil {
				return nil, fmt.Errorf("pg: edge %d references missing target node %d", e.ID, e.Dst)
			}
		}
		g.AllowDanglingEdges(false)
	}
	return g, nil
}
