package pg

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// jsonElement is the JSONL wire form of one node or edge. Property
// values are written with an explicit type tag so round-trips preserve
// kinds exactly; untagged plain JSON values are also accepted on input
// and inferred with ParseLexical-equivalent rules.
type jsonElement struct {
	Kind   string               `json:"kind"` // "node" | "edge"
	ID     int64                `json:"id"`
	Labels []string             `json:"labels,omitempty"`
	Src    int64                `json:"src,omitempty"`
	Dst    int64                `json:"dst,omitempty"`
	Props  map[string]jsonValue `json:"props,omitempty"`
}

type jsonValue struct {
	T string `json:"t"`
	V string `json:"v"`
}

func toJSONValue(v Value) jsonValue {
	var t string
	switch v.Kind() {
	case KindInt:
		t = "int"
	case KindFloat:
		t = "float"
	case KindBool:
		t = "bool"
	case KindDate:
		t = "date"
	case KindDateTime:
		t = "datetime"
	default:
		t = "string"
	}
	return jsonValue{T: t, V: v.Lexical()}
}

func fromJSONValue(jv jsonValue) (Value, error) {
	switch jv.T {
	case "int", "float", "bool", "date", "datetime":
		v := ParseLexical(jv.V)
		return v, nil
	case "string", "":
		return Str(jv.V), nil
	default:
		return Value{}, fmt.Errorf("pg: unknown value type tag %q", jv.T)
	}
}

// WriteJSONL serializes the graph as one JSON object per line: all
// nodes first, then all edges. The format is the library's native
// interchange format for the CLI.
func WriteJSONL(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range g.Nodes() {
		n := &g.Nodes()[i]
		el := jsonElement{Kind: "node", ID: int64(n.ID), Labels: n.Labels}
		if len(n.Props) > 0 {
			el.Props = make(map[string]jsonValue, len(n.Props))
			for k, v := range n.Props {
				el.Props[k] = toJSONValue(v)
			}
		}
		if err := enc.Encode(&el); err != nil {
			return err
		}
	}
	for i := range g.Edges() {
		e := &g.Edges()[i]
		el := jsonElement{Kind: "edge", ID: int64(e.ID), Labels: e.Labels,
			Src: int64(e.Src), Dst: int64(e.Dst)}
		if len(e.Props) > 0 {
			el.Props = make(map[string]jsonValue, len(e.Props))
			for k, v := range e.Props {
				el.Props[k] = toJSONValue(v)
			}
		}
		if err := enc.Encode(&el); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL stream produced by WriteJSONL (or
// hand-written in the same shape) into a new Graph. Edges may appear
// before their endpoints; dangling edges are accepted during the read
// and validated afterwards unless allowDangling is set.
func ReadJSONL(r io.Reader, allowDangling bool) (*Graph, error) {
	g := NewGraph()
	g.AllowDanglingEdges(true)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var el jsonElement
		if err := json.Unmarshal(raw, &el); err != nil {
			return nil, fmt.Errorf("pg: line %d: %w", line, err)
		}
		props := make(map[string]Value, len(el.Props))
		for k, jv := range el.Props {
			v, err := fromJSONValue(jv)
			if err != nil {
				return nil, fmt.Errorf("pg: line %d, property %q: %w", line, k, err)
			}
			props[k] = v
		}
		switch el.Kind {
		case "node":
			if err := g.PutNode(ID(el.ID), el.Labels, props); err != nil {
				return nil, fmt.Errorf("pg: line %d: %w", line, err)
			}
		case "edge":
			if err := g.PutEdge(ID(el.ID), el.Labels, ID(el.Src), ID(el.Dst), props); err != nil {
				return nil, fmt.Errorf("pg: line %d: %w", line, err)
			}
		default:
			return nil, fmt.Errorf("pg: line %d: unknown element kind %q", line, el.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !allowDangling {
		for i := range g.Edges() {
			e := &g.Edges()[i]
			if g.Node(e.Src) == nil {
				return nil, fmt.Errorf("pg: edge %d references missing source node %d", e.ID, e.Src)
			}
			if g.Node(e.Dst) == nil {
				return nil, fmt.Errorf("pg: edge %d references missing target node %d", e.ID, e.Dst)
			}
		}
		g.AllowDanglingEdges(false)
	}
	return g, nil
}
