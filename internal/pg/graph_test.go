package pg

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func buildExampleGraph(t *testing.T) (*Graph, map[string]ID) {
	t.Helper()
	g := NewGraph()
	ids := map[string]ID{}
	ids["bob"] = g.AddNode([]string{"Person"}, map[string]Value{
		"name": Str("Bob"), "gender": Str("male"), "bday": Str("2/5/1980"),
	})
	ids["alice"] = g.AddNode(nil, map[string]Value{
		"name": Str("Alice"), "gender": Str("female"), "bday": Str("19/12/1999"),
	})
	ids["john"] = g.AddNode([]string{"Person"}, map[string]Value{
		"name": Str("John"), "gender": Str("male"), "bday": Str("24/9/2005"),
	})
	ids["post1"] = g.AddNode([]string{"Post"}, map[string]Value{"imgFile": Str("screenshot.png")})
	ids["post2"] = g.AddNode([]string{"Post"}, map[string]Value{"content": Str("bazinga!")})
	ids["org"] = g.AddNode([]string{"Org."}, map[string]Value{"url": Str("example.com"), "name": Str("Example")})
	ids["place"] = g.AddNode([]string{"Place"}, map[string]Value{"name": Str("Greece")})

	mustEdge := func(labels []string, src, dst ID, props map[string]Value) {
		if _, err := g.AddEdge(labels, src, dst, props); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	mustEdge([]string{"KNOWS"}, ids["alice"], ids["john"], map[string]Value{"since": Int(2025)})
	mustEdge([]string{"KNOWS"}, ids["bob"], ids["alice"], nil)
	mustEdge([]string{"LIKES"}, ids["john"], ids["post2"], nil)
	mustEdge([]string{"LIKES"}, ids["alice"], ids["post1"], nil)
	mustEdge([]string{"WORKS_AT"}, ids["bob"], ids["org"], map[string]Value{"from": Int(2000)})
	mustEdge([]string{"LOCATED_IN"}, ids["org"], ids["place"], nil)
	mustEdge([]string{"LOCATED_IN"}, ids["john"], ids["place"], map[string]Value{"from": Int(2025)})
	return g, ids
}

func TestGraphBasics(t *testing.T) {
	g, ids := buildExampleGraph(t)
	if g.NumNodes() != 7 {
		t.Fatalf("NumNodes = %d, want 7", g.NumNodes())
	}
	if g.NumEdges() != 7 {
		t.Fatalf("NumEdges = %d, want 7", g.NumEdges())
	}
	bob := g.Node(ids["bob"])
	if bob == nil || bob.LabelToken() != "Person" {
		t.Fatalf("bob lookup failed: %+v", bob)
	}
	if g.Node(999) != nil {
		t.Fatal("lookup of absent node must return nil")
	}
	if g.Edge(999) != nil {
		t.Fatal("lookup of absent edge must return nil")
	}
}

func TestAddEdgeValidatesEndpoints(t *testing.T) {
	g := NewGraph()
	n := g.AddNode([]string{"A"}, nil)
	if _, err := g.AddEdge([]string{"R"}, n, 42, nil); err == nil {
		t.Fatal("expected error for missing target")
	}
	if _, err := g.AddEdge([]string{"R"}, 42, n, nil); err == nil {
		t.Fatal("expected error for missing source")
	}
	g.AllowDanglingEdges(true)
	if _, err := g.AddEdge([]string{"R"}, 42, 43, nil); err != nil {
		t.Fatalf("dangling edges should be allowed after opt-in: %v", err)
	}
}

func TestPutDuplicateIDs(t *testing.T) {
	g := NewGraph()
	if err := g.PutNode(1, []string{"A"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := g.PutNode(1, []string{"B"}, nil); err == nil {
		t.Fatal("duplicate node id must error")
	}
	if err := g.PutNode(5, nil, nil); err != nil {
		t.Fatal(err)
	}
	// AddNode must not collide with explicit IDs.
	id := g.AddNode(nil, nil)
	if id <= 5 {
		t.Fatalf("AddNode returned colliding id %d", id)
	}
	if err := g.PutEdge(1, []string{"R"}, 1, 5, nil); err != nil {
		t.Fatal(err)
	}
	if err := g.PutEdge(1, []string{"R"}, 1, 5, nil); err == nil {
		t.Fatal("duplicate edge id must error")
	}
}

func TestLabelToken(t *testing.T) {
	cases := []struct {
		in   []string
		want string
	}{
		{nil, ""},
		{[]string{"Person"}, "Person"},
		{[]string{"Student", "Person"}, "Person&Student"},
		{[]string{"b", "a", "c"}, "a&b&c"},
	}
	for _, c := range cases {
		if got := LabelToken(c.in); got != c.want {
			t.Errorf("LabelToken(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Property: LabelToken is order-invariant — any permutation of the
// same label set yields the same token (§4.1: labels are sorted for
// uniformity).
func TestLabelTokenOrderInvariance(t *testing.T) {
	f := func(perm []int) bool {
		labels := []string{"Person", "Student", "Athlete", "Employee"}
		shuffled := append([]string(nil), labels...)
		r := rand.New(rand.NewSource(int64(len(perm))))
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		return LabelToken(shuffled) == LabelToken(labels)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistinctSets(t *testing.T) {
	g, _ := buildExampleGraph(t)
	wantNL := []string{"Org.", "Person", "Place", "Post"}
	if got := g.DistinctNodeLabels(); !reflect.DeepEqual(got, wantNL) {
		t.Errorf("DistinctNodeLabels = %v, want %v", got, wantNL)
	}
	wantEL := []string{"KNOWS", "LIKES", "LOCATED_IN", "WORKS_AT"}
	if got := g.DistinctEdgeLabels(); !reflect.DeepEqual(got, wantEL) {
		t.Errorf("DistinctEdgeLabels = %v, want %v", got, wantEL)
	}
	wantNK := []string{"bday", "content", "gender", "imgFile", "name", "url"}
	if got := g.DistinctNodePropertyKeys(); !reflect.DeepEqual(got, wantNK) {
		t.Errorf("DistinctNodePropertyKeys = %v, want %v", got, wantNK)
	}
	wantEK := []string{"from", "since"}
	if got := g.DistinctEdgePropertyKeys(); !reflect.DeepEqual(got, wantEK) {
		t.Errorf("DistinctEdgePropertyKeys = %v, want %v", got, wantEK)
	}
}

// TestStatsMatchesPaperExample checks ComputeStats against the
// worked example of the paper (Fig. 1 / Example 2): 6 node patterns
// and 6 edge patterns.
func TestStatsMatchesPaperExample(t *testing.T) {
	g, _ := buildExampleGraph(t)
	s := ComputeStats(g)
	if s.Nodes != 7 || s.Edges != 7 {
		t.Fatalf("element counts: %+v", s)
	}
	if s.NodePatterns != 6 {
		t.Errorf("NodePatterns = %d, want 6 (Example 2)", s.NodePatterns)
	}
	// Example 2 lists 6 edge patterns by treating the unlabeled Alice
	// node as Person; at the raw-data level her empty label set splits
	// the KNOWS-{since} and LIKES patterns, giving 7 distinct
	// (L, K, R) tuples.
	if s.EdgePatterns != 7 {
		t.Errorf("EdgePatterns = %d, want 7", s.EdgePatterns)
	}
	if s.NodeLabels != 4 || s.EdgeLabels != 4 {
		t.Errorf("label counts: %+v", s)
	}
}

func TestClone(t *testing.T) {
	g, ids := buildExampleGraph(t)
	c := g.Clone()
	// Mutating the clone must not leak into the original.
	cb := c.Node(ids["bob"])
	cb.Props["name"] = Str("Robert")
	cb.Labels[0] = "Human"
	if g.Node(ids["bob"]).Props["name"].AsString() != "Bob" {
		t.Error("clone shares property map with original")
	}
	if g.Node(ids["bob"]).Labels[0] != "Person" {
		t.Error("clone shares label slice with original")
	}
	if c.NumNodes() != g.NumNodes() || c.NumEdges() != g.NumEdges() {
		t.Error("clone lost elements")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	g, _ := buildExampleGraph(t)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round-trip lost elements: %d/%d nodes, %d/%d edges",
			got.NumNodes(), g.NumNodes(), got.NumEdges(), g.NumEdges())
	}
	for i := range g.Nodes() {
		want := &g.Nodes()[i]
		have := got.Node(want.ID)
		if have == nil {
			t.Fatalf("node %d missing after round-trip", want.ID)
		}
		if !reflect.DeepEqual(have.Labels, want.Labels) {
			t.Errorf("node %d labels %v != %v", want.ID, have.Labels, want.Labels)
		}
		if len(have.Props) != len(want.Props) {
			t.Errorf("node %d props count %d != %d", want.ID, len(have.Props), len(want.Props))
		}
		for k, v := range want.Props {
			if !have.Props[k].Equal(v) {
				t.Errorf("node %d prop %q: %#v != %#v", want.ID, k, have.Props[k], v)
			}
		}
	}
	if !reflect.DeepEqual(ComputeStats(got), ComputeStats(g)) {
		t.Errorf("stats differ after round-trip:\n got %+v\nwant %+v", ComputeStats(got), ComputeStats(g))
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(bytes.NewBufferString("{bad json"), false); err == nil {
		t.Error("malformed JSON must error")
	}
	if _, err := ReadJSONL(bytes.NewBufferString(`{"kind":"widget","id":1}`+"\n"), false); err == nil {
		t.Error("unknown kind must error")
	}
	dangling := `{"kind":"edge","id":1,"labels":["R"],"src":10,"dst":11}` + "\n"
	if _, err := ReadJSONL(bytes.NewBufferString(dangling), false); err == nil {
		t.Error("dangling edge must error without opt-in")
	}
	if _, err := ReadJSONL(bytes.NewBufferString(dangling), true); err != nil {
		t.Errorf("dangling edge should load with opt-in: %v", err)
	}
}

func TestSplitBatchesPartition(t *testing.T) {
	g, _ := buildExampleGraph(t)
	rng := rand.New(rand.NewSource(7))
	batches := SplitBatches(g, 3, rng)
	if len(batches) != 3 {
		t.Fatalf("want 3 batches, got %d", len(batches))
	}
	nodeSeen := map[ID]int{}
	edgeSeen := map[ID]int{}
	for _, b := range batches {
		for i := range b.Graph.Nodes() {
			nodeSeen[b.Graph.Nodes()[i].ID]++
		}
		for i := range b.Graph.Edges() {
			edgeSeen[b.Graph.Edges()[i].ID]++
		}
	}
	if len(nodeSeen) != g.NumNodes() {
		t.Errorf("partition lost nodes: %d != %d", len(nodeSeen), g.NumNodes())
	}
	if len(edgeSeen) != g.NumEdges() {
		t.Errorf("partition lost edges: %d != %d", len(edgeSeen), g.NumEdges())
	}
	for id, n := range nodeSeen {
		if n != 1 {
			t.Errorf("node %d appears in %d batches", id, n)
		}
	}
	for id, n := range edgeSeen {
		if n != 1 {
			t.Errorf("edge %d appears in %d batches", id, n)
		}
	}
}

// Property: for any batch count, SplitBatches is a partition and each
// batch's resolver can resolve the labels of every edge endpoint that
// has been delivered up to and including that batch.
func TestSplitBatchesResolverProperty(t *testing.T) {
	g, _ := buildExampleGraph(t)
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%9) + 1
		batches := SplitBatches(g, n, rand.New(rand.NewSource(seed)))
		total := 0
		for _, b := range batches {
			total += b.Graph.NumNodes()
			// Every node delivered so far must be resolvable.
			for i := range b.Graph.Nodes() {
				id := b.Graph.Nodes()[i].ID
				if b.Resolver.Node(id) == nil {
					return false
				}
			}
		}
		// The final resolver holds the whole node set.
		last := batches[len(batches)-1]
		return total == g.NumNodes() && last.Resolver.NumNodes() == g.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEndpointLabelsAcrossBatches(t *testing.T) {
	g, _ := buildExampleGraph(t)
	for seed := int64(0); seed < 5; seed++ {
		batches := SplitBatches(g, 4, rand.New(rand.NewSource(seed)))
		for _, b := range batches {
			for i := range b.Graph.Edges() {
				e := &b.Graph.Edges()[i]
				src, dst := b.EndpointLabels(e)
				wantSrc := g.Node(e.Src).Labels
				wantDst := g.Node(e.Dst).Labels
				// An endpoint delivered in a *later* batch is allowed
				// to be unresolvable; one delivered earlier or in this
				// batch must resolve exactly.
				if src != nil && !reflect.DeepEqual(src, wantSrc) {
					t.Fatalf("seed %d: src labels %v, want %v", seed, src, wantSrc)
				}
				if dst != nil && !reflect.DeepEqual(dst, wantDst) {
					t.Fatalf("seed %d: dst labels %v, want %v", seed, dst, wantDst)
				}
			}
		}
	}
}
