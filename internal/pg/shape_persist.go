package pg

import (
	"bytes"
	"fmt"
	"sort"
)

// shape_persist.go externalizes a ShapeCache so a checkpointed
// incremental discovery resumes with a warm cache: the fingerprints,
// label tokens, and lazily built MinHash item sets survive the round
// trip, and a shape re-seen after restore costs one map lookup again
// instead of a rebuild. The cache is semantically a pure memo — shape
// tokens and item sets are functions of the fingerprinted element —
// so restoring it never changes discovery output, only its cost.

// ShapeEntry is one persisted shape: its injective fingerprint key
// (see appendNodeShapeKey / appendEdgeShapeKey) plus the cached
// derivations. Key is raw bytes; JSON encodes it as base64.
type ShapeEntry struct {
	Key   []byte   `json:"key"`
	Token string   `json:"token,omitempty"`
	Items []string `json:"items,omitempty"`
}

// Export returns every registered shape in deterministic (byte-wise
// fingerprint) order, so identical caches serialize identically.
func (c *ShapeCache) Export() []ShapeEntry {
	out := make([]ShapeEntry, 0, len(c.shapes))
	for k, sh := range c.shapes {
		out = append(out, ShapeEntry{Key: []byte(k), Token: sh.Token, Items: sh.Items})
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i].Key, out[j].Key) < 0 })
	return out
}

// RestoreShapeCache rebuilds a cache from exported entries. Duplicate
// keys are rejected — a checkpoint cannot legitimately contain two
// shapes with the same injective fingerprint.
func RestoreShapeCache(entries []ShapeEntry) (*ShapeCache, error) {
	c := NewShapeCache()
	for _, e := range entries {
		k := string(e.Key)
		if _, dup := c.shapes[k]; dup {
			return nil, fmt.Errorf("pg: duplicate shape fingerprint %q in checkpoint", k)
		}
		c.shapes[k] = &Shape{Token: e.Token, Items: e.Items}
	}
	return c, nil
}
