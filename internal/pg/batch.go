package pg

import "math/rand"

// Batch is one increment of a property-graph stream (§4.6): the nodes
// and edges that arrived together. Edges in a batch may reference
// nodes delivered in earlier batches, so Batch graphs allow dangling
// endpoints; SrcLabels/DstLabels resolve against the Resolver when the
// endpoint is not local.
type Batch struct {
	// Graph holds the batch's own nodes and edges.
	Graph *Graph
	// Resolver resolves endpoint nodes that arrived in earlier
	// batches. It may be nil for the first batch.
	Resolver *Graph
	// Index is the 1-based position of the batch in the stream.
	Index int
}

// EndpointLabels returns the label sets of the edge's endpoints,
// looking first in the batch itself and then in the resolver graph.
func (b *Batch) EndpointLabels(e *Edge) (src, dst []string) {
	src = b.Graph.SrcLabels(e)
	if src == nil && b.Resolver != nil {
		src = b.Resolver.SrcLabels(e)
	}
	dst = b.Graph.DstLabels(e)
	if dst == nil && b.Resolver != nil {
		dst = b.Resolver.DstLabels(e)
	}
	return src, dst
}

// SplitBatches partitions the graph into n random batches, the way the
// paper's incremental experiment does ("we randomly separate the graph
// into 10 batches", §5). Every node and edge lands in exactly one
// batch; edges are assigned independently of their endpoints, so
// batches routinely contain dangling edges, which is exactly the
// streaming condition the incremental pipeline must tolerate. The
// returned batches share no structure with g other than the property
// maps, and each Resolver is the accumulated union of all earlier
// batches plus the batch itself.
func SplitBatches(g *Graph, n int, rng *rand.Rand) []*Batch {
	if n < 1 {
		n = 1
	}
	nodeAssign := make([]int, g.NumNodes())
	for i := range nodeAssign {
		nodeAssign[i] = rng.Intn(n)
	}
	edgeAssign := make([]int, g.NumEdges())
	for i := range edgeAssign {
		edgeAssign[i] = rng.Intn(n)
	}

	batches := make([]*Batch, n)
	acc := NewGraph()
	acc.AllowDanglingEdges(true)
	for b := 0; b < n; b++ {
		bg := NewGraph()
		bg.AllowDanglingEdges(true)
		batches[b] = &Batch{Graph: bg, Resolver: acc, Index: b + 1}
	}
	nodes := g.Nodes()
	for i := range nodes {
		b := nodeAssign[i]
		n := &nodes[i]
		_ = batches[b].Graph.PutNode(n.ID, n.Labels, n.Props)
	}
	edges := g.Edges()
	for i := range edges {
		b := edgeAssign[i]
		e := &edges[i]
		_ = batches[b].Graph.PutEdge(e.ID, e.Labels, e.Src, e.Dst, e.Props)
	}
	// The resolver for batch i must contain everything up to and
	// including batch i, so endpoint labels of intra-batch edges
	// resolve too. Build cumulative graphs.
	for b := 0; b < n; b++ {
		for i := range batches[b].Graph.Nodes() {
			nd := &batches[b].Graph.Nodes()[i]
			_ = acc.PutNode(nd.ID, nd.Labels, nd.Props)
		}
		cum := acc.Clone()
		batches[b].Resolver = cum
	}
	return batches
}
