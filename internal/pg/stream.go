package pg

import (
	"fmt"
	"io"
)

// DefaultStreamBatchSize is the batch size a StreamReader uses when
// the caller passes one <= 0: large enough to amortize per-batch
// pipeline overhead, small enough that a batch of typical elements
// stays in the tens of megabytes.
const DefaultStreamBatchSize = 8192

// StreamReader yields a property graph as a sequence of bounded
// batches, the ingestion form of the incremental pipeline (§4.6):
// instead of materializing the whole graph before discovery starts,
// the reader holds one batch of fully decoded elements at a time plus
// the cross-batch endpoint bookkeeping that dangling-edge resolution
// needs.
//
// Contract:
//   - Next returns the next *Batch, or (nil, io.EOF) once the stream
//     is exhausted. After any non-EOF error the reader is broken and
//     keeps returning that error.
//   - Each batch carries at most the configured number of elements
//     (nodes plus edges).
//   - Batch.Resolver is the reader's shared bookkeeping graph: it
//     holds a label-only copy (no properties) of every node seen so
//     far — including the current batch's — so edges whose endpoints
//     arrived in earlier batches still resolve their endpoint labels.
//     The reader appends to it on every Next call, so a batch must be
//     consumed before the next one is requested (exactly how
//     Incremental.DrainStream drives it); batches are not safe to
//     process concurrently with further Next calls.
//   - An edge whose endpoint has not streamed yet is dangling; the
//     pipeline falls back to discovered node types for it. Streams
//     written by WriteJSONL (all nodes first) and CSV streams (node
//     files before relationship files) never dangle, which is what
//     makes streamed discovery bit-identical to one-shot discovery.
type StreamReader interface {
	Next() (*Batch, error)
}

// streamState is the bookkeeping shared by the concrete readers: the
// label-only resolver graph, the batch under construction, and the
// batch counter.
type streamState struct {
	batchSize int
	resolver  *Graph
	cur       *Graph
	index     int
}

func newStreamState(batchSize int) streamState {
	if batchSize <= 0 {
		batchSize = DefaultStreamBatchSize
	}
	resolver := NewGraph()
	resolver.AllowDanglingEdges(true)
	s := streamState{batchSize: batchSize, resolver: resolver}
	s.reset()
	return s
}

func (s *streamState) reset() {
	s.cur = NewGraph()
	s.cur.AllowDanglingEdges(true)
}

func (s *streamState) full() bool {
	return s.cur.NumNodes()+s.cur.NumEdges() >= s.batchSize
}

// trackNode records a node in the resolver with its labels only — the
// per-node memory cost of the stream. A duplicate ID here means the
// node already arrived in an earlier batch.
func (s *streamState) trackNode(id ID, labels []string) error {
	return s.resolver.PutNode(id, labels, nil)
}

// Resolver exposes the stream's label-only endpoint bookkeeping: every
// node seen so far, with labels but no properties or edges. Checkpoint
// writers persist it so a resumed stream over the remaining input can
// still resolve edges whose endpoints arrived before the checkpoint.
// The returned graph is owned by the stream; callers must not mutate
// it and must read it only between Next calls.
func (s *streamState) Resolver() *Graph { return s.resolver }

// SeedResolver pre-registers a node in the endpoint bookkeeping, as if
// it had streamed through earlier — how a checkpoint-restored run
// rebuilds the resolver before reading the remaining input. It fails
// on IDs already tracked.
func (s *streamState) SeedResolver(id ID, labels []string) error {
	return s.trackNode(id, labels)
}

// emit hands the accumulated batch out and starts a fresh one. The
// reader keeps no reference to emitted batch graphs, so the consumer's
// release of a batch releases its elements.
func (s *streamState) emit() *Batch {
	s.index++
	b := &Batch{Graph: s.cur, Resolver: s.resolver, Index: s.index}
	s.reset()
	return b
}

// JSONLStream reads the JSONL interchange format (see WriteJSONL) in
// bounded batches. It shares the line decoder with ReadJSONL, so both
// accept the same inputs and report the same line-numbered errors;
// unlike the one-shot loader it never validates dangling edges (an
// endpoint may always arrive in a later batch) and it cannot detect
// edge IDs duplicated across batches — remembering every edge ID is
// exactly the unbounded state streaming exists to avoid. Duplicate
// node IDs are still rejected via the resolver bookkeeping.
type JSONLStream struct {
	dec *jsonlDecoder
	streamState
	err error // sticky terminal state (including io.EOF)
}

// NewJSONLStream returns a streaming reader over r emitting batches of
// at most batchSize elements (<= 0 selects DefaultStreamBatchSize).
func NewJSONLStream(r io.Reader, batchSize int) *JSONLStream {
	return &JSONLStream{dec: newJSONLDecoder(r), streamState: newStreamState(batchSize)}
}

// Next returns the next batch, or (nil, io.EOF) at the end of the
// stream.
func (s *JSONLStream) Next() (*Batch, error) {
	if s.err != nil {
		return nil, s.err
	}
	for !s.full() {
		el, err := s.dec.next()
		if err == io.EOF {
			if s.cur.NumNodes()+s.cur.NumEdges() > 0 {
				s.err = io.EOF
				return s.emit(), nil
			}
			s.err = io.EOF
			return nil, io.EOF
		}
		if err != nil {
			s.err = err
			return nil, err
		}
		if err := s.dec.addTo(s.cur, el); err != nil {
			s.err = err
			return nil, err
		}
		if el.kind == "node" {
			if err := s.trackNode(el.id, el.labels); err != nil {
				// In-batch duplicates error on addTo above; reaching
				// here means the ID arrived in an earlier batch.
				s.err = fmt.Errorf("pg: line %d: %w", s.dec.line, err)
				return nil, s.err
			}
		}
	}
	return s.emit(), nil
}

// CSVStream reads neo4j-admin style bulk CSV files in bounded
// batches: all node sources first, then all relationship sources,
// mirroring how the one-shot CLI path loads them. It shares the
// row decoders with ReadNodesCSV / ReadEdgesCSV. Edge IDs are
// assigned sequentially across the whole stream, so they match the
// one-shot loader's. Endpoints of every edge are validated against
// the resolver (all nodes precede all edges), like the one-shot
// loader validates them against the accumulated graph.
type CSVStream struct {
	nodeSrcs []io.Reader
	edgeSrcs []io.Reader
	nr       *nodeCSVReader
	er       *edgeCSVReader
	nrName   string // current node source, for error provenance
	erName   string
	nodeOrd  int // 1-based ordinal of the current source
	edgeOrd  int
	nextEdge ID
	streamState
	err error
}

// sourceName labels a CSV source for error messages: the file name
// when the reader exposes one (os.File does), else a 1-based ordinal
// — line counters reset per source, so errors must say which file the
// line number belongs to, like the one-shot CLI path does.
func sourceName(r io.Reader, kind string, ordinal int) string {
	if n, ok := r.(interface{ Name() string }); ok {
		return n.Name()
	}
	return fmt.Sprintf("%s csv #%d", kind, ordinal)
}

// NewCSVStream returns a streaming reader over node CSV sources and
// relationship CSV sources (either may be empty), emitting batches of
// at most batchSize elements. Headers are parsed lazily when a source
// is first read.
func NewCSVStream(nodes, edges []io.Reader, batchSize int) *CSVStream {
	return &CSVStream{nodeSrcs: nodes, edgeSrcs: edges, streamState: newStreamState(batchSize)}
}

// SetNextEdgeID overrides the sequential edge-ID counter. CSV rows
// carry no edge IDs, so a checkpoint-resumed stream over the remaining
// relationship rows must continue numbering where the interrupted run
// stopped to keep IDs — and therefore assignments — identical.
func (s *CSVStream) SetNextEdgeID(id ID) { s.nextEdge = id }

// NextEdgeID returns the ID the next decoded relationship row will
// get — the counterpart checkpoint writers persist for SetNextEdgeID.
func (s *CSVStream) NextEdgeID() ID { return s.nextEdge }

// Next returns the next batch, or (nil, io.EOF) at the end of the
// stream.
func (s *CSVStream) Next() (*Batch, error) {
	if s.err != nil {
		return nil, s.err
	}
	for !s.full() {
		if err := s.step(); err != nil {
			s.err = err
			if err == io.EOF && s.cur.NumNodes()+s.cur.NumEdges() > 0 {
				return s.emit(), nil
			}
			return nil, err
		}
	}
	return s.emit(), nil
}

// step decodes one row from the current source, advancing to the next
// source on its EOF; it returns io.EOF once every source is drained.
func (s *CSVStream) step() error {
	// Open the next node source if none is active.
	for s.nr == nil && len(s.nodeSrcs) > 0 {
		src := s.nodeSrcs[0]
		s.nodeSrcs = s.nodeSrcs[1:]
		s.nodeOrd++
		s.nrName = sourceName(src, "node", s.nodeOrd)
		nr, err := newNodeCSVReader(src)
		if err != nil {
			return fmt.Errorf("%s: %w", s.nrName, err)
		}
		s.nr = nr
	}
	if s.nr != nil {
		id, labels, props, err := s.nr.next()
		if err == io.EOF {
			s.nr = nil
			return nil
		}
		if err != nil {
			return fmt.Errorf("%s: %w", s.nrName, err)
		}
		if err := s.cur.PutNode(id, labels, props); err != nil {
			return fmt.Errorf("%s: pg: csv line %d: %w", s.nrName, s.nr.line, err)
		}
		if err := s.trackNode(id, labels); err != nil {
			return fmt.Errorf("%s: pg: csv line %d: %w", s.nrName, s.nr.line, err)
		}
		return nil
	}
	for s.er == nil && len(s.edgeSrcs) > 0 {
		src := s.edgeSrcs[0]
		s.edgeSrcs = s.edgeSrcs[1:]
		s.edgeOrd++
		s.erName = sourceName(src, "relationship", s.edgeOrd)
		er, err := newEdgeCSVReader(src)
		if err != nil {
			return fmt.Errorf("%s: %w", s.erName, err)
		}
		s.er = er
	}
	if s.er != nil {
		src, dst, labels, props, err := s.er.next()
		if err == io.EOF {
			s.er = nil
			return nil
		}
		if err != nil {
			return fmt.Errorf("%s: %w", s.erName, err)
		}
		if s.resolver.Node(src) == nil {
			return fmt.Errorf("%s: pg: csv line %d: edge source node %d not found", s.erName, s.er.line, src)
		}
		if s.resolver.Node(dst) == nil {
			return fmt.Errorf("%s: pg: csv line %d: edge target node %d not found", s.erName, s.er.line, dst)
		}
		if err := s.cur.PutEdge(s.nextEdge, labels, src, dst, props); err != nil {
			return fmt.Errorf("%s: pg: csv line %d: %w", s.erName, s.er.line, err)
		}
		s.nextEdge++
		return nil
	}
	return io.EOF
}
