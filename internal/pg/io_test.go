package pg

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// randomValue draws a value of any kind, biased toward the lexical
// edge cases that used to break round-trips (numeric strings, float
// values with integral lexical forms).
func randomValue(r *rand.Rand) Value {
	switch r.Intn(8) {
	case 0:
		return Int(r.Int63() - r.Int63())
	case 1:
		return Float(r.NormFloat64() * math.Pow(10, float64(r.Intn(20)-10)))
	case 2:
		// Floats whose lexical form looks like an int ("5"): the
		// historical tag-ignoring bug collapsed these to KindInt.
		return Float(float64(r.Intn(1000)))
	case 3:
		return Bool(r.Intn(2) == 0)
	case 4:
		return Date(time.Unix(r.Int63n(4e9), 0))
	case 5:
		return DateTime(time.Unix(r.Int63n(4e9), 0))
	case 6:
		// Strings that look like other kinds must stay strings.
		return Str([]string{"5", "1.5", "true", "2020-01-02", "", "héllo\nworld"}[r.Intn(6)])
	default:
		// Arbitrary valid-UTF-8 strings (JSON cannot carry invalid
		// UTF-8 losslessly, so that is out of the contract's scope).
		rs := make([]rune, r.Intn(12))
		for i := range rs {
			rs[i] = rune(r.Intn(0xD7FF) + 1)
		}
		return Str(string(rs))
	}
}

// Property: every Kind survives Write→Read exactly — the tagged wire
// format preserves both kind and payload for arbitrary values.
func TestJSONLKindFidelity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := NewGraph()
		props := map[string]Value{}
		for i := 0; i < 1+r.Intn(8); i++ {
			props[string(rune('a'+i))] = randomValue(r)
		}
		g.AddNode([]string{"T"}, props)

		var buf bytes.Buffer
		if err := WriteJSONL(&buf, g); err != nil {
			t.Logf("write: %v", err)
			return false
		}
		got, err := ReadJSONL(&buf, false)
		if err != nil {
			t.Logf("read: %v", err)
			return false
		}
		have := got.Node(0)
		if have == nil || len(have.Props) != len(props) {
			return false
		}
		for k, want := range props {
			v := have.Props[k]
			if v.Kind() != want.Kind() {
				t.Logf("prop %q: kind %v -> %v (lexical %q)", k, want.Kind(), v.Kind(), want.Lexical())
				return false
			}
			if !v.Equal(want) {
				t.Logf("prop %q: %#v -> %#v", k, want, v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Regression: the type tag is authoritative. {"t":"float","v":"5"}
// used to round-trip as KindInt via lexical inference, violating the
// "round-trips preserve kinds exactly" contract.
func TestJSONLFloatTagPreserved(t *testing.T) {
	in := `{"kind":"node","id":1,"labels":["T"],"props":{"x":{"t":"float","v":"5"}}}` + "\n"
	g, err := ReadJSONL(strings.NewReader(in), false)
	if err != nil {
		t.Fatal(err)
	}
	v := g.Node(1).Props["x"]
	if v.Kind() != KindFloat {
		t.Fatalf("float tag ignored: got kind %v, want DOUBLE", v.Kind())
	}
	if v.AsFloat() != 5 {
		t.Fatalf("value = %v, want 5", v.AsFloat())
	}
}

// Tag/value mismatches are line-numbered errors, not silent
// re-inference.
func TestJSONLTagMismatchErrors(t *testing.T) {
	cases := []struct {
		name, val string
	}{
		{"int-fraction", `{"t":"int","v":"5.5"}`},
		{"int-text", `{"t":"int","v":"five"}`},
		{"float-text", `{"t":"float","v":"fast"}`},
		{"bool-yes", `{"t":"bool","v":"yes"}`},
		{"bool-one", `{"t":"bool","v":"1"}`},
		{"bool-TRUE", `{"t":"bool","v":"TRUE"}`},
		{"date-malformed", `{"t":"date","v":"not-a-date"}`},
		{"date-datetime", `{"t":"date","v":"2020-01-02T10:00:00Z"}`},
		{"datetime-malformed", `{"t":"datetime","v":"yesterday"}`},
		{"unknown-tag", `{"t":"decimal","v":"5"}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			in := `{"kind":"node","id":1}` + "\n" +
				`{"kind":"node","id":2,"props":{"x":` + c.val + `}}` + "\n"
			_, err := ReadJSONL(strings.NewReader(in), false)
			if err == nil {
				t.Fatalf("value %s must be rejected", c.val)
			}
			if !strings.Contains(err.Error(), "line 2") {
				t.Errorf("error must carry the line number, got: %v", err)
			}
			if !strings.Contains(err.Error(), `"x"`) {
				t.Errorf("error must name the property, got: %v", err)
			}
		})
	}
}

// Untagged plain JSON scalars are accepted: numbers map to int/float,
// booleans to bool, strings go through ParseLexical inference.
func TestJSONLUntaggedValues(t *testing.T) {
	in := `{"kind":"node","id":1,"props":{"i":5,"f":1.25,"b":true,"s":"hello","d":"2020-01-02","e":2e3}}` + "\n"
	g, err := ReadJSONL(strings.NewReader(in), false)
	if err != nil {
		t.Fatal(err)
	}
	p := g.Node(1).Props
	if p["i"].Kind() != KindInt || p["i"].AsInt() != 5 {
		t.Errorf("i = %#v, want Int 5", p["i"])
	}
	if p["f"].Kind() != KindFloat || p["f"].AsFloat() != 1.25 {
		t.Errorf("f = %#v, want Float 1.25", p["f"])
	}
	if p["e"].Kind() != KindFloat || p["e"].AsFloat() != 2000 {
		t.Errorf("e = %#v, want Float 2000", p["e"])
	}
	if p["b"].Kind() != KindBool || !p["b"].AsBool() {
		t.Errorf("b = %#v, want Bool true", p["b"])
	}
	if p["s"].Kind() != KindString || p["s"].AsString() != "hello" {
		t.Errorf("s = %#v, want Str hello", p["s"])
	}
	if p["d"].Kind() != KindDate {
		t.Errorf("d = %#v, want Date (untagged strings run lexical inference)", p["d"])
	}
	if _, err := ReadJSONL(strings.NewReader(`{"kind":"node","id":1,"props":{"x":null}}`+"\n"), false); err == nil {
		t.Error("null property value must be rejected")
	}
}

// The tagless object form {"v":"..."} keeps its historical meaning:
// string, never inference (a hand-written zip code "02134" must not
// collapse to Int(2134)).
func TestJSONLTaglessObjectStaysString(t *testing.T) {
	in := `{"kind":"node","id":1,"props":{"zip":{"v":"02134"}}}` + "\n"
	g, err := ReadJSONL(strings.NewReader(in), false)
	if err != nil {
		t.Fatal(err)
	}
	v := g.Node(1).Props["zip"]
	if v.Kind() != KindString || v.AsString() != "02134" {
		t.Fatalf("tagless object value = %#v, want Str(\"02134\")", v)
	}
}
