package pg

import "strings"

// Stats summarizes a graph the way Table 2 of the paper does: element
// counts, distinct individual labels, and distinct structural patterns
// (Def. 3.5 node patterns (L, K); Def. 3.6 edge patterns (L, K, R)).
type Stats struct {
	Nodes            int
	Edges            int
	NodeLabels       int
	EdgeLabels       int
	NodePropertyKeys int
	EdgePropertyKeys int
	NodePatterns     int
	EdgePatterns     int
}

// ComputeStats scans the graph once and returns its Table-2 style
// statistics.
func ComputeStats(g *Graph) Stats {
	var s Stats
	s.Nodes = g.NumNodes()
	s.Edges = g.NumEdges()
	s.NodeLabels = len(g.DistinctNodeLabels())
	s.EdgeLabels = len(g.DistinctEdgeLabels())
	s.NodePropertyKeys = len(g.DistinctNodePropertyKeys())
	s.EdgePropertyKeys = len(g.DistinctEdgePropertyKeys())

	np := map[string]struct{}{}
	for i := range g.Nodes() {
		n := &g.Nodes()[i]
		np[patternKey(n.LabelToken(), n.PropertyKeys(), "", "")] = struct{}{}
	}
	s.NodePatterns = len(np)

	ep := map[string]struct{}{}
	for i := range g.Edges() {
		e := &g.Edges()[i]
		src := LabelToken(g.SrcLabels(e))
		dst := LabelToken(g.DstLabels(e))
		ep[patternKey(e.LabelToken(), e.PropertyKeys(), src, dst)] = struct{}{}
	}
	s.EdgePatterns = len(ep)
	return s
}

// patternKey builds a canonical string key for a (label-token,
// property-key-set, endpoints) pattern. The separator bytes cannot
// occur in labels produced by the generators or the JSONL loader
// escaping, so the key is collision-free for our inputs.
func patternKey(labelToken string, keys []string, src, dst string) string {
	var b strings.Builder
	b.WriteString(labelToken)
	b.WriteByte(0x1e)
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(0x1f)
		}
		b.WriteString(k)
	}
	b.WriteByte(0x1e)
	b.WriteString(src)
	b.WriteByte(0x1e)
	b.WriteString(dst)
	return b.String()
}
