package pg

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// FuzzReadJSONL hardens the JSONL ingestion path: arbitrary input
// must never panic, and any input the one-shot loader accepts must
// stream identically through JSONLStream (same elements, no error) —
// the two paths share one decoder, and the fuzzer checks nothing has
// diverged around it.
func FuzzReadJSONL(f *testing.F) {
	f.Add(`{"kind":"node","id":1,"labels":["Person"],"props":{"name":{"t":"string","v":"Alice"},"age":{"t":"int","v":"30"}}}`)
	f.Add(`{"kind":"edge","id":1,"labels":["KNOWS"],"src":1,"dst":2,"props":{"since":{"t":"date","v":"2020-01-02"}}}`)
	f.Add(`{"kind":"node","id":2,"props":{"x":5,"y":1.5,"z":true,"s":"hi"}}`)
	// Malformed fixtures from the regression tests.
	f.Add(`{"kind":"node","id":1,"props":{"x":{"t":"float","v":"fast"}}}`)
	f.Add(`{"kind":"node","id":1,"props":{"x":{"t":"int","v":"5.5"}}}`)
	f.Add(`{"kind":"node","id":1,"props":{"x":{"t":"bool","v":"yes"}}}`)
	f.Add(`{"kind":"node","id":1,"props":{"x":{"t":"decimal","v":"5"}}}`)
	f.Add(`{"kind":"node","id":1,"props":{"x":null}}`)
	f.Add(`{"kind":"widget","id":1}`)
	f.Add(`{bad json`)
	f.Add("{\"kind\":\"node\",\"id\":7}\n{\"kind\":\"node\",\"id\":7}")
	f.Add("")

	f.Fuzz(func(t *testing.T, data string) {
		g, err := ReadJSONL(strings.NewReader(data), true)
		if err != nil {
			return
		}
		// One-shot accepted the input: the streamed path must agree.
		s := NewJSONLStream(strings.NewReader(data), 2)
		nodes, edges := 0, 0
		for {
			b, serr := s.Next()
			if serr == io.EOF {
				break
			}
			if serr != nil {
				t.Fatalf("one-shot accepted but stream rejected: %v\ninput: %q", serr, data)
			}
			nodes += b.Graph.NumNodes()
			edges += b.Graph.NumEdges()
		}
		if nodes != g.NumNodes() || edges != g.NumEdges() {
			t.Fatalf("stream saw %d/%d elements, one-shot %d/%d\ninput: %q",
				nodes, edges, g.NumNodes(), g.NumEdges(), data)
		}
		// Accepted graphs round-trip through the writer.
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, g); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		if _, err := ReadJSONL(&buf, true); err != nil {
			t.Fatalf("round-trip of accepted input failed: %v\ninput: %q", err, data)
		}
	})
}

// FuzzReadCSV hardens the CSV ingestion path: arbitrary node and
// relationship files must never panic (the historical failure mode:
// ragged rows indexing past the record), and whatever the one-shot
// node loader accepts must stream identically.
func FuzzReadCSV(f *testing.F) {
	f.Add("id:ID,:LABEL,age:int\n1,Person,30\n", ":START_ID,:END_ID,:TYPE\n1,1,KNOWS\n")
	// Malformed fixtures from the regression tests.
	f.Add("name,age:int,personId:ID\nAlice,30,1\nBob\n", ":START_ID,:END_ID\n1\n")
	f.Add("id:ID,active:boolean\n1,yes\n", "note,:START_ID,:END_ID\nx\n")
	f.Add("id:ID,age:itn\n1,30\n", ":START_ID,:END_ID,w:flaot\n1,1,2\n")
	f.Add("id:ID\n1\n1\n", ":START_ID,:END_ID\n1,99\n")
	f.Add("", "")

	f.Fuzz(func(t *testing.T, nodes, edges string) {
		g := NewGraph()
		g.AllowDanglingEdges(true)
		if _, err := ReadNodesCSV(strings.NewReader(nodes), g); err == nil {
			// One-shot accepted the node file: the streamed path must
			// accept it too and see the same node count.
			s := NewCSVStream([]io.Reader{strings.NewReader(nodes)}, nil, 2)
			got := 0
			for {
				b, serr := s.Next()
				if serr == io.EOF {
					break
				}
				if serr != nil {
					t.Fatalf("one-shot accepted nodes but stream rejected: %v\ninput: %q", serr, nodes)
				}
				got += b.Graph.NumNodes()
			}
			if got != g.NumNodes() {
				t.Fatalf("stream saw %d nodes, one-shot %d\ninput: %q", got, g.NumNodes(), nodes)
			}
		}
		// The edge loader must not panic regardless of either file's
		// validity (dangling endpoints allowed here; strict endpoint
		// checks are covered by unit tests).
		_, _ = ReadEdgesCSV(strings.NewReader(edges), g)
	})
}
