package pg

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// drain consumes a stream, asserting the StreamReader contract on
// every batch: bounded size, 1-based contiguous indices, label-only
// resolver bookkeeping. It returns the union of the batch graphs.
func drain(t *testing.T, r StreamReader, batchSize int) (*Graph, int) {
	t.Helper()
	union := NewGraph()
	union.AllowDanglingEdges(true)
	batches := 0
	for {
		b, err := r.Next()
		if err == io.EOF {
			// A finished stream stays finished.
			if _, err := r.Next(); err != io.EOF {
				t.Fatalf("Next after EOF = %v, want io.EOF", err)
			}
			return union, batches
		}
		if err != nil {
			t.Fatal(err)
		}
		batches++
		if b.Index != batches {
			t.Fatalf("batch index %d, want %d", b.Index, batches)
		}
		if n := b.Graph.NumNodes() + b.Graph.NumEdges(); n == 0 || n > batchSize {
			t.Fatalf("batch %d holds %d elements, want 1..%d", b.Index, n, batchSize)
		}
		// The resolver is endpoint bookkeeping, not a graph copy: it
		// holds every node seen so far (including this batch's) with
		// labels only — no property values, no edges.
		if b.Resolver.NumEdges() != 0 {
			t.Fatalf("batch %d: resolver holds %d edges, want 0", b.Index, b.Resolver.NumEdges())
		}
		for i := range b.Graph.Nodes() {
			n := &b.Graph.Nodes()[i]
			rn := b.Resolver.Node(n.ID)
			if rn == nil {
				t.Fatalf("batch %d: node %d missing from resolver", b.Index, n.ID)
			}
			if len(rn.Props) != 0 {
				t.Fatalf("batch %d: resolver node %d carries %d properties, want 0 (bounded bookkeeping)", b.Index, n.ID, len(rn.Props))
			}
			if err := union.PutNode(n.ID, n.Labels, n.Props); err != nil {
				t.Fatal(err)
			}
		}
		for i := range b.Graph.Edges() {
			e := &b.Graph.Edges()[i]
			if err := union.PutEdge(e.ID, e.Labels, e.Src, e.Dst, e.Props); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// sameGraph asserts two graphs hold identical elements.
func sameGraph(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("got %d nodes / %d edges, want %d / %d",
			got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
	}
	for i := range want.Nodes() {
		w := &want.Nodes()[i]
		g := got.Node(w.ID)
		if g == nil || LabelToken(g.Labels) != LabelToken(w.Labels) || len(g.Props) != len(w.Props) {
			t.Fatalf("node %d differs: %+v vs %+v", w.ID, g, w)
		}
		for k, v := range w.Props {
			if !g.Props[k].Equal(v) {
				t.Fatalf("node %d prop %q: %#v vs %#v", w.ID, k, g.Props[k], v)
			}
		}
	}
	for i := range want.Edges() {
		w := &want.Edges()[i]
		g := got.Edge(w.ID)
		if g == nil || g.Src != w.Src || g.Dst != w.Dst || LabelToken(g.Labels) != LabelToken(w.Labels) {
			t.Fatalf("edge %d differs: %+v vs %+v", w.ID, g, w)
		}
	}
}

func TestJSONLStreamPartition(t *testing.T) {
	g, _ := buildExampleGraph(t)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	total := g.NumNodes() + g.NumEdges()
	for _, bs := range []int{1, 3, 5, 100} {
		union, batches := drain(t, NewJSONLStream(bytes.NewReader(data), bs), bs)
		sameGraph(t, union, g)
		want := (total + bs - 1) / bs
		if bs < total && batches != want {
			t.Errorf("batchSize %d: %d batches, want %d", bs, batches, want)
		}
	}
}

func TestJSONLStreamDefaultBatchSize(t *testing.T) {
	g, _ := buildExampleGraph(t)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, g); err != nil {
		t.Fatal(err)
	}
	union, batches := drain(t, NewJSONLStream(&buf, 0), DefaultStreamBatchSize)
	sameGraph(t, union, g)
	if batches != 1 {
		t.Errorf("small graph under default batch size: %d batches, want 1", batches)
	}
}

// Streamed reads reject the same malformed lines as the one-shot
// loader, with the same line numbers, and the error is sticky.
func TestJSONLStreamErrors(t *testing.T) {
	in := `{"kind":"node","id":1}` + "\n" +
		`{"kind":"node","id":2,"props":{"x":{"t":"int","v":"nope"}}}` + "\n"
	s := NewJSONLStream(strings.NewReader(in), 1)
	if _, err := s.Next(); err != nil { // batch {node 1}
		t.Fatal(err)
	}
	_, err := s.Next()
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-2 error, got %v", err)
	}
	if _, err2 := s.Next(); err2 != err {
		t.Fatalf("error must be sticky, got %v", err2)
	}

	// A node ID duplicated across batches is caught by the resolver.
	dup := `{"kind":"node","id":7}` + "\n" + `{"kind":"node","id":7}` + "\n"
	s = NewJSONLStream(strings.NewReader(dup), 1)
	if _, err := s.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Next(); err == nil || !strings.Contains(err.Error(), "duplicate node id") {
		t.Fatalf("cross-batch duplicate node must error, got %v", err)
	}
}

func TestCSVStreamMatchesOneShot(t *testing.T) {
	// One-shot reference load.
	want := NewGraph()
	if _, err := ReadNodesCSV(strings.NewReader(nodesCSV), want); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadEdgesCSV(strings.NewReader(edgesCSV), want); err != nil {
		t.Fatal(err)
	}
	for _, bs := range []int{1, 2, 4, 100} {
		s := NewCSVStream(
			[]io.Reader{strings.NewReader(nodesCSV)},
			[]io.Reader{strings.NewReader(edgesCSV)}, bs)
		union, _ := drain(t, s, bs)
		sameGraph(t, union, want)
	}
}

func TestCSVStreamMultipleSources(t *testing.T) {
	nodesA := "id:ID,:LABEL\n1,A\n2,A\n"
	nodesB := "id:ID,:LABEL\n3,B\n"
	edges := ":START_ID,:END_ID,:TYPE\n1,3,R\n2,3,R\n"
	s := NewCSVStream(
		[]io.Reader{strings.NewReader(nodesA), strings.NewReader(nodesB)},
		[]io.Reader{strings.NewReader(edges)}, 2)
	union, _ := drain(t, s, 2)
	if union.NumNodes() != 3 || union.NumEdges() != 2 {
		t.Fatalf("union: %d nodes, %d edges", union.NumNodes(), union.NumEdges())
	}
	// Edge IDs are assigned sequentially across the whole stream.
	if union.Edge(0) == nil || union.Edge(1) == nil {
		t.Fatal("edge IDs must be stream-sequential starting at 0")
	}
}

func TestCSVStreamErrors(t *testing.T) {
	// Endpoints are validated against the accumulated bookkeeping.
	s := NewCSVStream(
		[]io.Reader{strings.NewReader("id:ID\n1\n")},
		[]io.Reader{strings.NewReader(":START_ID,:END_ID\n1,99\n")}, 10)
	_, err := s.Next()
	if err == nil || !strings.Contains(err.Error(), "node 99 not found") {
		t.Fatalf("dangling CSV edge must error, got %v", err)
	}

	// Node IDs duplicated across sources are caught.
	s = NewCSVStream([]io.Reader{
		strings.NewReader("id:ID\n1\n"),
		strings.NewReader("id:ID\n1\n"),
	}, nil, 1)
	var last error
	for last == nil {
		_, last = s.Next()
	}
	if last == io.EOF || !strings.Contains(last.Error(), "duplicate node id") {
		t.Fatalf("cross-source duplicate node must error, got %v", last)
	}

	// Header errors surface on the first Next that reaches the source.
	s = NewCSVStream([]io.Reader{strings.NewReader("name\nx\n")}, nil, 1)
	if _, err := s.Next(); err == nil || !strings.Contains(err.Error(), ":ID") {
		t.Fatalf("missing :ID header must error, got %v", err)
	}
}

// The memory contract: while streaming a graph much larger than one
// batch, the reader retains only the resolver bookkeeping — nodes
// with labels, never properties or edges — plus the batch under
// construction. (Batch graphs themselves are handed off and not
// retained; this is what keeps streamed ingestion bounded.)
func TestStreamBoundedBookkeeping(t *testing.T) {
	var buf bytes.Buffer
	g := NewGraph()
	for i := 0; i < 500; i++ {
		g.AddNode([]string{"N"}, map[string]Value{
			"payload": Str(strings.Repeat("x", 100)), "i": Int(int64(i)),
		})
	}
	for i := 0; i < 499; i++ {
		if _, err := g.AddEdge([]string{"R"}, ID(i), ID(i+1), map[string]Value{"w": Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := WriteJSONL(&buf, g); err != nil {
		t.Fatal(err)
	}
	s := NewJSONLStream(&buf, 50)
	union, batches := drain(t, s, 50)
	sameGraph(t, union, g)
	if batches != 20 {
		t.Fatalf("batches = %d, want 20", batches)
	}
	// After draining, the reader's bookkeeping is exactly the node
	// set with labels only.
	if s.resolver.NumNodes() != 500 || s.resolver.NumEdges() != 0 {
		t.Fatalf("resolver: %d nodes, %d edges", s.resolver.NumNodes(), s.resolver.NumEdges())
	}
	for i := range s.resolver.Nodes() {
		if len(s.resolver.Nodes()[i].Props) != 0 {
			t.Fatal("resolver must not retain property values")
		}
	}
	// The batch under construction was handed off: nothing pending.
	if s.cur.NumNodes()+s.cur.NumEdges() != 0 {
		t.Fatalf("reader retains %d pending elements after EOF", s.cur.NumNodes()+s.cur.NumEdges())
	}
}
