package pg

import (
	"strings"
	"testing"
)

const nodesCSV = `personId:ID,:LABEL,name,age:int,score:float,active:boolean,joined:date
1,Person,Alice,30,1.5,true,2020-01-02
2,Person;Student,Bob,22,,false,
3,,Carol,,,,
`

const edgesCSV = `:START_ID,:END_ID,:TYPE,since:int,note
1,2,KNOWS,2019,close friends
2,3,KNOWS,,
1,3,LIKES;FOLLOWS,,a note
`

func TestReadNodesCSV(t *testing.T) {
	g := NewGraph()
	n, err := ReadNodesCSV(strings.NewReader(nodesCSV), g)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || g.NumNodes() != 3 {
		t.Fatalf("loaded %d nodes", n)
	}
	alice := g.Node(1)
	if alice.LabelToken() != "Person" {
		t.Errorf("alice labels = %v", alice.Labels)
	}
	if alice.Props["age"].Kind() != KindInt || alice.Props["age"].AsInt() != 30 {
		t.Errorf("age = %#v", alice.Props["age"])
	}
	if alice.Props["score"].Kind() != KindFloat {
		t.Errorf("score = %#v", alice.Props["score"])
	}
	if !alice.Props["active"].AsBool() {
		t.Error("active should be true")
	}
	if alice.Props["joined"].Kind() != KindDate {
		t.Errorf("joined = %#v", alice.Props["joined"])
	}
	bob := g.Node(2)
	if bob.LabelToken() != "Person&Student" {
		t.Errorf("bob labels = %v", bob.Labels)
	}
	if _, ok := bob.Props["score"]; ok {
		t.Error("empty cell must be an absent property")
	}
	carol := g.Node(3)
	if len(carol.Labels) != 0 {
		t.Errorf("carol must be unlabeled: %v", carol.Labels)
	}
	if len(carol.Props) != 1 {
		t.Errorf("carol props = %v", carol.Props)
	}
}

func TestReadEdgesCSV(t *testing.T) {
	g := NewGraph()
	if _, err := ReadNodesCSV(strings.NewReader(nodesCSV), g); err != nil {
		t.Fatal(err)
	}
	n, err := ReadEdgesCSV(strings.NewReader(edgesCSV), g)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || g.NumEdges() != 3 {
		t.Fatalf("loaded %d edges", n)
	}
	e := g.Edge(0)
	if e.LabelToken() != "KNOWS" || e.Src != 1 || e.Dst != 2 {
		t.Errorf("edge 0 = %+v", e)
	}
	if e.Props["since"].AsInt() != 2019 {
		t.Errorf("since = %#v", e.Props["since"])
	}
	multi := g.Edge(2)
	if multi.LabelToken() != "FOLLOWS&LIKES" {
		t.Errorf("multi-label edge token = %q", multi.LabelToken())
	}
}

func TestReadNodesCSVErrors(t *testing.T) {
	g := NewGraph()
	if _, err := ReadNodesCSV(strings.NewReader("name,age\nx,1\n"), g); err == nil {
		t.Error("missing :ID column must error")
	}
	if _, err := ReadNodesCSV(strings.NewReader("id:ID\nnotanumber\n"), g); err == nil {
		t.Error("non-numeric id must error")
	}
	if _, err := ReadNodesCSV(strings.NewReader("id:ID,n:int\n1,xyz\n"), g); err == nil {
		t.Error("bad typed value must error")
	}
	dup := "id:ID\n5\n5\n"
	g2 := NewGraph()
	if _, err := ReadNodesCSV(strings.NewReader(dup), g2); err == nil {
		t.Error("duplicate id must error")
	}
}

func TestReadEdgesCSVErrors(t *testing.T) {
	g := NewGraph()
	_, _ = ReadNodesCSV(strings.NewReader("id:ID\n1\n2\n"), g)
	if _, err := ReadEdgesCSV(strings.NewReader(":START_ID,:TYPE\n1,R\n"), g); err == nil {
		t.Error("missing :END_ID must error")
	}
	if _, err := ReadEdgesCSV(strings.NewReader(":START_ID,:END_ID\n1,99\n"), g); err == nil {
		t.Error("dangling endpoint must error on a strict graph")
	}
	g.AllowDanglingEdges(true)
	if _, err := ReadEdgesCSV(strings.NewReader(":START_ID,:END_ID\n1,99\n"), g); err != nil {
		t.Errorf("dangling endpoint should load with opt-in: %v", err)
	}
}

func TestCSVMalformedTemporalKeptAsString(t *testing.T) {
	g := NewGraph()
	csv := "id:ID,d:date\n1,not-a-date\n"
	if _, err := ReadNodesCSV(strings.NewReader(csv), g); err != nil {
		t.Fatal(err)
	}
	if got := g.Node(1).Props["d"].Kind(); got != KindString {
		t.Errorf("malformed date kind = %v, want STRING", got)
	}
}

// TestCSVEndToEndDiscovery: the loaded graph behaves like any other
// for stats purposes.
func TestCSVEndToEndStats(t *testing.T) {
	g := NewGraph()
	if _, err := ReadNodesCSV(strings.NewReader(nodesCSV), g); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadEdgesCSV(strings.NewReader(edgesCSV), g); err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(g)
	if s.Nodes != 3 || s.Edges != 3 {
		t.Errorf("stats = %+v", s)
	}
	if s.NodeLabels != 2 { // Person, Student
		t.Errorf("node labels = %d", s.NodeLabels)
	}
}

// Regression: FieldsPerRecord = -1 admits ragged rows, so a row too
// short to contain the :ID / :START_ID / :END_ID column used to panic
// with index out of range. It must be a line-numbered error.
func TestCSVRaggedRowsError(t *testing.T) {
	// :ID is the 3rd column; the 2nd data row has only one field.
	nodes := "name,age:int,personId:ID\nAlice,30,1\nBob\n"
	g := NewGraph()
	_, err := ReadNodesCSV(strings.NewReader(nodes), g)
	if err == nil {
		t.Fatal("ragged node row must error, not panic")
	}
	if !strings.Contains(err.Error(), "line 3") || !strings.Contains(err.Error(), "missing :ID") {
		t.Errorf("want line-numbered missing-:ID error, got: %v", err)
	}

	g2 := NewGraph()
	if _, err := ReadNodesCSV(strings.NewReader("id:ID,name\n1,Alice\n"), g2); err != nil {
		t.Fatal(err)
	}
	edges := "note,:START_ID,:END_ID\nx,1,1\ny\n"
	_, err = ReadEdgesCSV(strings.NewReader(edges), g2)
	if err == nil {
		t.Fatal("ragged edge row must error, not panic")
	}
	if !strings.Contains(err.Error(), "line 3") || !strings.Contains(err.Error(), "missing :START_ID") {
		t.Errorf("want line-numbered missing-:START_ID error, got: %v", err)
	}
	edges = ":START_ID,note,:END_ID\n1,x\n"
	_, err = ReadEdgesCSV(strings.NewReader(edges), g2)
	if err == nil || !strings.Contains(err.Error(), "missing :END_ID") {
		t.Errorf("want missing-:END_ID error, got: %v", err)
	}
}

// Regression: a malformed boolean cell ("yes", "1", a shifted row)
// used to load silently as Bool(false), corrupting the discovered
// schema. It must error like the int/float branches do.
func TestCSVMalformedBooleanError(t *testing.T) {
	for _, bad := range []string{"yes", "1", "tru", "on"} {
		g := NewGraph()
		in := "id:ID,active:boolean\n1," + bad + "\n"
		_, err := ReadNodesCSV(strings.NewReader(in), g)
		if err == nil {
			t.Errorf("boolean %q must be rejected", bad)
			continue
		}
		if !strings.Contains(err.Error(), "line 2") || !strings.Contains(err.Error(), "boolean") {
			t.Errorf("boolean %q: want line-numbered boolean error, got: %v", bad, err)
		}
	}
	// Case-insensitive true/false still load (neo4j-admin accepts them).
	g := NewGraph()
	if _, err := ReadNodesCSV(strings.NewReader("id:ID,a:boolean,b:bool\n1,TRUE,False\n"), g); err != nil {
		t.Fatal(err)
	}
	if !g.Node(1).Props["a"].AsBool() || g.Node(1).Props["b"].AsBool() {
		t.Errorf("props = %v", g.Node(1).Props)
	}
}

// Regression: an unknown type suffix (a typo like `age:itn`) used to
// silently become an untyped column named "age:itn" with lexical
// inference. It must be a header error.
func TestCSVUnknownTypeSuffixError(t *testing.T) {
	g := NewGraph()
	_, err := ReadNodesCSV(strings.NewReader("id:ID,age:itn\n1,30\n"), g)
	if err == nil {
		t.Fatal("unknown type suffix must error")
	}
	if !strings.Contains(err.Error(), `"itn"`) {
		t.Errorf("error must name the bad suffix, got: %v", err)
	}
	_, err = ReadEdgesCSV(strings.NewReader(":START_ID,:END_ID,w:flaot\n"), g)
	if err == nil || !strings.Contains(err.Error(), `"flaot"`) {
		t.Errorf("edge header suffix error, got: %v", err)
	}
	// Untyped columns (no colon at all) still infer lexically.
	g2 := NewGraph()
	if _, err := ReadNodesCSV(strings.NewReader("id:ID,age\n1,30\n"), g2); err != nil {
		t.Fatal(err)
	}
	if g2.Node(1).Props["age"].Kind() != KindInt {
		t.Errorf("untyped column must stay lexically inferred: %#v", g2.Node(1).Props["age"])
	}
}
