package pg

import (
	"strings"
	"testing"
)

const nodesCSV = `personId:ID,:LABEL,name,age:int,score:float,active:boolean,joined:date
1,Person,Alice,30,1.5,true,2020-01-02
2,Person;Student,Bob,22,,false,
3,,Carol,,,,
`

const edgesCSV = `:START_ID,:END_ID,:TYPE,since:int,note
1,2,KNOWS,2019,close friends
2,3,KNOWS,,
1,3,LIKES;FOLLOWS,,a note
`

func TestReadNodesCSV(t *testing.T) {
	g := NewGraph()
	n, err := ReadNodesCSV(strings.NewReader(nodesCSV), g)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || g.NumNodes() != 3 {
		t.Fatalf("loaded %d nodes", n)
	}
	alice := g.Node(1)
	if alice.LabelToken() != "Person" {
		t.Errorf("alice labels = %v", alice.Labels)
	}
	if alice.Props["age"].Kind() != KindInt || alice.Props["age"].AsInt() != 30 {
		t.Errorf("age = %#v", alice.Props["age"])
	}
	if alice.Props["score"].Kind() != KindFloat {
		t.Errorf("score = %#v", alice.Props["score"])
	}
	if !alice.Props["active"].AsBool() {
		t.Error("active should be true")
	}
	if alice.Props["joined"].Kind() != KindDate {
		t.Errorf("joined = %#v", alice.Props["joined"])
	}
	bob := g.Node(2)
	if bob.LabelToken() != "Person&Student" {
		t.Errorf("bob labels = %v", bob.Labels)
	}
	if _, ok := bob.Props["score"]; ok {
		t.Error("empty cell must be an absent property")
	}
	carol := g.Node(3)
	if len(carol.Labels) != 0 {
		t.Errorf("carol must be unlabeled: %v", carol.Labels)
	}
	if len(carol.Props) != 1 {
		t.Errorf("carol props = %v", carol.Props)
	}
}

func TestReadEdgesCSV(t *testing.T) {
	g := NewGraph()
	if _, err := ReadNodesCSV(strings.NewReader(nodesCSV), g); err != nil {
		t.Fatal(err)
	}
	n, err := ReadEdgesCSV(strings.NewReader(edgesCSV), g)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || g.NumEdges() != 3 {
		t.Fatalf("loaded %d edges", n)
	}
	e := g.Edge(0)
	if e.LabelToken() != "KNOWS" || e.Src != 1 || e.Dst != 2 {
		t.Errorf("edge 0 = %+v", e)
	}
	if e.Props["since"].AsInt() != 2019 {
		t.Errorf("since = %#v", e.Props["since"])
	}
	multi := g.Edge(2)
	if multi.LabelToken() != "FOLLOWS&LIKES" {
		t.Errorf("multi-label edge token = %q", multi.LabelToken())
	}
}

func TestReadNodesCSVErrors(t *testing.T) {
	g := NewGraph()
	if _, err := ReadNodesCSV(strings.NewReader("name,age\nx,1\n"), g); err == nil {
		t.Error("missing :ID column must error")
	}
	if _, err := ReadNodesCSV(strings.NewReader("id:ID\nnotanumber\n"), g); err == nil {
		t.Error("non-numeric id must error")
	}
	if _, err := ReadNodesCSV(strings.NewReader("id:ID,n:int\n1,xyz\n"), g); err == nil {
		t.Error("bad typed value must error")
	}
	dup := "id:ID\n5\n5\n"
	g2 := NewGraph()
	if _, err := ReadNodesCSV(strings.NewReader(dup), g2); err == nil {
		t.Error("duplicate id must error")
	}
}

func TestReadEdgesCSVErrors(t *testing.T) {
	g := NewGraph()
	_, _ = ReadNodesCSV(strings.NewReader("id:ID\n1\n2\n"), g)
	if _, err := ReadEdgesCSV(strings.NewReader(":START_ID,:TYPE\n1,R\n"), g); err == nil {
		t.Error("missing :END_ID must error")
	}
	if _, err := ReadEdgesCSV(strings.NewReader(":START_ID,:END_ID\n1,99\n"), g); err == nil {
		t.Error("dangling endpoint must error on a strict graph")
	}
	g.AllowDanglingEdges(true)
	if _, err := ReadEdgesCSV(strings.NewReader(":START_ID,:END_ID\n1,99\n"), g); err != nil {
		t.Errorf("dangling endpoint should load with opt-in: %v", err)
	}
}

func TestCSVMalformedTemporalKeptAsString(t *testing.T) {
	g := NewGraph()
	csv := "id:ID,d:date\n1,not-a-date\n"
	if _, err := ReadNodesCSV(strings.NewReader(csv), g); err != nil {
		t.Fatal(err)
	}
	if got := g.Node(1).Props["d"].Kind(); got != KindString {
		t.Errorf("malformed date kind = %v, want STRING", got)
	}
}

// TestCSVEndToEndDiscovery: the loaded graph behaves like any other
// for stats purposes.
func TestCSVEndToEndStats(t *testing.T) {
	g := NewGraph()
	if _, err := ReadNodesCSV(strings.NewReader(nodesCSV), g); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadEdgesCSV(strings.NewReader(edgesCSV), g); err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(g)
	if s.Nodes != 3 || s.Edges != 3 {
		t.Errorf("stats = %+v", s)
	}
	if s.NodeLabels != 2 { // Person, Student
		t.Errorf("node labels = %d", s.NodeLabels)
	}
}
