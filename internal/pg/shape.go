package pg

import "encoding/binary"

// Element shapes. Two nodes have the same shape when they carry the
// same label set and the same property-key set; two edges additionally
// need the same resolved source and target label tokens. Shape is the
// exact granularity of §4.1's representation: same-shape elements
// produce byte-identical representation vectors and token sets, so
// every per-element stage of discovery (vectorization, LSH signature
// hashing, banding) can run once per distinct shape instead of once
// per element. Real graphs have millions of elements but only
// tens-to-thousands of shapes — the same skew LSH Ensemble exploits —
// which makes interning the dominant cost lever at production scale.

// Shape is one distinct element shape registered in a ShapeCache. It
// persists across batches of an incremental discovery, so a shape seen
// again in a later batch costs a single fingerprint map lookup.
// Batch-local shape identity flows through ShapeIndex ordinals.
type Shape struct {
	// Token is the canonical label token of the shape's label set.
	Token string
	// Items caches the shape's method-specific token set (MinHash
	// path). It is filled lazily by the pipeline; shapes are
	// batch-independent, so the cached set stays valid for the
	// lifetime of the cache.
	Items []string

	// local / epoch implement the per-batch ordinal without a second
	// map: local is valid only when epoch matches the cache's current
	// indexing pass.
	local int32
	epoch uint32
}

// ShapeIndex groups one batch's rows by shape, in first-occurrence
// order. It is the row→shape map every interned pipeline stage shares:
// vectorization and LSH hashing run over Reps only, and cluster
// assignments broadcast back through Rows.
type ShapeIndex struct {
	// Rows maps each row index to its shape ordinal in [0, NumShapes).
	// Ordinals are assigned in first-occurrence row order, which is
	// what makes interned LSH cluster labels identical to the
	// non-interned first-occurrence labels.
	Rows []int32
	// Reps maps each shape ordinal to the first row with that shape.
	Reps []int32
	// Counts maps each shape ordinal to its number of rows.
	Counts []int32
	// Shapes maps each shape ordinal to its cache entry.
	Shapes []*Shape
}

// NumShapes returns the number of distinct shapes in the batch.
func (si *ShapeIndex) NumShapes() int { return len(si.Reps) }

// DedupRatio returns rows per distinct shape (1 = no duplication).
func (si *ShapeIndex) DedupRatio() float64 {
	if si.NumShapes() == 0 {
		return 1
	}
	return float64(len(si.Rows)) / float64(si.NumShapes())
}

// NodeLabels returns the sorted distinct individual labels over the
// batch's nodes, computed from the shape representatives only — equal
// to Graph.DistinctNodeLabels because labels are part of the shape.
func (si *ShapeIndex) NodeLabels(nodes []Node) []string {
	set := map[string]struct{}{}
	for _, rep := range si.Reps {
		for _, l := range nodes[rep].Labels {
			set[l] = struct{}{}
		}
	}
	return setToSorted(set)
}

// NodePropertyKeys returns the sorted distinct property keys over the
// batch's nodes, from the representatives only — equal to
// Graph.DistinctNodePropertyKeys.
func (si *ShapeIndex) NodePropertyKeys(nodes []Node) []string {
	set := map[string]struct{}{}
	for _, rep := range si.Reps {
		for k := range nodes[rep].Props {
			set[k] = struct{}{}
		}
	}
	return setToSorted(set)
}

// EdgeLabels is NodeLabels for an edge shape index.
func (si *ShapeIndex) EdgeLabels(edges []Edge) []string {
	set := map[string]struct{}{}
	for _, rep := range si.Reps {
		for _, l := range edges[rep].Labels {
			set[l] = struct{}{}
		}
	}
	return setToSorted(set)
}

// EdgePropertyKeys is NodePropertyKeys for an edge shape index.
func (si *ShapeIndex) EdgePropertyKeys(edges []Edge) []string {
	set := map[string]struct{}{}
	for _, rep := range si.Reps {
		for k := range edges[rep].Props {
			set[k] = struct{}{}
		}
	}
	return setToSorted(set)
}

// ShapeCache interns element shapes across the batches of one
// discovery. It is not safe for concurrent use; the pipeline indexes
// shapes on a single goroutine before fanning the (much smaller)
// per-shape work out to workers.
type ShapeCache struct {
	shapes map[string]*Shape
	epoch  uint32
	buf    []byte   // reusable fingerprint buffer
	keys   []string // reusable key scratch
}

// NewShapeCache returns an empty cache.
func NewShapeCache() *ShapeCache {
	return &ShapeCache{shapes: map[string]*Shape{}}
}

// Size returns the number of distinct shapes ever registered.
func (c *ShapeCache) Size() int { return len(c.shapes) }

// appendComponent appends one length-prefixed string, keeping the
// overall fingerprint injective (no separator collisions, whatever
// bytes labels and keys contain).
func appendComponent(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// canonicalPropKeys fills the cache's scratch slice with the map's
// keys in canonical (length, key) order, allocation-free after
// warm-up. Any fixed total order works for fingerprinting — the
// encoding stays injective — and length-first ordering decides almost
// every comparison with an integer compare.
func (c *ShapeCache) canonicalPropKeys(props map[string]Value) []string {
	ks := c.keys[:0]
	for k := range props {
		ks = append(ks, k)
	}
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && keyLess(ks[j], ks[j-1]); j-- {
			ks[j], ks[j-1] = ks[j-1], ks[j]
		}
	}
	c.keys = ks
	return ks
}

// keyLess orders property keys by (length, bytes).
func keyLess(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

// appendNodeShapeKey appends n's shape fingerprint to dst: the label
// set followed by the canonically ordered property-key set, every
// component length-prefixed — an injective encoding of (labels,
// keys). Graph keeps label sets sorted, so equal label sets
// fingerprint equally.
func appendNodeShapeKey(dst []byte, n *Node, keys []string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(n.Labels)))
	for _, l := range n.Labels {
		dst = appendComponent(dst, l)
	}
	for _, k := range keys {
		dst = appendComponent(dst, k)
	}
	return dst
}

// appendEdgeShapeKey appends e's shape fingerprint to dst: the label
// set, the resolved endpoint tokens, and the canonically ordered
// property-key set.
func appendEdgeShapeKey(dst []byte, e *Edge, srcTok, dstTok string, keys []string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(e.Labels)))
	for _, l := range e.Labels {
		dst = appendComponent(dst, l)
	}
	dst = appendComponent(dst, srcTok)
	dst = appendComponent(dst, dstTok)
	for _, k := range keys {
		dst = appendComponent(dst, k)
	}
	return dst
}

// lookup resolves the fingerprint currently in c.buf to its Shape,
// reporting whether it had to be created. The string conversion in the
// map read does not allocate; only first sight pays for the key copy.
func (c *ShapeCache) lookup() (*Shape, bool) {
	sh, ok := c.shapes[string(c.buf)]
	if !ok {
		sh = &Shape{}
		c.shapes[string(c.buf)] = sh
	}
	return sh, !ok
}

// fold adds one row of the shape to the batch index.
func (c *ShapeCache) fold(si *ShapeIndex, row int, sh *Shape) {
	if sh.epoch != c.epoch {
		sh.epoch = c.epoch
		sh.local = int32(len(si.Reps))
		si.Reps = append(si.Reps, int32(row))
		si.Counts = append(si.Counts, 0)
		si.Shapes = append(si.Shapes, sh)
	}
	si.Rows[row] = sh.local
	si.Counts[sh.local]++
}

// IndexNodes fingerprints every node and groups rows by shape in
// first-occurrence order. Shapes seen in earlier batches are reused
// from the cache.
func (c *ShapeCache) IndexNodes(nodes []Node) *ShapeIndex {
	c.epoch++
	si := &ShapeIndex{Rows: make([]int32, len(nodes))}
	for i := range nodes {
		n := &nodes[i]
		keys := c.canonicalPropKeys(n.Props)
		c.buf = appendNodeShapeKey(c.buf[:0], n, keys)
		sh, created := c.lookup()
		if created {
			sh.Token = n.LabelToken()
		}
		c.fold(si, i, sh)
	}
	return si
}

// IndexEdges fingerprints every edge and groups rows by shape in
// first-occurrence order. srcToks and dstToks carry the resolved
// endpoint label tokens, aligned with edges.
func (c *ShapeCache) IndexEdges(edges []Edge, srcToks, dstToks []string) *ShapeIndex {
	c.epoch++
	si := &ShapeIndex{Rows: make([]int32, len(edges))}
	for i := range edges {
		e := &edges[i]
		keys := c.canonicalPropKeys(e.Props)
		c.buf = appendEdgeShapeKey(c.buf[:0], e, srcToks[i], dstToks[i], keys)
		sh, created := c.lookup()
		if created {
			sh.Token = e.LabelToken()
		}
		c.fold(si, i, sh)
	}
	return si
}
