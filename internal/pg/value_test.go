package pg

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		lex  string
	}{
		{Int(42), KindInt, "42"},
		{Int(-7), KindInt, "-7"},
		{Float(3.5), KindFloat, "3.5"},
		{Bool(true), KindBool, "true"},
		{Bool(false), KindBool, "false"},
		{Str("hello"), KindString, "hello"},
		{Date(time.Date(1999, 12, 19, 14, 3, 0, 0, time.UTC)), KindDate, "1999-12-19"},
		{DateTime(time.Date(2025, 1, 2, 3, 4, 5, 0, time.UTC)), KindDateTime, "2025-01-02T03:04:05Z"},
	}
	for _, c := range cases {
		if got := c.v.Kind(); got != c.kind {
			t.Errorf("Kind(%v) = %v, want %v", c.v, got, c.kind)
		}
		if got := c.v.Lexical(); got != c.lex {
			t.Errorf("Lexical(%v) = %q, want %q", c.v, got, c.lex)
		}
		if !c.v.IsValid() {
			t.Errorf("IsValid(%v) = false, want true", c.v)
		}
	}
}

func TestZeroValueInvalid(t *testing.T) {
	var v Value
	if v.IsValid() {
		t.Fatal("zero Value must be invalid")
	}
	if v.Kind() != KindInvalid {
		t.Fatalf("zero Value kind = %v, want KindInvalid", v.Kind())
	}
	if v.Lexical() != "" {
		t.Fatalf("zero Value lexical = %q, want empty", v.Lexical())
	}
}

func TestValueAccessors(t *testing.T) {
	if Int(9).AsInt() != 9 {
		t.Error("AsInt failed")
	}
	if Int(9).AsFloat() != 9.0 {
		t.Error("AsFloat on int failed")
	}
	if Float(2.25).AsFloat() != 2.25 {
		t.Error("AsFloat failed")
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("AsBool failed")
	}
	if Str("x").AsString() != "x" {
		t.Error("AsString failed")
	}
	ts := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
	if !Date(ts).AsTime().Equal(ts) {
		t.Error("AsTime failed")
	}
}

func TestValueEqual(t *testing.T) {
	if !Int(3).Equal(Int(3)) {
		t.Error("equal ints must compare equal")
	}
	if Int(3).Equal(Float(3)) {
		t.Error("int and float must differ by kind")
	}
	if Int(3).Equal(Int(4)) {
		t.Error("distinct ints must differ")
	}
	if !Str("a").Equal(Str("a")) || Str("a").Equal(Str("b")) {
		t.Error("string equality broken")
	}
	nan := Float(math.NaN())
	if !nan.Equal(nan) {
		t.Error("NaN values should compare equal for schema purposes")
	}
}

func TestParseLexicalPriority(t *testing.T) {
	cases := []struct {
		in   string
		kind Kind
	}{
		{"42", KindInt},
		{"-13", KindInt},
		{"3.14", KindFloat},
		{"1e6", KindFloat},
		{"true", KindBool},
		{"FALSE", KindBool},
		{"2024-05-01", KindDate},
		{"2024-05-01T10:00:00Z", KindDateTime},
		{"2024-05-01 10:00:00", KindDateTime},
		{"hello world", KindString},
		{"", KindString},
		{"12abc", KindString},
	}
	for _, c := range cases {
		if got := ParseLexical(c.in).Kind(); got != c.kind {
			t.Errorf("ParseLexical(%q).Kind() = %v, want %v", c.in, got, c.kind)
		}
	}
}

// Property: every Value round-trips through its lexical form to a
// value of the same kind and payload, for all kinds the generators
// emit. This is the invariant the JSONL loader depends on.
func TestLexicalRoundTripProperty(t *testing.T) {
	f := func(i int64, fl float64, b bool) bool {
		if math.IsNaN(fl) || math.IsInf(fl, 0) {
			fl = 1.5
		}
		for _, v := range []Value{Int(i), Bool(b)} {
			got := ParseLexical(v.Lexical())
			if !got.Equal(v) {
				return false
			}
		}
		// Floats that happen to print as integers re-parse as ints
		// (the paper's priority order); only check float identity
		// when the lexical form is not integral.
		fv := Float(fl)
		got := ParseLexical(fv.Lexical())
		if got.Kind() == KindFloat && got.AsFloat() != fl {
			return false
		}
		if got.Kind() == KindInt && float64(got.AsInt()) != fl {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDateRoundTrip(t *testing.T) {
	d := Date(time.Date(1980, 5, 2, 13, 45, 0, 0, time.UTC))
	got := ParseLexical(d.Lexical())
	if got.Kind() != KindDate || !got.Equal(d) {
		t.Fatalf("date round-trip: got %#v want %#v", got, d)
	}
	dt := DateTime(time.Date(2001, 2, 3, 4, 5, 6, 0, time.UTC))
	got = ParseLexical(dt.Lexical())
	if got.Kind() != KindDateTime || !got.Equal(dt) {
		t.Fatalf("datetime round-trip: got %#v want %#v", got, dt)
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindInt: "INT", KindFloat: "DOUBLE", KindBool: "BOOLEAN",
		KindDate: "DATE", KindDateTime: "TIMESTAMP", KindString: "STRING",
		KindInvalid: "INVALID",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}
