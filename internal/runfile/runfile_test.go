package runfile

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/pghive/pghive/internal/vfs"
)

const dir = "data"

func newFS(t *testing.T) *vfs.MemFS {
	t.Helper()
	mem := vfs.NewMemFS()
	if err := mem.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	return mem
}

func TestRunRoundTrip(t *testing.T) {
	mem := newFS(t)
	payload := []byte(`{"version":1,"fromLSN":3,"toLSN":7}`)
	info, err := WriteRun(mem, dir, 3, 7, 2, payload)
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != RunName(3, 7) || info.From != 3 || info.To != 7 || info.Tombstones != 2 {
		t.Fatalf("run info %+v", info)
	}
	st, err := mem.Stat(filepath.Join(dir, info.Name))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != info.Bytes {
		t.Fatalf("file is %d bytes, info says %d", st.Size(), info.Bytes)
	}
	got, err := ReadRun(mem, dir, info)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload round-trip: %q", got)
	}
}

// TestRunRejectsDamage: every way a run file can be wrong — bit flip,
// truncation, a header too short to parse, the wrong file kind under
// the right name, or a stale file whose frame is internally valid but
// does not match the manifest's recorded CRC — fails the read loudly.
func TestRunRejectsDamage(t *testing.T) {
	payload := []byte(`{"version":1,"fromLSN":3,"toLSN":7}`)
	path := filepath.Join(dir, RunName(3, 7))
	cases := []struct {
		name   string
		damage func(t *testing.T, mem *vfs.MemFS, info *RunInfo)
		want   string
	}{
		{"bit flip", func(t *testing.T, mem *vfs.MemFS, info *RunInfo) {
			corruptByte(t, mem, path, -1)
		}, "CRC"},
		{"truncated", func(t *testing.T, mem *vfs.MemFS, info *RunInfo) {
			if err := mem.Truncate(path, info.Bytes-5); err != nil {
				t.Fatal(err)
			}
		}, "frame says"},
		{"no header", func(t *testing.T, mem *vfs.MemFS, info *RunInfo) {
			if err := mem.Truncate(path, 3); err != nil {
				t.Fatal(err)
			}
		}, "missing frame header"},
		{"wrong magic", func(t *testing.T, mem *vfs.MemFS, info *RunInfo) {
			if err := writeFramed(mem, path, manifestMagic, payload); err != nil {
				t.Fatal(err)
			}
		}, "magic"},
		{"stale file under the right name", func(t *testing.T, mem *vfs.MemFS, info *RunInfo) {
			if err := writeFramed(mem, path, runMagic, []byte(`{"other":true}`)); err != nil {
				t.Fatal(err)
			}
		}, "manifest says"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mem := newFS(t)
			info, err := WriteRun(mem, dir, 3, 7, 0, payload)
			if err != nil {
				t.Fatal(err)
			}
			tc.damage(t, mem, &info)
			_, err = ReadRun(mem, dir, info)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("damaged run read: err=%v, want mention of %q", err, tc.want)
			}
		})
	}
}

func corruptByte(t *testing.T, mem *vfs.MemFS, path string, at int64) {
	t.Helper()
	f, err := mem.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if at < 0 {
		end, err := f.Seek(at, io.SeekEnd)
		if err != nil {
			t.Fatal(err)
		}
		at = end
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], at); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.Seek(at, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b[:]); err != nil {
		t.Fatal(err)
	}
}

func testManifest() *Manifest {
	return &Manifest{
		Version:      ManifestVersion,
		Seq:          4,
		Base:         "checkpoint-00000000000000000002.ckpt",
		BaseLSN:      2,
		BaseElements: 120,
		Runs: []RunInfo{
			{Name: RunName(2, 5), From: 2, To: 5, Bytes: 100, CRC: 0xdeadbeef, Tombstones: 1},
			{Name: RunName(5, 9), From: 5, To: 9, Bytes: 80, CRC: 0x1234, Tombstones: 2},
		},
		WALFloor: 5,
	}
}

func TestManifestRoundTrip(t *testing.T) {
	mem := newFS(t)
	m := testManifest()
	if err := WriteManifest(mem, dir, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(mem, filepath.Join(dir, ManifestName(m.Seq)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("manifest round-trip:\n got %+v\nwant %+v", got, m)
	}
	if got.Covered() != 9 {
		t.Fatalf("Covered() = %d, want 9", got.Covered())
	}
	if got.Tombstones() != 3 {
		t.Fatalf("Tombstones() = %d, want 3", got.Tombstones())
	}
	files := got.Files()
	for _, f := range []string{m.Base, RunName(2, 5), RunName(5, 9)} {
		if !files[f] {
			t.Fatalf("Files() is missing %s: %v", f, files)
		}
	}
}

func TestManifestValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Manifest)
		want   string
	}{
		{"valid", func(m *Manifest) {}, ""},
		{"bad version", func(m *Manifest) { m.Version = 99 }, "version"},
		{"chain gap", func(m *Manifest) { m.Runs[1].From = 6 }, "chain stands at"},
		{"empty span", func(m *Manifest) { m.Runs[1].From, m.Runs[1].To = 5, 5 }, "empty span"},
		{"misnamed run", func(m *Manifest) { m.Runs[0].Name = "run-x.run" }, "named"},
		{"floor above coverage", func(m *Manifest) { m.WALFloor = 10 }, "WAL floor"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := testManifest()
			tc.mutate(m)
			err := m.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatal(err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate: err=%v, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestManifestSeqBinding: a manifest file renamed or copied under a
// different generation number is rejected — the embedded sequence is
// authoritative and must match the name it was committed under.
func TestManifestSeqBinding(t *testing.T) {
	mem := newFS(t)
	m := testManifest()
	if err := WriteManifest(mem, dir, m); err != nil {
		t.Fatal(err)
	}
	impostor := filepath.Join(dir, ManifestName(m.Seq+3))
	if err := mem.Rename(filepath.Join(dir, ManifestName(m.Seq)), impostor); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(mem, impostor); err == nil {
		t.Fatal("ReadManifest accepted a manifest under the wrong generation name")
	}
}

func TestListManifests(t *testing.T) {
	mem := newFS(t)
	for _, seq := range []uint64{1, 3} {
		m := &Manifest{Version: ManifestVersion, Seq: seq, BaseLSN: 0, WALFloor: 0}
		if err := WriteManifest(mem, dir, m); err != nil {
			t.Fatal(err)
		}
	}
	// A garbage file under a parseable manifest name still counts for
	// sequence allocation (readers skip it when its frame fails), and
	// an unparseable name is ignored entirely.
	for name, data := range map[string]string{
		ManifestName(7):    "garbage",
		"manifest-abc.mft": "noise",
	} {
		f, err := mem.OpenFile(filepath.Join(dir, name), os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprint(f, data)
		f.Close()
	}
	paths, maxSeq, err := ListManifests(mem, dir)
	if err != nil {
		t.Fatal(err)
	}
	if maxSeq != 7 {
		t.Fatalf("maxSeq = %d, want 7", maxSeq)
	}
	want := []string{
		filepath.Join(dir, ManifestName(7)),
		filepath.Join(dir, ManifestName(3)),
		filepath.Join(dir, ManifestName(1)),
	}
	if !reflect.DeepEqual(paths, want) {
		t.Fatalf("paths = %v, want %v (newest generation first)", paths, want)
	}
}

func TestNameHelpers(t *testing.T) {
	if got := RunName(3, 12); got != "run-00000000000000000003-00000000000000000012.run" {
		t.Fatalf("RunName: %s", got)
	}
	if !IsRun(RunName(3, 12)) || IsRun(ManifestName(3)) || IsRun("checkpoint-3.ckpt") {
		t.Fatal("IsRun misclassifies")
	}
	if seq, ok := ParseManifestSeq(filepath.Join("a", "b", ManifestName(42))); !ok || seq != 42 {
		t.Fatalf("ParseManifestSeq: %d %v", seq, ok)
	}
	for _, bad := range []string{"manifest-x.mft", "manifest-1.txt", "run-1-2.run"} {
		if _, ok := ParseManifestSeq(bad); ok {
			t.Fatalf("ParseManifestSeq accepted %q", bad)
		}
	}
}
