// Package runfile implements the on-disk layout of the durable
// layer's incremental checkpoints: immutable, checksummed delta run
// files plus a manifest that names the current generation — the base
// image, the ordered run chain on top of it, and the WAL floor the
// generation allows pruning to.
//
// The package owns only file-format concerns (framing, checksums,
// naming, manifest invariants); what a run's payload MEANS is the
// caller's business (the durable layer stores core.ImageDelta JSON).
// Both file kinds share one frame: a single header line carrying a
// magic tag, the payload's CRC-32C and its exact length, followed by
// the payload bytes. A torn, truncated, or bit-flipped file fails the
// frame check loudly instead of decoding to plausible garbage.
//
// Run files and manifests are immutable once renamed into place
// (vfs.WriteFileAtomic); a new manifest generation supersedes the old
// one by carrying a higher sequence number, and readers pick the
// newest manifest that parses AND frames clean — which is what lets
// recovery fall back a generation when the newest one was torn by a
// crash on a lying disk. All IO flows through vfs.FS so fault
// injection sees every operation.
package runfile

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/pghive/pghive/internal/vfs"
)

// ManifestVersion is the manifest format version.
const ManifestVersion = 1

// File-kind magic tags (the first token of the frame header line).
const (
	runMagic      = "PGHRUN1"
	manifestMagic = "PGHMFT1"
)

// Name shapes. LSNs are zero-padded so lexicographic order equals
// numeric order, like checkpoint images.
const (
	runSuffix      = ".run"
	manifestPrefix = "manifest-"
	manifestSuffix = ".mft"
)

// Glob patterns (relative to the data directory) matching the
// package's file kinds — for the durable layer's GC sweep.
const (
	RunGlobPattern      = "run-*" + runSuffix
	ManifestGlobPattern = manifestPrefix + "*" + manifestSuffix
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// RunInfo describes one delta run from the manifest's point of view:
// the WAL span it covers, and enough redundancy (size, payload CRC,
// tombstone count) to verify the file body belongs to this manifest
// and to drive the fold heuristics without opening it.
type RunInfo struct {
	// Name is the run's file name (no directory).
	Name string `json:"name"`
	// From / To bound the covered WAL span (From exclusive, To
	// inclusive): the run applies to a state covering From and
	// advances it to To.
	From uint64 `json:"from"`
	To   uint64 `json:"to"`
	// Bytes is the full file size (frame + payload).
	Bytes int64 `json:"bytes"`
	// CRC is the payload's CRC-32C, duplicated from the frame so a
	// stale file under the right name cannot impersonate the run.
	CRC uint32 `json:"crc"`
	// Tombstones counts the deletions the run carries.
	Tombstones int `json:"tombstones"`
}

// Manifest names one consistent generation of the incremental
// checkpoint: base image + ordered runs = the state covering
// Covered(); WAL records above that replay on top at recovery.
type Manifest struct {
	Version int `json:"version"`
	// Seq orders generations; readers trust the highest sequence that
	// validates. Zero is reserved for the implicit pre-manifest state.
	Seq uint64 `json:"seq"`
	// Base is the base image's file name ("" = the empty state; the
	// options-derived image every chain starts from).
	Base string `json:"base,omitempty"`
	// BaseLSN is the WAL LSN the base image covers.
	BaseLSN uint64 `json:"baseLSN"`
	// BaseElements counts the elements (nodes + edges) in the base —
	// the denominator of the fold-triggering tombstone ratio.
	BaseElements int `json:"baseElements"`
	// Runs is the delta chain, contiguous from BaseLSN.
	Runs []RunInfo `json:"runs,omitempty"`
	// WALFloor is the highest LSN whose segments this generation
	// permits pruning. It deliberately trails Covered() by one
	// generation so recovery can fall back to the PREVIOUS manifest
	// and still find every WAL record above that older coverage.
	WALFloor uint64 `json:"walFloor"`
	// ShippedLSN is the shipping upload watermark at the time this
	// generation was written: every WAL record at or below it was
	// durable in the configured storage backend. Pruning must never
	// pass min(WALFloor, ShippedLSN) while shipping is enabled — a
	// segment deleted before it is uploaded is a record followers can
	// never fetch. Zero when shipping is disabled or nothing has
	// shipped; may exceed Covered() when sealed segments beyond the
	// fold have already been uploaded.
	ShippedLSN uint64 `json:"shippedLSN,omitempty"`
}

// Covered returns the WAL LSN the generation's base + runs reach.
func (m *Manifest) Covered() uint64 {
	if n := len(m.Runs); n > 0 {
		return m.Runs[n-1].To
	}
	return m.BaseLSN
}

// Tombstones sums the deletions carried by the run chain.
func (m *Manifest) Tombstones() int {
	n := 0
	for _, r := range m.Runs {
		n += r.Tombstones
	}
	return n
}

// Files returns the base-name set of every data file the generation
// references (the manifest file itself is named by Seq, not listed).
func (m *Manifest) Files() map[string]bool {
	files := make(map[string]bool, len(m.Runs)+1)
	if m.Base != "" {
		files[m.Base] = true
	}
	for _, r := range m.Runs {
		files[r.Name] = true
	}
	return files
}

// Validate checks the manifest's internal invariants: version, run
// naming, chain contiguity from the base LSN, and a WAL floor at or
// below the covered LSN.
func (m *Manifest) Validate() error {
	if m.Version != ManifestVersion {
		return fmt.Errorf("runfile: unsupported manifest version %d", m.Version)
	}
	prev := m.BaseLSN
	for i, r := range m.Runs {
		if r.From != prev {
			return fmt.Errorf("runfile: manifest seq %d: run %d covers (%d, %d] but chain stands at %d", m.Seq, i, r.From, r.To, prev)
		}
		if r.To <= r.From {
			return fmt.Errorf("runfile: manifest seq %d: run %d has empty span (%d, %d]", m.Seq, i, r.From, r.To)
		}
		if r.Name != RunName(r.From, r.To) {
			return fmt.Errorf("runfile: manifest seq %d: run %d named %q, want %q", m.Seq, i, r.Name, RunName(r.From, r.To))
		}
		prev = r.To
	}
	if m.WALFloor > m.Covered() {
		return fmt.Errorf("runfile: manifest seq %d: WAL floor %d above covered LSN %d", m.Seq, m.WALFloor, m.Covered())
	}
	return nil
}

// RunName names the run covering WAL LSNs (from, to].
func RunName(from, to uint64) string {
	return fmt.Sprintf("run-%020d-%020d%s", from, to, runSuffix)
}

// ManifestName names the manifest of generation seq.
func ManifestName(seq uint64) string {
	return fmt.Sprintf("%s%020d%s", manifestPrefix, seq, manifestSuffix)
}

// ParseManifestSeq extracts the generation number from a manifest
// file name (base name or path).
func ParseManifestSeq(name string) (uint64, bool) {
	base := filepath.Base(name)
	if !strings.HasPrefix(base, manifestPrefix) || !strings.HasSuffix(base, manifestSuffix) {
		return 0, false
	}
	num := strings.TrimSuffix(strings.TrimPrefix(base, manifestPrefix), manifestSuffix)
	seq, err := strconv.ParseUint(num, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// IsRun reports whether name (base name or path) is shaped like a run
// file.
func IsRun(name string) bool {
	base := filepath.Base(name)
	return strings.HasPrefix(base, "run-") && strings.HasSuffix(base, runSuffix)
}

// writeFramed stages magic + CRC + length + payload and atomically
// renames it to path.
func writeFramed(fsys vfs.FS, path, magic string, payload []byte) error {
	return vfs.WriteFileAtomic(fsys, path, func(w io.Writer) error {
		if _, err := fmt.Fprintf(w, "%s crc=%08x len=%d\n", magic, crc32.Checksum(payload, crcTable), len(payload)); err != nil {
			return err
		}
		_, err := w.Write(payload)
		return err
	})
}

// readFramed reads path and verifies its frame, returning the payload
// and its (verified) CRC.
func readFramed(fsys vfs.FS, path, magic string) ([]byte, uint32, error) {
	f, err := vfs.Open(fsys, path)
	if err != nil {
		return nil, 0, fmt.Errorf("runfile: %w", err)
	}
	defer f.Close()
	raw, err := io.ReadAll(f)
	if err != nil {
		return nil, 0, fmt.Errorf("runfile: %s: %w", path, err)
	}
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, 0, fmt.Errorf("runfile: %s: missing frame header", path)
	}
	var gotMagic string
	var crc uint32
	var length int
	if _, err := fmt.Sscanf(string(raw[:nl]), "%s crc=%x len=%d", &gotMagic, &crc, &length); err != nil {
		return nil, 0, fmt.Errorf("runfile: %s: malformed frame header: %w", path, err)
	}
	if gotMagic != magic {
		return nil, 0, fmt.Errorf("runfile: %s: magic %q, want %q", path, gotMagic, magic)
	}
	payload := raw[nl+1:]
	if len(payload) != length {
		return nil, 0, fmt.Errorf("runfile: %s: payload is %d bytes, frame says %d", path, len(payload), length)
	}
	if got := crc32.Checksum(payload, crcTable); got != crc {
		return nil, 0, fmt.Errorf("runfile: %s: payload CRC %08x, frame says %08x", path, got, crc)
	}
	return payload, crc, nil
}

// frameSize returns the full on-disk size of a framed payload.
func frameSize(magic string, payload []byte) int64 {
	header := fmt.Sprintf("%s crc=%08x len=%d\n", magic, crc32.Checksum(payload, crcTable), len(payload))
	return int64(len(header) + len(payload))
}

// WriteRun atomically writes the run covering (from, to] into dir and
// returns its manifest entry. tombstones is the caller-counted number
// of deletions in the payload.
func WriteRun(fsys vfs.FS, dir string, from, to uint64, tombstones int, payload []byte) (RunInfo, error) {
	fsys = vfs.OrOS(fsys)
	name := RunName(from, to)
	if err := writeFramed(fsys, filepath.Join(dir, name), runMagic, payload); err != nil {
		return RunInfo{}, fmt.Errorf("runfile: write %s: %w", name, err)
	}
	return RunInfo{
		Name:       name,
		From:       from,
		To:         to,
		Bytes:      frameSize(runMagic, payload),
		CRC:        crc32.Checksum(payload, crcTable),
		Tombstones: tombstones,
	}, nil
}

// ReadRun reads and verifies the run info describes: frame intact,
// and CRC equal to the one the manifest recorded — so a leftover or
// half-superseded file under the expected name cannot be mistaken for
// the manifest's run.
func ReadRun(fsys vfs.FS, dir string, info RunInfo) ([]byte, error) {
	fsys = vfs.OrOS(fsys)
	payload, crc, err := readFramed(fsys, filepath.Join(dir, info.Name), runMagic)
	if err != nil {
		return nil, err
	}
	if crc != info.CRC {
		return nil, fmt.Errorf("runfile: %s: payload CRC %08x, manifest says %08x", info.Name, crc, info.CRC)
	}
	return payload, nil
}

// WriteManifest atomically writes m into dir under its generation
// name. The payload is indented JSON inside the standard frame, so
// manifests stay operator-readable and golden-diffable while torn
// writes are still detected by checksum, not by JSON parse luck.
func WriteManifest(fsys vfs.FS, dir string, m *Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	payload, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("runfile: encode manifest: %w", err)
	}
	payload = append(payload, '\n')
	name := ManifestName(m.Seq)
	if err := writeFramed(vfs.OrOS(fsys), filepath.Join(dir, name), manifestMagic, payload); err != nil {
		return fmt.Errorf("runfile: write %s: %w", name, err)
	}
	return nil
}

// ReadManifest reads and validates one manifest file. The generation
// number embedded in the file must match the file's name — a manifest
// renamed or copied under the wrong sequence is rejected.
func ReadManifest(fsys vfs.FS, path string) (*Manifest, error) {
	fsys = vfs.OrOS(fsys)
	payload, _, err := readFramed(fsys, path, manifestMagic)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("runfile: %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("runfile: %s: %w", path, err)
	}
	if seq, ok := ParseManifestSeq(path); !ok || seq != m.Seq {
		return nil, fmt.Errorf("runfile: %s: file carries generation %d", path, m.Seq)
	}
	return &m, nil
}

// ListManifests returns the paths of every manifest-shaped file in
// dir, newest generation first, plus the highest generation number
// seen among them (valid or not) — the floor for allocating the next
// generation, so a corrupt lingering manifest can never outrank a
// fresh one.
func ListManifests(fsys vfs.FS, dir string) (paths []string, maxSeq uint64, err error) {
	fsys = vfs.OrOS(fsys)
	names, err := fsys.Glob(filepath.Join(dir, ManifestGlobPattern))
	if err != nil {
		return nil, 0, fmt.Errorf("runfile: %w", err)
	}
	type cand struct {
		path string
		seq  uint64
	}
	var cands []cand
	for _, n := range names {
		seq, ok := ParseManifestSeq(n)
		if !ok {
			continue
		}
		if seq > maxSeq {
			maxSeq = seq
		}
		cands = append(cands, cand{path: n, seq: seq})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].seq > cands[j].seq })
	for _, c := range cands {
		paths = append(paths, c.path)
	}
	return paths, maxSeq, nil
}
