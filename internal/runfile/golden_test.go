package runfile

// Golden-file snapshot tests pinning the on-disk run and manifest
// formats byte for byte: the frame header (magic, CRC, length) and
// the manifest's JSON rendering are recovery-critical interfaces, so
// any drift must show up as a readable diff against checked-in files,
// not as a recovery failure on someone's data directory. Regenerate
// after an intentional format change with:
//
//	go test ./internal/runfile -run Golden -update

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"

	"github.com/pghive/pghive/internal/vfs"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

func checkGolden(t *testing.T, mem *vfs.MemFS, path, golden string) {
	t.Helper()
	f, err := vfs.Open(mem, path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", golden)
	if *update {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("%s drifted from %s:\n got: %q\nwant: %q", path, goldenPath, got, want)
	}
}

func TestGoldenRunFormat(t *testing.T) {
	mem := newFS(t)
	// A fixed payload: the byte layout under test is the frame, not
	// the (caller-owned) payload encoding.
	payload := []byte(`{"version":1,"fromLSN":2,"toLSN":5,"nodeUnassign":[7]}` + "\n")
	info, err := WriteRun(mem, dir, 2, 5, 1, payload)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, mem, filepath.Join(dir, info.Name), "run.golden")
}

func TestGoldenManifestFormat(t *testing.T) {
	mem := newFS(t)
	m := testManifest()
	if err := WriteManifest(mem, dir, m); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, mem, filepath.Join(dir, ManifestName(m.Seq)), "manifest.golden")
}
