package histcheck

// histcheck_test.go: the checker against itself. Three layers: the
// live concurrent run (a real Service must produce a passing
// history), hand-built minimal histories that hit each violation
// kind precisely, and the seeded-violation self-test — tamper one
// fact in an otherwise honest recorded history and prove the checker
// notices. The last layer is what certifies the harness has teeth:
// a checker that passes real runs but also passes corrupted ones
// verifies nothing.

import (
	"encoding/json"
	"strings"
	"testing"

	pghive "github.com/pghive/pghive"
)

// runLive drives the scripted workload against a fresh in-process
// service and returns the recorded history.
func runLive(t *testing.T, cfg Config) *History {
	t.Helper()
	svc := pghive.NewService(pghive.Options{Seed: 1, Parallelism: 2})
	h, err := Run(func(string) Client { return ServiceClient{Svc: svc} }, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return h
}

func TestLiveServiceHistoryPasses(t *testing.T) {
	cfg := Config{Writers: 4, BatchesPerWriter: 6, Readers: 3, ReadsPerReader: 30}
	if testing.Short() {
		cfg = Config{Writers: 2, BatchesPerWriter: 3, Readers: 2, ReadsPerReader: 9}
	}
	for round := 0; round < 3; round++ {
		h := runLive(t, cfg)
		if err := Check(h); err != nil {
			t.Fatalf("round %d: live history rejected: %v", round, err)
		}
		// Sanity: the run actually recorded concurrent work.
		acks, obs := 0, 0
		for _, e := range h.Events {
			if e.Writer != "" {
				acks++
			} else {
				obs++
			}
		}
		if want := cfg.Writers * cfg.BatchesPerWriter; acks != want {
			t.Fatalf("recorded %d acks, want %d", acks, want)
		}
		if obs == 0 {
			t.Fatal("recorded no observations")
		}
	}
}

// TestHistoryJSONRoundTrip: histories survive serialization, so
// recorded runs can be archived and re-checked (and fuzzed).
func TestHistoryJSONRoundTrip(t *testing.T) {
	h := runLive(t, Config{Writers: 2, BatchesPerWriter: 2, Readers: 1, ReadsPerReader: 6})
	raw, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back History
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if err := Check(&back); err != nil {
		t.Fatalf("round-tripped history rejected: %v", err)
	}
}

// deepCopy clones a history so tampering one probe cannot leak into
// the next.
func deepCopy(t *testing.T, h *History) *History {
	t.Helper()
	raw, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var out History
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	return &out
}

// TestSeededViolationsAreCaught records one honest run, then seeds a
// single deliberate corruption per case and requires the checker to
// flag it with the right kind.
func TestSeededViolationsAreCaught(t *testing.T) {
	base := runLive(t, Config{Writers: 3, BatchesPerWriter: 4, Readers: 2, ReadsPerReader: 18})
	if err := Check(base); err != nil {
		t.Fatalf("baseline history rejected: %v", err)
	}

	// Helpers shared by the tamper cases: which snapshot numbers were
	// observed how often, the globally latest-ending snapshot
	// observation, and the total scripted batch count.
	snapCounts := func(h *History) map[uint64]int {
		m := map[uint64]int{}
		for _, e := range h.Events {
			if e.Obs != nil && e.Obs.HasSnapshot {
				m[e.Obs.Snapshot]++
			}
		}
		return m
	}
	totalBatches := func(h *History) int {
		n := 0
		for _, spec := range h.Writers {
			n += len(spec)
		}
		return n
	}

	cases := []struct {
		name   string
		kind   string
		tamper func(t *testing.T, h *History)
	}{
		{
			// A torn batch: one node appears without its batch. All
			// scripted batch sizes are multiples of five, so +1 can
			// never be a sum of whole batches. Tampering a snapshot
			// that was observed exactly once keeps the determinism
			// check out of the way — only visibility can object.
			name: "torn-batch-node-count",
			kind: KindVisibility,
			tamper: func(t *testing.T, h *History) {
				counts := snapCounts(h)
				for i := range h.Events {
					o := h.Events[i].Obs
					// An atomic-snapshot observation would trip
					// conservation instead; pick a stats-only read of
					// a uniquely observed snapshot.
					if o != nil && o.HasStats && o.HasSnapshot && !o.HasInstances && counts[o.Snapshot] == 1 {
						o.Nodes++
						return
					}
				}
				t.Fatal("no uniquely observed snapshot to tamper")
			},
		},
		{
			// A phantom batch: the latest-ending observation claims
			// more batches than the whole script holds, on a snapshot
			// number beyond any real one (so neither real-time order
			// nor determinism is disturbed — only visibility).
			name: "phantom-batch",
			kind: KindVisibility,
			tamper: func(t *testing.T, h *History) {
				var maxSnap uint64
				for s := range snapCounts(h) {
					if s > maxSnap {
						maxSnap = s
					}
				}
				best := -1
				for i, e := range h.Events {
					if e.Obs != nil && e.Obs.HasStats && e.Obs.HasSnapshot &&
						(best < 0 || e.End > h.Events[best].End) {
						best = i
					}
				}
				if best < 0 {
					t.Fatal("no stats observation to tamper")
				}
				o := h.Events[best].Obs
				o.Snapshot = maxSnap + 1
				o.Batches = totalBatches(h) + 1
			},
		},
		{
			// A client's snapshot moving backwards: rewind a session's
			// last snapshot observation to its first, in a session
			// that observed something newer in between. The rewound
			// stats match the earlier observation exactly, so only
			// the per-session time-travel is wrong.
			name: "snapshot-rewind",
			kind: KindMonotonicity,
			tamper: func(t *testing.T, h *History) {
				idxsBySession := map[string][]int{}
				for i, e := range h.Events {
					if e.Obs != nil && e.Obs.HasSnapshot {
						idxsBySession[e.Session] = append(idxsBySession[e.Session], i)
					}
				}
				for _, idxs := range idxsBySession {
					if len(idxs) < 3 {
						continue
					}
					first := h.Events[idxs[0]].Obs
					mid := h.Events[idxs[len(idxs)/2]].Obs
					last := h.Events[idxs[len(idxs)-1]].Obs
					if !(first.Snapshot < mid.Snapshot && mid.Snapshot <= last.Snapshot) {
						continue
					}
					*last = *first // rewind below the middle observation
					return
				}
				t.Fatal("no session with advancing snapshots to tamper")
			},
		},
		{
			// One snapshot number, two different node counts: a fresh
			// session re-observes the globally newest snapshot with
			// five fewer nodes. The snapshot number is the maximum,
			// so real-time order still holds; determinism cannot.
			name: "split-brain-snapshot",
			kind: KindDeterminism,
			tamper: func(t *testing.T, h *History) {
				best := -1
				for i, e := range h.Events {
					if o := e.Obs; o != nil && o.HasStats && o.HasSnapshot && o.Nodes >= 5 &&
						(best < 0 || o.Snapshot > h.Events[best].Obs.Snapshot) {
						best = i
					}
				}
				if best < 0 {
					t.Fatal("no observation large enough to tamper")
				}
				var maxEnd int64
				for _, e := range h.Events {
					if e.End > maxEnd {
						maxEnd = e.End
					}
				}
				dup := *h.Events[best].Obs
				dup.Nodes -= 5
				dup.HasInstances = false
				h.Events = append(h.Events, Event{
					Session: "r-split", Start: maxEnd + 1, End: maxEnd + 2, Obs: &dup,
				})
			},
		},
		{
			// Schema and stats from one atomic snapshot disagree on
			// how many nodes exist.
			name: "instance-leak",
			kind: KindConservation,
			tamper: func(t *testing.T, h *History) {
				for i := range h.Events {
					if o := h.Events[i].Obs; o != nil && o.HasStats && o.HasInstances {
						o.NodeInstances += 5
						return
					}
				}
				t.Fatal("no atomic snapshot observation to tamper")
			},
		},
		{
			// An acked write that never became visible: push an
			// observation of the empty service to the end of real
			// time, after every ack completed.
			name: "lost-write",
			kind: KindVisibility,
			tamper: func(t *testing.T, h *History) {
				var maxEnd int64
				for _, e := range h.Events {
					if e.End > maxEnd {
						maxEnd = e.End
					}
				}
				h.Events = append(h.Events, Event{
					Session: "r-late", Start: maxEnd + 1, End: maxEnd + 2,
					Obs: &Observation{HasStats: true},
				})
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := deepCopy(t, base)
			tc.tamper(t, h)
			err := Check(h)
			if err == nil {
				t.Fatal("checker accepted the seeded violation")
			}
			v, ok := err.(*Violation)
			if !ok {
				t.Fatalf("error %v is not a *Violation", err)
			}
			if v.Kind != tc.kind {
				t.Fatalf("flagged kind %q (%v), want %q", v.Kind, v, tc.kind)
			}
		})
	}
}

// Hand-built minimal histories: each checker branch demonstrated on
// the smallest history that trips it, independent of any live run.

func spec1() map[string][]BatchSpec {
	return map[string][]BatchSpec{"w0": {{Nodes: 5, Edges: 5}, {Nodes: 10, Edges: 10}}}
}

func obsEv(session string, start, end int64, o Observation) Event {
	return Event{Session: session, Start: start, End: end, Obs: &o}
}

func ackEv(writer string, seq int, start, end int64) Event {
	return Event{Session: writer, Start: start, End: end, Writer: writer, Seq: seq}
}

func statsObs(snap uint64, batches, nodes, edges int) Observation {
	return Observation{HasSnapshot: true, Snapshot: snap, HasStats: true,
		Batches: batches, Nodes: nodes, Edges: edges}
}

func TestCheckMinimalHistories(t *testing.T) {
	cases := []struct {
		name string
		h    History
		kind string // "" = must pass
	}{
		{
			name: "valid-sequential",
			h: History{Writers: spec1(), Events: []Event{
				obsEv("r0", 1, 2, statsObs(0, 0, 0, 0)),
				ackEv("w0", 1, 3, 4),
				obsEv("r0", 5, 6, statsObs(1, 1, 5, 5)),
				ackEv("w0", 2, 7, 8),
				obsEv("r0", 9, 10, statsObs(2, 2, 15, 15)),
			}},
		},
		{
			name: "valid-concurrent-read-may-miss-inflight-write",
			h: History{Writers: spec1(), Events: []Event{
				ackEv("w0", 1, 1, 10),
				obsEv("r0", 2, 3, statsObs(0, 0, 0, 0)), // overlaps the ack: either state is legal
			}},
		},
		{
			name: "ack-unknown-writer",
			kind: KindMalformed,
			h: History{Writers: spec1(), Events: []Event{
				ackEv("w9", 1, 1, 2),
			}},
		},
		{
			name: "ack-seq-gap",
			kind: KindMalformed,
			h: History{Writers: spec1(), Events: []Event{
				ackEv("w0", 2, 1, 2),
			}},
		},
		{
			name: "inverted-stamps",
			kind: KindMalformed,
			h: History{Writers: spec1(), Events: []Event{
				obsEv("r0", 5, 5, statsObs(0, 0, 0, 0)),
			}},
		},
		{
			name: "session-time-travel",
			kind: KindMonotonicity,
			h: History{Writers: spec1(), Events: []Event{
				ackEv("w0", 1, 1, 2),
				obsEv("r0", 3, 4, statsObs(1, 1, 5, 5)),
				obsEv("r0", 5, 6, statsObs(0, 0, 0, 0)),
			}},
		},
		{
			name: "cross-session-time-travel",
			kind: KindRealtime,
			h: History{Writers: spec1(), Events: []Event{
				ackEv("w0", 1, 1, 2),
				obsEv("r0", 3, 4, statsObs(1, 1, 5, 5)),
				obsEv("r1", 5, 6, statsObs(0, 0, 0, 0)),
			}},
		},
		{
			name: "snapshot-determinism",
			kind: KindDeterminism,
			h: History{Writers: spec1(), Events: []Event{
				ackEv("w0", 1, 1, 2),
				obsEv("r0", 3, 4, statsObs(1, 1, 5, 5)),
				obsEv("r1", 3, 4, statsObs(1, 1, 5, 4)),
			}},
		},
		{
			name: "torn-batch",
			kind: KindVisibility,
			h: History{Writers: spec1(), Events: []Event{
				ackEv("w0", 1, 1, 2),
				obsEv("r0", 3, 4, statsObs(1, 1, 3, 3)), // 3 of the 5 nodes: torn
			}},
		},
		{
			name: "read-your-writes-lost",
			kind: KindVisibility,
			h: History{Writers: spec1(), Events: []Event{
				ackEv("w0", 1, 1, 2),
				obsEv("w0", 3, 4, statsObs(0, 0, 0, 0)), // own acked batch invisible
			}},
		},
		{
			name: "schema-only-torn",
			kind: KindVisibility,
			h: History{Writers: spec1(), Events: []Event{
				ackEv("w0", 1, 1, 2),
				obsEv("r0", 3, 4, Observation{HasInstances: true, NodeInstances: 6, EdgeInstances: 5}),
			}},
		},
		{
			name: "conservation",
			kind: KindConservation,
			h: History{Writers: spec1(), Events: []Event{
				ackEv("w0", 1, 1, 2),
				obsEv("r0", 3, 4, Observation{
					HasSnapshot: true, Snapshot: 1, HasStats: true, Batches: 1, Nodes: 5, Edges: 5,
					HasInstances: true, NodeInstances: 10, EdgeInstances: 5,
				}),
			}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Check(&tc.h)
			if tc.kind == "" {
				if err != nil {
					t.Fatalf("valid history rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("violation not detected, want kind %q", tc.kind)
			}
			v, ok := err.(*Violation)
			if !ok || v.Kind != tc.kind {
				t.Fatalf("got %v, want kind %q", err, tc.kind)
			}
			if !strings.Contains(err.Error(), "histcheck:") {
				t.Fatalf("error %q lacks package prefix", err)
			}
		})
	}
}

// TestCheckNilHistory: the checker degrades to an error, never a
// panic, on the degenerate input.
func TestCheckNilHistory(t *testing.T) {
	err := Check(nil)
	if v, ok := err.(*Violation); !ok || v.Kind != KindMalformed {
		t.Fatalf("Check(nil) = %v, want malformed violation", err)
	}
}
