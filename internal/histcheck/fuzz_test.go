package histcheck

// fuzz_test.go: the checker must be total — any byte string either
// decodes into a history that Check classifies (pass or violation)
// or fails to decode; nothing may panic or hang. The seed corpus
// mixes a genuinely recorded live-service history with hand-built
// minimal ones, so mutation starts from realistic structure.

import (
	"encoding/json"
	"testing"

	pghive "github.com/pghive/pghive"
)

func FuzzHistoryCheck(f *testing.F) {
	// Seed 1: a real recorded history from a small live run.
	svc := pghive.NewService(pghive.Options{Seed: 1, Parallelism: 1})
	h, err := Run(func(string) Client { return ServiceClient{Svc: svc} },
		Config{Writers: 2, BatchesPerWriter: 2, Readers: 1, ReadsPerReader: 3})
	if err != nil {
		f.Fatal(err)
	}
	raw, err := json.Marshal(h)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)

	// Seed 2: a minimal valid history.
	f.Add([]byte(`{"writers":{"w0":[{"nodes":5,"edges":5}]},"events":[` +
		`{"session":"w0","start":1,"end":2,"writer":"w0","seq":1},` +
		`{"session":"r0","start":3,"end":4,"obs":{"hasSnapshot":true,"snapshot":1,"hasStats":true,"batches":1,"nodes":5,"edges":5}}]}`))
	// Seed 3: a violating history (torn batch).
	f.Add([]byte(`{"writers":{"w0":[{"nodes":5,"edges":5}]},"events":[` +
		`{"session":"w0","start":1,"end":2,"writer":"w0","seq":1},` +
		`{"session":"r0","start":3,"end":4,"obs":{"hasStats":true,"batches":1,"nodes":3,"edges":3}}]}`))
	// Seed 4: structurally hostile values.
	f.Add([]byte(`{"writers":{"":[]},"events":[{"session":"x","start":9,"end":9,"obs":{}}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var h History
		if err := json.Unmarshal(data, &h); err != nil {
			return // not a history; nothing to check
		}
		// Whatever decoded, Check must terminate without panicking.
		_ = Check(&h)

		// And a history the checker accepts must still be accepted
		// after a JSON round trip (the checker is deterministic on
		// the value, not the encoding).
		if Check(&h) == nil {
			raw, err := json.Marshal(&h)
			if err != nil {
				return
			}
			var back History
			if err := json.Unmarshal(raw, &back); err != nil {
				t.Fatalf("re-decode of accepted history failed: %v", err)
			}
			if err := Check(&back); err != nil {
				t.Fatalf("accepted history rejected after round trip: %v", err)
			}
		}
	})
}
