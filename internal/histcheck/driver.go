package histcheck

// driver.go: the recording workload driver. Run spawns writer and
// reader sessions against any Client transport (in-process service,
// HTTP — anything that can ingest a graph and read stats), stamps
// every call on a shared logical clock, and returns the History for
// Check. The driver owns the batch script: each writer ingests a
// deterministic sequence of disjoint-ID graphs whose node counts are
// multiples of five, so no sum of whole batches can be confused with
// a torn one by a single element.

import (
	"fmt"
	"sync"
	"sync/atomic"

	pghive "github.com/pghive/pghive"
)

// Client is one session's transport to the service under test.
// Implementations must be safe for a single goroutine; the driver
// never shares a Client across sessions.
type Client interface {
	// Ingest applies one batch; returning means the service
	// acknowledged it (applied and published).
	Ingest(g *pghive.Graph) error
	// Stats reads the service's element totals (HasSnapshot+HasStats).
	Stats() (Observation, error)
	// Schema reads the published schema document and sums its
	// non-abstract per-type instance counts (HasInstances).
	Schema() (Observation, error)
	// Snapshot reads stats and instance sums from ONE atomic
	// snapshot when the transport can (ok=false when it cannot, e.g.
	// over HTTP where stats and schema are separate requests).
	Snapshot() (Observation, bool, error)
}

// Config sizes a Run. Zero fields get modest defaults.
type Config struct {
	Writers          int // concurrent writer sessions (default 3)
	BatchesPerWriter int // scripted batches each (default 4)
	Readers          int // concurrent reader sessions (default 2)
	ReadsPerReader   int // observations each (default 16)

	// Replicas names the read-only follower servers a RunReplicated
	// workload also reads from; the names end up in History.Replicas
	// so the checker applies replica semantics to those reads. Run
	// ignores this field.
	Replicas []string
	// ReplicaReaders is the number of concurrent reader sessions per
	// replica (default 1 when Replicas is non-empty), each issuing
	// ReadsPerReader observations.
	ReplicaReaders int

	// IDStride separates writer ID namespaces (default 1 << 20).
	IDStride pghive.ID
}

func (c Config) withDefaults() Config {
	if c.Writers <= 0 {
		c.Writers = 3
	}
	if c.BatchesPerWriter <= 0 {
		c.BatchesPerWriter = 4
	}
	if c.Readers < 0 {
		c.Readers = 0
	} else if c.Readers == 0 {
		c.Readers = 2
	}
	if c.ReadsPerReader <= 0 {
		c.ReadsPerReader = 16
	}
	if c.ReplicaReaders <= 0 && len(c.Replicas) > 0 {
		c.ReplicaReaders = 1
	}
	if c.IDStride <= 0 {
		c.IDStride = 1 << 20
	}
	return c
}

// Script returns the deterministic batch plan Run will ingest for
// this config: batch k of writer w carries 5*(1+(w+k)%3) nodes in a
// ring of as many edges. Exposed so tests can precompute totals.
func (c Config) Script() map[string][]BatchSpec {
	c = c.withDefaults()
	script := make(map[string][]BatchSpec, c.Writers)
	for w := 0; w < c.Writers; w++ {
		name := fmt.Sprintf("w%d", w)
		for k := 0; k < c.BatchesPerWriter; k++ {
			n := 5 * (1 + (w+k)%3)
			script[name] = append(script[name], BatchSpec{Nodes: n, Edges: n})
		}
	}
	return script
}

// recorder collects stamped events from all sessions. The clock is a
// shared atomic counter: a tick taken before a call and one taken
// after bracket every real-time effect of that call.
type recorder struct {
	clock  atomic.Int64
	mu     sync.Mutex
	events []Event
}

func (r *recorder) tick() int64 { return r.clock.Add(1) }

func (r *recorder) record(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Run drives the scripted workload through per-session Clients and
// returns the recorded History. newClient is called once per session
// (sessions "w0".. write, "r0".. read) and may return the same
// underlying service wrapped per call. The first transport error
// aborts the run. Config.Replicas is ignored; use RunReplicated to
// also read from followers.
func Run(newClient func(session string) Client, cfg Config) (*History, error) {
	cfg.Replicas = nil
	return RunReplicated(func(session, _ string) Client { return newClient(session) }, cfg)
}

// RunReplicated is Run extended across a replication topology: the
// scripted writers and the plain readers target the leader (server
// ""), and for every name in cfg.Replicas, cfg.ReplicaReaders extra
// reader sessions observe that follower, with their events stamped
// Server so the checker holds them to replica semantics (atomicity
// mandatory, freshness per server). newClient receives the session
// name and the server it must talk to ("" = leader).
func RunReplicated(newClient func(session, server string) Client, cfg Config) (*History, error) {
	cfg = cfg.withDefaults()
	script := cfg.Script()
	rec := &recorder{}

	var wg sync.WaitGroup
	var firstErr atomic.Pointer[error]
	fail := func(err error) {
		if err != nil {
			firstErr.CompareAndSwap(nil, &err)
		}
	}

	for w := 0; w < cfg.Writers; w++ {
		name := fmt.Sprintf("w%d", w)
		base := pghive.ID(w+1) * cfg.IDStride
		c := newClient(name, "")
		wg.Add(1)
		go func() {
			defer wg.Done()
			off := pghive.ID(0) // running ID offset: batches use disjoint ranges
			for k, spec := range script[name] {
				if firstErr.Load() != nil {
					return
				}
				g := buildBatch(base+off, spec)
				off += pghive.ID(spec.Nodes)
				start := rec.tick()
				err := c.Ingest(g)
				end := rec.tick()
				if err != nil {
					fail(fmt.Errorf("histcheck: %s ingest %d: %w", name, k+1, err))
					return
				}
				rec.record(Event{Session: name, Start: start, End: end, Writer: name, Seq: k + 1})

				// Read-your-writes probe: a stats read issued after
				// the ack must (per the stamps) include this batch.
				if _, err := observe(rec, name, "", c, k); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	for r := 0; r < cfg.Readers; r++ {
		name := fmt.Sprintf("r%d", r)
		c := newClient(name, "")
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < cfg.ReadsPerReader; i++ {
				if firstErr.Load() != nil {
					return
				}
				if _, err := observe(rec, name, "", c, i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	for _, server := range cfg.Replicas {
		for r := 0; r < cfg.ReplicaReaders; r++ {
			name := fmt.Sprintf("%s/r%d", server, r)
			c := newClient(name, server)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < cfg.ReadsPerReader; i++ {
					if firstErr.Load() != nil {
						return
					}
					if _, err := observe(rec, name, server, c, i); err != nil {
						fail(err)
						return
					}
				}
			}()
		}
	}
	wg.Wait()
	if ep := firstErr.Load(); ep != nil {
		return nil, *ep
	}
	return &History{Writers: script, Events: rec.events, Replicas: cfg.Replicas}, nil
}

// observe issues the i-th read for a session against server, rotating
// across the three read shapes so every run exercises stats,
// schema-document, and (when the transport supports it)
// atomic-snapshot observations.
func observe(rec *recorder, session, server string, c Client, i int) (Observation, error) {
	var obs Observation
	var err error
	switch i % 3 {
	case 0:
		start := rec.tick()
		obs, err = c.Stats()
		end := rec.tick()
		if err == nil {
			rec.record(Event{Session: session, Server: server, Start: start, End: end, Obs: &obs})
		}
	case 1:
		start := rec.tick()
		obs, err = c.Schema()
		end := rec.tick()
		if err == nil {
			rec.record(Event{Session: session, Server: server, Start: start, End: end, Obs: &obs})
		}
	default:
		start := rec.tick()
		var ok bool
		obs, ok, err = c.Snapshot()
		end := rec.tick()
		if err == nil && !ok {
			// Transport can't read atomically; fall back to stats.
			start = rec.tick()
			obs, err = c.Stats()
			end = rec.tick()
		}
		if err == nil {
			rec.record(Event{Session: session, Server: server, Start: start, End: end, Obs: &obs})
		}
	}
	if err != nil {
		return Observation{}, fmt.Errorf("histcheck: %s read %d: %w", session, i, err)
	}
	return obs, nil
}

// buildBatch materializes one scripted batch: spec.Nodes nodes under
// label "Hist" with an int property, joined in a ring of spec.Edges
// "NEXT" edges. IDs start at base; node and edge IDs live in separate
// namespaces, so both use the same range.
func buildBatch(base pghive.ID, spec BatchSpec) *pghive.Graph {
	g := pghive.NewGraph()
	for i := 0; i < spec.Nodes; i++ {
		id := base + pghive.ID(i)
		if err := g.PutNode(id, []string{"Hist"}, map[string]pghive.Value{
			"k": pghive.Int(int64(i)),
		}); err != nil {
			panic(err) // scripted IDs are disjoint by construction
		}
	}
	for i := 0; i < spec.Edges; i++ {
		src := base + pghive.ID(i%spec.Nodes)
		dst := base + pghive.ID((i+1)%spec.Nodes)
		if err := g.PutEdge(base+pghive.ID(i), []string{"NEXT"}, src, dst, nil); err != nil {
			panic(err)
		}
	}
	return g
}

// ServiceClient adapts an in-process *pghive.Service to the Client
// interface. Its Snapshot reads stats and schema from one published
// ServiceSnapshot, which is what makes the conservation invariant
// checkable at all.
type ServiceClient struct {
	Svc *pghive.Service
}

func (c ServiceClient) Ingest(g *pghive.Graph) error {
	c.Svc.Ingest(g)
	return nil
}

func (c ServiceClient) Stats() (Observation, error) {
	return statsObservation(c.Svc.Stats()), nil
}

func (c ServiceClient) Schema() (Observation, error) {
	nodes, edges := instanceSums(c.Svc.Snapshot().Schema)
	return Observation{HasInstances: true, NodeInstances: nodes, EdgeInstances: edges}, nil
}

func (c ServiceClient) Snapshot() (Observation, bool, error) {
	snap := c.Svc.Snapshot()
	obs := statsObservation(snap.Stats)
	obs.HasInstances = true
	obs.NodeInstances, obs.EdgeInstances = instanceSums(snap.Schema)
	return obs, true, nil
}

func statsObservation(st pghive.ServiceStats) Observation {
	return Observation{
		HasSnapshot: true, Snapshot: st.Snapshot,
		HasStats: true, Batches: st.Batches, Nodes: st.Nodes, Edges: st.Edges,
	}
}

func instanceSums(s *pghive.Schema) (nodes, edges int) {
	for _, ty := range s.NodeTypes {
		if !ty.Abstract {
			nodes += ty.Instances
		}
	}
	for _, ty := range s.EdgeTypes {
		if !ty.Abstract {
			edges += ty.Instances
		}
	}
	return nodes, edges
}
