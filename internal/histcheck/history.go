// Package histcheck is a black-box correctness harness for the
// serving layer: it drives a live service (in-process or over HTTP)
// with concurrent client sessions, records what every session
// observed into a History, and checks that history offline against
// the service's external consistency contract — without ever looking
// inside the implementation.
//
// The workload model is deliberately narrow so the checker can be
// exact: the service starts empty and every mutation is a scripted
// ingest batch whose node/edge counts are known in advance (the
// History carries the script). Under that model the set of states any
// reader may observe is the product of per-writer prefixes — writer w
// having j_w of its batches visible — and every recorded observation
// must be explainable by some prefix vector consistent with the
// real-time bounds the recorder stamped. Batch node counts are kept
// multiples of five by the driver, so a torn batch (a state between
// two prefixes) is arithmetically unreachable and a single off-by-one
// in an observed node count is a detected violation, not noise.
//
// Histories may span replicas: every event carries the name of the
// server it was recorded against (empty = the leader), and
// History.Replicas declares which names are read-only followers.
// A follower serves an asynchronously replicated prefix of the
// leader's log, so the contract splits per server: snapshot
// sequence numbers order reads only within one server (a replica
// may lawfully trail the leader in real time), while atomicity is
// universal — every state any server ever serves must still be a
// sum of whole scripted batches. A replica observation therefore
// keeps the visibility upper bound (it cannot show a write the
// leader had not even begun) but drops the lower bound to zero
// (lag is legal, tearing is not).
//
// Checked invariants (see Check):
//   - per-session snapshot monotonicity: a client never sees one
//     server's publication sequence number move backwards;
//   - real-time snapshot monotonicity, per server: an observation
//     that finished before another began cannot carry a newer
//     snapshot of the same server;
//   - snapshot determinism, per server: two observations of the same
//     server's snapshot sequence number report identical stats;
//   - atomic batch visibility: every observed (nodes, edges, batches)
//     triple is a sum of whole scripted batches, within the
//     prefix-vector bounds implied by ack/observation stamps
//     (replica reads: lower bounds zero, upper bounds unchanged);
//   - instance conservation: an atomic snapshot's per-type instance
//     counts sum to its own node and edge totals;
//   - writes are acknowledged only by the leader: an ack attributed
//     to a declared replica is malformed, never explainable.
package histcheck

// BatchSpec is the externally visible size of one scripted ingest
// batch: how many nodes and edges it adds. The checker only ever
// reasons about these counts, never about batch contents.
type BatchSpec struct {
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
}

// Observation is one read of the service's public state. The three
// Has* flags record which facets the transport returned atomically:
// a stats read carries HasSnapshot+HasStats, a schema read carries
// HasInstances only, and an in-process snapshot carries all three —
// which is what licenses the conservation check between its stats
// and its instance sums.
type Observation struct {
	// HasSnapshot: Snapshot is the publication sequence number the
	// read was served from (0 = the initial empty snapshot).
	HasSnapshot bool   `json:"hasSnapshot,omitempty"`
	Snapshot    uint64 `json:"snapshot,omitempty"`

	// HasStats: the service's own element totals.
	HasStats bool `json:"hasStats,omitempty"`
	Batches  int  `json:"batches,omitempty"`
	Nodes    int  `json:"nodes,omitempty"`
	Edges    int  `json:"edges,omitempty"`

	// HasInstances: sums of per-type instance counts over the
	// published schema, non-abstract types only (abstract supertypes
	// aggregate their children and would double-count).
	HasInstances  bool `json:"hasInstances,omitempty"`
	NodeInstances int  `json:"nodeInstances,omitempty"`
	EdgeInstances int  `json:"edgeInstances,omitempty"`
}

// Event is one entry in a session's recorded history: either a
// mutation acknowledgement (Writer != "") or an observation
// (Obs != nil). Start and End are ticks from the recorder's shared
// logical clock taken immediately before the call was issued and
// immediately after it returned; they are what turns a pile of
// per-session logs into real-time ordering evidence.
type Event struct {
	Session string `json:"session"`
	Start   int64  `json:"start"`
	End     int64  `json:"end"`

	// Server names the server this event was recorded against; empty
	// means the leader. A non-empty Server must be declared in
	// History.Replicas, and only observations may carry one — a
	// replica never acknowledges a write.
	Server string `json:"server,omitempty"`

	// Acknowledgement fields: Writer's batch number Seq (1-based
	// index into History.Writers[Writer]) was durably applied and
	// published before End.
	Writer string `json:"writer,omitempty"`
	Seq    int    `json:"seq,omitempty"`

	Obs *Observation `json:"obs,omitempty"`
}

// History is a complete record of one harness run: the per-writer
// batch script and every session's stamped events. The model assumes
// the service started empty and received no mutations outside the
// script.
type History struct {
	Writers map[string][]BatchSpec `json:"writers"`
	Events  []Event                `json:"events"`

	// Replicas declares the read-only follower names that events may
	// attribute reads to via Event.Server. Declaring them up front
	// (rather than inferring from events) keeps a typo'd Server a
	// detected malformation instead of a silently weakened check.
	Replicas []string `json:"replicas,omitempty"`
}
