package histcheck

// replica_test.go: the checker against a replication topology. Same
// three layers as histcheck_test.go — minimal hand-built histories
// for each replica-specific branch, a live leader-plus-followers run
// that must pass, and seeded corruptions of that live history that
// must not.

import (
	"testing"
	"time"

	pghive "github.com/pghive/pghive"
	"github.com/pghive/pghive/internal/store"
	"github.com/pghive/pghive/internal/vfs"
)

func replicaObsEv(session, server string, start, end int64, o Observation) Event {
	e := obsEv(session, start, end, o)
	e.Server = server
	return e
}

func TestCheckMinimalReplicaHistories(t *testing.T) {
	cases := []struct {
		name string
		h    History
		kind string // "" = must pass
	}{
		{
			// The whole point of per-server freshness: a replica read
			// that finishes after a leader read may still show an
			// older state (here: nothing at all), and a later replica
			// read catches up to a whole-batch prefix.
			name: "valid-replica-lags-leader",
			h: History{Writers: spec1(), Replicas: []string{"a"}, Events: []Event{
				ackEv("w0", 1, 1, 2),
				ackEv("w0", 2, 3, 4),
				obsEv("r0", 5, 6, statsObs(2, 2, 15, 15)),
				replicaObsEv("a/r0", "a", 7, 8, statsObs(0, 0, 0, 0)),
				replicaObsEv("a/r0", "a", 9, 10, statsObs(1, 1, 5, 5)),
			}},
		},
		{
			// A follower's publication counter starts at its bootstrap
			// image, so snapshot numbers need not equal batch counts —
			// only the element totals are pinned to the batch lattice.
			name: "valid-replica-snapshot-counter-unaligned",
			h: History{Writers: spec1(), Replicas: []string{"a"}, Events: []Event{
				ackEv("w0", 1, 1, 2),
				replicaObsEv("a/r0", "a", 3, 4, statsObs(7, 0, 5, 5)),
			}},
		},
		{
			name: "undeclared-server",
			kind: KindMalformed,
			h: History{Writers: spec1(), Events: []Event{
				replicaObsEv("a/r0", "a", 1, 2, statsObs(0, 0, 0, 0)),
			}},
		},
		{
			name: "empty-replica-name",
			kind: KindMalformed,
			h: History{Writers: spec1(), Replicas: []string{""}, Events: []Event{
				obsEv("r0", 1, 2, statsObs(0, 0, 0, 0)),
			}},
		},
		{
			// A write acknowledged by a read-only follower can never be
			// explained, whatever its stamps say.
			name: "replica-acks-write",
			kind: KindMalformed,
			h: History{Writers: spec1(), Replicas: []string{"a"}, Events: []Event{
				{Session: "w0", Server: "a", Start: 1, End: 2, Writer: "w0", Seq: 1},
			}},
		},
		{
			// Lag is legal; tearing is not. 3 of the first batch's 5
			// nodes is a state no log prefix ever held, on any server.
			name: "replica-torn-batch",
			kind: KindVisibility,
			h: History{Writers: spec1(), Replicas: []string{"a"}, Events: []Event{
				ackEv("w0", 1, 1, 2),
				replicaObsEv("a/r0", "a", 3, 4, statsObs(1, 1, 3, 3)),
			}},
		},
		{
			// The upper bound survives replication: a follower replays
			// the leader's log, so it cannot show batch 2 before that
			// ingest even started.
			name: "replica-sees-the-future",
			kind: KindVisibility,
			h: History{Writers: spec1(), Replicas: []string{"a"}, Events: []Event{
				ackEv("w0", 1, 1, 2),
				replicaObsEv("a/r0", "a", 3, 4, statsObs(2, 2, 15, 15)),
				ackEv("w0", 2, 5, 6),
			}},
		},
		{
			// One server's register is still one register: two reads of
			// the same follower cannot time-travel against each other.
			name: "replica-internal-time-travel",
			kind: KindRealtime,
			h: History{Writers: spec1(), Replicas: []string{"a"}, Events: []Event{
				ackEv("w0", 1, 1, 2),
				replicaObsEv("a/r0", "a", 3, 4, statsObs(1, 1, 5, 5)),
				replicaObsEv("a/r1", "a", 5, 6, statsObs(0, 0, 0, 0)),
			}},
		},
		{
			// Determinism is per server: the same sequence number on
			// one follower naming two different states is split brain.
			name: "replica-split-brain",
			kind: KindDeterminism,
			h: History{Writers: spec1(), Replicas: []string{"a"}, Events: []Event{
				ackEv("w0", 1, 1, 2),
				replicaObsEv("a/r0", "a", 3, 4, statsObs(1, 1, 5, 5)),
				replicaObsEv("a/r1", "a", 3, 4, statsObs(1, 1, 0, 0)),
			}},
		},
		{
			// ...but the leader's snapshot 1 and a follower's snapshot
			// 1 are unrelated registers; differing stats are fine.
			name: "valid-cross-server-same-seq",
			h: History{Writers: spec1(), Replicas: []string{"a"}, Events: []Event{
				ackEv("w0", 1, 1, 2),
				obsEv("r0", 3, 4, statsObs(1, 1, 5, 5)),
				replicaObsEv("a/r0", "a", 5, 6, statsObs(1, 0, 0, 0)),
			}},
		},
		{
			// Conservation has no replica exemption: an atomic follower
			// snapshot whose instance sums disagree with its stats is
			// corrupt, not stale.
			name: "replica-conservation",
			kind: KindConservation,
			h: History{Writers: spec1(), Replicas: []string{"a"}, Events: []Event{
				ackEv("w0", 1, 1, 2),
				replicaObsEv("a/r0", "a", 3, 4, Observation{
					HasSnapshot: true, Snapshot: 1, HasStats: true, Batches: 1, Nodes: 5, Edges: 5,
					HasInstances: true, NodeInstances: 8, EdgeInstances: 5,
				}),
			}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Check(&tc.h)
			if tc.kind == "" {
				if err != nil {
					t.Fatalf("valid history rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("violation not detected, want kind %q", tc.kind)
			}
			if v, ok := err.(*Violation); !ok || v.Kind != tc.kind {
				t.Fatalf("got %v, want kind %q", err, tc.kind)
			}
		})
	}
}

// durableClient adapts a leader *pghive.DurableService: writes go
// through the WAL-backed Ingest, reads through the embedded service.
type durableClient struct{ d *pghive.DurableService }

func (c durableClient) Ingest(g *pghive.Graph) error {
	_, err := c.d.Ingest(g)
	return err
}
func (c durableClient) Stats() (Observation, error)  { return ServiceClient{Svc: c.d.Service}.Stats() }
func (c durableClient) Schema() (Observation, error) { return ServiceClient{Svc: c.d.Service}.Schema() }
func (c durableClient) Snapshot() (Observation, bool, error) {
	return ServiceClient{Svc: c.d.Service}.Snapshot()
}

// runLiveReplicated drives the scripted workload against a group-commit
// leader shipping to an in-memory object store, with live followers
// tailing it, and returns the recorded replicated history.
func runLiveReplicated(t *testing.T, cfg Config) *History {
	t.Helper()
	backend := store.NewDir(vfs.NewMemFS(), "/backend")
	opts := pghive.Options{Seed: 1, Parallelism: 2}
	leader, err := pghive.OpenDurable("data", opts, pghive.DurableOptions{
		FS:                 vfs.NewMemFS(),
		DisableAutoCompact: true,
		SegmentBytes:       4096,
		GroupCommit:        true,
		ShipTo:             backend,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { leader.Close() })

	// Shipping happens at compaction; a background compactor keeps the
	// backend moving while the scripted writers run.
	compactorStop := make(chan struct{})
	compactorDone := make(chan struct{})
	go func() {
		defer close(compactorDone)
		for {
			select {
			case <-compactorStop:
				return
			case <-time.After(2 * time.Millisecond):
				if err := leader.Compact(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	t.Cleanup(func() { close(compactorStop); <-compactorDone })

	followers := make(map[string]*pghive.Follower, len(cfg.Replicas))
	for _, name := range cfg.Replicas {
		f := pghive.NewFollower(opts, backend, pghive.FollowerOptions{
			PollInterval: time.Millisecond,
		})
		f.Start()
		t.Cleanup(func() { f.Close() })
		followers[name] = f
	}

	h, err := RunReplicated(func(session, server string) Client {
		if server == "" {
			return durableClient{d: leader}
		}
		return ServiceClient{Svc: followers[server].Service}
	}, cfg)
	if err != nil {
		t.Fatalf("RunReplicated: %v", err)
	}
	return h
}

func TestLiveReplicatedHistoryPasses(t *testing.T) {
	cfg := Config{
		Writers: 3, BatchesPerWriter: 4, Readers: 2, ReadsPerReader: 24,
		Replicas: []string{"replica-a", "replica-b"}, ReplicaReaders: 2,
	}
	if testing.Short() {
		cfg.BatchesPerWriter, cfg.ReadsPerReader = 3, 9
	}
	h := runLiveReplicated(t, cfg)
	if err := Check(h); err != nil {
		t.Fatalf("live replicated history rejected: %v", err)
	}

	// Structural sanity: the run actually recorded replica reads.
	replicaObs := 0
	for _, e := range h.Events {
		if e.Server != "" && e.Obs != nil {
			replicaObs++
		}
	}
	if want := len(cfg.Replicas) * cfg.ReplicaReaders * cfg.ReadsPerReader; replicaObs != want {
		t.Fatalf("recorded %d replica observations, want %d", replicaObs, want)
	}

	// Seeded corruption: tear a replica observation by three nodes.
	// Every scripted batch is a multiple of five, so no prefix sum can
	// absorb the change whatever the replica's lag was — the checker
	// must refuse the tampered history. Tampering a (server, snapshot)
	// pair observed exactly once keeps determinism out of the way so
	// the flagged kind is specifically the torn state; if every pair
	// was observed repeatedly, determinism catching the mismatch first
	// is an equally valid refusal.
	tampered := deepCopy(t, h)
	type reg struct {
		server string
		snap   uint64
	}
	counts := map[reg]int{}
	for _, e := range tampered.Events {
		if e.Obs != nil && e.Obs.HasSnapshot {
			counts[reg{e.Server, e.Obs.Snapshot}]++
		}
	}
	seeded, unique := false, false
	for pass := 0; pass < 2 && !seeded; pass++ {
		for _, e := range tampered.Events {
			if e.Server == "" || e.Obs == nil || !e.Obs.HasStats {
				continue
			}
			if pass == 0 && counts[reg{e.Server, e.Obs.Snapshot}] != 1 {
				continue
			}
			e.Obs.Nodes += 3
			seeded, unique = true, pass == 0
			break
		}
	}
	if !seeded {
		t.Fatal("no replica stats observation to tamper")
	}
	err := Check(tampered)
	if err == nil {
		t.Fatal("checker accepted the torn replica observation")
	}
	v, ok := err.(*Violation)
	if !ok {
		t.Fatalf("error %v is not a *Violation", err)
	}
	if unique && v.Kind != KindVisibility {
		t.Fatalf("got %v, want kind %q", err, KindVisibility)
	}
	if !unique && v.Kind != KindVisibility && v.Kind != KindDeterminism {
		t.Fatalf("got %v, want a visibility or determinism violation", err)
	}
}
