package histcheck

// check.go: the offline history checker. Check never talks to a
// service — it receives a History and decides whether every recorded
// observation is explainable by SOME linearization of the scripted
// batches. It is deliberately defensive: a malformed history (unknown
// writer, out-of-order acks, inverted stamps) is reported as a
// violation rather than trusted, so the checker can be fuzzed with
// arbitrary bytes and driven by recorders it has never met.

import (
	"fmt"
	"sort"
)

// Violation is one detected breach of the serving contract (or of the
// history's own well-formedness). Kind is a stable machine-checkable
// tag; Detail is for humans.
type Violation struct {
	Kind    string // "malformed", "monotonicity", "realtime", "determinism", "visibility", "conservation"
	Session string // offending session, when attributable
	Detail  string
}

func (v *Violation) Error() string {
	if v.Session != "" {
		return fmt.Sprintf("histcheck: %s violation in session %s: %s", v.Kind, v.Session, v.Detail)
	}
	return fmt.Sprintf("histcheck: %s violation: %s", v.Kind, v.Detail)
}

// Violation kinds.
const (
	KindMalformed    = "malformed"
	KindMonotonicity = "monotonicity"
	KindRealtime     = "realtime"
	KindDeterminism  = "determinism"
	KindVisibility   = "visibility"
	KindConservation = "conservation"
)

// maxPrefixCombos bounds the prefix-vector search per observation.
// Honest recorders produce tiny ranges (a writer has at most one
// batch in flight), so hitting the cap means the history is too loose
// to verify cheaply; the observation is then accepted, not failed.
const maxPrefixCombos = 1 << 16

// ack is a validated acknowledgement with its real-time window.
type ack struct{ start, end int64 }

// Check validates a recorded history against the serving contract.
// It returns nil when every event is explainable, and the first
// *Violation found otherwise. The order checks run in is fixed
// (well-formedness, then per-session monotonicity, then real-time
// ordering, then determinism, then visibility and conservation), so
// a history with several defects reports a deterministic one.
func Check(h *History) error {
	if h == nil {
		return &Violation{Kind: KindMalformed, Detail: "nil history"}
	}

	replicas := make(map[string]bool, len(h.Replicas))
	for _, r := range h.Replicas {
		if r == "" {
			return &Violation{Kind: KindMalformed, Detail: "empty replica name declared"}
		}
		replicas[r] = true
	}

	// Well-formedness: every event belongs to a session, has a
	// coherent stamp window, and is either an ack or an observation.
	// Acks must name a scripted writer and arrive in 1..n order per
	// writer (writers are sequential clients by construction).
	byWriter := make(map[string][]ack)
	var observations []Event
	perSession := make(map[string][]Event)
	for i, e := range h.Events {
		if e.Session == "" {
			return &Violation{Kind: KindMalformed, Detail: fmt.Sprintf("event %d has no session", i)}
		}
		if e.Start >= e.End {
			return &Violation{Kind: KindMalformed, Session: e.Session,
				Detail: fmt.Sprintf("event %d stamp window [%d,%d) is empty or inverted", i, e.Start, e.End)}
		}
		if e.Server != "" {
			if !replicas[e.Server] {
				return &Violation{Kind: KindMalformed, Session: e.Session,
					Detail: fmt.Sprintf("event %d names undeclared server %q", i, e.Server)}
			}
			if e.Writer != "" {
				return &Violation{Kind: KindMalformed, Session: e.Session,
					Detail: fmt.Sprintf("write acknowledged by read-only replica %q", e.Server)}
			}
		}
		switch {
		case e.Writer != "" && e.Obs == nil:
			spec, ok := h.Writers[e.Writer]
			if !ok {
				return &Violation{Kind: KindMalformed, Session: e.Session,
					Detail: fmt.Sprintf("ack for unscripted writer %q", e.Writer)}
			}
			if want := len(byWriter[e.Writer]) + 1; e.Seq != want || e.Seq > len(spec) {
				return &Violation{Kind: KindMalformed, Session: e.Session,
					Detail: fmt.Sprintf("writer %q ack seq %d, want %d of %d", e.Writer, e.Seq, want, len(spec))}
			}
			byWriter[e.Writer] = append(byWriter[e.Writer], ack{e.Start, e.End})
		case e.Writer == "" && e.Obs != nil:
			observations = append(observations, e)
		default:
			return &Violation{Kind: KindMalformed, Session: e.Session,
				Detail: fmt.Sprintf("event %d is neither a pure ack nor a pure observation", i)}
		}
		perSession[e.Session] = append(perSession[e.Session], e)
	}
	// Acks must be recorded in stamp order (a sequential writer
	// cannot acknowledge batch k+1 before batch k's window closed).
	for w, acks := range byWriter {
		for i := 1; i < len(acks); i++ {
			if acks[i].start <= acks[i-1].end {
				return &Violation{Kind: KindMalformed,
					Detail: fmt.Sprintf("writer %q acks %d and %d overlap in real time", w, i, i+1)}
			}
		}
	}

	if v := checkSessionMonotonicity(perSession); v != nil {
		return v
	}
	if v := checkRealtimeMonotonicity(observations); v != nil {
		return v
	}
	if v := checkSnapshotDeterminism(observations); v != nil {
		return v
	}
	for _, e := range observations {
		if v := checkConservation(e); v != nil {
			return v
		}
		if v := checkVisibility(h, byWriter, e, replicas[e.Server]); v != nil {
			return v
		}
	}
	return nil
}

// checkSessionMonotonicity: within one session, in stamp order, the
// observed snapshot sequence number never decreases. A client that
// reads snapshot 7 and then snapshot 5 has time-travelled. Sequence
// numbers are per-server registers, so a session that reads from
// several servers is held to the rule independently per server.
func checkSessionMonotonicity(perSession map[string][]Event) *Violation {
	for session, events := range perSession {
		sort.SliceStable(events, func(i, j int) bool { return events[i].Start < events[j].Start })
		last := make(map[string]uint64)
		for _, e := range events {
			if e.Obs == nil || !e.Obs.HasSnapshot {
				continue
			}
			if prev, have := last[e.Server]; have && e.Obs.Snapshot < prev {
				return &Violation{Kind: KindMonotonicity, Session: session,
					Detail: fmt.Sprintf("snapshot went backwards: %d after %d", e.Obs.Snapshot, prev)}
			}
			last[e.Server] = e.Obs.Snapshot
		}
	}
	return nil
}

// checkRealtimeMonotonicity: across ALL sessions, an observation that
// finished before another began must not carry a newer snapshot of
// the SAME server — each server's publication sequence is a single
// register and reads of it must be consistent with real time.
// Different servers are different registers: a replica lawfully
// trails the leader, so the sweep runs per server.
func checkRealtimeMonotonicity(observations []Event) *Violation {
	perServer := make(map[string][]Event)
	for _, e := range observations {
		if e.Obs.HasSnapshot {
			perServer[e.Server] = append(perServer[e.Server], e)
		}
	}
	for _, snaps := range perServer {
		if v := realtimeSweep(snaps); v != nil {
			return v
		}
	}
	return nil
}

// realtimeSweep runs the single-register real-time check over one
// server's snapshot observations: sweep in Start order, folding in
// the maximum snapshot among observations that have fully completed.
func realtimeSweep(snaps []Event) *Violation {
	byStart := append([]Event(nil), snaps...)
	sort.SliceStable(byStart, func(i, j int) bool { return byStart[i].Start < byStart[j].Start })
	byEnd := append([]Event(nil), snaps...)
	sort.SliceStable(byEnd, func(i, j int) bool { return byEnd[i].End < byEnd[j].End })

	var maxSnap uint64
	var maxFrom string
	done := 0
	for _, e := range byStart {
		for done < len(byEnd) && byEnd[done].End < e.Start {
			if s := byEnd[done].Obs.Snapshot; s > maxSnap {
				maxSnap, maxFrom = s, byEnd[done].Session
			}
			done++
		}
		if e.Obs.Snapshot < maxSnap {
			return &Violation{Kind: KindRealtime, Session: e.Session,
				Detail: fmt.Sprintf("observed snapshot %d after session %s had already finished observing %d",
					e.Obs.Snapshot, maxFrom, maxSnap)}
		}
	}
	return nil
}

// checkSnapshotDeterminism: a snapshot sequence number names exactly
// one published state on its server, so every observation of it must
// report the same stats — and, ordering one server's snapshots by
// sequence, the batch counter must be non-decreasing (batches are
// never un-processed). Sequence numbers are scoped per server: a
// follower's snapshot 7 and the leader's snapshot 7 are unrelated
// registers and are never compared.
func checkSnapshotDeterminism(observations []Event) *Violation {
	perServer := make(map[string][]Event)
	for _, e := range observations {
		perServer[e.Server] = append(perServer[e.Server], e)
	}
	for _, obs := range perServer {
		if v := determinismSweep(obs); v != nil {
			return v
		}
	}
	return nil
}

func determinismSweep(observations []Event) *Violation {
	type statsAt struct {
		batches, nodes, edges int
		session               string
	}
	seen := make(map[uint64]statsAt)
	for _, e := range observations {
		o := e.Obs
		if !o.HasSnapshot || !o.HasStats {
			continue
		}
		if prev, ok := seen[o.Snapshot]; ok {
			if prev.batches != o.Batches || prev.nodes != o.Nodes || prev.edges != o.Edges {
				return &Violation{Kind: KindDeterminism, Session: e.Session,
					Detail: fmt.Sprintf("snapshot %d reported as (batches=%d nodes=%d edges=%d) and, to session %s, (batches=%d nodes=%d edges=%d)",
						o.Snapshot, o.Batches, o.Nodes, o.Edges, prev.session, prev.batches, prev.nodes, prev.edges)}
			}
			continue
		}
		seen[o.Snapshot] = statsAt{o.Batches, o.Nodes, o.Edges, e.Session}
	}
	order := make([]uint64, 0, len(seen))
	for s := range seen {
		order = append(order, s)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for i := 1; i < len(order); i++ {
		a, b := seen[order[i-1]], seen[order[i]]
		if b.batches < a.batches {
			return &Violation{Kind: KindDeterminism, Session: b.session,
				Detail: fmt.Sprintf("batches regressed from %d (snapshot %d) to %d (snapshot %d)",
					a.batches, order[i-1], b.batches, order[i])}
		}
	}
	return nil
}

// checkConservation: when one atomic read returned both stats and
// per-type instance sums, they describe the same snapshot, so the
// instance sums must equal the element totals exactly.
func checkConservation(e Event) *Violation {
	o := e.Obs
	if !o.HasStats || !o.HasInstances {
		return nil
	}
	if o.NodeInstances != o.Nodes {
		return &Violation{Kind: KindConservation, Session: e.Session,
			Detail: fmt.Sprintf("node type instances sum to %d, stats count %d nodes", o.NodeInstances, o.Nodes)}
	}
	if o.EdgeInstances != o.Edges {
		return &Violation{Kind: KindConservation, Session: e.Session,
			Detail: fmt.Sprintf("edge type instances sum to %d, stats count %d edges", o.EdgeInstances, o.Edges)}
	}
	return nil
}

// checkVisibility: every observation must be a sum of whole scripted
// batches — some per-writer prefix vector j, bounded below by the
// acks that completed before the observation began and above by the
// acks that started before it ended. Batches apply atomically, so a
// count that no reachable vector explains means a reader saw a torn
// or fabricated state.
//
// Replica observations keep the upper bound — a follower replays the
// leader's log, so it can never show a batch whose ingest had not
// even started by the time the read returned — but drop the lower
// bound to zero: asynchronous shipping means arbitrary lag is legal.
// The snapshot-equals-batches pin is also leader-only; a follower's
// publication counter starts from its bootstrap image, not from the
// scripted history's origin.
func checkVisibility(h *History, byWriter map[string][]ack, e Event, replica bool) *Violation {
	o := e.Obs
	if !o.HasStats && !o.HasInstances {
		return nil
	}
	writers := make([]string, 0, len(h.Writers))
	for w := range h.Writers {
		writers = append(writers, w)
	}
	sort.Strings(writers)

	// Per-writer visible-prefix bounds from the stamp evidence.
	low := make([]int, len(writers))
	high := make([]int, len(writers))
	combos := 1
	for i, w := range writers {
		for _, a := range byWriter[w] {
			if a.end < e.Start && !replica {
				low[i]++
			}
			if a.start < e.End {
				high[i]++
			}
		}
		combos *= high[i] - low[i] + 1
		if combos > maxPrefixCombos {
			return nil // too loose to verify cheaply; not a violation
		}
	}

	// targets: (nodes, edges, batch count) the vector must hit.
	// A stats observation pins all three; an instances-only
	// observation pins nodes and edges (the schema document has no
	// batch counter).
	wantNodes, wantEdges := o.Nodes, o.Edges
	if !o.HasStats {
		wantNodes, wantEdges = o.NodeInstances, o.EdgeInstances
	}

	var search func(i, nodes, edges, batches int) bool
	search = func(i, nodes, edges, batches int) bool {
		if nodes > wantNodes || edges > wantEdges {
			return false
		}
		if i == len(writers) {
			if nodes != wantNodes || edges != wantEdges {
				return false
			}
			// The batch-counter and snapshot pins are leader-only:
			// a follower counts batches and publications from its
			// bootstrap image onward, so only its element totals are
			// tied to the scripted prefix lattice.
			if !replica && o.HasStats && batches != o.Batches {
				return false
			}
			// In the ingest-only-from-empty model each mutation
			// publishes exactly one snapshot, so the sequence number
			// equals the visible batch count.
			if !replica && o.HasStats && o.HasSnapshot && uint64(batches) != o.Snapshot {
				return false
			}
			return true
		}
		spec := h.Writers[writers[i]]
		nodesAt, edgesAt := 0, 0
		for k := 0; k <= high[i]; k++ {
			if k >= low[i] && search(i+1, nodes+nodesAt, edges+edgesAt, batches+k) {
				return true
			}
			if k < len(spec) {
				nodesAt += spec[k].Nodes
				edgesAt += spec[k].Edges
			}
		}
		return false
	}
	if !search(0, 0, 0, 0) {
		return &Violation{Kind: KindVisibility, Session: e.Session,
			Detail: fmt.Sprintf("observation (nodes=%d edges=%d batches=%d snapshot=%d) matches no reachable batch-prefix state within bounds low=%v high=%v",
				wantNodes, wantEdges, o.Batches, o.Snapshot, low, high)}
	}
	return nil
}
