package serialize

import (
	"fmt"
	"strings"

	"github.com/pghive/pghive/internal/schema"
)

// DOT renders the schema graph as Graphviz DOT: one record-shaped node
// per node type (listing properties, with ° marking optional ones and
// the inferred data type), and one labeled arrow per edge type and
// endpoint pair, annotated with the cardinality — the schema
// visualization §1 motivates ("integration, exploration,
// visualization").
func DOT(s *schema.Schema, graphName string) string {
	if graphName == "" {
		graphName = "pghive_schema"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n", ident(graphName))
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=record, fontname=\"Helvetica\", fontsize=10];\n")
	b.WriteString("  edge [fontname=\"Helvetica\", fontsize=9];\n\n")

	// Node types as records: name | prop rows.
	names := map[string]bool{}
	for _, nt := range s.NodeTypes {
		name := typeName(&nt.Type)
		names[name] = true
		var rows []string
		header := dotEscape(nt.Name())
		if nt.Abstract {
			header += " (abstract)"
		}
		rows = append(rows, header)
		for _, k := range nt.PropertyKeys() {
			ps := nt.Props[k]
			row := dotEscape(k)
			if ps.DataType != 0 {
				row += " : " + ps.DataType.String()
			}
			if !ps.Mandatory {
				row += " °"
			}
			rows = append(rows, row)
		}
		fmt.Fprintf(&b, "  %s [label=\"{%s}\"];\n", ident(name), strings.Join(rows, "|"))
	}
	b.WriteString("\n")

	// Edge types as arrows per endpoint pair; unresolved endpoints
	// render as a point node.
	anon := 0
	for _, et := range s.EdgeTypes {
		label := dotEscape(et.Name())
		if et.Cardinality != schema.CardUnknown {
			label += "\\n" + et.Cardinality.String()
		}
		srcs := et.SortedSrcTokens()
		dsts := et.SortedDstTokens()
		if len(srcs) == 0 {
			srcs = []string{""}
		}
		if len(dsts) == 0 {
			dsts = []string{""}
		}
		for _, src := range srcs {
			for _, dst := range dsts {
				sn := endpointNodeName(src, names, &b, &anon)
				dn := endpointNodeName(dst, names, &b, &anon)
				fmt.Fprintf(&b, "  %s -> %s [label=\"%s\"];\n", sn, dn, label)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// endpointNodeName maps an endpoint token to its type node, declaring
// a placeholder point node for endpoints that have no declared type
// (unresolved or external).
func endpointNodeName(token string, names map[string]bool, b *strings.Builder, anon *int) string {
	if token == "" {
		*anon++
		name := fmt.Sprintf("unresolved_%d", *anon)
		fmt.Fprintf(b, "  %s [shape=point];\n", name)
		return name
	}
	name := camel(token) + "Type"
	if !names[name] {
		// Endpoint token that is not a declared node type (e.g. an
		// abstract type name): declare an oval for it once.
		names[name] = true
		fmt.Fprintf(b, "  %s [shape=oval, label=\"%s\"];\n", ident(name), dotEscape(token))
	}
	return ident(name)
}

func dotEscape(s string) string {
	r := strings.NewReplacer(`"`, `\"`, "{", `\{`, "}", `\}`, "|", `\|`, "<", `\<`, ">", `\>`)
	return r.Replace(s)
}
