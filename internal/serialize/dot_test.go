package serialize

import (
	"strings"
	"testing"
)

func TestDOTOutput(t *testing.T) {
	s := figure1Schema(t)
	out := DOT(s, "fig1")
	for _, want := range []string{
		"digraph fig1 {",
		"personType [label=\"{Person|bday : DATE|gender : STRING|name : STRING}\"]",
		"personType -> orgType [label=\"WORKS_AT\\nN:1\"];",
		"personType -> personType [label=\"KNOWS",
		"(abstract)",
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	// Balanced braces.
	if strings.Count(out, "{") != strings.Count(out, "}") {
		t.Error("unbalanced braces in DOT output")
	}
}

func TestDOTOptionalMarker(t *testing.T) {
	s := figure1Schema(t)
	out := DOT(s, "")
	if !strings.Contains(out, "digraph pghive_schema {") {
		t.Error("default graph name missing")
	}
	// The abstract node's property is mandatory within its type, so
	// check an optional marker from the Person type is absent and the
	// record syntax is used.
	if !strings.Contains(out, "shape=record") {
		t.Error("record shape missing")
	}
}

func TestDOTEscaping(t *testing.T) {
	if got := dotEscape(`a"b{c}d|e<f>`); got != `a\"b\{c\}d\|e\<f\>` {
		t.Errorf("dotEscape = %q", got)
	}
}
