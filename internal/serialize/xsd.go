package serialize

import (
	"fmt"
	"strings"

	"github.com/pghive/pghive/internal/pg"
	"github.com/pghive/pghive/internal/schema"
)

// xsdType maps a property data type to the corresponding XML Schema
// built-in type.
func xsdType(k pg.Kind) string {
	switch k {
	case pg.KindInt:
		return "xs:long"
	case pg.KindFloat:
		return "xs:double"
	case pg.KindBool:
		return "xs:boolean"
	case pg.KindDate:
		return "xs:date"
	case pg.KindDateTime:
		return "xs:dateTime"
	default:
		return "xs:string"
	}
}

// XSD renders the schema as an XML Schema document: one complexType
// per node and edge type, property keys as elements (minOccurs="0"
// for optional properties), and edge endpoint references as source
// and target attributes constrained by documentation annotations.
func XSD(s *schema.Schema) string {
	var b strings.Builder
	b.WriteString(`<?xml version="1.0" encoding="UTF-8"?>` + "\n")
	b.WriteString(`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema" elementFormDefault="qualified">` + "\n")

	for _, nt := range s.NodeTypes {
		writeComplexType(&b, &nt.Type, "node", nil, nil, schema.CardUnknown)
	}
	for _, et := range s.EdgeTypes {
		writeComplexType(&b, &et.Type, "edge", et.SortedSrcTokens(), et.SortedDstTokens(), et.Cardinality)
	}

	// Top-level graph element: a sequence of any declared type.
	b.WriteString("  <xs:element name=\"graph\">\n")
	b.WriteString("    <xs:complexType>\n")
	b.WriteString("      <xs:choice minOccurs=\"0\" maxOccurs=\"unbounded\">\n")
	for _, nt := range s.NodeTypes {
		fmt.Fprintf(&b, "        <xs:element name=%q type=%q/>\n",
			xmlName(typeName(&nt.Type)), xmlName(typeName(&nt.Type)))
	}
	for _, et := range s.EdgeTypes {
		fmt.Fprintf(&b, "        <xs:element name=%q type=%q/>\n",
			xmlName(typeName(&et.Type)), xmlName(typeName(&et.Type)))
	}
	b.WriteString("      </xs:choice>\n")
	b.WriteString("    </xs:complexType>\n")
	b.WriteString("  </xs:element>\n")
	b.WriteString("</xs:schema>\n")
	return b.String()
}

func writeComplexType(b *strings.Builder, t *schema.Type, kind string, srcs, dsts []string, card schema.Cardinality) {
	fmt.Fprintf(b, "  <xs:complexType name=%q>\n", xmlName(typeName(t)))
	fmt.Fprintf(b, "    <xs:annotation>\n")
	fmt.Fprintf(b, "      <xs:documentation>%s type; labels: %s",
		kind, xmlEscape(strings.Join(t.SortedLabels(), ", ")))
	if kind == "edge" {
		fmt.Fprintf(b, "; sources: %s; targets: %s",
			xmlEscape(strings.Join(srcs, ", ")), xmlEscape(strings.Join(dsts, ", ")))
		if card != schema.CardUnknown {
			fmt.Fprintf(b, "; cardinality: %s", card)
		}
	}
	fmt.Fprintf(b, "</xs:documentation>\n")
	fmt.Fprintf(b, "    </xs:annotation>\n")
	b.WriteString("    <xs:sequence>\n")
	for _, k := range t.PropertyKeys() {
		ps := t.Props[k]
		occ := ""
		if !ps.Mandatory {
			occ = ` minOccurs="0"`
		}
		switch {
		case len(ps.Enum) > 0:
			// Enumerated string properties become inline simpleType
			// restrictions.
			fmt.Fprintf(b, "      <xs:element name=%q%s>\n", xmlName(k), occ)
			b.WriteString("        <xs:simpleType>\n")
			b.WriteString("          <xs:restriction base=\"xs:string\">\n")
			for _, v := range ps.Enum {
				fmt.Fprintf(b, "            <xs:enumeration value=%q/>\n", xmlEscape(v))
			}
			b.WriteString("          </xs:restriction>\n")
			b.WriteString("        </xs:simpleType>\n")
			b.WriteString("      </xs:element>\n")
		case ps.HasIntRange:
			fmt.Fprintf(b, "      <xs:element name=%q%s>\n", xmlName(k), occ)
			b.WriteString("        <xs:simpleType>\n")
			b.WriteString("          <xs:restriction base=\"xs:long\">\n")
			fmt.Fprintf(b, "            <xs:minInclusive value=\"%d\"/>\n", ps.MinInt)
			fmt.Fprintf(b, "            <xs:maxInclusive value=\"%d\"/>\n", ps.MaxInt)
			b.WriteString("          </xs:restriction>\n")
			b.WriteString("        </xs:simpleType>\n")
			b.WriteString("      </xs:element>\n")
		default:
			fmt.Fprintf(b, "      <xs:element name=%q type=%q%s/>\n", xmlName(k), xsdType(ps.DataType), occ)
		}
	}
	b.WriteString("    </xs:sequence>\n")
	if kind == "edge" {
		b.WriteString("    <xs:attribute name=\"source\" type=\"xs:string\" use=\"required\"/>\n")
		b.WriteString("    <xs:attribute name=\"target\" type=\"xs:string\" use=\"required\"/>\n")
	}
	b.WriteString("  </xs:complexType>\n")
}

// xmlName sanitizes a string into a valid XML NCName.
func xmlName(s string) string {
	out := ident(s)
	if out == "" || (out[0] >= '0' && out[0] <= '9') {
		out = "_" + out
	}
	return out
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&apos;")
	return r.Replace(s)
}
